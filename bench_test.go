// Package sparkgo's root benchmark harness regenerates every figure-level
// result of the paper (DESIGN.md §4). Each benchmark wraps one experiment
// from internal/experiments: the table is printed once (so `go test
// -bench=. -benchmem | tee bench_output.txt` records the reproduced
// figures) and the measured loop times the full experiment pipeline —
// parse, transform, schedule, build RTL, and co-simulate.
//
//	BenchmarkFig02_Unroll              E1   loop unrolling (Fig 2)
//	BenchmarkFig03_ConstPropParallel   E2   index elimination (Fig 3)
//	BenchmarkFig04_ChainAcrossCond     E3   chaining across conditionals
//	BenchmarkFig05_ChainingTrails      E4   trail enumeration (Fig 5)
//	BenchmarkFig06_07_WireVariables    E5-6 wire-variable insertion
//	BenchmarkFig10_ILDBehavior         E7   behavioral ILD vs reference
//	BenchmarkFig11_14_ILDStages        E8-11 transformation walkthrough
//	BenchmarkFig15_SingleCycleILD      E12  the single-cycle architecture
//	BenchmarkBaseline_ClassicalHLS     E13  classical-HLS baseline
//	BenchmarkFig16_NaturalForm         E14  while→for normalization
//	BenchmarkAblation_*                A1-A4 coordination ablations
//	BenchmarkExploration               E15  full design-space sweep
//	BenchmarkExploreSweepCold          cold-cache concurrent sweep
//	BenchmarkExploreSweepWarm          cache-hit path of the same sweep
//	BenchmarkExploreSweepDiskCold      cold sweep that also populates a disk cache
//	BenchmarkExploreSweepDiskWarm      fresh engine served from on-disk artifacts
//	BenchmarkSearchHillClimb           adaptive hill-climbing search (E17)
//	BenchmarkSearchGenetic             adaptive genetic search (E17)
//	BenchmarkSynthesizeILD/n=*         end-to-end synthesis timing sweep
//	BenchmarkRTLSimILD                 simulated decode throughput
//	BenchmarkInterpILD                 behavioral decode throughput
package sparkgo_test

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"sparkgo/internal/core"
	"sparkgo/internal/experiments"
	"sparkgo/internal/explore"
	"sparkgo/internal/ild"
	"sparkgo/internal/interp"
	"sparkgo/internal/report"
	"sparkgo/internal/rtl"
	"sparkgo/internal/rtlsim"
)

// printOnce prints each experiment table a single time per process, so
// benchmark reruns don't flood the log.
var printedTables sync.Map

func emit(b *testing.B, name string, t *report.Table, err error) {
	b.Helper()
	if err != nil {
		b.Fatalf("%s: %v\n%s", name, err, tableString(t))
	}
	if _, loaded := printedTables.LoadOrStore(name, true); !loaded {
		fmt.Printf("\n%s\n", t)
	}
}

func tableString(t *report.Table) string {
	if t == nil {
		return ""
	}
	return t.String()
}

func BenchmarkFig02_Unroll(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := experiments.E1Fig02Unroll()
		emit(b, "E1", t, err)
	}
}

func BenchmarkFig03_ConstPropParallel(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := experiments.E2Fig03ConstPropParallel()
		emit(b, "E2", t, err)
	}
}

func BenchmarkFig04_ChainAcrossCond(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := experiments.E3Fig04Chaining()
		emit(b, "E3", t, err)
	}
}

func BenchmarkFig05_ChainingTrails(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := experiments.E4Fig05Trails()
		emit(b, "E4", t, err)
	}
}

func BenchmarkFig06_07_WireVariables(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := experiments.E5E6WireVariables()
		emit(b, "E5-E6", t, err)
	}
}

func BenchmarkFig10_ILDBehavior(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := experiments.E7Fig10Behavior(20)
		emit(b, "E7", t, err)
	}
}

func BenchmarkFig11_14_ILDStages(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := experiments.E8toE11Stages(16)
		emit(b, "E8-E11", t, err)
	}
}

func BenchmarkFig15_SingleCycleILD(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := experiments.E12Fig15SingleCycle([]int{4, 8, 16, 32}, 8)
		emit(b, "E12", t, err)
	}
}

func BenchmarkBaseline_ClassicalHLS(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := experiments.E13Baseline([]int{4, 8, 16})
		emit(b, "E13", t, err)
	}
}

func BenchmarkFig16_NaturalForm(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := experiments.E14Fig16Natural(8)
		emit(b, "E14", t, err)
	}
}

func BenchmarkAblation_Coordination(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := experiments.Ablations(16)
		emit(b, "A1-A4", t, err)
	}
}

// BenchmarkExploration wraps the E15 design-space sweep.
func BenchmarkExploration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := experiments.E15Exploration(0)
		emit(b, "E15", t, err)
	}
}

// sweepSpace is the benchmark grid: every toggle variant and two unroll
// bounds over two buffer sizes, plus the classical baseline.
func sweepSpace() []explore.Config {
	return explore.Grid([]int{4, 8}, explore.Variants(), []int{0, 8}, true)
}

// BenchmarkExploreSweepCold measures a concurrent sweep with an empty
// cache each iteration: raw parallel synthesis throughput.
func BenchmarkExploreSweepCold(b *testing.B) {
	space := sweepSpace()
	b.ReportMetric(float64(len(space)), "configs")
	for i := 0; i < b.N; i++ {
		eng := &explore.Engine{}
		pts := eng.Sweep(space)
		if best := explore.BestCycles(pts); best == nil || best.Latency != 1 {
			b.Fatalf("sweep lost the 1-cycle design: %+v", best)
		}
	}
}

// BenchmarkExploreSweepWarm measures the same sweep against a warm cache:
// the memoized hit path that makes repeated/overlapping exploration cheap.
func BenchmarkExploreSweepWarm(b *testing.B) {
	space := sweepSpace()
	eng := &explore.Engine{}
	eng.Sweep(space) // prime
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pts := eng.Sweep(space)
		if best := explore.BestCycles(pts); best == nil || best.Latency != 1 {
			b.Fatalf("warm sweep lost the 1-cycle design: %+v", best)
		}
	}
}

// BenchmarkExploreSweepDiskCold measures a cold sweep that additionally
// writes every stage artifact and evaluated point to a fresh disk cache:
// the write-side overhead of persistence.
func BenchmarkExploreSweepDiskCold(b *testing.B) {
	space := sweepSpace()
	b.ReportMetric(float64(len(space)), "configs")
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		dir := b.TempDir()
		b.StartTimer()
		eng := &explore.Engine{CacheDir: dir}
		pts := eng.Sweep(space)
		if best := explore.BestCycles(pts); best == nil || best.Latency != 1 {
			b.Fatalf("disk-cold sweep lost the 1-cycle design: %+v", best)
		}
	}
}

// BenchmarkExploreSweepDiskWarm measures the restart path the disk cache
// exists for: each iteration builds a completely fresh engine — empty
// memory caches, standing in for a new process — against a pre-populated
// cache directory. Compare against BenchmarkExploreSweepCold for the
// persistence payoff.
func BenchmarkExploreSweepDiskWarm(b *testing.B) {
	space := sweepSpace()
	dir := b.TempDir()
	prime := &explore.Engine{CacheDir: dir}
	prime.Sweep(space)
	b.ReportMetric(float64(len(space)), "configs")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng := &explore.Engine{CacheDir: dir}
		pts := eng.Sweep(space)
		if best := explore.BestCycles(pts); best == nil || best.Latency != 1 {
			b.Fatalf("disk-warm sweep lost the 1-cycle design: %+v", best)
		}
		if st := eng.Stats(); st.PointComputed != 0 {
			b.Fatalf("disk-warm sweep synthesized %d configs, want 0", st.PointComputed)
		}
	}
}

// benchSearch measures one adaptive search strategy on a cold engine per
// iteration: the cost of finding the best design with a fixed evaluation
// budget, stage-cache sharing included.
func benchSearch(b *testing.B, st explore.Strategy) {
	sp := explore.DefaultSpace(8)
	obj := explore.WeightedObjective(1000, 1)
	budget := explore.Budget{MaxEvaluations: 20}
	b.ReportMetric(float64(budget.MaxEvaluations), "evals")
	for i := 0; i < b.N; i++ {
		eng := &explore.Engine{}
		res := st.Search(eng, sp, obj, budget, 1)
		if res.Best.Err != "" || res.Best.Latency != 1 {
			b.Fatalf("search lost the 1-cycle design: %+v", res.Best)
		}
	}
}

func BenchmarkSearchHillClimb(b *testing.B) { benchSearch(b, explore.HillClimb{}) }

func BenchmarkSearchGenetic(b *testing.B) { benchSearch(b, explore.Genetic{}) }

// BenchmarkSynthesizeILD times the full coordinated flow per buffer size:
// the "design space exploration speed" the paper positions Spark for.
func BenchmarkSynthesizeILD(b *testing.B) {
	for _, n := range []int{4, 8, 16, 32} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			p := ild.Program(n)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := core.Synthesize(p, core.Options{Preset: core.MicroprocessorBlock})
				if err != nil {
					b.Fatal(err)
				}
				if res.Cycles != 1 {
					b.Fatalf("n=%d: %d cycles", n, res.Cycles)
				}
			}
		})
	}
}

// benchSimWorkload synthesizes the n=32 ILD design under the given
// preset and draws the 64-trial stimulus set the scalar-vs-batch
// simulator benchmarks share.
func benchSimWorkload(b *testing.B, preset core.Preset) (*core.Result, []*interp.Env) {
	b.Helper()
	p := ild.Program(32)
	res, err := core.Synthesize(p, core.Options{Preset: preset})
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(42))
	envs := make([]*interp.Env, rtlsim.MaxLanes)
	for i := range envs {
		envs[i] = interp.RandomEnv(p, rng)
	}
	return res, envs
}

// benchmarkSimScalar measures the per-trial scalar loop the evaluation
// layers used before batching: one fresh Sim per stimulus vector, a map
// allocated every cycle. Run with -benchmem to see the allocation cost.
func benchmarkSimScalar(b *testing.B, preset core.Preset) {
	res, envs := benchSimWorkload(b, preset)
	maxCycles := rtlsim.WatchdogCycles(res.Module.NumStates)
	b.ReportMetric(float64(len(envs)), "trials")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, env := range envs {
			sim := rtlsim.New(res.Module)
			if err := sim.LoadEnv(res.Input, env); err != nil {
				b.Fatal(err)
			}
			if _, err := sim.Run(maxCycles); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// benchmarkSimBatch measures a compiled batched path on the same
// workload, including the per-point Compile cost the exploration engine
// pays: lower the netlist once, step all 64 trials in lockstep lanes.
// The compile argument selects the execution model (bit-sliced
// rtlsim.Compile vs struct-of-arrays rtlsim.CompileSoA).
func benchmarkSimBatch(b *testing.B, preset core.Preset, compile func(*rtl.Module) *rtlsim.Program) {
	res, envs := benchSimWorkload(b, preset)
	maxCycles := rtlsim.WatchdogCycles(res.Module.NumStates)
	b.ReportMetric(float64(len(envs)), "trials")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		prog := compile(res.Module)
		batch := prog.NewBatch(len(envs))
		for ln, env := range envs {
			if err := batch.LoadEnv(ln, res.Input, env); err != nil {
				b.Fatal(err)
			}
		}
		if err := batch.Run(maxCycles); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimScalarILD / BenchmarkSimBatchILD / BenchmarkSimBitParILD:
// 64 trials of the paper's single-cycle n=32 decoder — the dominant cost
// of a disk-warm-sim sweep — on the scalar reference, the
// struct-of-arrays batch, and the bit-sliced batch.
func BenchmarkSimScalarILD(b *testing.B) { benchmarkSimScalar(b, core.MicroprocessorBlock) }

func BenchmarkSimBatchILD(b *testing.B) {
	benchmarkSimBatch(b, core.MicroprocessorBlock, rtlsim.CompileSoA)
}

func BenchmarkSimBitParILD(b *testing.B) {
	benchmarkSimBatch(b, core.MicroprocessorBlock, rtlsim.Compile)
}

// The same three-way comparison on the sequential classical-ASIC FSM,
// where the scalar loop's per-cycle map allocation multiplies with the
// cycle count and the control network dominates the gate mix.
func BenchmarkSimScalarILDClassical(b *testing.B) { benchmarkSimScalar(b, core.ClassicalASIC) }

func BenchmarkSimBatchILDClassical(b *testing.B) {
	benchmarkSimBatch(b, core.ClassicalASIC, rtlsim.CompileSoA)
}

func BenchmarkSimBitParILDClassical(b *testing.B) {
	benchmarkSimBatch(b, core.ClassicalASIC, rtlsim.Compile)
}

// BenchmarkMidendAllocs pins the allocation count of the midend builders
// — HTG lowering plus the RTL signal web — which carve their nodes from
// fixed-size arenas instead of allocating per op/signal. Run with
// -benchmem; the allocs/op figure is the regression guard for the arena
// paths in internal/htg/lower.go and internal/rtl/netlist.go.
func BenchmarkMidendAllocs(b *testing.B) {
	p := ild.Program(32)
	opt := core.Options{Preset: core.ClassicalASIC}
	fa, err := core.Frontend(p, opt.FrontendOptions())
	if err != nil {
		b.Fatal(err)
	}
	mo := opt.MidendOptions()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ma, err := core.Midend(fa, mo)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := rtl.Build(ma.Schedule); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRTLSimILD measures cycle-accurate simulation throughput of the
// synthesized single-cycle decoder.
func BenchmarkRTLSimILD(b *testing.B) {
	n := 16
	p := ild.Program(n)
	res, err := core.Synthesize(p, core.Options{Preset: core.MicroprocessorBlock})
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	buf := ild.RandomBuffer(rng, n)
	vals := make([]int64, len(buf))
	for i, x := range buf {
		vals[i] = int64(x)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sim := rtlsim.New(res.Module)
		if err := sim.SetArray("B", vals); err != nil {
			b.Fatal(err)
		}
		if _, err := sim.Run(8); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkInterpILD measures behavioral (golden model) decode throughput
// for comparison with the RTL simulation.
func BenchmarkInterpILD(b *testing.B) {
	n := 16
	p := ild.Program(n)
	rng := rand.New(rand.NewSource(1))
	buf := ild.RandomBuffer(rng, n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		env := interp.NewEnv(p)
		if err := ild.LoadBuffer(p, env, buf); err != nil {
			b.Fatal(err)
		}
		if _, err := interp.New(p).RunMain(env); err != nil {
			b.Fatal(err)
		}
	}
}
