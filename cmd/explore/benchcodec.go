package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	"sparkgo/internal/core"
	"sparkgo/internal/explore"
	"sparkgo/internal/htg"
	"sparkgo/internal/ild"
	"sparkgo/internal/ir"
	"sparkgo/internal/rtl"
	"sparkgo/internal/sched"
)

// codecSpeedupFloor is the regression gate for the wire codec: the
// encode+decode round trip of the backend netlist — the hot payload of
// every disk-backed sweep — must beat the retired gob baseline by at
// least this factor. Measured margin is ~2.2x on the n=16 decoder; a
// report below the floor means the hand-rolled codec has regressed to
// reflection-era cost.
const codecSpeedupFloor = 2.0

// verifyRatioCeiling gates the streaming-hash revival design: verifying
// a stored artifact (one SHA-256 pass over its wire bytes) must cost
// less than decoding it, on every artifact kind. The measured ratio is
// ~0.02-0.05; a ratio at or above 1 would mean hash-verify-then-
// lazy-decode revival is pointless.
const verifyRatioCeiling = 1.0

// codecBenchRun is one artifact kind's wire-vs-gob measurement.
type codecBenchRun struct {
	// Kind names the artifact layer: program (frontend), graph and
	// schedule (midend), module (backend netlist).
	Kind string `json:"kind"`
	// WireBytes and GobBytes are the encoded sizes.
	WireBytes int `json:"wire_bytes"`
	GobBytes  int `json:"gob_bytes"`
	// Per-op nanoseconds and allocations from testing.Benchmark.
	WireEncodeNs     int64 `json:"wire_encode_ns"`
	WireDecodeNs     int64 `json:"wire_decode_ns"`
	GobEncodeNs      int64 `json:"gob_encode_ns"`
	GobDecodeNs      int64 `json:"gob_decode_ns"`
	FingerprintNs    int64 `json:"fingerprint_ns"`
	WireEncodeAllocs int64 `json:"wire_encode_allocs"`
	WireDecodeAllocs int64 `json:"wire_decode_allocs"`
	// RoundTripSpeedup is gob (encode+decode) over wire (encode+decode).
	RoundTripSpeedup float64 `json:"round_trip_speedup"`
	// VerifyVsDecode is fingerprint cost over wire decode cost — what a
	// disk revival pays relative to what the old decode-to-verify paid.
	VerifyVsDecode float64 `json:"verify_vs_decode"`
}

// codecBenchReport is the BENCH_codec.json schema consumed by CI trend
// tracking. CacheSchema and StageVersions identify the artifact
// generation measured, so archived reports are only compared within a
// generation.
type codecBenchReport struct {
	Schema        string                `json:"schema"`
	Timestamp     string                `json:"timestamp"`
	CacheSchema   string                `json:"cache_schema"`
	StageVersions explore.StageVersions `json:"stage_versions"`
	GoOS          string                `json:"goos"`
	GoArch        string                `json:"goarch"`
	CPUs          int                   `json:"cpus"`
	N             int                   `json:"n"`
	SpeedupFloor  float64               `json:"speedup_floor"`
	VerifyCeiling float64               `json:"verify_ceiling"`
	Runs          []codecBenchRun       `json:"runs"`
	// BackendRoundTripSpeedup is the module run's speedup — the number
	// the CI gate reads. VerifyVsDecodeMax is the worst ratio across
	// kinds (which must still be under the ceiling).
	BackendRoundTripSpeedup float64 `json:"backend_round_trip_speedup"`
	VerifyVsDecodeMax       float64 `json:"verify_vs_decode_max"`
}

// codecKind bundles one artifact layer's codecs for measurement.
type codecKind struct {
	kind    string
	wireEnc func() ([]byte, error)
	wireDec func([]byte) error
	gobEnc  func() ([]byte, error)
	gobDec  func([]byte) error
}

// benchNs times f with the testing benchmark driver, returning per-op
// nanoseconds and allocations. The heap is settled first so the garbage
// of one measurement doesn't tax the next — six timings run back to back
// in one process, and GC debt is the main cross-contamination channel.
func benchNs(f func() error) (int64, int64, error) {
	runtime.GC()
	var inner error
	r := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if err := f(); err != nil {
				inner = err
				b.FailNow()
			}
		}
	})
	if inner != nil {
		return 0, 0, inner
	}
	return r.NsPerOp(), int64(r.AllocsPerOp()), nil
}

// measureCodecKind runs the six measurements of one artifact kind.
func measureCodecKind(k codecKind) (codecBenchRun, error) {
	run := codecBenchRun{Kind: k.kind}
	wireEnc, err := k.wireEnc()
	if err != nil {
		return run, fmt.Errorf("%s: wire encode: %w", k.kind, err)
	}
	gobEnc, err := k.gobEnc()
	if err != nil {
		return run, fmt.Errorf("%s: gob encode: %w", k.kind, err)
	}
	run.WireBytes, run.GobBytes = len(wireEnc), len(gobEnc)

	measure := func(dst *int64, allocs *int64, f func() error) error {
		ns, al, err := benchNs(f)
		if err != nil {
			return fmt.Errorf("%s: %w", k.kind, err)
		}
		*dst = ns
		if allocs != nil {
			*allocs = al
		}
		return nil
	}
	if err := measure(&run.WireEncodeNs, &run.WireEncodeAllocs, func() error {
		_, err := k.wireEnc()
		return err
	}); err != nil {
		return run, err
	}
	if err := measure(&run.WireDecodeNs, &run.WireDecodeAllocs, func() error {
		return k.wireDec(wireEnc)
	}); err != nil {
		return run, err
	}
	if err := measure(&run.GobEncodeNs, nil, func() error {
		_, err := k.gobEnc()
		return err
	}); err != nil {
		return run, err
	}
	if err := measure(&run.GobDecodeNs, nil, func() error {
		return k.gobDec(gobEnc)
	}); err != nil {
		return run, err
	}
	if err := measure(&run.FingerprintNs, nil, func() error {
		if ir.FingerprintBytes(wireEnc) == "" {
			return fmt.Errorf("empty fingerprint")
		}
		return nil
	}); err != nil {
		return run, err
	}
	if wire := run.WireEncodeNs + run.WireDecodeNs; wire > 0 {
		run.RoundTripSpeedup = float64(run.GobEncodeNs+run.GobDecodeNs) / float64(wire)
	}
	if run.WireDecodeNs > 0 {
		run.VerifyVsDecode = float64(run.FingerprintNs) / float64(run.WireDecodeNs)
	}
	return run, nil
}

// runCodecBenchJSON measures every artifact codec against the retired
// gob baseline on the paper's n=16 ILD, asserts the backend round-trip
// floor and the verify-vs-decode ceiling, and writes the
// machine-readable report the CI workflow archives.
func runCodecBenchJSON(path string) error {
	rep := codecBenchReport{
		Schema:        "sparkgo/bench-codec/v1",
		Timestamp:     time.Now().UTC().Format(time.RFC3339),
		CacheSchema:   explore.DiskSchema(),
		StageVersions: explore.Versions(),
		GoOS:          runtime.GOOS, GoArch: runtime.GOARCH,
		CPUs:          runtime.NumCPU(),
		N:             16,
		SpeedupFloor:  codecSpeedupFloor,
		VerifyCeiling: verifyRatioCeiling,
	}
	opt := core.Options{Preset: core.MicroprocessorBlock}
	fa, err := core.Frontend(ild.Program(rep.N), opt.FrontendOptions())
	if err != nil {
		return fmt.Errorf("frontend: %w", err)
	}
	ma, err := core.Midend(fa, opt.MidendOptions())
	if err != nil {
		return fmt.Errorf("midend: %w", err)
	}
	ba, err := core.Backend(ma, opt.BackendOptions())
	if err != nil {
		return fmt.Errorf("backend: %w", err)
	}
	kinds := []codecKind{
		{
			kind:    "program",
			wireEnc: func() ([]byte, error) { return ir.EncodeProgram(fa.Program) },
			wireDec: func(d []byte) error { _, err := ir.DecodeProgram(d); return err },
			gobEnc:  func() ([]byte, error) { return ir.EncodeProgramGob(fa.Program) },
			gobDec:  func(d []byte) error { _, err := ir.DecodeProgramGob(d); return err },
		},
		{
			kind:    "graph",
			wireEnc: func() ([]byte, error) { return htg.EncodeGraph(ma.Graph) },
			wireDec: func(d []byte) error { _, err := htg.DecodeGraph(d); return err },
			gobEnc:  func() ([]byte, error) { return htg.EncodeGraphGob(ma.Graph) },
			gobDec:  func(d []byte) error { _, err := htg.DecodeGraphGob(d); return err },
		},
		{
			kind:    "schedule",
			wireEnc: func() ([]byte, error) { return sched.EncodeResult(ma.Schedule) },
			wireDec: func(d []byte) error { _, err := sched.DecodeResult(d); return err },
			gobEnc:  func() ([]byte, error) { return sched.EncodeResultGob(ma.Schedule) },
			gobDec:  func(d []byte) error { _, err := sched.DecodeResultGob(d); return err },
		},
		{
			kind:    "module",
			wireEnc: func() ([]byte, error) { return rtl.EncodeModule(ba.Module) },
			wireDec: func(d []byte) error { _, err := rtl.DecodeModule(d); return err },
			gobEnc:  func() ([]byte, error) { return rtl.EncodeModuleGob(ba.Module) },
			gobDec:  func(d []byte) error { _, err := rtl.DecodeModuleGob(d); return err },
		},
	}
	for _, k := range kinds {
		run, err := measureCodecKind(k)
		if err != nil {
			return err
		}
		rep.Runs = append(rep.Runs, run)
		if k.kind == "module" {
			rep.BackendRoundTripSpeedup = run.RoundTripSpeedup
		}
		if run.VerifyVsDecode > rep.VerifyVsDecodeMax {
			rep.VerifyVsDecodeMax = run.VerifyVsDecode
		}
	}
	if rep.BackendRoundTripSpeedup < codecSpeedupFloor {
		return fmt.Errorf("codec bench: backend wire round trip %.2fx over gob, below the %.1fx floor",
			rep.BackendRoundTripSpeedup, codecSpeedupFloor)
	}
	if rep.VerifyVsDecodeMax >= verifyRatioCeiling {
		return fmt.Errorf("codec bench: verify-vs-decode ratio %.2f at or above %.1f — hashing a payload must be cheaper than decoding it",
			rep.VerifyVsDecodeMax, verifyRatioCeiling)
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return err
	}
	for _, run := range rep.Runs {
		fmt.Printf("codec bench %s: wire %d B enc %.0fµs dec %.0fµs | gob %d B enc %.0fµs dec %.0fµs | %.1fx round trip, verify/decode %.3f\n",
			run.Kind, run.WireBytes, float64(run.WireEncodeNs)/1e3, float64(run.WireDecodeNs)/1e3,
			run.GobBytes, float64(run.GobEncodeNs)/1e3, float64(run.GobDecodeNs)/1e3,
			run.RoundTripSpeedup, run.VerifyVsDecode)
	}
	fmt.Printf("wrote %s: backend round trip %.1fx (floor %.1fx), worst verify/decode %.3f (ceiling %.1f)\n",
		path, rep.BackendRoundTripSpeedup, codecSpeedupFloor, rep.VerifyVsDecodeMax, verifyRatioCeiling)
	return nil
}
