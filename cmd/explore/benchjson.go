package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"sparkgo/internal/explore"
	"sparkgo/internal/obs"
	"sparkgo/internal/report"
)

// benchRun is one measured sweep in the cache trajectory.
type benchRun struct {
	// Name identifies the cache regime: "cold" (empty caches),
	// "warm" (same engine re-sweep, memory cache), "disk-cold"
	// (fresh engine populating a disk cache), "disk-warm" (fresh
	// engine — a stand-in for a restarted process — served from the
	// disk point cache), "disk-warm-sim" (fresh engine at a different
	// simulation depth: points miss, every stage artifact revives from
	// disk), "disk-warm-model" (fresh engine with only the backend
	// report model changed: frontend and midend revive, only the
	// backend re-runs).
	Name string `json:"name"`
	// Nanos is the wall time of the sweep.
	Nanos int64 `json:"ns"`
	// Configs is the number of configurations evaluated.
	Configs int `json:"configs"`
	// Failed counts configurations whose synthesis failed.
	Failed int            `json:"failed"`
	Stats  benchCacheStat `json:"cache"`
	// CacheTable is the per-layer statistics table for this run (the
	// same rendering `-sweep` prints), embedded so trend dashboards can
	// show the layer breakdown without re-deriving it.
	CacheTable *report.Table `json:"cache_table"`
}

type benchCacheStat struct {
	PointMemHits     int64 `json:"point_mem_hits"`
	PointDiskHits    int64 `json:"point_disk_hits"`
	PointComputed    int64 `json:"point_computed"`
	FrontendMemHits  int64 `json:"frontend_mem_hits"`
	FrontendDiskHits int64 `json:"frontend_disk_hits"`
	FrontendComputed int64 `json:"frontend_computed"`
	MidendMemHits    int64 `json:"midend_mem_hits"`
	MidendDiskHits   int64 `json:"midend_disk_hits"`
	MidendComputed   int64 `json:"midend_computed"`
	BackendMemHits   int64 `json:"backend_mem_hits"`
	BackendDiskHits  int64 `json:"backend_disk_hits"`
	BackendComputed  int64 `json:"backend_computed"`
	DiskErrors       int64 `json:"disk_errors"`
}

// benchStat renders engine stats as the JSON counter block.
func benchStat(s explore.Stats) benchCacheStat {
	return benchCacheStat{
		PointMemHits:     s.PointMemHits,
		PointDiskHits:    s.PointDiskHits,
		PointComputed:    s.PointComputed,
		FrontendMemHits:  s.FrontendMemHits,
		FrontendDiskHits: s.FrontendDiskHits,
		FrontendComputed: s.FrontendComputed,
		MidendMemHits:    s.MidendMemHits,
		MidendDiskHits:   s.MidendDiskHits,
		MidendComputed:   s.MidendComputed,
		BackendMemHits:   s.BackendMemHits,
		BackendDiskHits:  s.BackendDiskHits,
		BackendComputed:  s.BackendComputed,
		DiskErrors:       s.DiskErrors,
	}
}

// benchReport is the BENCH_explore.json schema consumed by CI trend
// tracking. Speedups are cold-time over the regime's time (higher is
// better; the caches are the product being measured). CacheSchema and
// StageVersions identify the cache generation the trajectory was
// measured under: archived reports are only comparable when they match,
// and a stage-version bump shows up as a schema change instead of a
// silent performance cliff (a bump retires every disk artifact, so the
// first post-bump run is legitimately cold).
type benchReport struct {
	Schema          string                `json:"schema"`
	Timestamp       string                `json:"timestamp"`
	CacheSchema     string                `json:"cache_schema"`
	StageVersions   explore.StageVersions `json:"stage_versions"`
	GoOS            string                `json:"goos"`
	GoArch          string                `json:"goarch"`
	CPUs            int                   `json:"cpus"`
	Workers         int                   `json:"workers"`
	SimTrials       int                   `json:"sim_trials"`
	Runs            []benchRun            `json:"runs"`
	WarmSpeedup     float64               `json:"warm_speedup"`
	DiskWarmSpeedup float64               `json:"disk_warm_speedup"`
	// Metrics is the cumulative observability snapshot across every
	// regime (stage latency histograms by disposition, tier ops, sim
	// cycles), keyed by Prometheus series name.
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// runBenchJSON measures the exploration-cache trajectory — cold, warm
// in-memory, disk-warm across a simulated process restart, and the two
// stage-revival regimes (sim depth changed: every stage revives; report
// model changed: frontend + midend revive, backend re-runs) — and
// writes the machine-readable report the CI workflow archives. The
// stage-revival runs are also asserted here: a disk-warm pass that
// recomputes midend or backend artifacts is a persistence regression,
// not a measurement.
func runBenchJSON(path, sizeList string, workers, simTrials int) error {
	sizes, err := parseSizes(sizeList)
	if err != nil {
		return err
	}
	space := explore.Grid(sizes, explore.Variants(), []int{0, 8}, true)
	cacheDir, err := os.MkdirTemp("", "explore-bench-cache-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(cacheDir)

	// One bus spans every regime's engine, so the snapshot in the report
	// accumulates the whole trajectory's stage/tier traffic.
	reg := obs.NewRegistry()
	bus := obs.NewBus(obs.NewMetrics(reg))

	measure := func(name string, eng *explore.Engine, sp []explore.Config) (benchRun, error) {
		before := eng.Stats()
		start := time.Now()
		pts := eng.Sweep(sp)
		elapsed := time.Since(start)
		failed := 0
		for _, p := range pts {
			if p.Err != "" {
				failed++
			}
		}
		delta := eng.Stats().Sub(before)
		run := benchRun{
			Name: name, Nanos: elapsed.Nanoseconds(),
			Configs: len(sp), Failed: failed,
			Stats:      benchStat(delta),
			CacheTable: cacheTable(delta),
		}
		if failed > 0 {
			return run, fmt.Errorf("%s sweep: %d of %d configurations failed", name, failed, len(sp))
		}
		return run, nil
	}

	rep := benchReport{
		Schema:        "sparkgo/bench-explore/v3",
		Timestamp:     time.Now().UTC().Format(time.RFC3339),
		CacheSchema:   explore.DiskSchema(),
		StageVersions: explore.Versions(),
		GoOS:          runtime.GOOS, GoArch: runtime.GOARCH,
		CPUs: runtime.NumCPU(), SimTrials: simTrials,
	}

	// Cold: empty memory cache, no disk.
	cold := &explore.Engine{Workers: workers, SimTrials: simTrials, Obs: bus}
	rep.Workers = cold.EffectiveWorkers(len(space))
	coldRun, err := measure("cold", cold, space)
	if err != nil {
		return err
	}
	rep.Runs = append(rep.Runs, coldRun)

	// Warm: the same engine re-sweeps against its in-memory cache.
	warmRun, err := measure("warm", cold, space)
	if err != nil {
		return err
	}
	rep.Runs = append(rep.Runs, warmRun)

	// Disk-cold: a fresh engine populates the disk cache.
	diskCold := &explore.Engine{Workers: workers, SimTrials: simTrials, CacheDir: cacheDir, Obs: bus}
	diskColdRun, err := measure("disk-cold", diskCold, space)
	if err != nil {
		return err
	}
	rep.Runs = append(rep.Runs, diskColdRun)

	// Disk-warm: another fresh engine — a restarted process — is served
	// from the persisted point cache.
	diskWarm := &explore.Engine{Workers: workers, SimTrials: simTrials, CacheDir: cacheDir, Obs: bus}
	diskWarmRun, err := measure("disk-warm", diskWarm, space)
	if err != nil {
		return err
	}
	rep.Runs = append(rep.Runs, diskWarmRun)

	// Disk-warm-sim: a restarted process at a different simulation
	// depth. Every point key misses, but all three stage artifacts —
	// frontend, midend, backend — revive from disk; only the simulator
	// re-runs. This is the warm pass the per-stage persistence is
	// asserted on.
	diskWarmSim := &explore.Engine{Workers: workers, SimTrials: simTrials + 1, CacheDir: cacheDir, Obs: bus}
	diskWarmSimRun, err := measure("disk-warm-sim", diskWarmSim, space)
	if err != nil {
		return err
	}
	rep.Runs = append(rep.Runs, diskWarmSimRun)
	if s := diskWarmSimRun.Stats; s.MidendDiskHits == 0 || s.BackendDiskHits == 0 ||
		s.MidendComputed > 0 || s.BackendComputed > 0 {
		return fmt.Errorf("disk-warm-sim sweep: stage persistence regression "+
			"(midend disk=%d computed=%d, backend disk=%d computed=%d; want all stages revived)",
			s.MidendDiskHits, s.MidendComputed, s.BackendDiskHits, s.BackendComputed)
	}

	// Disk-warm-model: a restarted process sweeping the same space with
	// only the backend report model changed. Frontend and midend revive
	// from disk (zero midend recomputes); only the backend stage runs.
	modelSpace := make([]explore.Config, len(space))
	for i, c := range space {
		c.ReportNand = 2
		modelSpace[i] = c
	}
	diskWarmModel := &explore.Engine{Workers: workers, SimTrials: simTrials, CacheDir: cacheDir, Obs: bus}
	diskWarmModelRun, err := measure("disk-warm-model", diskWarmModel, modelSpace)
	if err != nil {
		return err
	}
	rep.Runs = append(rep.Runs, diskWarmModelRun)
	if s := diskWarmModelRun.Stats; s.MidendDiskHits == 0 || s.MidendComputed > 0 {
		return fmt.Errorf("disk-warm-model sweep: midend persistence regression "+
			"(disk=%d computed=%d; want every schedule revived)",
			s.MidendDiskHits, s.MidendComputed)
	}

	if warmRun.Nanos > 0 {
		rep.WarmSpeedup = float64(coldRun.Nanos) / float64(warmRun.Nanos)
	}
	if diskWarmRun.Nanos > 0 {
		rep.DiskWarmSpeedup = float64(coldRun.Nanos) / float64(diskWarmRun.Nanos)
	}
	rep.Metrics = reg.Snapshot()

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s: cold %.1fms, warm %.1fms (%.0fx), disk-warm %.1fms (%.1fx), "+
		"stage-revival %.1fms/%.1fms, %d configs\n",
		path, float64(coldRun.Nanos)/1e6, float64(warmRun.Nanos)/1e6, rep.WarmSpeedup,
		float64(diskWarmRun.Nanos)/1e6, rep.DiskWarmSpeedup,
		float64(diskWarmSimRun.Nanos)/1e6, float64(diskWarmModelRun.Nanos)/1e6, len(space))
	return nil
}
