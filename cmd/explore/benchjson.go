package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"sparkgo/internal/explore"
)

// benchRun is one measured sweep in the cache trajectory.
type benchRun struct {
	// Name identifies the cache regime: "cold" (empty caches),
	// "warm" (same engine re-sweep, memory cache), "disk-cold"
	// (fresh engine populating a disk cache), "disk-warm" (fresh
	// engine — a stand-in for a restarted process — served from disk).
	Name string `json:"name"`
	// Nanos is the wall time of the sweep.
	Nanos int64 `json:"ns"`
	// Configs is the number of configurations evaluated.
	Configs int `json:"configs"`
	// Failed counts configurations whose synthesis failed.
	Failed int            `json:"failed"`
	Stats  benchCacheStat `json:"cache"`
}

type benchCacheStat struct {
	PointMemHits     int64 `json:"point_mem_hits"`
	PointDiskHits    int64 `json:"point_disk_hits"`
	PointComputed    int64 `json:"point_computed"`
	FrontendMemHits  int64 `json:"frontend_mem_hits"`
	FrontendDiskHits int64 `json:"frontend_disk_hits"`
	FrontendComputed int64 `json:"frontend_computed"`
	DiskErrors       int64 `json:"disk_errors"`
}

// benchReport is the BENCH_explore.json schema consumed by CI trend
// tracking. Speedups are cold-time over the regime's time (higher is
// better; the caches are the product being measured). CacheSchema and
// StageVersions identify the cache generation the trajectory was
// measured under: archived reports are only comparable when they match,
// and a stage-version bump shows up as a schema change instead of a
// silent performance cliff (a bump retires every disk artifact, so the
// first post-bump run is legitimately cold).
type benchReport struct {
	Schema          string                `json:"schema"`
	Timestamp       string                `json:"timestamp"`
	CacheSchema     string                `json:"cache_schema"`
	StageVersions   explore.StageVersions `json:"stage_versions"`
	GoOS            string                `json:"goos"`
	GoArch          string                `json:"goarch"`
	CPUs            int                   `json:"cpus"`
	Workers         int                   `json:"workers"`
	SimTrials       int                   `json:"sim_trials"`
	Runs            []benchRun            `json:"runs"`
	WarmSpeedup     float64               `json:"warm_speedup"`
	DiskWarmSpeedup float64               `json:"disk_warm_speedup"`
}

// runBenchJSON measures the exploration-cache trajectory — cold, warm
// in-memory, and disk-warm across a simulated process restart — and
// writes the machine-readable report the CI workflow archives.
func runBenchJSON(path, sizeList string, workers, simTrials int) error {
	sizes, err := parseSizes(sizeList)
	if err != nil {
		return err
	}
	space := explore.Grid(sizes, explore.Variants(), []int{0, 8}, true)
	cacheDir, err := os.MkdirTemp("", "explore-bench-cache-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(cacheDir)

	measure := func(name string, eng *explore.Engine, before explore.Stats) (benchRun, error) {
		start := time.Now()
		pts := eng.Sweep(space)
		elapsed := time.Since(start)
		failed := 0
		for _, p := range pts {
			if p.Err != "" {
				failed++
			}
		}
		after := eng.Stats()
		run := benchRun{
			Name: name, Nanos: elapsed.Nanoseconds(),
			Configs: len(space), Failed: failed,
			Stats: benchCacheStat{
				PointMemHits:     after.PointMemHits - before.PointMemHits,
				PointDiskHits:    after.PointDiskHits - before.PointDiskHits,
				PointComputed:    after.PointComputed - before.PointComputed,
				FrontendMemHits:  after.FrontendMemHits - before.FrontendMemHits,
				FrontendDiskHits: after.FrontendDiskHits - before.FrontendDiskHits,
				FrontendComputed: after.FrontendComputed - before.FrontendComputed,
				DiskErrors:       after.DiskErrors - before.DiskErrors,
			},
		}
		if failed > 0 {
			return run, fmt.Errorf("%s sweep: %d of %d configurations failed", name, failed, len(space))
		}
		return run, nil
	}

	report := benchReport{
		Schema:        "sparkgo/bench-explore/v2",
		Timestamp:     time.Now().UTC().Format(time.RFC3339),
		CacheSchema:   explore.DiskSchema(),
		StageVersions: explore.Versions(),
		GoOS:          runtime.GOOS, GoArch: runtime.GOARCH,
		CPUs: runtime.NumCPU(), SimTrials: simTrials,
	}

	// Cold: empty memory cache, no disk.
	cold := &explore.Engine{Workers: workers, SimTrials: simTrials}
	report.Workers = cold.EffectiveWorkers(len(space))
	coldRun, err := measure("cold", cold, explore.Stats{})
	if err != nil {
		return err
	}
	report.Runs = append(report.Runs, coldRun)

	// Warm: the same engine re-sweeps against its in-memory cache.
	warmRun, err := measure("warm", cold, cold.Stats())
	if err != nil {
		return err
	}
	report.Runs = append(report.Runs, warmRun)

	// Disk-cold: a fresh engine populates the disk cache.
	diskCold := &explore.Engine{Workers: workers, SimTrials: simTrials, CacheDir: cacheDir}
	diskColdRun, err := measure("disk-cold", diskCold, explore.Stats{})
	if err != nil {
		return err
	}
	report.Runs = append(report.Runs, diskColdRun)

	// Disk-warm: another fresh engine — a restarted process — reuses it.
	diskWarm := &explore.Engine{Workers: workers, SimTrials: simTrials, CacheDir: cacheDir}
	diskWarmRun, err := measure("disk-warm", diskWarm, explore.Stats{})
	if err != nil {
		return err
	}
	report.Runs = append(report.Runs, diskWarmRun)

	if warmRun.Nanos > 0 {
		report.WarmSpeedup = float64(coldRun.Nanos) / float64(warmRun.Nanos)
	}
	if diskWarmRun.Nanos > 0 {
		report.DiskWarmSpeedup = float64(coldRun.Nanos) / float64(diskWarmRun.Nanos)
	}

	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s: cold %.1fms, warm %.1fms (%.0fx), disk-warm %.1fms (%.1fx), %d configs\n",
		path, float64(coldRun.Nanos)/1e6, float64(warmRun.Nanos)/1e6, report.WarmSpeedup,
		float64(diskWarmRun.Nanos)/1e6, report.DiskWarmSpeedup, len(space))
	return nil
}
