package main

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"time"

	"sparkgo/internal/core"
	"sparkgo/internal/explore"
	"sparkgo/internal/ild"
	"sparkgo/internal/interp"
	"sparkgo/internal/ir"
	"sparkgo/internal/rtlsim"
)

// simSpeedupFloor is the regression gate for the compiled simulator:
// batching the SimTrials stimulus vectors through the lowered program
// must beat the old per-trial scalar loop by at least this factor on
// the paper's n=32 decoder. The measured margin is ~2x the floor; a
// report below it means the batch path has regressed (or the scalar
// path silently became the fast path again).
const simSpeedupFloor = 5.0

// bitParallelFloor gates the bit-sliced execution model against the
// struct-of-arrays batch it replaced: on the control-dominated
// classical-asic preset — where 1-bit predicates and state-aware
// evaluation pay off — the bit-sliced program must be at least this
// much faster than the SoA program on the same workload. The
// single-cycle microprocessor-block preset is reported but not gated:
// its one-state FSM evaluates the whole netlist every cycle either
// way, so the packing win there is real but smaller.
const bitParallelFloor = 2.0

// simBenchRun is one preset's scalar/SoA/bit-sliced measurement.
type simBenchRun struct {
	// Preset names the synthesis regime: "microprocessor-block" is the
	// paper's single-cycle decoder, "classical-asic" the sequential
	// baseline whose FSM makes per-cycle costs dominate.
	Preset string `json:"preset"`
	// NumStates and WatchdogCycles record the FSM size and the derived
	// simulation bound the trials ran under.
	NumStates      int `json:"num_states"`
	WatchdogCycles int `json:"watchdog_cycles"`
	// ScalarNanos is the best-of-reps wall time of the per-trial scalar
	// loop (one Sim per stimulus vector); BatchNanos the same workload
	// through the struct-of-arrays CompileSoA + Run, compile cost
	// included; BitParNanos through the bit-sliced Compile + Run.
	ScalarNanos int64   `json:"scalar_ns"`
	BatchNanos  int64   `json:"batch_ns"`
	BitParNanos int64   `json:"bitparallel_ns"`
	Speedup     float64 `json:"speedup"`
	// BitParSpeedup is SoA batch time over bit-sliced time: the payoff
	// of packing 64 one-bit lanes per word.
	BitParSpeedup float64 `json:"bitparallel_speedup"`
	// InsnMix breaks the bit-sliced program down by opcode class — how
	// much of the netlist actually packed.
	InsnMix rtlsim.InsnMix `json:"insn_mix"`
	// BatchRunAllocs counts heap allocations during the bit-sliced
	// batch Run — the steady-state per-cycle path must not allocate.
	BatchRunAllocs uint64 `json:"batch_run_allocs"`
}

// simBenchReport is the BENCH_sim.json schema consumed by CI trend
// tracking. CacheSchema and StageVersions identify the synthesis
// generation the modules were built under, so archived reports are only
// compared within a generation (a stage bump changes the netlists being
// simulated, which legitimately moves the numbers).
type simBenchReport struct {
	Schema        string                `json:"schema"`
	Timestamp     string                `json:"timestamp"`
	CacheSchema   string                `json:"cache_schema"`
	StageVersions explore.StageVersions `json:"stage_versions"`
	GoOS          string                `json:"goos"`
	GoArch        string                `json:"goarch"`
	CPUs          int                   `json:"cpus"`
	N             int                   `json:"n"`
	SimTrials     int                   `json:"sim_trials"`
	SpeedupFloor  float64               `json:"speedup_floor"`
	BitParFloor   float64               `json:"bitparallel_floor"`
	Runs          []simBenchRun         `json:"runs"`
	// Speedup is the minimum scalar-vs-batch ratio across presets;
	// BitParSpeedup the classical-asic (control-dominated) SoA-vs-
	// bit-sliced ratio — the two numbers the CI gate reads.
	// BatchRunAllocs is the maximum (which must still be zero).
	Speedup        float64 `json:"speedup"`
	BitParSpeedup  float64 `json:"bitparallel_speedup"`
	BatchRunAllocs uint64  `json:"batch_run_allocs"`
}

// measureBatch is one best-of-reps timing of a compiled batch model on
// the shared stimulus, cross-checked against the scalar cycle counts (a
// benchmark that drifts semantically is not a benchmark).
func measureBatch(name, model string, prog *rtlsim.Program, input *ir.Program,
	envs []*interp.Env, scalarCycles []int, maxCycles, reps int) (int64, error) {
	var best int64
	for rep := 0; rep < reps; rep++ {
		start := time.Now()
		batch := prog.NewBatch(len(envs))
		for ln, env := range envs {
			if err := batch.LoadEnv(ln, input, env); err != nil {
				return 0, fmt.Errorf("%s: %s load: %w", name, model, err)
			}
		}
		if err := batch.Run(maxCycles); err != nil {
			return 0, fmt.Errorf("%s: %s run: %w", name, model, err)
		}
		if ns := time.Since(start).Nanoseconds(); rep == 0 || ns < best {
			best = ns
		}
		for ln := range envs {
			if got := batch.Cycles(ln); got != scalarCycles[ln] {
				return 0, fmt.Errorf("%s: trial %d: %s took %d cycles, scalar %d",
					name, ln, model, got, scalarCycles[ln])
			}
		}
	}
	return best, nil
}

// measureSimPreset times the 64-trial scalar loop against both compiled
// batch models on one synthesis preset.
func measureSimPreset(name string, preset core.Preset, n, trials, reps int) (simBenchRun, error) {
	run := simBenchRun{Preset: name}
	res, err := core.Synthesize(ild.Program(n), core.Options{Preset: preset})
	if err != nil {
		return run, fmt.Errorf("%s: synthesize: %w", name, err)
	}
	rng := rand.New(rand.NewSource(42))
	envs := make([]*interp.Env, trials)
	for i := range envs {
		envs[i] = interp.RandomEnv(res.Input, rng)
	}
	maxCycles := rtlsim.WatchdogCycles(res.Module.NumStates)
	run.NumStates = res.Module.NumStates
	run.WatchdogCycles = maxCycles

	// Scalar: best of reps, one fresh Sim per trial — the loop shape
	// core.Verify and the explore engine used before batching.
	scalarCycles := make([]int, trials)
	for rep := 0; rep < reps; rep++ {
		start := time.Now()
		for i, env := range envs {
			sim := rtlsim.New(res.Module)
			if err := sim.LoadEnv(res.Input, env); err != nil {
				return run, fmt.Errorf("%s: scalar load: %w", name, err)
			}
			cycles, err := sim.Run(maxCycles)
			if err != nil {
				return run, fmt.Errorf("%s: scalar run: %w", name, err)
			}
			scalarCycles[i] = cycles
		}
		if ns := time.Since(start).Nanoseconds(); rep == 0 || ns < run.ScalarNanos {
			run.ScalarNanos = ns
		}
	}

	// Both batch models, compile cost included — this is what one
	// design-point evaluation pays. The compile happens once here (not
	// per rep) so the two models split the same netlist identically.
	soa := rtlsim.CompileSoA(res.Module)
	bit := rtlsim.Compile(res.Module)
	run.InsnMix = bit.Mix()
	if run.BatchNanos, err = measureBatch(name, "soa-batch", soa,
		res.Input, envs, scalarCycles, maxCycles, reps); err != nil {
		return run, err
	}
	if run.BitParNanos, err = measureBatch(name, "bitsliced-batch", bit,
		res.Input, envs, scalarCycles, maxCycles, reps); err != nil {
		return run, err
	}
	if run.BatchNanos > 0 {
		run.Speedup = float64(run.ScalarNanos) / float64(run.BatchNanos)
	}
	if run.BitParNanos > 0 {
		run.BitParSpeedup = float64(run.BatchNanos) / float64(run.BitParNanos)
	}

	// Allocation audit: a loaded, un-run bit-sliced batch stepped to
	// completion must not touch the heap.
	batch := bit.NewBatch(trials)
	for ln, env := range envs {
		if err := batch.LoadEnv(ln, res.Input, env); err != nil {
			return run, fmt.Errorf("%s: alloc-audit load: %w", name, err)
		}
	}
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	if err := batch.Run(maxCycles); err != nil {
		return run, fmt.Errorf("%s: alloc-audit run: %w", name, err)
	}
	runtime.ReadMemStats(&after)
	run.BatchRunAllocs = after.Mallocs - before.Mallocs
	return run, nil
}

// runSimBenchJSON measures both compiled batch models against the
// scalar reference on the paper's n=32 ILD under both presets, asserts
// the scalar-speedup floor, the bit-parallel floor on the
// control-dominated preset, and the zero-allocation steady state, and
// writes the machine-readable report the CI workflow archives.
func runSimBenchJSON(path string, simTrials int) error {
	if simTrials < 1 || simTrials > rtlsim.MaxLanes {
		simTrials = rtlsim.MaxLanes
	}
	rep := simBenchReport{
		Schema:        "sparkgo/bench-sim/v2",
		Timestamp:     time.Now().UTC().Format(time.RFC3339),
		CacheSchema:   explore.DiskSchema(),
		StageVersions: explore.Versions(),
		GoOS:          runtime.GOOS, GoArch: runtime.GOARCH,
		CPUs: runtime.NumCPU(),
		N:    32, SimTrials: simTrials,
		SpeedupFloor: simSpeedupFloor,
		BitParFloor:  bitParallelFloor,
	}
	presets := []struct {
		name   string
		preset core.Preset
	}{
		{"microprocessor-block", core.MicroprocessorBlock},
		{"classical-asic", core.ClassicalASIC},
	}
	const reps = 3
	for _, pr := range presets {
		run, err := measureSimPreset(pr.name, pr.preset, rep.N, simTrials, reps)
		if err != nil {
			return err
		}
		rep.Runs = append(rep.Runs, run)
		if rep.Speedup == 0 || run.Speedup < rep.Speedup {
			rep.Speedup = run.Speedup
		}
		if pr.name == "classical-asic" {
			rep.BitParSpeedup = run.BitParSpeedup
		}
		if run.BatchRunAllocs > rep.BatchRunAllocs {
			rep.BatchRunAllocs = run.BatchRunAllocs
		}
	}
	if rep.Speedup < simSpeedupFloor {
		return fmt.Errorf("sim bench: batch speedup %.2fx below the %.0fx floor", rep.Speedup, simSpeedupFloor)
	}
	if rep.BitParSpeedup < bitParallelFloor {
		return fmt.Errorf("sim bench: bit-parallel speedup %.2fx below the %.1fx floor on classical-asic",
			rep.BitParSpeedup, bitParallelFloor)
	}
	if rep.BatchRunAllocs != 0 {
		return fmt.Errorf("sim bench: batch Run allocated %d times; the per-cycle path must be allocation-free",
			rep.BatchRunAllocs)
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return err
	}
	for _, run := range rep.Runs {
		fmt.Printf("sim bench %s: scalar %.2fms, soa %.2fms (%.1fx), bitsliced %.2fms (%.2fx over soa), mix %d packed/%d boundary/%d wide/%d lane, %d allocs in Run\n",
			run.Preset, float64(run.ScalarNanos)/1e6, float64(run.BatchNanos)/1e6,
			run.Speedup, float64(run.BitParNanos)/1e6, run.BitParSpeedup,
			run.InsnMix.Packed, run.InsnMix.Boundary, run.InsnMix.Wide, run.InsnMix.Lane,
			run.BatchRunAllocs)
	}
	fmt.Printf("wrote %s: min scalar speedup %.1fx (floor %.0fx), bit-parallel %.2fx (floor %.1fx), n=%d, %d trials\n",
		path, rep.Speedup, simSpeedupFloor, rep.BitParSpeedup, bitParallelFloor, rep.N, simTrials)
	return nil
}
