// Command explore drives the design-space exploration engine and
// regenerates every experiment table of the reproduction (DESIGN.md §4:
// E1–E17 and the A-series ablations). With no arguments it runs every
// experiment; pass experiment ids (e.g. "E12 A E15 E17") to select.
//
// The -sweep mode runs a standalone concurrent sweep over
// (preset × pass toggles × unroll bounds × buffer sizes) and prints the
// full point cloud, the latency/area Pareto frontier, and the engine's
// per-stage cache statistics (memory vs disk hits vs computed):
//
//	explore -sweep [-workers 8] [-sizes 4,8,16,32] [-sim 1] [-csv]
//	        [-cache-dir .explore-cache] [-remote-cache http://host:8341]
//	        [-src a.c,b.c]
//
// -src replaces the built-in ILD generator with arbitrary user programs
// parsed from files: the sweep batches every named source into one
// configuration space. -cache-dir persists stage artifacts and
// evaluated points on disk, so repeated sweeps — including across
// process restarts — reuse earlier synthesis work; -remote-cache chains
// a sparkd daemon's /v1/blobs API behind the local tiers, so a cold
// machine reuses the fleet's artifacts; -cache-max-bytes
// garbage-collects the cache directory afterwards (oldest artifacts
// first, including those under retired schema versions).
//
// The -search mode replaces the exhaustive grid with an adaptive search
// over the same axes (pass orderings × motion knockouts × unroll bounds
// × chaining) and prints its improvement trajectory, best design, and
// cache statistics:
//
//	explore -search [-strategy hill|genetic|anneal] [-budget 64] [-deadline 30s]
//	        [-objective latency|area|weighted] [-seed 1] [-n 16]
//	        [-search-json BENCH_search.json]
//
// The -bench-json mode measures the cache trajectory (cold sweep, warm
// in-memory re-sweep, disk-warm sweep in a fresh engine) and writes the
// results as machine-readable JSON for CI trend tracking:
//
//	explore -bench-json BENCH_explore.json [-workers 8] [-sizes 4,8]
//
// The -codec-bench-json mode measures the artifact wire codecs against
// the retired gob baseline (encode/decode ns, allocations, and the
// verify-vs-decode ratio of streaming-hash revival), asserts the
// regression floors in-binary, and writes the results as JSON:
//
//	explore -codec-bench-json BENCH_codec.json
//
// The local -sweep and -search modes accept -cpuprofile/-memprofile for
// pprof capture; profile remote runs with sparkd -pprof instead.
//
// Usage:
//
//	explore [-n 16] [-csv] [E1 E2 ... A E15 E16]
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"strconv"
	"strings"
	"syscall"
	"time"

	"sparkgo/internal/experiments"
	"sparkgo/internal/explore"
	"sparkgo/internal/ir"
	"sparkgo/internal/parser"
	"sparkgo/internal/report"
	"sparkgo/internal/rtlsim"
)

func main() {
	n := flag.Int("n", 16, "ILD buffer size for the stage/ablation experiments")
	csv := flag.Bool("csv", false, "emit CSV instead of aligned tables")
	sweep := flag.Bool("sweep", false, "run a standalone design-space sweep and print its frontier")
	workers := flag.Int("workers", 0, "sweep worker-pool size (0 = one per CPU)")
	sizes := flag.String("sizes", "4,8,16,32", "comma-separated ILD buffer sizes for -sweep")
	sim := flag.Int("sim", 1, "per-config rtlsim latency trials for -sweep (0 = report FSM states)")
	cacheDir := flag.String("cache-dir", "", "disk-backed exploration cache directory (persists across runs)")
	cacheMaxBytes := flag.Int64("cache-max-bytes", 0, "garbage-collect the cache directory down to this many bytes after the run (0 = never)")
	remoteCache := flag.String("remote-cache", "", "base URL of a sparkd daemon whose /v1/blobs API backs the local cache (e.g. http://host:8341)")
	srcFiles := flag.String("src", "", "comma-separated source files to sweep instead of the ILD generator")
	benchJSON := flag.String("bench-json", "", "write cold/warm/disk-warm sweep benchmark results to this JSON file and exit")
	simBenchJSON := flag.String("sim-bench-json", "", "write scalar-vs-batched simulator benchmark results to this JSON file and exit")
	codecBenchJSON := flag.String("codec-bench-json", "", "write wire-vs-gob artifact codec benchmark results to this JSON file and exit")
	search := flag.Bool("search", false, "run an adaptive design-space search instead of an exhaustive sweep")
	strategy := flag.String("strategy", "hill", "search strategy: hill (steepest-ascent + restarts), genetic, or anneal (simulated annealing)")
	objective := flag.String("objective", "weighted", "search objective: latency, area, or weighted")
	budget := flag.Int("budget", 64, "search budget: max distinct configurations evaluated (0 = unbounded)")
	deadline := flag.Duration("deadline", 0, "search wall-clock budget (0 = unbounded)")
	seed := flag.Int64("seed", 1, "search RNG seed (same seed, same trajectory)")
	searchJSON := flag.String("search-json", "", "write the search summary to this JSON file (with -search)")
	remote := flag.String("remote", "", "ship -sweep/-search jobs to a sparkd daemon at this address instead of running locally")
	follow := flag.Bool("follow", false, "with -remote: subscribe to the job's live event stream (SSE) and print progress/trajectory lines")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile of the -sweep/-search run to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile at the end of the -sweep/-search run to this file")
	flag.Parse()

	printTable := func(t *report.Table) {
		if *csv {
			fmt.Println(t.CSV())
		} else {
			fmt.Println(t)
		}
	}

	// Mode flags that would silently lose to one another are conflicts:
	// -search runs the adaptive engine over the built-in generator at -n
	// only, so combining it with the sweep-only inputs must fail loudly
	// rather than search the wrong program.
	if *search {
		if *sweep {
			fmt.Fprintln(os.Stderr, "-search and -sweep are mutually exclusive")
			os.Exit(1)
		}
		if *benchJSON != "" {
			fmt.Fprintln(os.Stderr, "-search and -bench-json are mutually exclusive")
			os.Exit(1)
		}
		if *srcFiles != "" {
			fmt.Fprintln(os.Stderr, "-search does not support -src yet: the search space is the built-in ILD generator at -n")
			os.Exit(1)
		}
	}

	if *remote != "" && !*sweep && !*search {
		fmt.Fprintln(os.Stderr, "-remote requires -sweep or -search (experiments run locally)")
		os.Exit(1)
	}
	if *follow && *remote == "" {
		fmt.Fprintln(os.Stderr, "-follow streams a daemon job's events and requires -remote")
		os.Exit(1)
	}
	if *remote != "" && *searchJSON != "" {
		fmt.Fprintln(os.Stderr, "-search-json is not supported with -remote (the daemon's /v1/jobs/{id} JSON is the machine-readable result)")
		os.Exit(1)
	}

	// Profiling captures this process, so it pairs with the local sweep
	// and search modes only: under -remote the work runs in the daemon
	// (profile that with sparkd -pprof), and the experiment tables have
	// no profiling story worth a flag.
	if *cpuProfile != "" || *memProfile != "" {
		if !*sweep && !*search {
			fmt.Fprintln(os.Stderr, "-cpuprofile/-memprofile require -sweep or -search")
			os.Exit(1)
		}
		if *remote != "" {
			fmt.Fprintln(os.Stderr, "-cpuprofile/-memprofile profile this process; with -remote the work runs in sparkd (use its -pprof listener)")
			os.Exit(1)
		}
	}

	if *benchJSON != "" {
		if err := runBenchJSON(*benchJSON, *sizes, *workers, *sim); err != nil {
			fmt.Fprintf(os.Stderr, "bench-json FAILED: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *simBenchJSON != "" {
		if err := runSimBenchJSON(*simBenchJSON, rtlsim.MaxLanes); err != nil {
			fmt.Fprintf(os.Stderr, "sim-bench-json FAILED: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *codecBenchJSON != "" {
		if err := runCodecBenchJSON(*codecBenchJSON); err != nil {
			fmt.Fprintf(os.Stderr, "codec-bench-json FAILED: %v\n", err)
			os.Exit(1)
		}
		return
	}

	// Ctrl-C (and SIGTERM) cancel in-flight sweeps and searches at the
	// next evaluation-batch boundary instead of running to completion;
	// a second signal kills the process the default way.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *search {
		var err error
		if *remote != "" {
			err = runRemoteSearch(ctx, *remote, *strategy, *objective, *n, *budget, *deadline, *seed, *follow, printTable)
		} else {
			stopProf, perr := startProfiles(*cpuProfile, *memProfile)
			if perr != nil {
				fmt.Fprintf(os.Stderr, "search FAILED: %v\n", perr)
				os.Exit(1)
			}
			err = runSearch(ctx, *strategy, *objective, *n, *budget, *deadline, *seed,
				*workers, *sim, *cacheDir, *remoteCache, *searchJSON, printTable)
			if err == nil {
				err = runCacheGC(*cacheDir, *cacheMaxBytes)
			}
			if perr := stopProf(); perr != nil && err == nil {
				err = perr
			}
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "search FAILED: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *sweep {
		var err error
		if *remote != "" {
			err = runRemoteSweep(ctx, *remote, *sizes, *srcFiles, *deadline, *follow, printTable)
		} else {
			stopProf, perr := startProfiles(*cpuProfile, *memProfile)
			if perr != nil {
				fmt.Fprintf(os.Stderr, "sweep FAILED: %v\n", perr)
				os.Exit(1)
			}
			err = runSweepLocal(ctx, *sizes, *srcFiles, *cacheDir, *remoteCache, *workers, *sim, *deadline, printTable)
			if err == nil {
				err = runCacheGC(*cacheDir, *cacheMaxBytes)
			}
			if perr := stopProf(); perr != nil && err == nil {
				err = perr
			}
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "sweep FAILED: %v\n", err)
			os.Exit(1)
		}
		return
	}

	type exp struct {
		id  string
		run func() (*report.Table, error)
	}
	all := []exp{
		{"E1", experiments.E1Fig02Unroll},
		{"E2", experiments.E2Fig03ConstPropParallel},
		{"E3", experiments.E3Fig04Chaining},
		{"E4", experiments.E4Fig05Trails},
		{"E5", experiments.E5E6WireVariables},
		{"E7", func() (*report.Table, error) { return experiments.E7Fig10Behavior(40) }},
		{"E8", func() (*report.Table, error) { return experiments.E8toE11Stages(*n) }},
		{"E12", func() (*report.Table, error) {
			return experiments.E12Fig15SingleCycle([]int{4, 8, 16, 32}, 10)
		}},
		{"E13", func() (*report.Table, error) { return experiments.E13Baseline([]int{4, 8, 16}) }},
		{"E14", func() (*report.Table, error) { return experiments.E14Fig16Natural(8) }},
		{"E15", func() (*report.Table, error) { return experiments.E15Exploration(*workers) }},
		{"E16", func() (*report.Table, error) { return experiments.E16PassOrder(*n, *workers) }},
		{"E17", func() (*report.Table, error) { return experiments.E17AdaptiveSearch(*n, *workers) }},
		{"A", func() (*report.Table, error) { return experiments.Ablations(*n) }},
	}

	want := map[string]bool{}
	for _, a := range flag.Args() {
		want[strings.ToUpper(a)] = true
	}
	failed := 0
	for _, e := range all {
		if len(want) > 0 && !want[e.id] &&
			!(want["E5"] && e.id == "E6") && !(want["E8"] && e.id == "E11") {
			continue
		}
		t, err := e.run()
		if t != nil {
			printTable(t)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s FAILED: %v\n", e.id, err)
			failed++
		}
	}
	if failed > 0 {
		os.Exit(1)
	}
}

// runCacheGC applies the -cache-max-bytes budget to the exploration
// cache directory after a run: artifacts are evicted oldest-access
// first, retired schema versions included, until the directory fits.
func runCacheGC(cacheDir string, maxBytes int64) error {
	if cacheDir == "" || maxBytes <= 0 {
		return nil
	}
	eng := &explore.Engine{CacheDir: cacheDir}
	st, err := eng.CacheGC(maxBytes)
	if err != nil {
		return fmt.Errorf("cache gc: %w", err)
	}
	fmt.Printf("cache gc: %d of %d artifacts evicted (%d -> %d bytes, budget %d)\n",
		st.RemovedFiles, st.ScannedFiles, st.ScannedBytes, st.RemainingBytes, maxBytes)
	if len(st.Kinds) > 0 {
		t := report.New("cache gc per kind",
			"kind", "scanned files", "scanned bytes", "evicted files", "evicted bytes")
		for _, k := range st.Kinds {
			t.Add(k.Kind, k.ScannedFiles, k.ScannedBytes, k.RemovedFiles, k.RemovedBytes)
		}
		fmt.Println(t)
	}
	return nil
}

// parseSizes turns the -sizes flag into a size list.
func parseSizes(sizeList string) ([]int, error) {
	var sizes []int
	for _, f := range strings.Split(sizeList, ",") {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		v, err := strconv.Atoi(f)
		if err != nil || v < 1 {
			return nil, fmt.Errorf("bad buffer size %q", f)
		}
		sizes = append(sizes, v)
	}
	if len(sizes) == 0 {
		return nil, fmt.Errorf("no buffer sizes given")
	}
	return sizes, nil
}

// loadSources parses the -src file list into a named source table. Names
// are file basenames without extension; duplicates are rejected rather
// than silently shadowed.
func loadSources(fileList string) (map[string]*ir.Program, []string, error) {
	sources := map[string]*ir.Program{}
	var names []string
	for _, path := range strings.Split(fileList, ",") {
		path = strings.TrimSpace(path)
		if path == "" {
			continue
		}
		text, err := os.ReadFile(path)
		if err != nil {
			return nil, nil, err
		}
		name := strings.TrimSuffix(filepath.Base(path), filepath.Ext(path))
		if _, dup := sources[name]; dup {
			return nil, nil, fmt.Errorf("duplicate source name %q (from %s)", name, path)
		}
		prog, err := parser.Parse(name, string(text))
		if err != nil {
			return nil, nil, fmt.Errorf("%s: %w", path, err)
		}
		sources[name] = prog
		names = append(names, name)
	}
	if len(names) == 0 {
		return nil, nil, fmt.Errorf("no source files given")
	}
	return sources, names, nil
}

// runSweepLocal executes the standalone exploration sweep and prints the
// point cloud, the Pareto frontier, and the engine's cache statistics.
// The context (SIGINT/SIGTERM) and the -deadline flag both cancel the
// sweep mid-run; a cancelled sweep reports how far it got and fails.
func runSweepLocal(ctx context.Context, sizeList, srcFiles, cacheDir, remoteCache string,
	workers, simTrials int, deadline time.Duration, printTable func(*report.Table)) error {
	if deadline > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, deadline)
		defer cancel()
	}
	eng := &explore.Engine{Workers: workers, SimTrials: simTrials, CacheDir: cacheDir, RemoteCache: remoteCache}
	var space []explore.Config
	if srcFiles != "" {
		sources, names, err := loadSources(srcFiles)
		if err != nil {
			return err
		}
		eng.Sources = sources
		space = explore.GridSources(names, explore.Variants(), []int{0, 8}, true)
	} else {
		sizes, err := parseSizes(sizeList)
		if err != nil {
			return err
		}
		space = explore.Grid(sizes, explore.Variants(), []int{0, 8}, true)
	}
	pts := eng.SweepContext(ctx, space)
	printTable(explore.Table(fmt.Sprintf("design-space sweep (%d configs)", len(space)), pts))
	printTable(explore.Table("latency/area Pareto frontier", explore.Frontier(pts)))
	printTable(cacheTable(eng.Stats()))
	fmt.Printf("workers: %d\n", eng.EffectiveWorkers(len(space)))
	failed, skipped := 0, 0
	for _, p := range pts {
		switch {
		case explore.IsCanceled(p):
			skipped++
		case p.Err != "":
			failed++
		}
	}
	if skipped > 0 {
		return fmt.Errorf("sweep canceled: %d of %d configurations not evaluated (%v)",
			skipped, len(space), context.Cause(ctx))
	}
	if failed > 0 {
		return fmt.Errorf("%d of %d configurations failed", failed, len(space))
	}
	return nil
}

// cacheTable renders the engine's per-stage cache statistics: where each
// lookup was served from (memory, disk, the remote peer, or computed by
// synthesis), one row per layer of the staged flow, plus a row for the
// absorbed store errors.
func cacheTable(s explore.Stats) *report.Table {
	t := report.New("exploration cache statistics",
		"layer", "memory hits", "disk hits", "remote hits", "computed", "errors")
	t.Add("point", s.PointMemHits, s.PointDiskHits, s.PointRemoteHits, s.PointComputed, "")
	t.Add("frontend stage", s.FrontendMemHits, s.FrontendDiskHits, s.FrontendRemoteHits, s.FrontendComputed, "")
	t.Add("midend stage", s.MidendMemHits, s.MidendDiskHits, s.MidendRemoteHits, s.MidendComputed, "")
	t.Add("backend stage", s.BackendMemHits, s.BackendDiskHits, s.BackendRemoteHits, s.BackendComputed, "")
	t.Add("disk", "", "", "", "", s.DiskErrors)
	t.Add("remote", "", "", "", "", s.RemoteErrors)
	return t
}
