// Command explore regenerates every experiment table of the reproduction
// (DESIGN.md §4: E1–E14 and the A-series ablations) — the design-space
// exploration loop the paper positions Spark for. With no arguments it
// runs everything; pass experiment ids (e.g. "E12 A") to select.
//
// Usage:
//
//	explore [-n 16] [-csv] [E1 E2 ... A]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"sparkgo/internal/experiments"
	"sparkgo/internal/report"
)

func main() {
	n := flag.Int("n", 16, "ILD buffer size for the stage/ablation experiments")
	csv := flag.Bool("csv", false, "emit CSV instead of aligned tables")
	flag.Parse()

	type exp struct {
		id  string
		run func() (*report.Table, error)
	}
	all := []exp{
		{"E1", experiments.E1Fig02Unroll},
		{"E2", experiments.E2Fig03ConstPropParallel},
		{"E3", experiments.E3Fig04Chaining},
		{"E4", experiments.E4Fig05Trails},
		{"E5", experiments.E5E6WireVariables},
		{"E7", func() (*report.Table, error) { return experiments.E7Fig10Behavior(40) }},
		{"E8", func() (*report.Table, error) { return experiments.E8toE11Stages(*n) }},
		{"E12", func() (*report.Table, error) {
			return experiments.E12Fig15SingleCycle([]int{4, 8, 16, 32}, 10)
		}},
		{"E13", func() (*report.Table, error) { return experiments.E13Baseline([]int{4, 8, 16}) }},
		{"E14", func() (*report.Table, error) { return experiments.E14Fig16Natural(8) }},
		{"A", func() (*report.Table, error) { return experiments.Ablations(*n) }},
	}

	want := map[string]bool{}
	for _, a := range flag.Args() {
		want[strings.ToUpper(a)] = true
	}
	failed := 0
	for _, e := range all {
		if len(want) > 0 && !want[e.id] &&
			!(want["E5"] && e.id == "E6") && !(want["E8"] && e.id == "E11") {
			continue
		}
		t, err := e.run()
		if t != nil {
			if *csv {
				fmt.Println(t.CSV())
			} else {
				fmt.Println(t)
			}
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s FAILED: %v\n", e.id, err)
			failed++
		}
	}
	if failed > 0 {
		os.Exit(1)
	}
}
