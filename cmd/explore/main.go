// Command explore drives the design-space exploration engine and
// regenerates every experiment table of the reproduction (DESIGN.md §4:
// E1–E15 and the A-series ablations). With no arguments it runs every
// experiment; pass experiment ids (e.g. "E12 A E15") to select.
//
// The -sweep mode runs a standalone concurrent sweep over
// (preset × pass toggles × unroll bounds × buffer sizes) and prints the
// full point cloud plus the latency/area Pareto frontier:
//
//	explore -sweep [-workers 8] [-sizes 4,8,16,32] [-sim 1] [-csv]
//
// Usage:
//
//	explore [-n 16] [-csv] [E1 E2 ... A E15]
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"sparkgo/internal/experiments"
	"sparkgo/internal/explore"
	"sparkgo/internal/report"
)

func main() {
	n := flag.Int("n", 16, "ILD buffer size for the stage/ablation experiments")
	csv := flag.Bool("csv", false, "emit CSV instead of aligned tables")
	sweep := flag.Bool("sweep", false, "run a standalone design-space sweep and print its frontier")
	workers := flag.Int("workers", 0, "sweep worker-pool size (0 = one per CPU)")
	sizes := flag.String("sizes", "4,8,16,32", "comma-separated ILD buffer sizes for -sweep")
	sim := flag.Int("sim", 1, "per-config rtlsim latency trials for -sweep (0 = report FSM states)")
	flag.Parse()

	printTable := func(t *report.Table) {
		if *csv {
			fmt.Println(t.CSV())
		} else {
			fmt.Println(t)
		}
	}

	if *sweep {
		if err := runSweep(*sizes, *workers, *sim, printTable); err != nil {
			fmt.Fprintf(os.Stderr, "sweep FAILED: %v\n", err)
			os.Exit(1)
		}
		return
	}

	type exp struct {
		id  string
		run func() (*report.Table, error)
	}
	all := []exp{
		{"E1", experiments.E1Fig02Unroll},
		{"E2", experiments.E2Fig03ConstPropParallel},
		{"E3", experiments.E3Fig04Chaining},
		{"E4", experiments.E4Fig05Trails},
		{"E5", experiments.E5E6WireVariables},
		{"E7", func() (*report.Table, error) { return experiments.E7Fig10Behavior(40) }},
		{"E8", func() (*report.Table, error) { return experiments.E8toE11Stages(*n) }},
		{"E12", func() (*report.Table, error) {
			return experiments.E12Fig15SingleCycle([]int{4, 8, 16, 32}, 10)
		}},
		{"E13", func() (*report.Table, error) { return experiments.E13Baseline([]int{4, 8, 16}) }},
		{"E14", func() (*report.Table, error) { return experiments.E14Fig16Natural(8) }},
		{"E15", func() (*report.Table, error) { return experiments.E15Exploration(*workers) }},
		{"A", func() (*report.Table, error) { return experiments.Ablations(*n) }},
	}

	want := map[string]bool{}
	for _, a := range flag.Args() {
		want[strings.ToUpper(a)] = true
	}
	failed := 0
	for _, e := range all {
		if len(want) > 0 && !want[e.id] &&
			!(want["E5"] && e.id == "E6") && !(want["E8"] && e.id == "E11") {
			continue
		}
		t, err := e.run()
		if t != nil {
			printTable(t)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s FAILED: %v\n", e.id, err)
			failed++
		}
	}
	if failed > 0 {
		os.Exit(1)
	}
}

// runSweep executes the standalone exploration sweep and prints the point
// cloud, the Pareto frontier, and the engine's cache statistics.
func runSweep(sizeList string, workers, simTrials int, printTable func(*report.Table)) error {
	var sizes []int
	for _, f := range strings.Split(sizeList, ",") {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		v, err := strconv.Atoi(f)
		if err != nil || v < 1 {
			return fmt.Errorf("bad buffer size %q", f)
		}
		sizes = append(sizes, v)
	}
	if len(sizes) == 0 {
		return fmt.Errorf("no buffer sizes given")
	}
	space := explore.Grid(sizes, explore.Variants(), []int{0, 8}, true)
	eng := &explore.Engine{Workers: workers, SimTrials: simTrials}
	pts := eng.Sweep(space)
	printTable(explore.Table(fmt.Sprintf("design-space sweep (%d configs)", len(space)), pts))
	printTable(explore.Table("latency/area Pareto frontier", explore.Frontier(pts)))
	hits, misses := eng.CacheStats()
	fmt.Printf("cache: %d hits, %d misses; workers: %d\n",
		hits, misses, eng.EffectiveWorkers(len(space)))
	failed := 0
	for _, p := range pts {
		if p.Err != "" {
			failed++
		}
	}
	if failed > 0 {
		return fmt.Errorf("%d of %d configurations failed", failed, len(space))
	}
	return nil
}
