package main

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// startProfiles arms the standard Go profilers for a sweep or search
// run: a CPU profile streamed to cpuPath for the duration, and a heap
// snapshot written to memPath at stop. Either path may be empty. The
// returned stop function must run before the process exits, or the CPU
// profile is truncated and the heap profile never written.
func startProfiles(cpuPath, memPath string) (stop func() error, err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("cpuprofile: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("cpuprofile: %w", err)
		}
	}
	return func() error {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				return fmt.Errorf("cpuprofile: %w", err)
			}
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				return fmt.Errorf("memprofile: %w", err)
			}
			defer f.Close()
			runtime.GC() // settle the heap so the snapshot is live objects, not garbage
			if err := pprof.WriteHeapProfile(f); err != nil {
				return fmt.Errorf("memprofile: %w", err)
			}
		}
		return nil
	}, nil
}
