package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"time"

	"sparkgo/internal/obs"
	"sparkgo/internal/report"
	"sparkgo/internal/service"
)

// remoteClient ships jobs to a sparkd daemon instead of evaluating them
// in-process: the -remote mode of cmd/explore. The flags keep their
// local meaning; only the execution venue changes — and with it the
// caches, which the daemon shares across every client.
type remoteClient struct {
	base string // http://host:port
	http *http.Client
	// follow streams each submitted job's SSE feed to stderr alongside
	// the poll loop (the -follow flag).
	follow bool
}

func newRemoteClient(addr string) *remoteClient {
	if !strings.Contains(addr, "://") {
		addr = "http://" + addr
	}
	return &remoteClient{
		base: strings.TrimRight(addr, "/"),
		http: &http.Client{Timeout: 30 * time.Second},
	}
}

// do round-trips one API call, decoding the JSON payload into out. The
// context cancels the call (Ctrl-C mid-poll aborts the client; the
// daemon keeps running its job — DELETE it to stop the work too).
func (c *remoteClient) do(ctx context.Context, method, path string, body, out any) error {
	var rd io.Reader
	if body != nil {
		data, err := json.Marshal(body)
		if err != nil {
			return err
		}
		rd = bytes.NewReader(data)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, rd)
	if err != nil {
		return err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode >= 400 {
		var eb struct {
			Error string `json:"error"`
		}
		if json.Unmarshal(data, &eb) == nil && eb.Error != "" {
			return fmt.Errorf("%s %s: %s", method, path, eb.Error)
		}
		return fmt.Errorf("%s %s: HTTP %d", method, path, resp.StatusCode)
	}
	if out == nil {
		return nil
	}
	return json.Unmarshal(data, out)
}

// submitAndWait submits one job and polls it to a terminal status,
// reporting queue progress on stderr. Context cancellation (Ctrl-C)
// stops polling, cancels the remote job, and returns the context error.
func (c *remoteClient) submitAndWait(ctx context.Context, req service.Request) (service.JobView, error) {
	var job service.JobView
	if err := c.do(ctx, "POST", "/v1/jobs", req, &job); err != nil {
		return job, err
	}
	if job.Deduped {
		fmt.Fprintf(os.Stderr, "remote: job %s deduped onto an in-flight identical request\n", job.ID)
	} else {
		fmt.Fprintf(os.Stderr, "remote: job %s submitted\n", job.ID)
	}
	var followed chan struct{}
	if c.follow {
		followed = make(chan struct{})
		go func() {
			defer close(followed)
			c.followEvents(ctx, job.ID)
		}()
	}
	defer func() {
		if followed == nil {
			return
		}
		// The stream closes itself on the terminal event; bound the wait
		// so a wedged connection cannot hold the client open.
		select {
		case <-followed:
		case <-time.After(3 * time.Second):
		}
	}()
	for !job.Status.Terminal() {
		select {
		case <-ctx.Done():
			return job, c.abandon(job.ID, ctx.Err())
		case <-time.After(200 * time.Millisecond):
		}
		if err := c.do(ctx, "GET", "/v1/jobs/"+job.ID, nil, &job); err != nil {
			// Cancellation can also surface as a transport error on the
			// in-flight poll; the abandoned job still must be cancelled.
			if ctx.Err() != nil {
				return job, c.abandon(job.ID, ctx.Err())
			}
			return job, err
		}
	}
	if job.Status == service.StatusFailed {
		return job, fmt.Errorf("remote job %s failed: %s", job.ID, job.Error)
	}
	if job.Status == service.StatusCanceled {
		return job, fmt.Errorf("remote job %s was canceled", job.ID)
	}
	return job, nil
}

// followEvents consumes GET /v1/jobs/{id}/events and prints each frame
// as a live line on stderr: lifecycle transitions, per-batch progress,
// and search trajectory improvements as they are found. It returns when
// the daemon closes the stream (terminal status) or the context dies.
// Best-effort by design: a follow failure degrades to plain polling
// rather than failing the job.
func (c *remoteClient) followEvents(ctx context.Context, jobID string) {
	req, err := http.NewRequestWithContext(ctx, "GET", c.base+"/v1/jobs/"+jobID+"/events", nil)
	if err != nil {
		return
	}
	// Not c.http: its 30-second overall timeout is right for API calls
	// and wrong for a stream that lives as long as the job.
	resp, err := (&http.Client{}).Do(req)
	if err != nil {
		fmt.Fprintf(os.Stderr, "remote: follow: %v\n", err)
		return
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		fmt.Fprintf(os.Stderr, "remote: follow: HTTP %d\n", resp.StatusCode)
		return
	}
	sc := bufio.NewScanner(resp.Body)
	var data string
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "data: "):
			data = strings.TrimPrefix(line, "data: ")
		case line == "" && data != "":
			var ev obs.Event
			if json.Unmarshal([]byte(data), &ev) == nil {
				printEventLine(jobID, ev)
			}
			data = ""
		}
	}
}

// printEventLine renders one stream event as a human line.
func printEventLine(jobID string, ev obs.Event) {
	switch ev.Type {
	case obs.TypeJob:
		if ev.Err != "" {
			fmt.Fprintf(os.Stderr, "remote: [%s] %s: %s\n", jobID, ev.Op, ev.Err)
		} else {
			fmt.Fprintf(os.Stderr, "remote: [%s] %s\n", jobID, ev.Op)
		}
	case obs.TypeProgress:
		fmt.Fprintf(os.Stderr, "remote: [%s] progress %d/%d\n", jobID, ev.Done, ev.Total)
	case obs.TypeTrajectory:
		fmt.Fprintf(os.Stderr, "remote: [%s] eval %d score %.1f latency %d  %s\n",
			jobID, ev.Evaluation, ev.Score, ev.Cycles, ev.Config)
	case obs.TypeRound:
		fmt.Fprintf(os.Stderr, "remote: [%s] round %d complete\n", jobID, ev.Round)
	}
}

// abandon best-effort-cancels a remote job the interrupted client will
// never collect, so the daemon doesn't keep running it. The DELETE gets
// a fresh context — the caller's is the one that just died.
func (c *remoteClient) abandon(jobID string, cause error) error {
	cancelCtx, stop := context.WithTimeout(context.Background(), 5*time.Second)
	defer stop()
	_ = c.do(cancelCtx, "DELETE", "/v1/jobs/"+jobID, nil, nil)
	return fmt.Errorf("interrupted; remote job %s cancelled: %w", jobID, cause)
}

// remoteStatsTables renders the daemon's /v1/stats as the same cache
// table local runs print, plus the queue's job accounting.
func (c *remoteClient) remoteStatsTables(ctx context.Context) ([]*report.Table, error) {
	var st service.StatsView
	if err := c.do(ctx, "GET", "/v1/stats", nil, &st); err != nil {
		return nil, err
	}
	t := report.New(fmt.Sprintf("daemon cache statistics (schema %s)", st.CacheSchema),
		"layer", "memory hits", "disk hits", "computed", "disk errors")
	t.Add("point", st.Engine.PointMemHits, st.Engine.PointDiskHits, st.Engine.PointComputed, "")
	t.Add("frontend stage", st.Engine.FrontendMemHits, st.Engine.FrontendDiskHits, st.Engine.FrontendComputed, "")
	t.Add("midend stage", st.Engine.MidendMemHits, st.Engine.MidendDiskHits, st.Engine.MidendComputed, "")
	t.Add("backend stage", st.Engine.BackendMemHits, st.Engine.BackendDiskHits, st.Engine.BackendComputed, "")
	t.Add("disk", "", "", "", st.Engine.DiskErrors)
	q := report.New("daemon queue statistics", "metric", "value")
	q.Add("submitted", st.Queue.Submitted)
	q.Add("coalesced (single-flight)", st.Queue.Coalesced)
	q.Add("queued", st.Queue.Queued)
	q.Add("running", st.Queue.Running)
	q.Add("done", st.Queue.Done)
	q.Add("failed", st.Queue.Failed)
	q.Add("canceled", st.Queue.Canceled)
	return []*report.Table{t, q}, nil
}

// pointTable renders remote point views in the local sweep-table shape.
func pointTable(title string, pts []service.PointView) *report.Table {
	t := report.New(title,
		"config", "cycles", "latency", "crit path (gu)", "area", "muxes", "FUs", "err")
	for _, p := range pts {
		t.Add(p.Config, p.Cycles, p.Latency, p.CritPath, p.Area, p.Muxes, p.FUs, p.Err)
	}
	return t
}

// runRemoteSweep ships the -sweep flags to the daemon: one job for the
// generator grid, or one per -src file (each file is its own source
// space, matching the local batched sweep's per-source grids). The
// -deadline flag maps to the job's hard deadline — the same fail-fast
// semantics the local sweep gives it.
func runRemoteSweep(ctx context.Context, addr, sizeList, srcFiles string,
	deadline time.Duration, follow bool, printTable func(*report.Table)) error {
	c := newRemoteClient(addr)
	c.follow = follow
	var reqs []service.Request
	if srcFiles != "" {
		for _, path := range strings.Split(srcFiles, ",") {
			path = strings.TrimSpace(path)
			if path == "" {
				continue
			}
			text, err := os.ReadFile(path)
			if err != nil {
				return err
			}
			reqs = append(reqs, service.Request{
				Kind: service.KindSweep, Source: string(text), Classical: true,
				DeadlineMS: deadline.Milliseconds(),
			})
		}
		if len(reqs) == 0 {
			return fmt.Errorf("no source files given")
		}
	} else {
		sizes, err := parseSizes(sizeList)
		if err != nil {
			return err
		}
		reqs = append(reqs, service.Request{
			Kind: service.KindSweep, Sizes: sizes, Classical: true,
			DeadlineMS: deadline.Milliseconds(),
		})
	}
	for _, req := range reqs {
		job, err := c.submitAndWait(ctx, req)
		if err != nil {
			return err
		}
		res := job.Result
		if res == nil {
			return fmt.Errorf("remote job %s: done without result", job.ID)
		}
		title := fmt.Sprintf("remote design-space sweep (%d configs, job %s)", len(res.Points), job.ID)
		printTable(pointTable(title, res.Points))
		printTable(pointTable("latency/area Pareto frontier", res.Frontier))
		if res.SourceFingerprint != "" {
			fmt.Printf("source fingerprint: %s (reuse via source_ref)\n", res.SourceFingerprint)
		}
	}
	tables, err := c.remoteStatsTables(ctx)
	if err != nil {
		return err
	}
	for _, t := range tables {
		printTable(t)
	}
	return nil
}

// runRemoteSearch ships the -search flags to the daemon. The -deadline
// flag maps to the job's *soft* search budget (budget_ms), matching the
// local semantics: the search stops gracefully at the deadline and
// still reports its best design, rather than failing the job.
func runRemoteSearch(ctx context.Context, addr, strategy, objective string, n, budgetEvals int,
	deadline time.Duration, seed int64, follow bool, printTable func(*report.Table)) error {
	c := newRemoteClient(addr)
	c.follow = follow
	job, err := c.submitAndWait(ctx, service.Request{
		Kind: service.KindSearch, N: n,
		Strategy: strategy, Objective: objective,
		Budget: budgetEvals, Seed: seed,
		BudgetMS: deadline.Milliseconds(),
	})
	if err != nil {
		return err
	}
	res := job.Result
	if res == nil || res.Search == nil {
		return fmt.Errorf("remote job %s: done without search result", job.ID)
	}
	sv := res.Search
	t := report.New(
		fmt.Sprintf("remote adaptive search: %s over n=%d (objective=%s seed=%d, job %s)",
			sv.Strategy, n, sv.Objective, sv.Seed, job.ID),
		"evaluation", "score", "latency", "area", "config")
	for _, s := range sv.Trajectory {
		t.Add(s.Evaluation, s.Score, s.Point.Latency, s.Point.Area, s.Point.Config)
	}
	printTable(t)
	sum := report.New("remote search summary", "metric", "value")
	sum.Add("evaluations", sv.Evaluations)
	sum.Add("revisits (free)", sv.Revisits)
	sum.Add("exhausted budget", sv.Exhausted)
	if sv.Best != nil {
		sum.Add("best score", sv.BestScore)
		sum.Add("best latency", sv.Best.Latency)
		sum.Add("best area", sv.Best.Area)
		sum.Add("best config", sv.Best.Config)
	}
	printTable(sum)
	tables, err := c.remoteStatsTables(ctx)
	if err != nil {
		return err
	}
	for _, t := range tables {
		printTable(t)
	}
	return nil
}
