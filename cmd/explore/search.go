package main

import (
	"context"
	"encoding/json"
	"fmt"
	"math"
	"os"
	"runtime"
	"time"

	"sparkgo/internal/explore"
	"sparkgo/internal/obs"
	"sparkgo/internal/report"
)

// searchStep is one trajectory improvement in the JSON summary.
type searchStep struct {
	Evaluation int     `json:"evaluation"`
	Score      float64 `json:"score"`
	Config     string  `json:"config"`
	Latency    int     `json:"latency"`
	Area       float64 `json:"area"`
}

// searchReport is the BENCH_search.json schema consumed by CI trend
// tracking, the adaptive-search sibling of benchReport. CacheSchema and
// StageVersions identify the cache generation the run was measured
// under: archived reports are only comparable when they match, and a
// stage-version bump shows up as a schema change instead of a silent
// performance cliff.
type searchReport struct {
	Schema        string                `json:"schema"`
	Timestamp     string                `json:"timestamp"`
	CacheSchema   string                `json:"cache_schema"`
	StageVersions explore.StageVersions `json:"stage_versions"`
	GoOS          string                `json:"goos"`
	GoArch        string                `json:"goarch"`
	CPUs          int                   `json:"cpus"`
	N             int                   `json:"n"`
	Strategy      string                `json:"strategy"`
	Objective     string                `json:"objective"`
	Seed          int64                 `json:"seed"`
	Budget        int                   `json:"budget"`
	Nanos         int64                 `json:"ns"`
	Evaluations   int                   `json:"evaluations"`
	Revisits      int                   `json:"revisits"`
	Restarts      int                   `json:"restarts,omitempty"`
	Generations   int                   `json:"generations,omitempty"`
	Exhausted     bool                  `json:"exhausted"`
	BestScore     float64               `json:"best_score"`
	BestConfig    string                `json:"best_config"`
	BestLatency   int                   `json:"best_latency"`
	BestArea      float64               `json:"best_area"`
	Trajectory    []searchStep          `json:"trajectory"`
	Cache         benchCacheStat        `json:"cache"`
	// Metrics is the run's folded observability snapshot (stage latency
	// histogram counts/sums by disposition, tier ops, sim cycles), keyed
	// by Prometheus series name — the same numbers sparkd's /metrics
	// would expose for this work.
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// runSearch drives one adaptive search over the default space at scale n
// and prints the trajectory, the best design, and the engine's cache
// statistics; jsonPath != "" additionally writes the machine-readable
// summary CI archives as BENCH_search.json.
func runSearch(ctx context.Context, strategy, objective string, n, budgetEvals int,
	deadline time.Duration, seed int64, workers, simTrials int, cacheDir, remoteCache, jsonPath string,
	printTable func(*report.Table)) error {
	st, err := explore.StrategyByName(strategy)
	if err != nil {
		return err
	}
	obj, err := explore.ObjectiveByName(objective)
	if err != nil {
		return err
	}
	if budgetEvals <= 0 && deadline <= 0 {
		return fmt.Errorf("search needs a budget: -budget evaluations and/or -deadline")
	}
	eng := &explore.Engine{Workers: workers, SimTrials: simTrials, CacheDir: cacheDir, RemoteCache: remoteCache}
	reg := obs.NewRegistry()
	eng.Obs = obs.NewBus(obs.NewMetrics(reg))
	budget := explore.Budget{MaxEvaluations: budgetEvals, MaxDuration: deadline}

	start := time.Now()
	res := st.SearchContext(ctx, eng, explore.DefaultSpace(n), obj, budget, seed)
	elapsed := time.Since(start)

	// A BestScore still at +Inf means no candidate ever evaluated
	// successfully: res.Best is the zero Point, not a design (and +Inf
	// does not survive JSON marshaling).
	if math.IsInf(res.BestScore, 1) {
		if res.Canceled {
			return fmt.Errorf("search canceled before any configuration was evaluated")
		}
		return fmt.Errorf("search found no successful design: every evaluated configuration failed")
	}

	t := report.New(
		fmt.Sprintf("adaptive search: %s over n=%d (objective=%s seed=%d)",
			res.Strategy, n, objective, seed),
		"evaluation", "score", "latency", "area", "config")
	for _, s := range res.Trajectory {
		t.Add(s.Evaluation, s.Score, s.Point.Latency, s.Point.Area, s.Point.Config.String())
	}
	printTable(t)

	sum := report.New("search summary", "metric", "value")
	sum.Add("evaluations", res.Evaluations)
	sum.Add("revisits (free)", res.Revisits)
	if res.Restarts > 0 {
		sum.Add("restarts", res.Restarts)
	}
	if res.Generations > 0 {
		sum.Add("generations", res.Generations)
	}
	sum.Add("exhausted budget", res.Exhausted)
	if res.Canceled {
		sum.Add("canceled", true)
	}
	sum.Add("best score", res.BestScore)
	sum.Add("best latency", res.Best.Latency)
	sum.Add("best area", res.Best.Area)
	sum.Add("best config", res.Best.Config.String())
	sum.Add("wall time", elapsed.Round(time.Millisecond).String())
	printTable(sum)
	printTable(cacheTable(eng.Stats()))

	if res.Best.Err != "" {
		return fmt.Errorf("search best point failed: %s", res.Best.Err)
	}

	if jsonPath != "" {
		stats := eng.Stats()
		rep := searchReport{
			Schema:        "sparkgo/bench-search/v3",
			Timestamp:     time.Now().UTC().Format(time.RFC3339),
			CacheSchema:   explore.DiskSchema(),
			StageVersions: explore.Versions(),
			GoOS:          runtime.GOOS, GoArch: runtime.GOARCH, CPUs: runtime.NumCPU(),
			N: n, Strategy: res.Strategy, Objective: objective, Seed: seed,
			Budget: budgetEvals, Nanos: elapsed.Nanoseconds(),
			Evaluations: res.Evaluations, Revisits: res.Revisits,
			Restarts: res.Restarts, Generations: res.Generations,
			Exhausted: res.Exhausted, BestScore: res.BestScore,
			BestConfig:  res.Best.Config.String(),
			BestLatency: res.Best.Latency, BestArea: res.Best.Area,
			Cache:   benchStat(stats),
			Metrics: reg.Snapshot(),
		}
		for _, s := range res.Trajectory {
			rep.Trajectory = append(rep.Trajectory, searchStep{
				Evaluation: s.Evaluation, Score: s.Score,
				Config:  s.Point.Config.String(),
				Latency: s.Point.Latency, Area: s.Point.Area,
			})
		}
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return err
		}
		data = append(data, '\n')
		if err := os.WriteFile(jsonPath, data, 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s: %s found score %.1f in %d evaluations (%.1fms)\n",
			jsonPath, res.Strategy, res.BestScore, res.Evaluations,
			float64(elapsed.Nanoseconds())/1e6)
	}
	if res.Canceled {
		// The partial trajectory was reported (and the JSON written);
		// the exit code still says the run did not complete.
		return fmt.Errorf("search canceled after %d evaluations", res.Evaluations)
	}
	return nil
}
