// Command ildgen emits the instruction-length-decoder behavioral
// description for a given buffer size (the paper's Fig 10 form, or the
// Fig 16 natural while-loop form with -natural), ready for cmd/sparkgo.
//
// Usage:
//
//	ildgen [-n 16] [-natural] > ild16.c
package main

import (
	"flag"
	"fmt"
	"os"

	"sparkgo/internal/ild"
)

func main() {
	n := flag.Int("n", 16, "instruction buffer size in bytes")
	natural := flag.Bool("natural", false, "emit the Fig 16 natural while-loop form")
	flag.Parse()
	if *n < 1 || *n > 256 {
		fmt.Fprintln(os.Stderr, "ildgen: n must be in 1..256")
		os.Exit(2)
	}
	if *natural {
		fmt.Print(ild.SourceNatural(*n))
	} else {
		fmt.Print(ild.SourceFig10(*n))
	}
}
