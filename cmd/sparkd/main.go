// Command sparkd is the synthesis-as-a-service daemon: a long-running
// HTTP/JSON server that runs synth, sweep, and search jobs from many
// clients on a bounded worker pool over ONE shared exploration engine,
// so every request amortizes the same in-memory stage cache and disk
// cache, and identical in-flight requests are single-flighted.
//
//	sparkd [-addr :8341] [-workers 0] [-sim 1]
//	       [-cache-dir .sparkd-cache] [-cache-max-bytes 0]
//	       [-remote-cache http://peer:8341]
//	       [-addr-file path] [-drain-timeout 30s] [-pprof localhost:6060]
//
// -workers bounds concurrent jobs (0 = one per CPU); each job's sweeps
// additionally parallelize over the engine's own pool. -cache-dir
// persists stage artifacts across restarts; -cache-max-bytes keeps the
// directory under a byte budget (GC runs after jobs finish, oldest
// artifacts first). -remote-cache chains this daemon's cache behind a
// peer's /v1/blobs API: local misses are fetched from the peer and
// local work is written through to it, so a cold node warms itself off
// the fleet. -addr-file writes the bound address — useful with
// -addr 127.0.0.1:0 when scripts need the kernel-chosen port. -pprof
// serves net/http/pprof on a separate opt-in listener (its own mux, so
// the job API never grows debug routes).
//
// SIGINT/SIGTERM drain gracefully: intake stops (submits answer 503),
// accepted jobs finish, and only then does the process exit;
// -drain-timeout caps the wait, after which outstanding jobs are
// cancelled at their next evaluation-batch boundary.
//
// API surface (see internal/service):
//
//	POST   /v1/jobs                  {"kind":"synth"|"sweep"|"search", ...}
//	GET    /v1/jobs                  list
//	GET    /v1/jobs/{id}             poll; terminal jobs carry results inline
//	GET    /v1/jobs/{id}/events      live event stream (SSE): lifecycle,
//	                                 progress, search trajectory
//	DELETE /v1/jobs/{id}             cancel
//	GET    /v1/blobs/{kind}/{key}    raw artifact bytes (HEAD probes presence)
//	PUT    /v1/blobs/{kind}/{key}    store artifact (digest-verified)
//	DELETE /v1/blobs/{kind}/{key}    purge artifact
//	GET    /v1/stats                 cache/blob/queue/GC/event counters + schema
//	GET    /metrics                  Prometheus text exposition (stage latency,
//	                                 cache tiers, sim cycles, job lifecycle)
//	GET    /healthz                  liveness (JSON: uptime, build identity)
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"sparkgo/internal/explore"
	"sparkgo/internal/obs"
	"sparkgo/internal/service"
)

func main() {
	addr := flag.String("addr", ":8341", "listen address (host:0 picks a free port)")
	addrFile := flag.String("addr-file", "", "write the bound address to this file once listening")
	workers := flag.Int("workers", 0, "job worker-pool size (0 = one per CPU)")
	engineWorkers := flag.Int("engine-workers", 0, "per-sweep engine worker-pool size (0 = one per CPU)")
	sim := flag.Int("sim", 1, "per-config rtlsim latency trials (0 = report FSM states)")
	cacheDir := flag.String("cache-dir", "", "disk-backed exploration cache directory shared by every job")
	cacheMaxBytes := flag.Int64("cache-max-bytes", 0, "garbage-collect the cache directory down to this many bytes after jobs (0 = never)")
	remoteCache := flag.String("remote-cache", "", "base URL of a peer daemon whose /v1/blobs API backs the local cache (e.g. http://peer:8341)")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "max wait for in-flight jobs on shutdown before cancelling them")
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof on this address (opt-in debug listener, e.g. localhost:6060)")
	flag.Parse()

	if *pprofAddr != "" {
		stop, err := servePprof(*pprofAddr)
		if err != nil {
			fmt.Fprintf(os.Stderr, "sparkd: pprof: %v\n", err)
			os.Exit(1)
		}
		defer stop()
	}

	if err := run(*addr, *addrFile, *workers, *engineWorkers, *sim, *cacheDir, *cacheMaxBytes, *remoteCache, *drainTimeout); err != nil {
		fmt.Fprintf(os.Stderr, "sparkd: %v\n", err)
		os.Exit(1)
	}
}

func run(addr, addrFile string, workers, engineWorkers, sim int, cacheDir string,
	cacheMaxBytes int64, remoteCache string, drainTimeout time.Duration) error {
	eng := &explore.Engine{Workers: engineWorkers, SimTrials: sim, CacheDir: cacheDir, RemoteCache: remoteCache}
	// The bus must be attached before the queue starts workers: it feeds
	// /metrics and every job's SSE stream.
	eng.Obs = obs.NewBus(obs.NewMetrics(obs.NewRegistry()))
	queue := service.NewQueue(eng, effectiveWorkers(workers), cacheMaxBytes)
	// Header/idle timeouts shed half-open and idle connections; no
	// blanket write timeout, since job polls legitimately stream large
	// result payloads.
	srv := &http.Server{
		Handler:           service.NewServer(queue),
		ReadHeaderTimeout: 10 * time.Second,
		IdleTimeout:       120 * time.Second,
	}

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	bound := ln.Addr().String()
	fmt.Printf("sparkd listening on %s (workers=%d sim=%d cache=%q schema=%s)\n",
		bound, effectiveWorkers(workers), sim, cacheDir, explore.DiskSchema())
	if addrFile != "" {
		if err := os.WriteFile(addrFile, []byte(bound+"\n"), 0o644); err != nil {
			return err
		}
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()

	select {
	case err := <-serveErr:
		return err
	case <-ctx.Done():
	}

	// Graceful drain: stop intake first so clients see 503 rather than
	// enqueueing work the shutdown will cancel, let accepted jobs
	// finish (bounded), then close the listener.
	fmt.Println("sparkd: draining...")
	drainCtx, cancel := context.WithTimeout(context.Background(), drainTimeout)
	defer cancel()
	if err := queue.Drain(drainCtx); err != nil {
		fmt.Fprintf(os.Stderr, "sparkd: drain cut short: %v\n", err)
	}
	shutCtx, cancel2 := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel2()
	if err := srv.Shutdown(shutCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	fmt.Println("sparkd: stopped")
	return nil
}

// servePprof exposes the runtime profiling endpoints on a dedicated
// listener with its own mux, so the job API's handler never grows
// debug routes and the debug surface binds only where asked (keep it
// on localhost). The returned closer shuts the listener.
func servePprof(addr string) (func(), error) {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	fmt.Printf("sparkd pprof listening on http://%s/debug/pprof/\n", ln.Addr())
	// Same connection hygiene as the main listener — a debug port is
	// still a port. pprof's profile endpoints stream for their whole
	// sampling window, so again no blanket write timeout.
	srv := &http.Server{
		Handler:           mux,
		ReadHeaderTimeout: 10 * time.Second,
		IdleTimeout:       120 * time.Second,
	}
	go func() { _ = srv.Serve(ln) }() // lives until the closer runs or the process exits
	return func() { ln.Close() }, nil
}

// effectiveWorkers mirrors the engine's 0-means-GOMAXPROCS convention
// for the job pool.
func effectiveWorkers(n int) int {
	if n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}
