// Command sparkgo is the synthesis driver: it reads a behavioral C
// description, applies the coordinated transformations, schedules, and
// emits RTL — the end-to-end flow of the Spark system (paper §4).
//
// Usage:
//
//	sparkgo [flags] design.c
//
//	-preset micro|classical   synthesis regime (default micro)
//	-script file              synthesis script (overrides the preset's
//	                          transformation pipeline; see package script)
//	-clock N                  clock period in gate units (0 = unconstrained)
//	-o dir                    output directory (default .)
//	-vhdl / -verilog          emit RTL (default both)
//	-verify N                 co-simulate N random vectors (default 20)
//	-stages                   print per-pass stage metrics
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"sparkgo/internal/bind"
	"sparkgo/internal/core"
	"sparkgo/internal/delay"
	"sparkgo/internal/parser"
	"sparkgo/internal/report"
	"sparkgo/internal/rtl"
	"sparkgo/internal/script"
)

func main() {
	presetFlag := flag.String("preset", "micro", "synthesis preset: micro or classical")
	scriptFlag := flag.String("script", "", "synthesis script file")
	clockFlag := flag.Float64("clock", 0, "clock period in gate units (0 = unconstrained)")
	outFlag := flag.String("o", ".", "output directory")
	vhdlFlag := flag.Bool("vhdl", true, "emit VHDL")
	verilogFlag := flag.Bool("verilog", true, "emit Verilog")
	verifyFlag := flag.Int("verify", 20, "random co-simulation vectors (0 = skip)")
	stagesFlag := flag.Bool("stages", false, "print per-pass stage metrics")
	flag.Parse()

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: sparkgo [flags] design.c")
		flag.PrintDefaults()
		os.Exit(2)
	}
	srcPath := flag.Arg(0)
	src, err := os.ReadFile(srcPath)
	if err != nil {
		fail(err)
	}
	name := strings.TrimSuffix(filepath.Base(srcPath), filepath.Ext(srcPath))
	prog, err := parser.Parse(name, string(src))
	if err != nil {
		fail(fmt.Errorf("%s: %w", srcPath, err))
	}

	opt := core.Options{}
	switch *presetFlag {
	case "micro", "microprocessor":
		opt.Preset = core.MicroprocessorBlock
	case "classical", "asic":
		opt.Preset = core.ClassicalASIC
	default:
		fail(fmt.Errorf("unknown preset %q", *presetFlag))
	}
	if *scriptFlag != "" {
		text, err := os.ReadFile(*scriptFlag)
		if err != nil {
			fail(err)
		}
		sc, err := script.Parse(string(text))
		if err != nil {
			fail(err)
		}
		opt = core.FromScript(sc)
	}
	if *clockFlag > 0 {
		opt.Model = delay.Default().WithClock(*clockFlag)
	}

	res, err := core.Synthesize(prog, opt)
	if err != nil {
		fail(err)
	}

	if *stagesFlag {
		t := report.New("transformation stages", "pass", "changed", "stmts", "ops", "ifs", "loops", "calls")
		for _, st := range res.Stages {
			t.Add(st.Pass, st.Changed, st.Stmts, st.Ops, st.Ifs, st.Loops, st.Calls)
		}
		fmt.Println(t)
	}

	t := report.New("synthesis result", "metric", "value")
	t.Add("preset", res.Preset)
	t.Add("FSM states", res.Cycles)
	t.Add("critical path (gu)", res.Stats.CriticalPath)
	t.Add("area (NAND eq)", res.Stats.Area)
	t.Add("functional units", res.Stats.FUs)
	t.Add("muxes", res.Stats.Muxes)
	t.Add("registers", res.Stats.Registers)
	br := bind.Summarize(res.Schedule)
	t.Add("wire-variables", br.WireVars)
	t.Add("register variables", br.RegisterVars)
	t.Add("shared registers (left-edge)", br.SharedRegs)
	if res.Schedule.ClockViolations > 0 {
		t.Add("CLOCK VIOLATIONS", res.Schedule.ClockViolations)
	}
	fmt.Println(t)

	if *verifyFlag > 0 {
		if err := core.Verify(res, *verifyFlag, 1); err != nil {
			fail(fmt.Errorf("verification FAILED: %w", err))
		}
		fmt.Printf("verified: RTL == behavioral on %d random vectors\n\n", *verifyFlag)
	}

	if err := os.MkdirAll(*outFlag, 0o755); err != nil {
		fail(err)
	}
	if *vhdlFlag {
		path := filepath.Join(*outFlag, name+".vhd")
		if err := os.WriteFile(path, []byte(rtl.EmitVHDL(res.Module)), 0o644); err != nil {
			fail(err)
		}
		fmt.Println("wrote", path)
	}
	if *verilogFlag {
		path := filepath.Join(*outFlag, name+".v")
		if err := os.WriteFile(path, []byte(rtl.EmitVerilog(res.Module)), 0o644); err != nil {
			fail(err)
		}
		fmt.Println("wrote", path)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "sparkgo:", err)
	os.Exit(1)
}
