// Chaining across conditional boundaries (paper §3.1, Figs 4-7): this
// example synthesizes the paper's exact Fig 4 listing, shows the trails
// the chaining heuristic validates, and contrasts the chained single-cycle
// schedule against the no-chaining ablation where every dependence level
// costs a cycle.
//
//	go run ./examples/chaining
package main

import (
	"fmt"
	"log"

	"sparkgo/internal/bind"
	"sparkgo/internal/core"
	"sparkgo/internal/htg"
	"sparkgo/internal/ir"
	"sparkgo/internal/parser"
	"sparkgo/internal/report"
	"sparkgo/internal/transform"
)

// Paper Fig 4(a), verbatim structure.
const fig4 = `
uint8 a;
uint8 b;
uint8 c;
uint8 d;
uint8 e;
bool cond;
uint8 f;
void main() {
  uint8 t1;
  uint8 t2;
  uint8 t3;
  t1 = a + b;
  if (cond) {
    t2 = t1;
    t3 = c + d;
  } else {
    t2 = e;
    t3 = c - d;
  }
  f = t2 + t3;
}
`

func main() {
	fmt.Println("=== Paper Fig 4: chaining operations across a conditional ===")
	fmt.Print(fig4)

	// Show the chaining trails (paper §3.1.1): lower to an HTG and
	// enumerate the control paths reaching the final addition.
	prog := parser.MustParse("fig4", fig4)
	lowered := ir.CloneProgram(prog)
	if _, err := transform.Inline(nil).Run(lowered); err != nil {
		log.Fatal(err)
	}
	g, err := htg.Lower(lowered, lowered.Main())
	if err != nil {
		log.Fatal(err)
	}
	var target *htg.BasicBlock
	for _, bb := range g.Blocks {
		for _, op := range bb.Ops {
			if w := op.Writes(); w != nil && w.Name == "f" {
				target = bb
			}
		}
	}
	trails := g.Trails(target)
	fmt.Printf("chaining trails to the block of 'f = t2 + t3': %d\n", len(trails))
	for i, tr := range trails {
		fmt.Printf("  trail %d: ", i+1)
		for j, bb := range tr {
			if j > 0 {
				fmt.Print(" -> ")
			}
			fmt.Print(bb)
		}
		fmt.Println()
	}
	fmt.Println()

	// Chained vs no-chaining schedules.
	t := report.New("chaining vs one-dependence-level-per-cycle",
		"configuration", "cycles", "crit path (gu)", "muxes", "wire vars")
	for _, cfg := range []struct {
		name string
		opt  core.Options
	}{
		{"chained (paper §3.1)", core.Options{Preset: core.MicroprocessorBlock}},
		{"no chaining (ablation A4)", core.Options{NoChaining: true}},
	} {
		res, err := core.Synthesize(prog, cfg.opt)
		if err != nil {
			log.Fatal(err)
		}
		if err := core.Verify(res, 60, 4); err != nil {
			log.Fatalf("%s: %v", cfg.name, err)
		}
		br := bind.Summarize(res.Schedule)
		t.Add(cfg.name, res.Cycles, res.Stats.CriticalPath, res.Stats.Muxes, br.WireVars)
	}
	fmt.Println(t)
	fmt.Println("both configurations verified against the behavioral model")
}
