// Clock-period design-space exploration: the same behavioral description
// scheduled under a sweep of cycle-time targets, showing the
// latency/cycle-time trade-off the chaining scheduler exposes (paper §1:
// "packing all the resulting operations ... in the smallest number of
// cycles and in the shortest cycle time"). A tight clock forces the
// dataflow across more cycles with registers at the seams; a loose clock
// lets everything chain into one cycle.
//
//	go run ./examples/clocksweep [-n 8]
package main

import (
	"flag"
	"fmt"
	"log"

	"sparkgo/internal/core"
	"sparkgo/internal/delay"
	"sparkgo/internal/ild"
	"sparkgo/internal/report"
)

func main() {
	n := flag.Int("n", 8, "ILD buffer size")
	flag.Parse()

	prog := ild.Program(*n)
	t := report.New(fmt.Sprintf("ILD n=%d under clock-period sweep", *n),
		"clock target (gu)", "cycles", "achieved path (gu)", "registers", "verified")
	for _, clock := range []float64{0, 400, 200, 100, 50} {
		opt := core.Options{Preset: core.MicroprocessorBlock}
		if clock > 0 {
			opt.Model = delay.Default().WithClock(clock)
		}
		res, err := core.Synthesize(prog, opt)
		if err != nil {
			log.Fatal(err)
		}
		if err := core.Verify(res, 15, 9); err != nil {
			log.Fatalf("clock %.0f: %v", clock, err)
		}
		label := "unconstrained"
		if clock > 0 {
			label = fmt.Sprintf("%.0f", clock)
		}
		t.Add(label, res.Cycles, res.Stats.CriticalPath, res.Stats.Registers, true)
	}
	fmt.Println(t)
	fmt.Println("tighter clocks spread the chained dataflow across more cycles;")
	fmt.Println("every configuration remains functionally equivalent to the source")
}
