// The paper's case study end-to-end (§5–6): the instruction length
// decoder, from the natural behavioral description of Fig 10 to the
// maximally-parallel single-cycle architecture of Fig 15(b), with each
// coordinated transformation's effect narrated and the final RTL
// co-simulated against the reference software decoder.
//
//	go run ./examples/ild_singlecycle [-n 16]
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"

	"sparkgo/internal/bind"
	"sparkgo/internal/core"
	"sparkgo/internal/ild"
	"sparkgo/internal/report"
	"sparkgo/internal/rtlsim"
)

func main() {
	n := flag.Int("n", 16, "instruction buffer size in bytes")
	flag.Parse()

	fmt.Printf("=== ILD case study, n = %d (paper Figs 10-15) ===\n\n", *n)
	prog := ild.Program(*n)

	res, err := core.Synthesize(prog, core.Options{Preset: core.MicroprocessorBlock})
	if err != nil {
		log.Fatal(err)
	}

	t := report.New("coordinated transformations (paper §6)",
		"pass", "stmts", "ops", "ifs", "loops", "calls")
	last := map[string]bool{}
	for _, st := range res.Stages {
		if !st.Changed && last[st.Pass] {
			continue // only show passes that did something (first round)
		}
		last[st.Pass] = true
		t.Add(st.Pass, st.Stmts, st.Ops, st.Ifs, st.Loops, st.Calls)
	}
	fmt.Println(t)

	br := bind.Summarize(res.Schedule)
	t2 := report.New("final architecture (paper Fig 15b)", "metric", "value")
	t2.Add("FSM states (cycles)", res.Cycles)
	t2.Add("critical path (gate units)", res.Stats.CriticalPath)
	t2.Add("functional units", res.Stats.FUs)
	t2.Add("steering muxes", res.Stats.Muxes)
	t2.Add("wire-variables (§3.1.2)", br.WireVars)
	t2.Add("area (NAND equivalents)", res.Stats.Area)
	fmt.Println(t2)

	// Decode a random instruction stream on the synthesized hardware and
	// compare with the reference decoder.
	rng := rand.New(rand.NewSource(2026))
	buf, starts := ild.RandomInstructions(rng, *n)
	sim := rtlsim.New(res.Module)
	vals := make([]int64, len(buf))
	for i, b := range buf {
		vals[i] = int64(b)
	}
	if err := sim.SetArray("B", vals); err != nil {
		log.Fatal(err)
	}
	if _, err := sim.Run(4); err != nil {
		log.Fatal(err)
	}
	marks, _ := sim.Array("Mark")
	wantMarks, _ := ild.Decode(buf, *n)

	fmt.Println("buffer bytes :", buf[:*n])
	fmt.Println("known starts :", starts)
	fmt.Print("RTL marks    : ")
	for i := 0; i < *n; i++ {
		if marks[i] != 0 {
			fmt.Printf("%d ", i)
		}
	}
	fmt.Println()
	for i := 0; i < *n; i++ {
		want := int64(0)
		if wantMarks[i] {
			want = 1
		}
		if marks[i] != want {
			log.Fatalf("MISMATCH at byte %d: rtl=%d want=%d", i, marks[i], want)
		}
	}
	fmt.Printf("\ndecoded the whole %d-byte buffer in %d clock cycle(s); "+
		"marks match the reference decoder\n", *n, sim.Cycles())
}
