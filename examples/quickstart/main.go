// Quickstart: synthesize a small behavioral description end-to-end with
// the public sparkgo flow — parse, coordinated transformations,
// chaining-aware scheduling, RTL netlist, co-simulation, and VHDL output.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"sparkgo/internal/core"
	"sparkgo/internal/parser"
	"sparkgo/internal/rtl"
	"sparkgo/internal/rtlsim"
)

// A tiny mixed control/data block: saturating absolute difference.
const source = `
uint8 a;
uint8 b;
uint8 out;
void main() {
  uint8 diff;
  if (a > b) {
    diff = a - b;
  } else {
    diff = b - a;
  }
  if (diff > 100) {
    diff = 100;
  }
  out = diff;
}
`

func main() {
	prog, err := parser.Parse("absdiff", source)
	if err != nil {
		log.Fatal(err)
	}

	// The paper's regime: unlimited resources, chaining across
	// conditionals, single-cycle goal.
	res, err := core.Synthesize(prog, core.Options{Preset: core.MicroprocessorBlock})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("states: %d   critical path: %.1f gu   area: %.0f NAND-eq   muxes: %d\n",
		res.Cycles, res.Stats.CriticalPath, res.Stats.Area, res.Stats.Muxes)

	// Prove the hardware equals the behavioral semantics.
	if err := core.Verify(res, 100, 42); err != nil {
		log.Fatal(err)
	}
	fmt.Println("verified: RTL == behavioral on 100 random vectors")

	// Drive the generated netlist directly: |200 - 13| = 187 -> saturates
	// to 100.
	sim := rtlsim.New(res.Module)
	must(sim.SetScalar("a", 200))
	must(sim.SetScalar("b", 13))
	if _, err := sim.Run(4); err != nil {
		log.Fatal(err)
	}
	out, _ := sim.Scalar("out")
	fmt.Printf("RTL sim: |200-13| saturated = %d (cycles: %d)\n", out, sim.Cycles())

	// Emit the first lines of the VHDL the paper's flow would hand to
	// logic synthesis.
	vhdl := rtl.EmitVHDL(res.Module)
	fmt.Printf("\n--- VHDL (first 400 bytes) ---\n%.400s...\n", vhdl)
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
