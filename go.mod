module sparkgo

go 1.24
