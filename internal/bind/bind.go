// Package bind performs register binding: variable lifetime analysis over
// the schedule and left-edge register allocation, so registers whose
// lifetimes do not overlap share physical storage. The paper's §3.1.2
// describes the front half of this ("a variable life-time analysis pass
// determines which variables are actually mapped to registers"); the
// left-edge packing is the classical HLS register-sharing step, reported
// as the area saving the microprocessor regime usually declines to take
// (registers are cheap relative to the wiring a merged register's muxes
// cost at these cycle times).
package bind

import (
	"fmt"
	"sort"

	"sparkgo/internal/ir"
	"sparkgo/internal/sched"
)

// Lifetime is the live interval of a register-class variable in states:
// [Def, LastUse] inclusive. For loop-carried variables the interval covers
// the whole loop span (conservative).
type Lifetime struct {
	Var  *ir.Var
	Def  int
	Last int
}

// Overlaps reports interval intersection.
func (l Lifetime) Overlaps(o Lifetime) bool {
	return l.Def <= o.Last && o.Def <= l.Last
}

// Analysis is the result of lifetime analysis.
type Analysis struct {
	Lifetimes []Lifetime
	// Wires lists the wire-variables (no storage).
	Wires []*ir.Var
}

// Analyze computes register lifetimes from a schedule. Globals are
// excluded: they are architectural state with whole-design lifetime and
// never share.
func Analyze(res *sched.Result) *Analysis {
	defState := map[*ir.Var]int{}
	lastState := map[*ir.Var]int{}
	seen := map[*ir.Var]bool{}
	touch := func(v *ir.Var, s int, isDef bool) {
		if !seen[v] {
			seen[v] = true
			defState[v] = s
			lastState[v] = s
		}
		if isDef && s < defState[v] {
			defState[v] = s
		}
		if s > lastState[v] {
			lastState[v] = s
		}
	}
	for s, list := range res.OpOrder {
		for _, op := range list {
			for _, v := range op.Reads() {
				touch(v, s, false)
			}
			for _, gt := range op.BB.Guard {
				touch(gt.Cond, s, false)
			}
			if w := op.Writes(); w != nil {
				touch(w, s, true)
			}
		}
	}
	for _, tr := range res.Transitions {
		if tr.Cond != nil && tr.From >= 0 {
			touch(tr.Cond, tr.From, false)
		}
	}
	// Loop-carried: a variable live across a backward transition spans
	// the whole loop region; widen to [min reachable state, max].
	reentrant := res.ReentrantStates
	an := &Analysis{}
	for v := range seen {
		if v.IsGlobal {
			continue
		}
		if res.VarClass[v] == sched.Wire {
			an.Wires = append(an.Wires, v)
			continue
		}
		lo, hi := defState[v], lastState[v]
		for s := range reentrant {
			if s >= lo && s <= hi {
				// Conservatively extend across the whole re-entrant
				// span.
				for t := range reentrant {
					if t < lo {
						lo = t
					}
					if t > hi {
						hi = t
					}
				}
				break
			}
		}
		an.Lifetimes = append(an.Lifetimes, Lifetime{Var: v, Def: lo, Last: hi})
	}
	sort.Slice(an.Lifetimes, func(i, j int) bool {
		if an.Lifetimes[i].Def != an.Lifetimes[j].Def {
			return an.Lifetimes[i].Def < an.Lifetimes[j].Def
		}
		return an.Lifetimes[i].Var.Name < an.Lifetimes[j].Var.Name
	})
	sort.Slice(an.Wires, func(i, j int) bool { return an.Wires[i].Name < an.Wires[j].Name })
	return an
}

// Sharing is a register allocation: variables grouped into physical
// registers.
type Sharing struct {
	// Groups[i] lists the variables sharing physical register i. Only
	// same-width variables share (merging widths would waste bits and
	// complicate muxing).
	Groups [][]Lifetime
}

// Registers returns the number of physical registers allocated.
func (s *Sharing) Registers() int { return len(s.Groups) }

// LeftEdge runs the classical left-edge algorithm per bit-width class:
// lifetimes sorted by start, greedily packed into the first register
// whose current occupant ends before this one starts.
func LeftEdge(an *Analysis) *Sharing {
	byWidth := map[int][]Lifetime{}
	for _, lt := range an.Lifetimes {
		w := lt.Var.Type.Width()
		byWidth[w] = append(byWidth[w], lt)
	}
	sh := &Sharing{}
	var widths []int
	for w := range byWidth {
		widths = append(widths, w)
	}
	sort.Ints(widths)
	for _, w := range widths {
		lts := byWidth[w]
		sort.Slice(lts, func(i, j int) bool {
			if lts[i].Def != lts[j].Def {
				return lts[i].Def < lts[j].Def
			}
			return lts[i].Var.Name < lts[j].Var.Name
		})
		var regEnd []int // last state occupied per register in this class
		var regIdx []int // index into sh.Groups
		for _, lt := range lts {
			placed := false
			for k := range regEnd {
				if regEnd[k] < lt.Def {
					sh.Groups[regIdx[k]] = append(sh.Groups[regIdx[k]], lt)
					regEnd[k] = lt.Last
					placed = true
					break
				}
			}
			if !placed {
				sh.Groups = append(sh.Groups, []Lifetime{lt})
				regEnd = append(regEnd, lt.Last)
				regIdx = append(regIdx, len(sh.Groups)-1)
			}
		}
	}
	return sh
}

// Report summarizes binding for the experiment tables.
type Report struct {
	WireVars      int // §3.1.2 wire-variables: no storage
	RegisterVars  int // register-class variables before sharing
	SharedRegs    int // physical registers after left-edge packing
	SharingFactor float64
}

// Summarize runs the full binding analysis on a schedule.
func Summarize(res *sched.Result) Report {
	an := Analyze(res)
	sh := LeftEdge(an)
	r := Report{
		WireVars:     len(an.Wires),
		RegisterVars: len(an.Lifetimes),
		SharedRegs:   sh.Registers(),
	}
	if r.SharedRegs > 0 {
		r.SharingFactor = float64(r.RegisterVars) / float64(r.SharedRegs)
	}
	return r
}

func (r Report) String() string {
	return fmt.Sprintf("wires=%d regs=%d shared=%d (x%.2f)",
		r.WireVars, r.RegisterVars, r.SharedRegs, r.SharingFactor)
}
