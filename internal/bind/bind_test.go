package bind_test

import (
	"testing"

	"sparkgo/internal/bind"
	"sparkgo/internal/core"
	"sparkgo/internal/parser"
	"sparkgo/internal/sched"
)

func schedule(t *testing.T, src string, opt core.Options) *sched.Result {
	t.Helper()
	p := parser.MustParse("d", src)
	res, err := core.Synthesize(p, opt)
	if err != nil {
		t.Fatal(err)
	}
	return res.Schedule
}

func TestSingleCycleAllWires(t *testing.T) {
	s := schedule(t, `
uint8 a;
uint8 out;
void main() {
  uint8 t1;
  uint8 t2;
  t1 = a + 1;
  t2 = t1 * 2;
  out = t2 - 3;
}
`, core.Options{})
	an := bind.Analyze(s)
	if len(an.Lifetimes) != 0 {
		t.Errorf("single-cycle design should have no local registers, got %d", len(an.Lifetimes))
	}
	if len(an.Wires) == 0 {
		t.Error("expected wire-variables")
	}
}

func TestMultiCycleLifetimesAndSharing(t *testing.T) {
	s := schedule(t, `
uint8 a;
uint8 out;
void main() {
  uint8 t1;
  uint8 t2;
  uint8 t3;
  t1 = a + 1;
  t2 = t1 * 2;
  t3 = t2 * 3;
  out = t3 - 1;
}
`, core.Options{NoChaining: true})
	an := bind.Analyze(s)
	if len(an.Lifetimes) == 0 {
		t.Fatal("expected register lifetimes in a multi-cycle design")
	}
	for _, lt := range an.Lifetimes {
		if lt.Def > lt.Last {
			t.Errorf("inverted lifetime for %s: [%d,%d]", lt.Var.Name, lt.Def, lt.Last)
		}
	}
	sh := bind.LeftEdge(an)
	if sh.Registers() > len(an.Lifetimes) {
		t.Error("sharing increased register count")
	}
	// No two lifetimes in the same group may overlap.
	for gi, group := range sh.Groups {
		for i := 0; i < len(group); i++ {
			for j := i + 1; j < len(group); j++ {
				if group[i].Overlaps(group[j]) {
					t.Errorf("group %d: %s and %s overlap",
						gi, group[i].Var.Name, group[j].Var.Name)
				}
			}
		}
	}
	// t1 dies when t2 is born (chained dependencies): left-edge should
	// share some storage among same-width temporaries.
	if sh.Registers() == len(an.Lifetimes) {
		t.Log("note: no sharing found (acceptable but unexpected for a chain)")
	}
}

func TestOverlapPredicate(t *testing.T) {
	a := bind.Lifetime{Def: 0, Last: 2}
	b := bind.Lifetime{Def: 2, Last: 4}
	c := bind.Lifetime{Def: 3, Last: 5}
	if !a.Overlaps(b) {
		t.Error("[0,2] and [2,4] overlap at 2")
	}
	if a.Overlaps(c) {
		t.Error("[0,2] and [3,5] do not overlap")
	}
}

func TestSummarizeReport(t *testing.T) {
	s := schedule(t, `
uint8 a;
uint8 out;
void main() {
  uint8 t;
  t = a + 1;
  out = t;
}
`, core.Options{})
	r := bind.Summarize(s)
	if r.WireVars == 0 && r.RegisterVars == 0 {
		t.Error("empty binding report")
	}
	if r.String() == "" {
		t.Error("empty report string")
	}
}

func TestLoopCarriedRegistersSpanLoop(t *testing.T) {
	s := schedule(t, `
uint8 data[4];
uint16 sum;
void main() {
  uint8 i;
  for (i = 0; i < 4; i++) {
    sum += data[i];
  }
}
`, core.Options{Preset: core.ClassicalASIC})
	an := bind.Analyze(s)
	// The loop index must be a register with a lifetime spanning the
	// re-entrant region.
	found := false
	for _, lt := range an.Lifetimes {
		if lt.Var.Name == "i" {
			found = true
			if lt.Last <= lt.Def {
				t.Errorf("loop index lifetime [%d,%d] does not span the loop", lt.Def, lt.Last)
			}
		}
	}
	if !found {
		t.Error("loop index not register-allocated")
	}
}
