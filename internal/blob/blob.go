// Package blob is the one caching abstraction under the exploration
// engine: a small hash-verified payload store addressed by (kind, key),
// with tiers from process memory to a remote fleet composed behind a
// single read-through interface.
//
// A Store holds opaque payload bytes. Integrity and schema versioning
// are the implementations' job — the disk store (internal/cache) frames
// every file with a hashed header, the remote store verifies an
// X-Blob-Sha256 digest over the HTTP body — so a payload that comes
// back at all is the payload that was stored. Callers layer their own
// framing inside the payload (the engine's stage blobs).
//
// Tiered composes stores fastest-first (memory → disk → remote) with
// read-through backfill, per-tier write-through, and single-flight
// collapsing of concurrent same-key work — implemented once here
// instead of once per artifact layer.
package blob

// Store is a payload store addressed by (kind, key). Kind partitions
// the namespace (one per artifact layer); key is any stable identifier,
// in practice a content-derived stage hash.
//
// Get reports a missing payload as (nil, false, nil); an error means
// the store held something for the key but could not return it intact
// (corruption, I/O failure) — callers treat that as a miss but may
// count it. Put atomically replaces any previous payload. Delete of a
// missing payload is a no-op, not an error. Payloads returned by Get
// are read-only: implementations may alias internal buffers.
type Store interface {
	Get(kind, key string) ([]byte, bool, error)
	Put(kind, key string, payload []byte) error
	Stat(kind, key string) (bool, error)
	Delete(kind, key string) error
}
