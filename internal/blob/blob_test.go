package blob

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

func TestMemRoundTrip(t *testing.T) {
	m := NewMem(0)
	if _, ok, err := m.Get("k", "a"); ok || err != nil {
		t.Fatalf("Get on empty store = ok %v err %v", ok, err)
	}
	if err := m.Put("k", "a", []byte("payload")); err != nil {
		t.Fatal(err)
	}
	data, ok, err := m.Get("k", "a")
	if err != nil || !ok || string(data) != "payload" {
		t.Fatalf("Get = %q, %v, %v", data, ok, err)
	}
	if ok, _ := m.Stat("k", "a"); !ok {
		t.Fatal("Stat after Put = false")
	}
	if ok, _ := m.Stat("other", "a"); ok {
		t.Fatal("Stat of foreign kind = true")
	}
	if err := m.Delete("k", "a"); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := m.Get("k", "a"); ok {
		t.Fatal("Get after Delete = ok")
	}
}

func TestMemEvictsLRU(t *testing.T) {
	// Budget for roughly three entries; a fourth Put must evict the
	// least recently used.
	entry := func(i int) (string, []byte) {
		return fmt.Sprintf("k%d", i), bytes.Repeat([]byte{byte(i)}, 100)
	}
	k0, p0 := entry(0)
	m := NewMem(3 * entrySize(memKey("k", k0), p0))
	for i := 0; i < 3; i++ {
		k, p := entry(i)
		if err := m.Put("k", k, p); err != nil {
			t.Fatal(err)
		}
	}
	// Touch k0 so k1 is now the coldest.
	if _, ok, _ := m.Get("k", "k0"); !ok {
		t.Fatal("k0 missing before eviction")
	}
	k3, p3 := entry(3)
	if err := m.Put("k", k3, p3); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := m.Get("k", "k1"); ok {
		t.Fatal("LRU entry k1 survived eviction")
	}
	for _, k := range []string{"k0", "k2", "k3"} {
		if _, ok, _ := m.Get("k", k); !ok {
			t.Fatalf("entry %s evicted out of LRU order", k)
		}
	}
	if m.Len() != 3 {
		t.Fatalf("Len = %d, want 3", m.Len())
	}
}

func TestMemBudgetHeld(t *testing.T) {
	budget := 10 * entrySize(memKey("k", "k00"), make([]byte, 50))
	m := NewMem(budget)
	for i := 0; i < 100; i++ {
		if err := m.Put("k", fmt.Sprintf("k%d", i), make([]byte, 50)); err != nil {
			t.Fatal(err)
		}
		if m.Bytes() > budget {
			t.Fatalf("store over budget after %d puts: %d > %d", i+1, m.Bytes(), budget)
		}
	}
	if m.Len() == 0 || m.Len() == 100 {
		t.Fatalf("Len = %d, want a bounded nonzero working set", m.Len())
	}
}

func TestMemOversizePayloadDropped(t *testing.T) {
	m := NewMem(200)
	if err := m.Put("k", "small", make([]byte, 10)); err != nil {
		t.Fatal(err)
	}
	if err := m.Put("k", "big", make([]byte, 10_000)); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := m.Get("k", "big"); ok {
		t.Fatal("oversize payload was stored")
	}
	if _, ok, _ := m.Get("k", "small"); !ok {
		t.Fatal("oversize Put evicted unrelated entries")
	}
	// Replacing an existing entry with an oversize payload must not
	// leave the stale value behind.
	if err := m.Put("k", "small", make([]byte, 10_000)); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := m.Get("k", "small"); ok {
		t.Fatal("oversize replacement left the stale entry readable")
	}
}

func TestMemReplaceAdjustsUsage(t *testing.T) {
	m := NewMem(1 << 20)
	m.Put("k", "a", make([]byte, 100))
	before := m.Bytes()
	m.Put("k", "a", make([]byte, 400))
	if got, want := m.Bytes(), before+300; got != want {
		t.Fatalf("Bytes after replace = %d, want %d", got, want)
	}
	if m.Len() != 1 {
		t.Fatalf("Len after replace = %d, want 1", m.Len())
	}
}

// failStore wraps a Store, forcing Get errors (simulated corruption)
// and counting operations.
type failStore struct {
	Store
	failGet bool
	gets    atomic.Int64
	puts    atomic.Int64
}

func (f *failStore) Get(kind, key string) ([]byte, bool, error) {
	f.gets.Add(1)
	if f.failGet {
		return nil, false, errors.New("injected corruption")
	}
	return f.Store.Get(kind, key)
}

func (f *failStore) Put(kind, key string, payload []byte) error {
	f.puts.Add(1)
	return f.Store.Put(kind, key, payload)
}

func twoTiers() (*Mem, *Mem, *Tiered) {
	l1, l2 := NewMem(0), NewMem(0)
	return l1, l2, NewTiered(
		Tier{Name: "l1", Store: l1, WriteThrough: true, Backfill: true},
		Tier{Name: "l2", Store: l2, WriteThrough: true, Backfill: true},
	)
}

func TestTieredWriteThrough(t *testing.T) {
	l1, l2, tt := twoTiers()
	res, err := tt.Do("k", "a", func() ([]byte, any, error) {
		return []byte("v"), nil, nil
	})
	if err != nil || res.Tier != "" || res.Shared {
		t.Fatalf("computed Do = %+v, %v", res, err)
	}
	for name, m := range map[string]*Mem{"l1": l1, "l2": l2} {
		if _, ok, _ := m.Get("k", "a"); !ok {
			t.Fatalf("write-through skipped tier %s", name)
		}
	}
}

func TestTieredWriteThroughPolicy(t *testing.T) {
	l1, l2 := NewMem(0), NewMem(0)
	tt := NewTiered(
		Tier{Name: "l1", Store: l1, WriteThrough: true, Backfill: true},
		Tier{Name: "l2", Store: l2, WriteThrough: false, Backfill: true},
	)
	if _, err := tt.Do("k", "a", func() ([]byte, any, error) {
		return []byte("v"), nil, nil
	}); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := l1.Get("k", "a"); !ok {
		t.Fatal("write-through tier missed the payload")
	}
	if _, ok, _ := l2.Get("k", "a"); ok {
		t.Fatal("non-write-through tier received the payload")
	}
}

func TestTieredBackfill(t *testing.T) {
	l1, l2, tt := twoTiers()
	// Seed only the slow tier: a lookup must hit l2 and backfill l1.
	if err := l2.Put("k", "a", []byte("v")); err != nil {
		t.Fatal(err)
	}
	res, err := tt.Do("k", "a", func() ([]byte, any, error) {
		t.Fatal("compute ran despite an l2 hit")
		return nil, nil, nil
	})
	if err != nil || res.Tier != "l2" || string(res.Data) != "v" {
		t.Fatalf("Do = %+v, %v", res, err)
	}
	if _, ok, _ := l1.Get("k", "a"); !ok {
		t.Fatal("hit was not backfilled into l1")
	}
	res, err = tt.Do("k", "a", func() ([]byte, any, error) {
		t.Fatal("compute ran despite an l1 hit")
		return nil, nil, nil
	})
	if err != nil || res.Tier != "l1" {
		t.Fatalf("post-backfill Do = %+v, %v", res, err)
	}
	var backfills int64
	for _, ts := range tt.TierStats() {
		backfills += ts.Backfills
	}
	if backfills != 1 {
		t.Fatalf("backfills = %d, want 1", backfills)
	}
}

func TestTieredThreeTierBackfill(t *testing.T) {
	l1, l2, l3 := NewMem(0), NewMem(0), NewMem(0)
	tt := NewTiered(
		Tier{Name: "l1", Store: l1, WriteThrough: true, Backfill: true},
		Tier{Name: "l2", Store: l2, WriteThrough: true, Backfill: true},
		Tier{Name: "l3", Store: l3, WriteThrough: true, Backfill: false},
	)
	if err := l3.Put("k", "a", []byte("v")); err != nil {
		t.Fatal(err)
	}
	res, err := tt.Do("k", "a", func() ([]byte, any, error) {
		t.Fatal("compute ran despite an l3 hit")
		return nil, nil, nil
	})
	if err != nil || res.Tier != "l3" {
		t.Fatalf("Do = %+v, %v", res, err)
	}
	// An l3 hit must warm both faster tiers on the way up.
	if _, ok, _ := l1.Get("k", "a"); !ok {
		t.Fatal("l3 hit not backfilled into l1")
	}
	if _, ok, _ := l2.Get("k", "a"); !ok {
		t.Fatal("l3 hit not backfilled into l2")
	}
}

func TestTieredCorruptTierFallsThroughAndRepairs(t *testing.T) {
	inner1, l2 := NewMem(0), NewMem(0)
	bad := &failStore{Store: inner1, failGet: true}
	tt := NewTiered(
		Tier{Name: "l1", Store: bad, WriteThrough: true, Backfill: true},
		Tier{Name: "l2", Store: l2, WriteThrough: true, Backfill: true},
	)
	if err := l2.Put("k", "a", []byte("v")); err != nil {
		t.Fatal(err)
	}
	res, err := tt.Do("k", "a", func() ([]byte, any, error) {
		t.Fatal("compute ran despite an l2 hit")
		return nil, nil, nil
	})
	if err != nil || res.Tier != "l2" || string(res.Data) != "v" {
		t.Fatalf("Do through corrupt tier = %+v, %v", res, err)
	}
	// The backfill must have repaired the corrupt tier's copy.
	if _, ok, _ := inner1.Get("k", "a"); !ok {
		t.Fatal("corrupt tier was not repaired by backfill")
	}
	var errs int64
	for _, ts := range tt.TierStats() {
		errs += ts.Errors
	}
	if errs == 0 {
		t.Fatal("corrupt tier error was not counted")
	}
}

func TestTieredSingleFlight(t *testing.T) {
	_, _, tt := twoTiers()
	const callers = 32
	var computes atomic.Int64
	var wg sync.WaitGroup
	start := make(chan struct{})
	shared := make([]bool, callers)
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			res, err := tt.Do("k", "hot", func() ([]byte, any, error) {
				computes.Add(1)
				return []byte("v"), nil, nil
			})
			if err != nil || string(res.Data) != "v" {
				t.Errorf("Do = %+v, %v", res, err)
			}
			shared[i] = res.Shared || res.Tier != ""
		}(i)
	}
	close(start)
	wg.Wait()
	if got := computes.Load(); got != 1 {
		t.Fatalf("compute ran %d times, want 1", got)
	}
	nshared := 0
	for _, s := range shared {
		if s {
			nshared++
		}
	}
	if nshared != callers-1 {
		t.Fatalf("%d callers shared/hit, want %d", nshared, callers-1)
	}
}

func TestTieredErrorsNotSticky(t *testing.T) {
	_, _, tt := twoTiers()
	boom := errors.New("boom")
	if _, err := tt.Do("k", "a", func() ([]byte, any, error) {
		return nil, nil, boom
	}); !errors.Is(err, boom) {
		t.Fatalf("first Do error = %v, want boom", err)
	}
	res, err := tt.Do("k", "a", func() ([]byte, any, error) {
		return []byte("ok"), nil, nil
	})
	if err != nil || string(res.Data) != "ok" {
		t.Fatalf("retry after error = %+v, %v (error was sticky)", res, err)
	}
}

func TestTieredUnstorableObjShared(t *testing.T) {
	l1, _, tt := twoTiers()
	type big struct{ v int }
	res, err := tt.Do("k", "a", func() ([]byte, any, error) {
		return nil, &big{v: 7}, nil
	})
	if err != nil || res.Obj.(*big).v != 7 {
		t.Fatalf("Do = %+v, %v", res, err)
	}
	// nil data: nothing may have been stored in any tier.
	if _, ok, _ := l1.Get("k", "a"); ok {
		t.Fatal("unstorable value was written to a tier")
	}
}

func TestCASDedup(t *testing.T) {
	inner := NewMem(0)
	c := &CAS{Inner: inner, Kinds: map[string]bool{"stage": true}}
	payload := bytes.Repeat([]byte("x"), 1000)
	if err := c.Put("stage", "key1", payload); err != nil {
		t.Fatal(err)
	}
	if err := c.Put("stage", "key2", payload); err != nil {
		t.Fatal(err)
	}
	for _, k := range []string{"key1", "key2"} {
		data, ok, err := c.Get("stage", k)
		if err != nil || !ok || !bytes.Equal(data, payload) {
			t.Fatalf("Get(%s) = %d bytes, %v, %v", k, len(data), ok, err)
		}
		if ok, _ := c.Stat("stage", k); !ok {
			t.Fatalf("Stat(%s) = false", k)
		}
	}
	// Two aliases + one payload: the payload bytes are stored once, so
	// the inner usage stays far below two copies.
	if used := inner.Bytes(); used > int64(len(payload))+1000 {
		t.Fatalf("inner store holds %d bytes; payload not deduplicated", used)
	}
}

func TestCASPassThroughKinds(t *testing.T) {
	inner := NewMem(0)
	c := &CAS{Inner: inner, Kinds: map[string]bool{"stage": true}}
	if err := c.Put("point", "k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	// Pass-through payloads land directly under their own kind.
	if data, ok, _ := inner.Get("point", "k"); !ok || string(data) != "v" {
		t.Fatal("pass-through kind was aliased")
	}
	if data, ok, err := c.Get("point", "k"); err != nil || !ok || string(data) != "v" {
		t.Fatalf("Get = %q, %v, %v", data, ok, err)
	}
}

func TestCASDanglingAliasIsCleanMiss(t *testing.T) {
	inner := NewMem(0)
	c := &CAS{Inner: inner, Kinds: map[string]bool{"stage": true}}
	if err := c.Put("stage", "k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	// Evict the payload out from under the alias (GC racing the alias).
	sum, ok, _ := inner.Get("stage", "k")
	if !ok {
		t.Fatal("alias missing")
	}
	sha, isAlias := decodeAlias(sum)
	if !isAlias {
		t.Fatal("stored entry is not an alias")
	}
	if err := inner.Delete(CASKind, sha); err != nil {
		t.Fatal(err)
	}
	if _, ok, err := c.Get("stage", "k"); ok || err != nil {
		t.Fatalf("dangling alias Get = ok %v err %v, want clean miss", ok, err)
	}
	if ok, _ := c.Stat("stage", "k"); ok {
		t.Fatal("dangling alias Stat = true")
	}
	// A re-Put must heal both entries.
	if err := c.Put("stage", "k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	if data, ok, _ := c.Get("stage", "k"); !ok || string(data) != "v" {
		t.Fatal("re-Put did not heal the dangling alias")
	}
}

func TestCASPreCASEntryPassesThrough(t *testing.T) {
	inner := NewMem(0)
	// An entry written before the CAS wrapper existed: raw payload under
	// the logical key.
	if err := inner.Put("stage", "old", []byte("legacy-payload")); err != nil {
		t.Fatal(err)
	}
	c := &CAS{Inner: inner, Kinds: map[string]bool{"stage": true}}
	data, ok, err := c.Get("stage", "old")
	if err != nil || !ok || string(data) != "legacy-payload" {
		t.Fatalf("legacy Get = %q, %v, %v", data, ok, err)
	}
	if ok, _ := c.Stat("stage", "old"); !ok {
		t.Fatal("legacy Stat = false")
	}
}
