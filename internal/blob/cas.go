package blob

import (
	"crypto/sha256"
	"encoding/hex"

	"sparkgo/internal/wire"
)

// CASKind is the reserved kind the content-addressed payloads live
// under. Logical kinds wrapped by CAS store a tiny alias blob instead
// of the payload, so byte-identical artifacts reached through
// different stage keys — two option sets converging on one schedule —
// occupy disk once.
const CASKind = "cas"

// aliasTag frames an alias blob; anything that does not parse as one
// is treated as a directly stored payload, so a store written before
// the CAS wrapper existed keeps serving.
const aliasTag = "blobcas/1"

// CAS deduplicates payloads in an inner store by content address: Put
// stores the payload once under (CASKind, sha256(payload)) and an
// alias under the logical (kind, key); Get resolves the alias back. An
// alias whose payload has been evicted (GC) reads as a clean miss —
// the caller recomputes and the re-Put heals both entries.
type CAS struct {
	Inner Store
	// Kinds selects the logical kinds to deduplicate; other kinds pass
	// through untouched (point payloads are unique per key, so
	// aliasing them would only add files).
	Kinds map[string]bool
}

func encodeAlias(sha string) []byte {
	e := wire.NewEncoder(16 + len(sha))
	e.Tag(aliasTag)
	e.String(sha)
	return e.Data()
}

func decodeAlias(data []byte) (string, bool) {
	d := wire.NewDecoder(data)
	d.Tag(aliasTag)
	sha := d.String()
	if d.Finish() != nil || len(sha) != hex.EncodedLen(sha256.Size) {
		return "", false
	}
	return sha, true
}

// Get resolves (kind, key), following an alias to its content-addressed
// payload.
func (c *CAS) Get(kind, key string) ([]byte, bool, error) {
	data, ok, err := c.Inner.Get(kind, key)
	if err != nil || !ok {
		return nil, false, err
	}
	sha, isAlias := decodeAlias(data)
	if !isAlias {
		return data, true, nil
	}
	payload, ok, err := c.Inner.Get(CASKind, sha)
	if err != nil || !ok {
		// The alias outlived its payload (eviction raced or a partial
		// GC): a miss, healed by the caller's recompute.
		return nil, false, err
	}
	return payload, true, nil
}

// Put stores the payload content-addressed (for deduplicated kinds)
// plus an alias, or directly for pass-through kinds.
func (c *CAS) Put(kind, key string, payload []byte) error {
	if !c.Kinds[kind] {
		return c.Inner.Put(kind, key, payload)
	}
	sum := sha256.Sum256(payload)
	sha := hex.EncodeToString(sum[:])
	if ok, err := c.Inner.Stat(CASKind, sha); err != nil || !ok {
		if err := c.Inner.Put(CASKind, sha, payload); err != nil {
			return err
		}
	}
	return c.Inner.Put(kind, key, encodeAlias(sha))
}

// Stat reports presence, requiring an alias's payload to still exist.
func (c *CAS) Stat(kind, key string) (bool, error) {
	if !c.Kinds[kind] {
		return c.Inner.Stat(kind, key)
	}
	data, ok, err := c.Inner.Get(kind, key)
	if err != nil || !ok {
		return false, err
	}
	sha, isAlias := decodeAlias(data)
	if !isAlias {
		return true, nil
	}
	return c.Inner.Stat(CASKind, sha)
}

// Delete removes the logical entry only; the content-addressed payload
// may be shared by other keys and is left to the store's GC.
func (c *CAS) Delete(kind, key string) error {
	return c.Inner.Delete(kind, key)
}
