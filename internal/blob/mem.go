package blob

import (
	"container/list"
	"sync"
)

// DefaultMemBytes is the memory tier's byte budget when none is given:
// large enough to hold every artifact of a sizeable sweep, small enough
// to leave the heap to synthesis.
const DefaultMemBytes = 256 << 20

// memOverhead approximates the per-entry bookkeeping cost (map bucket,
// list element, headers) charged against the budget alongside the
// payload and key bytes, so a flood of tiny entries cannot blow past
// the budget on overhead alone.
const memOverhead = 128

// Mem is a bounded in-memory LRU store: the L1 tier. Entries are
// evicted least-recently-used-first once the byte budget is exceeded;
// a payload larger than the whole budget is simply not stored. All
// methods are safe for concurrent use.
type Mem struct {
	mu    sync.Mutex
	max   int64
	used  int64
	ll    *list.List // front = most recently used
	items map[string]*list.Element
}

type memEntry struct {
	key     string
	payload []byte
}

// NewMem returns a memory store bounded to maxBytes (<= 0 selects
// DefaultMemBytes).
func NewMem(maxBytes int64) *Mem {
	if maxBytes <= 0 {
		maxBytes = DefaultMemBytes
	}
	return &Mem{max: maxBytes, ll: list.New(), items: map[string]*list.Element{}}
}

func memKey(kind, key string) string { return kind + "\x00" + key }

func entrySize(key string, payload []byte) int64 {
	return int64(len(key) + len(payload) + memOverhead)
}

// Get returns the stored payload and refreshes its recency. The slice
// aliases the store's copy; callers must not mutate it.
func (m *Mem) Get(kind, key string) ([]byte, bool, error) {
	k := memKey(kind, key)
	m.mu.Lock()
	defer m.mu.Unlock()
	el, ok := m.items[k]
	if !ok {
		return nil, false, nil
	}
	m.ll.MoveToFront(el)
	return el.Value.(*memEntry).payload, true, nil
}

// Put stores payload under (kind, key), replacing any previous entry
// and evicting cold entries until the store fits its budget. Payloads
// that alone exceed the budget are dropped silently — the caller's
// slower tiers still hold them.
func (m *Mem) Put(kind, key string, payload []byte) error {
	k := memKey(kind, key)
	size := entrySize(k, payload)
	m.mu.Lock()
	defer m.mu.Unlock()
	if size > m.max {
		if el, ok := m.items[k]; ok {
			m.removeLocked(el)
		}
		return nil
	}
	if el, ok := m.items[k]; ok {
		en := el.Value.(*memEntry)
		m.used += size - entrySize(k, en.payload)
		en.payload = payload
		m.ll.MoveToFront(el)
	} else {
		m.items[k] = m.ll.PushFront(&memEntry{key: k, payload: payload})
		m.used += size
	}
	for m.used > m.max {
		back := m.ll.Back()
		if back == nil {
			break
		}
		m.removeLocked(back)
	}
	return nil
}

// Stat reports presence without touching recency.
func (m *Mem) Stat(kind, key string) (bool, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	_, ok := m.items[memKey(kind, key)]
	return ok, nil
}

// Delete removes the entry if present.
func (m *Mem) Delete(kind, key string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if el, ok := m.items[memKey(kind, key)]; ok {
		m.removeLocked(el)
	}
	return nil
}

// Len reports the number of live entries.
func (m *Mem) Len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.items)
}

// Bytes reports the budget-charged size of the live entries.
func (m *Mem) Bytes() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.used
}

func (m *Mem) removeLocked(el *list.Element) {
	en := el.Value.(*memEntry)
	m.ll.Remove(el)
	delete(m.items, en.key)
	m.used -= entrySize(en.key, en.payload)
}
