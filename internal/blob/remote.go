package blob

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"
	"time"
)

// HTTP headers of the blob protocol. Sha256Header carries the hex
// SHA-256 of the payload body: the server sets it on GET responses
// (the client verifies before trusting the bytes) and clients set it
// on PUT requests (the server verifies before storing). SchemaHeader
// carries the sender's artifact schema string; a server answering for
// a different schema responds 412, which clients read as a miss — a
// version skew across the fleet degrades to local work, never to
// aliased artifacts.
const (
	Sha256Header = "X-Blob-Sha256"
	SchemaHeader = "X-Blob-Schema"
)

// MaxRemoteBytes bounds a single blob payload on the wire — far above
// any real artifact, low enough that a confused peer cannot make a
// client buffer gigabytes.
const MaxRemoteBytes = 256 << 20

// defaultRemoteClient is shared across Remote values so keep-alive
// connections are reused between lookups of one sweep.
var defaultRemoteClient = &http.Client{Timeout: 30 * time.Second}

// Remote is an HTTP client against another node's /v1/blobs API: the
// L3 tier that turns N daemons' disk caches into one logical store.
type Remote struct {
	// Base is the peer's base URL, e.g. "http://host:8341".
	Base string
	// Schema is the artifact schema string sent with every request;
	// the peer rejects mismatches with 412 (read as a miss).
	Schema string
	// Client overrides the HTTP client (nil: a shared 30s-timeout
	// default).
	Client *http.Client
}

func (r *Remote) client() *http.Client {
	if r.Client != nil {
		return r.Client
	}
	return defaultRemoteClient
}

func (r *Remote) blobURL(kind, key string) string {
	return strings.TrimSuffix(r.Base, "/") + "/v1/blobs/" +
		url.PathEscape(kind) + "/" + url.PathEscape(key)
}

func (r *Remote) newRequest(method, kind, key string, body io.Reader) (*http.Request, error) {
	req, err := http.NewRequest(method, r.blobURL(kind, key), body)
	if err != nil {
		return nil, fmt.Errorf("blob: remote: %w", err)
	}
	if r.Schema != "" {
		req.Header.Set(SchemaHeader, r.Schema)
	}
	return req, nil
}

// Get fetches the payload, verifying the body against the server's
// digest header. 404 (unknown) and 412 (schema skew) are clean misses.
func (r *Remote) Get(kind, key string) ([]byte, bool, error) {
	req, err := r.newRequest(http.MethodGet, kind, key, nil)
	if err != nil {
		return nil, false, err
	}
	resp, err := r.client().Do(req)
	if err != nil {
		return nil, false, fmt.Errorf("blob: remote get: %w", err)
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
	case http.StatusNotFound, http.StatusPreconditionFailed:
		io.Copy(io.Discard, resp.Body)
		return nil, false, nil
	default:
		io.Copy(io.Discard, resp.Body)
		return nil, false, fmt.Errorf("blob: remote get %s/%s: %s", kind, key, resp.Status)
	}
	data, err := io.ReadAll(io.LimitReader(resp.Body, MaxRemoteBytes+1))
	if err != nil {
		return nil, false, fmt.Errorf("blob: remote get %s/%s: %w", kind, key, err)
	}
	if len(data) > MaxRemoteBytes {
		return nil, false, fmt.Errorf("blob: remote get %s/%s: payload exceeds %d bytes", kind, key, MaxRemoteBytes)
	}
	want := resp.Header.Get(Sha256Header)
	if want == "" {
		return nil, false, fmt.Errorf("blob: remote get %s/%s: response missing %s", kind, key, Sha256Header)
	}
	sum := sha256.Sum256(data)
	if got := hex.EncodeToString(sum[:]); got != want {
		return nil, false, fmt.Errorf("blob: remote get %s/%s: payload hash mismatch", kind, key)
	}
	return data, true, nil
}

// Put uploads the payload with its digest; the server verifies before
// storing.
func (r *Remote) Put(kind, key string, payload []byte) error {
	req, err := r.newRequest(http.MethodPut, kind, key, bytes.NewReader(payload))
	if err != nil {
		return err
	}
	sum := sha256.Sum256(payload)
	req.Header.Set(Sha256Header, hex.EncodeToString(sum[:]))
	req.Header.Set("Content-Type", "application/octet-stream")
	resp, err := r.client().Do(req)
	if err != nil {
		return fmt.Errorf("blob: remote put: %w", err)
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, resp.Body)
	if resp.StatusCode/100 != 2 {
		return fmt.Errorf("blob: remote put %s/%s: %s", kind, key, resp.Status)
	}
	return nil
}

// Stat asks the peer whether it holds the payload (HEAD).
func (r *Remote) Stat(kind, key string) (bool, error) {
	req, err := r.newRequest(http.MethodHead, kind, key, nil)
	if err != nil {
		return false, err
	}
	resp, err := r.client().Do(req)
	if err != nil {
		return false, fmt.Errorf("blob: remote stat: %w", err)
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, resp.Body)
	switch resp.StatusCode {
	case http.StatusOK:
		return true, nil
	case http.StatusNotFound, http.StatusPreconditionFailed:
		return false, nil
	default:
		return false, fmt.Errorf("blob: remote stat %s/%s: %s", kind, key, resp.Status)
	}
}

// Delete removes the payload on the peer; an already-absent payload is
// not an error.
func (r *Remote) Delete(kind, key string) error {
	req, err := r.newRequest(http.MethodDelete, kind, key, nil)
	if err != nil {
		return err
	}
	resp, err := r.client().Do(req)
	if err != nil {
		return fmt.Errorf("blob: remote delete: %w", err)
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, resp.Body)
	if resp.StatusCode/100 != 2 && resp.StatusCode != http.StatusNotFound {
		return fmt.Errorf("blob: remote delete %s/%s: %s", kind, key, resp.Status)
	}
	return nil
}
