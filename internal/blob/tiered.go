package blob

import (
	"sync"
	"sync/atomic"

	"sparkgo/internal/obs"
)

// Tier is one layer of a Tiered store, fastest first. WriteThrough
// tiers receive computed payloads as they are produced; Backfill tiers
// receive payloads found in a slower tier on the way back up, so the
// next lookup stops earlier.
type Tier struct {
	Name         string
	Store        Store
	WriteThrough bool
	Backfill     bool
}

// TierStat is one tier's cumulative counters. Hits/Misses/Errors count
// Get outcomes against this tier (an erroring Get — corruption, a dead
// remote — degrades to the next tier rather than failing the lookup);
// Backfills counts payloads copied INTO this tier from a slower one;
// Puts/PutErrors count write-through and backfill writes.
type TierStat struct {
	Name      string
	Hits      int64
	Misses    int64
	Errors    int64
	Backfills int64
	Puts      int64
	PutErrors int64
}

type tierCounters struct {
	hits, misses, errors, backfills, puts, putErrors atomic.Int64
}

// DoResult is the outcome of a Do lookup. Exactly one of three shapes:
// a tier hit (Tier names the serving tier, Data holds the payload), a
// compute (Tier empty; Data holds the encoding or nil when the value
// is unstorable, Obj the computed value), or a share (Shared true: the
// caller joined another caller's in-flight lookup and got its result).
type DoResult struct {
	Data   []byte
	Obj    any
	Tier   string
	Shared bool
}

type flight struct {
	done chan struct{}
	res  DoResult
	err  error
}

// Tiered composes tiers behind one Store plus a single-flight Do.
// Lookups read through fastest-first, backfilling on the way up; writes
// go through to every WriteThrough tier. Tier failures never fail an
// operation that another tier (or a compute) can still serve — they
// are counted in TierStats instead.
type Tiered struct {
	tiers []Tier
	stats []*tierCounters

	// Obs, when set before first use, receives one TypeTier event per
	// tier operation (hit/miss/error/backfill/put/put_error).
	Obs *obs.Bus

	mu      sync.Mutex
	flights map[string]*flight
}

func (t *Tiered) observe(tier, op, kind string, err error) {
	if !t.Obs.Active() {
		return
	}
	ev := obs.Event{Type: obs.TypeTier, Tier: tier, Op: op, Kind: kind}
	if err != nil {
		ev.Err = err.Error()
	}
	t.Obs.Publish(ev)
}

// NewTiered builds a tiered store over tiers ordered fastest first.
func NewTiered(tiers ...Tier) *Tiered {
	stats := make([]*tierCounters, len(tiers))
	for i := range stats {
		stats[i] = &tierCounters{}
	}
	return &Tiered{tiers: tiers, stats: stats, flights: map[string]*flight{}}
}

// Do returns the payload for (kind, key), computing it at most once
// across concurrent callers: the first caller (the leader) walks the
// tiers and, on a full miss, runs compute; callers arriving while that
// is in flight block and share the leader's result with Shared set.
//
// compute returns the payload encoding, an optional in-memory value
// handed to sharers via DoResult.Obj (the leader's callers get the
// real object instead of re-decoding), and an error. An error is
// propagated to every waiting caller and nothing is stored — the
// flight is always dropped on completion, so failures are never
// sticky and the next caller retries. compute may return (nil, obj,
// nil) for values that cannot be encoded: the result is shared with
// concurrent callers but no tier stores it.
func (t *Tiered) Do(kind, key string, compute func() (data []byte, obj any, err error)) (DoResult, error) {
	fk := memKey(kind, key)
	t.mu.Lock()
	if f, ok := t.flights[fk]; ok {
		t.mu.Unlock()
		<-f.done
		if f.err != nil {
			return DoResult{}, f.err
		}
		res := f.res
		res.Shared = true
		return res, nil
	}
	f := &flight{done: make(chan struct{})}
	t.flights[fk] = f
	t.mu.Unlock()
	defer func() {
		t.mu.Lock()
		delete(t.flights, fk)
		t.mu.Unlock()
		close(f.done)
	}()

	if data, i := t.lookup(kind, key); i >= 0 {
		f.res = DoResult{Data: data, Tier: t.tiers[i].Name}
		return f.res, nil
	}
	data, obj, err := compute()
	if err != nil {
		f.err = err
		return DoResult{}, err
	}
	f.res = DoResult{Data: data, Obj: obj}
	if data != nil {
		t.putThrough(kind, key, data)
	}
	return f.res, nil
}

// lookup walks the tiers fastest-first, backfilling a hit into every
// faster Backfill tier. A tier Get error is counted and degrades to
// the next tier — a corrupted payload at one tier is repaired by the
// backfill (or write-through) that follows. Returns (-1) on full miss.
func (t *Tiered) lookup(kind, key string) ([]byte, int) {
	for i := range t.tiers {
		data, ok, err := t.tiers[i].Store.Get(kind, key)
		if err != nil {
			t.stats[i].errors.Add(1)
			t.observe(t.tiers[i].Name, "error", kind, err)
			continue
		}
		if !ok {
			t.stats[i].misses.Add(1)
			t.observe(t.tiers[i].Name, "miss", kind, nil)
			continue
		}
		t.stats[i].hits.Add(1)
		t.observe(t.tiers[i].Name, "hit", kind, nil)
		for j := 0; j < i; j++ {
			if !t.tiers[j].Backfill {
				continue
			}
			if err := t.tiers[j].Store.Put(kind, key, data); err != nil {
				t.stats[j].putErrors.Add(1)
				t.observe(t.tiers[j].Name, "put_error", kind, err)
			} else {
				t.stats[j].backfills.Add(1)
				t.observe(t.tiers[j].Name, "backfill", kind, nil)
			}
		}
		return data, i
	}
	return nil, -1
}

// putThrough writes to every WriteThrough tier, counting failures and
// returning the first one (later tiers are still attempted).
func (t *Tiered) putThrough(kind, key string, payload []byte) error {
	var firstErr error
	for i := range t.tiers {
		if !t.tiers[i].WriteThrough {
			continue
		}
		if err := t.tiers[i].Store.Put(kind, key, payload); err != nil {
			t.stats[i].putErrors.Add(1)
			t.observe(t.tiers[i].Name, "put_error", kind, err)
			if firstErr == nil {
				firstErr = err
			}
		} else {
			t.stats[i].puts.Add(1)
			t.observe(t.tiers[i].Name, "put", kind, nil)
		}
	}
	return firstErr
}

// Get reads through the tiers without computing: the plain Store view,
// used by the daemon's blob API. Tier errors degrade to the next tier
// and surface only in TierStats.
func (t *Tiered) Get(kind, key string) ([]byte, bool, error) {
	data, i := t.lookup(kind, key)
	return data, i >= 0, nil
}

// Put writes through to every WriteThrough tier.
func (t *Tiered) Put(kind, key string, payload []byte) error {
	return t.putThrough(kind, key, payload)
}

// Stat reports whether any tier holds the payload; per-tier errors
// read as absent.
func (t *Tiered) Stat(kind, key string) (bool, error) {
	for i := range t.tiers {
		if ok, err := t.tiers[i].Store.Stat(kind, key); err == nil && ok {
			return true, nil
		}
	}
	return false, nil
}

// Delete removes the payload from every tier, returning the first
// error after attempting all of them.
func (t *Tiered) Delete(kind, key string) error {
	var firstErr error
	for i := range t.tiers {
		if err := t.tiers[i].Store.Delete(kind, key); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// TierStats snapshots the per-tier counters in tier order.
func (t *Tiered) TierStats() []TierStat {
	out := make([]TierStat, len(t.tiers))
	for i, c := range t.stats {
		out[i] = TierStat{
			Name:      t.tiers[i].Name,
			Hits:      c.hits.Load(),
			Misses:    c.misses.Load(),
			Errors:    c.errors.Load(),
			Backfills: c.backfills.Load(),
			Puts:      c.puts.Load(),
			PutErrors: c.putErrors.Load(),
		}
	}
	return out
}
