// Package cache is a versioned, gob-encoded artifact store on disk: the
// persistence layer under the exploration engine's memoization. Artifacts
// are addressed by (kind, key) where the key is any stable identifier —
// in practice the stage keys of internal/core, which already hash the
// artifact content, the consumed options, and a per-stage version.
//
// On-disk layout:
//
//	<root>/<schema-version>/<kind>/<kk>/<sha256(key)>.gob
//
// where <kk> is the first two hex digits of the hashed key (a fan-out
// shard so directories stay small under large sweeps). Every file starts
// with a gob-encoded header {Format, Version, Kind, Key}; Get verifies
// all four before decoding the payload, so a format bump, a schema
// version bump, or a (vanishingly unlikely) filename-hash collision all
// read as a clean miss, never as a stale or aliased artifact.
//
// Writes go through a temp file plus rename, so concurrent writers —
// including separate processes sharing one cache directory — can race on
// a key without ever exposing a torn file. Losing the race wastes one
// redundant write of identical content, nothing more.
package cache

import (
	"crypto/sha256"
	"encoding/gob"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
)

// FormatVersion is the file-format version stamped into every artifact
// header. Bump it when the header or framing changes; older files then
// miss instead of mis-decoding.
const FormatVersion = 1

// header precedes every payload on disk.
type header struct {
	Format  int
	Version string
	Kind    string
	Key     string
}

// Store is a handle on one cache directory at one schema version. The
// zero value is unusable; use Open.
type Store struct {
	root    string
	version string
}

// Open prepares a store rooted at dir for artifacts of the given schema
// version, creating directories as needed. Different versions share a
// root but never each other's artifacts.
func Open(dir, version string) (*Store, error) {
	if dir == "" {
		return nil, fmt.Errorf("cache: empty directory")
	}
	if version == "" {
		return nil, fmt.Errorf("cache: empty version")
	}
	root := filepath.Join(dir, sanitize(version))
	if err := os.MkdirAll(root, 0o755); err != nil {
		return nil, fmt.Errorf("cache: %w", err)
	}
	return &Store{root: root, version: version}, nil
}

// Root returns the store's versioned root directory.
func (s *Store) Root() string { return s.root }

// path maps (kind, key) to the artifact file.
func (s *Store) path(kind, key string) string {
	sum := sha256.Sum256([]byte(key))
	name := hex.EncodeToString(sum[:])
	return filepath.Join(s.root, sanitize(kind), name[:2], name+".gob")
}

// Get decodes the artifact stored under (kind, key) into out, reporting
// whether it was found. A missing file, a version or format mismatch, or
// a key collision is a miss (false, nil); a present-but-undecodable file
// is an error.
func (s *Store) Get(kind, key string, out any) (bool, error) {
	f, err := os.Open(s.path(kind, key))
	if err != nil {
		if os.IsNotExist(err) {
			return false, nil
		}
		return false, fmt.Errorf("cache: %w", err)
	}
	defer f.Close()
	dec := gob.NewDecoder(f)
	var h header
	if err := dec.Decode(&h); err != nil {
		return false, fmt.Errorf("cache: %s/%s: bad header: %w", kind, key, err)
	}
	if h.Format != FormatVersion || h.Version != s.version || h.Kind != kind || h.Key != key {
		return false, nil
	}
	if err := dec.Decode(out); err != nil {
		return false, fmt.Errorf("cache: %s/%s: bad payload: %w", kind, key, err)
	}
	return true, nil
}

// Put stores v under (kind, key), atomically replacing any previous
// artifact.
func (s *Store) Put(kind, key string, v any) error {
	path := s.path(kind, key)
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return fmt.Errorf("cache: %w", err)
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), ".tmp-*")
	if err != nil {
		return fmt.Errorf("cache: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	enc := gob.NewEncoder(tmp)
	if err := enc.Encode(header{
		Format: FormatVersion, Version: s.version, Kind: kind, Key: key,
	}); err == nil {
		err = enc.Encode(v)
	}
	if err != nil {
		tmp.Close()
		return fmt.Errorf("cache: %s/%s: encode: %w", kind, key, err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("cache: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("cache: %w", err)
	}
	return nil
}

// sanitize keeps path segments portable: anything outside
// [a-zA-Z0-9._-] becomes '_'.
func sanitize(s string) string {
	out := []byte(s)
	for i, c := range out {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z',
			c >= '0' && c <= '9', c == '.', c == '_', c == '-':
		default:
			out[i] = '_'
		}
	}
	return string(out)
}
