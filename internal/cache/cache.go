// Package cache is a versioned binary artifact store on disk: the
// persistence layer under the exploration engine's memoization. Artifacts
// are addressed by (kind, key) where the key is any stable identifier —
// in practice the stage keys of internal/core, which already hash the
// artifact content, the consumed options, and a per-stage version.
//
// On-disk layout:
//
//	<root>/<schema-version>/<kind>/<kk>/<sha256(key)>.art
//
// where <kk> is the first two hex digits of the hashed key (a fan-out
// shard so directories stay small under large sweeps). Every file is a
// small wire-framed header — format tag, schema version, kind, key, and
// the SHA-256 of the payload — followed by the raw payload bytes. Get
// verifies the header fields and streams the hash over the payload
// before handing it back, so a format bump, a schema version bump, or a
// (vanishingly unlikely) filename-hash collision all read as a clean
// miss, while a corrupted payload reads as an error — never as a stale,
// aliased, or silently damaged artifact. Verification costs one hash
// pass over the stored bytes: no decode, no re-encode.
//
// Writes go through a temp file plus rename, so concurrent writers —
// including separate processes sharing one cache directory — can race on
// a key without ever exposing a torn file. Losing the race wastes one
// redundant write of identical content, nothing more.
//
// The store tracks recency by file mtime: a successful Get refreshes the
// artifact's timestamp, so mtime order approximates LRU order and GC can
// evict cold artifacts first when the directory outgrows a byte budget.
package cache

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync/atomic"
	"time"

	"sparkgo/internal/wire"
)

// FormatVersion is the file-format version carried in every artifact's
// format tag. Bump it when the header or framing changes; older files
// then miss instead of mis-decoding.
const FormatVersion = 2

// fileTag is the wire format tag at the head of every artifact file.
var fileTag = fmt.Sprintf("artcache/%d", FormatVersion)

// ext is the artifact file extension. GC deliberately does not key on
// it — any regular file under the cache root except in-flight temp
// files is subject to eviction and size accounting.
const ext = ".art"

// Store is a handle on one cache directory at one schema version. The
// zero value is unusable; use Open.
type Store struct {
	base    string // directory handed to Open; shared by every schema version
	root    string // <base>/<schema-version>
	version string

	// headerMisses counts files whose header parsed but did not match
	// this store's identity (format tag, schema version, kind, or key)
	// and were therefore reported as clean misses — the signature of a
	// schema bump or a shared directory polluted by another version.
	headerMisses atomic.Int64
	// corruptions counts files whose header would not parse or whose
	// payload failed its hash check — damaged artifacts, reported as
	// errors.
	corruptions atomic.Int64
}

// Stats is the store's cumulative diagnostic counters: how often Get
// found a file it could not serve, split by cause. A nonzero
// HeaderMisses on a freshly bumped schema is expected churn; nonzero
// Corruptions is never expected and points at storage trouble.
type Stats struct {
	HeaderMisses int64
	Corruptions  int64
}

// Stats snapshots the store's diagnostic counters.
func (s *Store) Stats() Stats {
	return Stats{
		HeaderMisses: s.headerMisses.Load(),
		Corruptions:  s.corruptions.Load(),
	}
}

// Open prepares a store rooted at dir for artifacts of the given schema
// version, creating directories as needed. Different versions share a
// root but never each other's artifacts.
func Open(dir, version string) (*Store, error) {
	if dir == "" {
		return nil, fmt.Errorf("cache: empty directory")
	}
	if version == "" {
		return nil, fmt.Errorf("cache: empty version")
	}
	root := filepath.Join(dir, sanitize(version))
	if err := os.MkdirAll(root, 0o755); err != nil {
		return nil, fmt.Errorf("cache: %w", err)
	}
	return &Store{base: dir, root: root, version: version}, nil
}

// Root returns the store's versioned root directory.
func (s *Store) Root() string { return s.root }

// path maps (kind, key) to the artifact file.
func (s *Store) path(kind, key string) string {
	sum := sha256.Sum256([]byte(key))
	name := hex.EncodeToString(sum[:])
	return filepath.Join(s.root, sanitize(kind), name[:2], name+ext)
}

// Get returns the payload stored under (kind, key), reporting whether
// it was found. A missing file, a version or format mismatch, or a key
// collision is a miss (nil, false, nil); an unparseable header or a
// payload whose streamed SHA-256 disagrees with the stored digest is an
// error. A hit refreshes the file's mtime, so GC's oldest-first
// eviction order tracks access recency, not just write order.
func (s *Store) Get(kind, key string) ([]byte, bool, error) {
	path := s.path(kind, key)
	data, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, false, nil
		}
		return nil, false, fmt.Errorf("cache: %w", err)
	}
	d := wire.NewDecoder(data)
	tag := d.String()
	version := d.String()
	k := d.String()
	ky := d.String()
	sum := d.Raw(sha256.Size)
	payload := d.Bytes()
	if err := d.Finish(); err != nil {
		s.corruptions.Add(1)
		return nil, false, fmt.Errorf("cache: %s/%s: bad header: %w", kind, key, err)
	}
	if tag != fileTag || version != s.version || k != kind || ky != key {
		s.headerMisses.Add(1)
		return nil, false, nil
	}
	if got := sha256.Sum256(payload); string(got[:]) != string(sum) {
		s.corruptions.Add(1)
		return nil, false, fmt.Errorf("cache: %s/%s: payload hash mismatch (corrupt artifact)", kind, key)
	}
	now := time.Now()
	_ = os.Chtimes(path, now, now) // best-effort recency marker for GC
	return payload, true, nil
}

// Put stores payload under (kind, key), atomically replacing any
// previous artifact. The payload's SHA-256 is computed here and stored
// in the header, so every later Get verifies integrity by hashing
// alone.
func (s *Store) Put(kind, key string, payload []byte) error {
	path := s.path(kind, key)
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return fmt.Errorf("cache: %w", err)
	}
	sum := sha256.Sum256(payload)
	e := wire.NewEncoder(64 + len(kind) + len(key) + len(payload))
	e.Tag(fileTag)
	e.String(s.version)
	e.String(kind)
	e.String(key)
	e.Raw(sum[:])
	e.Bytes(payload)
	tmp, err := os.CreateTemp(filepath.Dir(path), ".tmp-*")
	if err != nil {
		return fmt.Errorf("cache: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if _, err := tmp.Write(e.Data()); err != nil {
		tmp.Close()
		return fmt.Errorf("cache: %s/%s: write: %w", kind, key, err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("cache: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("cache: %w", err)
	}
	return nil
}

// Stat reports whether (kind, key) is stored with a matching header,
// without hashing the payload: presence, not integrity. An unreadable
// or unparseable file reads as absent.
func (s *Store) Stat(kind, key string) (bool, error) {
	data, err := os.ReadFile(s.path(kind, key))
	if err != nil {
		if os.IsNotExist(err) {
			return false, nil
		}
		return false, fmt.Errorf("cache: %w", err)
	}
	d := wire.NewDecoder(data)
	tag := d.String()
	version := d.String()
	k := d.String()
	ky := d.String()
	if d.Err() != nil {
		return false, nil
	}
	return tag == fileTag && version == s.version && k == kind && ky == key, nil
}

// Delete removes the artifact stored under (kind, key); deleting a
// missing artifact is a no-op.
func (s *Store) Delete(kind, key string) error {
	if err := os.Remove(s.path(kind, key)); err != nil && !os.IsNotExist(err) {
		return fmt.Errorf("cache: %w", err)
	}
	return nil
}

// KindGC is the per-kind slice of a GC pass: how much of one artifact
// kind (frontend, midend, backend, point) was scanned and evicted, so
// eviction pressure is attributable to a cache layer instead of
// disappearing into an aggregate. Files outside the store's
// <schema>/<kind>/<hh>/<file> layout report under kind "other".
type KindGC struct {
	Kind         string
	ScannedFiles int
	ScannedBytes int64
	RemovedFiles int
	RemovedBytes int64
}

// GCStat summarizes one GC pass over the cache directory.
type GCStat struct {
	ScannedFiles   int   // artifact files found before eviction
	ScannedBytes   int64 // their total size
	RemovedFiles   int
	RemovedBytes   int64
	RemainingBytes int64 // ScannedBytes - RemovedBytes
	// TmpRemovedFiles/TmpRemovedBytes count orphaned temp files — left
	// by writers that crashed mid-Put — reclaimed by this pass. They
	// are outside the Scanned/Removed accounting: temp files never
	// count toward the byte budget.
	TmpRemovedFiles int
	TmpRemovedBytes int64
	// Kinds is the per-kind breakdown of the counters above, sorted by
	// kind name. Kind totals sum to the aggregate counters.
	Kinds []KindGC
}

// tmpMaxAge is the staleness threshold for reclaiming temp files
// during GC: a ".tmp-" file older than this was abandoned by a crashed
// writer (a live Put renames within milliseconds), so it is removed
// rather than skipped. Generous enough that no plausible in-flight
// write is ever at risk.
const tmpMaxAge = time.Hour

// GC evicts artifacts oldest-mtime-first until the cache directory's
// total size is at or under maxBytes (0 empties it). Because Get
// refreshes mtimes, eviction order approximates LRU; because it walks
// the whole base directory — every schema version, not just this
// store's — artifacts stranded under retired schema versions are
// reclaimed first, which is exactly where a version bump leaves
// garbage. The walk is extension-agnostic: every regular file counts
// toward the budget and is evictable, whatever its suffix — including
// artifacts written by retired formats. Temp files a concurrent Put
// may still be assembling (".tmp-" prefixed) are skipped while fresh,
// but reclaimed once older than tmpMaxAge — a crashed writer's orphans
// would otherwise leak forever, invisible to the byte budget. A file
// that vanishes mid-walk — a concurrent GC or writer won the race —
// is skipped, not an error.
func (s *Store) GC(maxBytes int64) (GCStat, error) {
	if maxBytes < 0 {
		return GCStat{}, fmt.Errorf("cache: negative GC budget %d", maxBytes)
	}
	type entry struct {
		path  string
		kind  string
		size  int64
		mtime time.Time
	}
	var files []entry
	var stat GCStat
	perKind := map[string]*KindGC{}
	kindOf := func(path string) string {
		// Artifacts live at <base>/<schema>/<kind>/<hh>/<file>; a file
		// anywhere else is still evicted but reported as "other".
		rel, err := filepath.Rel(s.base, path)
		if err != nil {
			return "other"
		}
		segs := strings.Split(rel, string(filepath.Separator))
		if len(segs) != 4 {
			return "other"
		}
		return segs[1]
	}
	bucket := func(kind string) *KindGC {
		k := perKind[kind]
		if k == nil {
			k = &KindGC{Kind: kind}
			perKind[kind] = k
		}
		return k
	}
	err := filepath.WalkDir(s.base, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			if os.IsNotExist(err) {
				return nil
			}
			return err
		}
		if d.IsDir() {
			return nil
		}
		info, err := d.Info()
		if err != nil {
			if os.IsNotExist(err) {
				return nil
			}
			return err
		}
		if strings.HasPrefix(d.Name(), ".tmp-") {
			if time.Since(info.ModTime()) < tmpMaxAge {
				return nil // plausibly a live Put; leave it alone
			}
			if err := os.Remove(path); err == nil {
				stat.TmpRemovedFiles++
				stat.TmpRemovedBytes += info.Size()
			}
			return nil
		}
		kind := kindOf(path)
		files = append(files, entry{path: path, kind: kind, size: info.Size(), mtime: info.ModTime()})
		stat.ScannedFiles++
		stat.ScannedBytes += info.Size()
		k := bucket(kind)
		k.ScannedFiles++
		k.ScannedBytes += info.Size()
		return nil
	})
	finish := func() GCStat {
		for _, k := range perKind {
			stat.Kinds = append(stat.Kinds, *k)
		}
		sort.Slice(stat.Kinds, func(i, j int) bool { return stat.Kinds[i].Kind < stat.Kinds[j].Kind })
		return stat
	}
	if err != nil {
		return finish(), fmt.Errorf("cache: gc: %w", err)
	}
	sort.Slice(files, func(i, j int) bool {
		if !files[i].mtime.Equal(files[j].mtime) {
			return files[i].mtime.Before(files[j].mtime)
		}
		return files[i].path < files[j].path // stable order under equal stamps
	})
	remaining := stat.ScannedBytes
	for _, f := range files {
		if remaining <= maxBytes {
			break
		}
		if err := os.Remove(f.path); err != nil {
			if os.IsNotExist(err) {
				continue
			}
			stat.RemainingBytes = remaining
			return finish(), fmt.Errorf("cache: gc: %w", err)
		}
		remaining -= f.size
		stat.RemovedFiles++
		stat.RemovedBytes += f.size
		k := bucket(f.kind)
		k.RemovedFiles++
		k.RemovedBytes += f.size
	}
	stat.RemainingBytes = remaining
	return finish(), nil
}

// sanitize keeps path segments portable: anything outside
// [a-zA-Z0-9._-] becomes '_'.
func sanitize(s string) string {
	out := []byte(s)
	for i, c := range out {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z',
			c >= '0' && c <= '9', c == '.', c == '_', c == '-':
		default:
			out[i] = '_'
		}
	}
	return string(out)
}
