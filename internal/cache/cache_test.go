package cache_test

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"sparkgo/internal/cache"
)

// payloadFor builds a distinguishable artifact payload for a key.
func payloadFor(key string) []byte {
	return append([]byte("payload:"+key+":"), bytes.Repeat([]byte{0xab}, 64)...)
}

func TestPutGetRoundTrip(t *testing.T) {
	s, err := cache.Open(t.TempDir(), "v1")
	if err != nil {
		t.Fatal(err)
	}
	want := payloadFor("key-1")
	if err := s.Put("frontend", "key-1", want); err != nil {
		t.Fatal(err)
	}
	got, ok, err := s.Get("frontend", "key-1")
	if err != nil || !ok {
		t.Fatalf("Get = %v, %v; want hit", ok, err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("round trip: got %q want %q", got, want)
	}
}

func TestMissOnAbsentKey(t *testing.T) {
	s, err := cache.Open(t.TempDir(), "v1")
	if err != nil {
		t.Fatal(err)
	}
	_, ok, err := s.Get("frontend", "no-such-key")
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("hit on absent key")
	}
}

// TestVersionedInvalidation pins the invalidation contract: artifacts
// written under one schema version are invisible to a store opened at
// another version on the same root, in both directions.
func TestVersionedInvalidation(t *testing.T) {
	root := t.TempDir()
	v1, err := cache.Open(root, "v1")
	if err != nil {
		t.Fatal(err)
	}
	if err := v1.Put("point", "k", []byte("old")); err != nil {
		t.Fatal(err)
	}
	v2, err := cache.Open(root, "v2")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok, err := v2.Get("point", "k"); err != nil || ok {
		t.Fatalf("v2 store sees v1 artifact: ok=%v err=%v", ok, err)
	}
	if err := v2.Put("point", "k", []byte("new")); err != nil {
		t.Fatal(err)
	}
	if got, ok, err := v1.Get("point", "k"); err != nil || !ok || string(got) != "old" {
		t.Fatalf("v1 artifact disturbed: ok=%v err=%v got=%q", ok, err, got)
	}
}

// TestKindsAreDisjoint checks that the same key under different kinds
// addresses different artifacts.
func TestKindsAreDisjoint(t *testing.T) {
	s, err := cache.Open(t.TempDir(), "v1")
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put("frontend", "k", []byte("fe")); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := s.Get("point", "k"); ok {
		t.Fatal("kind 'point' served kind 'frontend' artifact")
	}
}

// artifactFiles lists every non-temp regular file under root.
func artifactFiles(t *testing.T, root string) []string {
	t.Helper()
	var files []string
	err := filepath.Walk(root, func(p string, info os.FileInfo, err error) error {
		if err == nil && !info.IsDir() && !strings.HasPrefix(filepath.Base(p), ".tmp-") {
			files = append(files, p)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return files
}

// TestHeaderMismatchIsMiss corrupts a stored artifact's location by
// writing a different key's content there, and checks the header check
// turns it into a miss rather than silently aliasing.
func TestHeaderMismatchIsMiss(t *testing.T) {
	root := t.TempDir()
	s, err := cache.Open(root, "v1")
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put("point", "a", payloadFor("a")); err != nil {
		t.Fatal(err)
	}
	// Find the stored file and copy it over where key "b" would live:
	// a filename-hash collision in miniature.
	files := artifactFiles(t, root)
	if len(files) != 1 {
		t.Fatalf("expected 1 stored file, found %d", len(files))
	}
	data, err := os.ReadFile(files[0])
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put("point", "b", payloadFor("b")); err != nil {
		t.Fatal(err)
	}
	for _, f := range artifactFiles(t, root) {
		if err := os.WriteFile(f, data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	if got, ok, err := s.Get("point", "b"); err != nil || ok {
		t.Fatalf("aliased artifact served: ok=%v err=%v got=%q", ok, err, got)
	}
	if got, ok, err := s.Get("point", "a"); err != nil || !ok || !bytes.Equal(got, payloadFor("a")) {
		t.Fatalf("original artifact lost: ok=%v err=%v", ok, err)
	}
}

// TestCorruptPayloadIsError pins the streaming-hash verification: a
// payload whose bytes no longer match the digest written at Put time
// must surface as an error — the caller counts it and recomputes — not
// as a hit on damaged data and not as a silent miss.
func TestCorruptPayloadIsError(t *testing.T) {
	root := t.TempDir()
	s, err := cache.Open(root, "v1")
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put("midend", "k", payloadFor("k")); err != nil {
		t.Fatal(err)
	}
	files := artifactFiles(t, root)
	if len(files) != 1 {
		t.Fatalf("expected 1 stored file, found %d", len(files))
	}
	data, err := os.ReadFile(files[0])
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0xff // flip a payload bit
	if err := os.WriteFile(files[0], data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok, err := s.Get("midend", "k"); err == nil {
		t.Fatalf("corrupt payload served: ok=%v", ok)
	}
	// Truncation mangles the framing itself: also an error, not a hit.
	if err := os.WriteFile(files[0], data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok, err := s.Get("midend", "k"); err == nil {
		t.Fatalf("truncated artifact served: ok=%v", ok)
	}
}

// age back-dates the most recently written artifact file under root by
// d, so GC ordering is deterministic regardless of filesystem timestamp
// granularity. Call it right after the Put it should apply to.
func age(t *testing.T, root string, d time.Duration) {
	t.Helper()
	var newest string
	var newestTime time.Time
	for _, p := range artifactFiles(t, root) {
		info, err := os.Stat(p)
		if err != nil {
			continue
		}
		if newest == "" || info.ModTime().After(newestTime) {
			newest, newestTime = p, info.ModTime()
		}
	}
	if newest == "" {
		t.Fatal("artifact file not found")
	}
	old := time.Now().Add(-d)
	if err := os.Chtimes(newest, old, old); err != nil {
		t.Fatal(err)
	}
}

// TestGCEvictsOldestFirst: over-budget caches shed artifacts in mtime
// order, oldest first, and stop as soon as they fit.
func TestGCEvictsOldestFirst(t *testing.T) {
	root := t.TempDir()
	s, err := cache.Open(root, "v1")
	if err != nil {
		t.Fatal(err)
	}
	var size int64
	for i, key := range []string{"old", "mid", "new"} {
		if err := s.Put("point", key, payloadFor("x")); err != nil {
			t.Fatal(err)
		}
		age(t, root, time.Duration(3-i)*time.Hour)
		if size == 0 {
			st, err := s.GC(1 << 40) // measure one artifact's size
			if err != nil {
				t.Fatal(err)
			}
			size = st.ScannedBytes
		}
	}
	st, err := s.GC(2 * size)
	if err != nil {
		t.Fatal(err)
	}
	if st.ScannedFiles != 3 || st.RemovedFiles != 1 || st.RemainingBytes > 2*size {
		t.Fatalf("GC stat: %+v (artifact size %d)", st, size)
	}
	if _, ok, _ := s.Get("point", "old"); ok {
		t.Fatal("oldest artifact survived GC")
	}
	for _, key := range []string{"mid", "new"} {
		if _, ok, err := s.Get("point", key); err != nil || !ok {
			t.Fatalf("recent artifact %q evicted: ok=%v err=%v", key, ok, err)
		}
	}
}

// TestGCZeroBudgetEmpties: GC(0) clears the cache entirely; a negative
// budget is rejected.
func TestGCZeroBudgetEmpties(t *testing.T) {
	s, err := cache.Open(t.TempDir(), "v1")
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"a", "b"} {
		if err := s.Put("point", key, payloadFor(key)); err != nil {
			t.Fatal(err)
		}
	}
	st, err := s.GC(0)
	if err != nil {
		t.Fatal(err)
	}
	if st.RemovedFiles != 2 || st.RemainingBytes != 0 {
		t.Fatalf("GC(0) stat: %+v", st)
	}
	if _, err := s.GC(-1); err == nil {
		t.Fatal("negative budget accepted")
	}
}

// TestGCIsExtensionAgnostic pins the regression where GC's walk only
// saw one file extension: artifacts written by retired formats (".gob"
// files, or any other suffix) share the cache directory and must count
// toward the byte budget and be evictable, or a format migration leaves
// unaccounted garbage that -cache-max-bytes never reclaims. Temp files
// a concurrent Put is assembling stay exempt.
func TestGCIsExtensionAgnostic(t *testing.T) {
	root := t.TempDir()
	s, err := cache.Open(root, "v1")
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put("point", "live", payloadFor("live")); err != nil {
		t.Fatal(err)
	}
	// A stale artifact from the retired gob format, and one with no
	// extension at all — both must be scanned and evicted.
	legacyDir := filepath.Join(s.Root(), "point", "ab")
	if err := os.MkdirAll(legacyDir, 0o755); err != nil {
		t.Fatal(err)
	}
	legacy := filepath.Join(legacyDir, strings.Repeat("ab", 32)+".gob")
	if err := os.WriteFile(legacy, bytes.Repeat([]byte{1}, 128), 0o644); err != nil {
		t.Fatal(err)
	}
	bare := filepath.Join(legacyDir, "stray")
	if err := os.WriteFile(bare, bytes.Repeat([]byte{2}, 128), 0o644); err != nil {
		t.Fatal(err)
	}
	// An in-flight temp file must stay invisible to GC.
	tmp := filepath.Join(legacyDir, ".tmp-12345")
	if err := os.WriteFile(tmp, bytes.Repeat([]byte{3}, 128), 0o644); err != nil {
		t.Fatal(err)
	}
	st, err := s.GC(1 << 40)
	if err != nil {
		t.Fatal(err)
	}
	if st.ScannedFiles != 3 {
		t.Fatalf("GC scanned %d files, want 3 (legacy extensions must be visible): %+v", st.ScannedFiles, st)
	}
	st, err = s.GC(0)
	if err != nil {
		t.Fatal(err)
	}
	if st.RemovedFiles != 3 || st.RemainingBytes != 0 {
		t.Fatalf("GC(0) stat: %+v (legacy extensions must be evictable)", st)
	}
	for _, p := range []string{legacy, bare} {
		if _, err := os.Stat(p); !os.IsNotExist(err) {
			t.Errorf("legacy file %s survived GC(0)", filepath.Base(p))
		}
	}
	if _, err := os.Stat(tmp); err != nil {
		t.Errorf("in-flight temp file evicted: %v", err)
	}
}

// TestGCReclaimsRetiredSchemas: artifacts stranded under an old schema
// version share the base directory, so a GC through the current store
// must see and reclaim them — that is where version bumps leave garbage.
func TestGCReclaimsRetiredSchemas(t *testing.T) {
	root := t.TempDir()
	old, err := cache.Open(root, "v1")
	if err != nil {
		t.Fatal(err)
	}
	if err := old.Put("point", "stale", payloadFor("stale")); err != nil {
		t.Fatal(err)
	}
	age(t, root, time.Hour)
	cur, err := cache.Open(root, "v2")
	if err != nil {
		t.Fatal(err)
	}
	if err := cur.Put("point", "live", payloadFor("live")); err != nil {
		t.Fatal(err)
	}
	probe, err := cur.GC(1 << 40)
	if err != nil {
		t.Fatal(err)
	}
	if probe.ScannedFiles != 2 {
		t.Fatalf("GC scanned %d files across schemas, want 2", probe.ScannedFiles)
	}
	st, err := cur.GC(probe.ScannedBytes / 2)
	if err != nil {
		t.Fatal(err)
	}
	if st.RemovedFiles != 1 {
		t.Fatalf("GC stat: %+v", st)
	}
	if _, ok, _ := old.Get("point", "stale"); ok {
		t.Fatal("retired-schema artifact survived")
	}
	if _, ok, err := cur.Get("point", "live"); err != nil || !ok {
		t.Fatalf("live artifact evicted: ok=%v err=%v", ok, err)
	}
}

// TestGetRefreshesRecency: a Get must bump the artifact's timestamp so
// hot artifacts survive GC even when they were written first.
func TestGetRefreshesRecency(t *testing.T) {
	root := t.TempDir()
	s, err := cache.Open(root, "v1")
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put("point", "hot", payloadFor("hot")); err != nil {
		t.Fatal(err)
	}
	age(t, root, 2*time.Hour)
	if err := s.Put("point", "cold", payloadFor("cold")); err != nil {
		t.Fatal(err)
	}
	age(t, root, time.Hour)
	// "hot" is older on disk, but a read refreshes it past "cold".
	if _, ok, err := s.Get("point", "hot"); err != nil || !ok {
		t.Fatal("hot artifact missing before GC")
	}
	probe, err := s.GC(1 << 40)
	if err != nil {
		t.Fatal(err)
	}
	st, err := s.GC(probe.ScannedBytes / 2)
	if err != nil {
		t.Fatal(err)
	}
	if st.RemovedFiles != 1 {
		t.Fatalf("GC stat: %+v", st)
	}
	if _, ok, _ := s.Get("point", "cold"); ok {
		t.Fatal("cold artifact survived over the recently read one")
	}
	if _, ok, err := s.Get("point", "hot"); err != nil || !ok {
		t.Fatal("recently read artifact evicted")
	}
}

// TestConcurrentPutGet races writers and readers on a small key set; the
// atomic-rename protocol must never expose a torn or empty artifact.
func TestConcurrentPutGet(t *testing.T) {
	s, err := cache.Open(t.TempDir(), "v1")
	if err != nil {
		t.Fatal(err)
	}
	keys := []string{"k0", "k1", "k2", "k3"}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				k := keys[(w+i)%len(keys)]
				want := payloadFor(k)
				if err := s.Put("point", k, want); err != nil {
					t.Error(err)
					return
				}
				got, ok, err := s.Get("point", k)
				if err != nil {
					t.Error(err)
					return
				}
				if ok && !bytes.Equal(got, want) {
					t.Errorf("key %s served %q", k, got)
					return
				}
			}
		}(w)
	}
	wg.Wait()
}

// TestGCConcurrentWithReadersAndWriter overlaps eviction with readers
// (whose Gets refresh mtimes) and a concurrent writer minting new keys:
// the store's invariants under GC are (1) a read never observes a torn
// or aliased artifact — it either hits with the exact payload written
// under that key or misses cleanly — and (2) once the dust settles,
// eviction order followed access recency, so the survivors are the
// most-recently-used keys. Run under -race.
func TestGCConcurrentWithReadersAndWriter(t *testing.T) {
	root := t.TempDir()
	s, err := cache.Open(root, "v1")
	if err != nil {
		t.Fatal(err)
	}
	const seeded = 16
	seedKey := func(i int) string { return fmt.Sprintf("seed-%02d", i) }
	for i := 0; i < seeded; i++ {
		if err := s.Put("point", seedKey(i), payloadFor(seedKey(i))); err != nil {
			t.Fatal(err)
		}
	}
	probe, err := s.GC(1 << 40)
	if err != nil {
		t.Fatal(err)
	}
	perFile := probe.ScannedBytes / int64(probe.ScannedFiles)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	// Readers: Get must never error (a torn file would fail the hash) and
	// a hit must carry exactly the payload written under the key.
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				k := seedKey((r*5 + i) % seeded)
				got, ok, err := s.Get("point", k)
				if err != nil {
					t.Errorf("reader: Get(%s) during GC: %v", k, err)
					return
				}
				if ok && !bytes.Equal(got, payloadFor(k)) {
					t.Errorf("reader: Get(%s) served aliased payload %q", k, got)
					return
				}
			}
		}(r)
	}
	// Writer: keeps minting fresh keys while GC evicts.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			k := fmt.Sprintf("fresh-%04d", i)
			if err := s.Put("point", k, payloadFor(k)); err != nil {
				t.Errorf("writer: Put(%s) during GC: %v", k, err)
				return
			}
		}
	}()
	// GC: repeatedly squeeze the directory to roughly half the seeds.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if _, err := s.GC(perFile * seeded / 2); err != nil {
				t.Errorf("concurrent GC: %v", err)
				return
			}
		}
	}()
	time.Sleep(300 * time.Millisecond)
	close(stop)
	wg.Wait()

	// Quiesced MRU check: rebuild a known key set, age everything, touch
	// a subset via Get, then squeeze to a budget that only fits the
	// touched keys — they, and only they, must survive.
	const total, keep = 10, 3
	key := func(i int) string { return fmt.Sprintf("mru-%02d", i) }
	if _, err := s.GC(0); err != nil { // start clean
		t.Fatal(err)
	}
	for i := 0; i < total; i++ {
		if err := s.Put("point", key(i), payloadFor(key(i))); err != nil {
			t.Fatal(err)
		}
	}
	age(t, root, time.Hour)
	for i := total - keep; i < total; i++ {
		if _, ok, err := s.Get("point", key(i)); err != nil || !ok {
			t.Fatalf("touch %s: ok=%t err=%v", key(i), ok, err)
		}
	}
	if _, err := s.GC(perFile*keep + perFile/2); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < total; i++ {
		_, ok, err := s.Get("point", key(i))
		if err != nil {
			t.Fatal(err)
		}
		if wantSurvive := i >= total-keep; ok != wantSurvive {
			t.Errorf("key %s: survived=%t, want %t (survivors must be the most-recently-used)",
				key(i), ok, wantSurvive)
		}
	}
}

// TestGCPerKindCounters: the GC report attributes scanned and evicted
// bytes to the artifact kind each file lives under, and the per-kind
// rows sum exactly to the aggregate counters.
func TestGCPerKindCounters(t *testing.T) {
	root := t.TempDir()
	s, err := cache.Open(root, "v1")
	if err != nil {
		t.Fatal(err)
	}
	kinds := []string{"frontend", "midend", "backend", "point"}
	for i, kind := range kinds {
		for j := 0; j <= i; j++ { // 1 frontend, 2 midend, 3 backend, 4 point
			if err := s.Put(kind, fmt.Sprintf("k%d", j), payloadFor("x")); err != nil {
				t.Fatal(err)
			}
		}
	}
	st, err := s.GC(0) // empty the cache: everything is both scanned and removed
	if err != nil {
		t.Fatal(err)
	}
	if st.ScannedFiles != 10 || st.RemovedFiles != 10 {
		t.Fatalf("GC stat: %+v", st)
	}
	if len(st.Kinds) != len(kinds) {
		t.Fatalf("per-kind rows: %+v", st.Kinds)
	}
	var names []string
	var scannedFiles, removedFiles int
	var scannedBytes, removedBytes int64
	for _, k := range st.Kinds {
		names = append(names, k.Kind)
		scannedFiles += k.ScannedFiles
		removedFiles += k.RemovedFiles
		scannedBytes += k.ScannedBytes
		removedBytes += k.RemovedBytes
		if k.ScannedFiles != k.RemovedFiles || k.ScannedBytes != k.RemovedBytes {
			t.Errorf("kind %s: scanned %d/%d, removed %d/%d — GC(0) must evict everything",
				k.Kind, k.ScannedFiles, k.ScannedBytes, k.RemovedFiles, k.RemovedBytes)
		}
	}
	if !sort.StringsAreSorted(names) {
		t.Errorf("per-kind rows not sorted: %v", names)
	}
	if scannedFiles != st.ScannedFiles || removedFiles != st.RemovedFiles ||
		scannedBytes != st.ScannedBytes || removedBytes != st.RemovedBytes {
		t.Errorf("per-kind rows do not sum to the aggregate: %+v", st)
	}
	byKind := map[string]cache.KindGC{}
	for _, k := range st.Kinds {
		byKind[k.Kind] = k
	}
	for i, kind := range kinds {
		if got := byKind[kind].ScannedFiles; got != i+1 {
			t.Errorf("kind %s: scanned %d files, want %d", kind, got, i+1)
		}
	}
}

// TestGCPartialEvictionPerKind: a budget that spares the newest files
// attributes the evictions to the kinds that actually lost artifacts.
func TestGCPartialEvictionPerKind(t *testing.T) {
	root := t.TempDir()
	s, err := cache.Open(root, "v1")
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put("midend", "old", payloadFor("old")); err != nil {
		t.Fatal(err)
	}
	age(t, root, time.Hour)
	if err := s.Put("backend", "new", payloadFor("new")); err != nil {
		t.Fatal(err)
	}
	probe, err := s.GC(1 << 40)
	if err != nil {
		t.Fatal(err)
	}
	st, err := s.GC(probe.ScannedBytes * 3 / 4) // room for one of the two
	if err != nil {
		t.Fatal(err)
	}
	if st.RemovedFiles != 1 {
		t.Fatalf("GC stat: %+v", st)
	}
	for _, k := range st.Kinds {
		switch k.Kind {
		case "midend":
			if k.RemovedFiles != 1 {
				t.Errorf("oldest (midend) artifact survived: %+v", k)
			}
		case "backend":
			if k.RemovedFiles != 0 {
				t.Errorf("newest (backend) artifact evicted: %+v", k)
			}
		}
	}
}

// TestGCReclaimsStaleTempFiles: a crashed writer's orphaned ".tmp-"
// file must be reclaimed once it is older than the staleness threshold,
// while a fresh temp file — possibly an in-flight Put on another
// process — stays untouched. Temp files never count toward the byte
// budget, so reclaiming them cannot evict live artifacts.
func TestGCReclaimsStaleTempFiles(t *testing.T) {
	root := t.TempDir()
	s, err := cache.Open(root, "v1")
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put("point", "live", payloadFor("live")); err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join(s.Root(), "point", "ab")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	stale := filepath.Join(dir, ".tmp-stale")
	if err := os.WriteFile(stale, bytes.Repeat([]byte{1}, 100), 0o644); err != nil {
		t.Fatal(err)
	}
	old := time.Now().Add(-2 * time.Hour)
	if err := os.Chtimes(stale, old, old); err != nil {
		t.Fatal(err)
	}
	fresh := filepath.Join(dir, ".tmp-fresh")
	if err := os.WriteFile(fresh, bytes.Repeat([]byte{2}, 100), 0o644); err != nil {
		t.Fatal(err)
	}
	st, err := s.GC(1 << 40)
	if err != nil {
		t.Fatal(err)
	}
	if st.TmpRemovedFiles != 1 || st.TmpRemovedBytes != 100 {
		t.Fatalf("GC stat: %+v, want 1 stale temp file / 100 bytes reclaimed", st)
	}
	if _, err := os.Stat(stale); !os.IsNotExist(err) {
		t.Error("stale temp file survived GC")
	}
	if _, err := os.Stat(fresh); err != nil {
		t.Errorf("fresh temp file reclaimed: %v", err)
	}
	if st.RemovedFiles != 0 {
		t.Errorf("live artifacts evicted under an ample budget: %+v", st)
	}
	if _, ok, err := s.Get("point", "live"); err != nil || !ok {
		t.Fatalf("live artifact lost: ok=%v err=%v", ok, err)
	}
}

// TestStoreStatsCounters: header mismatches and corrupted payloads must
// be counted, not just absorbed — /v1/stats surfaces these so an
// operator can tell a cold cache from a rotting one.
func TestStoreStatsCounters(t *testing.T) {
	root := t.TempDir()
	s, err := cache.Open(root, "v1")
	if err != nil {
		t.Fatal(err)
	}
	if st := s.Stats(); st.HeaderMisses != 0 || st.Corruptions != 0 {
		t.Fatalf("fresh store stats: %+v", st)
	}
	// Header miss: key "b" resolves to a file holding key "a"'s record.
	if err := s.Put("point", "a", payloadFor("a")); err != nil {
		t.Fatal(err)
	}
	files := artifactFiles(t, root)
	if len(files) != 1 {
		t.Fatalf("expected 1 stored file, found %d", len(files))
	}
	record, err := os.ReadFile(files[0])
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put("point", "b", payloadFor("b")); err != nil {
		t.Fatal(err)
	}
	for _, f := range artifactFiles(t, root) {
		if err := os.WriteFile(f, record, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	if _, ok, err := s.Get("point", "b"); ok || err != nil {
		t.Fatalf("aliased Get = ok %v err %v, want clean miss", ok, err)
	}
	if st := s.Stats(); st.HeaderMisses == 0 {
		t.Fatalf("header miss not counted: %+v", st)
	}
	// Corruption: flip a payload bit under key "a".
	record[len(record)-1] ^= 0xff
	for _, f := range artifactFiles(t, root) {
		if err := os.WriteFile(f, record, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	if _, _, err := s.Get("point", "a"); err == nil {
		t.Fatal("corrupt payload served")
	}
	if st := s.Stats(); st.Corruptions == 0 {
		t.Fatalf("corruption not counted: %+v", st)
	}
}
