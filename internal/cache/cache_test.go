package cache_test

import (
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"sync"
	"testing"
	"time"

	"sparkgo/internal/cache"
)

type artifact struct {
	Name   string
	Values []int
	Score  float64
}

func TestPutGetRoundTrip(t *testing.T) {
	s, err := cache.Open(t.TempDir(), "v1")
	if err != nil {
		t.Fatal(err)
	}
	want := artifact{Name: "fe", Values: []int{1, 2, 3}, Score: 2.5}
	if err := s.Put("frontend", "key-1", want); err != nil {
		t.Fatal(err)
	}
	var got artifact
	ok, err := s.Get("frontend", "key-1", &got)
	if err != nil || !ok {
		t.Fatalf("Get = %v, %v; want hit", ok, err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("round trip: got %+v want %+v", got, want)
	}
}

func TestMissOnAbsentKey(t *testing.T) {
	s, err := cache.Open(t.TempDir(), "v1")
	if err != nil {
		t.Fatal(err)
	}
	var got artifact
	ok, err := s.Get("frontend", "no-such-key", &got)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("hit on absent key")
	}
}

// TestVersionedInvalidation pins the invalidation contract: artifacts
// written under one schema version are invisible to a store opened at
// another version on the same root, in both directions.
func TestVersionedInvalidation(t *testing.T) {
	root := t.TempDir()
	v1, err := cache.Open(root, "v1")
	if err != nil {
		t.Fatal(err)
	}
	if err := v1.Put("point", "k", artifact{Name: "old"}); err != nil {
		t.Fatal(err)
	}
	v2, err := cache.Open(root, "v2")
	if err != nil {
		t.Fatal(err)
	}
	var got artifact
	if ok, err := v2.Get("point", "k", &got); err != nil || ok {
		t.Fatalf("v2 store sees v1 artifact: ok=%v err=%v", ok, err)
	}
	if err := v2.Put("point", "k", artifact{Name: "new"}); err != nil {
		t.Fatal(err)
	}
	if ok, err := v1.Get("point", "k", &got); err != nil || !ok || got.Name != "old" {
		t.Fatalf("v1 artifact disturbed: ok=%v err=%v got=%+v", ok, err, got)
	}
}

// TestKindsAreDisjoint checks that the same key under different kinds
// addresses different artifacts.
func TestKindsAreDisjoint(t *testing.T) {
	s, err := cache.Open(t.TempDir(), "v1")
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put("frontend", "k", artifact{Name: "fe"}); err != nil {
		t.Fatal(err)
	}
	var got artifact
	if ok, _ := s.Get("point", "k", &got); ok {
		t.Fatal("kind 'point' served kind 'frontend' artifact")
	}
}

// TestHeaderMismatchIsMiss corrupts a stored artifact's location by
// writing a different key's content there, and checks the header check
// turns it into a miss rather than silently aliasing.
func TestHeaderMismatchIsMiss(t *testing.T) {
	root := t.TempDir()
	s, err := cache.Open(root, "v1")
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put("point", "a", artifact{Name: "a"}); err != nil {
		t.Fatal(err)
	}
	// Find the stored file and copy it over where key "b" would live:
	// a filename-hash collision in miniature.
	var files []string
	filepath.Walk(root, func(p string, info os.FileInfo, err error) error {
		if err == nil && !info.IsDir() {
			files = append(files, p)
		}
		return nil
	})
	if len(files) != 1 {
		t.Fatalf("expected 1 stored file, found %d", len(files))
	}
	data, err := os.ReadFile(files[0])
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put("point", "b", artifact{Name: "b"}); err != nil {
		t.Fatal(err)
	}
	files = files[:0]
	filepath.Walk(root, func(p string, info os.FileInfo, err error) error {
		if err == nil && !info.IsDir() {
			files = append(files, p)
		}
		return nil
	})
	for _, f := range files {
		if err := os.WriteFile(f, data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	var got artifact
	if ok, err := s.Get("point", "b", &got); err != nil || ok {
		t.Fatalf("aliased artifact served: ok=%v err=%v got=%+v", ok, err, got)
	}
	if ok, err := s.Get("point", "a", &got); err != nil || !ok || got.Name != "a" {
		t.Fatalf("original artifact lost: ok=%v err=%v", ok, err)
	}
}

// age back-dates the most recently written artifact file under root by
// d, so GC ordering is deterministic regardless of filesystem timestamp
// granularity. Call it right after the Put it should apply to.
func age(t *testing.T, root string, d time.Duration) {
	t.Helper()
	var newest string
	var newestTime time.Time
	err := filepath.Walk(root, func(p string, info os.FileInfo, err error) error {
		if err == nil && !info.IsDir() && filepath.Ext(p) == ".gob" {
			if newest == "" || info.ModTime().After(newestTime) {
				newest, newestTime = p, info.ModTime()
			}
		}
		return nil
	})
	if err != nil || newest == "" {
		t.Fatalf("artifact file not found: %v", err)
	}
	old := time.Now().Add(-d)
	if err := os.Chtimes(newest, old, old); err != nil {
		t.Fatal(err)
	}
}

// TestGCEvictsOldestFirst: over-budget caches shed artifacts in mtime
// order, oldest first, and stop as soon as they fit.
func TestGCEvictsOldestFirst(t *testing.T) {
	root := t.TempDir()
	s, err := cache.Open(root, "v1")
	if err != nil {
		t.Fatal(err)
	}
	payload := artifact{Name: "x", Values: make([]int, 64)}
	var size int64
	for i, key := range []string{"old", "mid", "new"} {
		if err := s.Put("point", key, payload); err != nil {
			t.Fatal(err)
		}
		age(t, root, time.Duration(3-i)*time.Hour)
		if size == 0 {
			st, err := s.GC(1 << 40) // measure one artifact's size
			if err != nil {
				t.Fatal(err)
			}
			size = st.ScannedBytes
		}
	}
	st, err := s.GC(2 * size)
	if err != nil {
		t.Fatal(err)
	}
	if st.ScannedFiles != 3 || st.RemovedFiles != 1 || st.RemainingBytes > 2*size {
		t.Fatalf("GC stat: %+v (artifact size %d)", st, size)
	}
	var got artifact
	if ok, _ := s.Get("point", "old", &got); ok {
		t.Fatal("oldest artifact survived GC")
	}
	for _, key := range []string{"mid", "new"} {
		if ok, err := s.Get("point", key, &got); err != nil || !ok {
			t.Fatalf("recent artifact %q evicted: ok=%v err=%v", key, ok, err)
		}
	}
}

// TestGCZeroBudgetEmpties: GC(0) clears the cache entirely; a negative
// budget is rejected.
func TestGCZeroBudgetEmpties(t *testing.T) {
	s, err := cache.Open(t.TempDir(), "v1")
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"a", "b"} {
		if err := s.Put("point", key, artifact{Name: key}); err != nil {
			t.Fatal(err)
		}
	}
	st, err := s.GC(0)
	if err != nil {
		t.Fatal(err)
	}
	if st.RemovedFiles != 2 || st.RemainingBytes != 0 {
		t.Fatalf("GC(0) stat: %+v", st)
	}
	if _, err := s.GC(-1); err == nil {
		t.Fatal("negative budget accepted")
	}
}

// TestGCReclaimsRetiredSchemas: artifacts stranded under an old schema
// version share the base directory, so a GC through the current store
// must see and reclaim them — that is where version bumps leave garbage.
func TestGCReclaimsRetiredSchemas(t *testing.T) {
	root := t.TempDir()
	old, err := cache.Open(root, "v1")
	if err != nil {
		t.Fatal(err)
	}
	if err := old.Put("point", "stale", artifact{Name: "stale"}); err != nil {
		t.Fatal(err)
	}
	age(t, root, time.Hour)
	cur, err := cache.Open(root, "v2")
	if err != nil {
		t.Fatal(err)
	}
	if err := cur.Put("point", "live", artifact{Name: "live"}); err != nil {
		t.Fatal(err)
	}
	probe, err := cur.GC(1 << 40)
	if err != nil {
		t.Fatal(err)
	}
	if probe.ScannedFiles != 2 {
		t.Fatalf("GC scanned %d files across schemas, want 2", probe.ScannedFiles)
	}
	st, err := cur.GC(probe.ScannedBytes / 2)
	if err != nil {
		t.Fatal(err)
	}
	if st.RemovedFiles != 1 {
		t.Fatalf("GC stat: %+v", st)
	}
	var got artifact
	if ok, _ := old.Get("point", "stale", &got); ok {
		t.Fatal("retired-schema artifact survived")
	}
	if ok, err := cur.Get("point", "live", &got); err != nil || !ok {
		t.Fatalf("live artifact evicted: ok=%v err=%v", ok, err)
	}
}

// TestGetRefreshesRecency: a Get must bump the artifact's timestamp so
// hot artifacts survive GC even when they were written first.
func TestGetRefreshesRecency(t *testing.T) {
	root := t.TempDir()
	s, err := cache.Open(root, "v1")
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put("point", "hot", artifact{Name: "hot"}); err != nil {
		t.Fatal(err)
	}
	age(t, root, 2*time.Hour)
	if err := s.Put("point", "cold", artifact{Name: "cold"}); err != nil {
		t.Fatal(err)
	}
	age(t, root, time.Hour)
	// "hot" is older on disk, but a read refreshes it past "cold".
	var got artifact
	if ok, err := s.Get("point", "hot", &got); err != nil || !ok {
		t.Fatal("hot artifact missing before GC")
	}
	probe, err := s.GC(1 << 40)
	if err != nil {
		t.Fatal(err)
	}
	st, err := s.GC(probe.ScannedBytes / 2)
	if err != nil {
		t.Fatal(err)
	}
	if st.RemovedFiles != 1 {
		t.Fatalf("GC stat: %+v", st)
	}
	if ok, _ := s.Get("point", "cold", &got); ok {
		t.Fatal("cold artifact survived over the recently read one")
	}
	if ok, err := s.Get("point", "hot", &got); err != nil || !ok {
		t.Fatal("recently read artifact evicted")
	}
}

// TestConcurrentPutGet races writers and readers on a small key set; the
// atomic-rename protocol must never expose a torn or empty artifact.
func TestConcurrentPutGet(t *testing.T) {
	s, err := cache.Open(t.TempDir(), "v1")
	if err != nil {
		t.Fatal(err)
	}
	keys := []string{"k0", "k1", "k2", "k3"}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				k := keys[(w+i)%len(keys)]
				want := artifact{Name: k, Values: []int{1, 2, 3}}
				if err := s.Put("point", k, want); err != nil {
					t.Error(err)
					return
				}
				var got artifact
				ok, err := s.Get("point", k, &got)
				if err != nil {
					t.Error(err)
					return
				}
				if ok && got.Name != k {
					t.Errorf("key %s served %+v", k, got)
					return
				}
			}
		}(w)
	}
	wg.Wait()
}

// TestGCConcurrentWithReadersAndWriter overlaps eviction with readers
// (whose Gets refresh mtimes) and a concurrent writer minting new keys:
// the store's invariants under GC are (1) a read never observes a torn
// or aliased artifact — it either hits with the exact payload written
// under that key or misses cleanly — and (2) once the dust settles,
// eviction order followed access recency, so the survivors are the
// most-recently-used keys. Run under -race.
func TestGCConcurrentWithReadersAndWriter(t *testing.T) {
	root := t.TempDir()
	s, err := cache.Open(root, "v1")
	if err != nil {
		t.Fatal(err)
	}
	const seeded = 16
	payload := func(k string) artifact {
		return artifact{Name: k, Values: []int{7, 8, 9}, Score: 0.5}
	}
	seedKey := func(i int) string { return fmt.Sprintf("seed-%02d", i) }
	for i := 0; i < seeded; i++ {
		if err := s.Put("point", seedKey(i), payload(seedKey(i))); err != nil {
			t.Fatal(err)
		}
	}
	probe, err := s.GC(1 << 40)
	if err != nil {
		t.Fatal(err)
	}
	perFile := probe.ScannedBytes / int64(probe.ScannedFiles)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	// Readers: Get must never error (a torn file would decode-fail) and
	// a hit must carry exactly the payload written under the key.
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				k := seedKey((r*5 + i) % seeded)
				var got artifact
				ok, err := s.Get("point", k, &got)
				if err != nil {
					t.Errorf("reader: Get(%s) during GC: %v", k, err)
					return
				}
				if ok && got.Name != k {
					t.Errorf("reader: Get(%s) served aliased payload %+v", k, got)
					return
				}
			}
		}(r)
	}
	// Writer: keeps minting fresh keys while GC evicts.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			k := fmt.Sprintf("fresh-%04d", i)
			if err := s.Put("point", k, payload(k)); err != nil {
				t.Errorf("writer: Put(%s) during GC: %v", k, err)
				return
			}
		}
	}()
	// GC: repeatedly squeeze the directory to roughly half the seeds.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if _, err := s.GC(perFile * seeded / 2); err != nil {
				t.Errorf("concurrent GC: %v", err)
				return
			}
		}
	}()
	time.Sleep(300 * time.Millisecond)
	close(stop)
	wg.Wait()

	// Quiesced MRU check: rebuild a known key set, age everything, touch
	// a subset via Get, then squeeze to a budget that only fits the
	// touched keys — they, and only they, must survive.
	const total, keep = 10, 3
	key := func(i int) string { return fmt.Sprintf("mru-%02d", i) }
	if _, err := s.GC(0); err != nil { // start clean
		t.Fatal(err)
	}
	for i := 0; i < total; i++ {
		if err := s.Put("point", key(i), payload(key(i))); err != nil {
			t.Fatal(err)
		}
	}
	age(t, root, time.Hour)
	for i := total - keep; i < total; i++ {
		var got artifact
		if ok, err := s.Get("point", key(i), &got); err != nil || !ok {
			t.Fatalf("touch %s: ok=%t err=%v", key(i), ok, err)
		}
	}
	if _, err := s.GC(perFile*keep + perFile/2); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < total; i++ {
		var got artifact
		ok, err := s.Get("point", key(i), &got)
		if err != nil {
			t.Fatal(err)
		}
		if wantSurvive := i >= total-keep; ok != wantSurvive {
			t.Errorf("key %s: survived=%t, want %t (survivors must be the most-recently-used)",
				key(i), ok, wantSurvive)
		}
	}
}

// TestGCPerKindCounters: the GC report attributes scanned and evicted
// bytes to the artifact kind each file lives under, and the per-kind
// rows sum exactly to the aggregate counters.
func TestGCPerKindCounters(t *testing.T) {
	root := t.TempDir()
	s, err := cache.Open(root, "v1")
	if err != nil {
		t.Fatal(err)
	}
	payload := artifact{Name: "x", Values: make([]int, 64)}
	kinds := []string{"frontend", "midend", "backend", "point"}
	for i, kind := range kinds {
		for j := 0; j <= i; j++ { // 1 frontend, 2 midend, 3 backend, 4 point
			if err := s.Put(kind, fmt.Sprintf("k%d", j), payload); err != nil {
				t.Fatal(err)
			}
		}
	}
	st, err := s.GC(0) // empty the cache: everything is both scanned and removed
	if err != nil {
		t.Fatal(err)
	}
	if st.ScannedFiles != 10 || st.RemovedFiles != 10 {
		t.Fatalf("GC stat: %+v", st)
	}
	if len(st.Kinds) != len(kinds) {
		t.Fatalf("per-kind rows: %+v", st.Kinds)
	}
	var names []string
	var scannedFiles, removedFiles int
	var scannedBytes, removedBytes int64
	for _, k := range st.Kinds {
		names = append(names, k.Kind)
		scannedFiles += k.ScannedFiles
		removedFiles += k.RemovedFiles
		scannedBytes += k.ScannedBytes
		removedBytes += k.RemovedBytes
		if k.ScannedFiles != k.RemovedFiles || k.ScannedBytes != k.RemovedBytes {
			t.Errorf("kind %s: scanned %d/%d, removed %d/%d — GC(0) must evict everything",
				k.Kind, k.ScannedFiles, k.ScannedBytes, k.RemovedFiles, k.RemovedBytes)
		}
	}
	if !sort.StringsAreSorted(names) {
		t.Errorf("per-kind rows not sorted: %v", names)
	}
	if scannedFiles != st.ScannedFiles || removedFiles != st.RemovedFiles ||
		scannedBytes != st.ScannedBytes || removedBytes != st.RemovedBytes {
		t.Errorf("per-kind rows do not sum to the aggregate: %+v", st)
	}
	byKind := map[string]cache.KindGC{}
	for _, k := range st.Kinds {
		byKind[k.Kind] = k
	}
	for i, kind := range kinds {
		if got := byKind[kind].ScannedFiles; got != i+1 {
			t.Errorf("kind %s: scanned %d files, want %d", kind, got, i+1)
		}
	}
}

// TestGCPartialEvictionPerKind: a budget that spares the newest files
// attributes the evictions to the kinds that actually lost artifacts.
func TestGCPartialEvictionPerKind(t *testing.T) {
	root := t.TempDir()
	s, err := cache.Open(root, "v1")
	if err != nil {
		t.Fatal(err)
	}
	payload := artifact{Name: "x", Values: make([]int, 64)}
	if err := s.Put("midend", "old", payload); err != nil {
		t.Fatal(err)
	}
	age(t, root, time.Hour)
	if err := s.Put("backend", "new", payload); err != nil {
		t.Fatal(err)
	}
	probe, err := s.GC(1 << 40)
	if err != nil {
		t.Fatal(err)
	}
	st, err := s.GC(probe.ScannedBytes * 3 / 4) // room for one of the two
	if err != nil {
		t.Fatal(err)
	}
	if st.RemovedFiles != 1 {
		t.Fatalf("GC stat: %+v", st)
	}
	for _, k := range st.Kinds {
		switch k.Kind {
		case "midend":
			if k.RemovedFiles != 1 {
				t.Errorf("oldest (midend) artifact survived: %+v", k)
			}
		case "backend":
			if k.RemovedFiles != 0 {
				t.Errorf("newest (backend) artifact evicted: %+v", k)
			}
		}
	}
}
