package core_test

import (
	"testing"

	"sparkgo/internal/core"
	"sparkgo/internal/htg"
	"sparkgo/internal/ild"
	"sparkgo/internal/ir"
	"sparkgo/internal/rtl"
	"sparkgo/internal/sched"
)

// Codec benchmarks over the artifacts of one real staged-flow run, wire
// versus the retired gob baseline. Run with -benchmem: the wire codecs
// are the artifact hot path (every disk hit and miss crosses them), and
// the allocation counts are as load-bearing as the ns. The fingerprint
// benchmarks measure the verification side: revival integrity is one
// hash pass over the stored bytes, so Fingerprint-vs-Decode is the
// ratio the streaming-hash design banks on.
//
//	go test ./internal/core -bench 'Wire|Gob|Fingerprint' -benchmem

// benchKind is one artifact layer with both codecs and an encoding to
// decode/hash.
type benchKind struct {
	name       string
	wireEnc    func() ([]byte, error)
	wireDec    func([]byte) error
	gobEnc     func() ([]byte, error)
	gobDec     func([]byte) error
	enc        []byte // wire encoding, for decode + fingerprint
	gobEncoded []byte
}

func benchKinds(b *testing.B) []benchKind {
	b.Helper()
	prog := ild.Program(16)
	opt := core.Options{Preset: core.MicroprocessorBlock}
	fa, err := core.Frontend(prog, opt.FrontendOptions())
	if err != nil {
		b.Fatal(err)
	}
	ma, err := core.Midend(fa, opt.MidendOptions())
	if err != nil {
		b.Fatal(err)
	}
	ba, err := core.Backend(ma, opt.BackendOptions())
	if err != nil {
		b.Fatal(err)
	}
	kinds := []benchKind{
		{
			name:    "program",
			wireEnc: func() ([]byte, error) { return ir.EncodeProgram(fa.Program) },
			wireDec: func(d []byte) error { _, err := ir.DecodeProgram(d); return err },
			gobEnc:  func() ([]byte, error) { return ir.EncodeProgramGob(fa.Program) },
			gobDec:  func(d []byte) error { _, err := ir.DecodeProgramGob(d); return err },
		},
		{
			name:    "graph",
			wireEnc: func() ([]byte, error) { return htg.EncodeGraph(ma.Graph) },
			wireDec: func(d []byte) error { _, err := htg.DecodeGraph(d); return err },
			gobEnc:  func() ([]byte, error) { return htg.EncodeGraphGob(ma.Graph) },
			gobDec:  func(d []byte) error { _, err := htg.DecodeGraphGob(d); return err },
		},
		{
			name:    "schedule",
			wireEnc: func() ([]byte, error) { return sched.EncodeResult(ma.Schedule) },
			wireDec: func(d []byte) error { _, err := sched.DecodeResult(d); return err },
			gobEnc:  func() ([]byte, error) { return sched.EncodeResultGob(ma.Schedule) },
			gobDec:  func(d []byte) error { _, err := sched.DecodeResultGob(d); return err },
		},
		{
			name:    "module",
			wireEnc: func() ([]byte, error) { return rtl.EncodeModule(ba.Module) },
			wireDec: func(d []byte) error { _, err := rtl.DecodeModule(d); return err },
			gobEnc:  func() ([]byte, error) { return rtl.EncodeModuleGob(ba.Module) },
			gobDec:  func(d []byte) error { _, err := rtl.DecodeModuleGob(d); return err },
		},
	}
	for i := range kinds {
		k := &kinds[i]
		if k.enc, err = k.wireEnc(); err != nil {
			b.Fatalf("%s: wire encode: %v", k.name, err)
		}
		if k.gobEncoded, err = k.gobEnc(); err != nil {
			b.Fatalf("%s: gob encode: %v", k.name, err)
		}
	}
	return kinds
}

func BenchmarkWireEncode(b *testing.B) {
	for _, k := range benchKinds(b) {
		b.Run(k.name, func(b *testing.B) {
			b.SetBytes(int64(len(k.enc)))
			for i := 0; i < b.N; i++ {
				if _, err := k.wireEnc(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkGobEncode(b *testing.B) {
	for _, k := range benchKinds(b) {
		b.Run(k.name, func(b *testing.B) {
			b.SetBytes(int64(len(k.gobEncoded)))
			for i := 0; i < b.N; i++ {
				if _, err := k.gobEnc(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkWireDecode(b *testing.B) {
	for _, k := range benchKinds(b) {
		b.Run(k.name, func(b *testing.B) {
			b.SetBytes(int64(len(k.enc)))
			for i := 0; i < b.N; i++ {
				if err := k.wireDec(k.enc); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkGobDecode(b *testing.B) {
	for _, k := range benchKinds(b) {
		b.Run(k.name, func(b *testing.B) {
			b.SetBytes(int64(len(k.gobEncoded)))
			for i := 0; i < b.N; i++ {
				if err := k.gobDec(k.gobEncoded); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFingerprint measures revival verification: one SHA-256 pass
// over the wire encoding. Compare against BenchmarkWireDecode on the
// same kind for the verify-vs-decode ratio.
func BenchmarkFingerprint(b *testing.B) {
	for _, k := range benchKinds(b) {
		b.Run(k.name, func(b *testing.B) {
			b.SetBytes(int64(len(k.enc)))
			for i := 0; i < b.N; i++ {
				if fp := ir.FingerprintBytes(k.enc); fp == "" {
					b.Fatal("empty fingerprint")
				}
			}
		})
	}
}
