package core_test

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"sparkgo/internal/core"
	"sparkgo/internal/delay"
	"sparkgo/internal/ild"
	"sparkgo/internal/ir"
	"sparkgo/internal/rtl"
	"sparkgo/internal/testutil"
)

// updateGolden regenerates the artifact-fingerprint golden file:
//
//	go test ./internal/core -run TestArtifactCodecRoundTrip -update
//
// Regenerate ONLY after an intentional codec or stage change — and bump
// the corresponding stage version constant, or every previously
// persisted artifact silently aliases under the new encoding.
var updateGolden = flag.Bool("update", false, "rewrite the artifact fingerprint golden file")

// codecDesign is one synthesis configuration whose artifacts the codec
// tests round-trip: the same designs the differential harness trusts.
type codecDesign struct {
	name string
	prog *ir.Program
	opt  core.Options
	ildN int // >0: run the differential harness on the revived module
}

func codecDesigns() []codecDesign {
	var out []codecDesign
	for _, n := range []int{4, 8, 16, 32} {
		out = append(out, codecDesign{
			name: fmt.Sprintf("ild%d-micro", n),
			prog: ild.Program(n),
			opt:  core.Options{Preset: core.MicroprocessorBlock},
			ildN: n,
		})
	}
	out = append(out, codecDesign{
		name: "ild8-classical",
		prog: ild.Program(8),
		opt:  core.Options{Preset: core.ClassicalASIC},
		ildN: 8,
	})
	out = append(out, codecDesign{
		name: "ild8-natural",
		prog: ild.NaturalProgram(8),
		opt:  core.Options{Preset: core.MicroprocessorBlock, NormalizeWhile: true},
		ildN: 8,
	})
	return out
}

// stages runs the staged flow on a design, materializing every
// artifact.
func stages(t *testing.T, d codecDesign) (*core.FrontendArtifact, *core.MidendArtifact, []byte, *core.BackendArtifact, []byte) {
	t.Helper()
	fa, err := core.Frontend(d.prog, d.opt.FrontendOptions())
	if err != nil {
		t.Fatalf("%s: frontend: %v", d.name, err)
	}
	fa.Materialize()
	ma, err := core.Midend(fa, d.opt.MidendOptions())
	if err != nil {
		t.Fatalf("%s: midend: %v", d.name, err)
	}
	maEnc := ma.Materialize()
	if maEnc == nil {
		t.Fatalf("%s: midend artifact did not encode", d.name)
	}
	ba, err := core.Backend(ma, d.opt.BackendOptions())
	if err != nil {
		t.Fatalf("%s: backend: %v", d.name, err)
	}
	baEnc := ba.Materialize()
	if baEnc == nil {
		t.Fatalf("%s: backend artifact did not encode", d.name)
	}
	return fa, ma, maEnc, ba, baEnc
}

// TestArtifactCodecRoundTrip is the codec contract over every
// differential-harness design: encode → decode → encode must be
// byte-identical for midend and backend artifacts (the property
// fingerprint verification of revived artifacts rests on), the revived
// netlist must emit byte-identical HDL, behave identically under the
// interp≡rtlsim differential harness, and report the same technology
// numbers. Fingerprints are additionally pinned by a golden file so an
// accidental codec change fails loudly instead of silently retiring (or
// worse, aliasing) every persisted artifact — regenerate with -update
// and bump the stage versions when the change is intentional.
func TestArtifactCodecRoundTrip(t *testing.T) {
	var goldenLines []string
	for _, d := range codecDesigns() {
		d := d
		t.Run(d.name, func(t *testing.T) {
			fa, ma, maEnc, ba, baEnc := stages(t, d)

			// Midend: byte-stable round trip.
			ma2, err := core.DecodeMidendArtifact(maEnc)
			if err != nil {
				t.Fatalf("decode midend: %v", err)
			}
			maEnc2 := ma2.Materialize()
			if !bytes.Equal(maEnc, maEnc2) {
				t.Fatalf("midend encoding is not a round-trip fixpoint (%d vs %d bytes)",
					len(maEnc), len(maEnc2))
			}
			if ma2.Fingerprint != ma.Fingerprint {
				t.Fatalf("midend fingerprint drifted: %s vs %s", ma2.Fingerprint, ma.Fingerprint)
			}
			if ma2.Cycles != ma.Cycles {
				t.Fatalf("revived schedule: %d cycles, want %d", ma2.Cycles, ma.Cycles)
			}

			// The revived schedule must drive the backend to the same
			// design as the original.
			ba2, err := core.Backend(ma2, d.opt.BackendOptions())
			if err != nil {
				t.Fatalf("backend over revived midend: %v", err)
			}
			if rtl.EmitVHDL(ba2.Module) != rtl.EmitVHDL(ba.Module) {
				t.Error("backend over revived midend emits different VHDL")
			}

			// Backend: byte-stable round trip.
			ba3, err := core.DecodeBackendArtifact(baEnc)
			if err != nil {
				t.Fatalf("decode backend: %v", err)
			}
			baEnc2 := ba3.Materialize()
			if !bytes.Equal(baEnc, baEnc2) {
				t.Fatalf("backend encoding is not a round-trip fixpoint (%d vs %d bytes)",
					len(baEnc), len(baEnc2))
			}
			if ba3.Stats != ba.Stats {
				t.Fatalf("revived report drifted: %+v vs %+v", ba3.Stats, ba.Stats)
			}
			if got, want := rtl.EmitVHDL(ba3.Module), rtl.EmitVHDL(ba.Module); got != want {
				t.Error("revived module emits different VHDL")
			}
			if got, want := rtl.EmitVerilog(ba3.Module), rtl.EmitVerilog(ba.Module); got != want {
				t.Error("revived module emits different Verilog")
			}

			// The revived netlist must BEHAVE like the original: the
			// differential harness decodes ILD buffers through interp and
			// the revived rtlsim module.
			if d.ildN > 0 {
				if err := testutil.DifferentialILD(d.prog, ba3.Module, d.ildN, 10, int64(900+d.ildN)); err != nil {
					t.Errorf("revived module failed the differential harness: %v", err)
				}
			}

			goldenLines = append(goldenLines, fmt.Sprintf("%s frontend=%s midend=%s backend=%s",
				d.name, fa.Fingerprint, ma.Fingerprint, ba.Fingerprint))
		})
	}
	if t.Failed() {
		return
	}

	golden := filepath.Join("testdata", "artifact_fingerprints.golden")
	got := strings.Join(goldenLines, "\n") + "\n"
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("missing golden file (run with -update): %v", err)
	}
	if got != string(want) {
		t.Errorf("artifact fingerprints drifted from %s —\n"+
			"an (intentional?) codec or stage change: regenerate with -update AND bump the\n"+
			"affected stage version constants in internal/core/stages.go\ngot:\n%s\nwant:\n%s",
			golden, got, string(want))
	}
}

// TestBackendKeyUsesContentFingerprint pins the backend sharing rule:
// the key derives from the midend artifact's content fingerprint, so it
// exists exactly when the artifact is materialized, and differs across
// report models.
func TestBackendKeyUsesContentFingerprint(t *testing.T) {
	d := codecDesigns()[0]
	fa, err := core.Frontend(d.prog, d.opt.FrontendOptions())
	if err != nil {
		t.Fatal(err)
	}
	fa.Materialize()
	ma, err := core.Midend(fa, d.opt.MidendOptions())
	if err != nil {
		t.Fatal(err)
	}
	if key := core.BackendKey(ma, d.opt.BackendOptions()); key != "" {
		t.Errorf("unmaterialized midend artifact produced backend key %q, want none", key)
	}
	ma.Materialize()
	base := core.BackendKey(ma, d.opt.BackendOptions())
	if base == "" {
		t.Fatal("materialized midend artifact produced no backend key")
	}
	scaled := d.opt
	scaled.ReportModel = &delay.Model{NandDelay: 2}
	if k := core.BackendKey(ma, scaled.BackendOptions()); k == base {
		t.Error("report-model change did not change the backend key")
	}
}
