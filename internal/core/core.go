// Package core is the sparkgo synthesizer: the coordinated application of
// source-level parallelizing transformations, chaining-aware scheduling,
// binding, and RTL generation that the Spark paper presents as its
// contribution. One call to Synthesize runs the full methodology of §6:
//
//	behavioral C  →  inline (Fig 12)  →  speculate (Fig 11)
//	              →  unroll fully (Fig 13)  →  propagate constants (Fig 14)
//	              →  clean (copy-prop, CSE, DCE)
//	              →  schedule with chaining across conditionals (§3.1)
//	              →  datapath + FSM netlist (Fig 15b)  →  VHDL / Verilog
//
// Presets select between the paper's microprocessor-block regime
// (unlimited resources, full parallelization, single-cycle goal) and the
// classical-HLS baseline it contrasts against (resource-constrained,
// no code motion, sequential FSM). Individual transformations can be
// disabled for the ablation experiments of DESIGN.md (A1–A4).
package core

import (
	"fmt"

	"sparkgo/internal/delay"
	"sparkgo/internal/dfa"
	"sparkgo/internal/htg"
	"sparkgo/internal/ir"
	"sparkgo/internal/rtl"
	"sparkgo/internal/sched"
	"sparkgo/internal/transform"
)

// Preset selects a synthesis regime.
type Preset int

const (
	// MicroprocessorBlock is the paper's regime: unlimited resources,
	// every coordinated transformation, chaining across conditionals,
	// no clock bound (the achieved critical path is reported).
	MicroprocessorBlock Preset = iota
	// ClassicalASIC is the baseline: a small fixed resource allocation,
	// no parallelizing code motions, sequential FSM scheduling.
	ClassicalASIC
)

func (p Preset) String() string {
	if p == MicroprocessorBlock {
		return "microprocessor-block"
	}
	return "classical-asic"
}

// Options configures a synthesis run. The zero value is the
// MicroprocessorBlock preset with the default delay model.
type Options struct {
	Preset    Preset
	Model     *delay.Model
	Resources *sched.Resources // nil: preset default
	MaxUnroll int              // 0: transform.DefaultMaxUnroll

	// Ablation switches (DESIGN.md experiments A1-A4).
	NoSpeculation bool
	NoUnroll      bool
	NoConstProp   bool
	NoChaining    bool
	NoCSE         bool
	// NormalizeWhile enables the Fig 16 while→for source transformation
	// before everything else.
	NormalizeWhile bool

	// CustomPasses, when non-empty, replaces the preset's transformation
	// pipeline entirely (synthesis scripts, §4 of the paper).
	CustomPasses []transform.Pass
	// CustomRounds bounds fixed-point iteration of the custom pipeline
	// (0 = the default of 6).
	CustomRounds int
}

// StageMetrics snapshots program shape after one transformation stage —
// the per-figure numbers EXPERIMENTS.md reports.
type StageMetrics struct {
	Pass    string
	Changed bool
	Stmts   int
	Ops     int
	Ifs     int
	Loops   int
	Calls   int
	Funcs   int
}

// Result is a completed synthesis.
type Result struct {
	Input    *ir.Program // untouched original
	Program  *ir.Program // transformed program
	Graph    *htg.Graph
	Schedule *sched.Result
	Module   *rtl.Module
	Stages   []StageMetrics
	Stats    delay.Report
	Cycles   int // FSM states (lower bound on latency; loops add trips)
	Preset   Preset
}

// Synthesize runs the full flow on a behavioral program.
func Synthesize(input *ir.Program, opt Options) (*Result, error) {
	if opt.Model == nil {
		opt.Model = delay.Default()
	}
	work := ir.CloneProgram(input)
	res := &Result{Input: input, Program: work, Preset: opt.Preset}

	observer := func(pass string, changed bool, p *ir.Program) {
		m := p.Main()
		if m == nil {
			return
		}
		res.Stages = append(res.Stages, StageMetrics{
			Pass: pass, Changed: changed,
			Stmts: ir.CountStmts(m), Ops: ir.CountOps(m),
			Ifs: ir.CountIfs(m), Loops: ir.CountLoops(m),
			Calls: ir.CountCalls(m), Funcs: len(p.Funcs),
		})
	}

	rounds := 6
	if opt.CustomRounds > 0 {
		rounds = opt.CustomRounds
	}
	pl := &transform.Pipeline{Passes: buildPasses(opt), MaxRounds: rounds, Observer: observer}
	if err := pl.Run(work); err != nil {
		return nil, fmt.Errorf("core: transform: %w", err)
	}
	if err := ir.Validate(work); err != nil {
		return nil, fmt.Errorf("core: transformed program invalid: %w", err)
	}
	main := work.Main()
	if main == nil {
		return nil, fmt.Errorf("core: program has no main function")
	}
	if ir.CountCalls(main) > 0 {
		return nil, fmt.Errorf("core: calls survive transformation (recursive or non-inlinable)")
	}

	g, err := htg.Lower(work, main)
	if err != nil {
		return nil, fmt.Errorf("core: lower: %w", err)
	}
	res.Graph = g

	cfg := schedConfig(opt, g)
	s, err := sched.Schedule(g, cfg)
	if err != nil {
		return nil, fmt.Errorf("core: schedule: %w", err)
	}
	res.Schedule = s
	res.Cycles = s.NumStates

	m, err := rtl.Build(s)
	if err != nil {
		return nil, fmt.Errorf("core: rtl: %w", err)
	}
	res.Module = m
	res.Stats = m.Stats(opt.Model)
	return res, nil
}

func buildPasses(opt Options) []transform.Pass {
	if len(opt.CustomPasses) > 0 {
		return opt.CustomPasses
	}
	var passes []transform.Pass
	if opt.NormalizeWhile {
		passes = append(passes, transform.NormalizeWhile())
	}
	passes = append(passes,
		transform.Inline(nil),
		transform.DropUncalledFuncs(),
	)
	if opt.Preset == MicroprocessorBlock {
		if !opt.NoSpeculation {
			passes = append(passes, transform.Speculate())
		}
		if !opt.NoUnroll {
			passes = append(passes, transform.UnrollFull(nil, opt.MaxUnroll))
		}
	}
	if !opt.NoConstProp {
		passes = append(passes, transform.ConstProp())
	}
	passes = append(passes, transform.ConstFold(), transform.CopyProp())
	if !opt.NoCSE && opt.Preset == MicroprocessorBlock {
		passes = append(passes, transform.CSE())
	}
	passes = append(passes, transform.DCE())
	return passes
}

func schedConfig(opt Options, g *htg.Graph) sched.Config {
	cfg := sched.Config{Model: opt.Model, DepOpts: dfa.DefaultOptions(),
		DisableChaining: opt.NoChaining}
	switch opt.Preset {
	case MicroprocessorBlock:
		cfg.Mode = sched.ModeChain
		cfg.Resources = sched.Unlimited()
		// A design that kept loops (NoUnroll ablation or unbounded
		// loops) cannot flatten: fall back to sequential control.
		if g.HasLoops() {
			cfg.Mode = sched.ModeSequential
		}
	case ClassicalASIC:
		cfg.Mode = sched.ModeSequential
		cfg.Resources = sched.Classical()
	}
	if opt.Resources != nil {
		cfg.Resources = *opt.Resources
	}
	return cfg
}
