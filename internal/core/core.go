// Package core is the sparkgo synthesizer: the coordinated application of
// source-level parallelizing transformations, chaining-aware scheduling,
// binding, and RTL generation that the Spark paper presents as its
// contribution. One call to Synthesize runs the full methodology of §6:
//
//	behavioral C  →  inline (Fig 12)  →  speculate (Fig 11)
//	              →  unroll fully (Fig 13)  →  propagate constants (Fig 14)
//	              →  clean (copy-prop, CSE, DCE)
//	              →  schedule with chaining across conditionals (§3.1)
//	              →  datapath + FSM netlist (Fig 15b)  →  VHDL / Verilog
//
// Presets select between the paper's microprocessor-block regime
// (unlimited resources, full parallelization, single-cycle goal) and the
// classical-HLS baseline it contrasts against (resource-constrained,
// no code motion, sequential FSM). Individual transformations can be
// disabled for the ablation experiments of DESIGN.md (A1–A4).
package core

import (
	"fmt"

	"sparkgo/internal/delay"
	"sparkgo/internal/dfa"
	"sparkgo/internal/htg"
	"sparkgo/internal/ir"
	"sparkgo/internal/pass"
	"sparkgo/internal/rtl"
	"sparkgo/internal/sched"
	"sparkgo/internal/transform"
)

// Preset selects a synthesis regime.
type Preset int

const (
	// MicroprocessorBlock is the paper's regime: unlimited resources,
	// every coordinated transformation, chaining across conditionals,
	// no clock bound (the achieved critical path is reported).
	MicroprocessorBlock Preset = iota
	// ClassicalASIC is the baseline: a small fixed resource allocation,
	// no parallelizing code motions, sequential FSM scheduling.
	ClassicalASIC
)

func (p Preset) String() string {
	if p == MicroprocessorBlock {
		return "microprocessor-block"
	}
	return "classical-asic"
}

// Options configures a synthesis run. The zero value is the
// MicroprocessorBlock preset with the default delay model.
type Options struct {
	Preset    Preset
	Model     *delay.Model
	Resources *sched.Resources // nil: preset default
	MaxUnroll int              // 0: transform.DefaultMaxUnroll

	// Ablation switches (DESIGN.md experiments A1-A4).
	NoSpeculation bool
	NoUnroll      bool
	NoConstProp   bool
	NoChaining    bool
	NoCSE         bool
	// NormalizeWhile enables the Fig 16 while→for source transformation
	// before everything else.
	NormalizeWhile bool

	// Passes, when non-empty, replaces the preset pipeline with an
	// explicit ordered pass list in internal/pass spec syntax (e.g.
	// "inline", "speculate", "unroll all full"). This is the knob the
	// exploration engine sweeps; the ablation switches above are
	// shorthands that resolve to a pass list via PassSpecs.
	Passes []string
	// CustomPasses, when non-empty, replaces the preset's transformation
	// pipeline entirely with pre-built passes (synthesis scripts, §4 of
	// the paper). Takes precedence over Passes.
	CustomPasses []transform.Pass
	// CustomRounds bounds fixed-point iteration of the pipeline
	// (0 = pass.DefaultMaxRounds).
	CustomRounds int
}

// Toggles converts the ablation switches to a pass-plan toggle set.
func (o Options) Toggles() pass.Toggles {
	return pass.Toggles{
		NoSpeculation:  o.NoSpeculation,
		NoUnroll:       o.NoUnroll,
		NoConstProp:    o.NoConstProp,
		NoCSE:          o.NoCSE,
		NormalizeWhile: o.NormalizeWhile,
		MaxUnroll:      o.MaxUnroll,
	}
}

// PassSpecs returns the ordered pass list this Options resolves to: the
// explicit Passes when set, otherwise the preset plan under the ablation
// toggles. Nil when CustomPasses overrides spec resolution entirely.
func (o Options) PassSpecs() []string {
	if len(o.CustomPasses) > 0 {
		return nil
	}
	if len(o.Passes) > 0 {
		return o.Passes
	}
	if o.Preset == MicroprocessorBlock {
		return pass.MicroprocessorPlan(o.Toggles())
	}
	return pass.ClassicalPlan(o.Toggles())
}

// StageMetrics snapshots program shape after one transformation stage —
// the per-figure numbers EXPERIMENTS.md reports.
type StageMetrics struct {
	Pass    string
	Changed bool
	Stmts   int
	Ops     int
	Ifs     int
	Loops   int
	Calls   int
	Funcs   int
}

// Result is a completed synthesis.
type Result struct {
	Input     *ir.Program // untouched original
	Program   *ir.Program // transformed program
	Graph     *htg.Graph
	Schedule  *sched.Result
	Module    *rtl.Module
	Stages    []StageMetrics
	PassStats []pass.Stat // per-pass runs/changes/wall time
	Rounds    int         // pipeline rounds executed to reach fixpoint
	Stats     delay.Report
	Cycles    int // FSM states (lower bound on latency; loops add trips)
	Preset    Preset
}

// Synthesize runs the full flow on a behavioral program.
func Synthesize(input *ir.Program, opt Options) (*Result, error) {
	if opt.Model == nil {
		opt.Model = delay.Default()
	}
	work := ir.CloneProgram(input)
	res := &Result{Input: input, Program: work, Preset: opt.Preset}

	observer := func(pass string, changed bool, p *ir.Program) {
		m := p.Main()
		if m == nil {
			return
		}
		res.Stages = append(res.Stages, StageMetrics{
			Pass: pass, Changed: changed,
			Stmts: ir.CountStmts(m), Ops: ir.CountOps(m),
			Ifs: ir.CountIfs(m), Loops: ir.CountLoops(m),
			Calls: ir.CountCalls(m), Funcs: len(p.Funcs),
		})
	}

	passes, err := buildPasses(opt)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	pl := &pass.Pipeline{Passes: passes, MaxRounds: opt.CustomRounds, Observer: observer}
	if err := pl.Run(work); err != nil {
		return nil, fmt.Errorf("core: transform: %w", err)
	}
	res.PassStats = pl.Stats()
	res.Rounds = pl.Rounds()
	if err := ir.Validate(work); err != nil {
		return nil, fmt.Errorf("core: transformed program invalid: %w", err)
	}
	main := work.Main()
	if main == nil {
		return nil, fmt.Errorf("core: program has no main function")
	}
	if ir.CountCalls(main) > 0 {
		return nil, fmt.Errorf("core: calls survive transformation (recursive or non-inlinable)")
	}

	g, err := htg.Lower(work, main)
	if err != nil {
		return nil, fmt.Errorf("core: lower: %w", err)
	}
	res.Graph = g

	cfg := schedConfig(opt, g)
	s, err := sched.Schedule(g, cfg)
	if err != nil {
		return nil, fmt.Errorf("core: schedule: %w", err)
	}
	res.Schedule = s
	res.Cycles = s.NumStates

	m, err := rtl.Build(s)
	if err != nil {
		return nil, fmt.Errorf("core: rtl: %w", err)
	}
	res.Module = m
	res.Stats = m.Stats(opt.Model)
	return res, nil
}

func buildPasses(opt Options) ([]transform.Pass, error) {
	if len(opt.CustomPasses) > 0 {
		return opt.CustomPasses, nil
	}
	return pass.BuildAll(opt.PassSpecs())
}

func schedConfig(opt Options, g *htg.Graph) sched.Config {
	cfg := sched.Config{Model: opt.Model, DepOpts: dfa.DefaultOptions(),
		DisableChaining: opt.NoChaining}
	switch opt.Preset {
	case MicroprocessorBlock:
		cfg.Mode = sched.ModeChain
		cfg.Resources = sched.Unlimited()
		// A design that kept loops (NoUnroll ablation or unbounded
		// loops) cannot flatten: fall back to sequential control.
		if g.HasLoops() {
			cfg.Mode = sched.ModeSequential
		}
	case ClassicalASIC:
		cfg.Mode = sched.ModeSequential
		cfg.Resources = sched.Classical()
	}
	if opt.Resources != nil {
		cfg.Resources = *opt.Resources
	}
	return cfg
}
