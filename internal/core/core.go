// Package core is the sparkgo synthesizer: the coordinated application of
// source-level parallelizing transformations, chaining-aware scheduling,
// binding, and RTL generation that the Spark paper presents as its
// contribution (§6).
//
// Synthesis is an explicitly staged flow. Each stage consumes a
// content-hashed artifact plus only the option fields it actually reads,
// and returns a hashable artifact of its own:
//
//	Frontend  behavioral C → pass pipeline to fixpoint → FrontendArtifact
//	          (transformed IR + canonical source + fingerprint)
//	          reads: pass list, fixpoint bound
//	Midend    FrontendArtifact → HTG lowering → scheduling → MidendArtifact
//	          (task graph + FSM schedule)
//	          reads: preset, delay model, resources, chaining switch
//	Backend   MidendArtifact → binding → netlist → BackendArtifact
//	          (RTL module + area/delay report)
//	          reads: delay model
//
// Every artifact carries a stage key — a SHA-256 over the consumed
// artifact's fingerprint, the canonical rendering of the options read,
// and a per-stage version constant (FrontendVersion etc., bumped to
// invalidate cached artifacts when stage semantics change). The
// exploration engine (internal/explore) memoizes on these keys, in
// memory and on disk, so configurations that differ only in back-end
// knobs share one frontend run and sweeps survive process restarts.
//
// Synthesize composes the three stages into the paper's one-call flow:
//
//	behavioral C  →  inline (Fig 12)  →  speculate (Fig 11)
//	              →  unroll fully (Fig 13)  →  propagate constants (Fig 14)
//	              →  clean (copy-prop, CSE, DCE)
//	              →  schedule with chaining across conditionals (§3.1)
//	              →  datapath + FSM netlist (Fig 15b)  →  VHDL / Verilog
//
// Presets select between the paper's microprocessor-block regime
// (unlimited resources, full parallelization, single-cycle goal) and the
// classical-HLS baseline it contrasts against (resource-constrained,
// no code motion, sequential FSM). Individual transformations can be
// disabled for the ablation experiments of DESIGN.md (A1–A4).
package core

import (
	"context"

	"sparkgo/internal/delay"
	"sparkgo/internal/htg"
	"sparkgo/internal/ir"
	"sparkgo/internal/pass"
	"sparkgo/internal/rtl"
	"sparkgo/internal/sched"
	"sparkgo/internal/transform"
)

// Preset selects a synthesis regime.
type Preset int

const (
	// MicroprocessorBlock is the paper's regime: unlimited resources,
	// every coordinated transformation, chaining across conditionals,
	// no clock bound (the achieved critical path is reported).
	MicroprocessorBlock Preset = iota
	// ClassicalASIC is the baseline: a small fixed resource allocation,
	// no parallelizing code motions, sequential FSM scheduling.
	ClassicalASIC
)

func (p Preset) String() string {
	if p == MicroprocessorBlock {
		return "microprocessor-block"
	}
	return "classical-asic"
}

// Options configures a synthesis run. The zero value is the
// MicroprocessorBlock preset with the default delay model.
type Options struct {
	Preset Preset
	Model  *delay.Model
	// ReportModel, when non-nil, is the technology model the backend
	// report stage evaluates under, decoupled from Model (which the
	// scheduler's chaining test reads). nil: Model. Because only the
	// backend reads it, sweeping ReportModel alone revives frontend AND
	// midend artifacts and re-runs just the binding/report stage.
	ReportModel *delay.Model
	Resources   *sched.Resources // nil: preset default
	MaxUnroll   int              // 0: transform.DefaultMaxUnroll

	// Ablation switches (DESIGN.md experiments A1-A4).
	NoSpeculation bool
	NoUnroll      bool
	NoConstProp   bool
	NoChaining    bool
	NoCSE         bool
	// NormalizeWhile enables the Fig 16 while→for source transformation
	// before everything else.
	NormalizeWhile bool

	// Passes, when non-empty, replaces the preset pipeline with an
	// explicit ordered pass list in internal/pass spec syntax (e.g.
	// "inline", "speculate", "unroll all full"). This is the knob the
	// exploration engine sweeps; the ablation switches above are
	// shorthands that resolve to a pass list via PassSpecs.
	Passes []string
	// CustomPasses, when non-empty, replaces the preset's transformation
	// pipeline entirely with pre-built passes (synthesis scripts, §4 of
	// the paper). Takes precedence over Passes.
	CustomPasses []transform.Pass
	// CustomRounds bounds fixed-point iteration of the pipeline
	// (0 = pass.DefaultMaxRounds).
	CustomRounds int
}

// Toggles converts the ablation switches to a pass-plan toggle set.
func (o Options) Toggles() pass.Toggles {
	return pass.Toggles{
		NoSpeculation:  o.NoSpeculation,
		NoUnroll:       o.NoUnroll,
		NoConstProp:    o.NoConstProp,
		NoCSE:          o.NoCSE,
		NormalizeWhile: o.NormalizeWhile,
		MaxUnroll:      o.MaxUnroll,
	}
}

// PassSpecs returns the ordered pass list this Options resolves to: the
// explicit Passes when set, otherwise the preset plan under the ablation
// toggles. Nil when CustomPasses overrides spec resolution entirely.
func (o Options) PassSpecs() []string {
	if len(o.CustomPasses) > 0 {
		return nil
	}
	if len(o.Passes) > 0 {
		return o.Passes
	}
	if o.Preset == MicroprocessorBlock {
		return pass.MicroprocessorPlan(o.Toggles())
	}
	return pass.ClassicalPlan(o.Toggles())
}

// StageMetrics snapshots program shape after one transformation stage —
// the per-figure numbers EXPERIMENTS.md reports.
type StageMetrics struct {
	Pass    string
	Changed bool
	Stmts   int
	Ops     int
	Ifs     int
	Loops   int
	Calls   int
	Funcs   int
}

// Result is a completed synthesis.
type Result struct {
	Input     *ir.Program // untouched original
	Program   *ir.Program // transformed program (the copy the graph references)
	Graph     *htg.Graph
	Schedule  *sched.Result
	Module    *rtl.Module
	Stages    []StageMetrics
	PassStats []pass.Stat // per-pass runs/changes/wall time
	Rounds    int         // pipeline rounds executed to reach fixpoint
	Stats     delay.Report
	Cycles    int // FSM states (lower bound on latency; loops add trips)
	Preset    Preset
}

// Synthesize runs the full flow on a behavioral program: the three
// stages (Frontend, Midend, Backend) composed back-to-back. Callers that
// want artifact reuse across runs — many configurations over one source
// — drive the stages individually (internal/explore does).
func Synthesize(input *ir.Program, opt Options) (*Result, error) {
	return SynthesizeContext(context.Background(), input, opt)
}

// SynthesizeContext is Synthesize under a context: cancellation and
// deadline expiry are observed between stages, so an abandoned synthesis
// stops within one stage of work and returns the context error. This is
// the entry point long-running callers — the exploration engine, the
// service daemon — drive, composed from the same staged flow.
func SynthesizeContext(ctx context.Context, input *ir.Program, opt Options) (*Result, error) {
	fa, err := FrontendContext(ctx, input, opt.FrontendOptions())
	if err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	// The artifact is private to this call, so the midend may consume
	// its program without the defensive clone shared artifacts need.
	ma, err := midend(fa.Program, fa, opt.MidendOptions())
	if err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	ba, err := Backend(ma, opt.BackendOptions())
	if err != nil {
		return nil, err
	}
	return &Result{
		Input:     input,
		Program:   ma.Program,
		Graph:     ma.Graph,
		Schedule:  ma.Schedule,
		Module:    ba.Module,
		Stages:    fa.Stages,
		PassStats: fa.PassStats,
		Rounds:    fa.Rounds,
		Stats:     ba.Stats,
		Cycles:    ma.Cycles,
		Preset:    opt.Preset,
	}, nil
}
