package core_test

import (
	"testing"

	"sparkgo/internal/core"
	"sparkgo/internal/parser"
)

// Integration corpus: every program must synthesize under both presets and
// co-simulate identically to behavioral interpretation.
var corpus = map[string]string{
	"straightline": `
uint8 a;
uint8 b;
uint8 out;
void main() {
  uint8 t;
  t = a + b;
  out = t * 2 - a;
}
`,
	"conditional": `
uint8 a;
uint8 b;
uint8 out;
void main() {
  if (a > b) {
    out = a - b;
  } else {
    out = b - a;
  }
}
`,
	"nested-conditional": `
uint8 a;
uint8 b;
uint8 c;
uint8 out;
void main() {
  uint8 t;
  t = 0;
  if (a > 10) {
    t = a + 1;
    if (b > 20) {
      t = t + b;
    } else {
      t = t - b;
    }
  }
  out = t;
}
`,
	"loop-sum": `
uint8 data[8];
uint16 sum;
void main() {
  uint8 i;
  sum = 0;
  for (i = 0; i < 8; i++) {
    sum += data[i];
  }
}
`,
	"loop-cond-stores": `
uint8 in[6];
uint8 out[6];
void main() {
  uint8 i;
  for (i = 0; i < 6; i++) {
    if (in[i] > 128) {
      out[i] = in[i] - 128;
    } else {
      out[i] = in[i];
    }
  }
}
`,
	"calls-and-select": `
uint8 x;
uint8 y;
uint8 out;
uint8 pick(uint8 a, uint8 b) {
  uint8 r;
  r = b;
  if (a > b) {
    r = a;
  }
  return r;
}
void main() {
  uint8 t;
  t = pick(x, y);
  out = t + 1;
}
`,
	"ripple": `
uint8 b0;
uint8 b1;
uint8 b2;
uint8 b3;
uint8 marks;
void main() {
  uint8 nsb;
  uint8 m;
  m = 0;
  nsb = 0;
  if (nsb == 0) { m = m | 1; nsb = nsb + (b0 & 3) + 1; }
  if (nsb == 1) { m = m | 2; nsb = nsb + (b1 & 3) + 1; }
  if (nsb == 2) { m = m | 4; nsb = nsb + (b2 & 3) + 1; }
  if (nsb == 3) { m = m | 8; nsb = nsb + (b3 & 3) + 1; }
  marks = m;
}
`,
	"dynamic-index": `
uint8 table[8];
uint8 sel;
uint8 out;
void main() {
  out = table[sel & 7] + 1;
}
`,
	"dynamic-store": `
uint8 arr[4];
uint8 sel;
uint8 val;
void main() {
  arr[sel & 3] = val;
}
`,
	"wide-mix": `
uint16 a;
uint16 b;
uint16 out;
void main() {
  uint16 t;
  if ((a & 255) > (b >> 8)) {
    t = (a << 2) ^ b;
  } else {
    t = a * 3;
  }
  out = t + 1;
}
`,
}

func TestMicroprocessorPresetSynthesizesAndVerifies(t *testing.T) {
	for name, src := range corpus {
		name, src := name, src
		t.Run(name, func(t *testing.T) {
			p, err := parser.Parse(name, src)
			if err != nil {
				t.Fatal(err)
			}
			res, err := core.Synthesize(p, core.Options{Preset: core.MicroprocessorBlock})
			if err != nil {
				t.Fatal(err)
			}
			if err := core.Verify(res, 40, 1234); err != nil {
				t.Fatal(err)
			}
			// The regime's defining property: everything packs into a
			// single cycle (no loops survive full unrolling here).
			if res.Cycles != 1 {
				t.Errorf("cycles = %d, want 1 (single-cycle architecture)", res.Cycles)
			}
		})
	}
}

func TestClassicalPresetSynthesizesAndVerifies(t *testing.T) {
	for name, src := range corpus {
		name, src := name, src
		t.Run(name, func(t *testing.T) {
			p, err := parser.Parse(name, src)
			if err != nil {
				t.Fatal(err)
			}
			res, err := core.Synthesize(p, core.Options{Preset: core.ClassicalASIC})
			if err != nil {
				t.Fatal(err)
			}
			if err := core.Verify(res, 40, 99); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestBaselineNeedsMoreCycles(t *testing.T) {
	p := parser.MustParse("loop", corpus["loop-sum"])
	fast, err := core.Synthesize(p, core.Options{Preset: core.MicroprocessorBlock})
	if err != nil {
		t.Fatal(err)
	}
	slow, err := core.Synthesize(p, core.Options{Preset: core.ClassicalASIC})
	if err != nil {
		t.Fatal(err)
	}
	if fast.Cycles != 1 {
		t.Errorf("microprocessor preset: %d cycles, want 1", fast.Cycles)
	}
	if slow.Cycles <= fast.Cycles {
		t.Errorf("baseline states (%d) should exceed the single-cycle design (%d)",
			slow.Cycles, fast.Cycles)
	}
}

func TestAblationsStillCorrect(t *testing.T) {
	variants := map[string]core.Options{
		"no-speculation": {NoSpeculation: true},
		"no-unroll":      {NoUnroll: true},
		"no-constprop":   {NoConstProp: true},
		"no-chaining":    {NoChaining: true},
		"no-cse":         {NoCSE: true},
	}
	for vname, opt := range variants {
		vname, opt := vname, opt
		t.Run(vname, func(t *testing.T) {
			for name, src := range corpus {
				p, err := parser.Parse(name, src)
				if err != nil {
					t.Fatal(err)
				}
				res, err := core.Synthesize(p, opt)
				if err != nil {
					t.Fatalf("%s: %v", name, err)
				}
				if err := core.Verify(res, 20, 7); err != nil {
					t.Fatalf("%s: %v", name, err)
				}
			}
		})
	}
}

func TestStageMetricsRecorded(t *testing.T) {
	p := parser.MustParse("m", corpus["calls-and-select"])
	res, err := core.Synthesize(p, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Stages) == 0 {
		t.Fatal("no stage metrics recorded")
	}
	sawInline := false
	for _, st := range res.Stages {
		if st.Pass == "inline" && st.Changed {
			sawInline = true
		}
	}
	if !sawInline {
		t.Error("inline stage not recorded as changing the program")
	}
	final := res.Stages[len(res.Stages)-1]
	if final.Calls != 0 {
		t.Errorf("calls remain after pipeline: %d", final.Calls)
	}
}
