package core_test

import (
	"testing"

	"sparkgo/internal/core"
	"sparkgo/internal/htg"
	"sparkgo/internal/ild"
	"sparkgo/internal/ir"
	"sparkgo/internal/rtl"
	"sparkgo/internal/sched"
)

// Fuzz targets for every artifact decoder on the persistence path. The
// contract under arbitrary input is uniform: return an error or a value
// — never panic, never allocate proportionally to a forged length
// prefix (the wire.Len guards bound every slice make by the bytes
// actually present). Seeds are real artifacts from the staged flow —
// the same designs the golden fingerprint file pins — plus adversarial
// mutations of each: truncations, bit flips, and inflated length
// prefixes.

// fuzzArtifacts runs the staged flow once and returns the four layered
// encodings: program, graph, schedule, netlist, and the backend shell.
func fuzzArtifacts(f *testing.F) (progEnc, graphEnc, schedEnc, modEnc, shellEnc []byte) {
	f.Helper()
	prog := ild.Program(4)
	opt := core.Options{Preset: core.MicroprocessorBlock}
	fa, err := core.Frontend(prog, opt.FrontendOptions())
	if err != nil {
		f.Fatal(err)
	}
	progEnc = fa.Materialize()
	ma, err := core.Midend(fa, opt.MidendOptions())
	if err != nil {
		f.Fatal(err)
	}
	schedEnc = ma.Materialize()
	if graphEnc, err = htg.EncodeGraph(ma.Graph); err != nil {
		f.Fatal(err)
	}
	ba, err := core.Backend(ma, opt.BackendOptions())
	if err != nil {
		f.Fatal(err)
	}
	shellEnc = ba.Materialize()
	if modEnc, err = rtl.EncodeModule(ba.Module); err != nil {
		f.Fatal(err)
	}
	return progEnc, graphEnc, schedEnc, modEnc, shellEnc
}

// addSeeds registers an encoding and adversarial mutations of it:
// truncations at several depths, a bit flip in each third, garbage
// appended past the framing, and a length prefix inflated to claim far
// more elements than the input could hold.
func addSeeds(f *testing.F, seed []byte) {
	f.Helper()
	f.Add(seed)
	for _, cut := range []int{1, 2, 3} {
		if n := len(seed) * cut / 4; n > 0 {
			f.Add(seed[:n])
		}
	}
	for _, at := range []int{1, 2} {
		if i := len(seed) * at / 3; i < len(seed) {
			flip := append([]byte(nil), seed...)
			flip[i] ^= 0x40
			f.Add(flip)
		}
	}
	f.Add(append(append([]byte(nil), seed...), 0xde, 0xad, 0xbe, 0xef))
	f.Add(append([]byte{0xff, 0xff, 0xff, 0xff, 0x7f}, seed...))
}

func FuzzDecodeProgram(f *testing.F) {
	progEnc, _, _, _, _ := fuzzArtifacts(f)
	addSeeds(f, progEnc)
	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := ir.DecodeProgram(data)
		if err != nil {
			return
		}
		if _, err := ir.EncodeProgram(p); err != nil {
			t.Fatalf("decoded program does not re-encode: %v", err)
		}
	})
}

func FuzzDecodeGraph(f *testing.F) {
	_, graphEnc, _, _, _ := fuzzArtifacts(f)
	addSeeds(f, graphEnc)
	f.Fuzz(func(t *testing.T, data []byte) {
		g, err := htg.DecodeGraph(data)
		if err != nil {
			return
		}
		if _, err := htg.EncodeGraph(g); err != nil {
			t.Fatalf("decoded graph does not re-encode: %v", err)
		}
	})
}

func FuzzDecodeResult(f *testing.F) {
	_, _, schedEnc, _, _ := fuzzArtifacts(f)
	addSeeds(f, schedEnc)
	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := sched.DecodeResult(data)
		if err != nil {
			return
		}
		if _, err := sched.EncodeResult(r); err != nil {
			t.Fatalf("decoded schedule does not re-encode: %v", err)
		}
	})
}

func FuzzDecodeModule(f *testing.F) {
	_, _, _, modEnc, _ := fuzzArtifacts(f)
	addSeeds(f, modEnc)
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := rtl.DecodeModule(data)
		if err != nil {
			return
		}
		if _, err := rtl.EncodeModule(m); err != nil {
			t.Fatalf("decoded module does not re-encode: %v", err)
		}
	})
}

func FuzzDecodeBackendArtifact(f *testing.F) {
	_, _, _, _, shellEnc := fuzzArtifacts(f)
	addSeeds(f, shellEnc)
	f.Fuzz(func(t *testing.T, data []byte) {
		// DecodeBackendArtifact exercises both layers: the shell parse of
		// ReviveBackendArtifact and the eager netlist decode behind Mod.
		ba, err := core.DecodeBackendArtifact(data)
		if err != nil {
			return
		}
		if enc := ba.Materialize(); enc == nil {
			t.Fatal("decoded backend artifact does not re-encode")
		}
	})
}
