package core_test

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"sparkgo/internal/core"
	"sparkgo/internal/ir"
	"sparkgo/internal/parser"
	"sparkgo/internal/testutil"
)

// progGen generates random behavioral programs: straight-line arithmetic,
// nested conditionals, bounded counted loops, and array traffic — the
// whole statement surface the synthesizer accepts. Every generated program
// is then pushed through the full pipeline under several configurations
// and co-simulated against the interpreter. This is the fuzzing layer that
// caught the CSE read-set and stale-guard scheduler bugs during
// development.
type progGen struct {
	rng     *rand.Rand
	b       strings.Builder
	scalars []string // readable scalars (includes live loop indices)
	targets []string // assignable scalars (loop indices excluded so loops terminate)
	arrays  []string
	depth   int
}

func (g *progGen) pick(list []string) string { return list[g.rng.Intn(len(list))] }

func (g *progGen) expr(depth int) string {
	if depth <= 0 || g.rng.Intn(3) == 0 {
		switch g.rng.Intn(3) {
		case 0:
			return fmt.Sprintf("%d", g.rng.Intn(256))
		case 1:
			return g.pick(g.scalars)
		default:
			return fmt.Sprintf("%s[%s & %d]", g.pick(g.arrays), g.pick(g.scalars), 3)
		}
	}
	ops := []string{"+", "-", "*", "&", "|", "^", ">>", "<<"}
	op := ops[g.rng.Intn(len(ops))]
	r := g.expr(depth - 1)
	if op == ">>" || op == "<<" {
		r = fmt.Sprintf("%d", g.rng.Intn(7))
	}
	return fmt.Sprintf("(%s %s %s)", g.expr(depth-1), op, r)
}

func (g *progGen) cond() string {
	cmps := []string{"<", "<=", ">", ">=", "==", "!="}
	return fmt.Sprintf("%s %s %s", g.pick(g.scalars),
		cmps[g.rng.Intn(len(cmps))], g.expr(1))
}

func (g *progGen) stmt(indent string) {
	g.depth++
	defer func() { g.depth-- }()
	switch choice := g.rng.Intn(10); {
	case choice < 5 || g.depth > 3: // assignment
		if g.rng.Intn(4) == 0 {
			fmt.Fprintf(&g.b, "%s%s[%s & 3] = %s;\n", indent,
				g.pick(g.arrays), g.pick(g.scalars), g.expr(2))
		} else {
			fmt.Fprintf(&g.b, "%s%s = %s;\n", indent, g.pick(g.targets), g.expr(2))
		}
	case choice < 8: // conditional
		fmt.Fprintf(&g.b, "%sif (%s) {\n", indent, g.cond())
		n := 1 + g.rng.Intn(3)
		for i := 0; i < n; i++ {
			g.stmt(indent + "  ")
		}
		if g.rng.Intn(2) == 0 {
			fmt.Fprintf(&g.b, "%s} else {\n", indent)
			for i := 0; i < 1+g.rng.Intn(2); i++ {
				g.stmt(indent + "  ")
			}
		}
		fmt.Fprintf(&g.b, "%s}\n", indent)
	default: // bounded counted loop over a fresh index
		idx := fmt.Sprintf("li%d", g.rng.Intn(1000000))
		fmt.Fprintf(&g.b, "%s{ uint8 %s;\n", indent, idx)
		fmt.Fprintf(&g.b, "%sfor (%s = 0; %s < %d; %s++) {\n",
			indent, idx, idx, 2+g.rng.Intn(4), idx)
		saved := g.scalars
		g.scalars = append(g.scalars, idx)
		for i := 0; i < 1+g.rng.Intn(2); i++ {
			g.stmt(indent + "  ")
		}
		g.scalars = saved
		fmt.Fprintf(&g.b, "%s}\n%s}\n", indent, indent)
	}
}

func (g *progGen) generate() string {
	g.scalars = []string{"g0", "g1", "g2", "l0", "l1"}
	g.targets = append([]string{}, g.scalars...)
	g.arrays = []string{"arr0", "arr1"}
	g.b.WriteString("uint8 g0;\nuint8 g1;\nuint8 g2;\nuint8 arr0[4];\nuint8 arr1[4];\n")
	g.b.WriteString("void main() {\n  uint8 l0;\n  uint8 l1;\n")
	n := 3 + g.rng.Intn(6)
	for i := 0; i < n; i++ {
		g.stmt("  ")
	}
	g.b.WriteString("}\n")
	return g.b.String()
}

func TestRandomProgramsSynthesizeCorrectly(t *testing.T) {
	configs := []struct {
		name string
		opt  core.Options
	}{
		{"micro", core.Options{Preset: core.MicroprocessorBlock}},
		{"classical", core.Options{Preset: core.ClassicalASIC}},
		{"no-chaining", core.Options{NoChaining: true}},
	}
	rng := rand.New(rand.NewSource(20260611))
	programs := 0
	for trial := 0; trial < 40; trial++ {
		src := (&progGen{rng: rand.New(rand.NewSource(rng.Int63()))}).generate()
		p, err := parser.Parse(fmt.Sprintf("fuzz%d", trial), src)
		if err != nil {
			t.Fatalf("trial %d: generated invalid program: %v\n%s", trial, err, src)
		}
		programs++
		for _, cfg := range configs {
			res, err := core.Synthesize(p, cfg.opt)
			if err != nil {
				t.Fatalf("trial %d [%s]: synthesis failed: %v\n%s", trial, cfg.name, err, src)
			}
			if err := core.Verify(res, 8, int64(trial)); err != nil {
				t.Fatalf("trial %d [%s]: %v\n%s", trial, cfg.name, err, src)
			}
		}
	}
	if programs == 0 {
		t.Fatal("no programs generated")
	}
}

// The transformed program itself (before hardware) must stay equivalent
// too — this isolates transformation bugs from backend bugs when the
// fuzzer trips.
func TestRandomProgramsTransformEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 40; trial++ {
		src := (&progGen{rng: rand.New(rand.NewSource(rng.Int63()))}).generate()
		p, err := parser.Parse("fuzz", src)
		if err != nil {
			t.Fatal(err)
		}
		res, err := core.Synthesize(p, core.Options{})
		if err != nil {
			t.Fatalf("trial %d: %v\n%s", trial, err, src)
		}
		if err := testutil.Equivalent(p, res.Program, 12, int64(trial*7+1)); err != nil {
			t.Fatalf("trial %d: transforms diverge: %v\n--- source ---\n%s\n--- transformed ---\n%s",
				trial, err, src, ir.Print(res.Program))
		}
	}
}
