package core

import (
	"sparkgo/internal/delay"
	"sparkgo/internal/script"
)

// FromScript converts a parsed synthesis script into synthesizer options.
// A script that lists passes replaces the preset pipeline with exactly
// that sequence (the paper's designer-in-the-loop workflow, §4).
func FromScript(s *script.Script) Options {
	opt := Options{}
	if s.Preset == script.Classical {
		opt.Preset = ClassicalASIC
	}
	if s.Clock > 0 {
		opt.Model = delay.Default().WithClock(s.Clock)
	}
	opt.CustomPasses = s.Passes
	opt.CustomRounds = s.Rounds
	return opt
}
