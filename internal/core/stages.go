package core

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"

	"sparkgo/internal/delay"
	"sparkgo/internal/dfa"
	"sparkgo/internal/htg"
	"sparkgo/internal/ir"
	"sparkgo/internal/pass"
	"sparkgo/internal/rtl"
	"sparkgo/internal/sched"
	"sparkgo/internal/transform"
	"sparkgo/internal/wire"
)

// Stage versions participate in every artifact key. Bump a version when
// the corresponding stage's behavior changes in a way that invalidates
// previously computed artifacts (a new pass semantics, a scheduler fix,
// a netlist layout change); cached artifacts keyed under the old version
// then miss instead of serving stale results.
const (
	// FrontendVersion keys transformed-IR artifacts.
	//
	// v2: programs are persisted in the deterministic binary wire format
	// (internal/wire) instead of gob, so content fingerprints changed.
	FrontendVersion = 2
	// MidendVersion keys HTG/schedule artifacts.
	//
	// v2: midend artifacts are persisted losslessly (sched.EncodeResult)
	// and carry a content fingerprint; v1 artifacts were in-memory only.
	// v3: schedules are persisted in the deterministic binary wire
	// format (internal/wire) instead of gob.
	MidendVersion = 3
	// BackendVersion keys netlist/stats artifacts.
	//
	// v2: backend artifacts are persisted losslessly (rtl.EncodeModule +
	// report) and the stage keys on the midend artifact's *content*
	// fingerprint instead of its stage key, so two option sets that
	// converge on the same schedule share backend work.
	// v3: netlists and the report shell are persisted in the
	// deterministic binary wire format (internal/wire) instead of gob.
	BackendVersion = 3
)

// FrontendOptions is the subset of Options the frontend stage reads: the
// pass list and the fixpoint bound. Nothing about presets, delay models,
// resources, or chaining reaches the frontend, which is exactly why
// configurations differing only in those back-end knobs can share one
// frontend artifact.
type FrontendOptions struct {
	// Passes is the ordered pass list in internal/pass spec syntax.
	Passes []string
	// Rounds bounds fixed-point iteration (0 = pass.DefaultMaxRounds).
	Rounds int
	// CustomPasses, when non-empty, replaces Passes with pre-built
	// opaque passes (synthesis scripts). Opaque passes have no spec
	// text to hash, so the stage key is empty and the artifact is not
	// cacheable by input — its output fingerprint still is.
	CustomPasses []transform.Pass
}

// canonical renders the option fields that affect frontend output. The
// pass join escapes ";" inside specs so two distinct lists can never
// render — and therefore key — identically.
func (o FrontendOptions) canonical() string {
	esc := make([]string, len(o.Passes))
	for i, s := range o.Passes {
		s = strings.ReplaceAll(s, `\`, `\\`)
		esc[i] = strings.ReplaceAll(s, ";", `\;`)
	}
	return fmt.Sprintf("passes=[%s] rounds=%d", strings.Join(esc, "; "), o.Rounds)
}

// FrontendKey composes the frontend stage key from the input program's
// content fingerprint and the options. Empty when the options carry
// opaque CustomPasses (nothing stable to hash).
func FrontendKey(input *ir.Program, o FrontendOptions) string {
	return FrontendKeyFrom(ir.Fingerprint(input), o)
}

// FrontendKeyFrom is FrontendKey for callers that already hold the input
// fingerprint (the exploration engine memoizes fingerprints per source).
func FrontendKeyFrom(inputFingerprint string, o FrontendOptions) string {
	if len(o.CustomPasses) > 0 {
		return ""
	}
	return ir.HashText(fmt.Sprintf("frontend/v%d|src=%s|%s",
		FrontendVersion, inputFingerprint, o.canonical()))
}

// FrontendArtifact is the output of the frontend stage: the transformed
// program plus everything the reporting layers want to know about how it
// got there. The Program field must be treated as read-only — artifacts
// are shared between configurations in a sweep, and Midend clones before
// lowering.
type FrontendArtifact struct {
	Program *ir.Program // transformed program; treat as immutable
	// Source is the canonical printed form of Program — the
	// human-readable rendering carried alongside the artifact. Empty
	// until Materialize runs; the one-shot Synthesize path never pays
	// for it.
	Source string
	// Fingerprint is ir.Fingerprint of Program: the artifact's content
	// identity, independent of which pass list produced it. Empty until
	// Materialize runs.
	Fingerprint string
	// Key is the stage key H(input fingerprint, options, version).
	// Frontend itself leaves it empty — computing it would hash the
	// input a second time, and the one-shot Synthesize path never reads
	// it; callers that computed it (FrontendKey/FrontendKeyFrom, as the
	// exploration engine does) stamp it on the artifact themselves.
	Key       string
	Stages    []StageMetrics
	PassStats []pass.Stat
	Rounds    int

	// progEnc holds the program's lossless encoding on artifacts revived
	// from disk; Prog decodes it on first use. Computed artifacts carry
	// the program directly and never pay a decode.
	progEnc    []byte
	decodeOnce sync.Once
	decodeErr  error
}

// ReviveFrontendArtifact rebuilds a frontend artifact shell from a
// persisted program encoding without decoding it: disk revival is
// hash-verified by the cache layer, so the decode is deferred until a
// caller actually needs the program (Prog). Metadata fields (Source,
// Fingerprint, Rounds, ...) are the caller's to stamp from its own
// persisted record.
func ReviveFrontendArtifact(progEnc []byte) *FrontendArtifact {
	return &FrontendArtifact{progEnc: progEnc}
}

// Prog returns the artifact's program, decoding the persisted encoding
// on first call for revived artifacts. Computed artifacts return their
// in-memory program unconditionally.
func (fa *FrontendArtifact) Prog() (*ir.Program, error) {
	if fa.Program != nil {
		return fa.Program, nil
	}
	fa.decodeOnce.Do(func() {
		if fa.progEnc == nil {
			fa.decodeErr = fmt.Errorf("core: frontend artifact has no program encoding")
			return
		}
		p, err := ir.DecodeProgram(fa.progEnc)
		if err != nil {
			fa.decodeErr = fmt.Errorf("core: revive frontend: %w", err)
			return
		}
		fa.Program = p
	})
	return fa.Program, fa.decodeErr
}

// Materialize computes and stores the artifact's canonical Source and
// content Fingerprint, returning the lossless program encoding the
// fingerprint hashes (nil if the program failed to encode) so callers
// persisting the artifact can reuse it instead of encoding again. Call
// it from the goroutine that created the artifact, before sharing it;
// Synthesize never calls it, keeping the one-shot path free of
// serialization cost.
func (fa *FrontendArtifact) Materialize() []byte {
	fa.Source = ir.Print(fa.Program)
	enc, err := ir.EncodeProgram(fa.Program)
	if err != nil {
		// Mirror ir.Fingerprint's fallback for unencodable programs.
		fa.Fingerprint = ir.HashText("unencodable|" + fa.Source)
		return nil
	}
	fa.Fingerprint = ir.FingerprintBytes(enc)
	return enc
}

// FrontendContext is Frontend gated on a context: a context already done
// returns its error instead of starting the pass pipeline. The pipeline
// itself runs to completion once started — stage work is the unit of
// cancellation in the staged flow (see SynthesizeContext), matching the
// exploration engine's evaluation-batch granularity.
func FrontendContext(ctx context.Context, input *ir.Program, o FrontendOptions) (*FrontendArtifact, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return Frontend(input, o)
}

// Frontend runs the transformation stage: clone the input, drive the
// pass pipeline to a fixed point, validate, and fingerprint the result.
func Frontend(input *ir.Program, o FrontendOptions) (*FrontendArtifact, error) {
	passes := o.CustomPasses
	if len(passes) == 0 {
		var err error
		passes, err = pass.BuildAll(o.Passes)
		if err != nil {
			return nil, fmt.Errorf("core: %w", err)
		}
	}
	work := ir.CloneProgram(input)
	fa := &FrontendArtifact{Program: work}

	observer := func(pass string, changed bool, p *ir.Program) {
		m := p.Main()
		if m == nil {
			return
		}
		fa.Stages = append(fa.Stages, StageMetrics{
			Pass: pass, Changed: changed,
			Stmts: ir.CountStmts(m), Ops: ir.CountOps(m),
			Ifs: ir.CountIfs(m), Loops: ir.CountLoops(m),
			Calls: ir.CountCalls(m), Funcs: len(p.Funcs),
		})
	}
	pl := &pass.Pipeline{Passes: passes, MaxRounds: o.Rounds, Observer: observer}
	if err := pl.Run(work); err != nil {
		return nil, fmt.Errorf("core: transform: %w", err)
	}
	fa.PassStats = pl.Stats()
	fa.Rounds = pl.Rounds()
	if err := ir.Validate(work); err != nil {
		return nil, fmt.Errorf("core: transformed program invalid: %w", err)
	}
	return fa, nil
}

// MidendOptions is the subset of Options the midend stage reads: the
// scheduling regime. The delay model matters here because the chaining
// test compares accumulated path delay against the clock period.
type MidendOptions struct {
	Preset     Preset
	Model      *delay.Model     // nil: delay.Default()
	Resources  *sched.Resources // nil: preset default
	NoChaining bool
}

func (o MidendOptions) model() *delay.Model {
	if o.Model == nil {
		return delay.Default()
	}
	return o.Model
}

// canonical renders the option fields that affect midend output.
func (o MidendOptions) canonical() string {
	var b strings.Builder
	m := o.model()
	fmt.Fprintf(&b, "preset=%s nand=%g clock=%g", o.Preset, m.NandDelay, m.ClockPeriod)
	if o.NoChaining {
		b.WriteString(" nochain")
	}
	if r := o.Resources; r != nil {
		if r.Unlimited {
			b.WriteString(" res=unlimited")
		} else {
			classes := make([]int, 0, len(r.Counts))
			for c := range r.Counts {
				classes = append(classes, int(c))
			}
			sort.Ints(classes)
			b.WriteString(" res={")
			for i, c := range classes {
				if i > 0 {
					b.WriteString(",")
				}
				fmt.Fprintf(&b, "%s:%d", sched.Class(c), r.Counts[sched.Class(c)])
			}
			b.WriteString("}")
		}
	}
	return b.String()
}

// MidendKey composes the midend stage key from the frontend artifact's
// content fingerprint — not its stage key, so two pass lists that happen
// to produce the same transformed program share midend work too. Empty
// when the artifact was never materialized (the one-shot flow).
func MidendKey(fa *FrontendArtifact, o MidendOptions) string {
	if fa.Fingerprint == "" {
		return ""
	}
	return ir.HashText(fmt.Sprintf("midend/v%d|fe=%s|%s",
		MidendVersion, fa.Fingerprint, o.canonical()))
}

// MidendArtifact is the output of the midend stage: the hierarchical
// task graph and its schedule, plus the private program clone they
// reference.
type MidendArtifact struct {
	Program  *ir.Program // midend's own clone; Graph/Schedule reference its vars
	Graph    *htg.Graph
	Schedule *sched.Result
	Cycles   int
	// Fingerprint is the artifact's content identity: the SHA-256 of its
	// lossless encoding (sched.EncodeResult, which embeds the graph and
	// program). Empty until Materialize runs; the one-shot Synthesize
	// path never pays for it.
	Fingerprint string
	Key         string

	// schedEnc holds the schedule's lossless encoding on artifacts
	// revived from disk; Sched decodes it on first use.
	schedEnc   []byte
	decodeOnce sync.Once
	decodeErr  error
}

// ReviveMidendArtifact rebuilds a midend artifact shell from a
// persisted schedule encoding without decoding it: disk revival is
// hash-verified by the cache layer, and cycles travels as metadata
// alongside the payload, so downstream stage keys and sweep metrics
// never force a decode. Sched materializes the full schedule on first
// use.
func ReviveMidendArtifact(schedEnc []byte, cycles int) *MidendArtifact {
	return &MidendArtifact{schedEnc: schedEnc, Cycles: cycles}
}

// Sched returns the artifact's schedule, decoding the persisted
// encoding on first call for revived artifacts (program and graph
// fields are filled from the embedded encoding too). Computed artifacts
// return their in-memory schedule unconditionally.
func (ma *MidendArtifact) Sched() (*sched.Result, error) {
	if ma.Schedule != nil {
		return ma.Schedule, nil
	}
	ma.decodeOnce.Do(func() {
		if ma.schedEnc == nil {
			ma.decodeErr = fmt.Errorf("core: midend artifact has no schedule encoding")
			return
		}
		res, err := sched.DecodeResult(ma.schedEnc)
		if err != nil {
			ma.decodeErr = fmt.Errorf("core: revive midend: %w", err)
			return
		}
		ma.Program, ma.Graph, ma.Schedule = res.G.Prog, res.G, res
		ma.Cycles = res.NumStates
	})
	return ma.Schedule, ma.decodeErr
}

// Materialize computes and stores the artifact's content Fingerprint,
// returning the lossless encoding it hashes (nil if the schedule failed
// to encode) so callers persisting the artifact reuse it instead of
// encoding again — the exact contract FrontendArtifact.Materialize
// carries. Call it from the goroutine that created the artifact, before
// sharing it.
func (ma *MidendArtifact) Materialize() []byte {
	enc, err := sched.EncodeResult(ma.Schedule)
	if err != nil {
		// Mirror the frontend's fallback for unencodable artifacts: a
		// stable (if uninformative) fingerprint, no reusable encoding.
		ma.Fingerprint = ir.HashText("unencodable-midend|" + ma.Key)
		return nil
	}
	ma.Fingerprint = ir.FingerprintBytes(enc)
	return enc
}

// DecodeMidendArtifact revives a midend artifact from its lossless
// encoding. The caller owns verification: re-Materialize the result and
// compare fingerprints against the persisted value before trusting it
// (the exploration engine's disk layer does).
func DecodeMidendArtifact(enc []byte) (*MidendArtifact, error) {
	res, err := sched.DecodeResult(enc)
	if err != nil {
		return nil, fmt.Errorf("core: revive midend: %w", err)
	}
	return &MidendArtifact{
		Program:  res.G.Prog,
		Graph:    res.G,
		Schedule: res,
		Cycles:   res.NumStates,
	}, nil
}

// MidendContext is Midend gated on a context (see FrontendContext for
// the cancellation granularity contract).
func MidendContext(ctx context.Context, fa *FrontendArtifact, o MidendOptions) (*MidendArtifact, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return Midend(fa, o)
}

// Midend runs the scheduling stage: clone the frontend artifact's
// program (artifacts are shared across configurations, so the stage must
// not mutate its input), lower to the HTG, and schedule under the
// regime the options select.
func Midend(fa *FrontendArtifact, o MidendOptions) (*MidendArtifact, error) {
	prog, err := fa.Prog()
	if err != nil {
		return nil, err
	}
	return midend(ir.CloneProgram(prog), fa, o)
}

// midend is Midend on a program the caller owns outright. Synthesize
// uses it to skip the defensive clone: its artifact is private to the
// call, so lowering may consume it in place.
func midend(work *ir.Program, fa *FrontendArtifact, o MidendOptions) (*MidendArtifact, error) {
	main := work.Main()
	if main == nil {
		return nil, fmt.Errorf("core: program has no main function")
	}
	if ir.CountCalls(main) > 0 {
		return nil, fmt.Errorf("core: calls survive transformation (recursive or non-inlinable)")
	}
	g, err := htg.Lower(work, main)
	if err != nil {
		return nil, fmt.Errorf("core: lower: %w", err)
	}
	s, err := sched.Schedule(g, o.schedConfig(g))
	if err != nil {
		return nil, fmt.Errorf("core: schedule: %w", err)
	}
	return &MidendArtifact{
		Program: work, Graph: g, Schedule: s,
		Cycles: s.NumStates, Key: MidendKey(fa, o),
	}, nil
}

func (o MidendOptions) schedConfig(g *htg.Graph) sched.Config {
	cfg := sched.Config{Model: o.model(), DepOpts: dfa.DefaultOptions(),
		DisableChaining: o.NoChaining}
	switch o.Preset {
	case MicroprocessorBlock:
		cfg.Mode = sched.ModeChain
		cfg.Resources = sched.Unlimited()
		// A design that kept loops (NoUnroll ablation or unbounded
		// loops) cannot flatten: fall back to sequential control.
		if g.HasLoops() {
			cfg.Mode = sched.ModeSequential
		}
	case ClassicalASIC:
		cfg.Mode = sched.ModeSequential
		cfg.Resources = sched.Classical()
	}
	if o.Resources != nil {
		cfg.Resources = *o.Resources
	}
	return cfg
}

// BackendOptions is the subset of Options the backend stage reads: only
// the technology model the area/delay report is evaluated under.
type BackendOptions struct {
	Model *delay.Model // nil: delay.Default()
}

func (o BackendOptions) model() *delay.Model {
	if o.Model == nil {
		return delay.Default()
	}
	return o.Model
}

// BackendKey composes the backend stage key from the midend artifact's
// *content* fingerprint — not its stage key, so two option sets that
// converge on the same schedule share backend work (the same sharing
// rule MidendKey applies one stage up) — and the backend options. Empty
// when the midend artifact was never materialized (the one-shot flow).
func BackendKey(ma *MidendArtifact, o BackendOptions) string {
	if ma.Fingerprint == "" {
		return ""
	}
	m := o.model()
	return ir.HashText(fmt.Sprintf("backend/v%d|me=%s|nand=%g clock=%g",
		BackendVersion, ma.Fingerprint, m.NandDelay, m.ClockPeriod))
}

// BackendArtifact is the output of the backend stage: the bound RTL
// netlist and its technology report.
type BackendArtifact struct {
	Module *rtl.Module
	Stats  delay.Report
	// Fingerprint is the artifact's content identity: the SHA-256 of its
	// lossless encoding (netlist plus report). Empty until Materialize
	// runs.
	Fingerprint string
	Key         string

	// modEnc holds the netlist's lossless encoding on artifacts revived
	// from disk; Mod decodes it on first use. The report shell decodes
	// eagerly at revival — it is a handful of flat fields.
	modEnc     []byte
	decodeOnce sync.Once
	decodeErr  error
}

// backendTag versions the backend artifact wire shell: the flat
// technology report followed by the netlist's lossless encoding.
const backendTag = "backend/1"

// Materialize computes and stores the artifact's content Fingerprint,
// returning the lossless encoding it hashes (nil if the module failed
// to encode); see MidendArtifact.Materialize for the contract.
func (ba *BackendArtifact) Materialize() []byte {
	mod, err := rtl.EncodeModule(ba.Module)
	if err != nil {
		ba.Fingerprint = ir.HashText("unencodable-backend|" + ba.Key)
		return nil
	}
	e := wire.NewEncoder(64 + len(mod))
	e.Tag(backendTag)
	e.Float64(ba.Stats.CriticalPath)
	e.Float64(ba.Stats.Area)
	e.Int(ba.Stats.Registers)
	e.Int(ba.Stats.Muxes)
	e.Int(ba.Stats.FUs)
	e.Bytes(mod)
	enc := e.Data()
	ba.Fingerprint = ir.FingerprintBytes(enc)
	return enc
}

// ReviveBackendArtifact rebuilds a backend artifact from its persisted
// encoding without decoding the netlist: the report shell — the only
// part sweep metrics read — is a few flat fields parsed here; the
// module bytes stay encoded until Mod is called (which only the
// simulation path does). Disk revival is hash-verified by the cache
// layer, so no decode or re-encode happens on this path.
func ReviveBackendArtifact(enc []byte) (*BackendArtifact, error) {
	d := wire.NewDecoder(enc)
	d.Tag(backendTag)
	ba := &BackendArtifact{}
	ba.Stats.CriticalPath = d.Float64()
	ba.Stats.Area = d.Float64()
	ba.Stats.Registers = d.Int()
	ba.Stats.Muxes = d.Int()
	ba.Stats.FUs = d.Int()
	ba.modEnc = d.Bytes()
	if err := d.Finish(); err != nil {
		return nil, fmt.Errorf("core: revive backend: %w", err)
	}
	return ba, nil
}

// Mod returns the artifact's netlist, decoding the persisted encoding
// on first call for revived artifacts. Computed artifacts return their
// in-memory module unconditionally.
func (ba *BackendArtifact) Mod() (*rtl.Module, error) {
	if ba.Module != nil {
		return ba.Module, nil
	}
	ba.decodeOnce.Do(func() {
		if ba.modEnc == nil {
			ba.decodeErr = fmt.Errorf("core: backend artifact has no netlist encoding")
			return
		}
		m, err := rtl.DecodeModule(ba.modEnc)
		if err != nil {
			ba.decodeErr = fmt.Errorf("core: revive backend: %w", err)
			return
		}
		ba.Module = m
	})
	return ba.Module, ba.decodeErr
}

// DecodeBackendArtifact revives a backend artifact from its lossless
// encoding, netlist included — the eager form of ReviveBackendArtifact
// for callers that need the module immediately.
func DecodeBackendArtifact(enc []byte) (*BackendArtifact, error) {
	ba, err := ReviveBackendArtifact(enc)
	if err != nil {
		return nil, err
	}
	if _, err := ba.Mod(); err != nil {
		return nil, err
	}
	return ba, nil
}

// BackendContext is Backend gated on a context (see FrontendContext for
// the cancellation granularity contract).
func BackendContext(ctx context.Context, ma *MidendArtifact, o BackendOptions) (*BackendArtifact, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return Backend(ma, o)
}

// Backend runs the binding/netlist stage on a scheduled design.
func Backend(ma *MidendArtifact, o BackendOptions) (*BackendArtifact, error) {
	s, err := ma.Sched()
	if err != nil {
		return nil, err
	}
	m, err := rtl.Build(s)
	if err != nil {
		return nil, fmt.Errorf("core: rtl: %w", err)
	}
	return &BackendArtifact{
		Module: m, Stats: m.Stats(o.model()), Key: BackendKey(ma, o),
	}, nil
}

// FrontendOptions projects the option fields the frontend stage reads.
func (o Options) FrontendOptions() FrontendOptions {
	return FrontendOptions{
		Passes:       o.PassSpecs(),
		Rounds:       o.CustomRounds,
		CustomPasses: o.CustomPasses,
	}
}

// MidendOptions projects the option fields the midend stage reads.
func (o Options) MidendOptions() MidendOptions {
	return MidendOptions{
		Preset:     o.Preset,
		Model:      o.Model,
		Resources:  o.Resources,
		NoChaining: o.NoChaining,
	}
}

// BackendOptions projects the option fields the backend stage reads:
// the report model when one is set, the shared model otherwise.
func (o Options) BackendOptions() BackendOptions {
	if o.ReportModel != nil {
		return BackendOptions{Model: o.ReportModel}
	}
	return BackendOptions{Model: o.Model}
}
