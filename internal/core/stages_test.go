package core_test

import (
	"testing"

	"sparkgo/internal/core"
	"sparkgo/internal/ild"
	"sparkgo/internal/ir"
	"sparkgo/internal/rtl"
)

// TestStagedMatchesSynthesize checks that driving the three stages by
// hand produces exactly the design Synthesize produces — same schedule
// depth, same netlist text, same report.
func TestStagedMatchesSynthesize(t *testing.T) {
	for _, opt := range []core.Options{
		{Preset: core.MicroprocessorBlock},
		{Preset: core.ClassicalASIC},
		{Preset: core.MicroprocessorBlock, NoChaining: true, MaxUnroll: 8},
	} {
		p := ild.Program(4)
		mono, err := core.Synthesize(p, opt)
		if err != nil {
			t.Fatal(err)
		}
		fa, err := core.Frontend(p, opt.FrontendOptions())
		if err != nil {
			t.Fatal(err)
		}
		ma, err := core.Midend(fa, opt.MidendOptions())
		if err != nil {
			t.Fatal(err)
		}
		ba, err := core.Backend(ma, opt.BackendOptions())
		if err != nil {
			t.Fatal(err)
		}
		if ma.Cycles != mono.Cycles {
			t.Errorf("%+v: staged cycles %d != monolithic %d", opt, ma.Cycles, mono.Cycles)
		}
		if ba.Stats != mono.Stats {
			t.Errorf("%+v: staged stats %+v != monolithic %+v", opt, ba.Stats, mono.Stats)
		}
		if rtl.EmitVerilog(ba.Module) != rtl.EmitVerilog(mono.Module) {
			t.Errorf("%+v: staged netlist diverges from monolithic flow", opt)
		}
	}
}

// TestFrontendKeyReadsOnlyFrontendFields pins the artifact-key contract:
// back-end knobs must not perturb the frontend key (that is what lets a
// sweep share frontend runs), while every frontend-relevant field must.
func TestFrontendKeyReadsOnlyFrontendFields(t *testing.T) {
	p := ild.Program(4)
	base := core.Options{Preset: core.MicroprocessorBlock}
	key := core.FrontendKey(p, base.FrontendOptions())
	if key == "" {
		t.Fatal("empty frontend key for hashable options")
	}

	// Back-end knobs: key must be identical.
	for name, o := range map[string]core.Options{
		"nochaining": {Preset: core.MicroprocessorBlock, NoChaining: true},
		"model":      {Preset: core.MicroprocessorBlock, Model: nil},
	} {
		if k := core.FrontendKey(p, o.FrontendOptions()); k != key {
			t.Errorf("%s changed the frontend key", name)
		}
	}

	// Frontend-relevant changes: key must differ.
	for name, o := range map[string]core.Options{
		"preset-plan": {Preset: core.ClassicalASIC},
		"nospec":      {Preset: core.MicroprocessorBlock, NoSpeculation: true},
		"maxunroll":   {Preset: core.MicroprocessorBlock, MaxUnroll: 2},
		"rounds":      {Preset: core.MicroprocessorBlock, CustomRounds: 1},
		"passes":      {Passes: []string{"inline", "dce"}},
	} {
		if k := core.FrontendKey(p, o.FrontendOptions()); k == key {
			t.Errorf("%s did not change the frontend key", name)
		}
	}

	// A different source must change the key too.
	if k := core.FrontendKey(ild.Program(5), base.FrontendOptions()); k == key {
		t.Error("different source, same frontend key")
	}
	// Same content, different pointer: identical key (content hashing).
	if k := core.FrontendKey(ild.Program(4), base.FrontendOptions()); k != key {
		t.Error("identical source content produced a different frontend key")
	}
}

// TestMidendKeysOnArtifactContent checks midend keys derive from the
// frontend artifact's content fingerprint plus midend options only.
func TestMidendKeysOnArtifactContent(t *testing.T) {
	p := ild.Program(4)
	opt := core.Options{Preset: core.MicroprocessorBlock}
	fa, err := core.Frontend(p, opt.FrontendOptions())
	if err != nil {
		t.Fatal(err)
	}
	if k := core.MidendKey(fa, opt.MidendOptions()); k != "" {
		t.Fatalf("midend key %q before materialization, want empty", k)
	}
	fa.Materialize()
	base := core.MidendKey(fa, opt.MidendOptions())
	if base == "" {
		t.Fatal("empty midend key after materialization")
	}
	nochain := core.Options{Preset: core.MicroprocessorBlock, NoChaining: true}
	if k := core.MidendKey(fa, nochain.MidendOptions()); k == base {
		t.Error("chaining switch did not change the midend key")
	}
	classical := core.Options{Preset: core.ClassicalASIC}
	if k := core.MidendKey(fa, classical.MidendOptions()); k == base {
		t.Error("preset did not change the midend key")
	}
}

// TestMidendDoesNotMutateArtifact: frontend artifacts are shared across
// configurations, so scheduling one configuration must not change the
// artifact another is about to consume.
func TestMidendDoesNotMutateArtifact(t *testing.T) {
	fa, err := core.Frontend(ild.Program(4),
		core.Options{Preset: core.MicroprocessorBlock}.FrontendOptions())
	if err != nil {
		t.Fatal(err)
	}
	fa.Materialize()
	before := ir.Fingerprint(fa.Program)
	if before != fa.Fingerprint {
		t.Fatalf("artifact fingerprint %s does not match its program", fa.Fingerprint)
	}
	for _, opt := range []core.Options{
		{Preset: core.MicroprocessorBlock},
		{Preset: core.ClassicalASIC},
	} {
		if _, err := core.Midend(fa, opt.MidendOptions()); err != nil {
			t.Fatal(err)
		}
	}
	if after := ir.Fingerprint(fa.Program); after != before {
		t.Fatal("Midend mutated the shared frontend artifact")
	}
}

// TestFrontendArtifactSelfConsistency: the artifact's Source must be
// the canonical print of its program and the fingerprint its content
// hash.
func TestFrontendArtifactSelfConsistency(t *testing.T) {
	fa, err := core.Frontend(ild.Program(3),
		core.Options{Preset: core.MicroprocessorBlock}.FrontendOptions())
	if err != nil {
		t.Fatal(err)
	}
	if fa.Source != "" || fa.Fingerprint != "" {
		t.Error("Frontend paid for content identity the one-shot path never reads")
	}
	enc := fa.Materialize()
	if fa.Source != ir.Print(fa.Program) {
		t.Error("artifact Source is not the canonical print of its program")
	}
	if ir.Fingerprint(fa.Program) != fa.Fingerprint {
		t.Error("artifact fingerprint is not the content hash of its program")
	}
	if enc == nil || ir.FingerprintBytes(enc) != fa.Fingerprint {
		t.Error("Materialize's returned encoding does not hash to the fingerprint")
	}
	if fa.Rounds < 1 || len(fa.PassStats) == 0 {
		t.Errorf("artifact metadata incomplete: rounds=%d stats=%d",
			fa.Rounds, len(fa.PassStats))
	}
}
