package core

import (
	"fmt"
	"math/rand"

	"sparkgo/internal/interp"
	"sparkgo/internal/rtlsim"
	"sparkgo/internal/testutil"
)

// Verify co-simulates the synthesized RTL against behavioral
// interpretation of the original input on `trials` random stimulus
// vectors, returning the first divergence found (nil when the design is
// functionally equivalent on all trials). This is the check the paper
// performs implicitly by construction; here it is mechanical.
//
// The RTL side runs on the compiled batched simulator: the netlist is
// lowered once and the trials step through it in lanes of
// rtlsim.MaxLanes, with the cycle watchdog derived from the schedule
// (rtlsim.WatchdogCycles), so a non-terminating design errors after
// thousands of cycles rather than millions.
func Verify(res *Result, trials int, seed int64) error {
	rng := rand.New(rand.NewSource(seed))
	maxCycles := rtlsim.WatchdogCycles(res.Schedule.NumStates)
	prog := rtlsim.Compile(res.Module)
	for start := 0; start < trials; start += rtlsim.MaxLanes {
		lanes := min(rtlsim.MaxLanes, trials-start)
		batch := prog.NewBatch(lanes)
		refs := make([]*interp.Env, lanes)
		for ln := 0; ln < lanes; ln++ {
			trial := start + ln
			env := testutil.RandomEnv(res.Input, rng)
			ref := env.Clone()
			if _, err := interp.New(res.Input).RunMain(ref); err != nil {
				return fmt.Errorf("verify trial %d: behavioral: %w", trial, err)
			}
			if err := batch.LoadEnv(ln, res.Input, env); err != nil {
				return fmt.Errorf("verify trial %d: %w", trial, err)
			}
			refs[ln] = ref
		}
		batch.Run(maxCycles)
		for ln := 0; ln < lanes; ln++ {
			trial := start + ln
			if err := batch.Err(ln); err != nil {
				return fmt.Errorf("verify trial %d: rtl: %w", trial, err)
			}
			if diff := batch.CompareEnv(ln, res.Input, refs[ln]); diff != "" {
				return fmt.Errorf("verify trial %d: mismatch: %s", trial, diff)
			}
		}
	}
	return nil
}
