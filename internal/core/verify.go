package core

import (
	"fmt"
	"math/rand"

	"sparkgo/internal/interp"
	"sparkgo/internal/rtlsim"
	"sparkgo/internal/testutil"
)

// Verify co-simulates the synthesized RTL against behavioral
// interpretation of the original input on `trials` random stimulus
// vectors, returning the first divergence found (nil when the design is
// functionally equivalent on all trials). This is the check the paper
// performs implicitly by construction; here it is mechanical.
func Verify(res *Result, trials int, seed int64) error {
	rng := rand.New(rand.NewSource(seed))
	maxCycles := res.Schedule.NumStates*1024 + 16
	for trial := 0; trial < trials; trial++ {
		env := testutil.RandomEnv(res.Input, rng)
		ref := env.Clone()
		if _, err := interp.New(res.Input).RunMain(ref); err != nil {
			return fmt.Errorf("verify trial %d: behavioral: %w", trial, err)
		}
		sim := rtlsim.New(res.Module)
		if err := sim.LoadEnv(res.Input, env); err != nil {
			return fmt.Errorf("verify trial %d: %w", trial, err)
		}
		if _, err := sim.Run(maxCycles); err != nil {
			return fmt.Errorf("verify trial %d: rtl: %w", trial, err)
		}
		if diff := sim.CompareEnv(res.Input, ref); diff != "" {
			return fmt.Errorf("verify trial %d: mismatch: %s", trial, diff)
		}
	}
	return nil
}
