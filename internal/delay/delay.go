// Package delay is the technology model: normalized gate delays and area
// for datapath operators, multiplexers, and lookup structures, plus the
// arithmetic the scheduler and the RTL critical-path engine share.
//
// The paper's claims are structural (a single-cycle architecture exists;
// chaining across conditionals is feasible; the ripple logic dominates the
// cycle time), so absolute numbers are irrelevant — what matters is a
// consistent model in which comparisons and crossovers are meaningful. The
// unit is the delay of one 2-input NAND ("gate units", gu); areas are in
// NAND-equivalents. Figures follow classic logic-synthesis estimates:
// ripple adders cost O(w), comparators O(log w) with a carry tree, muxes
// O(log fan-in), etc.
package delay

import (
	"fmt"
	"math"

	"sparkgo/internal/ir"
)

// Model holds technology parameters. The zero value is unusable; use
// Default() or construct explicitly.
type Model struct {
	// NandDelay scales all delays (gu per NAND); 1.0 for the normalized
	// model, or e.g. 90 (ps) to mimic a 180nm-era process like the
	// paper's.
	NandDelay float64
	// ClockPeriod is the target cycle time in the same unit, used by the
	// scheduler's chaining test. Zero means "unconstrained" (everything
	// may chain; the achieved critical path is reported instead).
	ClockPeriod float64
}

// Default returns the normalized model (NAND = 1 gu) with no clock bound.
func Default() *Model { return &Model{NandDelay: 1} }

// WithClock returns a copy of m with the given clock period.
func (m *Model) WithClock(period float64) *Model {
	c := *m
	c.ClockPeriod = period
	return &c
}

func width(t *ir.Type) int {
	if t == nil {
		return 1
	}
	if t.IsArray() {
		return t.Elem.Width()
	}
	if t.IsVoid() {
		return 1
	}
	return t.Width()
}

func log2ceil(n int) float64 {
	if n <= 1 {
		return 1
	}
	return math.Ceil(math.Log2(float64(n)))
}

// BinOpDelay returns the delay of a two-input operator producing type t.
func (m *Model) BinOpDelay(op ir.BinOp, t *ir.Type) float64 {
	w := float64(width(t))
	var d float64
	switch op {
	case ir.OpAdd, ir.OpSub:
		// Carry-lookahead adder: ~2*log2(w)+4.
		d = 2*log2ceil(int(w)) + 4
	case ir.OpMul:
		// Wallace-tree multiplier: ~6*log2(w)+8.
		d = 6*log2ceil(int(w)) + 8
	case ir.OpDiv, ir.OpRem:
		// Iterative array divider: O(w).
		d = 4*w + 8
	case ir.OpAnd, ir.OpOr, ir.OpXor:
		d = 1.5
	case ir.OpShl, ir.OpShr:
		// Barrel shifter: one mux level per shift bit.
		d = 1.5 * log2ceil(int(w))
	case ir.OpEq, ir.OpNe:
		// XOR row + AND tree.
		d = 1 + log2ceil(int(w))
	case ir.OpLt, ir.OpLe, ir.OpGt, ir.OpGe:
		// Subtract-based comparison.
		d = 2*log2ceil(int(w)) + 4
	case ir.OpLAnd, ir.OpLOr:
		d = 1
	default:
		d = 2
	}
	return d * m.NandDelay
}

// UnOpDelay returns the delay of a unary operator producing type t.
func (m *Model) UnOpDelay(op ir.UnOp, t *ir.Type) float64 {
	switch op {
	case ir.OpNeg:
		// Invert + increment: like an add.
		return (2*log2ceil(width(t)) + 4) * m.NandDelay
	case ir.OpNot, ir.OpLNot:
		return 0.5 * m.NandDelay
	}
	return m.NandDelay
}

// MuxDelay returns the delay of an n-way multiplexer (n >= 2): one 2:1
// stage per tree level.
func (m *Model) MuxDelay(n int) float64 {
	if n < 2 {
		return 0
	}
	return 1.5 * log2ceil(n) * m.NandDelay
}

// ArrayReadDelay is the delay of reading one element of an n-entry array
// with a dynamic index: an n-way mux plus index decode.
func (m *Model) ArrayReadDelay(n int) float64 {
	return m.MuxDelay(n) + m.NandDelay
}

// CastDelay: rewiring only.
func (m *Model) CastDelay() float64 { return 0 }

// RegisterSetup is the setup+clk→q overhead charged once per cycle.
func (m *Model) RegisterSetup() float64 { return 2 * m.NandDelay }

// --- area (NAND-equivalents) ---

// BinOpArea estimates operator area.
func (m *Model) BinOpArea(op ir.BinOp, t *ir.Type) float64 {
	w := float64(width(t))
	switch op {
	case ir.OpAdd, ir.OpSub:
		return 12 * w
	case ir.OpMul:
		return 18 * w * w
	case ir.OpDiv, ir.OpRem:
		return 24 * w * w
	case ir.OpAnd, ir.OpOr, ir.OpXor:
		return 1.5 * w
	case ir.OpShl, ir.OpShr:
		return 3 * w * log2ceil(int(w))
	case ir.OpEq, ir.OpNe:
		return 3 * w
	case ir.OpLt, ir.OpLe, ir.OpGt, ir.OpGe:
		return 10 * w
	case ir.OpLAnd, ir.OpLOr:
		return 2
	}
	return 2 * w
}

// UnOpArea estimates unary operator area.
func (m *Model) UnOpArea(op ir.UnOp, t *ir.Type) float64 {
	w := float64(width(t))
	if op == ir.OpNeg {
		return 8 * w
	}
	return w
}

// MuxArea estimates n-way mux area for a w-bit datum.
func (m *Model) MuxArea(n, w int) float64 {
	if n < 2 {
		return 0
	}
	return 3 * float64(n-1) * float64(w)
}

// RegArea estimates a w-bit register.
func (m *Model) RegArea(w int) float64 { return 6 * float64(w) }

// Report is a human-readable summary of a delay/area pair.
type Report struct {
	CriticalPath float64 // gu
	Area         float64 // NAND equivalents
	Registers    int
	Muxes        int
	FUs          int
}

func (r Report) String() string {
	return fmt.Sprintf("critical-path=%.1fgu area=%.0f regs=%d muxes=%d fus=%d",
		r.CriticalPath, r.Area, r.Registers, r.Muxes, r.FUs)
}
