package delay_test

import (
	"testing"

	"sparkgo/internal/delay"
	"sparkgo/internal/ir"
)

func TestDelaysScaleWithWidth(t *testing.T) {
	m := delay.Default()
	if m.BinOpDelay(ir.OpAdd, ir.UInt(32)) <= m.BinOpDelay(ir.OpAdd, ir.UInt(4)) {
		t.Error("32-bit add should be slower than 4-bit add")
	}
	if m.BinOpDelay(ir.OpMul, ir.UInt(16)) <= m.BinOpDelay(ir.OpAdd, ir.UInt(16)) {
		t.Error("multiply should be slower than add")
	}
	if m.BinOpDelay(ir.OpDiv, ir.UInt(16)) <= m.BinOpDelay(ir.OpMul, ir.UInt(16)) {
		t.Error("divide should be slower than multiply")
	}
	if m.BinOpDelay(ir.OpAnd, ir.UInt(32)) >= m.BinOpDelay(ir.OpAdd, ir.UInt(8)) {
		t.Error("bitwise ops should be fast")
	}
}

func TestMuxDelayGrowsWithFanIn(t *testing.T) {
	m := delay.Default()
	if m.MuxDelay(2) <= 0 {
		t.Error("2:1 mux must cost something")
	}
	if m.MuxDelay(16) <= m.MuxDelay(2) {
		t.Error("16:1 mux should be slower than 2:1")
	}
	if m.MuxDelay(1) != 0 {
		t.Error("degenerate mux is free")
	}
}

func TestNandScaling(t *testing.T) {
	base := delay.Default()
	scaled := &delay.Model{NandDelay: 90}
	r := scaled.BinOpDelay(ir.OpAdd, ir.U8) / base.BinOpDelay(ir.OpAdd, ir.U8)
	if r < 89.9 || r > 90.1 {
		t.Errorf("scaling factor = %f, want 90", r)
	}
}

func TestWithClock(t *testing.T) {
	m := delay.Default()
	c := m.WithClock(40)
	if c.ClockPeriod != 40 {
		t.Errorf("clock = %f", c.ClockPeriod)
	}
	if m.ClockPeriod != 0 {
		t.Error("WithClock mutated the receiver")
	}
}

func TestAreasPositive(t *testing.T) {
	m := delay.Default()
	ops := []ir.BinOp{ir.OpAdd, ir.OpMul, ir.OpDiv, ir.OpAnd, ir.OpShl, ir.OpEq, ir.OpLt}
	for _, op := range ops {
		if m.BinOpArea(op, ir.U8) <= 0 {
			t.Errorf("area of %v must be positive", op)
		}
	}
	if m.MuxArea(4, 8) <= m.MuxArea(2, 8) {
		t.Error("wider mux should cost more area")
	}
	if m.RegArea(16) <= m.RegArea(4) {
		t.Error("wider register should cost more area")
	}
}

func TestReportString(t *testing.T) {
	r := delay.Report{CriticalPath: 42.5, Area: 100, Registers: 3, Muxes: 4, FUs: 5}
	if r.String() == "" {
		t.Error("empty report")
	}
}

func TestBoolAndArrayWidths(t *testing.T) {
	m := delay.Default()
	// Bool-typed compare result should not panic and be positive.
	if m.BinOpDelay(ir.OpEq, ir.Bool) <= 0 {
		t.Error("bool compare delay must be positive")
	}
	if m.ArrayReadDelay(16) <= m.ArrayReadDelay(4) {
		t.Error("bigger array read should be slower")
	}
}
