// Package dfa builds the data-dependence graph over HTG operations that
// drives scheduling: flow (read-after-write), anti (write-after-read),
// output (write-after-write), and guard (control value needed for
// conditional commit) dependences.
//
// Two refinements from the paper's domain are applied:
//
//   - mutual exclusion: operations in basic blocks that can never execute
//     together (contradictory path guards) need no anti/output ordering
//     (§2: mutually exclusive operations may even share a resource);
//   - constant-index array disambiguation: accesses to statically distinct
//     elements of the same array are independent, which is what makes the
//     fully-unrolled ILD's Mark[1], Mark[2], ... stores parallel.
package dfa

import (
	"sparkgo/internal/htg"
	"sparkgo/internal/ir"
)

// EdgeKind classifies dependence edges.
type EdgeKind int

const (
	// Flow: the successor reads a value the predecessor writes.
	Flow EdgeKind = iota
	// Anti: the successor overwrites a value the predecessor reads.
	Anti
	// Output: both write the same storage; program order must hold.
	Output
	// Guard: the successor commits under a condition the predecessor
	// computes.
	Guard
)

func (k EdgeKind) String() string {
	switch k {
	case Flow:
		return "flow"
	case Anti:
		return "anti"
	case Output:
		return "output"
	case Guard:
		return "guard"
	}
	return "?"
}

// Edge is one dependence: From must complete before (or chain into) To.
type Edge struct {
	From, To *htg.Op
	Kind     EdgeKind
	// Var is the storage mediating the dependence (condition var for
	// Guard edges).
	Var *ir.Var
}

// Graph is the dependence graph over a set of operations in program order.
type Graph struct {
	Ops   []*htg.Op
	Succs map[*htg.Op][]Edge
	Preds map[*htg.Op][]Edge
}

// Options configures graph construction.
type Options struct {
	// DisambiguateArrays skips dependences between array accesses with
	// distinct constant indices. Disable for the A-series ablations.
	DisambiguateArrays bool
	// UseExclusivity skips anti/output ordering between mutually
	// exclusive basic blocks.
	UseExclusivity bool
}

// DefaultOptions enables both refinements (the paper's configuration).
func DefaultOptions() Options {
	return Options{DisambiguateArrays: true, UseExclusivity: true}
}

// Build constructs the dependence graph for ops (which must be in program
// order, as produced by Graph.AllOps or BasicBlock.Ops).
func Build(ops []*htg.Op, opt Options) *Graph {
	g := &Graph{Ops: ops, Succs: map[*htg.Op][]Edge{}, Preds: map[*htg.Op][]Edge{}}

	addEdge := func(from, to *htg.Op, kind EdgeKind, v *ir.Var) {
		if from == to {
			return
		}
		for _, e := range g.Succs[from] {
			if e.To == to && e.Kind == kind {
				return
			}
		}
		e := Edge{From: from, To: to, Kind: kind, Var: v}
		g.Succs[from] = append(g.Succs[from], e)
		g.Preds[to] = append(g.Preds[to], e)
	}

	// Per-variable def/use bookkeeping, scanning in program order.
	lastDefs := map[*ir.Var][]*htg.Op{} // defs not yet killed (guarded defs accumulate)
	lastReads := map[*ir.Var][]*htg.Op{}

	exclusive := func(a, b *htg.Op) bool {
		return opt.UseExclusivity && htg.MutuallyExclusive(a.BB, b.BB)
	}
	// distinctConstElems reports whether two array ops provably touch
	// different elements.
	distinctConstElems := func(a, b *htg.Op) bool {
		if !opt.DisambiguateArrays {
			return false
		}
		ia, ib := a.Args[0], b.Args[0]
		return ia.IsConst && ib.IsConst && ia.Const != ib.Const
	}

	for _, op := range ops {
		// Guard dependences: the op needs its path conditions — and it
		// READS them, so later writers of a condition variable must be
		// anti-ordered after this op (a stale guard would otherwise
		// commit the wrong branch when scheduling spreads the ops over
		// several cycles).
		for _, gt := range op.BB.Guard {
			for _, d := range lastDefs[gt.Cond] {
				addEdge(d, op, Guard, gt.Cond)
			}
			lastReads[gt.Cond] = append(lastReads[gt.Cond], op)
		}
		// Flow dependences on reads.
		for _, v := range op.Reads() {
			for _, d := range lastDefs[v] {
				if v.Type.IsArray() && d.Kind == htg.OpStore && op.Kind == htg.OpLoad &&
					distinctConstElems(d, op) {
					continue
				}
				if v.Type.IsArray() && exclusive(d, op) {
					// A store in an exclusive branch can't feed
					// this load.
					continue
				}
				addEdge(d, op, Flow, v)
			}
			lastReads[v] = append(lastReads[v], op)
		}
		// Anti/output dependences on the write.
		if w := op.Writes(); w != nil {
			for _, r := range lastReads[w] {
				if r == op {
					continue
				}
				if exclusive(r, op) {
					continue
				}
				if w.Type.IsArray() && r.Kind == htg.OpLoad && op.Kind == htg.OpStore &&
					distinctConstElems(r, op) {
					continue
				}
				addEdge(r, op, Anti, w)
			}
			var kept []*htg.Op
			for _, d := range lastDefs[w] {
				if exclusive(d, op) {
					// Both writes can't happen in one run: no
					// ordering needed, and the old def still
					// reaches later readers on its own paths.
					kept = append(kept, d)
					continue
				}
				if w.Type.IsArray() && d.Kind == htg.OpStore && op.Kind == htg.OpStore &&
					distinctConstElems(d, op) {
					kept = append(kept, d)
					continue
				}
				addEdge(d, op, Output, w)
				// A killed def stops reaching later readers only
				// when the new write covers it: scalar writes whose
				// guard set is implied by the old def's guards.
				if !w.Type.IsArray() && guardsCover(d.BB.Guard, op.BB.Guard) {
					continue // killed
				}
				kept = append(kept, d)
			}
			if w.Type.IsArray() {
				// Element stores never kill the whole array:
				// readers at other indices still need older stores.
				lastDefs[w] = append(dedupOps(kept), op)
			} else if len(op.BB.Guard) == 0 {
				lastDefs[w] = []*htg.Op{op} // unconditional def kills all
				lastReads[w] = nil
			} else {
				lastDefs[w] = append(dedupOps(kept), op)
			}
		}
	}
	return g
}

// guardsCover reports whether guard set a implies b (b is a prefix of a:
// every term of b appears in a). An op whose guard is implied by a later
// op's guard is killed by it.
func guardsCover(a, b []htg.GuardTerm) bool {
	for _, tb := range b {
		found := false
		for _, ta := range a {
			if ta.Cond == tb.Cond && ta.Value == tb.Value {
				found = true
			}
		}
		if !found {
			return false
		}
	}
	return true
}

func dedupOps(ops []*htg.Op) []*htg.Op {
	seen := map[*htg.Op]bool{}
	var out []*htg.Op
	for _, o := range ops {
		if !seen[o] {
			seen[o] = true
			out = append(out, o)
		}
	}
	return out
}

// Topological returns the ops sorted topologically by dependence, breaking
// ties by program order (op ID). The input graph must be acyclic, which
// holds by construction (edges always point forward in program order).
func (g *Graph) Topological() []*htg.Op {
	out := append([]*htg.Op{}, g.Ops...)
	// Edges already point forward in program order, so program order IS
	// a topological order.
	return out
}

// CriticalPathLength returns the maximum number of flow edges on any path
// (the dataflow depth: paper Fig 3b's "two levels").
func (g *Graph) CriticalPathLength() int {
	depth := map[*htg.Op]int{}
	max := 0
	for _, op := range g.Ops { // program order = topological
		d := 0
		for _, e := range g.Preds[op] {
			if e.Kind == Flow || e.Kind == Guard {
				if depth[e.From]+1 > d {
					d = depth[e.From] + 1
				}
			}
		}
		depth[op] = d
		if d > max {
			max = d
		}
	}
	return max + 1
}
