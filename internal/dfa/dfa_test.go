package dfa_test

import (
	"testing"

	"sparkgo/internal/dfa"
	"sparkgo/internal/htg"
	"sparkgo/internal/parser"
	"sparkgo/internal/transform"
)

func lower(t *testing.T, src string) *htg.Graph {
	t.Helper()
	p := parser.MustParse("t", src)
	if _, err := transform.Inline(nil).Run(p); err != nil {
		t.Fatal(err)
	}
	g, err := htg.Lower(p, p.Main())
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func findOp(g *htg.Graph, pred func(*htg.Op) bool) *htg.Op {
	for _, op := range g.AllOps() {
		if pred(op) {
			return op
		}
	}
	return nil
}

func hasEdge(d *dfa.Graph, from, to *htg.Op, kind dfa.EdgeKind) bool {
	for _, e := range d.Succs[from] {
		if e.To == to && e.Kind == kind {
			return true
		}
	}
	return false
}

func TestFlowDependence(t *testing.T) {
	g := lower(t, `
uint8 a;
uint8 out;
void main() {
  uint8 t;
  t = a + 1;
  out = t * 2;
}
`)
	d := dfa.Build(g.AllOps(), dfa.DefaultOptions())
	def := findOp(g, func(op *htg.Op) bool { return op.Writes() != nil && op.Writes().Name == "t" })
	use := findOp(g, func(op *htg.Op) bool {
		for _, v := range op.Reads() {
			if v.Name == "t" {
				return true
			}
		}
		return false
	})
	if def == nil || use == nil {
		t.Fatal("ops not found")
	}
	if !hasEdge(d, def, use, dfa.Flow) {
		t.Error("missing flow edge def(t) -> use(t)")
	}
}

func TestAntiAndOutputDependence(t *testing.T) {
	g := lower(t, `
uint8 a;
uint8 out;
void main() {
  uint8 t;
  t = a + 1;
  out = t;
  t = a + 2;
}
`)
	d := dfa.Build(g.AllOps(), dfa.DefaultOptions())
	var defs []*htg.Op
	for _, op := range g.AllOps() {
		if w := op.Writes(); w != nil && w.Name == "t" {
			defs = append(defs, op)
		}
	}
	if len(defs) != 2 {
		t.Fatalf("defs of t = %d, want 2", len(defs))
	}
	use := findOp(g, func(op *htg.Op) bool { return op.Writes() != nil && op.Writes().Name == "out" })
	if !hasEdge(d, defs[0], defs[1], dfa.Output) {
		t.Error("missing output edge between the two defs of t")
	}
	if !hasEdge(d, use, defs[1], dfa.Anti) {
		t.Error("missing anti edge use(t) -> redef(t)")
	}
}

func TestGuardDependenceAndGuardRead(t *testing.T) {
	g := lower(t, `
uint8 a;
uint8 out;
void main() {
  bool c;
  c = a > 1;
  if (c) {
    out = 5;
  }
  c = a > 2;
}
`)
	d := dfa.Build(g.AllOps(), dfa.DefaultOptions())
	guarded := findOp(g, func(op *htg.Op) bool { return len(op.BB.Guard) > 0 })
	if guarded == nil {
		t.Fatal("no guarded op")
	}
	var condDefs []*htg.Op
	for _, op := range g.AllOps() {
		if w := op.Writes(); w != nil && w.Name == "c" {
			condDefs = append(condDefs, op)
		}
	}
	if len(condDefs) != 2 {
		t.Fatalf("defs of c = %d, want 2", len(condDefs))
	}
	if !hasEdge(d, condDefs[0], guarded, dfa.Guard) {
		t.Error("missing guard edge cond-def -> guarded op")
	}
	// The guarded op READS c: the later redefinition of c must be
	// anti-ordered after it (the stale-guard hazard).
	if !hasEdge(d, guarded, condDefs[1], dfa.Anti) {
		t.Error("missing anti edge guarded-op -> cond redefinition")
	}
}

func TestConstIndexDisambiguation(t *testing.T) {
	g := lower(t, `
uint8 arr[4];
void main() {
  arr[0] = 1;
  arr[1] = 2;
}
`)
	opts := dfa.DefaultOptions()
	d := dfa.Build(g.AllOps(), opts)
	var stores []*htg.Op
	for _, op := range g.AllOps() {
		if op.Kind == htg.OpStore {
			stores = append(stores, op)
		}
	}
	if len(stores) != 2 {
		t.Fatalf("stores = %d", len(stores))
	}
	if hasEdge(d, stores[0], stores[1], dfa.Output) {
		t.Error("distinct constant indices should not be ordered")
	}
	// With disambiguation off, they must be ordered.
	opts.DisambiguateArrays = false
	d2 := dfa.Build(g.AllOps(), opts)
	if !hasEdge(d2, stores[0], stores[1], dfa.Output) {
		t.Error("ablation: stores must be ordered without disambiguation")
	}
}

func TestDynamicIndexConservative(t *testing.T) {
	g := lower(t, `
uint8 arr[4];
uint8 i;
uint8 out;
void main() {
  arr[i] = 1;
  out = arr[2];
}
`)
	d := dfa.Build(g.AllOps(), dfa.DefaultOptions())
	store := findOp(g, func(op *htg.Op) bool { return op.Kind == htg.OpStore })
	load := findOp(g, func(op *htg.Op) bool { return op.Kind == htg.OpLoad && op.Arr.Name == "arr" })
	if !hasEdge(d, store, load, dfa.Flow) {
		t.Error("dynamic store must order before a later load")
	}
}

func TestExclusiveBranchesUnordered(t *testing.T) {
	g := lower(t, `
uint8 a;
uint8 x;
void main() {
  if (a > 1) {
    x = 1;
  } else {
    x = 2;
  }
}
`)
	d := dfa.Build(g.AllOps(), dfa.DefaultOptions())
	var defs []*htg.Op
	for _, op := range g.AllOps() {
		if w := op.Writes(); w != nil && w.Name == "x" && op.Kind == htg.OpCopy {
			defs = append(defs, op)
		}
	}
	if len(defs) != 2 {
		t.Fatalf("defs = %d", len(defs))
	}
	if hasEdge(d, defs[0], defs[1], dfa.Output) {
		t.Error("mutually exclusive writes should not be ordered")
	}
}

func TestCriticalPathLength(t *testing.T) {
	g := lower(t, `
uint8 a;
uint8 out;
void main() {
  uint8 t1;
  uint8 t2;
  t1 = a + 1;
  t2 = t1 + 2;
  out = t2 + 3;
}
`)
	d := dfa.Build(g.AllOps(), dfa.DefaultOptions())
	if depth := d.CriticalPathLength(); depth < 3 {
		t.Errorf("dataflow depth = %d, want >= 3", depth)
	}
}

func TestEdgesPointForward(t *testing.T) {
	g := lower(t, `
uint8 a;
uint8 arr[4];
uint8 out;
void main() {
  uint8 t;
  if (a > 1) {
    arr[a & 3] = a;
    t = arr[0];
  }
  out = t + arr[1];
}
`)
	d := dfa.Build(g.AllOps(), dfa.DefaultOptions())
	for _, op := range d.Ops {
		for _, e := range d.Succs[op] {
			if e.From.ID >= e.To.ID {
				t.Errorf("edge not forward in program order: #%d -> #%d (%v)",
					e.From.ID, e.To.ID, e.Kind)
			}
		}
	}
}
