// Package experiments regenerates every figure-level result of the paper
// (DESIGN.md §4, experiments E1–E14 and ablations A1–A4). Each experiment
// returns a report.Table whose rows are the measured quantities, and an
// error when a claimed shape fails to hold — so the experiment suite
// doubles as an end-to-end regression check. cmd/explore prints all
// tables; bench_test.go wraps each experiment in a benchmark.
package experiments

import (
	"fmt"
	"math/rand"

	"sparkgo/internal/bind"
	"sparkgo/internal/core"
	"sparkgo/internal/delay"
	"sparkgo/internal/htg"
	"sparkgo/internal/ild"
	"sparkgo/internal/interp"
	"sparkgo/internal/ir"
	"sparkgo/internal/parser"
	"sparkgo/internal/pass"
	"sparkgo/internal/report"
	"sparkgo/internal/transform"
)

// fig2Source is the synthetic Op1/Op2 loop of paper Fig 2: Op1 produces
// r1(i) from the input, Op2 consumes r1(i).
func fig2Source(n int) string {
	return fmt.Sprintf(`
uint8 in1[%d];
uint8 r1[%d];
uint8 r2[%d];
void main() {
  uint8 i;
  for (i = 0; i < %d; i++) {
    r1[i] = in1[i] + 3;
    r2[i] = r1[i] ^ in1[i];
  }
}
`, n, n, n, n)
}

// E1Fig02Unroll measures full loop unrolling (Fig 2): the loop disappears
// and the body replicates N times.
func E1Fig02Unroll() (*report.Table, error) {
	t := report.New("E1 / Fig 2: full loop unrolling",
		"N", "loops before", "ops before", "loops after", "ops after", "replicas ok")
	for _, n := range []int{4, 8, 16, 32} {
		p := parser.MustParse("fig2", fig2Source(n))
		before := ir.CloneProgram(p)
		if _, err := transform.UnrollFull(nil, 0).Run(p); err != nil {
			return nil, err
		}
		lb, la := ir.CountLoops(before.Main()), ir.CountLoops(p.Main())
		ob, oa := ir.CountOps(before.Main()), ir.CountOps(p.Main())
		ok := la == 0 && oa >= n*2
		t.Add(n, lb, ob, la, oa, ok)
		if !ok {
			return t, fmt.Errorf("E1: unrolling failed for N=%d", n)
		}
	}
	return t, nil
}

// E2Fig03ConstPropParallel measures Fig 3: after unroll + constant
// propagation the index variable disappears, the dataflow is two levels
// deep, and with unlimited resources everything executes in one cycle —
// the paper's "all Op1 in parallel followed by all Op2".
func E2Fig03ConstPropParallel() (*report.Table, error) {
	t := report.New("E2 / Fig 3: index elimination and parallel execution",
		"N", "baseline cycles", "spark cycles", "dataflow depth", "index gone")
	for _, n := range []int{4, 8, 16, 32} {
		src := fig2Source(n)
		base, err := core.Synthesize(parser.MustParse("fig2", src),
			core.Options{Preset: core.ClassicalASIC})
		if err != nil {
			return nil, err
		}
		// Actual baseline latency: simulate one activation.
		baseCycles, err := simulatedCycles(base, 1)
		if err != nil {
			return nil, err
		}
		spark, err := core.Synthesize(parser.MustParse("fig2", src),
			core.Options{Preset: core.MicroprocessorBlock})
		if err != nil {
			return nil, err
		}
		depth := spark.Schedule.Deps.CriticalPathLength()
		idxGone := spark.Program.Main().Lookup("i") == nil
		t.Add(n, baseCycles, spark.Cycles, depth, idxGone)
		if spark.Cycles != 1 || !idxGone {
			return t, fmt.Errorf("E2: N=%d spark=%d cycles idxGone=%v", n, spark.Cycles, idxGone)
		}
		if baseCycles <= spark.Cycles {
			return t, fmt.Errorf("E2: baseline (%d) not slower than spark (%d)", baseCycles, spark.Cycles)
		}
	}
	return t, nil
}

// fig4Source is the exact listing of paper Fig 4.
const fig4Source = `
uint8 a;
uint8 b;
uint8 c;
uint8 d;
uint8 e;
bool cond;
uint8 f;
void main() {
  uint8 t1;
  uint8 t2;
  uint8 t3;
  t1 = a + b;
  if (cond) {
    t2 = t1;
    t3 = c + d;
  } else {
    t2 = e;
    t3 = c - d;
  }
  f = t2 + t3;
}
`

// E3Fig04Chaining measures chaining across a conditional boundary: the
// six operations of Fig 4 pack into one cycle, with multiplexers steering
// the conditional values into Op6 — and the critical path is the chained
// add → mux → add, not the sum of all operations.
func E3Fig04Chaining() (*report.Table, error) {
	p := parser.MustParse("fig4", fig4Source)
	res, err := core.Synthesize(p, core.Options{Preset: core.MicroprocessorBlock})
	if err != nil {
		return nil, err
	}
	if err := core.Verify(res, 40, 4); err != nil {
		return nil, err
	}
	m := delay.Default()
	chainBound := 2*m.BinOpDelay(ir.OpAdd, ir.U8) + 2*m.MuxDelay(2) + m.RegisterSetup() +
		m.BinOpDelay(ir.OpEq, ir.Bool)
	sumAll := 4*m.BinOpDelay(ir.OpAdd, ir.U8) + 2*m.MuxDelay(2) + m.RegisterSetup()
	t := report.New("E3 / Fig 4: operation chaining across conditional boundaries",
		"metric", "value")
	t.Add("cycles", res.Cycles)
	t.Add("muxes", res.Stats.Muxes)
	t.Add("critical path (gu)", res.Stats.CriticalPath)
	t.Add("chained bound (gu)", chainBound)
	t.Add("serial sum (gu)", sumAll)
	if res.Cycles != 1 {
		return t, fmt.Errorf("E3: %d cycles, want 1", res.Cycles)
	}
	if res.Stats.Muxes < 1 {
		return t, fmt.Errorf("E3: no muxes generated")
	}
	if res.Stats.CriticalPath > chainBound+0.01 {
		return t, fmt.Errorf("E3: critical path %.1f exceeds chained bound %.1f",
			res.Stats.CriticalPath, chainBound)
	}
	return t, nil
}

// fig5Source reproduces the HTG of paper Fig 5: a two-level conditional
// writing o1 on three trails, then operation 4 reading o1.
const fig5Source = `
uint8 a;
uint8 b;
uint8 c;
uint8 d;
bool cond1;
bool cond2;
uint8 o2;
void main() {
  uint8 o1;
  if (cond1) {
    if (cond2) {
      o1 = a;
    } else {
      o1 = b;
    }
  } else {
    o1 = c;
  }
  o2 = o1 + d;
}
`

// E4Fig05Trails checks the chaining-trail enumeration of §3.1.1: three
// trails lead back from the block of operation 4, and the whole graph
// still schedules into a single cycle.
func E4Fig05Trails() (*report.Table, error) {
	p := parser.MustParse("fig5", fig5Source)
	work := ir.CloneProgram(p)
	if _, err := transform.Inline(nil).Run(work); err != nil {
		return nil, err
	}
	g, err := htg.Lower(work, work.Main())
	if err != nil {
		return nil, err
	}
	// Find the block holding the o2 computation (reads o1, writes o2).
	var target *htg.BasicBlock
	for _, bb := range g.Blocks {
		for _, op := range bb.Ops {
			if w := op.Writes(); w != nil && w.Name == "o2" {
				target = bb
			}
		}
	}
	if target == nil {
		return nil, fmt.Errorf("E4: no block computes o2")
	}
	trails := g.Trails(target)
	t := report.New("E4 / Fig 5: chaining trails", "metric", "value")
	t.Add("trails to o2 block", len(trails))
	for i, tr := range trails {
		t.Add(fmt.Sprintf("trail %d length", i+1), len(tr))
	}
	res, err := core.Synthesize(p, core.Options{Preset: core.MicroprocessorBlock})
	if err != nil {
		return nil, err
	}
	t.Add("cycles", res.Cycles)
	if len(trails) != 3 {
		return t, fmt.Errorf("E4: %d trails, want 3 (paper Fig 5)", len(trails))
	}
	if res.Cycles != 1 {
		return t, fmt.Errorf("E4: %d cycles, want 1", res.Cycles)
	}
	if err := core.Verify(res, 30, 5); err != nil {
		return t, err
	}
	return t, nil
}

const fig6Source = `
uint8 a;
uint8 b;
uint8 d;
uint8 e;
bool cond;
uint8 o2;
void main() {
  uint8 o1;
  o1 = a + b;
  if (cond) {
    o1 = d;
  }
  o2 = o1 + e;
}
`

const fig7Source = `
uint8 d;
uint8 b;
bool cond;
uint8 o2;
void main() {
  uint8 o1;
  if (cond) {
    o1 = d;
  }
  o2 = o1 + b;
}
`

// E5E6WireVariables measures §3.1.2: values merged across conditional
// trails become wire-variables (combinational nets through multiplexers),
// not registers, in the single-cycle design.
func E5E6WireVariables() (*report.Table, error) {
	t := report.New("E5-E6 / Figs 6-7: wire-variables and conditional merges",
		"design", "cycles", "wire vars", "reg vars", "muxes", "verified")
	for name, src := range map[string]string{"fig6": fig6Source, "fig7": fig7Source} {
		p := parser.MustParse(name, src)
		res, err := core.Synthesize(p, core.Options{Preset: core.MicroprocessorBlock})
		if err != nil {
			return nil, err
		}
		if err := core.Verify(res, 40, 6); err != nil {
			return t, fmt.Errorf("%s: %w", name, err)
		}
		br := bind.Summarize(res.Schedule)
		t.Add(name, res.Cycles, br.WireVars, br.RegisterVars, res.Stats.Muxes, true)
		if res.Cycles != 1 {
			return t, fmt.Errorf("E5/E6 %s: %d cycles, want 1", name, res.Cycles)
		}
		if br.WireVars == 0 {
			return t, fmt.Errorf("E5/E6 %s: no wire-variables created", name)
		}
		if res.Stats.Muxes == 0 {
			return t, fmt.Errorf("E5/E6 %s: no conditional merge muxes", name)
		}
	}
	return t, nil
}

// E7Fig10Behavior validates the Fig 10 behavioral description against the
// reference software decoder on random byte streams.
func E7Fig10Behavior(trials int) (*report.Table, error) {
	t := report.New("E7 / Figs 8-10: ILD behavioral description vs reference decoder",
		"n", "trials", "mismatches")
	rng := rand.New(rand.NewSource(7))
	for _, n := range []int{4, 8, 16} {
		p := ild.Program(n)
		in := interp.New(p)
		mismatches := 0
		for trial := 0; trial < trials; trial++ {
			buf := ild.RandomBuffer(rng, n)
			env := interp.NewEnv(p)
			if err := ild.LoadBuffer(p, env, buf); err != nil {
				return nil, err
			}
			if _, err := in.RunMain(env); err != nil {
				return nil, err
			}
			want, _ := ild.Decode(buf, n)
			if _, ok := ild.MarksEqual(ild.ReadMarks(p, env), want); !ok {
				mismatches++
			}
		}
		t.Add(n, trials, mismatches)
		if mismatches != 0 {
			return t, fmt.Errorf("E7: n=%d has %d mismatches", n, mismatches)
		}
	}
	return t, nil
}

// E8toE11Stages walks the paper's Fig 11→14 transformation sequence on
// the ILD, reporting program shape after each coordinated stage and
// checking each figure's structural claim.
func E8toE11Stages(n int) (*report.Table, error) {
	t := report.New(fmt.Sprintf("E8-E11 / Figs 11-14: ILD transformation stages (n=%d)", n),
		"stage", "stmts", "ops", "ifs", "loops", "calls", "figure claim")
	p := ild.Program(n)
	orig := ir.CloneProgram(p)
	snap := func(stage, claim string) {
		m := p.Main()
		t.Add(stage, ir.CountStmts(m), ir.CountOps(m), ir.CountIfs(m),
			ir.CountLoops(m), ir.CountCalls(m), claim)
	}
	snap("input (Fig 10)", "guarded loop, calls")

	if _, err := transform.Inline(nil).Run(p); err != nil {
		return nil, err
	}
	if _, err := transform.DropUncalledFuncs().Run(p); err != nil {
		return nil, err
	}
	snap("inline (Fig 12)", "0 calls")
	if c := ir.CountCalls(p.Main()); c != 0 {
		return t, fmt.Errorf("E9/Fig12: %d calls remain", c)
	}

	if _, err := transform.Speculate().Run(p); err != nil {
		return nil, err
	}
	snap("speculate (Fig 11)", "branches hold only copies")
	if err := branchesOnlyCopies(p.Main()); err != nil {
		return t, fmt.Errorf("E8/Fig11: %w", err)
	}

	if _, err := transform.UnrollFull(nil, 0).Run(p); err != nil {
		return nil, err
	}
	snap("unroll (Fig 13)", "0 loops")
	if l := ir.CountLoops(p.Main()); l != 0 {
		return t, fmt.Errorf("E10/Fig13: %d loops remain", l)
	}

	pl := &pass.Pipeline{Passes: []transform.Pass{
		transform.ConstProp(), transform.ConstFold(),
		transform.CopyProp(), transform.CSE(), transform.DCE(),
	}, MaxRounds: 6}
	if err := pl.Run(p); err != nil {
		return nil, err
	}
	snap("const-prop + cleanup (Fig 14)", "index eliminated")
	if v := p.Main().Lookup("i"); v != nil {
		return t, fmt.Errorf("E11/Fig14: loop index survived")
	}
	nonConst := 0
	ir.WalkStmts(p.Main().Body, func(s ir.Stmt) bool {
		ir.WalkStmtExprs(s, func(e ir.Expr) {
			ir.WalkExpr(e, func(x ir.Expr) bool {
				if ix, ok := x.(*ir.IndexExpr); ok {
					if _, isC := ix.Index.(*ir.ConstExpr); !isC {
						nonConst++
					}
				}
				return true
			})
		})
		return true
	})
	if nonConst != 0 {
		return t, fmt.Errorf("E11/Fig14: %d dynamic array indices survive", nonConst)
	}

	// The transformed program must still match the original.
	if err := equivalentPrograms(orig, p, 25); err != nil {
		return t, fmt.Errorf("E8-E11: transformed ILD diverges: %w", err)
	}
	return t, nil
}

// branchesOnlyCopies verifies the Fig 11 shape: after speculation,
// conditional branches contain only the commit forms — variable copies and
// constants, array stores, nested conditionals of the same shape — plus
// the one computation speculation legitimately cannot hoist: the ripple
// accumulation "X = X + step" whose value feeds later guards (the Fig 15
// Ripple Control Logic; the paper's own Figs 12–15 keep
// "NextStartByte += len" conditional). Crucially, no array reads and no
// other operators survive inside branches: all data calculation runs
// speculatively up front.
func branchesOnlyCopies(f *ir.Func) error {
	isRippleUpdate := func(a *ir.AssignStmt) bool {
		lv, ok := a.LHS.(*ir.VarExpr)
		if !ok {
			return false
		}
		rhs := a.RHS
		if c, isCast := rhs.(*ir.CastExpr); isCast {
			rhs = c.X
		}
		bin, ok := rhs.(*ir.BinExpr)
		if !ok || bin.Op != ir.OpAdd {
			return false
		}
		reads := map[*ir.Var]bool{}
		ir.VarsRead(bin, reads)
		if !reads[lv.V] {
			return false
		}
		// Both operands must be plain values (no nested computation,
		// no array reads).
		plain := func(e ir.Expr) bool {
			switch x := e.(type) {
			case *ir.VarExpr, *ir.ConstExpr:
				return true
			case *ir.CastExpr:
				switch x.X.(type) {
				case *ir.VarExpr, *ir.ConstExpr:
					return true
				}
			}
			return false
		}
		return plain(bin.L) && plain(bin.R)
	}
	var check func(b *ir.Block) error
	check = func(b *ir.Block) error {
		for _, s := range b.Stmts {
			switch x := s.(type) {
			case *ir.AssignStmt:
				if ix, isIdx := x.LHS.(*ir.IndexExpr); isIdx {
					// Conditional array store stays; its value and
					// index must be plain.
					if _, isC := ix.Index.(*ir.ConstExpr); !isC {
						if _, isV := ix.Index.(*ir.VarExpr); !isV {
							return fmt.Errorf("computed store index in branch: %s", ir.PrintStmt(s))
						}
					}
					continue
				}
				switch x.RHS.(type) {
				case *ir.VarExpr, *ir.ConstExpr:
				default:
					if !isRippleUpdate(x) {
						return fmt.Errorf("non-copy in branch: %s", ir.PrintStmt(s))
					}
				}
			case *ir.IfStmt:
				if err := check(x.Then); err != nil {
					return err
				}
				if x.Else != nil {
					if err := check(x.Else); err != nil {
						return err
					}
				}
			default:
				return fmt.Errorf("unexpected %T in branch", s)
			}
		}
		return nil
	}
	var err error
	ir.WalkStmts(f.Body, func(s ir.Stmt) bool {
		if ifs, ok := s.(*ir.IfStmt); ok && err == nil {
			if e := check(ifs.Then); e != nil {
				err = e
			}
			if ifs.Else != nil && err == nil {
				if e := check(ifs.Else); e != nil {
					err = e
				}
			}
			return false
		}
		return err == nil
	})
	return err
}
