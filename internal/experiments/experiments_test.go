package experiments

import "testing"

func TestAllExperiments(t *testing.T) {
	type exp struct {
		name string
		fn   func() (interface{ String() string }, error)
	}
	run := func(name string, tab interface{ String() string }, err error) {
		if err != nil {
			t.Fatalf("%s: %v\n%s", name, err, tab)
		}
		t.Logf("%s:\n%s", name, tab)
	}
	tb, err := E1Fig02Unroll()
	run("E1", tb, err)
	tb, err = E2Fig03ConstPropParallel()
	run("E2", tb, err)
	tb, err = E3Fig04Chaining()
	run("E3", tb, err)
	tb, err = E4Fig05Trails()
	run("E4", tb, err)
	tb, err = E5E6WireVariables()
	run("E5E6", tb, err)
	tb, err = E7Fig10Behavior(10)
	run("E7", tb, err)
	tb, err = E8toE11Stages(8)
	run("E8-E11", tb, err)
	tb, err = E12Fig15SingleCycle([]int{4, 8, 16}, 5)
	run("E12", tb, err)
	tb, err = E13Baseline([]int{4, 8})
	run("E13", tb, err)
	tb, err = E14Fig16Natural(8)
	run("E14", tb, err)
	tb, err = Ablations(8)
	run("Ablations", tb, err)
	tb, err = E15Exploration(0)
	run("E15", tb, err)
	tb, err = E16PassOrder(8, 0)
	run("E16", tb, err)
	tb, err = E17AdaptiveSearch(8, 0)
	run("E17", tb, err)
}
