package experiments

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"sparkgo/internal/core"
	"sparkgo/internal/explore"
	"sparkgo/internal/report"
)

// E15Exploration runs the design-space exploration engine over the full
// (preset × toggle × unroll bound × buffer size) grid — the search loop
// the paper positions Spark's fast coordinated transformations for — and
// reports the latency/area Pareto frontier plus engine statistics.
// workers <= 0 uses one worker per CPU.
func E15Exploration(workers int) (*report.Table, error) {
	space := explore.Grid([]int{4, 8, 16, 32}, explore.Variants(), []int{0, 8}, true)
	eng := &explore.Engine{Workers: workers, SimTrials: 1}
	pts := eng.Sweep(space)

	t := report.New(fmt.Sprintf("E15: design-space exploration (%d configs)", len(space)),
		"point", "config", "latency", "crit path (gu)", "area")
	failed := 0
	for i, p := range pts {
		if p.Err != "" {
			failed++
			if failed == 1 {
				t.Add("FAILED", space[i].String(), 0, 0.0, 0.0)
			}
		}
	}
	front := explore.Frontier(pts)
	for _, p := range front {
		t.Add("frontier", p.Config.String(), p.Latency, p.CritPath, p.Area)
	}
	best := explore.BestCycles(pts)
	smallest := explore.BestArea(pts)
	if best != nil {
		t.Add("best-cycle", best.Config.String(), best.Latency, best.CritPath, best.Area)
	}
	if smallest != nil {
		t.Add("best-area", smallest.Config.String(), smallest.Latency, smallest.CritPath, smallest.Area)
	}
	hits, misses := eng.CacheStats()
	t.Add("cache", fmt.Sprintf("hits=%d misses=%d", hits, misses), len(space), 0.0, 0.0)

	if failed > 0 {
		return t, fmt.Errorf("E15: %d of %d configs failed to synthesize", failed, len(space))
	}
	if len(space) < 48 {
		return t, fmt.Errorf("E15: swept only %d configs, want >= 48", len(space))
	}
	if best == nil || best.Latency != 1 {
		return t, fmt.Errorf("E15: no 1-cycle design on the frontier")
	}
	if best.Config.Preset != core.MicroprocessorBlock {
		return t, fmt.Errorf("E15: best-cycle design not from the coordinated regime")
	}
	if smallest.Area >= best.Area {
		return t, fmt.Errorf("E15: no latency/area trade-off: best-area %.1f >= best-cycle area %.1f",
			smallest.Area, best.Area)
	}
	if len(front) < 2 {
		return t, fmt.Errorf("E15: frontier collapsed to %d point(s); no latency/area trade-off found",
			len(front))
	}
	return t, nil
}

// E16PassOrder sweeps the pass-order axis (the ROADMAP follow-up to
// E15): every ordering of the four parallelizing "motion" passes —
// speculation, unrolling, constant propagation, CSE — embedded in the
// fixed inline prologue and cleanup epilogue, and reports which
// orderings reach the 1-cycle design and at what area and fixpoint
// cost. The paper's claim is that the transformations pay off in
// coordination, not in any one magic order; the fixpoint pipeline
// should therefore reach the single-cycle design from every ordering,
// with order showing up as area/rounds variation rather than a latency
// cliff. workers <= 0 uses one worker per CPU.
func E16PassOrder(n, workers int) (*report.Table, error) {
	motions := []string{"speculate", "unroll all full", "constprop", "cse"}
	var orders [][]string
	for _, m := range explore.PermutePasses(motions, 0) {
		full := append([]string{"inline", "drop-uncalled"}, m...)
		full = append(full, "constfold", "copyprop", "dce")
		orders = append(orders, full)
	}
	space := explore.PassOrderGrid(n, orders)
	eng := &explore.Engine{Workers: workers}
	pts := eng.Sweep(space)

	idx := make([]int, len(pts))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		pa, pb := pts[idx[a]], pts[idx[b]]
		if pa.Latency != pb.Latency {
			return pa.Latency < pb.Latency
		}
		if pa.Area != pb.Area {
			return pa.Area < pb.Area
		}
		if pa.Rounds != pb.Rounds {
			return pa.Rounds < pb.Rounds
		}
		return idx[a] < idx[b]
	})

	t := report.New(fmt.Sprintf("E16: pass-order sweep (%d orderings, n=%d)", len(space), n),
		"rank", "motion-pass order", "latency", "area", "rounds")
	oneCycle, failed := 0, 0
	for rank, i := range idx {
		p := pts[i]
		if p.Err != "" {
			failed++
			t.Add(rank+1, strings.Join(orders[i][2:2+len(motions)], " → "), "FAILED", 0.0, 0)
			continue
		}
		if p.Latency == 1 {
			oneCycle++
		}
		t.Add(rank+1, strings.Join(orders[i][2:2+len(motions)], " → "),
			p.Latency, p.Area, p.Rounds)
	}
	if failed > 0 {
		return t, fmt.Errorf("E16: %d of %d orderings failed to synthesize", failed, len(space))
	}
	if best := pts[idx[0]]; best.Latency != 1 {
		return t, fmt.Errorf("E16: no ordering reached the 1-cycle design (best: %d cycles)",
			best.Latency)
	}
	if oneCycle == 0 {
		return t, fmt.Errorf("E16: zero single-cycle orderings")
	}
	return t, nil
}

// E17AdaptiveSearch pits the adaptive search strategies against the
// exhaustive grid they replace (the ROADMAP follow-up to E15/E16):
// first sweep the full explicit-pass-list grid — every ordering of the
// four motion passes × both unroll bounds × the chaining switch — then
// give hill climbing and the genetic algorithm a quarter of that
// evaluation budget over a strictly larger space (the same axes plus
// per-motion knockouts) and require both to reach the grid's best
// latency. The prefix-biased neighbor generation keeps candidates on
// shared frontend artifacts, which Engine.Stats must show as frontend
// memory hits: the PR 2 stage cache acting as the search's incremental
// evaluator. workers <= 0 uses one worker per CPU.
func E17AdaptiveSearch(n, workers int) (*report.Table, error) {
	sp := explore.DefaultSpace(n)

	// The exhaustive baseline over the ordering × unroll × chaining
	// axes, lowered by the same Space the strategies search.
	grid := sp.OrderGrid()
	gridEng := &explore.Engine{Workers: workers}
	gridPts := gridEng.Sweep(grid)
	gridBest := explore.BestCycles(gridPts)

	t := report.New(fmt.Sprintf("E17: adaptive search vs. exhaustive grid (n=%d)", n),
		"searcher", "evaluations", "best latency", "best area", "frontend mem hits", "improvements")
	if gridBest == nil {
		return t, fmt.Errorf("E17: every grid config failed")
	}
	t.Add("grid (exhaustive)", len(grid), gridBest.Latency, gridBest.Area, "", "")

	budget := explore.Budget{MaxEvaluations: len(grid) / 4}
	obj := explore.WeightedObjective(1000, 1)
	for _, st := range []explore.Strategy{explore.HillClimb{}, explore.Genetic{}} {
		eng := &explore.Engine{Workers: workers}
		res := st.Search(eng, sp, obj, budget, 1)
		stats := eng.Stats()
		t.Add(res.Strategy, res.Evaluations, res.Best.Latency, res.Best.Area,
			stats.FrontendMemHits, len(res.Trajectory))
		if math.IsInf(res.BestScore, 1) || res.Best.Err != "" {
			return t, fmt.Errorf("E17: %s found no successful design (best: %+v)",
				res.Strategy, res.Best)
		}
		if res.Best.Latency != gridBest.Latency {
			return t, fmt.Errorf("E17: %s reached %d-cycle latency, grid best is %d",
				res.Strategy, res.Best.Latency, gridBest.Latency)
		}
		if res.Evaluations*4 > len(grid) {
			return t, fmt.Errorf("E17: %s spent %d evaluations, over 25%% of the %d-config grid",
				res.Strategy, res.Evaluations, len(grid))
		}
		if stats.FrontendMemHits == 0 {
			return t, fmt.Errorf("E17: %s shared no frontend artifacts between candidates",
				res.Strategy)
		}
	}
	return t, nil
}
