package experiments

import (
	"fmt"

	"sparkgo/internal/core"
	"sparkgo/internal/explore"
	"sparkgo/internal/report"
)

// E15Exploration runs the design-space exploration engine over the full
// (preset × toggle × unroll bound × buffer size) grid — the search loop
// the paper positions Spark's fast coordinated transformations for — and
// reports the latency/area Pareto frontier plus engine statistics.
// workers <= 0 uses one worker per CPU.
func E15Exploration(workers int) (*report.Table, error) {
	space := explore.Grid([]int{4, 8, 16, 32}, explore.Variants(), []int{0, 8}, true)
	eng := &explore.Engine{Workers: workers, SimTrials: 1}
	pts := eng.Sweep(space)

	t := report.New(fmt.Sprintf("E15: design-space exploration (%d configs)", len(space)),
		"point", "config", "latency", "crit path (gu)", "area")
	failed := 0
	for i, p := range pts {
		if p.Err != "" {
			failed++
			if failed == 1 {
				t.Add("FAILED", space[i].String(), 0, 0.0, 0.0)
			}
		}
	}
	front := explore.Frontier(pts)
	for _, p := range front {
		t.Add("frontier", p.Config.String(), p.Latency, p.CritPath, p.Area)
	}
	best := explore.BestCycles(pts)
	smallest := explore.BestArea(pts)
	if best != nil {
		t.Add("best-cycle", best.Config.String(), best.Latency, best.CritPath, best.Area)
	}
	if smallest != nil {
		t.Add("best-area", smallest.Config.String(), smallest.Latency, smallest.CritPath, smallest.Area)
	}
	hits, misses := eng.CacheStats()
	t.Add("cache", fmt.Sprintf("hits=%d misses=%d", hits, misses), len(space), 0.0, 0.0)

	if failed > 0 {
		return t, fmt.Errorf("E15: %d of %d configs failed to synthesize", failed, len(space))
	}
	if len(space) < 48 {
		return t, fmt.Errorf("E15: swept only %d configs, want >= 48", len(space))
	}
	if best == nil || best.Latency != 1 {
		return t, fmt.Errorf("E15: no 1-cycle design on the frontier")
	}
	if best.Config.Preset != core.MicroprocessorBlock {
		return t, fmt.Errorf("E15: best-cycle design not from the coordinated regime")
	}
	if smallest.Area >= best.Area {
		return t, fmt.Errorf("E15: no latency/area trade-off: best-area %.1f >= best-cycle area %.1f",
			smallest.Area, best.Area)
	}
	if len(front) < 2 {
		return t, fmt.Errorf("E15: frontier collapsed to %d point(s); no latency/area trade-off found",
			len(front))
	}
	return t, nil
}
