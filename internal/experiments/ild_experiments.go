package experiments

import (
	"fmt"
	"math/rand"

	"sparkgo/internal/bind"
	"sparkgo/internal/core"
	"sparkgo/internal/htg"
	"sparkgo/internal/ild"
	"sparkgo/internal/interp"
	"sparkgo/internal/ir"
	"sparkgo/internal/report"
	"sparkgo/internal/rtlsim"
	"sparkgo/internal/testutil"
)

// E12Fig15SingleCycle synthesizes the single-cycle ILD across buffer sizes
// and verifies the architecture of Fig 15(b): one state, RTL equivalent to
// the reference decoder, data-calculation depth roughly constant in n
// while the ripple control logic grows with n and dominates the cycle
// time.
func E12Fig15SingleCycle(sizes []int, trials int) (*report.Table, error) {
	t := report.New("E12 / Fig 15: single-cycle ILD architecture",
		"n", "cycles", "crit path (gu)", "data-calc (gu)", "ripple (gu)",
		"area", "muxes", "FUs", "wire vars", "verified")
	rng := rand.New(rand.NewSource(15))
	var lastRipple float64
	var firstData float64
	for i, n := range sizes {
		p := ild.Program(n)
		res, err := core.Synthesize(p, core.Options{Preset: core.MicroprocessorBlock})
		if err != nil {
			return nil, err
		}
		if res.Cycles != 1 {
			return t, fmt.Errorf("E12: n=%d got %d cycles, want 1", n, res.Cycles)
		}
		dataDepth, rippleDepth := ildStageDepths(res)
		verified, err := verifyILD(res, n, trials, rng)
		if err != nil {
			return t, err
		}
		br := bind.Summarize(res.Schedule)
		t.Add(n, res.Cycles, res.Stats.CriticalPath, dataDepth, rippleDepth,
			res.Stats.Area, res.Stats.Muxes, res.Stats.FUs, br.WireVars, verified)
		if !verified {
			return t, fmt.Errorf("E12: n=%d RTL diverges from reference", n)
		}
		if i == 0 {
			firstData = dataDepth
		}
		if i == len(sizes)-1 {
			// Shape checks: ripple grows with n; data-calc roughly flat.
			if rippleDepth <= lastRipple {
				return t, fmt.Errorf("E12: ripple depth did not grow (%.1f → %.1f)",
					lastRipple, rippleDepth)
			}
			if dataDepth > firstData*2 {
				return t, fmt.Errorf("E12: data-calc depth grew too much (%.1f → %.1f)",
					firstData, dataDepth)
			}
		}
		lastRipple = rippleDepth
	}
	return t, nil
}

// ildStageDepths extracts the Fig 15(b) stage boundaries from the
// schedule: the completion time of the speculative data-calculation +
// per-byte control-logic stage (everything computed unconditionally:
// lookups, length contributions, per-window length selection) versus the
// ripple control stage (everything tied to NextStartByte: the guards, the
// guarded Mark/Len commits, and the next-start accumulation). The paper's
// architecture claim is that the first is essentially independent of the
// buffer size n while the ripple grows with n.
func ildStageDepths(res *core.Result) (dataCalc, ripple float64) {
	isRipple := func(op *htg.Op) bool {
		if len(op.BB.Guard) > 0 {
			return true
		}
		if w := op.Writes(); w != nil && w.Name == "NextStartByte" {
			return true
		}
		for _, v := range op.Reads() {
			if v.Name == "NextStartByte" {
				return true
			}
		}
		return false
	}
	for _, op := range res.Graph.AllOps() {
		fin := res.Schedule.Finish[op]
		if isRipple(op) {
			if fin > ripple {
				ripple = fin
			}
		} else if fin > dataCalc {
			dataCalc = fin
		}
	}
	return dataCalc, ripple
}

// verifyILD co-simulates the synthesized ILD against the reference
// decoder.
func verifyILD(res *core.Result, n, trials int, rng *rand.Rand) (bool, error) {
	for trial := 0; trial < trials; trial++ {
		buf := ild.RandomBuffer(rng, n)
		sim := rtlsim.New(res.Module)
		vals := make([]int64, n+ild.LookAhead)
		for i, b := range buf {
			vals[i] = int64(b)
		}
		if err := sim.SetArray("B", vals); err != nil {
			return false, err
		}
		if _, err := sim.Run(res.Cycles*4 + 8); err != nil {
			return false, err
		}
		wantMarks, wantLens := ild.Decode(buf, n)
		marks, err := sim.Array("Mark")
		if err != nil {
			return false, err
		}
		lens, err := sim.Array("Len")
		if err != nil {
			return false, err
		}
		for i := range wantMarks {
			wm := int64(0)
			if wantMarks[i] {
				wm = 1
			}
			if marks[i] != wm {
				return false, nil
			}
			if wantMarks[i] && lens[i] != int64(wantLens[i]) {
				return false, nil
			}
		}
	}
	return true, nil
}

// E13Baseline contrasts the paper's regime against classical HLS on the
// ILD: the baseline needs many cycles per buffer (a loop FSM) while the
// coordinated flow needs one; the price is area.
func E13Baseline(sizes []int) (*report.Table, error) {
	t := report.New("E13 / Fig 1 + §1: classical HLS baseline vs coordinated flow",
		"n", "baseline cycles/buffer", "baseline states", "spark cycles", "baseline area", "spark area", "area ratio")
	for _, n := range sizes {
		p := ild.Program(n)
		base, err := core.Synthesize(p, core.Options{Preset: core.ClassicalASIC})
		if err != nil {
			return nil, err
		}
		baseCycles, err := simulatedCycles(base, 3)
		if err != nil {
			return nil, err
		}
		spark, err := core.Synthesize(p, core.Options{Preset: core.MicroprocessorBlock})
		if err != nil {
			return nil, err
		}
		ratio := spark.Stats.Area / base.Stats.Area
		t.Add(n, baseCycles, base.Cycles, spark.Cycles,
			base.Stats.Area, spark.Stats.Area, ratio)
		if spark.Cycles != 1 {
			return t, fmt.Errorf("E13: spark n=%d: %d cycles", n, spark.Cycles)
		}
		if baseCycles < n {
			return t, fmt.Errorf("E13: baseline n=%d finished in %d cycles (< n); not sequential",
				n, baseCycles)
		}
	}
	return t, nil
}

// simulatedCycles runs the synthesized design on random inputs and
// returns the maximum cycle count observed (the FSM latency per
// activation). Trials run batched on the compiled simulator, bounded by
// the schedule-derived watchdog.
func simulatedCycles(res *core.Result, trials int) (int, error) {
	rng := rand.New(rand.NewSource(23))
	envs := make([]*interp.Env, trials)
	for i := range envs {
		envs[i] = testutil.RandomEnv(res.Input, rng)
	}
	prog := rtlsim.Compile(res.Module)
	max := 0
	for _, lr := range prog.RunBatch(res.Input, envs, rtlsim.WatchdogCycles(res.Module.NumStates)) {
		if lr.Err != nil {
			return 0, lr.Err
		}
		if lr.Cycles > max {
			max = lr.Cycles
		}
	}
	return max, nil
}

// E14Fig16Natural synthesizes the natural while-form through the
// while→for normalization (the paper's future-work transformation) and
// checks it reaches the same single-cycle architecture.
func E14Fig16Natural(n int) (*report.Table, error) {
	t := report.New(fmt.Sprintf("E14 / Fig 16: natural description (n=%d)", n),
		"metric", "value")
	p := ild.NaturalProgram(n)
	res, err := core.Synthesize(p, core.Options{
		Preset: core.MicroprocessorBlock, NormalizeWhile: true,
	})
	if err != nil {
		return nil, err
	}
	normalized := false
	for _, st := range res.Stages {
		if st.Pass == "normalize-while" && st.Changed {
			normalized = true
		}
	}
	t.Add("normalize-while fired", normalized)
	t.Add("cycles", res.Cycles)
	t.Add("critical path (gu)", res.Stats.CriticalPath)
	if !normalized {
		return t, fmt.Errorf("E14: normalization did not fire")
	}
	if res.Cycles != 1 {
		return t, fmt.Errorf("E14: %d cycles, want 1", res.Cycles)
	}
	if err := core.Verify(res, 20, 14); err != nil {
		return t, err
	}
	t.Add("verified vs behavioral", true)
	return t, nil
}

// Ablations runs A1–A4 on the ILD: disabling each coordinated
// transformation breaks the single-cycle result or inflates the design,
// demonstrating the paper's thesis that the transformations only work in
// coordination.
func Ablations(n int) (*report.Table, error) {
	t := report.New(fmt.Sprintf("A1-A4: ablations on the ILD (n=%d)", n),
		"variant", "cycles/buffer", "states", "crit path (gu)", "area", "verified")
	variants := []struct {
		name string
		opt  core.Options
	}{
		{"full coordination", core.Options{}},
		{"A1 no speculation", core.Options{NoSpeculation: true}},
		{"A2 no unroll", core.Options{NoUnroll: true}},
		{"A3 no const-prop", core.Options{NoConstProp: true}},
		{"A4 no chaining", core.Options{NoChaining: true}},
	}
	var fullCycles int
	for i, v := range variants {
		p := ild.Program(n)
		res, err := core.Synthesize(p, v.opt)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", v.name, err)
		}
		cycles, err := simulatedCycles(res, 2)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", v.name, err)
		}
		if err := core.Verify(res, 10, 31); err != nil {
			return t, fmt.Errorf("%s: %w", v.name, err)
		}
		t.Add(v.name, cycles, res.Cycles, res.Stats.CriticalPath, res.Stats.Area, true)
		if i == 0 {
			fullCycles = cycles
			if cycles != 1 {
				return t, fmt.Errorf("full coordination: %d cycles, want 1", cycles)
			}
		}
		// A2 and A4 must cost cycles; A1/A3 may cost cycles or path.
		if v.opt.NoUnroll || v.opt.NoChaining {
			if cycles <= fullCycles {
				return t, fmt.Errorf("%s: expected more cycles than %d, got %d",
					v.name, fullCycles, cycles)
			}
		}
	}
	return t, nil
}

// equivalentPrograms cross-checks two ILD program versions by
// interpretation on shared random inputs.
func equivalentPrograms(a, b *ir.Program, trials int) error {
	return testutil.Equivalent(a, b, trials, 77)
}

// interpOnce is kept for the benchmarks: one behavioral decode.
func interpOnce(p *ir.Program, buf []byte) error {
	env := interp.NewEnv(p)
	if err := ild.LoadBuffer(p, env, buf); err != nil {
		return err
	}
	_, err := interp.New(p).RunMain(env)
	return err
}
