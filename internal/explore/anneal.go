package explore

import (
	"context"
	"math"
	"math/rand"
)

// SimulatedAnnealing is the classic Metropolis search over a Space: a
// single walker proposes one prefix-biased mutation per step (the same
// operator the genetic strategy uses, so deep pass-list positions
// mutate often and the head rarely — candidates keep sharing frontend
// prefixes with the incumbent), always accepts improvements, accepts
// uphill moves with probability exp(-Δ/T), and cools T geometrically.
// When the temperature floors out the walker reheats from a fresh
// random candidate, so an unbudgeted run keeps exploring until
// staleRounds consecutive anneals discover nothing new — the same
// convergence rule the other strategies follow.
//
// The zero value is a usable configuration; like HillClimb and Genetic,
// a run is deterministic under a seed, including its improvement
// trajectory.
type SimulatedAnnealing struct {
	// InitialTemp is the starting temperature in objective units
	// (0 = auto: calibrated to the identity candidate's score so early
	// uphill moves of a few percent are routinely accepted).
	InitialTemp float64
	// Cooling is the per-step temperature multiplier in (0, 1)
	// (0 = 0.92).
	Cooling float64
	// FloorRatio stops one anneal when T falls below
	// InitialTemp·FloorRatio (0 = 1e-3); the walker then reheats from a
	// random candidate.
	FloorRatio float64
}

func (a SimulatedAnnealing) Name() string { return "anneal" }

func (a SimulatedAnnealing) defaults() SimulatedAnnealing {
	d := a
	if d.Cooling <= 0 || d.Cooling >= 1 {
		d.Cooling = 0.92
	}
	if d.FloorRatio <= 0 || d.FloorRatio >= 1 {
		d.FloorRatio = 1e-3
	}
	return d
}

func (a SimulatedAnnealing) Search(eng *Engine, sp Space, obj Objective, b Budget, seed int64) Result {
	return a.SearchContext(context.Background(), eng, sp, obj, b, seed)
}

// SearchContext is Search under a context: cancellation stops the walk
// at the next evaluation boundary, keeping the trajectory found so far.
func (a SimulatedAnnealing) SearchContext(ctx context.Context, eng *Engine, sp Space, obj Objective, b Budget, seed int64) Result {
	a = a.defaults()
	rng := rand.New(rand.NewSource(seed))
	run := newSearchRun(ctx, eng, &sp, obj, b, a.Name(), seed)
	stale := 0
	for anneal := 0; !run.out() && stale < staleRounds; anneal++ {
		before := run.result.Evaluations
		cur := sp.identity()
		if anneal > 0 {
			cur = sp.random(rng)
		}
		curScore, ok := run.score(cur)
		if !ok {
			break
		}
		temp := a.InitialTemp
		if temp <= 0 {
			// Auto-calibrate to the starting score: a few-percent uphill
			// move is routinely accepted early on. A failed start (+Inf)
			// falls back to a unit temperature — every proposal from a
			// failure is then judged on its own score.
			temp = 1
			if !math.IsInf(curScore, 1) && curScore > 0 {
				temp = 0.05 * curScore
			}
		}
		floor := temp * a.FloorRatio
		for ; temp > floor && !run.out(); temp *= a.Cooling {
			next := cur.clone()
			sp.mutate(&next, rng)
			// Draw the acceptance threshold before scoring: the RNG
			// stream then advances identically whether the score comes
			// from the engine, the dedup table, or a warm cache, which
			// is what keeps trajectories seed-deterministic.
			coin := rng.Float64()
			nextScore, ok := run.score(next)
			if !ok {
				break // budget spent (or cancelled) mid-anneal
			}
			accept := false
			switch {
			case nextScore < curScore:
				// Strict improvement — including any finite score when
				// the incumbent is a +Inf failure.
				accept = true
			case math.IsInf(nextScore, 1):
				// Never walk onto a failure (exp(-Inf/T) = 0 anyway,
				// and when the incumbent is also +Inf the delta would
				// be NaN).
				accept = false
			default:
				// Uphill or equal between finite scores: Metropolis.
				accept = coin < math.Exp(-(nextScore-curScore)/temp)
			}
			if accept {
				cur, curScore = next, nextScore
			}
		}
		run.result.Restarts = anneal + 1
		run.round(anneal + 1)
		if run.result.Evaluations == before {
			stale++
		} else {
			stale = 0
		}
	}
	return run.result
}
