package explore_test

import (
	"math"
	"reflect"
	"testing"

	"sparkgo/internal/explore"
)

// annealBudget is the evaluation budget the determinism tests run
// under: enough for several temperature levels, small enough to stay
// fast.
const annealBudget = 24

func annealOnce(t *testing.T, eng *explore.Engine, seed int64) explore.Result {
	t.Helper()
	res := explore.SimulatedAnnealing{}.Search(eng, explore.DefaultSpace(4),
		explore.WeightedObjective(1000, 1), explore.Budget{MaxEvaluations: annealBudget}, seed)
	if math.IsInf(res.BestScore, 1) {
		t.Fatalf("anneal found no successful design: %+v", res)
	}
	if res.Best.Err != "" {
		t.Fatalf("anneal best point failed: %s", res.Best.Err)
	}
	return res
}

// TestAnnealDeterministicTrajectory is the seed-determinism contract
// every strategy carries, applied to simulated annealing: the same
// (space, objective, budget, seed) yields the same Result — including
// the improvement trajectory — on a cold engine, on a second cold
// engine, and on an engine whose caches are already warm from the first
// run (cache state must never leak into the search decisions).
func TestAnnealDeterministicTrajectory(t *testing.T) {
	engA := &explore.Engine{}
	a := annealOnce(t, engA, 7)
	b := annealOnce(t, &explore.Engine{}, 7)
	if !reflect.DeepEqual(a, b) {
		t.Errorf("same seed on two cold engines diverged:\n  a: %+v\n  b: %+v", a, b)
	}
	warm := annealOnce(t, engA, 7) // every evaluation now answered from cache
	if !reflect.DeepEqual(a, warm) {
		t.Errorf("warm-engine rerun diverged from the cold run:\n  cold: %+v\n  warm: %+v", a, warm)
	}
	if len(a.Trajectory) == 0 {
		t.Fatal("no improvement trajectory recorded")
	}
	last := a.Trajectory[len(a.Trajectory)-1]
	if last.Score != a.BestScore || last.Point.Config.String() != a.Best.Config.String() {
		t.Errorf("trajectory tail %+v does not match Best %+v/%v", last, a.Best, a.BestScore)
	}
	if a.Strategy != "anneal" {
		t.Errorf("strategy name %q, want anneal", a.Strategy)
	}

	c := annealOnce(t, &explore.Engine{}, 8)
	if reflect.DeepEqual(a.Trajectory, c.Trajectory) && a.Evaluations == c.Evaluations &&
		a.Revisits == c.Revisits {
		t.Error("different seeds produced byte-identical searches (suspicious RNG wiring)")
	}
}

// TestAnnealRespectsBudget pins the budget contract: distinct
// evaluations never exceed MaxEvaluations, and a budget-stopped run is
// flagged Exhausted.
func TestAnnealRespectsBudget(t *testing.T) {
	res := annealOnce(t, &explore.Engine{}, 3)
	if res.Evaluations > annealBudget {
		t.Errorf("evaluations %d exceed budget %d", res.Evaluations, annealBudget)
	}
	if !res.Exhausted {
		t.Errorf("budget-capped anneal not flagged Exhausted: %+v", res)
	}
	if res.Restarts == 0 {
		t.Errorf("anneal completed no outer rounds: %+v", res)
	}
}

// TestAnnealConvergesUnbudgeted: on a tiny space with no budget at all,
// the stale-round rule must terminate the walk rather than cycling
// through revisits forever.
func TestAnnealConvergesUnbudgeted(t *testing.T) {
	sp := explore.Space{
		Base:           explore.DefaultSpace(4).Base,
		Prologue:       []string{"inline", "drop-uncalled"},
		Motions:        []string{"speculate", "constprop"},
		Epilogue:       []string{"constfold", "copyprop", "dce"},
		ToggleChaining: true,
	}
	res := explore.SimulatedAnnealing{}.Search(&explore.Engine{}, sp,
		explore.LatencyObjective(), explore.Budget{}, 11)
	if res.Exhausted {
		t.Errorf("unbudgeted anneal reported a spent budget: %+v", res)
	}
	if math.IsInf(res.BestScore, 1) {
		t.Errorf("unbudgeted anneal found nothing: %+v", res)
	}
	if res.Revisits == 0 {
		t.Error("anneal never revisited a candidate on a tiny space (dedup not exercised)")
	}
}
