package explore

import (
	"fmt"
	"time"

	"sparkgo/internal/core"
	"sparkgo/internal/pass"
	"sparkgo/internal/wire"
)

// Wire codecs for the engine's disk blobs. A blob is a thin shell
// around a stage artifact's lossless encoding: the payload travels as
// opaque bytes (already wire-framed by its own codec), and the metadata
// the sweep reads — fingerprints, cycle counts, pass statistics — rides
// alongside so revival never has to decode the payload to answer for
// it. Integrity is the cache layer's job (a streamed SHA-256 over the
// whole blob), so decoding here is pure parsing, no verification.

// Blob format tags.
const (
	frontendBlobTag = "expfe/1"
	midendBlobTag   = "expme/1"
	backendBlobTag  = "expbe/1"
	pointTag        = "exppt/1"
)

func (b *frontendBlob) encode() []byte {
	e := wire.NewEncoder(256 + len(b.Program) + len(b.Source))
	e.Tag(frontendBlobTag)
	e.Bytes(b.Program)
	e.String(b.Source)
	e.String(b.Fingerprint)
	e.Int(b.Rounds)
	e.Uvarint(uint64(len(b.Stages)))
	for _, m := range b.Stages {
		e.String(m.Pass)
		e.Bool(m.Changed)
		e.Int(m.Stmts)
		e.Int(m.Ops)
		e.Int(m.Ifs)
		e.Int(m.Loops)
		e.Int(m.Calls)
		e.Int(m.Funcs)
	}
	e.Uvarint(uint64(len(b.PassStats)))
	for _, st := range b.PassStats {
		e.String(st.Name)
		e.Int(st.Runs)
		e.Int(st.Changes)
		e.Int64(int64(st.Duration))
	}
	return e.Data()
}

func decodeFrontendBlob(data []byte) (*frontendBlob, error) {
	d := wire.NewDecoder(data)
	d.Tag(frontendBlobTag)
	b := &frontendBlob{
		Program:     d.Bytes(),
		Source:      d.String(),
		Fingerprint: d.String(),
		Rounds:      d.Int(),
	}
	if n := d.Len(8); n > 0 { // a stage metric row is >= 8 bytes
		b.Stages = make([]core.StageMetrics, 0, n)
		for i := 0; i < n && d.Err() == nil; i++ {
			b.Stages = append(b.Stages, core.StageMetrics{
				Pass: d.String(), Changed: d.Bool(),
				Stmts: d.Int(), Ops: d.Int(), Ifs: d.Int(),
				Loops: d.Int(), Calls: d.Int(), Funcs: d.Int(),
			})
		}
	}
	if n := d.Len(4); n > 0 { // a pass stat is >= 4 bytes
		b.PassStats = make([]pass.Stat, 0, n)
		for i := 0; i < n && d.Err() == nil; i++ {
			b.PassStats = append(b.PassStats, pass.Stat{
				Name: d.String(), Runs: d.Int(), Changes: d.Int(),
				Duration: time.Duration(d.Int64()),
			})
		}
	}
	if err := d.Finish(); err != nil {
		return nil, fmt.Errorf("explore: frontend blob: %w", err)
	}
	return b, nil
}

func (b *midendBlob) encode() []byte {
	e := wire.NewEncoder(128 + len(b.Schedule))
	e.Tag(midendBlobTag)
	e.Bytes(b.Schedule)
	e.String(b.Fingerprint)
	e.Int(b.Cycles)
	return e.Data()
}

func decodeMidendBlob(data []byte) (*midendBlob, error) {
	d := wire.NewDecoder(data)
	d.Tag(midendBlobTag)
	b := &midendBlob{
		Schedule:    d.Bytes(),
		Fingerprint: d.String(),
		Cycles:      d.Int(),
	}
	if err := d.Finish(); err != nil {
		return nil, fmt.Errorf("explore: midend blob: %w", err)
	}
	return b, nil
}

func (b *backendBlob) encode() []byte {
	e := wire.NewEncoder(128 + len(b.Artifact))
	e.Tag(backendBlobTag)
	e.Bytes(b.Artifact)
	e.String(b.Fingerprint)
	return e.Data()
}

func decodeBackendBlob(data []byte) (*backendBlob, error) {
	d := wire.NewDecoder(data)
	d.Tag(backendBlobTag)
	b := &backendBlob{
		Artifact:    d.Bytes(),
		Fingerprint: d.String(),
	}
	if err := d.Finish(); err != nil {
		return nil, fmt.Errorf("explore: backend blob: %w", err)
	}
	return b, nil
}

// encodePoint serializes a fully evaluated point — config and metrics —
// for the point-level disk cache.
func encodePoint(pt *Point) []byte {
	e := wire.NewEncoder(256)
	e.Tag(pointTag)
	c := &pt.Config
	e.String(c.Source)
	e.Int(c.N)
	e.Int(int(c.Preset))
	e.Bool(c.NoSpeculation)
	e.Bool(c.NoUnroll)
	e.Bool(c.NoConstProp)
	e.Bool(c.NoCSE)
	e.Bool(c.NoChaining)
	e.Int(c.MaxUnroll)
	e.Uvarint(uint64(len(c.Passes)))
	for _, p := range c.Passes {
		e.String(p)
	}
	e.Int(c.Rounds)
	e.Float64(c.ReportNand)
	e.Int(pt.Cycles)
	e.Int(pt.Latency)
	e.Float64(pt.CritPath)
	e.Float64(pt.Area)
	e.Int(pt.Muxes)
	e.Int(pt.FUs)
	e.Int(pt.Rounds)
	e.String(pt.Err)
	return e.Data()
}

func decodePoint(data []byte) (*Point, error) {
	d := wire.NewDecoder(data)
	d.Tag(pointTag)
	pt := &Point{}
	c := &pt.Config
	c.Source = d.String()
	c.N = d.Int()
	c.Preset = core.Preset(d.Int())
	c.NoSpeculation = d.Bool()
	c.NoUnroll = d.Bool()
	c.NoConstProp = d.Bool()
	c.NoCSE = d.Bool()
	c.NoChaining = d.Bool()
	c.MaxUnroll = d.Int()
	if n := d.Len(1); n > 0 {
		c.Passes = make([]string, 0, n)
		for i := 0; i < n && d.Err() == nil; i++ {
			c.Passes = append(c.Passes, d.String())
		}
	}
	c.Rounds = d.Int()
	c.ReportNand = d.Float64()
	pt.Cycles = d.Int()
	pt.Latency = d.Int()
	pt.CritPath = d.Float64()
	pt.Area = d.Float64()
	pt.Muxes = d.Int()
	pt.FUs = d.Int()
	pt.Rounds = d.Int()
	pt.Err = d.String()
	if err := d.Finish(); err != nil {
		return nil, fmt.Errorf("explore: point: %w", err)
	}
	return pt, nil
}
