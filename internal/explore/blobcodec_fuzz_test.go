package explore

import (
	"testing"
	"time"

	"sparkgo/internal/core"
	"sparkgo/internal/pass"
)

// Fuzz targets for the engine's blob decoders. Blob decoding is pure
// parsing — integrity is the cache layer's streamed hash — so the only
// contract under arbitrary input is the decoder family's usual one: an
// error or a value, never a panic, allocation bounded by the bytes
// present. Seeds are real encodings plus truncations, bit flips, and an
// inflated length prefix.

func addBlobSeeds(f *testing.F, seed []byte) {
	f.Helper()
	f.Add(seed)
	if len(seed) > 4 {
		f.Add(seed[:len(seed)/2])
		flip := append([]byte(nil), seed...)
		flip[len(flip)/3] ^= 0x40
		f.Add(flip)
	}
	f.Add(append(append([]byte(nil), seed...), 0xde, 0xad))
	f.Add(append([]byte{0xff, 0xff, 0xff, 0xff, 0x7f}, seed...))
}

func FuzzDecodeFrontendBlob(f *testing.F) {
	blob := frontendBlob{
		Program:     []byte("not-a-real-program-encoding"),
		Source:      "ild:4",
		Fingerprint: "fp",
		Rounds:      2,
		Stages: []core.StageMetrics{
			{Pass: "cse", Changed: true, Stmts: 3, Ops: 7, Ifs: 1, Loops: 1, Calls: 0, Funcs: 2},
		},
		PassStats: []pass.Stat{{Name: "cse", Runs: 2, Changes: 1, Duration: time.Millisecond}},
	}
	addBlobSeeds(f, blob.encode())
	f.Fuzz(func(t *testing.T, data []byte) {
		b, err := decodeFrontendBlob(data)
		if err != nil {
			return
		}
		b.encode()
	})
}

func FuzzDecodeMidendBlob(f *testing.F) {
	blob := midendBlob{Schedule: []byte("schedule-bytes"), Fingerprint: "fp", Cycles: 9}
	addBlobSeeds(f, blob.encode())
	f.Fuzz(func(t *testing.T, data []byte) {
		b, err := decodeMidendBlob(data)
		if err != nil {
			return
		}
		b.encode()
	})
}

func FuzzDecodeBackendBlob(f *testing.F) {
	blob := backendBlob{Artifact: []byte("artifact-bytes"), Fingerprint: "fp"}
	addBlobSeeds(f, blob.encode())
	f.Fuzz(func(t *testing.T, data []byte) {
		b, err := decodeBackendBlob(data)
		if err != nil {
			return
		}
		b.encode()
	})
}

func FuzzDecodePoint(f *testing.F) {
	pt := Point{
		Config: Config{
			Source: "ild", N: 8, Preset: 1, NoUnroll: true,
			MaxUnroll: 4, Passes: []string{"cse", "constprop"},
			Rounds: 3, ReportNand: 1.5,
		},
		Cycles: 12, Latency: 14, CritPath: 3.25, Area: 100.5,
		Muxes: 4, FUs: 3, Rounds: 3,
	}
	addBlobSeeds(f, encodePoint(&pt))
	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := decodePoint(data)
		if err != nil {
			return
		}
		encodePoint(p)
	})
}
