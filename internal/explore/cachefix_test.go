package explore_test

import (
	"testing"

	"sparkgo/internal/core"
	"sparkgo/internal/explore"
	"sparkgo/internal/ild"
	"sparkgo/internal/ir"
)

// failingConfig is a config whose synthesis always fails (unknown pass
// spec), standing in for any failed evaluation on the full compute path:
// it passes source resolution, misses the disk cache, and dies in the
// frontend stage.
func failingConfig() explore.Config {
	return explore.Config{
		N: 3, Preset: core.MicroprocessorBlock,
		Passes: []string{"frobnicate"},
	}
}

// TestErrorPointsNotPersistedToDisk is the sticky-failure regression
// test: a failed synthesis must not be written to the disk cache, so a
// fresh engine on the same cache directory — a restarted process —
// recomputes instead of serving the old failure forever. On the
// pre-fix engine this fails with PointDiskHits=1, PointComputed=0.
func TestErrorPointsNotPersistedToDisk(t *testing.T) {
	dir := t.TempDir()
	bad := failingConfig()

	first := &explore.Engine{CacheDir: dir}
	if p := first.Evaluate(bad); p.Err == "" {
		t.Fatal("failing config evaluated without error")
	}
	if st := first.Stats(); st.PointComputed != 1 || st.DiskErrors != 0 {
		t.Fatalf("first engine stats: %+v", st)
	}

	restarted := &explore.Engine{CacheDir: dir}
	if p := restarted.Evaluate(bad); p.Err == "" {
		t.Fatal("failing config evaluated without error after restart")
	}
	st := restarted.Stats()
	if st.PointDiskHits != 0 {
		t.Fatalf("restarted engine served the failure from disk: %+v", st)
	}
	if st.PointComputed != 1 {
		t.Fatalf("restarted engine did not recompute the failed config: %+v", st)
	}

	// The disk cache must still work for the good config sharing the
	// same directory — only error points are excluded.
	good := bad
	good.Passes = nil
	if p := first.Evaluate(good); p.Err != "" {
		t.Fatalf("good config failed: %s", p.Err)
	}
	if p := (&explore.Engine{CacheDir: dir}).Evaluate(good); p.Err != "" {
		t.Fatalf("good config failed from disk: %s", p.Err)
	}
}

// TestErrorPointsRetriedInProcess: within one process, a failed
// evaluation must not be memoized forever by the point cache — a later
// Evaluate of the same config retries (concurrent callers still share a
// single in-flight attempt). On the pre-fix engine the second call is a
// memory hit and PointComputed stays 1.
func TestErrorPointsRetriedInProcess(t *testing.T) {
	eng := &explore.Engine{}
	bad := failingConfig()
	if p := eng.Evaluate(bad); p.Err == "" {
		t.Fatal("failing config evaluated without error")
	}
	if p := eng.Evaluate(bad); p.Err == "" {
		t.Fatal("failing config evaluated without error on retry")
	}
	if st := eng.Stats(); st.PointComputed != 2 {
		t.Fatalf("failed config retried %d times, want 2 computations: %+v",
			st.PointComputed, st)
	}

	// Success memoization is untouched: evaluating a good config twice
	// computes once.
	good := failingConfig()
	good.Passes = nil
	eng.Evaluate(good)
	eng.Evaluate(good)
	if st := eng.Stats(); st.PointComputed != 3 || st.PointMemHits != 1 {
		t.Fatalf("good-config memoization regressed: %+v", st)
	}
}

// TestTransientSourceFailureRetried: the no-sticky-errors rule covers
// source resolution too — a generator that fails once (the "source-
// resolution hiccup") must be re-run on the next Evaluate, not served
// from the sources memo forever.
func TestTransientSourceFailureRetried(t *testing.T) {
	calls := 0
	eng := &explore.Engine{Source: func(n int) *ir.Program {
		calls++
		if calls == 1 {
			return nil // transient failure
		}
		return ild.Program(n)
	}}
	c := explore.Config{N: 3, Preset: core.MicroprocessorBlock}
	if p := eng.Evaluate(c); p.Err == "" {
		t.Fatal("first evaluation should fail")
	}
	if p := eng.Evaluate(c); p.Err != "" {
		t.Fatalf("source not retried after transient failure: %s", p.Err)
	}
	if calls != 2 {
		t.Fatalf("generator ran %d times, want 2", calls)
	}
}
