package explore_test

import (
	"context"
	"testing"
	"time"

	"sparkgo/internal/explore"
)

// TestSweepContextPreCanceled: a sweep under an already-done context
// evaluates nothing, marks every point skipped, and touches no cache.
func TestSweepContextPreCanceled(t *testing.T) {
	eng := &explore.Engine{Workers: 4}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	space := explore.Grid([]int{4, 8}, explore.Variants(), []int{0}, false)
	pts := eng.SweepContext(ctx, space)
	if len(pts) != len(space) {
		t.Fatalf("got %d points for %d configs", len(pts), len(space))
	}
	for i, p := range pts {
		if !explore.IsCanceled(p) {
			t.Fatalf("point %d not marked canceled: %+v", i, p)
		}
	}
	s := eng.Stats()
	if s.PointComputed != 0 || s.PointMemHits != 0 {
		t.Errorf("pre-canceled sweep touched the caches: %+v", s)
	}
	// The same engine still evaluates normally afterwards: cancellation
	// must not poison anything.
	pt := eng.Evaluate(space[0])
	if pt.Err != "" {
		t.Errorf("evaluate after canceled sweep: %s", pt.Err)
	}
}

// TestSweepContextCancelMidRun: cancelling partway through leaves a
// partial result — evaluated prefix points valid, the rest skipped —
// and the skipped configs evaluate cleanly on retry (no sticky errors).
func TestSweepContextCancelMidRun(t *testing.T) {
	eng := &explore.Engine{Workers: 1}
	ctx, cancel := context.WithCancel(context.Background())
	space := explore.Grid([]int{4}, explore.Variants(), []int{0, 8}, true)
	// Cancel from a goroutine as soon as the first point lands: with one
	// worker the sweep is sequential, so a tail of the space is skipped.
	done := make(chan []explore.Point, 1)
	go func() { done <- eng.SweepContext(ctx, space) }()
	time.Sleep(time.Millisecond)
	cancel()
	pts := <-done
	skipped := 0
	for _, p := range pts {
		if explore.IsCanceled(p) {
			skipped++
		} else if p.Err != "" {
			t.Errorf("non-canceled point failed: %s", p.Err)
		}
	}
	t.Logf("skipped %d of %d", skipped, len(pts))
	// Retry must compute every point, canceled ones included.
	for _, p := range eng.Sweep(space) {
		if p.Err != "" {
			t.Errorf("retry after cancel failed: %s", p.Err)
		}
	}
}

// TestSearchContextCanceled: both strategies stop at a batch boundary
// under cancellation, flag the result, and keep the partial trajectory.
func TestSearchContextCanceled(t *testing.T) {
	for _, st := range []explore.Strategy{explore.HillClimb{}, explore.Genetic{}} {
		t.Run(st.Name(), func(t *testing.T) {
			eng := &explore.Engine{Workers: 2}
			ctx, cancel := context.WithCancel(context.Background())
			cancel()
			res := st.SearchContext(ctx, eng, explore.DefaultSpace(4),
				explore.LatencyObjective(), explore.Budget{MaxEvaluations: 100}, 1)
			if !res.Canceled || !res.Exhausted {
				t.Errorf("pre-canceled search: Canceled=%t Exhausted=%t, want both true",
					res.Canceled, res.Exhausted)
			}
			if res.Evaluations != 0 {
				t.Errorf("pre-canceled search evaluated %d configs", res.Evaluations)
			}
		})
	}
}

// TestSearchContextUncanceledMatchesSearch: with a background context,
// SearchContext and Search are the same run — same trajectory, no
// Canceled flag. (Search must stay a thin wrapper.)
func TestSearchContextUncanceledMatchesSearch(t *testing.T) {
	sp := explore.DefaultSpace(4)
	b := explore.Budget{MaxEvaluations: 12}
	for _, st := range []explore.Strategy{explore.HillClimb{}, explore.Genetic{}} {
		t.Run(st.Name(), func(t *testing.T) {
			a := st.Search(&explore.Engine{Workers: 2}, sp, explore.LatencyObjective(), b, 1)
			c := st.SearchContext(context.Background(), &explore.Engine{Workers: 2}, sp,
				explore.LatencyObjective(), b, 1)
			if a.Canceled || c.Canceled {
				t.Errorf("uncanceled runs flagged canceled")
			}
			if a.Evaluations != c.Evaluations || a.BestScore != c.BestScore ||
				len(a.Trajectory) != len(c.Trajectory) {
				t.Errorf("Search and SearchContext diverged: %d/%v/%d vs %d/%v/%d",
					a.Evaluations, a.BestScore, len(a.Trajectory),
					c.Evaluations, c.BestScore, len(c.Trajectory))
			}
		})
	}
}
