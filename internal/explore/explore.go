// Package explore is the design-space exploration engine the paper's
// methodology calls for: the coordinated transformations (speculation,
// chaining across conditionals, unrolling) beat any fixed ordering only
// when the designer can sweep many configurations quickly, so this
// package turns the staged synthesis flow of internal/core into a
// concurrent, memoized search over
// (source program × pass list × preset × toggles × unroll bounds × scale).
//
// Memoization is stage-granular, keyed on the artifact hashes of the
// staged flow: configurations sharing a (source, pass-list) prefix reuse
// one frontend run — the transformation pipeline executes exactly once
// per unique (source fingerprint, pass list, rounds) triple — midend
// artifacts (HTG + schedule) are shared by every configuration with the
// same transformed program and scheduling knobs, and backend artifacts
// (netlist + report) by every configuration with the same schedule and
// report model. A fully evaluated configuration is additionally
// memoized as a Point.
//
// Every memoized layer lives behind one tiered blob store
// (internal/blob): an always-on bounded in-memory LRU, an optional disk
// tier (CacheDir; internal/cache with content-address deduplication of
// stage artifacts), and an optional remote tier (RemoteCache; another
// daemon's /v1/blobs API). Lookups read through fastest-first and
// backfill upward, computed artifacts write through every tier, and
// concurrent lookups of one key share a single flight — so sweeps
// survive process restarts, many processes share one cache directory,
// and a cold machine can warm itself off a peer over HTTP. Artifacts
// are stored in their deterministic wire codecs, keyed by the same
// hashes with versioned invalidation, so bumping a single stage version
// only recomputes that stage. The frontier helpers reduce the resulting
// point cloud to the best-cycle / best-area Pareto set the designer
// actually reads.
package explore

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"math/rand"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"sparkgo/internal/blob"
	"sparkgo/internal/cache"
	"sparkgo/internal/core"
	"sparkgo/internal/delay"
	"sparkgo/internal/interp"
	"sparkgo/internal/ir"
	"sparkgo/internal/obs"
	"sparkgo/internal/rtl"
	"sparkgo/internal/rtlsim"
)

// Config is one point in the design space: a source program (a named
// entry in the engine's source table, or the built-in generator at scale
// N) plus a synthesis configuration.
type Config struct {
	// Source names the program this config synthesizes: a key into the
	// engine's Sources table (user programs parsed from files). Empty
	// selects the engine's generator — the ILD behavioral description —
	// at scale N.
	Source string
	// N is the source scale parameter (ILD buffer size for the default
	// source generator; ignored by named sources).
	N int
	// Preset selects the synthesis regime.
	Preset core.Preset
	// Toggle knockouts (the ablation axes A1–A4 plus CSE).
	NoSpeculation bool
	NoUnroll      bool
	NoConstProp   bool
	NoCSE         bool
	NoChaining    bool
	// MaxUnroll bounds full unrolling (0 = unlimited default).
	MaxUnroll int
	// Passes, when non-empty, is an explicit pass list (internal/pass
	// spec syntax) replacing the preset plan — the pass-order axis.
	Passes []string
	// Rounds bounds pipeline fixpoint iteration (0 = default).
	Rounds int
	// ReportNand, when positive, overrides the NAND-delay scale of the
	// technology model the backend report is evaluated under — the
	// backend-only axis. The scheduling model is untouched, so two
	// configs differing only here share the frontend AND midend
	// artifacts and re-run just the binding/report stage.
	ReportNand float64
}

// Options lowers the config to synthesizer options.
func (c Config) Options() core.Options {
	o := core.Options{
		Preset:        c.Preset,
		MaxUnroll:     c.MaxUnroll,
		NoSpeculation: c.NoSpeculation,
		NoUnroll:      c.NoUnroll,
		NoConstProp:   c.NoConstProp,
		NoCSE:         c.NoCSE,
		NoChaining:    c.NoChaining,
		Passes:        c.Passes,
		CustomRounds:  c.Rounds,
	}
	if c.ReportNand > 0 {
		o.ReportModel = &delay.Model{NandDelay: c.ReportNand}
	}
	return o
}

// String renders the canonical form of the config — the exact text the
// cache key hashes, so two configs are cache-equivalent iff their strings
// match.
func (c Config) String() string {
	var b strings.Builder
	if c.Source != "" {
		fmt.Fprintf(&b, "src=%s ", c.Source)
	}
	fmt.Fprintf(&b, "n=%d preset=%s", c.N, c.Preset)
	for _, t := range []struct {
		on   bool
		name string
	}{
		{c.NoSpeculation, "nospec"}, {c.NoUnroll, "nounroll"},
		{c.NoConstProp, "noconstprop"}, {c.NoCSE, "nocse"},
		{c.NoChaining, "nochain"},
	} {
		if t.on {
			b.WriteString(" " + t.name)
		}
	}
	if c.MaxUnroll > 0 {
		fmt.Fprintf(&b, " maxunroll=%d", c.MaxUnroll)
	}
	if len(c.Passes) > 0 {
		fmt.Fprintf(&b, " passes=[%s]", joinSpecs(c.Passes))
	}
	if c.Rounds > 0 {
		fmt.Fprintf(&b, " rounds=%d", c.Rounds)
	}
	if c.ReportNand > 0 {
		fmt.Fprintf(&b, " reportnand=%g", c.ReportNand)
	}
	return b.String()
}

// joinSpecs renders a pass list unambiguously: any ";" inside a spec is
// escaped before joining on "; ", so two distinct lists can never render
// identically (the canonical string is a cache key; see Config.String).
func joinSpecs(specs []string) string {
	esc := make([]string, len(specs))
	for i, s := range specs {
		s = strings.ReplaceAll(s, `\`, `\\`)
		esc[i] = strings.ReplaceAll(s, ";", `\;`)
	}
	return strings.Join(esc, "; ")
}

// Key is the 64-bit FNV-1a hash of the canonical string: a compact
// config fingerprint for external reporting and de-duplication. The
// in-process memoization cache keys on the canonical string itself, so a
// hash collision can never alias two configurations.
func (c Config) Key() uint64 {
	h := fnv.New64a()
	h.Write([]byte(c.String()))
	return h.Sum64()
}

// Point is one evaluated configuration.
type Point struct {
	Config   Config
	Cycles   int     // FSM states of the synthesized design
	Latency  int     // simulated cycles per activation (= Cycles when SimTrials is 0)
	CritPath float64 // gate-unit critical path
	Area     float64
	Muxes    int
	FUs      int
	Rounds   int    // pipeline rounds to fixpoint
	Err      string // non-empty when synthesis failed; metrics are zero
}

// Stats is the engine's cumulative cache accounting, split per layer.
// For each cache the four counters partition lookups: served from
// memory, served from disk, served from the remote tier, or computed by
// running the stage. A lookup satisfied by joining another caller's
// in-flight computation counts as a memory hit.
type Stats struct {
	// Point cache: fully evaluated configurations.
	PointMemHits    int64
	PointDiskHits   int64
	PointRemoteHits int64
	PointComputed   int64
	// Frontend stage cache: transformed-IR artifacts shared by every
	// configuration with the same (source, pass list, rounds).
	FrontendMemHits    int64
	FrontendDiskHits   int64
	FrontendRemoteHits int64
	FrontendComputed   int64
	// Midend stage cache: HTG + schedule artifacts shared by every
	// configuration with the same transformed program and scheduling
	// knobs (preset, delay model, resources, chaining).
	MidendMemHits    int64
	MidendDiskHits   int64
	MidendRemoteHits int64
	MidendComputed   int64
	// Backend stage cache: netlist + report artifacts shared by every
	// configuration with the same schedule and report model.
	BackendMemHits    int64
	BackendDiskHits   int64
	BackendRemoteHits int64
	BackendComputed   int64
	// MemBackfills / DiskBackfills count payloads copied into the
	// memory / disk tier after a hit in a slower tier — how much of the
	// working set each tier re-absorbed this run.
	MemBackfills  int64
	DiskBackfills int64
	// DiskErrors counts disk-layer failures that were absorbed by
	// falling back to another tier or to computation (the sweep itself
	// never fails on a bad cache). RemoteErrors counts the same for the
	// remote tier — a dead peer degrades to local work.
	DiskErrors   int64
	RemoteErrors int64
	// DiskHeaderMisses counts disk entries whose header did not match
	// the requested (schema, kind, key) and read as clean misses;
	// DiskCorruptions counts entries whose frame or payload hash failed
	// verification. Both come from internal/cache.
	DiskHeaderMisses int64
	DiskCorruptions  int64
}

// Sub returns the counter-wise difference s - o: the per-run delta
// between two snapshots of one engine. Living next to the struct, it
// cannot silently skip a counter when a new cache layer is added.
func (s Stats) Sub(o Stats) Stats {
	return Stats{
		PointMemHits:       s.PointMemHits - o.PointMemHits,
		PointDiskHits:      s.PointDiskHits - o.PointDiskHits,
		PointRemoteHits:    s.PointRemoteHits - o.PointRemoteHits,
		PointComputed:      s.PointComputed - o.PointComputed,
		FrontendMemHits:    s.FrontendMemHits - o.FrontendMemHits,
		FrontendDiskHits:   s.FrontendDiskHits - o.FrontendDiskHits,
		FrontendRemoteHits: s.FrontendRemoteHits - o.FrontendRemoteHits,
		FrontendComputed:   s.FrontendComputed - o.FrontendComputed,
		MidendMemHits:      s.MidendMemHits - o.MidendMemHits,
		MidendDiskHits:     s.MidendDiskHits - o.MidendDiskHits,
		MidendRemoteHits:   s.MidendRemoteHits - o.MidendRemoteHits,
		MidendComputed:     s.MidendComputed - o.MidendComputed,
		BackendMemHits:     s.BackendMemHits - o.BackendMemHits,
		BackendDiskHits:    s.BackendDiskHits - o.BackendDiskHits,
		BackendRemoteHits:  s.BackendRemoteHits - o.BackendRemoteHits,
		BackendComputed:    s.BackendComputed - o.BackendComputed,
		MemBackfills:       s.MemBackfills - o.MemBackfills,
		DiskBackfills:      s.DiskBackfills - o.DiskBackfills,
		DiskErrors:         s.DiskErrors - o.DiskErrors,
		RemoteErrors:       s.RemoteErrors - o.RemoteErrors,
		DiskHeaderMisses:   s.DiskHeaderMisses - o.DiskHeaderMisses,
		DiskCorruptions:    s.DiskCorruptions - o.DiskCorruptions,
	}
}

// Engine evaluates configuration spaces over a worker pool with
// stage-granular memoization. The zero value is ready to use; caches
// persist across sweeps, so overlapping spaces only synthesize new
// configurations, and configurations differing only in back-end knobs
// share one frontend run.
type Engine struct {
	// Workers bounds sweep concurrency (0 = GOMAXPROCS).
	Workers int
	// Source generates the program for a config's scale parameter
	// (nil = the ILD behavioral description, ild.Program). Used by
	// configs with an empty Source name.
	Source func(n int) *ir.Program
	// Sources maps source names to parsed user programs; a config
	// selects one by name. This is the multi-program batching axis:
	// one sweep may span many sources.
	Sources map[string]*ir.Program
	// SimTrials, when positive, measures per-activation latency by
	// cycle-accurate simulation on that many random stimulus vectors
	// (seeded from the source fingerprint plus the canonical config, so
	// results are deterministic and stimulus is independent per
	// (source, config)). Zero reports the FSM state count as the latency.
	SimTrials int
	// CacheDir, when non-empty, adds a disk tier to the blob store
	// (internal/cache, wire-encoded artifacts) so sweeps survive
	// process restarts. Disk failures degrade to computation and are
	// counted in Stats.DiskErrors.
	CacheDir string
	// RemoteCache, when non-empty, adds a remote tier: the base URL of
	// a peer daemon whose /v1/blobs API serves artifacts the local
	// tiers miss (and receives the ones computed here). Remote failures
	// degrade to local work and are counted in Stats.RemoteErrors.
	RemoteCache string
	// MemCacheBytes bounds the in-memory blob tier
	// (0 = blob.DefaultMemBytes).
	MemCacheBytes int64
	// Obs, when set before the engine's first use, receives one span
	// event per stage-cache lookup (duration + disposition), one event
	// per simulation, and the blob store's tier traffic. A nil bus
	// costs nothing: instrumentation sites skip timing entirely.
	Obs *obs.Bus

	mu sync.Mutex
	// sources memoizes resolved programs and their fingerprints per
	// source identity ("src=<name>" or "n=<scale>").
	sources map[string]*sourceEntry

	// The tiered blob store behind every memoized layer (see blobStack):
	// blobs is the full read path (mem → disk → remote), localBlobs the
	// local tiers only — what the daemon's blob API serves, so chained
	// daemons cannot proxy-loop. store is the raw disk layer (nil when
	// CacheDir is empty or failed to open), kept for GC and stats.
	blobOnce   sync.Once
	blobs      *blob.Tiered
	localBlobs *blob.Tiered
	store      *cache.Store

	pointMemHits       atomic.Int64
	pointDiskHits      atomic.Int64
	pointRemoteHits    atomic.Int64
	pointComputed      atomic.Int64
	frontendMemHits    atomic.Int64
	frontendDiskHits   atomic.Int64
	frontendRemoteHits atomic.Int64
	frontendComputed   atomic.Int64
	midendMemHits      atomic.Int64
	midendDiskHits     atomic.Int64
	midendRemoteHits   atomic.Int64
	midendComputed     atomic.Int64
	backendMemHits     atomic.Int64
	backendDiskHits    atomic.Int64
	backendRemoteHits  atomic.Int64
	backendComputed    atomic.Int64
	diskErrors         atomic.Int64
}

// Evaluate synthesizes one configuration, serving repeats from the
// caches. Concurrent callers of the same configuration synthesize once
// and share the result.
//
// Failed evaluations are deliberately not memoized: concurrent callers
// still share one in-flight attempt (single flight), but the error entry
// is dropped afterwards, so a later Evaluate retries instead of serving
// a possibly transient failure (a simulator error, a source-resolution
// hiccup) forever. Deterministic failures — a bad pass spec, an unknown
// source — simply recompute to the same error each time.
func (e *Engine) Evaluate(c Config) Point {
	return e.EvaluateContext(context.Background(), c)
}

// EvaluateContext is Evaluate under a context. A context already done on
// entry returns a skipped point (Err = the context error) without
// touching any cache; cancellation mid-synthesis is observed between
// stages, and the resulting error point follows the no-sticky-errors
// rule, so a cancelled evaluation never poisons the caches — the next
// caller recomputes. When concurrent callers share one in-flight
// evaluation, the first caller's context governs it; waiters that share
// a cancelled result simply retry on their next lookup.
func (e *Engine) EvaluateContext(ctx context.Context, c Config) Point {
	if err := ctx.Err(); err != nil {
		return Point{Config: c, Err: err.Error()}
	}
	src, err := e.resolveSource(c)
	if err != nil {
		e.pointComputed.Add(1)
		return Point{Config: c, Err: err.Error()}
	}
	pk := e.pointKey(c, src.fingerprint)
	start := e.stageStart()
	compute := func() ([]byte, any, error) {
		pt := e.synthesize(ctx, c, src)
		e.pointComputed.Add(1)
		if pt.Err != "" {
			// Propagating the failure as an error keeps it out of every
			// tier (the no-sticky-errors rule); the caller rebuilds the
			// point from it.
			return nil, nil, errors.New(pt.Err)
		}
		return encodePoint(&pt), &pt, nil
	}
	for attempt := 0; ; attempt++ {
		res, err := e.blobStack().Do(kindPoint, pk, compute)
		if err != nil {
			return Point{Config: c, Err: err.Error()}
		}
		if res.Obj != nil {
			if res.Shared {
				e.pointMemHits.Add(1)
			}
			e.observeStage(kindPoint, start, res)
			return *res.Obj.(*Point)
		}
		pt, derr := decodePoint(res.Data)
		if derr != nil || pt.Err != "" {
			// Either corruption a tier's own verification cannot catch
			// (verified bytes that are not a point blob), or an error
			// point persisted by an engine predating the no-sticky-errors
			// rule: purge and retry, which recomputes through the flight.
			if derr != nil {
				e.diskErrors.Add(1)
			}
			e.blobStack().Delete(kindPoint, pk)
			if attempt == 0 {
				continue
			}
			pt := e.synthesize(ctx, c, src)
			e.pointComputed.Add(1)
			e.observeStageComputed(kindPoint, start)
			return pt
		}
		countHit(res, &e.pointMemHits, &e.pointDiskHits, &e.pointRemoteHits)
		e.observeStage(kindPoint, start, res)
		return *pt
	}
}

// IsCanceled reports whether a point was skipped or cut short by context
// cancellation (or deadline expiry) rather than failing on its own:
// callers batching evaluations — the adaptive searches, the service
// queue — must not treat such points as real failures or memoize their
// scores.
func IsCanceled(p Point) bool {
	return p.Err == context.Canceled.Error() || p.Err == context.DeadlineExceeded.Error()
}

// Stats reports the engine's cumulative cache statistics across sweeps,
// folding in the blob-store tier counters: backfills per tier, absorbed
// tier errors, and the disk layer's header-miss / corruption counts.
func (e *Engine) Stats() Stats {
	e.blobStack()
	s := Stats{
		PointMemHits:       e.pointMemHits.Load(),
		PointDiskHits:      e.pointDiskHits.Load(),
		PointRemoteHits:    e.pointRemoteHits.Load(),
		PointComputed:      e.pointComputed.Load(),
		FrontendMemHits:    e.frontendMemHits.Load(),
		FrontendDiskHits:   e.frontendDiskHits.Load(),
		FrontendRemoteHits: e.frontendRemoteHits.Load(),
		FrontendComputed:   e.frontendComputed.Load(),
		MidendMemHits:      e.midendMemHits.Load(),
		MidendDiskHits:     e.midendDiskHits.Load(),
		MidendRemoteHits:   e.midendRemoteHits.Load(),
		MidendComputed:     e.midendComputed.Load(),
		BackendMemHits:     e.backendMemHits.Load(),
		BackendDiskHits:    e.backendDiskHits.Load(),
		BackendRemoteHits:  e.backendRemoteHits.Load(),
		BackendComputed:    e.backendComputed.Load(),
		DiskErrors:         e.diskErrors.Load(),
	}
	for _, ts := range e.blobs.TierStats() {
		switch ts.Name {
		case TierMem:
			s.MemBackfills = ts.Backfills
		case TierDisk:
			s.DiskBackfills = ts.Backfills
			s.DiskErrors += ts.Errors + ts.PutErrors
		case TierRemote:
			s.RemoteErrors = ts.Errors + ts.PutErrors
		}
	}
	if e.store != nil {
		cs := e.store.Stats()
		s.DiskHeaderMisses = cs.HeaderMisses
		s.DiskCorruptions = cs.Corruptions
	}
	return s
}

// CacheStats reports cumulative point-cache hits and misses across
// sweeps: hits are lookups served from memory, misses everything else
// (disk hits and computed points).
func (e *Engine) CacheStats() (hits, misses int64) {
	s := e.Stats()
	return s.PointMemHits, s.PointDiskHits + s.PointComputed
}

// EffectiveWorkers reports the worker-pool size a sweep over n
// configurations actually uses: Workers (or GOMAXPROCS when unset),
// clamped to n.
func (e *Engine) EffectiveWorkers(n int) int {
	workers := e.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	return workers
}

// Sweep evaluates every configuration concurrently over the worker pool.
// The result order matches the input order, and results depend only on
// the configurations themselves, so sweeps are deterministic regardless
// of worker count or scheduling.
func (e *Engine) Sweep(space []Config) []Point {
	return e.SweepContext(context.Background(), space)
}

// SweepContext is Sweep under a context: cancellation stops the dispatch
// of new evaluations immediately and cuts in-flight ones at their next
// stage boundary. Configurations never evaluated come back as skipped
// points (Err = the context error; see IsCanceled), so the result slice
// always matches the input order and length — a cancelled sweep is
// partial, not torn.
func (e *Engine) SweepContext(ctx context.Context, space []Config) []Point {
	out := make([]Point, len(space))
	workers := e.EffectiveWorkers(len(space))
	if workers <= 1 {
		for i, c := range space {
			out[i] = e.EvaluateContext(ctx, c)
		}
		return out
	}
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				out[i] = e.EvaluateContext(ctx, space[i])
			}
		}()
	}
dispatch:
	for i := range space {
		select {
		case <-ctx.Done():
			// Undelivered indices are exclusively the dispatcher's to
			// write: workers only touch indices they received.
			for j := i; j < len(space); j++ {
				out[j] = Point{Config: space[j], Err: ctx.Err().Error()}
			}
			break dispatch
		case idx <- i:
		}
	}
	close(idx)
	wg.Wait()
	return out
}

// AddSource registers (or replaces) a named source program, safely even
// while sweeps are running — the long-lived engine behind the service
// daemon gains sources as clients submit them. Replacing a name does not
// invalidate points already evaluated under it: the in-memory point
// cache keys on the name, so a daemon must derive names from program
// content (a fingerprint) rather than reusing one name for different
// programs.
func (e *Engine) AddSource(name string, prog *ir.Program) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.Sources == nil {
		e.Sources = map[string]*ir.Program{}
	}
	e.Sources[name] = prog
}

// HasSource reports whether a named source is registered.
func (e *Engine) HasSource(name string) bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	_, ok := e.Sources[name]
	return ok
}

// synthesize evaluates one configuration through the staged flow,
// sharing the frontend artifact with every other configuration on the
// same (source, pass list). Cancellation is observed at the stage
// boundaries (and per simulation trial), so an abandoned evaluation
// stops within one stage of work.
func (e *Engine) synthesize(ctx context.Context, c Config, src *sourceEntry) Point {
	pt := Point{Config: c}
	opt := c.Options()
	fa, err := e.frontend(ctx, src, opt.FrontendOptions())
	if err != nil {
		pt.Err = err.Error()
		return pt
	}
	if err := ctx.Err(); err != nil {
		pt.Err = err.Error()
		return pt
	}
	ma, err := e.midend(ctx, fa, opt.MidendOptions())
	if err != nil {
		pt.Err = err.Error()
		return pt
	}
	if err := ctx.Err(); err != nil {
		pt.Err = err.Error()
		return pt
	}
	ba, err := e.backend(ctx, ma, opt.BackendOptions())
	if err != nil {
		pt.Err = err.Error()
		return pt
	}
	pt.Cycles = ma.Cycles
	pt.Latency = ma.Cycles
	pt.CritPath = ba.Stats.CriticalPath
	pt.Area = ba.Stats.Area
	pt.Muxes = ba.Stats.Muxes
	pt.FUs = ba.Stats.FUs
	pt.Rounds = fa.Rounds
	if e.SimTrials > 0 {
		// Mod materializes the netlist: computed artifacts hand it over
		// directly, revived ones pay their one decode here — the only
		// place a disk-warm sweep ever decodes a payload.
		mod, err := ba.Mod()
		if err != nil {
			pt.Err = err.Error()
			return pt
		}
		simStart := e.stageStart()
		lat, mix, err := e.simulate(ctx, src, mod, c)
		if err != nil {
			pt.Err = err.Error()
			return pt
		}
		if !simStart.IsZero() {
			e.Obs.Publish(obs.Event{
				Type:             obs.TypeSim,
				Cycles:           lat,
				DurationNs:       time.Since(simStart).Nanoseconds(),
				SimInsnsPacked:   int64(mix.Packed),
				SimInsnsBoundary: int64(mix.Boundary),
				SimInsnsWide:     int64(mix.Wide),
				SimInsnsLane:     int64(mix.Lane),
			})
		}
		pt.Latency = lat
	}
	return pt
}

// simulate measures the worst per-activation cycle count over SimTrials
// random stimulus vectors. The stimulus stream is seeded from the full
// (source fingerprint, canonical config) pair — not the bare config
// hash, which would hand two configs the same stimulus whenever their
// canonical strings collide across sources, and would keep stimulus
// correlated across sweep axes that don't reach the simulator.
//
// The netlist is compiled once (rtlsim.Compile) and the trials run in
// batched lanes, so gate dispatch is amortized across the whole trial
// set — this is the dominant cost of a disk-warm-sim sweep. The cycle
// watchdog is derived from the FSM size (rtlsim.WatchdogCycles), so a
// non-terminating design errors within thousands of cycles instead of
// burning millions per trial. Cancellation is observed between lane
// batches.
func (e *Engine) simulate(ctx context.Context, src *sourceEntry, mod *rtl.Module, c Config) (int, rtlsim.InsnMix, error) {
	rng := rand.New(rand.NewSource(simSeed(src.fingerprint, c)))
	prog := rtlsim.Compile(mod)
	mix := prog.Mix()
	maxCycles := rtlsim.WatchdogCycles(mod.NumStates)
	max := 0
	for start := 0; start < e.SimTrials; start += rtlsim.MaxLanes {
		if err := ctx.Err(); err != nil {
			return 0, mix, err
		}
		envs := make([]*interp.Env, min(rtlsim.MaxLanes, e.SimTrials-start))
		for i := range envs {
			envs[i] = interp.RandomEnv(src.prog, rng)
		}
		for _, lr := range prog.RunBatch(src.prog, envs, maxCycles) {
			if lr.Err != nil {
				return 0, mix, lr.Err
			}
			if lr.Cycles > max {
				max = lr.Cycles
			}
		}
	}
	return max, mix, nil
}

// simSeed derives the deterministic simulation seed from everything the
// stimulus must be independent over: the source program's content
// fingerprint and the canonical config string.
func simSeed(sourceFingerprint string, c Config) int64 {
	h := fnv.New64a()
	h.Write([]byte("sim|"))
	h.Write([]byte(sourceFingerprint))
	h.Write([]byte{'|'})
	h.Write([]byte(c.String()))
	return int64(h.Sum64())
}

// Variant names one toggle combination of the sweep grid.
type Variant struct {
	Name          string
	NoSpeculation bool
	NoUnroll      bool
	NoConstProp   bool
	NoCSE         bool
	NoChaining    bool
}

// Variants enumerates the coordination ablations the paper studies: full
// coordination plus each single-transformation knockout (A1–A4 and CSE).
func Variants() []Variant {
	return []Variant{
		{Name: "full"},
		{Name: "no-speculation", NoSpeculation: true},
		{Name: "no-unroll", NoUnroll: true},
		{Name: "no-constprop", NoConstProp: true},
		{Name: "no-cse", NoCSE: true},
		{Name: "no-chaining", NoChaining: true},
	}
}

// Grid builds the cartesian configuration space
// (sizes × variants × unroll bounds) in the microprocessor-block regime,
// optionally adding the classical-ASIC baseline per size.
func Grid(sizes []int, variants []Variant, maxUnrolls []int, includeClassical bool) []Config {
	var space []Config
	for _, n := range sizes {
		space = append(space, gridFor(Config{N: n}, variants, maxUnrolls, includeClassical)...)
	}
	return space
}

// GridSources builds the cartesian configuration space
// (named sources × variants × unroll bounds) — the multi-program batch
// sweep over user programs registered in the engine's Sources table.
func GridSources(names []string, variants []Variant, maxUnrolls []int, includeClassical bool) []Config {
	var space []Config
	for _, name := range names {
		space = append(space, gridFor(Config{Source: name}, variants, maxUnrolls, includeClassical)...)
	}
	return space
}

// gridFor expands one source seed config over the variant/unroll axes.
func gridFor(seed Config, variants []Variant, maxUnrolls []int, includeClassical bool) []Config {
	if len(maxUnrolls) == 0 {
		maxUnrolls = []int{0}
	}
	var space []Config
	for _, v := range variants {
		for _, mu := range maxUnrolls {
			c := seed
			c.Preset = core.MicroprocessorBlock
			c.NoSpeculation = v.NoSpeculation
			c.NoUnroll = v.NoUnroll
			c.NoConstProp = v.NoConstProp
			c.NoCSE = v.NoCSE
			c.NoChaining = v.NoChaining
			c.MaxUnroll = mu
			space = append(space, c)
		}
	}
	if includeClassical {
		c := seed
		c.Preset = core.ClassicalASIC
		space = append(space, c)
	}
	return space
}

// Sample draws k configurations from space without replacement, seeded —
// the deterministic random-subspace sampler for sweep tests and quick
// scouting runs. k >= len(space) returns a shuffled copy.
func Sample(space []Config, k int, seed int64) []Config {
	rng := rand.New(rand.NewSource(seed))
	out := make([]Config, len(space))
	copy(out, space)
	rng.Shuffle(len(out), func(i, j int) { out[i], out[j] = out[j], out[i] })
	if k < len(out) {
		out = out[:k]
	}
	return out
}

// sortStable orders points by (latency, area, canonical config) — the
// presentation order of frontiers and best-point queries.
func sortStable(pts []Point) {
	sort.Slice(pts, func(i, j int) bool {
		if pts[i].Latency != pts[j].Latency {
			return pts[i].Latency < pts[j].Latency
		}
		if pts[i].Area != pts[j].Area {
			return pts[i].Area < pts[j].Area
		}
		return pts[i].Config.String() < pts[j].Config.String()
	})
}
