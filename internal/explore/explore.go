// Package explore is the design-space exploration engine the paper's
// methodology calls for: the coordinated transformations (speculation,
// chaining across conditionals, unrolling) beat any fixed ordering only
// when the designer can sweep configurations quickly, so this package
// turns one synthesis flow into a concurrent search over
// (preset × pass toggles × unroll bounds × ILD buffer sizes).
//
// An Engine shards a configuration space over a worker pool, memoizes
// completed syntheses behind a config-hash cache (repeat sweeps and
// overlapping grids hit the cache instead of re-synthesizing), and the
// frontier helpers reduce the resulting point cloud to the best-cycle /
// best-area Pareto set the designer actually reads.
package explore

import (
	"fmt"
	"hash/fnv"
	"math/rand"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"sparkgo/internal/core"
	"sparkgo/internal/ild"
	"sparkgo/internal/interp"
	"sparkgo/internal/ir"
	"sparkgo/internal/rtlsim"
)

// Config is one point in the design space: a source scale (the ILD buffer
// size) plus a synthesis configuration.
type Config struct {
	// N is the source scale parameter (ILD buffer size for the default
	// source generator).
	N int
	// Preset selects the synthesis regime.
	Preset core.Preset
	// Toggle knockouts (the ablation axes A1–A4 plus CSE).
	NoSpeculation bool
	NoUnroll      bool
	NoConstProp   bool
	NoCSE         bool
	NoChaining    bool
	// MaxUnroll bounds full unrolling (0 = unlimited default).
	MaxUnroll int
	// Passes, when non-empty, is an explicit pass list (internal/pass
	// spec syntax) replacing the preset plan — the pass-order axis.
	Passes []string
	// Rounds bounds pipeline fixpoint iteration (0 = default).
	Rounds int
}

// Options lowers the config to synthesizer options.
func (c Config) Options() core.Options {
	return core.Options{
		Preset:        c.Preset,
		MaxUnroll:     c.MaxUnroll,
		NoSpeculation: c.NoSpeculation,
		NoUnroll:      c.NoUnroll,
		NoConstProp:   c.NoConstProp,
		NoCSE:         c.NoCSE,
		NoChaining:    c.NoChaining,
		Passes:        c.Passes,
		CustomRounds:  c.Rounds,
	}
}

// String renders the canonical form of the config — the exact text the
// cache key hashes, so two configs are cache-equivalent iff their strings
// match.
func (c Config) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "n=%d preset=%s", c.N, c.Preset)
	for _, t := range []struct {
		on   bool
		name string
	}{
		{c.NoSpeculation, "nospec"}, {c.NoUnroll, "nounroll"},
		{c.NoConstProp, "noconstprop"}, {c.NoCSE, "nocse"},
		{c.NoChaining, "nochain"},
	} {
		if t.on {
			b.WriteString(" " + t.name)
		}
	}
	if c.MaxUnroll > 0 {
		fmt.Fprintf(&b, " maxunroll=%d", c.MaxUnroll)
	}
	if len(c.Passes) > 0 {
		fmt.Fprintf(&b, " passes=[%s]", strings.Join(c.Passes, "; "))
	}
	if c.Rounds > 0 {
		fmt.Fprintf(&b, " rounds=%d", c.Rounds)
	}
	return b.String()
}

// Key is the 64-bit FNV-1a hash of the canonical string: a compact
// config fingerprint for simulation seeding and external reporting. The
// in-process memoization cache keys on the canonical string itself, so a
// hash collision can never alias two configurations.
func (c Config) Key() uint64 {
	h := fnv.New64a()
	h.Write([]byte(c.String()))
	return h.Sum64()
}

// Point is one evaluated configuration.
type Point struct {
	Config   Config
	Cycles   int     // FSM states of the synthesized design
	Latency  int     // simulated cycles per activation (= Cycles when SimTrials is 0)
	CritPath float64 // gate-unit critical path
	Area     float64
	Muxes    int
	FUs      int
	Rounds   int    // pipeline rounds to fixpoint
	Err      string // non-empty when synthesis failed; metrics are zero
}

// Engine evaluates configuration spaces over a worker pool with a
// config-hash memoization cache. The zero value is ready to use; the
// cache persists across sweeps, so overlapping spaces only synthesize new
// configurations.
type Engine struct {
	// Workers bounds sweep concurrency (0 = GOMAXPROCS).
	Workers int
	// Source generates the program for a config's scale parameter
	// (nil = the ILD behavioral description, ild.Program).
	Source func(n int) *ir.Program
	// SimTrials, when positive, measures per-activation latency by
	// cycle-accurate simulation on that many random stimulus vectors
	// (seeded from the config hash, so results are deterministic).
	// Zero reports the FSM state count as the latency.
	SimTrials int

	mu sync.Mutex
	// cache is keyed on the canonical config string rather than its
	// 64-bit hash, so a hash collision can never alias two configs.
	cache  map[string]*entry
	hits   atomic.Int64
	misses atomic.Int64
}

type entry struct {
	once sync.Once
	pt   Point
}

// Evaluate synthesizes one configuration, serving repeats from the cache.
// Concurrent callers of the same configuration synthesize once and share
// the result.
func (e *Engine) Evaluate(c Config) Point {
	key := c.String()
	e.mu.Lock()
	if e.cache == nil {
		e.cache = map[string]*entry{}
	}
	en, cached := e.cache[key]
	if !cached {
		en = &entry{}
		e.cache[key] = en
	}
	e.mu.Unlock()
	if cached {
		e.hits.Add(1)
	} else {
		e.misses.Add(1)
	}
	en.once.Do(func() { en.pt = e.evaluate(c) })
	return en.pt
}

// CacheStats reports cumulative cache hits and misses across sweeps.
func (e *Engine) CacheStats() (hits, misses int64) {
	return e.hits.Load(), e.misses.Load()
}

// EffectiveWorkers reports the worker-pool size a sweep over n
// configurations actually uses: Workers (or GOMAXPROCS when unset),
// clamped to n.
func (e *Engine) EffectiveWorkers(n int) int {
	workers := e.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	return workers
}

// Sweep evaluates every configuration concurrently over the worker pool.
// The result order matches the input order, and results depend only on
// the configurations themselves, so sweeps are deterministic regardless
// of worker count or scheduling.
func (e *Engine) Sweep(space []Config) []Point {
	out := make([]Point, len(space))
	workers := e.EffectiveWorkers(len(space))
	if workers <= 1 {
		for i, c := range space {
			out[i] = e.Evaluate(c)
		}
		return out
	}
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				out[i] = e.Evaluate(space[i])
			}
		}()
	}
	for i := range space {
		idx <- i
	}
	close(idx)
	wg.Wait()
	return out
}

func (e *Engine) evaluate(c Config) Point {
	pt := Point{Config: c}
	src := e.Source
	if src == nil {
		src = ild.Program
	}
	res, err := core.Synthesize(src(c.N), c.Options())
	if err != nil {
		pt.Err = err.Error()
		return pt
	}
	pt.Cycles = res.Cycles
	pt.Latency = res.Cycles
	pt.CritPath = res.Stats.CriticalPath
	pt.Area = res.Stats.Area
	pt.Muxes = res.Stats.Muxes
	pt.FUs = res.Stats.FUs
	pt.Rounds = res.Rounds
	if e.SimTrials > 0 {
		lat, err := e.simulate(res, c)
		if err != nil {
			pt.Err = err.Error()
			return pt
		}
		pt.Latency = lat
	}
	return pt
}

// simulate measures the worst per-activation cycle count over SimTrials
// random stimulus vectors, seeded from the config hash for determinism.
func (e *Engine) simulate(res *core.Result, c Config) (int, error) {
	rng := rand.New(rand.NewSource(int64(c.Key())))
	max := 0
	for trial := 0; trial < e.SimTrials; trial++ {
		env := interp.RandomEnv(res.Input, rng)
		sim := rtlsim.New(res.Module)
		if err := sim.LoadEnv(res.Input, env); err != nil {
			return 0, err
		}
		cycles, err := sim.Run(1 << 22)
		if err != nil {
			return 0, err
		}
		if cycles > max {
			max = cycles
		}
	}
	return max, nil
}

// Variant names one toggle combination of the sweep grid.
type Variant struct {
	Name          string
	NoSpeculation bool
	NoUnroll      bool
	NoConstProp   bool
	NoCSE         bool
	NoChaining    bool
}

// Variants enumerates the coordination ablations the paper studies: full
// coordination plus each single-transformation knockout (A1–A4 and CSE).
func Variants() []Variant {
	return []Variant{
		{Name: "full"},
		{Name: "no-speculation", NoSpeculation: true},
		{Name: "no-unroll", NoUnroll: true},
		{Name: "no-constprop", NoConstProp: true},
		{Name: "no-cse", NoCSE: true},
		{Name: "no-chaining", NoChaining: true},
	}
}

// Grid builds the cartesian configuration space
// (sizes × variants × unroll bounds) in the microprocessor-block regime,
// optionally adding the classical-ASIC baseline per size.
func Grid(sizes []int, variants []Variant, maxUnrolls []int, includeClassical bool) []Config {
	if len(maxUnrolls) == 0 {
		maxUnrolls = []int{0}
	}
	var space []Config
	for _, n := range sizes {
		for _, v := range variants {
			for _, mu := range maxUnrolls {
				space = append(space, Config{
					N: n, Preset: core.MicroprocessorBlock,
					NoSpeculation: v.NoSpeculation, NoUnroll: v.NoUnroll,
					NoConstProp: v.NoConstProp, NoCSE: v.NoCSE,
					NoChaining: v.NoChaining, MaxUnroll: mu,
				})
			}
		}
		if includeClassical {
			space = append(space, Config{N: n, Preset: core.ClassicalASIC})
		}
	}
	return space
}

// Sample draws k configurations from space without replacement, seeded —
// the deterministic random-subspace sampler for sweep tests and quick
// scouting runs. k >= len(space) returns a shuffled copy.
func Sample(space []Config, k int, seed int64) []Config {
	rng := rand.New(rand.NewSource(seed))
	out := make([]Config, len(space))
	copy(out, space)
	rng.Shuffle(len(out), func(i, j int) { out[i], out[j] = out[j], out[i] })
	if k < len(out) {
		out = out[:k]
	}
	return out
}

// sortStable orders points by (latency, area, canonical config) — the
// presentation order of frontiers and best-point queries.
func sortStable(pts []Point) {
	sort.Slice(pts, func(i, j int) bool {
		if pts[i].Latency != pts[j].Latency {
			return pts[i].Latency < pts[j].Latency
		}
		if pts[i].Area != pts[j].Area {
			return pts[i].Area < pts[j].Area
		}
		return pts[i].Config.String() < pts[j].Config.String()
	})
}
