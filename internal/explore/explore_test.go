package explore_test

import (
	"reflect"
	"testing"

	"sparkgo/internal/core"
	"sparkgo/internal/explore"
)

// smallGrid is the cheap sweep space the concurrency tests use: tiny ILD
// buffers keep a single synthesis in the millisecond range while still
// exercising every toggle axis.
func smallGrid() []explore.Config {
	return explore.Grid([]int{2, 3, 4, 6}, explore.Variants(), []int{0, 8}, true)
}

// TestGridSize pins the acceptance-size sweep space: the standard grid
// must hold at least 48 configurations with no duplicate cache keys.
func TestGridSize(t *testing.T) {
	space := smallGrid()
	if len(space) < 48 {
		t.Fatalf("grid has %d configs, want >= 48", len(space))
	}
	seen := map[uint64]string{}
	for _, c := range space {
		if prev, dup := seen[c.Key()]; dup {
			t.Fatalf("duplicate key for %q and %q", prev, c.String())
		}
		seen[c.Key()] = c.String()
	}
}

// TestSweepMatchesColdSynthesis sweeps the full grid concurrently and
// checks every cached point against a cold, direct synthesis through a
// fresh engine — the cache must be invisible in the results.
func TestSweepMatchesColdSynthesis(t *testing.T) {
	space := smallGrid()
	eng := &explore.Engine{Workers: 8, SimTrials: 1}
	pts := eng.Sweep(space)
	if len(pts) != len(space) {
		t.Fatalf("got %d points for %d configs", len(pts), len(space))
	}
	hits, misses := eng.CacheStats()
	if misses != int64(len(space)) || hits != 0 {
		t.Fatalf("cold sweep: hits=%d misses=%d, want 0/%d", hits, misses, len(space))
	}
	for i, p := range pts {
		if p.Err != "" {
			t.Fatalf("config %q failed: %s", space[i].String(), p.Err)
		}
		if p.Cycles < 1 || p.Area <= 0 {
			t.Fatalf("config %q: degenerate point %+v", space[i].String(), p)
		}
	}
	// Cold spot-check: re-evaluate a spread of configs with fresh
	// engines (empty caches) and require identical points.
	for i := 0; i < len(space); i += 7 {
		cold := (&explore.Engine{Workers: 1, SimTrials: 1}).Evaluate(space[i])
		if !reflect.DeepEqual(cold, pts[i]) {
			t.Errorf("config %q: cached %+v != cold %+v", space[i].String(), pts[i], cold)
		}
	}
}

// TestSweepCacheHitPath re-sweeps the same space on a warm engine and
// asserts every lookup hits the cache and returns identical points.
func TestSweepCacheHitPath(t *testing.T) {
	space := smallGrid()[:12]
	eng := &explore.Engine{Workers: 4}
	first := eng.Sweep(space)
	_, misses0 := eng.CacheStats()
	second := eng.Sweep(space)
	hits, misses := eng.CacheStats()
	if misses != misses0 {
		t.Fatalf("warm sweep synthesized again: misses %d -> %d", misses0, misses)
	}
	if hits != int64(len(space)) {
		t.Fatalf("warm sweep: hits = %d, want %d", hits, len(space))
	}
	if !reflect.DeepEqual(first, second) {
		t.Fatal("warm sweep returned different points than cold sweep")
	}
}

// TestSweepDeterministic draws a seeded random subspace and sweeps it on
// two independent engines with different worker counts: for a fixed seed
// the sampled space and every point must be identical.
func TestSweepDeterministic(t *testing.T) {
	const seed = 99
	spaceA := explore.Sample(smallGrid(), 16, seed)
	spaceB := explore.Sample(smallGrid(), 16, seed)
	if !reflect.DeepEqual(spaceA, spaceB) {
		t.Fatal("Sample is not deterministic for a fixed seed")
	}
	a := (&explore.Engine{Workers: 8, SimTrials: 2}).Sweep(spaceA)
	b := (&explore.Engine{Workers: 3, SimTrials: 2}).Sweep(spaceB)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("sweeps diverge across engines/worker counts for the same space")
	}
}

// TestConcurrentDuplicateConfigs floods the pool with copies of the same
// configs: each unique config must synthesize exactly once, with every
// other lookup served by the cache, and all copies must agree.
func TestConcurrentDuplicateConfigs(t *testing.T) {
	base := smallGrid()[:4]
	var space []explore.Config
	for i := 0; i < 16; i++ {
		space = append(space, base...)
	}
	eng := &explore.Engine{Workers: 8}
	pts := eng.Sweep(space)
	hits, misses := eng.CacheStats()
	if misses != int64(len(base)) {
		t.Fatalf("misses = %d, want %d (one per unique config)", misses, len(base))
	}
	if hits != int64(len(space)-len(base)) {
		t.Fatalf("hits = %d, want %d", hits, len(space)-len(base))
	}
	for i, p := range pts {
		if !reflect.DeepEqual(p, pts[i%len(base)]) {
			t.Fatalf("copy %d diverges from first evaluation", i)
		}
	}
}

// TestFrontier checks the Pareto reduction and best-point queries on the
// real sweep: the microprocessor-block regime must put a 1-cycle point on
// the frontier, the classical baseline must win on area, and every
// frontier point must be undominated.
func TestFrontier(t *testing.T) {
	space := explore.Grid([]int{4}, explore.Variants(), []int{0}, true)
	pts := (&explore.Engine{Workers: 4, SimTrials: 1}).Sweep(space)
	front := explore.Frontier(pts)
	if len(front) == 0 {
		t.Fatal("empty frontier")
	}
	best := explore.BestCycles(pts)
	if best == nil || best.Latency != 1 {
		t.Fatalf("best-cycle point = %+v, want 1-cycle design", best)
	}
	if best.Config.Preset != core.MicroprocessorBlock {
		t.Errorf("1-cycle design came from preset %v", best.Config.Preset)
	}
	smallest := explore.BestArea(pts)
	if smallest == nil {
		t.Fatal("no best-area point")
	}
	if smallest.Area > best.Area {
		t.Errorf("best-area %.1f exceeds best-cycle area %.1f", smallest.Area, best.Area)
	}
	for i, f := range front {
		if i > 0 && (front[i-1].Latency >= f.Latency || front[i-1].Area <= f.Area) {
			t.Errorf("frontier not strictly improving at %d: %+v then %+v", i, front[i-1], f)
		}
		for _, p := range pts {
			if p.Err == "" && p.Latency <= f.Latency && p.Area < f.Area {
				t.Errorf("frontier point %q dominated by %q", f.Config.String(), p.Config.String())
			}
		}
	}
	if tab := explore.Table("sweep", pts); tab == nil {
		t.Fatal("nil table")
	}
}
