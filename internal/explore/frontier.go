package explore

import "sparkgo/internal/report"

// Frontier returns the Pareto-optimal points of the latency/area
// trade-off: every point for which no other point is at least as good on
// both axes and strictly better on one. Failed points are excluded. The
// result is sorted by (latency, area).
func Frontier(points []Point) []Point {
	var ok []Point
	for _, p := range points {
		if p.Err == "" {
			ok = append(ok, p)
		}
	}
	sortStable(ok)
	var front []Point
	bestArea := 0.0
	for _, p := range ok {
		if len(front) == 0 || p.Area < bestArea {
			front = append(front, p)
			bestArea = p.Area
		}
	}
	return front
}

// BestCycles returns the point with the fewest latency cycles (ties break
// toward smaller area, then canonical config order); nil when every point
// failed.
func BestCycles(points []Point) *Point {
	var best *Point
	for i := range points {
		p := &points[i]
		if p.Err != "" {
			continue
		}
		if best == nil || p.Latency < best.Latency ||
			(p.Latency == best.Latency && p.Area < best.Area) ||
			(p.Latency == best.Latency && p.Area == best.Area &&
				p.Config.String() < best.Config.String()) {
			best = p
		}
	}
	return best
}

// BestArea returns the smallest-area point (ties break toward fewer
// cycles, then canonical config order); nil when every point failed.
func BestArea(points []Point) *Point {
	var best *Point
	for i := range points {
		p := &points[i]
		if p.Err != "" {
			continue
		}
		if best == nil || p.Area < best.Area ||
			(p.Area == best.Area && p.Latency < best.Latency) ||
			(p.Area == best.Area && p.Latency == best.Latency &&
				p.Config.String() < best.Config.String()) {
			best = p
		}
	}
	return best
}

// Table renders points as a report table in presentation order.
func Table(title string, points []Point) *report.Table {
	t := report.New(title,
		"config", "cycles", "latency", "crit path (gu)", "area", "muxes", "FUs", "err")
	pts := make([]Point, len(points))
	copy(pts, points)
	sortStable(pts)
	for _, p := range pts {
		t.Add(p.Config.String(), p.Cycles, p.Latency, p.CritPath, p.Area,
			p.Muxes, p.FUs, p.Err)
	}
	return t
}
