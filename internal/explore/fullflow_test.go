package explore_test

import (
	"io/fs"
	"math"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"sparkgo/internal/explore"
)

// fullFlowSpace is the small grid the full-flow persistence tests
// sweep: one scale, every ablation variant, plus the classical
// baseline — enough to exercise both scheduling regimes and stage
// sharing without slowing the suite.
func fullFlowSpace() []explore.Config {
	return explore.Grid([]int{4}, explore.Variants(), []int{0}, true)
}

// TestFullFlowDiskPersistence is the acceptance scenario of the
// full-flow artifact persistence work: a cold sweep, a process restart
// (a fresh engine over the same cache directory), and a re-sweep with
// only the delay model changed must revive frontend AND midend
// artifacts from disk — zero midend recomputes, every revived schedule
// fingerprint-verified before use (a verification failure would count
// as a disk error and a recompute) — and re-run only the backend.
func TestFullFlowDiskPersistence(t *testing.T) {
	dir := t.TempDir()
	space := fullFlowSpace()

	// Cold sweep: populate every layer of the disk cache.
	cold := &explore.Engine{SimTrials: 1, CacheDir: dir}
	coldPts := cold.Sweep(space)
	for _, p := range coldPts {
		if p.Err != "" {
			t.Fatalf("cold sweep failed: %s: %s", p.Config, p.Err)
		}
	}
	cs := cold.Stats()
	if cs.MidendComputed == 0 || cs.BackendComputed == 0 {
		t.Fatalf("cold sweep computed no midend/backend artifacts: %+v", cs)
	}
	if cs.DiskErrors != 0 {
		t.Fatalf("cold sweep hit disk errors: %+v", cs)
	}

	// "Process restart": a fresh engine, same directory, and a config
	// space differing ONLY in the backend report model.
	scaled := make([]explore.Config, len(space))
	for i, c := range space {
		c.ReportNand = 2
		scaled[i] = c
	}
	warm := &explore.Engine{SimTrials: 1, CacheDir: dir}
	warmPts := warm.Sweep(scaled)
	for _, p := range warmPts {
		if p.Err != "" {
			t.Fatalf("disk-warm sweep failed: %s: %s", p.Config, p.Err)
		}
	}
	ws := warm.Stats()
	if ws.FrontendDiskHits == 0 {
		t.Errorf("no frontend disk hits on the restarted sweep: %+v", ws)
	}
	if ws.MidendDiskHits == 0 {
		t.Errorf("no midend disk hits on the restarted sweep: %+v", ws)
	}
	if ws.MidendComputed != 0 {
		t.Errorf("restarted sweep recomputed %d midend artifacts, want 0: %+v", ws.MidendComputed, ws)
	}
	if ws.FrontendComputed != 0 {
		t.Errorf("restarted sweep recomputed %d frontend artifacts, want 0: %+v", ws.FrontendComputed, ws)
	}
	if ws.BackendComputed == 0 {
		t.Errorf("restarted sweep computed no backend artifacts (the report model DID change): %+v", ws)
	}
	if ws.PointDiskHits != 0 {
		t.Errorf("restarted sweep hit %d points on disk despite the model change", ws.PointDiskHits)
	}
	if ws.DiskErrors != 0 {
		t.Errorf("restarted sweep hit disk errors (failed revival verifications?): %+v", ws)
	}

	// The revived schedule is the same design: the state count and area
	// (NAND-equivalents) are untouched by the report model, and the
	// critical path scales linearly with it. (Simulated latency is NOT
	// compared across the model change — the stimulus seed includes the
	// canonical config, which the new axis is deliberately part of.)
	for i := range space {
		c0, c1 := coldPts[i], warmPts[i]
		if c0.Cycles != c1.Cycles {
			t.Errorf("%s: state count drifted across revival: %d vs %d",
				space[i], c0.Cycles, c1.Cycles)
		}
		if math.Abs(c1.CritPath-2*c0.CritPath) > 1e-9 {
			t.Errorf("%s: critical path %.3f, want 2x of %.3f", space[i], c1.CritPath, c0.CritPath)
		}
		if c0.Area != c1.Area {
			t.Errorf("%s: area drifted across revival: %v vs %v", space[i], c0.Area, c1.Area)
		}
	}

	// Determinism of the revived path: a fully cold engine evaluating
	// the same scaled configs — recomputing every stage from source —
	// must produce identical points.
	ref := &explore.Engine{SimTrials: 1}
	refPts := ref.Sweep(scaled)
	for i := range scaled {
		if !reflect.DeepEqual(refPts[i], warmPts[i]) {
			t.Errorf("%s: revived evaluation diverged from cold evaluation:\n  cold: %+v\n  revived: %+v",
				scaled[i], refPts[i], warmPts[i])
		}
	}
}

// TestBackendDiskRevival changes only the simulation depth across the
// restart: every point key misses but all three stage artifacts —
// including the backend netlist — revive from disk, so the restarted
// sweep runs zero synthesis stages.
func TestBackendDiskRevival(t *testing.T) {
	dir := t.TempDir()
	space := fullFlowSpace()

	cold := &explore.Engine{SimTrials: 1, CacheDir: dir}
	for _, p := range cold.Sweep(space) {
		if p.Err != "" {
			t.Fatalf("cold sweep failed: %s: %s", p.Config, p.Err)
		}
	}

	warm := &explore.Engine{SimTrials: 2, CacheDir: dir}
	for _, p := range warm.Sweep(space) {
		if p.Err != "" {
			t.Fatalf("re-simulated sweep failed: %s: %s", p.Config, p.Err)
		}
	}
	ws := warm.Stats()
	if ws.FrontendDiskHits == 0 || ws.MidendDiskHits == 0 || ws.BackendDiskHits == 0 {
		t.Errorf("stage artifacts did not revive from disk: %+v", ws)
	}
	if ws.FrontendComputed+ws.MidendComputed+ws.BackendComputed != 0 {
		t.Errorf("re-simulated sweep recomputed stages (fe=%d me=%d be=%d), want all revived",
			ws.FrontendComputed, ws.MidendComputed, ws.BackendComputed)
	}

	// Determinism across revival: a fully cold engine at the same
	// simulation depth must score every point identically.
	ref := &explore.Engine{SimTrials: 2}
	refPts := ref.Sweep(space)
	warmPts := warm.Sweep(space) // in-memory now; same values
	for i := range space {
		if !reflect.DeepEqual(refPts[i], warmPts[i]) {
			t.Errorf("%s: revived evaluation diverged from cold evaluation:\n  cold: %+v\n  revived: %+v",
				space[i], refPts[i], warmPts[i])
		}
	}
}

// corruptKind flips the payloads of every artifact file of one kind in
// the cache directory, returning how many files were garbled.
func corruptKind(t *testing.T, dir, kind string) int {
	t.Helper()
	n := 0
	err := filepath.WalkDir(dir, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() || filepath.Ext(path) != ".art" {
			return nil
		}
		if !strings.Contains(path, string(filepath.Separator)+kind+string(filepath.Separator)) {
			return nil
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		// Keep the length, trash the tail: the header may survive, the
		// payload (or its fingerprint) cannot.
		for i := len(data) / 2; i < len(data); i++ {
			data[i] ^= 0xa5
		}
		n++
		return os.WriteFile(path, data, 0o644)
	})
	if err != nil {
		t.Fatal(err)
	}
	return n
}

// TestCorruptMidendArtifactsAreCleanMisses garbles every persisted
// midend artifact and asserts the next process treats them as misses —
// recomputing instead of trusting an unverifiable revival — and still
// produces correct points.
func TestCorruptMidendArtifactsAreCleanMisses(t *testing.T) {
	dir := t.TempDir()
	space := fullFlowSpace()

	cold := &explore.Engine{SimTrials: 1, CacheDir: dir}
	coldPts := cold.Sweep(space)

	if n := corruptKind(t, dir, "midend"); n == 0 {
		t.Fatal("no midend artifacts found to corrupt")
	}
	// Points would mask the stage caches entirely; drop them so the
	// corrupted midend layer is actually exercised.
	if n := corruptKind(t, dir, "point"); n == 0 {
		t.Fatal("no points found to corrupt")
	}

	warm := &explore.Engine{SimTrials: 1, CacheDir: dir}
	warmPts := warm.Sweep(space)
	for i, p := range warmPts {
		if p.Err != "" {
			t.Fatalf("sweep over corrupted cache failed: %s: %s", p.Config, p.Err)
		}
		if !reflect.DeepEqual(p, coldPts[i]) {
			t.Errorf("%s: corrupted cache changed the result: %+v vs %+v", space[i], p, coldPts[i])
		}
	}
	ws := warm.Stats()
	if ws.MidendDiskHits != 0 {
		t.Errorf("corrupted midend artifacts served %d disk hits, want 0", ws.MidendDiskHits)
	}
	if ws.MidendComputed == 0 {
		t.Error("corrupted midend artifacts were not recomputed")
	}
	if ws.DiskErrors == 0 {
		t.Error("corruption left no trace in DiskErrors")
	}
	// The frontend layer was untouched and must still serve from disk.
	if ws.FrontendDiskHits == 0 {
		t.Errorf("frontend disk hits vanished: %+v", ws)
	}
}

// TestReportNandIsCanonical pins the new backend axis into the
// config's canonical string (the cache key): two configs differing only
// in ReportNand must never alias.
func TestReportNandIsCanonical(t *testing.T) {
	a := explore.Config{N: 4}
	b := a
	b.ReportNand = 2
	if a.String() == b.String() {
		t.Fatalf("ReportNand not canonical: %q", a.String())
	}
	if a.Key() == b.Key() {
		t.Error("ReportNand configs alias under Key()")
	}
}
