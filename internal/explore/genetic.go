package explore

import (
	"context"
	"math/rand"
	"sort"
)

// Genetic is a small steady-generation genetic algorithm over a Space:
// tournament selection, order-preserving (OX1) crossover on the motion
// permutation, uniform knob inheritance, and per-knob prefix-biased
// mutation. Elites carry over unchanged, so the best-so-far never
// regresses. Each generation is scored as one engine batch, so the
// worker pool parallelizes within a generation while the trajectory
// stays seed-deterministic.
type Genetic struct {
	// Population size (default 12; the identity candidate — the paper's
	// coordinated plan — is always seeded into the first generation).
	Population int
	// Generations caps evolution (0 = until the budget runs out or
	// staleRounds consecutive generations discover nothing new).
	Generations int
	// TournamentK is the selection tournament size (default 3).
	TournamentK int
	// CrossoverRate is the probability a child is bred from two parents
	// rather than cloned from one (default 0.9).
	CrossoverRate float64
	// MutationRate is the per-child probability of one mutation move
	// (default 0.5). Mutation positions are tail-biased (see
	// Space.mutate), preserving pass-list prefixes.
	MutationRate float64
	// Elite is the number of best candidates copied unchanged into the
	// next generation (default 1).
	Elite int
}

func (g Genetic) Name() string { return "genetic" }

// defaults fills zero fields; the zero value is a usable configuration.
func (g Genetic) defaults() Genetic {
	if g.Population <= 0 {
		g.Population = 12
	}
	if g.TournamentK <= 0 {
		g.TournamentK = 3
	}
	if g.CrossoverRate <= 0 {
		g.CrossoverRate = 0.9
	}
	if g.MutationRate <= 0 {
		g.MutationRate = 0.5
	}
	if g.Elite <= 0 {
		g.Elite = 1
	}
	if g.Elite > g.Population {
		g.Elite = g.Population
	}
	return g
}

// scored pairs a candidate with its objective value for ranking.
type scored struct {
	cand  candidate
	score float64
}

func (g Genetic) Search(eng *Engine, sp Space, obj Objective, b Budget, seed int64) Result {
	return g.SearchContext(context.Background(), eng, sp, obj, b, seed)
}

// SearchContext is Search under a context: cancellation stops evolution
// at the next generation boundary, keeping the trajectory found so far.
func (g Genetic) SearchContext(ctx context.Context, eng *Engine, sp Space, obj Objective, b Budget, seed int64) Result {
	g = g.defaults()
	rng := rand.New(rand.NewSource(seed))
	run := newSearchRun(ctx, eng, &sp, obj, b, g.Name(), seed)

	// Found the first generation on the identity plan — paired with its
	// chaining flip, the guaranteed frontend-sharing probe of the
	// scheduler knob — plus random draws.
	pop := make([]candidate, 0, g.Population)
	pop = append(pop, sp.identity())
	if sp.ToggleChaining && g.Population > 1 {
		flip := sp.identity()
		flip.chain = !flip.chain
		pop = append(pop, flip)
	}
	for len(pop) < g.Population {
		pop = append(pop, sp.random(rng))
	}
	ranked := g.rank(run, pop)
	if len(ranked) == 0 {
		// Nothing scored: the budget or the context cut the first
		// generation. out() stamps Exhausted/Canceled on the result.
		run.out()
		return run.result
	}

	stale := 0
	for gen := 0; !run.out() && stale < staleRounds; gen++ {
		if g.Generations > 0 && gen >= g.Generations {
			break
		}
		before := run.result.Evaluations
		next := make([]candidate, 0, g.Population)
		for i := 0; i < g.Elite && i < len(ranked); i++ {
			next = append(next, ranked[i].cand.clone())
		}
		for len(next) < g.Population {
			child := g.tournament(ranked, rng).cand.clone()
			if rng.Float64() < g.CrossoverRate {
				mate := g.tournament(ranked, rng)
				child = crossover(child, mate.cand, rng)
			}
			if rng.Float64() < g.MutationRate {
				sp.mutate(&child, rng)
			}
			next = append(next, child)
		}
		ranked = g.rank(run, next)
		if len(ranked) == 0 {
			run.out() // stamp Exhausted/Canceled before stopping
			break     // budget (or cancellation) cut the whole generation
		}
		run.result.Generations = gen + 1
		run.round(gen + 1)
		if run.result.Evaluations == before {
			stale++
		} else {
			stale = 0
		}
	}
	return run.result
}

// rank scores a population as one engine batch and returns the scored
// survivors best-first (stable under equal scores, so ranking — and the
// whole run — is deterministic). Candidates the budget left unscored are
// dropped.
func (g Genetic) rank(run *searchRun, pop []candidate) []scored {
	vals, ok := run.scores(pop)
	ranked := make([]scored, 0, len(pop))
	for i := range pop {
		if ok[i] {
			ranked = append(ranked, scored{cand: pop[i], score: vals[i]})
		}
	}
	sort.SliceStable(ranked, func(i, j int) bool { return ranked[i].score < ranked[j].score })
	return ranked
}

// tournament draws TournamentK candidates with replacement and returns
// the fittest.
func (g Genetic) tournament(ranked []scored, rng *rand.Rand) scored {
	best := ranked[rng.Intn(len(ranked))]
	for i := 1; i < g.TournamentK; i++ {
		if c := ranked[rng.Intn(len(ranked))]; c.score < best.score {
			best = c
		}
	}
	return best
}

// crossover breeds a child from two candidates: OX1 order crossover on
// the motion permutation (a contiguous slice of a's ordering survives in
// place; the rest fills in b's relative order, preserving precedence
// structure from both parents) plus uniform inheritance of the mask and
// the scalar knobs.
func crossover(a candidate, b candidate, rng *rand.Rand) candidate {
	child := a.clone()
	n := len(a.order)
	if n > 1 {
		lo, hi := rng.Intn(n), rng.Intn(n)
		if lo > hi {
			lo, hi = hi, lo
		}
		kept := make([]bool, n)
		for i := lo; i <= hi; i++ {
			kept[a.order[i]] = true
		}
		fill := hi + 1
		for _, m := range b.order {
			if kept[m] {
				continue
			}
			child.order[fill%n] = m
			fill++
		}
	}
	for i := range child.mask {
		if rng.Intn(2) == 0 {
			child.mask[i] = b.mask[i]
		}
	}
	if rng.Intn(2) == 0 {
		child.unroll = b.unroll
	}
	if rng.Intn(2) == 0 {
		child.size = b.size
	}
	if rng.Intn(2) == 0 {
		child.chain = b.chain
	}
	return child
}
