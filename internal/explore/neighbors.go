package explore

import (
	"fmt"
	"math/rand"
	"strings"

	"sparkgo/internal/core"
)

// Space is the neighborhood definition of an adaptive search: the axes a
// strategy may mutate and the fixed scaffolding around them. A candidate
// drawn from the space is a pass ordering over Motions (with per-motion
// enable toggles), an unroll-bound choice, a scale choice, and a
// chaining switch — the explicit-pass-list rendering of the grid axes
// Grid sweeps exhaustively.
type Space struct {
	// Base is the config template: source selection, preset, and every
	// field the search does not mutate are taken from it verbatim.
	Base Config
	// Prologue and Epilogue are fixed pass segments wrapped around the
	// permutable middle. Keeping them fixed is what makes neighbor moves
	// cheap: candidates agree on the list head, and backend-knob moves
	// agree on the whole list.
	Prologue []string
	Epilogue []string
	// Motions is the permutable pass segment — the ordering axis.
	Motions []string
	// UnrollBounds are the candidate bounds substituted into the
	// "unroll all full" motion (0 = unbounded). Empty leaves motion
	// specs untouched.
	UnrollBounds []int
	// Sizes, when non-empty, adds the generator-scale axis: a candidate
	// picks one N from this list (overriding Base.N). Objectives then
	// compare designs across scales, so leave it empty unless that is
	// what you want.
	Sizes []int
	// ToggleMotions allows candidates to drop individual motions — the
	// explicit-pass-list form of the A1–A4 knockout toggles.
	ToggleMotions bool
	// ToggleChaining allows NoChaining flips. Chaining is a pure
	// scheduler knob, so these neighbors share the incumbent's frontend
	// artifact byte-for-byte: the cheapest move in the space.
	ToggleChaining bool
}

// DefaultSpace is the paper's search space at scale n: the coordinated
// motion passes (speculation, full unrolling, constant propagation, CSE)
// permutable and droppable between the fixed inline prologue and cleanup
// epilogue, over both unroll bounds and the chaining switch.
func DefaultSpace(n int) Space {
	return Space{
		Base:           Config{N: n, Preset: core.MicroprocessorBlock},
		Prologue:       []string{"inline", "drop-uncalled"},
		Motions:        []string{"speculate", "unroll all full", "constprop", "cse"},
		Epilogue:       []string{"constfold", "copyprop", "dce"},
		UnrollBounds:   []int{0, 8},
		ToggleMotions:  true,
		ToggleChaining: true,
	}
}

// candidate is one point of a Space, in genome form: a permutation over
// Motions, a per-motion enable mask, knob indices, and the chaining
// switch. Strategies mutate candidates; Space.config lowers one to the
// Config the engine evaluates.
type candidate struct {
	order  []int  // permutation of Motions indices, execution order
	mask   []bool // mask[i]: motion i enabled
	unroll int    // index into UnrollBounds (0 when empty)
	size   int    // index into Sizes (0 when empty)
	chain  bool   // Config.NoChaining
}

func (c candidate) clone() candidate {
	d := c
	d.order = append([]int(nil), c.order...)
	d.mask = append([]bool(nil), c.mask...)
	return d
}

// identity is the search's deterministic starting candidate: motions in
// declaration order, everything enabled, first knob values, chaining as
// the base config has it. For DefaultSpace this is exactly the paper's
// coordinated plan.
func (sp *Space) identity() candidate {
	c := candidate{
		order: make([]int, len(sp.Motions)),
		mask:  make([]bool, len(sp.Motions)),
		chain: sp.Base.NoChaining,
	}
	for i := range c.order {
		c.order[i] = i
		c.mask[i] = true
	}
	return c
}

// random draws a uniform candidate — the restart/population seed.
func (sp *Space) random(rng *rand.Rand) candidate {
	c := sp.identity()
	copy(c.order, rng.Perm(len(sp.Motions)))
	if sp.ToggleMotions {
		for i := range c.mask {
			c.mask[i] = rng.Intn(4) != 0 // bias toward keeping motions on
		}
	}
	if len(sp.UnrollBounds) > 0 {
		c.unroll = rng.Intn(len(sp.UnrollBounds))
	}
	if len(sp.Sizes) > 0 {
		c.size = rng.Intn(len(sp.Sizes))
	}
	if sp.ToggleChaining {
		c.chain = rng.Intn(2) == 0
	}
	return c
}

// config lowers a candidate to the engine's Config: prologue, the
// enabled motions in candidate order (with the unroll bound substituted
// into the unroll motion), epilogue.
func (sp *Space) config(c candidate) Config {
	cfg := sp.Base
	passes := append([]string(nil), sp.Prologue...)
	for _, i := range c.order {
		if !c.mask[i] {
			continue
		}
		passes = append(passes, sp.motionSpec(i, c))
	}
	passes = append(passes, sp.Epilogue...)
	cfg.Passes = passes
	cfg.NoChaining = c.chain
	if len(sp.Sizes) > 0 {
		cfg.N = sp.Sizes[c.size]
	}
	return cfg
}

// motionSpec renders motion i under the candidate's knobs: the unroll
// motion carries the selected bound as its spec argument.
func (sp *Space) motionSpec(i int, c candidate) string {
	spec := sp.Motions[i]
	if len(sp.UnrollBounds) > 0 && strings.HasPrefix(spec, "unroll") {
		if b := sp.UnrollBounds[c.unroll]; b > 0 {
			spec = fmt.Sprintf("%s %d", spec, b)
		}
	}
	return spec
}

// neighbors enumerates the candidate's neighborhood, cheapest and most
// prefix-preserving moves first, capped at limit (0 = all):
//
//  1. the chaining flip — identical pass list, so it is served from the
//     incumbent's frontend artifact (a frontend mem-hit by construction);
//  2. unroll-bound and scale steps (±1 on the knob index);
//  3. adjacent swaps in the motion order, deepest pair first;
//  4. motion enable flips, deepest execution position first.
//
// The tail-first ordering is the prefix bias the stage cache wants: a
// capped neighborhood mutates only the deepest pass-list positions, so
// candidate lists share long prefixes with the incumbent — and converge
// back onto already-evaluated full lists (point or frontend cache hits)
// far more often than head mutations would.
func (sp *Space) neighbors(c candidate, limit int) []candidate {
	var out []candidate
	add := func(n candidate) { out = append(out, n) }
	if sp.ToggleChaining {
		n := c.clone()
		n.chain = !n.chain
		add(n)
	}
	for _, step := range []int{1, -1} {
		if u := c.unroll + step; u >= 0 && u < len(sp.UnrollBounds) {
			n := c.clone()
			n.unroll = u
			add(n)
		}
		if s := c.size + step; len(sp.Sizes) > 0 && s >= 0 && s < len(sp.Sizes) {
			n := c.clone()
			n.size = s
			add(n)
		}
	}
	for i := len(c.order) - 2; i >= 0; i-- {
		n := c.clone()
		n.order[i], n.order[i+1] = n.order[i+1], n.order[i]
		add(n)
	}
	if sp.ToggleMotions {
		for i := len(c.order) - 1; i >= 0; i-- {
			n := c.clone()
			n.mask[c.order[i]] = !n.mask[c.order[i]]
			add(n)
		}
	}
	if limit > 0 && len(out) > limit {
		out = out[:limit]
	}
	return out
}

// OrderGrid enumerates the exhaustive grid over the space's ordering ×
// unroll-bound × chaining axes with every motion enabled — the ground
// truth an adaptive search is judged against (experiment E17). Grid
// configs go through the same candidate lowering the strategies use
// (Space.config), so the baseline and the search can never drift onto
// different renderings of the same space. The knockout and scale axes
// stay at their identity values.
func (sp Space) OrderGrid() []Config {
	unrolls := len(sp.UnrollBounds)
	if unrolls == 0 {
		unrolls = 1
	}
	chains := []bool{sp.Base.NoChaining}
	if sp.ToggleChaining {
		chains = []bool{false, true}
	}
	var grid []Config
	for _, ord := range permutations(len(sp.Motions)) {
		for u := 0; u < unrolls; u++ {
			for _, ch := range chains {
				c := sp.identity()
				copy(c.order, ord)
				c.unroll = u
				c.chain = ch
				grid = append(grid, sp.config(c))
			}
		}
	}
	return grid
}

// permutations enumerates every ordering of [0, n) in lexicographic
// order (n = 0 yields the single empty ordering).
func permutations(n int) [][]int {
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	out := [][]int{append([]int(nil), idx...)}
	for {
		i := n - 2
		for i >= 0 && idx[i] >= idx[i+1] {
			i--
		}
		if i < 0 {
			return out
		}
		j := n - 1
		for idx[j] <= idx[i] {
			j--
		}
		idx[i], idx[j] = idx[j], idx[i]
		for l, r := i+1, n-1; l < r; l, r = l+1, r-1 {
			idx[l], idx[r] = idx[r], idx[l]
		}
		out = append(out, append([]int(nil), idx...))
	}
}

// tailIndex draws an index in [0, n) with probability proportional to
// i+1 — the sampling form of the prefix bias, used by the genetic
// strategy's point mutations: deep (late) positions mutate often, the
// list head rarely.
func tailIndex(rng *rand.Rand, n int) int {
	if n <= 1 {
		return 0
	}
	r := rng.Intn(n * (n + 1) / 2)
	for i := 0; i < n; i++ {
		r -= i + 1
		if r < 0 {
			return i
		}
	}
	return n - 1
}

// mutate applies one random prefix-biased move in place — the genetic
// strategy's per-knob mutation operator. Move weights favor the cheap
// backend knob and deep-position order changes.
func (sp *Space) mutate(c *candidate, rng *rand.Rand) {
	type move func()
	var moves []move
	if sp.ToggleChaining {
		moves = append(moves, func() { c.chain = !c.chain })
	}
	if len(sp.UnrollBounds) > 1 {
		moves = append(moves, func() { c.unroll = rng.Intn(len(sp.UnrollBounds)) })
	}
	if len(sp.Sizes) > 1 {
		moves = append(moves, func() { c.size = rng.Intn(len(sp.Sizes)) })
	}
	if len(c.order) > 1 {
		moves = append(moves, func() {
			i := tailIndex(rng, len(c.order)-1)
			c.order[i], c.order[i+1] = c.order[i+1], c.order[i]
		})
	}
	if sp.ToggleMotions && len(c.mask) > 0 {
		moves = append(moves, func() {
			i := c.order[tailIndex(rng, len(c.order))]
			c.mask[i] = !c.mask[i]
		})
	}
	if len(moves) == 0 {
		return
	}
	moves[rng.Intn(len(moves))]()
}
