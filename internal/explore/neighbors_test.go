package explore

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"
)

// TestSpaceConfigLowering pins the candidate → Config lowering: pass
// list assembly order, unroll-bound substitution, motion masking, the
// chaining switch, and the scale override.
func TestSpaceConfigLowering(t *testing.T) {
	sp := DefaultSpace(4)
	sp.Sizes = []int{4, 8}

	id := sp.identity()
	cfg := sp.config(id)
	want := []string{"inline", "drop-uncalled",
		"speculate", "unroll all full", "constprop", "cse",
		"constfold", "copyprop", "dce"}
	if !reflect.DeepEqual(cfg.Passes, want) {
		t.Fatalf("identity passes = %v, want %v", cfg.Passes, want)
	}
	if cfg.N != 4 || cfg.NoChaining {
		t.Fatalf("identity knobs: %+v", cfg)
	}

	c := id.clone()
	c.order = []int{2, 1, 0, 3} // constprop, unroll, speculate, cse
	c.mask[0] = false           // drop speculate
	c.unroll = 1                // bound 8
	c.size = 1                  // n=8
	c.chain = true
	cfg = sp.config(c)
	want = []string{"inline", "drop-uncalled",
		"constprop", "unroll all full 8", "cse",
		"constfold", "copyprop", "dce"}
	if !reflect.DeepEqual(cfg.Passes, want) {
		t.Fatalf("mutated passes = %v, want %v", cfg.Passes, want)
	}
	if cfg.N != 8 || !cfg.NoChaining {
		t.Fatalf("mutated knobs: %+v", cfg)
	}
}

// TestNeighborsPrefixBias pins the neighborhood contract: the chaining
// flip (identical pass list — a guaranteed frontend share) comes first,
// order mutations touch the deepest pass-list positions first, and a
// capped neighborhood therefore keeps only prefix-preserving moves.
func TestNeighborsPrefixBias(t *testing.T) {
	sp := DefaultSpace(4)
	id := sp.identity()
	base := sp.config(id)
	neigh := sp.neighbors(id, 0)
	// chain flip + 1 unroll step + 3 swaps + 4 mask flips
	if len(neigh) != 9 {
		t.Fatalf("full neighborhood has %d moves, want 9", len(neigh))
	}

	first := sp.config(neigh[0])
	if !reflect.DeepEqual(first.Passes, base.Passes) || first.NoChaining == base.NoChaining {
		t.Fatalf("first neighbor is not the chaining flip: %q", first.String())
	}

	// First swap move: only the deepest two motions exchange.
	swap := sp.config(neigh[2])
	wantTail := []string{"speculate", "unroll all full", "cse", "constprop"}
	if got := swap.Passes[2:6]; !reflect.DeepEqual([]string(got), wantTail) {
		t.Fatalf("first swap mutates %v, want deepest pair -> %v", got, wantTail)
	}

	// A capped neighborhood is a prefix of the full one: cheap and
	// deep-mutation moves survive, head mutations are dropped.
	capped := sp.neighbors(id, 3)
	if !reflect.DeepEqual(capped, neigh[:3]) {
		t.Fatal("capped neighborhood is not the cheapest prefix")
	}
	// Every order move among the kept three preserves the pass-list
	// head through the first motion.
	for _, n := range capped {
		cfg := sp.config(n)
		if !strings.HasPrefix(strings.Join(cfg.Passes, ";"), "inline;drop-uncalled;speculate") {
			t.Fatalf("capped move broke the shared prefix: %v", cfg.Passes)
		}
	}
}

// TestTailIndexBias checks the sampling form of the prefix bias: deep
// indices are drawn with probability proportional to position.
func TestTailIndexBias(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const n, draws = 4, 4000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[tailIndex(rng, n)]++
	}
	if counts[n-1] <= counts[0]*2 {
		t.Fatalf("tail not favored: counts = %v", counts)
	}
	sum := 0
	for _, c := range counts {
		sum += c
	}
	if sum != draws {
		t.Fatalf("lost draws: %v", counts)
	}
}

// TestCrossoverPermutation: OX1 must always produce a valid permutation
// and inherit every scalar knob from one of the parents.
func TestCrossoverPermutation(t *testing.T) {
	sp := DefaultSpace(4)
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 200; trial++ {
		a, b := sp.random(rng), sp.random(rng)
		child := crossover(a, b, rng)
		seen := make([]bool, len(child.order))
		for _, m := range child.order {
			if m < 0 || m >= len(seen) || seen[m] {
				t.Fatalf("trial %d: invalid permutation %v (parents %v, %v)",
					trial, child.order, a.order, b.order)
			}
			seen[m] = true
		}
		if child.unroll != a.unroll && child.unroll != b.unroll {
			t.Fatalf("trial %d: unroll %d from neither parent", trial, child.unroll)
		}
		if child.chain != a.chain && child.chain != b.chain {
			t.Fatalf("trial %d: chain from neither parent", trial)
		}
	}
}

// TestMutatePreservesValidity: every mutation move keeps the candidate
// inside the space.
func TestMutatePreservesValidity(t *testing.T) {
	sp := DefaultSpace(4)
	sp.Sizes = []int{2, 3, 4}
	rng := rand.New(rand.NewSource(13))
	c := sp.identity()
	for i := 0; i < 500; i++ {
		sp.mutate(&c, rng)
		seen := make([]bool, len(c.order))
		for _, m := range c.order {
			if seen[m] {
				t.Fatalf("mutation %d broke the permutation: %v", i, c.order)
			}
			seen[m] = true
		}
		if c.unroll < 0 || c.unroll >= len(sp.UnrollBounds) ||
			c.size < 0 || c.size >= len(sp.Sizes) {
			t.Fatalf("mutation %d pushed knobs out of range: %+v", i, c)
		}
	}
}
