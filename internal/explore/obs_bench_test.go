package explore_test

import (
	"testing"

	"sparkgo/internal/explore"
	"sparkgo/internal/obs"
)

// The acceptance gate for the observability layer: a warm sweep on an
// instrumented engine with no subscriber attached must sit within
// noise of the uninstrumented (nil-bus) baseline. Compare:
//
//	go test -run=NONE -bench=BenchmarkSweepWarm ./internal/explore
func benchmarkSweepWarm(b *testing.B, bus *obs.Bus) {
	eng := &explore.Engine{Workers: 1, SimTrials: 2, Obs: bus}
	space := explore.Grid([]int{3, 4}, explore.Variants(), []int{0}, true)
	if pts := eng.Sweep(space); len(pts) != len(space) {
		b.Fatal("warmup sweep failed")
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng.Sweep(space)
	}
}

func BenchmarkSweepWarmObsOff(b *testing.B) {
	benchmarkSweepWarm(b, nil)
}

func BenchmarkSweepWarmObsNoSubscribers(b *testing.B) {
	benchmarkSweepWarm(b, obs.NewBus(obs.NewMetrics(obs.NewRegistry())))
}
