package explore_test

import (
	"context"
	"reflect"
	"testing"

	"sparkgo/internal/core"
	"sparkgo/internal/explore"
	"sparkgo/internal/obs"
)

// TestSearchObserverCallbacks: an observer attached via context
// receives per-batch evaluation counts, every trajectory improvement
// as it is found, and outer-round boundaries — for every strategy,
// without perturbing the seed-deterministic trajectory.
func TestSearchObserverCallbacks(t *testing.T) {
	sp := explore.Space{
		Base:           explore.Config{N: 2, Preset: core.MicroprocessorBlock},
		Prologue:       []string{"inline", "drop-uncalled"},
		Motions:        []string{"constprop", "cse"},
		Epilogue:       []string{"dce"},
		ToggleMotions:  true,
		ToggleChaining: true,
	}
	budget := explore.Budget{MaxEvaluations: 12}
	for _, st := range append(searchStrategies(), explore.SimulatedAnnealing{}) {
		baseline := st.Search(&explore.Engine{}, sp, explore.LatencyObjective(), budget, 7)

		var batches []int
		var steps []explore.Step
		rounds := 0
		ctx := explore.WithSearchObserver(context.Background(), &explore.SearchObserver{
			OnBatch:       func(evals int) { batches = append(batches, evals) },
			OnImprovement: func(s explore.Step) { steps = append(steps, s) },
			OnRound:       func(int) { rounds++ },
		})
		res := st.SearchContext(ctx, &explore.Engine{}, sp, explore.LatencyObjective(), budget, 7)

		if !reflect.DeepEqual(res.Trajectory, baseline.Trajectory) {
			t.Errorf("%s: observer changed the trajectory", st.Name())
		}
		if len(batches) == 0 {
			t.Fatalf("%s: OnBatch never fired", st.Name())
		}
		for i := 1; i < len(batches); i++ {
			if batches[i] < batches[i-1] {
				t.Errorf("%s: batch evaluations not monotonic: %v", st.Name(), batches)
				break
			}
		}
		if got := batches[len(batches)-1]; got != res.Evaluations {
			t.Errorf("%s: last OnBatch = %d, result evaluations = %d", st.Name(), got, res.Evaluations)
		}
		if !reflect.DeepEqual(steps, res.Trajectory) {
			t.Errorf("%s: OnImprovement steps %v != trajectory %v", st.Name(), steps, res.Trajectory)
		}
		if rounds == 0 {
			t.Errorf("%s: OnRound never fired", st.Name())
		}
	}
}

// TestEngineStageEvents: an engine with a bus attached publishes stage
// spans with the right dispositions (computed on a cold evaluation, a
// memory hit on the repeat), tier traffic, and a simulation event —
// and the folded metrics agree.
func TestEngineStageEvents(t *testing.T) {
	reg := obs.NewRegistry()
	bus := obs.NewBus(obs.NewMetrics(reg))
	eng := &explore.Engine{SimTrials: 4, Obs: bus}
	sub := bus.Subscribe(1024)

	cfg := explore.Config{N: 2, Preset: core.MicroprocessorBlock}
	if pt := eng.Evaluate(cfg); pt.Err != "" {
		t.Fatalf("cold evaluation failed: %s", pt.Err)
	}
	if pt := eng.Evaluate(cfg); pt.Err != "" {
		t.Fatalf("warm evaluation failed: %s", pt.Err)
	}
	bus.Unsubscribe(sub)

	byKey := map[string]int{}
	for ev := range sub.C {
		switch ev.Type {
		case obs.TypeStage:
			if ev.DurationNs < 0 {
				t.Errorf("negative stage duration: %+v", ev)
			}
			byKey[ev.Type+"/"+ev.Stage+"/"+ev.Disposition]++
		case obs.TypeSim:
			if ev.Cycles <= 0 {
				t.Errorf("sim event without cycles: %+v", ev)
			}
			byKey["sim"]++
		case obs.TypeTier:
			byKey["tier/"+ev.Tier+"/"+ev.Op]++
		}
	}
	for _, want := range []string{
		"stage/frontend/computed",
		"stage/midend/computed",
		"stage/backend/computed",
		"stage/point/computed",
		"stage/point/mem",
		"sim",
		"tier/mem/miss",
		"tier/mem/hit",
		"tier/mem/put",
	} {
		if byKey[want] == 0 {
			t.Errorf("no %q event; saw %v", want, byKey)
		}
	}

	snap := reg.Snapshot()
	if snap[`sparkgo_stage_latency_seconds_count{disposition="computed",stage="frontend"}`] < 1 {
		t.Error("metrics missing computed frontend stage latency")
	}
	if snap[`sparkgo_stage_latency_seconds_count{disposition="mem",stage="point"}`] < 1 {
		t.Error("metrics missing point memory hit latency")
	}
	if snap[`sparkgo_cache_tier_ops_total{op="hit",tier="mem"}`] < 1 {
		t.Error("metrics missing mem tier hits")
	}
	if snap["sparkgo_sim_cycles_count"] < 1 {
		t.Error("metrics missing sim cycles")
	}
}

// TestEngineNilBusNoEvents: the uninstrumented engine must work
// exactly as before — this is the nil-bus fast path compiled into
// every instrumentation site.
func TestEngineNilBusNoEvents(t *testing.T) {
	eng := &explore.Engine{SimTrials: 2}
	if pt := eng.Evaluate(explore.Config{N: 2, Preset: core.MicroprocessorBlock}); pt.Err != "" {
		t.Fatalf("evaluation failed: %s", pt.Err)
	}
}
