package explore

import (
	"sort"
	"strings"

	"sparkgo/internal/core"
)

// PermutePasses enumerates distinct orderings of a pass-spec list — the
// pass-order axis of the design space. Orderings are generated in
// lexicographic index order (so the identity ordering comes first and
// the sequence is deterministic), de-duplicated when specs repeat, and
// capped at limit (0 = all). The returned slices are freshly allocated
// and safe to hand to Config.Passes.
func PermutePasses(specs []string, limit int) [][]string {
	if len(specs) == 0 {
		return nil
	}
	var out [][]string
	seen := map[string]bool{}
	idx := make([]int, len(specs))
	for i := range idx {
		idx[i] = i
	}
	emit := func() bool {
		order := make([]string, len(idx))
		for i, j := range idx {
			order[i] = specs[j]
		}
		key := strings.Join(order, "\x00")
		if !seen[key] {
			seen[key] = true
			out = append(out, order)
		}
		return limit > 0 && len(out) >= limit
	}
	for {
		if emit() {
			return out
		}
		// Advance idx to the next lexicographic permutation.
		i := len(idx) - 2
		for i >= 0 && idx[i] >= idx[i+1] {
			i--
		}
		if i < 0 {
			return out
		}
		j := len(idx) - 1
		for idx[j] <= idx[i] {
			j--
		}
		idx[i], idx[j] = idx[j], idx[i]
		sort.Ints(idx[i+1:])
	}
}

// PassOrderGrid builds one microprocessor-regime configuration per pass
// ordering at scale n — the sweep space of the pass-order experiment.
func PassOrderGrid(n int, orders [][]string) []Config {
	space := make([]Config, 0, len(orders))
	for _, order := range orders {
		space = append(space, Config{
			N: n, Preset: core.MicroprocessorBlock, Passes: order,
		})
	}
	return space
}

// PassOrderGridSources is PassOrderGrid over named sources instead of
// the generator scale.
func PassOrderGridSources(names []string, orders [][]string) []Config {
	var space []Config
	for _, name := range names {
		for _, order := range orders {
			space = append(space, Config{
				Source: name, Preset: core.MicroprocessorBlock, Passes: order,
			})
		}
	}
	return space
}
