package explore_test

import (
	"reflect"
	"strings"
	"testing"

	"sparkgo/internal/explore"
)

func TestPermutePasses(t *testing.T) {
	specs := []string{"a", "b", "c"}
	all := explore.PermutePasses(specs, 0)
	if len(all) != 6 {
		t.Fatalf("got %d permutations of 3 specs, want 6", len(all))
	}
	if !reflect.DeepEqual(all[0], specs) {
		t.Fatalf("first permutation %v is not the identity ordering", all[0])
	}
	seen := map[string]bool{}
	for _, p := range all {
		seen[strings.Join(p, ",")] = true
	}
	if len(seen) != 6 {
		t.Fatalf("permutations not distinct: %v", all)
	}
	// Deterministic across calls.
	if !reflect.DeepEqual(all, explore.PermutePasses(specs, 0)) {
		t.Fatal("PermutePasses is not deterministic")
	}
	// Capped enumeration returns a prefix.
	capped := explore.PermutePasses(specs, 4)
	if !reflect.DeepEqual(capped, all[:4]) {
		t.Fatalf("limit=4 returned %v, want prefix of full enumeration", capped)
	}
	// Duplicate specs de-duplicate.
	dup := explore.PermutePasses([]string{"x", "x", "y"}, 0)
	if len(dup) != 3 {
		t.Fatalf("got %d distinct orderings of [x x y], want 3", len(dup))
	}
	// Returned slices must not alias each other's backing arrays.
	all[0][0] = "mutated"
	if all[1][0] == "mutated" {
		t.Fatal("permutations share backing storage")
	}
}

func TestPassOrderGrid(t *testing.T) {
	orders := explore.PermutePasses([]string{"inline", "dce"}, 0)
	space := explore.PassOrderGrid(4, orders)
	if len(space) != len(orders) {
		t.Fatalf("got %d configs, want %d", len(space), len(orders))
	}
	seen := map[uint64]string{}
	for i, c := range space {
		if !reflect.DeepEqual(c.Passes, orders[i]) {
			t.Fatalf("config %d passes %v, want %v", i, c.Passes, orders[i])
		}
		if prev, dup := seen[c.Key()]; dup {
			t.Fatalf("duplicate key for %q and %q", prev, c.String())
		}
		seen[c.Key()] = c.String()
	}
	named := explore.PassOrderGridSources([]string{"p", "q"}, orders)
	if len(named) != 2*len(orders) {
		t.Fatalf("got %d named configs, want %d", len(named), 2*len(orders))
	}
	if named[0].Source != "p" || named[len(named)-1].Source != "q" {
		t.Fatalf("sources not threaded through: %q, %q",
			named[0].Source, named[len(named)-1].Source)
	}
}
