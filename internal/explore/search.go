package explore

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"time"
)

// Objective scores an evaluated point; lower is better. Failed points
// must score +Inf so no strategy can climb onto an error.
type Objective func(Point) float64

// LatencyObjective minimizes simulated (or FSM) latency alone.
func LatencyObjective() Objective {
	return func(p Point) float64 {
		if p.Err != "" {
			return math.Inf(1)
		}
		return float64(p.Latency)
	}
}

// AreaObjective minimizes area alone.
func AreaObjective() Objective {
	return func(p Point) float64 {
		if p.Err != "" {
			return math.Inf(1)
		}
		return p.Area
	}
}

// WeightedObjective minimizes wLatency·latency + wArea·area — the
// scalarized trade-off. WeightedObjective(1000, 1) orders points by
// latency first with area as tiebreak at the design scales this
// repository sweeps.
func WeightedObjective(wLatency, wArea float64) Objective {
	return func(p Point) float64 {
		if p.Err != "" {
			return math.Inf(1)
		}
		return wLatency*float64(p.Latency) + wArea*p.Area
	}
}

// ObjectiveByName resolves the CLI objective names: "latency", "area",
// or "weighted" (latency-dominant with area tiebreak).
func ObjectiveByName(name string) (Objective, error) {
	switch name {
	case "latency":
		return LatencyObjective(), nil
	case "area":
		return AreaObjective(), nil
	case "weighted":
		return WeightedObjective(1000, 1), nil
	}
	return nil, fmt.Errorf("explore: unknown objective %q (want latency, area, or weighted)", name)
}

// Budget bounds a search run. Both limits are optional; a search with
// neither runs until its strategy converges — hill climbing after
// staleRounds consecutive restarts that discovered no new
// configuration, the genetic algorithm after staleRounds consecutive
// such generations — so unbudgeted searches terminate on finite spaces
// instead of cycling through revisits forever.
type Budget struct {
	// MaxEvaluations caps the number of distinct configurations the
	// search hands to the engine. Revisiting an already-scored candidate
	// is free — the search's own dedup table answers without touching
	// the budget — so the cap is comparable to a grid's config count.
	MaxEvaluations int
	// MaxDuration caps wall-clock time. It is checked between
	// evaluation batches (a neighborhood, a generation), so a search
	// may overshoot by at most one batch. Time-capped runs are still
	// seed-deterministic in everything but their stopping point.
	MaxDuration time.Duration
}

// Step is one strict improvement in a search trajectory.
type Step struct {
	// Evaluation is the 1-based count of engine evaluations spent when
	// the improvement was found.
	Evaluation int
	Score      float64
	Point      Point
}

// Result is a finished search run.
type Result struct {
	Strategy string
	Seed     int64
	// Evaluations is the number of distinct configurations evaluated —
	// the number a grid sweep of the same space should be compared
	// against.
	Evaluations int
	// Revisits counts candidate scorings answered by the search's own
	// dedup table (free; no engine call).
	Revisits int
	// Restarts (hill climbing) / Generations (genetic) count completed
	// outer iterations.
	Restarts    int
	Generations int
	// Best is the best-scoring point found. When every evaluation
	// failed, no candidate ever improves on the initial +Inf score:
	// BestScore stays +Inf and Best stays the zero Point — check
	// math.IsInf(BestScore, 1) before treating Best as a design.
	Best      Point
	BestScore float64
	// Trajectory is the strictly improving best-so-far sequence;
	// Trajectory[len-1] == {., BestScore, Best}.
	Trajectory []Step
	// Exhausted reports that the run stopped on its budget rather than
	// on strategy convergence.
	Exhausted bool
	// Canceled reports that the run was cut short by context
	// cancellation (SearchContext); the trajectory up to the cut is
	// still valid, and Exhausted is set too — a cancelled budget is a
	// spent budget.
	Canceled bool
}

// Strategy is one adaptive search algorithm over a Space. Searches are
// deterministic: the same (engine-visible state, space, objective,
// budget, seed) yields the same Result, regardless of how warm the
// engine's caches are. SearchContext additionally honors cancellation
// between evaluation batches — a cancelled run keeps everything scored
// so far; Search is SearchContext under context.Background().
type Strategy interface {
	Name() string
	Search(eng *Engine, sp Space, obj Objective, b Budget, seed int64) Result
	SearchContext(ctx context.Context, eng *Engine, sp Space, obj Objective, b Budget, seed int64) Result
}

// StrategyByName resolves the CLI strategy names: "hill" (steepest-
// ascent hill climbing with random restarts), "genetic", or "anneal"
// (Metropolis simulated annealing with reheats).
func StrategyByName(name string) (Strategy, error) {
	switch name {
	case "hill", "hill-climb", "hillclimb":
		return HillClimb{}, nil
	case "genetic", "ga":
		return Genetic{}, nil
	case "anneal", "sa", "simulated-annealing":
		return SimulatedAnnealing{}, nil
	}
	return nil, fmt.Errorf("explore: unknown strategy %q (want hill, genetic, or anneal)", name)
}

// SearchObserver receives live callbacks from a running search. All
// strategies route their evaluations through the shared searchRun, so
// one observer covers hill climbing, genetic, and annealing alike.
// Callbacks fire on the strategy's own goroutine between evaluation
// batches: they must be fast and must not call back into the search.
// Observation never changes the search itself — trajectories stay
// seed-deterministic with or without an observer attached.
type SearchObserver struct {
	// OnBatch fires after each evaluation batch with the cumulative
	// number of distinct configurations evaluated so far.
	OnBatch func(evaluations int)
	// OnImprovement fires for each strict improvement, as it is found.
	OnImprovement func(step Step)
	// OnRound fires after each completed outer round (hill-climb
	// restart, genetic generation, annealing epoch), 1-based.
	OnRound func(round int)
}

type searchObserverKey struct{}

// WithSearchObserver attaches an observer to a context; any strategy's
// SearchContext under that context reports to it.
func WithSearchObserver(ctx context.Context, o *SearchObserver) context.Context {
	return context.WithValue(ctx, searchObserverKey{}, o)
}

func searchObserverFrom(ctx context.Context) *SearchObserver {
	o, _ := ctx.Value(searchObserverKey{}).(*SearchObserver)
	return o
}

// searchRun is the budget-aware evaluator shared by the strategies: it
// lowers candidates to configs, dedups exact revisits, batches fresh
// configs through the engine's worker pool, and keeps the best-so-far
// trajectory. Strategies drive it single-threadedly; batch evaluation
// is where sweep parallelism comes from.
type searchRun struct {
	ctx      context.Context
	eng      *Engine
	sp       *Space
	obj      Objective
	budget   Budget
	deadline time.Time
	seen     map[string]float64
	observer *SearchObserver
	result   Result
}

func newSearchRun(ctx context.Context, eng *Engine, sp *Space, obj Objective, b Budget, name string, seed int64) *searchRun {
	r := &searchRun{
		ctx: ctx, eng: eng, sp: sp, obj: obj, budget: b,
		seen:     map[string]float64{},
		observer: searchObserverFrom(ctx),
		result:   Result{Strategy: name, Seed: seed, BestScore: math.Inf(1)},
	}
	if b.MaxDuration > 0 {
		r.deadline = time.Now().Add(b.MaxDuration)
	}
	return r
}

// round reports a completed outer round to the observer.
func (r *searchRun) round(n int) {
	if r.observer != nil && r.observer.OnRound != nil {
		r.observer.OnRound(n)
	}
}

// out reports whether the budget is spent or the context is done. The
// first evaluation is always allowed — unless the run was cancelled
// before it started — so every uncancelled run produces a scored Best.
func (r *searchRun) out() bool {
	if r.ctx.Err() != nil {
		r.result.Exhausted = true
		r.result.Canceled = true
		return true
	}
	if r.result.Evaluations == 0 {
		return false
	}
	if r.budget.MaxEvaluations > 0 && r.result.Evaluations >= r.budget.MaxEvaluations {
		r.result.Exhausted = true
		return true
	}
	if !r.deadline.IsZero() && !time.Now().Before(r.deadline) {
		r.result.Exhausted = true
		return true
	}
	return false
}

// scores evaluates a candidate batch, in order, spending budget only on
// configurations this search has not scored before. ok[i] reports
// whether cands[i] was scored; once the budget runs out mid-batch the
// remaining fresh candidates are left unscored (revisits are still
// answered — they are free).
func (r *searchRun) scores(cands []candidate) (scores []float64, ok []bool) {
	scores = make([]float64, len(cands))
	ok = make([]bool, len(cands))
	keys := make([]string, len(cands))
	cfgs := make([]Config, len(cands))

	// Partition into revisits and the fresh prefix the budget admits.
	var fresh []int
	for i, c := range cands {
		cfgs[i] = r.sp.config(c)
		keys[i] = cfgs[i].String()
		if s, dup := r.seen[keys[i]]; dup {
			scores[i], ok[i] = s, true
			r.result.Revisits++
			continue
		}
		// The first-evaluation-always-admitted guarantee lives in out():
		// a fresh run reaches here with an untouched budget.
		if r.budget.MaxEvaluations > 0 &&
			r.result.Evaluations+len(fresh) >= r.budget.MaxEvaluations {
			r.result.Exhausted = true
			continue
		}
		// Two copies of one fresh config in a single batch: score once.
		dupInBatch := false
		for _, j := range fresh {
			if keys[j] == keys[i] {
				dupInBatch = true
				break
			}
		}
		if dupInBatch {
			continue
		}
		fresh = append(fresh, i)
	}

	if len(fresh) > 0 {
		batch := make([]Config, len(fresh))
		for bi, i := range fresh {
			batch[bi] = cfgs[i]
		}
		pts := r.eng.SweepContext(r.ctx, batch)
		for bi, i := range fresh {
			pt := pts[bi]
			// A canceled point with our own context still alive was
			// poisoned by a DIFFERENT caller's cancellation through the
			// engine's single flight (the computing caller's context
			// governs a shared evaluation; the engine drops the entry so
			// waiters retry). Retry here — silently dropping the
			// candidate would make the search lose arms and turn
			// nondeterministic on a shared engine.
			for IsCanceled(pt) && r.ctx.Err() == nil {
				pt = r.eng.EvaluateContext(r.ctx, batch[bi])
			}
			if IsCanceled(pt) {
				// Our own cancellation: neither a score nor a spent
				// evaluation. out() will stop the run.
				continue
			}
			s := r.obj(pt)
			r.seen[keys[i]] = s
			scores[i], ok[i] = s, true
			r.result.Evaluations++
			if s < r.result.BestScore {
				r.result.BestScore = s
				r.result.Best = pt
				step := Step{Evaluation: r.result.Evaluations, Score: s, Point: pt}
				r.result.Trajectory = append(r.result.Trajectory, step)
				if r.observer != nil && r.observer.OnImprovement != nil {
					r.observer.OnImprovement(step)
				}
			}
		}
		if r.observer != nil && r.observer.OnBatch != nil {
			r.observer.OnBatch(r.result.Evaluations)
		}
		// Resolve the in-batch duplicates left unscored above.
		for i := range cands {
			if !ok[i] {
				if s, dup := r.seen[keys[i]]; dup {
					scores[i], ok[i] = s, true
					r.result.Revisits++
				}
			}
		}
	}
	return scores, ok
}

// score is the single-candidate form of scores.
func (r *searchRun) score(c candidate) (float64, bool) {
	s, ok := r.scores([]candidate{c})
	return s[0], ok[0]
}

// HillClimb is steepest-ascent hill climbing with random restarts: from
// a starting candidate (the identity ordering first — the paper's
// coordinated plan — then seeded random restarts), score the whole
// prefix-biased neighborhood, move to the best strict improvement, and
// restart from a fresh random candidate at each local optimum until the
// budget is spent.
type HillClimb struct {
	// Restarts caps random restarts after the initial descent
	// (0 = until the budget runs out or staleRounds consecutive
	// restarts discover nothing new).
	Restarts int
	// NeighborLimit caps the per-step neighborhood (0 = the full
	// neighborhood). Because neighbors are ordered cheapest- and
	// deepest-mutation-first, a small cap concentrates the search on
	// prefix-preserving moves.
	NeighborLimit int
}

func (h HillClimb) Name() string { return "hill-climb" }

// staleRounds is the convergence heuristic for unbudgeted searches:
// after this many consecutive outer rounds (restarts / generations)
// that evaluate no configuration the search has not seen before, the
// strategy declares the space mined out and stops.
const staleRounds = 5

func (h HillClimb) Search(eng *Engine, sp Space, obj Objective, b Budget, seed int64) Result {
	return h.SearchContext(context.Background(), eng, sp, obj, b, seed)
}

// SearchContext is Search under a context: cancellation stops the climb
// at the next evaluation-batch boundary (a neighborhood), keeping the
// trajectory found so far.
func (h HillClimb) SearchContext(ctx context.Context, eng *Engine, sp Space, obj Objective, b Budget, seed int64) Result {
	rng := rand.New(rand.NewSource(seed))
	run := newSearchRun(ctx, eng, &sp, obj, b, h.Name(), seed)
	stale := 0
	for restart := 0; !run.out() && stale < staleRounds; restart++ {
		if h.Restarts > 0 && restart > h.Restarts {
			break
		}
		before := run.result.Evaluations
		cur := sp.identity()
		if restart > 0 {
			cur = sp.random(rng)
		}
		curScore, ok := run.score(cur)
		if !ok {
			break
		}
		for !run.out() {
			neigh := sp.neighbors(cur, h.NeighborLimit)
			scores, scored := run.scores(neigh)
			best, bestScore := -1, curScore
			for i := range neigh {
				if scored[i] && scores[i] < bestScore {
					best, bestScore = i, scores[i]
				}
			}
			if best < 0 {
				break // local optimum (or budget cut the whole batch)
			}
			cur, curScore = neigh[best], bestScore
		}
		run.result.Restarts = restart + 1
		run.round(restart + 1)
		if run.result.Evaluations == before {
			stale++
		} else {
			stale = 0
		}
	}
	return run.result
}
