package explore_test

import (
	"math"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"sparkgo/internal/core"
	"sparkgo/internal/explore"
)

// strategies under test; fresh values per use, so tests stay independent.
func searchStrategies() []explore.Strategy {
	return []explore.Strategy{explore.HillClimb{}, explore.Genetic{Population: 8}}
}

// TestSearchDeterministic: the same (space, objective, budget, seed)
// must produce byte-identical results on fresh engines, for both
// strategies — the trajectory is part of the contract, not just the
// best point.
func TestSearchDeterministic(t *testing.T) {
	sp := explore.DefaultSpace(3)
	b := explore.Budget{MaxEvaluations: 18}
	for _, st := range searchStrategies() {
		runA := st.Search(&explore.Engine{Workers: 7}, sp, explore.WeightedObjective(1000, 1), b, 42)
		runB := st.Search(&explore.Engine{Workers: 2}, sp, explore.WeightedObjective(1000, 1), b, 42)
		if !reflect.DeepEqual(runA, runB) {
			t.Errorf("%s: same seed diverged:\n a: %+v\n b: %+v", st.Name(), runA, runB)
		}
		if runA.Evaluations == 0 || runA.Trajectory == nil {
			t.Errorf("%s: empty run: %+v", st.Name(), runA)
		}
	}
}

// TestSearchWarmEngineSameResult: a search result must not depend on how
// warm the engine's caches are — only evaluations get cheaper.
func TestSearchWarmEngineSameResult(t *testing.T) {
	sp := explore.DefaultSpace(3)
	st := explore.HillClimb{}
	b := explore.Budget{MaxEvaluations: 12}
	cold := st.Search(&explore.Engine{}, sp, explore.LatencyObjective(), b, 5)
	eng := &explore.Engine{}
	eng.Sweep(explore.Grid([]int{3}, explore.Variants(), []int{0, 8}, true)) // pre-warm
	warm := st.Search(eng, sp, explore.LatencyObjective(), b, 5)
	if !reflect.DeepEqual(cold, warm) {
		t.Fatalf("warm engine changed the search result:\ncold %+v\nwarm %+v", cold, warm)
	}
}

// TestSearchBudgetEvaluations: MaxEvaluations is a hard cap on distinct
// engine evaluations, and hitting it marks the run exhausted.
func TestSearchBudgetEvaluations(t *testing.T) {
	sp := explore.DefaultSpace(3)
	for _, st := range searchStrategies() {
		res := st.Search(&explore.Engine{}, sp, explore.WeightedObjective(1000, 1),
			explore.Budget{MaxEvaluations: 5}, 9)
		if res.Evaluations > 5 {
			t.Errorf("%s: spent %d evaluations on a budget of 5", st.Name(), res.Evaluations)
		}
		if !res.Exhausted {
			t.Errorf("%s: budget-stopped run not marked exhausted", st.Name())
		}
		if math.IsInf(res.BestScore, 1) {
			t.Errorf("%s: no scored best within budget", st.Name())
		}
	}
}

// TestSearchDeadline: a wall-clock budget stops the run after at most
// one evaluation batch; the first evaluation is always admitted so the
// run still produces a best point.
func TestSearchDeadline(t *testing.T) {
	sp := explore.DefaultSpace(3)
	for _, st := range searchStrategies() {
		res := st.Search(&explore.Engine{}, sp, explore.LatencyObjective(),
			explore.Budget{MaxDuration: time.Nanosecond}, 3)
		if res.Evaluations < 1 || res.Evaluations > 12 {
			t.Errorf("%s: deadline run spent %d evaluations, want 1..12 (one batch)",
				st.Name(), res.Evaluations)
		}
		if !res.Exhausted {
			t.Errorf("%s: deadline-stopped run not marked exhausted", st.Name())
		}
		if len(res.Trajectory) == 0 {
			t.Errorf("%s: deadline run produced no trajectory", st.Name())
		}
	}
}

// TestSearchFindsGridBest is the E17 property at test scale: with a
// budget far under the exhaustive grid size, both strategies must reach
// the grid's best latency, and the engine must show frontend sharing
// between neighboring candidates (the stage cache is the search's
// incremental evaluator).
func TestSearchFindsGridBest(t *testing.T) {
	sp := explore.DefaultSpace(3)
	for _, st := range searchStrategies() {
		eng := &explore.Engine{}
		res := st.Search(eng, sp, explore.WeightedObjective(1000, 1),
			explore.Budget{MaxEvaluations: 16}, 1)
		if res.Best.Err != "" || res.Best.Latency != 1 {
			t.Errorf("%s: best point %+v, want the 1-cycle design", st.Name(), res.Best)
		}
		if st := eng.Stats(); st.FrontendMemHits == 0 {
			t.Errorf("search shared no frontend artifacts: %+v", st)
		}
		// The trajectory must strictly improve and end at the best.
		for i := 1; i < len(res.Trajectory); i++ {
			if res.Trajectory[i].Score >= res.Trajectory[i-1].Score {
				t.Errorf("%s: trajectory not strictly improving at %d", st.Name(), i)
			}
		}
		last := res.Trajectory[len(res.Trajectory)-1]
		if last.Score != res.BestScore || !reflect.DeepEqual(last.Point, res.Best) {
			t.Errorf("%s: trajectory tail %+v != best %+v", st.Name(), last, res.Best)
		}
	}
}

// TestSearchRevisitsAreFree: revisited candidates must not burn budget;
// a search allowed more evaluations than the space holds must terminate
// with Evaluations bounded by the number of distinct configs it saw.
func TestSearchRevisitsAreFree(t *testing.T) {
	sp := explore.DefaultSpace(2)
	sp.ToggleMotions = false // shrink: 24 orders × 2 unrolls × 2 chain = 96 distinct
	res := explore.HillClimb{Restarts: 6}.Search(&explore.Engine{}, sp,
		explore.WeightedObjective(1000, 1), explore.Budget{MaxEvaluations: 500}, 2)
	if res.Revisits == 0 {
		t.Fatalf("restarted hill climb never revisited a candidate: %+v", res)
	}
	if res.Evaluations > 96 {
		t.Fatalf("spent %d evaluations on a 96-config space", res.Evaluations)
	}
	if res.Exhausted {
		t.Fatalf("converged run marked exhausted: %+v", res)
	}
}

// TestSearchUnbudgetedTerminates: with no budget at all, both
// strategies must still converge on a finite space (consecutive
// no-discovery rounds end the run) rather than cycling through
// revisits forever.
func TestSearchUnbudgetedTerminates(t *testing.T) {
	sp := explore.Space{
		Base:           explore.Config{N: 2, Preset: core.MicroprocessorBlock},
		Prologue:       []string{"inline", "drop-uncalled"},
		Motions:        []string{"constprop", "cse"},
		Epilogue:       []string{"dce"},
		ToggleMotions:  true,
		ToggleChaining: true,
	}
	for _, st := range searchStrategies() {
		res := st.Search(&explore.Engine{}, sp, explore.LatencyObjective(), explore.Budget{}, 4)
		if res.Exhausted {
			t.Errorf("%s: unbudgeted run marked exhausted", st.Name())
		}
		// 2 orders × 4 masks × 2 chain, minus order-irrelevant dedups.
		if res.Evaluations == 0 || res.Evaluations > 16 {
			t.Errorf("%s: %d evaluations on a <=16-config space", st.Name(), res.Evaluations)
		}
	}
}

// TestOrderGrid pins the exhaustive baseline E17 compares against: it
// must be lowered by the same Space as the search candidates, cover
// ordering × unroll × chaining exactly once each, and include the
// identity plan.
func TestOrderGrid(t *testing.T) {
	sp := explore.DefaultSpace(4)
	grid := sp.OrderGrid()
	if len(grid) != 24*2*2 {
		t.Fatalf("grid has %d configs, want 96", len(grid))
	}
	seen := map[string]bool{}
	identity := false
	idPasses := "inline;drop-uncalled;speculate;unroll all full;constprop;cse;constfold;copyprop;dce"
	for _, c := range grid {
		k := c.String()
		if seen[k] {
			t.Fatalf("duplicate grid config %q", k)
		}
		seen[k] = true
		if strings.Join(c.Passes, ";") == idPasses && !c.NoChaining {
			identity = true
		}
	}
	if !identity {
		t.Fatal("grid misses the identity (coordinated-plan) config")
	}
}

// TestSearchAllFailures pins the no-successful-design contract: when
// every candidate fails, BestScore stays +Inf and Best stays the zero
// Point — callers must check the score, not Best.Err.
func TestSearchAllFailures(t *testing.T) {
	sp := explore.Space{
		Base:     explore.Config{N: 2, Preset: core.MicroprocessorBlock},
		Prologue: []string{"frobnicate"}, // unknown pass: every config fails
		Motions:  []string{"constprop", "cse"},
	}
	for _, st := range searchStrategies() {
		res := st.Search(&explore.Engine{}, sp, explore.LatencyObjective(),
			explore.Budget{MaxEvaluations: 6}, 1)
		if !math.IsInf(res.BestScore, 1) {
			t.Errorf("%s: BestScore = %v on an all-fail space, want +Inf", st.Name(), res.BestScore)
		}
		if len(res.Trajectory) != 0 {
			t.Errorf("%s: trajectory on an all-fail space: %+v", st.Name(), res.Trajectory)
		}
	}
}

// TestSearchRaceClean runs both strategies concurrently against one
// shared engine — the race detector's view of the search/cache stack.
func TestSearchRaceClean(t *testing.T) {
	eng := &explore.Engine{Workers: 4}
	sp := explore.DefaultSpace(3)
	var wg sync.WaitGroup
	for i, st := range searchStrategies() {
		wg.Add(1)
		go func(seed int64, st explore.Strategy) {
			defer wg.Done()
			res := st.Search(eng, sp, explore.LatencyObjective(),
				explore.Budget{MaxEvaluations: 10}, seed)
			if res.Evaluations == 0 {
				t.Errorf("%s: no evaluations", st.Name())
			}
		}(int64(i+1), st)
	}
	wg.Wait()
}

// TestStrategyAndObjectiveByName pins the CLI name registries.
func TestStrategyAndObjectiveByName(t *testing.T) {
	for name, want := range map[string]string{
		"hill": "hill-climb", "genetic": "genetic",
		"anneal": "anneal", "sa": "anneal", "simulated-annealing": "anneal",
	} {
		st, err := explore.StrategyByName(name)
		if err != nil || st.Name() != want {
			t.Errorf("StrategyByName(%q) = %v, %v", name, st, err)
		}
	}
	if _, err := explore.StrategyByName("tabu"); err == nil {
		t.Error("unknown strategy accepted")
	}
	for _, name := range []string{"latency", "area", "weighted"} {
		obj, err := explore.ObjectiveByName(name)
		if err != nil || obj == nil {
			t.Errorf("ObjectiveByName(%q): %v", name, err)
		}
		if s := obj(explore.Point{Err: "boom"}); !math.IsInf(s, 1) {
			t.Errorf("objective %q scored an error point %v, want +Inf", name, s)
		}
	}
	if _, err := explore.ObjectiveByName("power"); err == nil {
		t.Error("unknown objective accepted")
	}
}
