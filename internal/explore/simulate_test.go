package explore

import (
	"context"
	"fmt"
	"strings"
	"testing"
	"time"

	"sparkgo/internal/ir"
	"sparkgo/internal/parser"
	"sparkgo/internal/rtl"
	"sparkgo/internal/rtlsim"
)

// TestSimulateWatchdogDerivedFromSchedule is the watchdog regression for
// the engine's latency measurement: a non-terminating design must error
// after the schedule-derived bound (rtlsim.WatchdogCycles) — not after
// the 1<<22-cycle budget the trial loop used to hardcode, which burned
// ~4M cycles × SimTrials per hung point.
func TestSimulateWatchdogDerivedFromSchedule(t *testing.T) {
	prog := parser.MustParse("hung", "uint8 a;\nvoid main() { a = a; }")
	m := rtl.NewModule("hung")
	a := m.Input("a", ir.U8)
	m.ScalarPort["a"] = a
	m.NumStates = 1
	m.Trans = []rtl.Transition{{From: 0, To: 0}} // self-loop forever

	e := &Engine{SimTrials: 8}
	src := &sourceEntry{prog: prog, fingerprint: "test-hung"}
	start := time.Now()
	_, _, err := e.simulate(context.Background(), src, m, Config{N: 1})
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("expected watchdog error for hung FSM")
	}
	bound := rtlsim.WatchdogCycles(m.NumStates)
	if !strings.Contains(err.Error(), "exceeded") || !strings.Contains(err.Error(), fmt.Sprint(bound)) {
		t.Fatalf("error %q does not report the derived bound %d", err, bound)
	}
	// The derived bound is ~4000x smaller than the old hardcoded budget;
	// even a slow machine finishes 8 trials of 1040 cycles within seconds.
	if elapsed > 10*time.Second {
		t.Fatalf("watchdog took %v; the bound is not being derived from the schedule", elapsed)
	}
}
