package explore

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"sparkgo/internal/blob"
	"sparkgo/internal/cache"
	"sparkgo/internal/core"
	"sparkgo/internal/ild"
	"sparkgo/internal/ir"
	"sparkgo/internal/obs"
	"sparkgo/internal/pass"
)

// SchemaVersion versions the engine's own on-disk artifact schema (the
// blob layouts below, the point-key recipe, and anything else that
// changes the meaning of a persisted point — e.g. the simulation seed
// derivation). The full disk schema string also folds in the stage
// versions of internal/core, so bumping either side invalidates
// persisted artifacts cleanly.
//
// v2: simulation stimulus is seeded from (source fingerprint, canonical
// config) instead of the bare config hash, so persisted v1 latencies no
// longer reproduce.
//
// v3: midend and backend artifacts persist alongside frontend artifacts
// and points (full-flow artifact persistence), and the underlying IR
// wire format renamed its type table, so v2 fingerprints no longer
// reproduce.
//
// v4: every blob and artifact payload moved from gob to the
// deterministic binary wire format (internal/wire), the cache stores
// raw hash-verified bytes, and revival stopped decoding payloads —
// blob metadata (cycles, fingerprints) answers for them.
//
// v5: stage artifacts on disk are content-address deduplicated — the
// logical (kind, key) entry holds a CAS alias resolving to the payload
// stored once under its own SHA-256 — so a v4 engine reading a v5
// directory would mis-parse aliases as blobs.
const SchemaVersion = 5

// Artifact kinds in the blob store.
const (
	kindFrontend = "frontend"
	kindMidend   = "midend"
	kindBackend  = "backend"
	kindPoint    = "point"
)

// ValidArtifactKind reports whether kind names one of the four logical
// artifact layers — the only kinds the daemon's blob API serves.
func ValidArtifactKind(kind string) bool {
	switch kind {
	case kindFrontend, kindMidend, kindBackend, kindPoint:
		return true
	}
	return false
}

// Tier names in the engine's blob stack, as reported by Stats.
const (
	TierMem    = "mem"
	TierDisk   = "disk"
	TierRemote = "remote"
)

// DiskSchema is the complete version string the disk layer is keyed
// under; artifacts written under any other schema are invisible.
func DiskSchema() string {
	return fmt.Sprintf("explore%d-fe%d-me%d-be%d",
		SchemaVersion, core.FrontendVersion, core.MidendVersion, core.BackendVersion)
}

// StageVersions is the exploded form of DiskSchema: every version
// constant folded into the disk schema, individually addressable.
// Archived artifacts (BENCH_*.json, service stats) embed it so results
// stay comparable — and incomparability stays detectable — across
// stage-version bumps.
type StageVersions struct {
	Explore  int `json:"explore"`
	Frontend int `json:"frontend"`
	Midend   int `json:"midend"`
	Backend  int `json:"backend"`
}

// Versions reports the current stage-version constants.
func Versions() StageVersions {
	return StageVersions{
		Explore:  SchemaVersion,
		Frontend: core.FrontendVersion,
		Midend:   core.MidendVersion,
		Backend:  core.BackendVersion,
	}
}

// blobStack lazily assembles the engine's tiered blob store once:
// L1 memory (bounded LRU, write-through, backfilled), L2 disk
// (internal/cache behind a CAS dedup wrapper, write-through,
// backfilled), L3 remote (another daemon's /v1/blobs API,
// write-through so local work warms the fleet, never backfilled from —
// there is no slower tier). Single-flight lives in the tiered layer,
// so each stage lookup below is one Do call instead of a hand-rolled
// memo map. A disk-open failure disables that tier for the engine's
// lifetime (counted in Stats.DiskErrors) rather than failing sweeps.
func (e *Engine) blobStack() *blob.Tiered {
	e.blobOnce.Do(func() {
		mem := blob.NewMem(e.MemCacheBytes)
		local := []blob.Tier{{Name: TierMem, Store: mem, WriteThrough: true, Backfill: true}}
		if e.CacheDir != "" {
			s, err := cache.Open(e.CacheDir, DiskSchema())
			if err != nil {
				e.diskErrors.Add(1)
			} else {
				e.store = s
				dedup := &blob.CAS{Inner: s, Kinds: map[string]bool{
					kindFrontend: true, kindMidend: true, kindBackend: true,
				}}
				local = append(local, blob.Tier{Name: TierDisk, Store: dedup, WriteThrough: true, Backfill: true})
			}
		}
		e.localBlobs = blob.NewTiered(local...)
		e.localBlobs.Obs = e.Obs
		if e.RemoteCache == "" {
			e.blobs = e.localBlobs
			return
		}
		remote := &blob.Remote{Base: e.RemoteCache, Schema: DiskSchema()}
		all := append(local[:len(local):len(local)],
			blob.Tier{Name: TierRemote, Store: remote, WriteThrough: true, Backfill: false})
		e.blobs = blob.NewTiered(all...)
		e.blobs.Obs = e.Obs
	})
	return e.blobs
}

// BlobGet serves the daemon's blob API from the engine's local tiers
// (memory, disk) only — never the remote tier, so chained daemons can
// not proxy-loop through each other.
func (e *Engine) BlobGet(kind, key string) ([]byte, bool, error) {
	e.blobStack()
	return e.localBlobs.Get(kind, key)
}

// BlobPut stores a payload into the engine's local tiers.
func (e *Engine) BlobPut(kind, key string, payload []byte) error {
	e.blobStack()
	return e.localBlobs.Put(kind, key, payload)
}

// BlobStat reports local presence of a payload.
func (e *Engine) BlobStat(kind, key string) (bool, error) {
	e.blobStack()
	return e.localBlobs.Stat(kind, key)
}

// BlobDelete removes a payload from the engine's local tiers.
func (e *Engine) BlobDelete(kind, key string) error {
	e.blobStack()
	return e.localBlobs.Delete(kind, key)
}

// CacheGC evicts cold artifacts from the engine's disk cache until it
// fits maxBytes, oldest-access-first (see cache.Store.GC — artifacts
// under retired schema versions go first). It errors when the engine has
// no usable disk layer.
func (e *Engine) CacheGC(maxBytes int64) (cache.GCStat, error) {
	e.blobStack()
	if e.store == nil {
		return cache.GCStat{}, fmt.Errorf("explore: no disk cache configured")
	}
	return e.store.GC(maxBytes)
}

// pointKey keys a fully evaluated configuration in the blob store. The
// key must identify everything the point depends on across processes:
// the canonical config, the source program's content fingerprint — the
// same name can map to different programs across processes — and the
// simulation depth.
func (e *Engine) pointKey(c Config, sourceFingerprint string) string {
	return ir.HashText(fmt.Sprintf("point|cfg=%s|src=%s|sim=%d",
		c.String(), sourceFingerprint, e.SimTrials))
}

// countHit attributes a blob-store hit to its tier. A shared result —
// this caller joined another caller's in-flight lookup — counts as a
// memory hit whatever tier the leader hit, matching the old memo-map
// accounting; a computed result counts nothing here (the compute
// closure already did).
func countHit(res blob.DoResult, mem, disk, remote *atomic.Int64) {
	switch {
	case res.Shared, res.Tier == TierMem:
		mem.Add(1)
	case res.Tier == TierDisk:
		disk.Add(1)
	case res.Tier == TierRemote:
		remote.Add(1)
	}
}

// stageStart opens a stage span: the wall-clock start when a bus is
// attached, the zero time otherwise — so an uninstrumented engine pays
// neither the clock read nor the event construction (the nil-bus fast
// path the observability layer promises).
func (e *Engine) stageStart() time.Time {
	if e.Obs.Active() {
		return time.Now()
	}
	return time.Time{}
}

// disposition classifies how a blob lookup was served, mirroring
// countHit but preserving the shared/computed distinction.
func disposition(res blob.DoResult) string {
	switch {
	case res.Shared:
		return obs.DispShared
	case res.Obj != nil:
		return obs.DispComputed
	case res.Tier == TierMem:
		return obs.DispMem
	case res.Tier == TierDisk:
		return obs.DispDisk
	case res.Tier == TierRemote:
		return obs.DispRemote
	}
	return obs.DispComputed
}

// observeStage closes a stage span opened by stageStart.
func (e *Engine) observeStage(stage string, start time.Time, res blob.DoResult) {
	if start.IsZero() {
		return
	}
	e.Obs.Publish(obs.Event{
		Type:        obs.TypeStage,
		Stage:       stage,
		Disposition: disposition(res),
		DurationNs:  time.Since(start).Nanoseconds(),
	})
}

// observeStageComputed closes a span for the uncached compute paths
// (unkeyable artifacts, purge-and-recompute fallbacks).
func (e *Engine) observeStageComputed(stage string, start time.Time) {
	if start.IsZero() {
		return
	}
	e.Obs.Publish(obs.Event{
		Type:        obs.TypeStage,
		Stage:       stage,
		Disposition: obs.DispComputed,
		DurationNs:  time.Since(start).Nanoseconds(),
	})
}

// sourceEntry memoizes one resolved source program and its content
// fingerprint, so a sweep fingerprints each source once instead of
// per configuration.
type sourceEntry struct {
	once        sync.Once
	prog        *ir.Program
	fingerprint string
	err         error
}

// sourceID identifies the program a config synthesizes within this
// engine: a named source, or the generator at scale N.
func sourceID(c Config) string {
	if c.Source != "" {
		return "src=" + c.Source
	}
	return fmt.Sprintf("n=%d", c.N)
}

// resolveSource returns the (memoized) program and fingerprint for a
// config's source. Like every cache layer here, resolution failures
// are not memoized: concurrent callers share one attempt, but the
// error entry is dropped so a later lookup re-resolves — a source
// generator that failed transiently gets retried.
func (e *Engine) resolveSource(c Config) (*sourceEntry, error) {
	id := sourceID(c)
	e.mu.Lock()
	if e.sources == nil {
		e.sources = map[string]*sourceEntry{}
	}
	se, ok := e.sources[id]
	if !ok {
		se = &sourceEntry{}
		e.sources[id] = se
	}
	e.mu.Unlock()
	se.once.Do(func() {
		if c.Source != "" {
			// The source table mutates while the daemon's engine runs
			// (AddSource), so reads take the engine lock.
			e.mu.Lock()
			se.prog = e.Sources[c.Source]
			e.mu.Unlock()
			if se.prog == nil {
				se.err = fmt.Errorf("explore: unknown source %q", c.Source)
				return
			}
		} else {
			gen := e.Source
			if gen == nil {
				gen = ild.Program
			}
			se.prog = gen(c.N)
			if se.prog == nil {
				se.err = fmt.Errorf("explore: source generator returned nil for n=%d", c.N)
				return
			}
		}
		se.fingerprint = ir.Fingerprint(se.prog)
	})
	if se.err != nil {
		e.mu.Lock()
		if e.sources[id] == se {
			delete(e.sources, id)
		}
		e.mu.Unlock()
	}
	return se, se.err
}

// frontend returns the frontend artifact for (source, options), running
// the transformation pipeline at most once per stage key across
// concurrent callers (the tiered store's single flight). Lookups read
// through memory → disk → remote; misses compute and write through.
// Failed runs follow the engine's no-sticky-errors rule — the tiered
// layer stores nothing and drops the flight on error, so later lookups
// retry instead of serving the failure forever — which is also what
// keeps a context-cancelled run from poisoning the cache.
func (e *Engine) frontend(ctx context.Context, src *sourceEntry, o core.FrontendOptions) (*core.FrontendArtifact, error) {
	key := core.FrontendKeyFrom(src.fingerprint, o)
	start := e.stageStart()
	if key == "" {
		// Opaque custom passes: nothing stable to key on.
		e.frontendComputed.Add(1)
		fa, err := core.FrontendContext(ctx, src.prog, o)
		if err == nil {
			e.observeStageComputed(kindFrontend, start)
		}
		return fa, err
	}
	compute := func() ([]byte, any, error) {
		fa, err := core.FrontendContext(ctx, src.prog, o)
		e.frontendComputed.Add(1)
		if err != nil {
			return nil, nil, err
		}
		// Frontend leaves content identity and the stage key to its
		// caller; fill both before the artifact is shared.
		enc := fa.Materialize()
		fa.Key = key
		if enc == nil {
			// Unencodable program: nothing faithful to persist; the
			// in-flight artifact is still shared with concurrent callers.
			if e.store != nil {
				e.diskErrors.Add(1)
			}
			return nil, fa, nil
		}
		fb := frontendBlob{
			Program:     enc,
			Source:      fa.Source,
			Fingerprint: fa.Fingerprint,
			Stages:      fa.Stages,
			PassStats:   fa.PassStats,
			Rounds:      fa.Rounds,
		}
		return fb.encode(), fa, nil
	}
	for attempt := 0; ; attempt++ {
		res, err := e.blobStack().Do(kindFrontend, key, compute)
		if err != nil {
			return nil, err
		}
		if res.Obj != nil {
			if res.Shared {
				e.frontendMemHits.Add(1)
			}
			e.observeStage(kindFrontend, start, res)
			return res.Obj.(*core.FrontendArtifact), nil
		}
		fb, derr := decodeFrontendBlob(res.Data)
		if derr != nil {
			// A tier served verified bytes that are not a frontend blob
			// (a schema-confused writer): purge and retry, which
			// recomputes through the flight.
			e.diskErrors.Add(1)
			e.blobStack().Delete(kindFrontend, key)
			if attempt == 0 {
				continue
			}
			return nil, derr
		}
		countHit(res, &e.frontendMemHits, &e.frontendDiskHits, &e.frontendRemoteHits)
		e.observeStage(kindFrontend, start, res)
		fa := core.ReviveFrontendArtifact(fb.Program)
		fa.Source = fb.Source
		fa.Fingerprint = fb.Fingerprint
		fa.Key = key
		fa.Stages = fb.Stages
		fa.PassStats = fb.PassStats
		fa.Rounds = fb.Rounds
		return fa, nil
	}
}

// frontendBlob is the stored form of a frontend artifact: the
// transformed program travels in the lossless IR encoding
// (ir.EncodeProgram — printed surface text would lose the expression
// types the passes assigned), alongside the reporting metadata.
// Variable pointer identity is rebuilt by the decoder; nothing
// downstream depends on it.
type frontendBlob struct {
	Program     []byte // ir.EncodeProgram of the transformed program
	Source      string // canonical printed form (fingerprint pre-image)
	Fingerprint string
	Stages      []core.StageMetrics
	PassStats   []pass.Stat
	Rounds      int
}

// midend returns the midend artifact for (frontend artifact, options),
// lowering and scheduling at most once per stage key — the same tiered
// lookup and no-sticky-errors rule as the frontend layer. The artifact
// is shared read-only across configurations; the backend never mutates
// it. Revival is a header parse: the blob carries the fingerprint and
// cycle count, and the schedule materializes lazily (Sched) only when
// the backend stage misses its own caches.
func (e *Engine) midend(ctx context.Context, fa *core.FrontendArtifact, o core.MidendOptions) (*core.MidendArtifact, error) {
	key := core.MidendKey(fa, o)
	start := e.stageStart()
	if key == "" {
		// Unmaterialized frontend (opaque custom passes): nothing stable
		// to key on.
		e.midendComputed.Add(1)
		ma, err := core.MidendContext(ctx, fa, o)
		if err == nil {
			e.observeStageComputed(kindMidend, start)
		}
		return ma, err
	}
	compute := func() ([]byte, any, error) {
		ma, err := core.MidendContext(ctx, fa, o)
		e.midendComputed.Add(1)
		if err != nil {
			return nil, nil, err
		}
		enc := ma.Materialize()
		ma.Key = key
		if enc == nil {
			if e.store != nil {
				e.diskErrors.Add(1)
			}
			return nil, ma, nil
		}
		mb := midendBlob{Schedule: enc, Fingerprint: ma.Fingerprint, Cycles: ma.Cycles}
		return mb.encode(), ma, nil
	}
	for attempt := 0; ; attempt++ {
		res, err := e.blobStack().Do(kindMidend, key, compute)
		if err != nil {
			return nil, err
		}
		if res.Obj != nil {
			if res.Shared {
				e.midendMemHits.Add(1)
			}
			e.observeStage(kindMidend, start, res)
			return res.Obj.(*core.MidendArtifact), nil
		}
		mb, derr := decodeMidendBlob(res.Data)
		if derr != nil {
			e.diskErrors.Add(1)
			e.blobStack().Delete(kindMidend, key)
			if attempt == 0 {
				continue
			}
			return nil, derr
		}
		countHit(res, &e.midendMemHits, &e.midendDiskHits, &e.midendRemoteHits)
		e.observeStage(kindMidend, start, res)
		ma := core.ReviveMidendArtifact(mb.Schedule, mb.Cycles)
		ma.Fingerprint = mb.Fingerprint
		ma.Key = key
		return ma, nil
	}
}

// midendBlob is the stored form of a midend artifact: the schedule in
// its lossless encoding (sched.EncodeResult embeds the graph and
// program), the content fingerprint downstream stage keys chain on,
// and the cycle count — the one schedule metric sweep points read — so
// a revived artifact answers every cache-warm question without
// decoding the schedule.
type midendBlob struct {
	Schedule    []byte // sched.EncodeResult of the artifact's schedule
	Fingerprint string
	Cycles      int
}

// backend returns the backend artifact for (midend artifact, options),
// binding and building the netlist at most once per stage key — the
// same tiered lookup and no-sticky-errors rule as the other stages.
// The stage keys on the midend artifact's content fingerprint, so two
// scheduling option sets that converge on the same schedule share one
// netlist. Revival parses the artifact's report shell and leaves the
// netlist encoded; only the simulation path pays the module decode
// (Mod), and only when SimTrials asks for it.
func (e *Engine) backend(ctx context.Context, ma *core.MidendArtifact, o core.BackendOptions) (*core.BackendArtifact, error) {
	key := core.BackendKey(ma, o)
	start := e.stageStart()
	if key == "" {
		e.backendComputed.Add(1)
		ba, err := core.BackendContext(ctx, ma, o)
		if err == nil {
			e.observeStageComputed(kindBackend, start)
		}
		return ba, err
	}
	compute := func() ([]byte, any, error) {
		ba, err := core.BackendContext(ctx, ma, o)
		e.backendComputed.Add(1)
		if err != nil {
			return nil, nil, err
		}
		enc := ba.Materialize()
		ba.Key = key
		if enc == nil {
			if e.store != nil {
				e.diskErrors.Add(1)
			}
			return nil, ba, nil
		}
		bb := backendBlob{Artifact: enc, Fingerprint: ba.Fingerprint}
		return bb.encode(), ba, nil
	}
	for attempt := 0; ; attempt++ {
		res, err := e.blobStack().Do(kindBackend, key, compute)
		if err != nil {
			return nil, err
		}
		if res.Obj != nil {
			if res.Shared {
				e.backendMemHits.Add(1)
			}
			e.observeStage(kindBackend, start, res)
			return res.Obj.(*core.BackendArtifact), nil
		}
		bb, derr := decodeBackendBlob(res.Data)
		var ba *core.BackendArtifact
		if derr == nil {
			ba, derr = core.ReviveBackendArtifact(bb.Artifact)
		}
		if derr != nil {
			e.diskErrors.Add(1)
			e.blobStack().Delete(kindBackend, key)
			if attempt == 0 {
				continue
			}
			return nil, derr
		}
		countHit(res, &e.backendMemHits, &e.backendDiskHits, &e.backendRemoteHits)
		e.observeStage(kindBackend, start, res)
		ba.Fingerprint = bb.Fingerprint
		ba.Key = key
		return ba, nil
	}
}

// backendBlob is the stored form of a backend artifact: the netlist
// plus report in the lossless core encoding, and the content
// fingerprint the revival is verified against.
type backendBlob struct {
	Artifact    []byte // core backend encoding (rtl.EncodeModule + report)
	Fingerprint string
}
