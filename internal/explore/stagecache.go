package explore

import (
	"context"
	"fmt"
	"sync"

	"sparkgo/internal/cache"
	"sparkgo/internal/core"
	"sparkgo/internal/ild"
	"sparkgo/internal/ir"
	"sparkgo/internal/pass"
)

// SchemaVersion versions the engine's own on-disk artifact schema (the
// blob layouts below, the point-key recipe, and anything else that
// changes the meaning of a persisted point — e.g. the simulation seed
// derivation). The full disk schema string also folds in the stage
// versions of internal/core, so bumping either side invalidates
// persisted artifacts cleanly.
//
// v2: simulation stimulus is seeded from (source fingerprint, canonical
// config) instead of the bare config hash, so persisted v1 latencies no
// longer reproduce.
//
// v3: midend and backend artifacts persist alongside frontend artifacts
// and points (full-flow artifact persistence), and the underlying IR
// wire format renamed its type table, so v2 fingerprints no longer
// reproduce.
//
// v4: every blob and artifact payload moved from gob to the
// deterministic binary wire format (internal/wire), the cache stores
// raw hash-verified bytes, and revival stopped decoding payloads —
// blob metadata (cycles, fingerprints) answers for them.
const SchemaVersion = 4

// Artifact kinds in the disk store.
const (
	kindFrontend = "frontend"
	kindMidend   = "midend"
	kindBackend  = "backend"
	kindPoint    = "point"
)

// DiskSchema is the complete version string the disk layer is keyed
// under; artifacts written under any other schema are invisible.
func DiskSchema() string {
	return fmt.Sprintf("explore%d-fe%d-me%d-be%d",
		SchemaVersion, core.FrontendVersion, core.MidendVersion, core.BackendVersion)
}

// StageVersions is the exploded form of DiskSchema: every version
// constant folded into the disk schema, individually addressable.
// Archived artifacts (BENCH_*.json, service stats) embed it so results
// stay comparable — and incomparability stays detectable — across
// stage-version bumps.
type StageVersions struct {
	Explore  int `json:"explore"`
	Frontend int `json:"frontend"`
	Midend   int `json:"midend"`
	Backend  int `json:"backend"`
}

// Versions reports the current stage-version constants.
func Versions() StageVersions {
	return StageVersions{
		Explore:  SchemaVersion,
		Frontend: core.FrontendVersion,
		Midend:   core.MidendVersion,
		Backend:  core.BackendVersion,
	}
}

// diskLayer lazily opens the configured cache directory once; open
// failures disable the layer for the engine's lifetime (counted in
// Stats.DiskErrors) rather than failing the sweep.
type diskLayer struct {
	once  sync.Once
	store *cache.Store
}

func (e *Engine) diskStore() *cache.Store {
	if e.CacheDir == "" {
		return nil
	}
	e.disk.once.Do(func() {
		s, err := cache.Open(e.CacheDir, DiskSchema())
		if err != nil {
			e.diskErrors.Add(1)
			return
		}
		e.disk.store = s
	})
	return e.disk.store
}

// CacheGC evicts cold artifacts from the engine's disk cache until it
// fits maxBytes, oldest-access-first (see cache.Store.GC — artifacts
// under retired schema versions go first). It errors when the engine has
// no usable disk layer.
func (e *Engine) CacheGC(maxBytes int64) (cache.GCStat, error) {
	d := e.diskStore()
	if d == nil {
		return cache.GCStat{}, fmt.Errorf("explore: no disk cache configured")
	}
	return d.GC(maxBytes)
}

// pointDiskKey keys a fully evaluated configuration on disk. Unlike the
// in-memory point cache (scoped to one engine, where the source table
// and SimTrials are fixed), the disk key must identify everything the
// point depends on: the canonical config, the source program's content
// fingerprint — the same name can map to different programs across
// processes — and the simulation depth.
func (e *Engine) pointDiskKey(c Config, sourceFingerprint string) string {
	return ir.HashText(fmt.Sprintf("point|cfg=%s|src=%s|sim=%d",
		c.String(), sourceFingerprint, e.SimTrials))
}

// sourceEntry memoizes one resolved source program and its content
// fingerprint, so a sweep fingerprints each source once instead of
// per configuration.
type sourceEntry struct {
	once        sync.Once
	prog        *ir.Program
	fingerprint string
	err         error
}

// sourceID identifies the program a config synthesizes within this
// engine: a named source, or the generator at scale N.
func sourceID(c Config) string {
	if c.Source != "" {
		return "src=" + c.Source
	}
	return fmt.Sprintf("n=%d", c.N)
}

// resolveSource returns the (memoized) program and fingerprint for a
// config's source. Like the point cache (see Evaluate), resolution
// failures are not memoized: concurrent callers share one attempt, but
// the error entry is dropped so a later lookup re-resolves — a source
// generator that failed transiently gets retried.
func (e *Engine) resolveSource(c Config) (*sourceEntry, error) {
	id := sourceID(c)
	e.mu.Lock()
	if e.sources == nil {
		e.sources = map[string]*sourceEntry{}
	}
	se, ok := e.sources[id]
	if !ok {
		se = &sourceEntry{}
		e.sources[id] = se
	}
	e.mu.Unlock()
	se.once.Do(func() {
		if c.Source != "" {
			// The source table mutates while the daemon's engine runs
			// (AddSource), so reads take the engine lock.
			e.mu.Lock()
			se.prog = e.Sources[c.Source]
			e.mu.Unlock()
			if se.prog == nil {
				se.err = fmt.Errorf("explore: unknown source %q", c.Source)
				return
			}
		} else {
			gen := e.Source
			if gen == nil {
				gen = ild.Program
			}
			se.prog = gen(c.N)
			if se.prog == nil {
				se.err = fmt.Errorf("explore: source generator returned nil for n=%d", c.N)
				return
			}
		}
		se.fingerprint = ir.Fingerprint(se.prog)
	})
	if se.err != nil {
		e.mu.Lock()
		if e.sources[id] == se {
			delete(e.sources, id)
		}
		e.mu.Unlock()
	}
	return se, se.err
}

// frontEntry memoizes one frontend stage run by stage key.
type frontEntry struct {
	once sync.Once
	fa   *core.FrontendArtifact
	err  error
}

// frontend returns the frontend artifact for (source, options), running
// the transformation pipeline at most once per stage key — in-memory
// first, then the disk layer, then computation. Failed runs follow the
// engine's no-sticky-errors rule: the error entry is dropped after the
// shared attempt, so later lookups retry instead of serving the failure
// forever — which is also what keeps a context-cancelled run (surfaced
// as an error here) from poisoning the cache.
func (e *Engine) frontend(ctx context.Context, src *sourceEntry, o core.FrontendOptions) (*core.FrontendArtifact, error) {
	key := core.FrontendKeyFrom(src.fingerprint, o)
	if key == "" {
		// Opaque custom passes: nothing stable to key on.
		e.frontendComputed.Add(1)
		return core.FrontendContext(ctx, src.prog, o)
	}
	e.mu.Lock()
	if e.fronts == nil {
		e.fronts = map[string]*frontEntry{}
	}
	fe, cached := e.fronts[key]
	if !cached {
		fe = &frontEntry{}
		e.fronts[key] = fe
	}
	e.mu.Unlock()
	if cached {
		e.frontendMemHits.Add(1)
	}
	fe.once.Do(func() {
		if fa := e.loadFrontend(key); fa != nil {
			e.frontendDiskHits.Add(1)
			fe.fa = fa
			return
		}
		fe.fa, fe.err = core.FrontendContext(ctx, src.prog, o)
		e.frontendComputed.Add(1)
		if fe.err == nil {
			// Frontend leaves content identity and the stage key to its
			// caller; fill both before the artifact is shared.
			enc := fe.fa.Materialize()
			fe.fa.Key = key
			e.storeFrontend(key, fe.fa, enc)
		}
	})
	if fe.err != nil {
		e.mu.Lock()
		if e.fronts[key] == fe {
			delete(e.fronts, key)
		}
		e.mu.Unlock()
	}
	return fe.fa, fe.err
}

// frontendBlob is the disk form of a frontend artifact: the transformed
// program travels in the lossless IR encoding (ir.EncodeProgram —
// printed surface text would lose the expression types the passes
// assigned), alongside the reporting metadata. Variable pointer
// identity is rebuilt by the decoder; nothing downstream depends on it.
type frontendBlob struct {
	Program     []byte // ir.EncodeProgram of the transformed program
	Source      string // canonical printed form (fingerprint pre-image)
	Fingerprint string
	Stages      []core.StageMetrics
	PassStats   []pass.Stat
	Rounds      int
}

// loadFrontend fetches and revives a frontend artifact from disk,
// returning nil on any miss or parse failure — the caller then
// recomputes. Integrity is verified by the cache layer's streaming hash
// over the stored blob, so the program encoding is trusted as-is and
// not decoded here: the artifact shell carries the fingerprint and
// reporting metadata, and the program materializes lazily (Prog) only
// if a downstream stage misses its own caches.
func (e *Engine) loadFrontend(key string) *core.FrontendArtifact {
	d := e.diskStore()
	if d == nil {
		return nil
	}
	data, ok, err := d.Get(kindFrontend, key)
	if err != nil {
		e.diskErrors.Add(1)
		return nil
	}
	if !ok {
		return nil
	}
	blob, err := decodeFrontendBlob(data)
	if err != nil {
		e.diskErrors.Add(1)
		return nil
	}
	fa := core.ReviveFrontendArtifact(blob.Program)
	fa.Source = blob.Source
	fa.Fingerprint = blob.Fingerprint
	fa.Key = key
	fa.Stages = blob.Stages
	fa.PassStats = blob.PassStats
	fa.Rounds = blob.Rounds
	return fa
}

// storeFrontend persists a materialized frontend artifact, reusing the
// encoding Materialize produced; failures only count.
func (e *Engine) storeFrontend(key string, fa *core.FrontendArtifact, enc []byte) {
	d := e.diskStore()
	if d == nil {
		return
	}
	if enc == nil {
		// Unencodable program: nothing faithful to persist.
		e.diskErrors.Add(1)
		return
	}
	blob := frontendBlob{
		Program:     enc,
		Source:      fa.Source,
		Fingerprint: fa.Fingerprint,
		Stages:      fa.Stages,
		PassStats:   fa.PassStats,
		Rounds:      fa.Rounds,
	}
	if err := d.Put(kindFrontend, key, blob.encode()); err != nil {
		e.diskErrors.Add(1)
	}
}

// midEntry memoizes one midend stage run by stage key.
type midEntry struct {
	once sync.Once
	ma   *core.MidendArtifact
	err  error
}

// midend returns the midend artifact for (frontend artifact, options),
// lowering and scheduling at most once per stage key — in-memory first,
// then the disk layer, then computation — under the same
// no-sticky-errors rule the frontend layer follows. The artifact is
// shared read-only across configurations; the backend never mutates it.
func (e *Engine) midend(ctx context.Context, fa *core.FrontendArtifact, o core.MidendOptions) (*core.MidendArtifact, error) {
	key := core.MidendKey(fa, o)
	if key == "" {
		// Unmaterialized frontend (opaque custom passes): nothing stable
		// to key on.
		e.midendComputed.Add(1)
		return core.MidendContext(ctx, fa, o)
	}
	e.mu.Lock()
	if e.mids == nil {
		e.mids = map[string]*midEntry{}
	}
	me, cached := e.mids[key]
	if !cached {
		me = &midEntry{}
		e.mids[key] = me
	}
	e.mu.Unlock()
	if cached {
		e.midendMemHits.Add(1)
	}
	me.once.Do(func() {
		if ma := e.loadMidend(key); ma != nil {
			e.midendDiskHits.Add(1)
			me.ma = ma
			return
		}
		me.ma, me.err = core.MidendContext(ctx, fa, o)
		e.midendComputed.Add(1)
		if me.err == nil {
			enc := me.ma.Materialize()
			e.storeMidend(key, me.ma, enc)
		}
	})
	if me.err != nil {
		e.mu.Lock()
		if e.mids[key] == me {
			delete(e.mids, key)
		}
		e.mu.Unlock()
	}
	return me.ma, me.err
}

// midendBlob is the disk form of a midend artifact: the schedule in its
// lossless encoding (sched.EncodeResult embeds the graph and program),
// the content fingerprint downstream stage keys chain on, and the cycle
// count — the one schedule metric sweep points read — so a revived
// artifact answers every cache-warm question without decoding the
// schedule.
type midendBlob struct {
	Schedule    []byte // sched.EncodeResult of the artifact's schedule
	Fingerprint string
	Cycles      int
}

// loadMidend fetches and revives a midend artifact from disk, returning
// nil on any miss or parse failure — the caller then recomputes. The
// cache layer's streaming hash covered the whole blob, fingerprint and
// schedule bytes alike, so revival is a header parse: no schedule
// decode, no re-encode. The schedule materializes lazily (Sched) only
// when the backend stage misses its own caches.
func (e *Engine) loadMidend(key string) *core.MidendArtifact {
	d := e.diskStore()
	if d == nil {
		return nil
	}
	data, ok, err := d.Get(kindMidend, key)
	if err != nil {
		e.diskErrors.Add(1)
		return nil
	}
	if !ok {
		return nil
	}
	blob, err := decodeMidendBlob(data)
	if err != nil {
		e.diskErrors.Add(1)
		return nil
	}
	ma := core.ReviveMidendArtifact(blob.Schedule, blob.Cycles)
	ma.Fingerprint = blob.Fingerprint
	ma.Key = key
	return ma
}

// storeMidend persists a materialized midend artifact, reusing the
// encoding Materialize produced; failures only count.
func (e *Engine) storeMidend(key string, ma *core.MidendArtifact, enc []byte) {
	d := e.diskStore()
	if d == nil {
		return
	}
	if enc == nil {
		e.diskErrors.Add(1)
		return
	}
	blob := midendBlob{Schedule: enc, Fingerprint: ma.Fingerprint, Cycles: ma.Cycles}
	if err := d.Put(kindMidend, key, blob.encode()); err != nil {
		e.diskErrors.Add(1)
	}
}

// backEntry memoizes one backend stage run by stage key.
type backEntry struct {
	once sync.Once
	ba   *core.BackendArtifact
	err  error
}

// backend returns the backend artifact for (midend artifact, options),
// binding and building the netlist at most once per stage key — the
// same three-layer lookup and no-sticky-errors rule as the other
// stages. The stage keys on the midend artifact's content fingerprint,
// so two scheduling option sets that converge on the same schedule
// share one netlist.
func (e *Engine) backend(ctx context.Context, ma *core.MidendArtifact, o core.BackendOptions) (*core.BackendArtifact, error) {
	key := core.BackendKey(ma, o)
	if key == "" {
		e.backendComputed.Add(1)
		return core.BackendContext(ctx, ma, o)
	}
	e.mu.Lock()
	if e.backs == nil {
		e.backs = map[string]*backEntry{}
	}
	be, cached := e.backs[key]
	if !cached {
		be = &backEntry{}
		e.backs[key] = be
	}
	e.mu.Unlock()
	if cached {
		e.backendMemHits.Add(1)
	}
	be.once.Do(func() {
		if ba := e.loadBackend(key); ba != nil {
			e.backendDiskHits.Add(1)
			be.ba = ba
			return
		}
		be.ba, be.err = core.BackendContext(ctx, ma, o)
		e.backendComputed.Add(1)
		if be.err == nil {
			enc := be.ba.Materialize()
			e.storeBackend(key, be.ba, enc)
		}
	})
	if be.err != nil {
		e.mu.Lock()
		if e.backs[key] == be {
			delete(e.backs, key)
		}
		e.mu.Unlock()
	}
	return be.ba, be.err
}

// backendBlob is the disk form of a backend artifact: the netlist plus
// report in the lossless core encoding, and the content fingerprint the
// revival is verified against.
type backendBlob struct {
	Artifact    []byte // core backend encoding (rtl.EncodeModule + report)
	Fingerprint string
}

// loadBackend fetches and revives a backend artifact from disk,
// returning nil on any miss or parse failure. Revival parses the
// artifact's report shell — a handful of flat fields — and leaves the
// netlist encoded; only the simulation path pays the module decode
// (Mod), and only when SimTrials asks for it. Integrity is the cache
// layer's streaming hash, as with every other kind.
func (e *Engine) loadBackend(key string) *core.BackendArtifact {
	d := e.diskStore()
	if d == nil {
		return nil
	}
	data, ok, err := d.Get(kindBackend, key)
	if err != nil {
		e.diskErrors.Add(1)
		return nil
	}
	if !ok {
		return nil
	}
	blob, err := decodeBackendBlob(data)
	if err != nil {
		e.diskErrors.Add(1)
		return nil
	}
	ba, err := core.ReviveBackendArtifact(blob.Artifact)
	if err != nil {
		e.diskErrors.Add(1)
		return nil
	}
	ba.Fingerprint = blob.Fingerprint
	ba.Key = key
	return ba
}

// storeBackend persists a materialized backend artifact, reusing the
// encoding Materialize produced; failures only count.
func (e *Engine) storeBackend(key string, ba *core.BackendArtifact, enc []byte) {
	d := e.diskStore()
	if d == nil {
		return
	}
	if enc == nil {
		e.diskErrors.Add(1)
		return
	}
	blob := backendBlob{Artifact: enc, Fingerprint: ba.Fingerprint}
	if err := d.Put(kindBackend, key, blob.encode()); err != nil {
		e.diskErrors.Add(1)
	}
}
