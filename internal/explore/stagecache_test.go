package explore_test

import (
	"reflect"
	"testing"

	"sparkgo/internal/core"
	"sparkgo/internal/explore"
	"sparkgo/internal/ir"
	"sparkgo/internal/parser"
	"sparkgo/internal/pass"
)

// microPlan is the paper's full coordinated pass list, used as an
// explicit pass-order so configs can vary back-end knobs only.
func microPlan() []string {
	return pass.MicroprocessorPlan(pass.Toggles{})
}

// TestFrontendSharedAcrossBackendKnobs is the stage-cache acceptance
// test: across a sweep whose configurations differ only in back-end
// knobs (chaining switch, scheduling preset), the frontend must run
// exactly once per unique (source, pass-list) pair while every
// configuration still evaluates fully.
func TestFrontendSharedAcrossBackendKnobs(t *testing.T) {
	plan := microPlan()
	space := []explore.Config{
		{N: 4, Preset: core.MicroprocessorBlock, Passes: plan},
		{N: 4, Preset: core.MicroprocessorBlock, Passes: plan, NoChaining: true},
		{N: 4, Preset: core.ClassicalASIC, Passes: plan},
		{N: 4, Preset: core.ClassicalASIC, Passes: plan, NoChaining: true},
	}
	eng := &explore.Engine{Workers: 4}
	pts := eng.Sweep(space)
	for i, p := range pts {
		if p.Err != "" {
			t.Fatalf("config %q failed: %s", space[i].String(), p.Err)
		}
	}
	st := eng.Stats()
	if st.FrontendComputed != 1 {
		t.Fatalf("frontend ran %d times for one (source, pass-list), want exactly 1", st.FrontendComputed)
	}
	if st.FrontendMemHits != int64(len(space)-1) {
		t.Errorf("frontend memory hits = %d, want %d", st.FrontendMemHits, len(space)-1)
	}
	if st.PointComputed != int64(len(space)) {
		t.Errorf("points computed = %d, want %d (all configs distinct)", st.PointComputed, len(space))
	}
	// The knobs must still matter: chaining off must not beat chaining
	// on, and the two presets must schedule differently.
	if pts[0].Cycles != 1 {
		t.Errorf("coordinated config cycles = %d, want 1", pts[0].Cycles)
	}
	if pts[2].Cycles <= pts[0].Cycles {
		t.Errorf("classical preset (%d cycles) not slower than coordinated (%d)",
			pts[2].Cycles, pts[0].Cycles)
	}
}

// TestFrontendSharedUnderToggleDefaults checks the same sharing through
// the preset-plan path (no explicit pass list): NoChaining is a pure
// scheduler knob, so toggling it must not re-run the frontend, while a
// pass-level toggle (NoSpeculation) must.
func TestFrontendSharedUnderToggleDefaults(t *testing.T) {
	space := []explore.Config{
		{N: 3, Preset: core.MicroprocessorBlock},
		{N: 3, Preset: core.MicroprocessorBlock, NoChaining: true},
		{N: 3, Preset: core.MicroprocessorBlock, NoSpeculation: true},
	}
	eng := &explore.Engine{Workers: 1}
	for i, c := range space {
		if p := eng.Evaluate(c); p.Err != "" {
			t.Fatalf("config %d: %s", i, p.Err)
		}
	}
	st := eng.Stats()
	if st.FrontendComputed != 2 {
		t.Fatalf("frontend computed %d times, want 2 (shared plan + nospec plan)", st.FrontendComputed)
	}
}

// TestDiskCacheAcrossEngines is the disk-cache acceptance test: a second
// engine — standing in for a fresh process — pointed at the same cache
// directory must serve the whole sweep from on-disk artifacts without
// synthesizing anything, and must return identical points.
func TestDiskCacheAcrossEngines(t *testing.T) {
	dir := t.TempDir()
	space := append(smallGrid()[:10], explore.Config{
		N: 3, Preset: core.MicroprocessorBlock, Passes: microPlan(),
	})
	cold := &explore.Engine{Workers: 4, SimTrials: 1, CacheDir: dir}
	first := cold.Sweep(space)
	if st := cold.Stats(); st.PointComputed != int64(len(space)) || st.DiskErrors != 0 {
		t.Fatalf("cold engine: %+v, want %d computed and no disk errors", st, len(space))
	}

	warm := &explore.Engine{Workers: 4, SimTrials: 1, CacheDir: dir}
	second := warm.Sweep(space)
	if !reflect.DeepEqual(first, second) {
		t.Fatal("disk-warm sweep returned different points than the cold sweep")
	}
	st := warm.Stats()
	if st.PointComputed != 0 {
		t.Fatalf("disk-warm engine synthesized %d configs, want 0", st.PointComputed)
	}
	if st.PointDiskHits != int64(len(space)) {
		t.Fatalf("disk hits = %d, want %d", st.PointDiskHits, len(space))
	}
	if st.FrontendComputed != 0 {
		t.Fatalf("disk-warm engine ran the frontend %d times, want 0", st.FrontendComputed)
	}
	if st.DiskErrors != 0 {
		t.Fatalf("disk errors = %d", st.DiskErrors)
	}
}

// TestFrontendDiskArtifactRoundTrip proves the frontend artifact itself
// survives the disk (print → gob → parse): a fresh engine evaluating a
// configuration that shares only the (source, pass-list) prefix with
// what is on disk must revive the frontend artifact instead of
// re-transforming, and must produce exactly the point a disk-less
// engine computes from scratch.
func TestFrontendDiskArtifactRoundTrip(t *testing.T) {
	dir := t.TempDir()
	plan := microPlan()
	base := explore.Config{N: 4, Preset: core.MicroprocessorBlock, Passes: plan}
	knob := base
	knob.NoChaining = true

	a := &explore.Engine{Workers: 1, CacheDir: dir}
	if p := a.Evaluate(base); p.Err != "" {
		t.Fatal(p.Err)
	}

	b := &explore.Engine{Workers: 1, CacheDir: dir}
	got := b.Evaluate(knob) // point not on disk; frontend is
	if got.Err != "" {
		t.Fatal(got.Err)
	}
	st := b.Stats()
	if st.FrontendDiskHits != 1 || st.FrontendComputed != 0 {
		t.Fatalf("frontend disk hits = %d, computed = %d; want 1, 0 — artifact did not revive",
			st.FrontendDiskHits, st.FrontendComputed)
	}
	if st.DiskErrors != 0 {
		t.Fatalf("disk errors = %d (artifact failed round-trip verification?)", st.DiskErrors)
	}
	want := (&explore.Engine{Workers: 1}).Evaluate(knob)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("point from revived frontend artifact diverges:\n got %+v\nwant %+v", got, want)
	}
}

// TestSimTrialsPartitionDiskPoints: the simulation depth is part of the
// point's disk identity, so an engine with different SimTrials must not
// reuse another's evaluated points (the frontend artifact, which does
// not depend on it, is still shared).
func TestSimTrialsPartitionDiskPoints(t *testing.T) {
	dir := t.TempDir()
	c := explore.Config{N: 3, Preset: core.MicroprocessorBlock}
	a := &explore.Engine{SimTrials: 0, CacheDir: dir}
	a.Evaluate(c)
	b := &explore.Engine{SimTrials: 2, CacheDir: dir}
	if p := b.Evaluate(c); p.Err != "" {
		t.Fatal(p.Err)
	}
	st := b.Stats()
	if st.PointDiskHits != 0 || st.PointComputed != 1 {
		t.Fatalf("engine with different SimTrials reused disk points: %+v", st)
	}
	if st.FrontendDiskHits != 1 {
		t.Errorf("frontend artifact not shared across SimTrials: %+v", st)
	}
}

const srcSatAdd = `
uint8 a;
uint8 b;
uint8 out;
void main() {
  uint8 s;
  s = a + b;
  if (s < a) {
    s = 255;
  }
  out = s;
}
`

const srcAbsDiff = `
uint8 a;
uint8 b;
uint8 out;
void main() {
  if (a > b) {
    out = a - b;
  } else {
    out = b - a;
  }
}
`

// TestMultiSourceSweep batches two parsed user programs into one sweep
// via the engine's source table — the multi-program axis — and checks
// per-source frontend sharing plus full evaluation of every config.
func TestMultiSourceSweep(t *testing.T) {
	satadd, err := parser.Parse("satadd", srcSatAdd)
	if err != nil {
		t.Fatal(err)
	}
	absdiff, err := parser.Parse("absdiff", srcAbsDiff)
	if err != nil {
		t.Fatal(err)
	}
	eng := &explore.Engine{
		Workers:   4,
		SimTrials: 1,
		Sources: map[string]*ir.Program{
			"satadd":  satadd,
			"absdiff": absdiff,
		},
	}
	plan := microPlan()
	var space []explore.Config
	for _, name := range []string{"satadd", "absdiff"} {
		space = append(space,
			explore.Config{Source: name, Preset: core.MicroprocessorBlock, Passes: plan},
			explore.Config{Source: name, Preset: core.MicroprocessorBlock, Passes: plan, NoChaining: true},
			explore.Config{Source: name, Preset: core.ClassicalASIC, Passes: plan},
		)
	}
	pts := eng.Sweep(space)
	for i, p := range pts {
		if p.Err != "" {
			t.Fatalf("config %q failed: %s", space[i].String(), p.Err)
		}
		if p.Cycles < 1 || p.Area <= 0 {
			t.Fatalf("config %q: degenerate point %+v", space[i].String(), p)
		}
	}
	st := eng.Stats()
	if st.FrontendComputed != 2 {
		t.Fatalf("frontend computed %d times for 2 sources × 1 pass list, want 2", st.FrontendComputed)
	}
	if st.PointComputed != int64(len(space)) {
		t.Errorf("points computed = %d, want %d", st.PointComputed, len(space))
	}
	// Distinct programs must yield distinct designs under the same config.
	if pts[0].Area == pts[3].Area && pts[0].CritPath == pts[3].CritPath {
		t.Errorf("satadd and absdiff produced identical designs: %+v", pts[0])
	}

	// A config naming an unregistered source must fail cleanly, not panic.
	bad := eng.Evaluate(explore.Config{Source: "nope", Preset: core.MicroprocessorBlock})
	if bad.Err == "" {
		t.Fatal("unknown source evaluated without error")
	}
}

// TestGridSources pins the multi-source grid builder: per-source shape
// mirrors Grid's per-size shape, and every config carries its source.
func TestGridSources(t *testing.T) {
	names := []string{"a", "b"}
	space := explore.GridSources(names, explore.Variants(), []int{0, 8}, true)
	perSource := len(explore.Variants())*2 + 1
	if len(space) != perSource*len(names) {
		t.Fatalf("got %d configs, want %d", len(space), perSource*len(names))
	}
	seen := map[uint64]string{}
	for _, c := range space {
		if c.Source != "a" && c.Source != "b" {
			t.Fatalf("config without source: %q", c.String())
		}
		if prev, dup := seen[c.Key()]; dup {
			t.Fatalf("duplicate key for %q and %q", prev, c.String())
		}
		seen[c.Key()] = c.String()
	}
}
