package explore_test

import (
	"testing"

	"sparkgo/internal/explore"
	"sparkgo/internal/ir"
	"sparkgo/internal/rtl"
	"sparkgo/internal/sched"
)

// TestDiskWarmSweepNeverDecodesStagePayloads is the acceptance assert
// of the streaming-hash revival work: a disk-warm sweep revives every
// stage artifact by hash verification alone. The program and schedule
// payloads must never be decoded — their blobs carry the metadata the
// sweep reads — and the netlist decodes exactly when simulation
// demands it, nowhere else. The package decode counters (monotonic
// process-wide atomics) make the claim checkable: tests in this
// package run sequentially, so the deltas bracket this sweep alone.
func TestDiskWarmSweepNeverDecodesStagePayloads(t *testing.T) {
	dir := t.TempDir()
	space := fullFlowSpace()

	cold := &explore.Engine{CacheDir: dir}
	for _, p := range cold.Sweep(space) {
		if p.Err != "" {
			t.Fatalf("cold sweep failed: %s: %s", p.Config, p.Err)
		}
	}

	// The restarted engine simulates, so every point key misses (the
	// trial count partitions point keys) while all three stage
	// artifacts revive from disk.
	progBefore := ir.ProgramDecodeCount()
	schedBefore := sched.ResultDecodeCount()
	modBefore := rtl.ModuleDecodeCount()

	warm := &explore.Engine{SimTrials: 1, CacheDir: dir}
	for _, p := range warm.Sweep(space) {
		if p.Err != "" {
			t.Fatalf("disk-warm sweep failed: %s: %s", p.Config, p.Err)
		}
	}
	ws := warm.Stats()
	if ws.FrontendDiskHits == 0 || ws.MidendDiskHits == 0 || ws.BackendDiskHits == 0 {
		t.Fatalf("stage artifacts did not revive from disk: %+v", ws)
	}
	if ws.FrontendComputed+ws.MidendComputed+ws.BackendComputed != 0 {
		t.Fatalf("disk-warm sweep recomputed stages (fe=%d me=%d be=%d), want all revived",
			ws.FrontendComputed, ws.MidendComputed, ws.BackendComputed)
	}
	if ws.DiskErrors != 0 {
		t.Fatalf("disk-warm sweep hit disk errors: %+v", ws)
	}

	if n := ir.ProgramDecodeCount() - progBefore; n != 0 {
		t.Errorf("disk-warm sweep decoded %d programs, want 0", n)
	}
	if n := sched.ResultDecodeCount() - schedBefore; n != 0 {
		t.Errorf("disk-warm sweep decoded %d schedules, want 0", n)
	}
	if n := rtl.ModuleDecodeCount() - modBefore; n == 0 {
		t.Errorf("simulation ran but no netlist was decoded — revival is not lazy, it skipped the module entirely")
	}

	// A second restart without simulation touches nothing at all: every
	// point hits the point cache written by the cold sweep, so not even
	// the netlist decodes.
	progBefore = ir.ProgramDecodeCount()
	schedBefore = sched.ResultDecodeCount()
	modBefore = rtl.ModuleDecodeCount()
	again := &explore.Engine{CacheDir: dir}
	for _, p := range again.Sweep(space) {
		if p.Err != "" {
			t.Fatalf("point-warm sweep failed: %s: %s", p.Config, p.Err)
		}
	}
	as := again.Stats()
	if as.PointDiskHits == 0 {
		t.Fatalf("point-warm sweep hit no points on disk: %+v", as)
	}
	if n := ir.ProgramDecodeCount() - progBefore; n != 0 {
		t.Errorf("point-warm sweep decoded %d programs, want 0", n)
	}
	if n := sched.ResultDecodeCount() - schedBefore; n != 0 {
		t.Errorf("point-warm sweep decoded %d schedules, want 0", n)
	}
	if n := rtl.ModuleDecodeCount() - modBefore; n != 0 {
		t.Errorf("point-warm sweep decoded %d netlists, want 0", n)
	}
}
