package htg

import (
	"fmt"

	"sparkgo/internal/ir"
)

// This file is the lossless serialization of hierarchical task graphs,
// the midend half of the disk-backed artifact cache. A graph is a
// pointer web — ops reference variables of the program they were
// lowered from, blocks reference ops, the node tree references blocks —
// so the wire form flattens every pointer into a table index, exactly
// as ir's codec does for variables: the embedded program travels in its
// own lossless encoding (ir.EncodeProgram), variables are referenced
// into the graph's VarTable (globals first, then the function's
// locals), basic blocks by position in Blocks, and the node tree is a
// recursive tagged union. Decoding rebuilds the identical web over a
// freshly decoded program; encode(decode(x)) is byte-identical to x,
// which is what lets revived artifacts be fingerprint-verified by
// re-encoding.
//
// Every wire struct is map-free and serialized field-by-field in a
// fixed order (wirecodec.go), so identical graphs encode to identical
// bytes; the retired gob framing lives in gobcodec.go as the benchmark
// baseline.

// VarTable returns the graph's variable reference table — the program's
// globals first, then the graph function's locals — the shared indexing
// every codec layered over a graph (the schedule codec, the dependence
// edges) uses to reference variables.
func (g *Graph) VarTable() []*ir.Var {
	out := make([]*ir.Var, 0, len(g.Prog.Globals)+len(g.Fn.Locals))
	out = append(out, g.Prog.Globals...)
	out = append(out, g.Fn.Locals...)
	return out
}

// Node tree kinds.
const (
	nodeSeq = iota
	nodeBB
	nodeIf
	nodeLoop
)

type operandCode struct {
	IsConst bool
	Const   int64
	Var     int // variable table reference; -1 for constants
	Typ     ir.TypeCode
}

type opCode struct {
	ID          int
	Kind        int
	Bin         int
	Un          int
	Dst         int // variable table reference; -1 when nil
	Arr         int
	Args        []operandCode
	UnsignedOps bool
}

type guardCode struct {
	Cond  int
	Value bool
}

type blockCode struct {
	ID    int
	Guard []guardCode
	Ops   []opCode
}

// nodeCode is the tagged union of HTG tree nodes. Children slices are
// the flattened Seq contents of the respective region.
type nodeCode struct {
	Kind    int
	Nodes   []nodeCode // nodeSeq
	BB      int        // nodeBB: index into Blocks
	Cond    int        // nodeIf / nodeLoop condition variable
	HasElse bool       // nodeIf
	Then    []nodeCode // nodeIf then-Seq
	Else    []nodeCode
	Label   string     // nodeLoop
	InitBB  int        // nodeLoop: block index, -1 when absent
	CondBB  int        // nodeLoop: block index
	Body    []nodeCode // nodeLoop body-Seq
}

type graphCode struct {
	Program []byte // ir.EncodeProgram of g.Prog
	Fn      int    // index into Prog.Funcs
	RetVar  int    // variable table reference, -1 for void
	Blocks  []blockCode
	Root    []nodeCode // the root Seq's nodes
	NextOp  int
}

// graphEncoder maps the graph's pointers onto table indices.
type graphEncoder struct {
	vars   map[*ir.Var]int
	blocks map[*BasicBlock]int
}

func (en *graphEncoder) varRef(v *ir.Var) (int, error) {
	if v == nil {
		return -1, nil
	}
	i, ok := en.vars[v]
	if !ok {
		return 0, fmt.Errorf("htg: encode: reference to foreign variable %q", v.Name)
	}
	return i, nil
}

func (en *graphEncoder) bbRef(bb *BasicBlock) (int, error) {
	if bb == nil {
		return -1, nil
	}
	i, ok := en.blocks[bb]
	if !ok {
		return 0, fmt.Errorf("htg: encode: reference to unregistered block BB%d", bb.ID)
	}
	return i, nil
}

func (en *graphEncoder) operand(o Operand) (operandCode, error) {
	c := operandCode{IsConst: o.IsConst, Const: o.Const, Var: -1, Typ: ir.EncodeType(o.Typ)}
	if !o.IsConst {
		i, err := en.varRef(o.Var)
		if err != nil {
			return c, err
		}
		c.Var = i
	}
	return c, nil
}

func (en *graphEncoder) op(op *Op) (opCode, error) {
	c := opCode{ID: op.ID, Kind: int(op.Kind), Bin: int(op.Bin), Un: int(op.Un),
		UnsignedOps: op.UnsignedOps}
	var err error
	if c.Dst, err = en.varRef(op.Dst); err != nil {
		return c, err
	}
	if c.Arr, err = en.varRef(op.Arr); err != nil {
		return c, err
	}
	for _, a := range op.Args {
		ac, err := en.operand(a)
		if err != nil {
			return c, err
		}
		c.Args = append(c.Args, ac)
	}
	return c, nil
}

func (en *graphEncoder) node(n Node) (nodeCode, error) {
	switch x := n.(type) {
	case *Seq:
		nodes, err := en.seq(x)
		if err != nil {
			return nodeCode{}, err
		}
		return nodeCode{Kind: nodeSeq, Nodes: nodes}, nil
	case *BBNode:
		i, err := en.bbRef(x.BB)
		if err != nil {
			return nodeCode{}, err
		}
		return nodeCode{Kind: nodeBB, BB: i}, nil
	case *IfNode:
		cond, err := en.varRef(x.Cond)
		if err != nil {
			return nodeCode{}, err
		}
		then, err := en.seq(x.Then)
		if err != nil {
			return nodeCode{}, err
		}
		c := nodeCode{Kind: nodeIf, Cond: cond, Then: then}
		if x.Else != nil {
			c.HasElse = true
			if c.Else, err = en.seq(x.Else); err != nil {
				return nodeCode{}, err
			}
		}
		return c, nil
	case *LoopNode:
		cond, err := en.varRef(x.Cond)
		if err != nil {
			return nodeCode{}, err
		}
		initBB, err := en.bbRef(x.InitBB)
		if err != nil {
			return nodeCode{}, err
		}
		condBB, err := en.bbRef(x.CondBB)
		if err != nil {
			return nodeCode{}, err
		}
		body, err := en.seq(x.Body)
		if err != nil {
			return nodeCode{}, err
		}
		return nodeCode{Kind: nodeLoop, Label: x.Label, Cond: cond,
			InitBB: initBB, CondBB: condBB, Body: body}, nil
	}
	return nodeCode{}, fmt.Errorf("htg: encode: unknown node type %T", n)
}

func (en *graphEncoder) seq(s *Seq) ([]nodeCode, error) {
	if s == nil {
		return nil, nil
	}
	out := make([]nodeCode, 0, len(s.Nodes))
	for _, n := range s.Nodes {
		c, err := en.node(n)
		if err != nil {
			return nil, err
		}
		out = append(out, c)
	}
	return out, nil
}

// EncodeGraph serializes a graph losslessly into a self-contained byte
// string: the embedded program (ir.EncodeProgram), the block/op lists,
// and the node tree, with every pointer flattened to a table index and
// framed by the deterministic binary codec of internal/wire. The
// inverse is DecodeGraph.
func EncodeGraph(g *Graph) ([]byte, error) {
	gc, err := flattenGraph(g, ir.EncodeProgram)
	if err != nil {
		return nil, err
	}
	return encodeGraphWire(gc), nil
}

// flattenGraph lowers the graph's pointer web onto the intermediate
// wire structs; both framings (binary and the gob baseline) serialize
// this form. encodeProg serializes the embedded program — the framing's
// own program codec, so a graph encoding never mixes framings.
func flattenGraph(g *Graph, encodeProg func(*ir.Program) ([]byte, error)) (*graphCode, error) {
	prog, err := encodeProg(g.Prog)
	if err != nil {
		return nil, fmt.Errorf("htg: encode program: %w", err)
	}
	gc := graphCode{Program: prog, Fn: -1, NextOp: g.nextOp}
	for i, f := range g.Prog.Funcs {
		if f == g.Fn {
			gc.Fn = i
			break
		}
	}
	if gc.Fn < 0 {
		return nil, fmt.Errorf("htg: encode: graph function %q not in program", g.Fn.Name)
	}
	en := &graphEncoder{vars: map[*ir.Var]int{}, blocks: map[*BasicBlock]int{}}
	for i, v := range g.VarTable() {
		en.vars[v] = i
	}
	for i, bb := range g.Blocks {
		en.blocks[bb] = i
	}
	if gc.RetVar, err = en.varRef(g.RetVar); err != nil {
		return nil, err
	}
	for _, bb := range g.Blocks {
		bc := blockCode{ID: bb.ID}
		for _, gt := range bb.Guard {
			ci, err := en.varRef(gt.Cond)
			if err != nil {
				return nil, err
			}
			bc.Guard = append(bc.Guard, guardCode{Cond: ci, Value: gt.Value})
		}
		for _, op := range bb.Ops {
			oc, err := en.op(op)
			if err != nil {
				return nil, err
			}
			bc.Ops = append(bc.Ops, oc)
		}
		gc.Blocks = append(gc.Blocks, bc)
	}
	if gc.Root, err = en.seq(g.Root); err != nil {
		return nil, err
	}
	return &gc, nil
}

// graphDecoder rebuilds the pointer web from table indices.
type graphDecoder struct {
	vars   []*ir.Var
	blocks []*BasicBlock
}

func (de *graphDecoder) varAt(i int) (*ir.Var, error) {
	if i == -1 {
		return nil, nil
	}
	if i < 0 || i >= len(de.vars) {
		return nil, fmt.Errorf("htg: decode: variable reference %d out of range", i)
	}
	return de.vars[i], nil
}

func (de *graphDecoder) bbAt(i int) (*BasicBlock, error) {
	if i == -1 {
		return nil, nil
	}
	if i < 0 || i >= len(de.blocks) {
		return nil, fmt.Errorf("htg: decode: block reference %d out of range", i)
	}
	return de.blocks[i], nil
}

func (de *graphDecoder) operand(c operandCode) (Operand, error) {
	t, err := ir.DecodeType(c.Typ)
	if err != nil {
		return Operand{}, err
	}
	o := Operand{IsConst: c.IsConst, Const: c.Const, Typ: t}
	if !c.IsConst {
		if o.Var, err = de.varAt(c.Var); err != nil {
			return Operand{}, err
		}
		if o.Var == nil {
			return Operand{}, fmt.Errorf("htg: decode: variable operand without variable")
		}
	}
	return o, nil
}

func (de *graphDecoder) op(c opCode, bb *BasicBlock) (*Op, error) {
	op := &Op{ID: c.ID, Kind: OpKind(c.Kind), Bin: ir.BinOp(c.Bin), Un: ir.UnOp(c.Un),
		BB: bb, UnsignedOps: c.UnsignedOps}
	var err error
	if op.Dst, err = de.varAt(c.Dst); err != nil {
		return nil, err
	}
	if op.Arr, err = de.varAt(c.Arr); err != nil {
		return nil, err
	}
	for _, ac := range c.Args {
		a, err := de.operand(ac)
		if err != nil {
			return nil, err
		}
		op.Args = append(op.Args, a)
	}
	return op, nil
}

func (de *graphDecoder) node(c nodeCode) (Node, error) {
	switch c.Kind {
	case nodeSeq:
		return de.seq(c.Nodes)
	case nodeBB:
		bb, err := de.bbAt(c.BB)
		if err != nil {
			return nil, err
		}
		if bb == nil {
			return nil, fmt.Errorf("htg: decode: BB node without block")
		}
		return &BBNode{BB: bb}, nil
	case nodeIf:
		cond, err := de.varAt(c.Cond)
		if err != nil {
			return nil, err
		}
		then, err := de.seq(c.Then)
		if err != nil {
			return nil, err
		}
		n := &IfNode{Cond: cond, Then: then}
		if c.HasElse {
			if n.Else, err = de.seq(c.Else); err != nil {
				return nil, err
			}
		}
		return n, nil
	case nodeLoop:
		cond, err := de.varAt(c.Cond)
		if err != nil {
			return nil, err
		}
		initBB, err := de.bbAt(c.InitBB)
		if err != nil {
			return nil, err
		}
		condBB, err := de.bbAt(c.CondBB)
		if err != nil {
			return nil, err
		}
		body, err := de.seq(c.Body)
		if err != nil {
			return nil, err
		}
		return &LoopNode{Label: c.Label, Cond: cond, InitBB: initBB,
			CondBB: condBB, Body: body}, nil
	}
	return nil, fmt.Errorf("htg: decode: unknown node kind %d", c.Kind)
}

func (de *graphDecoder) seq(cs []nodeCode) (*Seq, error) {
	s := &Seq{Nodes: make([]Node, 0, len(cs))}
	for _, c := range cs {
		n, err := de.node(c)
		if err != nil {
			return nil, err
		}
		s.Nodes = append(s.Nodes, n)
	}
	return s, nil
}

// DecodeGraph reconstructs a graph serialized by EncodeGraph: the
// program is decoded first, then every variable, block, and op
// reference is resolved against it, so the result shares nothing with
// any other graph.
func DecodeGraph(data []byte) (*Graph, error) {
	gc, err := decodeGraphWire(data)
	if err != nil {
		return nil, fmt.Errorf("htg: decode: %w", err)
	}
	return rebuildGraph(gc, ir.DecodeProgram)
}

// rebuildGraph resolves the flattened form back into a pointer web over
// a freshly decoded program; decodeProg matches the framing's program
// codec.
func rebuildGraph(gc *graphCode, decodeProg func([]byte) (*ir.Program, error)) (*Graph, error) {
	prog, err := decodeProg(gc.Program)
	if err != nil {
		return nil, fmt.Errorf("htg: decode: %w", err)
	}
	if gc.Fn < 0 || gc.Fn >= len(prog.Funcs) {
		return nil, fmt.Errorf("htg: decode: function reference %d out of range", gc.Fn)
	}
	g := &Graph{Prog: prog, Fn: prog.Funcs[gc.Fn], nextOp: gc.NextOp}
	de := &graphDecoder{vars: g.VarTable()}
	if g.RetVar, err = de.varAt(gc.RetVar); err != nil {
		return nil, err
	}
	// Blocks first (shells), so the node tree and op backpointers can
	// resolve them.
	for _, bc := range gc.Blocks {
		bb := &BasicBlock{ID: bc.ID}
		for _, gcd := range bc.Guard {
			cv, err := de.varAt(gcd.Cond)
			if err != nil {
				return nil, err
			}
			bb.Guard = append(bb.Guard, GuardTerm{Cond: cv, Value: gcd.Value})
		}
		g.Blocks = append(g.Blocks, bb)
		de.blocks = append(de.blocks, bb)
	}
	for i, bc := range gc.Blocks {
		bb := g.Blocks[i]
		for _, oc := range bc.Ops {
			op, err := de.op(oc, bb)
			if err != nil {
				return nil, err
			}
			bb.Ops = append(bb.Ops, op)
		}
	}
	if g.Root, err = de.seq(gc.Root); err != nil {
		return nil, err
	}
	return g, nil
}
