package htg

import (
	"bytes"
	"encoding/gob"
	"fmt"

	"sparkgo/internal/ir"
)

// The gob framing EncodeGraph used before the deterministic wire format
// (internal/wire) replaced it on the artifact hot path. Retained as the
// benchmark baseline; delete once the codec-speed ratchet lands in CI.

// EncodeGraphGob serializes g with the retired gob framing — the
// embedded program travels gob-framed too, so the framings never mix.
func EncodeGraphGob(g *Graph) ([]byte, error) {
	gc, err := flattenGraph(g, ir.EncodeProgramGob)
	if err != nil {
		return nil, err
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(gc); err != nil {
		return nil, fmt.Errorf("htg: encode: %w", err)
	}
	return buf.Bytes(), nil
}

// DecodeGraphGob reconstructs a graph serialized by EncodeGraphGob.
func DecodeGraphGob(data []byte) (*Graph, error) {
	var gc graphCode
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&gc); err != nil {
		return nil, fmt.Errorf("htg: decode: %w", err)
	}
	return rebuildGraph(&gc, ir.DecodeProgramGob)
}
