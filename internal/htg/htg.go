// Package htg builds the hierarchical task graph (HTG) of a behavioral
// description: the representation the Spark paper schedules on (§3.1.1,
// Fig 5). Statements lower to three-address operations grouped into basic
// blocks; structured control flow becomes If and Loop compound nodes; every
// basic block carries its path guard (the condition conjunction under which
// it executes). The package also enumerates chaining trails — all the
// control paths leading back from a basic block — which the scheduler's
// chaining heuristic validates exactly as §3.1.1 describes.
package htg

import (
	"fmt"

	"sparkgo/internal/ir"
)

// OpKind classifies three-address operations.
type OpKind int

const (
	// OpBin applies a binary operator: Dst = Args[0] <BinOp> Args[1].
	OpBin OpKind = iota
	// OpUn applies a unary operator: Dst = <UnOp> Args[0].
	OpUn
	// OpMux selects: Dst = Args[0] ? Args[1] : Args[2].
	OpMux
	// OpCopy moves a value (with implicit width conversion):
	// Dst = Args[0].
	OpCopy
	// OpLoad reads an array element: Dst = Arr[Args[0]].
	OpLoad
	// OpStore writes an array element: Arr[Args[0]] = Args[1].
	OpStore
)

func (k OpKind) String() string {
	switch k {
	case OpBin:
		return "bin"
	case OpUn:
		return "un"
	case OpMux:
		return "mux"
	case OpCopy:
		return "copy"
	case OpLoad:
		return "load"
	case OpStore:
		return "store"
	}
	return fmt.Sprintf("OpKind(%d)", int(k))
}

// Operand is a value reference: a constant or a variable.
type Operand struct {
	IsConst bool
	Const   int64
	Var     *ir.Var
	Typ     *ir.Type
}

// ConstOperand builds a constant operand.
func ConstOperand(v int64, t *ir.Type) Operand {
	return Operand{IsConst: true, Const: t.Canon(v), Typ: t}
}

// VarOperand builds a variable operand.
func VarOperand(v *ir.Var) Operand { return Operand{Var: v, Typ: v.Type} }

func (o Operand) String() string {
	if o.IsConst {
		return fmt.Sprintf("%d", o.Const)
	}
	return o.Var.Name
}

// Op is one three-address operation.
type Op struct {
	ID   int
	Kind OpKind
	Bin  ir.BinOp // OpBin only
	Un   ir.UnOp  // OpUn only
	Dst  *ir.Var  // result (nil for OpStore)
	Arr  *ir.Var  // OpLoad/OpStore only
	Args []Operand
	BB   *BasicBlock
	// UnsignedOps records the operand-signedness rule for comparisons,
	// division, and right shift (see interp.UnsignedOperands).
	UnsignedOps bool
}

// Reads returns the variables this op reads (array reads include Arr).
func (op *Op) Reads() []*ir.Var {
	var out []*ir.Var
	for _, a := range op.Args {
		if !a.IsConst {
			out = append(out, a.Var)
		}
	}
	if op.Kind == OpLoad {
		out = append(out, op.Arr)
	}
	return out
}

// Writes returns the variable this op writes (the array for OpStore).
func (op *Op) Writes() *ir.Var {
	if op.Kind == OpStore {
		return op.Arr
	}
	return op.Dst
}

func (op *Op) String() string {
	switch op.Kind {
	case OpBin:
		return fmt.Sprintf("%s = %s %s %s", op.Dst, op.Args[0], op.Bin, op.Args[1])
	case OpUn:
		return fmt.Sprintf("%s = %s%s", op.Dst, op.Un, op.Args[0])
	case OpMux:
		return fmt.Sprintf("%s = %s ? %s : %s", op.Dst, op.Args[0], op.Args[1], op.Args[2])
	case OpCopy:
		return fmt.Sprintf("%s = %s", op.Dst, op.Args[0])
	case OpLoad:
		return fmt.Sprintf("%s = %s[%s]", op.Dst, op.Arr, op.Args[0])
	case OpStore:
		return fmt.Sprintf("%s[%s] = %s", op.Arr, op.Args[0], op.Args[1])
	}
	return "?"
}

// GuardTerm is one conjunct of a basic block's path condition: the
// condition variable of an enclosing IfNode and the branch it must take.
type GuardTerm struct {
	Cond  *ir.Var
	Value bool
}

// BasicBlock is a maximal straight-line run of operations.
type BasicBlock struct {
	ID    int
	Ops   []*Op
	Guard []GuardTerm // path condition (outermost first)
}

func (bb *BasicBlock) String() string { return fmt.Sprintf("BB%d", bb.ID) }

// Node is an HTG node.
type Node interface{ isNode() }

// Seq is an ordered sequence of HTG nodes.
type Seq struct {
	Nodes []Node
}

func (*Seq) isNode() {}

// BBNode wraps a basic block as an HTG node.
type BBNode struct {
	BB *BasicBlock
}

func (*BBNode) isNode() {}

// IfNode is a two-way conditional region. The condition value is the
// variable Cond, computed by ops in an earlier basic block.
type IfNode struct {
	Cond *ir.Var
	Then *Seq
	Else *Seq // may be nil
}

func (*IfNode) isNode() {}

// LoopNode is a loop region. CondBB re-evaluates the condition (into Cond)
// before every iteration; Body contains the body (with the for-post ops
// appended).
type LoopNode struct {
	Label  string
	InitBB *BasicBlock // may be empty; runs once
	CondBB *BasicBlock // evaluated each iteration
	Cond   *ir.Var
	Body   *Seq
}

func (*LoopNode) isNode() {}

// Graph is the HTG of one function.
type Graph struct {
	Prog   *ir.Program
	Fn     *ir.Func
	Root   *Seq
	Blocks []*BasicBlock
	// RetVar receives the function's return value (nil for void).
	RetVar *ir.Var

	nextOp int
}

// AllOps returns every op in the graph in construction order.
func (g *Graph) AllOps() []*Op {
	var out []*Op
	for _, bb := range g.Blocks {
		out = append(out, bb.Ops...)
	}
	return out
}

// OpCount returns the total number of operations.
func (g *Graph) OpCount() int {
	n := 0
	for _, bb := range g.Blocks {
		n += len(bb.Ops)
	}
	return n
}

// HasLoops reports whether the graph contains any loop node.
func (g *Graph) HasLoops() bool {
	found := false
	WalkNodes(g.Root, func(n Node) {
		if _, ok := n.(*LoopNode); ok {
			found = true
		}
	})
	return found
}

// WalkNodes visits every node in the tree, pre-order.
func WalkNodes(n Node, fn func(Node)) {
	if n == nil {
		return
	}
	fn(n)
	switch x := n.(type) {
	case *Seq:
		for _, c := range x.Nodes {
			WalkNodes(c, fn)
		}
	case *IfNode:
		WalkNodes(x.Then, fn)
		if x.Else != nil {
			WalkNodes(x.Else, fn)
		}
	case *LoopNode:
		WalkNodes(x.Body, fn)
	}
}

// MutuallyExclusive reports whether two basic blocks can never execute in
// the same activation: their path guards contradict on some condition.
// (Paper §2: "mutually exclusive operations can be scheduled in the same
// clock cycle on the same resource".)
func MutuallyExclusive(a, b *BasicBlock) bool {
	for _, ga := range a.Guard {
		for _, gb := range b.Guard {
			if ga.Cond == gb.Cond && ga.Value != gb.Value {
				return true
			}
		}
	}
	return false
}

// Trail is one control path from the graph entry to a target block: the
// list of basic blocks traversed, target last (paper §3.1.1 walks them
// "backwards from the basic block", we store them forward).
type Trail []*BasicBlock

// Trails enumerates every control path from the start of the graph to the
// target block, exactly the trails of paper Fig 5. Loop bodies are treated
// as straight-line regions (one pass); the paper's single-cycle designs are
// loop-free by the time trails matter. A path that cannot reach the target
// contributes nothing; a path ends at its first occurrence of the target.
func (g *Graph) Trails(target *BasicBlock) []Trail {
	var out []Trail
	var cur Trail
	var enum func(nodes []Node)
	var enumNode func(n Node, rest []Node)
	enumNode = func(n Node, rest []Node) {
		switch x := n.(type) {
		case *BBNode:
			cur = append(cur, x.BB)
			if x.BB == target {
				t := make(Trail, len(cur))
				copy(t, cur)
				out = append(out, t)
			} else {
				enum(rest)
			}
			cur = cur[:len(cur)-1]
		case *Seq:
			enum(append(append([]Node{}, x.Nodes...), rest...))
		case *IfNode:
			enumNode(x.Then, rest)
			if x.Else != nil {
				enumNode(x.Else, rest)
			} else {
				// Fall-through arm: this path skips the if entirely.
				enum(rest)
			}
		case *LoopNode:
			seq := []Node{}
			if x.InitBB != nil {
				seq = append(seq, &BBNode{BB: x.InitBB})
			}
			seq = append(seq, &BBNode{BB: x.CondBB})
			seq = append(seq, x.Body.Nodes...)
			seq = append(seq, rest...)
			enum(seq)
		}
	}
	enum = func(nodes []Node) {
		if len(nodes) == 0 {
			return
		}
		enumNode(nodes[0], nodes[1:])
	}
	enum(g.Root.Nodes)
	return out
}
