package htg_test

import (
	"testing"

	"sparkgo/internal/htg"
	"sparkgo/internal/ir"
	"sparkgo/internal/parser"
	"sparkgo/internal/transform"
)

func lower(t *testing.T, src string) *htg.Graph {
	t.Helper()
	p := parser.MustParse("t", src)
	if _, err := transform.Inline(nil).Run(p); err != nil {
		t.Fatal(err)
	}
	g, err := htg.Lower(p, p.Main())
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestLowerStraightline(t *testing.T) {
	g := lower(t, `
uint8 a;
uint8 out;
void main() {
  out = a * 2 + 1;
}
`)
	if len(g.Blocks) != 1 {
		t.Errorf("blocks = %d, want 1", len(g.Blocks))
	}
	// mul, add (+ copies as needed): at least 2 ops, all in one BB.
	if g.OpCount() < 2 {
		t.Errorf("ops = %d, want >= 2", g.OpCount())
	}
	if g.HasLoops() {
		t.Error("unexpected loops")
	}
}

func TestLowerThreeAddressForm(t *testing.T) {
	g := lower(t, `
uint8 a;
uint8 b;
uint8 out;
void main() {
  out = (a + b) * (a - b);
}
`)
	// Every op has at most 3 operands and exactly one destination (or is
	// a store).
	for _, op := range g.AllOps() {
		if len(op.Args) > 3 {
			t.Errorf("op %s has %d args", op, len(op.Args))
		}
		if op.Kind != htg.OpStore && op.Dst == nil {
			t.Errorf("op %s missing destination", op)
		}
	}
}

func TestLowerGuards(t *testing.T) {
	g := lower(t, `
uint8 a;
uint8 out;
void main() {
  if (a > 1) {
    if (a > 2) {
      out = 3;
    } else {
      out = 2;
    }
  } else {
    out = 1;
  }
}
`)
	// Find the deepest guarded blocks: the inner branches carry two
	// guard terms.
	deepest := 0
	for _, bb := range g.Blocks {
		if len(bb.Guard) > deepest {
			deepest = len(bb.Guard)
		}
	}
	if deepest != 2 {
		t.Errorf("deepest guard = %d, want 2", deepest)
	}
}

func TestMutuallyExclusive(t *testing.T) {
	g := lower(t, `
uint8 a;
uint8 x;
uint8 y;
void main() {
  if (a > 1) {
    x = 1;
  } else {
    y = 2;
  }
}
`)
	var thenBB, elseBB *htg.BasicBlock
	for _, bb := range g.Blocks {
		for _, op := range bb.Ops {
			if w := op.Writes(); w != nil {
				switch w.Name {
				case "x":
					thenBB = bb
				case "y":
					elseBB = bb
				}
			}
		}
	}
	if thenBB == nil || elseBB == nil {
		t.Fatal("branch blocks not found")
	}
	if !htg.MutuallyExclusive(thenBB, elseBB) {
		t.Error("then/else blocks should be mutually exclusive")
	}
	if htg.MutuallyExclusive(thenBB, thenBB) {
		t.Error("a block is not exclusive with itself")
	}
}

func TestTrailsFig5Shape(t *testing.T) {
	// The paper's Fig 5: three trails back from the consumer block.
	g := lower(t, `
uint8 a;
uint8 b;
uint8 c;
uint8 d;
bool cond1;
bool cond2;
uint8 o2;
void main() {
  uint8 o1;
  if (cond1) {
    if (cond2) {
      o1 = a;
    } else {
      o1 = b;
    }
  } else {
    o1 = c;
  }
  o2 = o1 + d;
}
`)
	var target *htg.BasicBlock
	for _, bb := range g.Blocks {
		for _, op := range bb.Ops {
			if w := op.Writes(); w != nil && w.Name == "o2" {
				target = bb
			}
		}
	}
	trails := g.Trails(target)
	if len(trails) != 3 {
		t.Fatalf("trails = %d, want 3", len(trails))
	}
	for i, tr := range trails {
		if tr[len(tr)-1] != target {
			t.Errorf("trail %d does not end at target", i)
		}
	}
}

func TestTrailsFallThroughIf(t *testing.T) {
	// An if without else has two trails to a later block: through the
	// branch and around it.
	g := lower(t, `
uint8 a;
uint8 out;
void main() {
  uint8 x;
  x = 1;
  if (a > 1) {
    x = 2;
  }
  out = x;
}
`)
	var target *htg.BasicBlock
	for _, bb := range g.Blocks {
		for _, op := range bb.Ops {
			if w := op.Writes(); w != nil && w.Name == "out" {
				target = bb
			}
		}
	}
	trails := g.Trails(target)
	if len(trails) != 2 {
		t.Errorf("trails = %d, want 2 (through and around)", len(trails))
	}
}

func TestLowerLoops(t *testing.T) {
	g := lower(t, `
uint8 data[4];
uint16 sum;
void main() {
  uint8 i;
  for (i = 0; i < 4; i++) {
    sum += data[i];
  }
}
`)
	if !g.HasLoops() {
		t.Fatal("loop not lowered to LoopNode")
	}
	var loop *htg.LoopNode
	htg.WalkNodes(g.Root, func(n htg.Node) {
		if l, ok := n.(*htg.LoopNode); ok {
			loop = l
		}
	})
	if loop == nil || loop.CondBB == nil || loop.Cond == nil {
		t.Fatal("loop structure incomplete")
	}
	if loop.InitBB == nil {
		t.Error("for-loop init block missing")
	}
}

func TestLowerRejectsCalls(t *testing.T) {
	p := parser.MustParse("t", `
uint8 out;
uint8 f() {
  return 1;
}
void main() {
  out = f();
}
`)
	if _, err := htg.Lower(p, p.Main()); err == nil {
		t.Error("expected error for un-inlined call")
	}
}

func TestLowerRejectsNonTailReturn(t *testing.T) {
	f := ir.NewFunc("main", ir.U8)
	x := f.NewLocal("x", ir.U8)
	f.Body.Add(
		ir.If(ir.Lt(ir.V(x), ir.C(1, ir.U8)),
			ir.NewBlock(&ir.ReturnStmt{Val: ir.C(0, ir.U8)}), nil),
		&ir.ReturnStmt{Val: ir.V(x)},
	)
	p := ir.NewProgram("t")
	p.AddFunc(f)
	if _, err := htg.Lower(p, f); err == nil {
		t.Error("expected error for non-tail return")
	}
}

func TestOperandString(t *testing.T) {
	v := &ir.Var{Name: "x", Type: ir.U8}
	if got := htg.VarOperand(v).String(); got != "x" {
		t.Errorf("VarOperand = %q", got)
	}
	if got := htg.ConstOperand(300, ir.U8).String(); got != "44" {
		t.Errorf("ConstOperand canon = %q, want 44 (300 mod 256)", got)
	}
}
