package htg

import (
	"fmt"

	"sparkgo/internal/interp"
	"sparkgo/internal/ir"
)

// Lower builds the HTG of a function. The function must be call-free
// (inline first); returns are allowed only in tail position. The lowering
// is three-address: every operator becomes one Op writing a fresh
// temporary unless it directly feeds an assignment, in which case it
// writes the destination.
//
// Logical && and || lower to strict (both-operands) gates: all IR
// expressions are pure, and our division/remainder semantics are total, so
// strict evaluation computes the same value the interpreter's
// short-circuit evaluation does — and gates are what the hardware builds.
func Lower(prog *ir.Program, fn *ir.Func) (*Graph, error) {
	g := &Graph{Prog: prog, Fn: fn, Root: &Seq{}}
	lw := &lowerer{g: g}
	if !fn.Ret.IsVoid() {
		g.RetVar = fn.NewTemp("ret", fn.Ret)
	}
	seq, err := lw.lowerBlock(fn.Body, nil)
	if err != nil {
		return nil, err
	}
	g.Root = seq
	return g, nil
}

type lowerer struct {
	g     *Graph
	cur   *BasicBlock
	seq   *Seq
	guard []GuardTerm

	// Lowering arenas: ops, operand lists, blocks, and guard copies are
	// carved from fixed-size chunks instead of allocated one heap object
	// per emit — the same block-allocation the codec uses on decode,
	// applied to the builder the midend re-runs per explored design
	// point. Chunks are never resliced once handed out, so the pointers
	// stay stable for the life of the graph.
	opArena    []Op
	bbArena    []BasicBlock
	argArena   []Operand
	guardArena []GuardTerm
}

// lowerArenaChunk sizes the lowering arenas: a handful of chunks covers
// a typical function, and an abandoned graph wastes little.
const lowerArenaChunk = 64

// newOp carves one op from the arena and initializes it from the
// prototype.
func (lw *lowerer) newOp(proto Op) *Op {
	if len(lw.opArena) == 0 {
		lw.opArena = make([]Op, lowerArenaChunk)
	}
	op := &lw.opArena[0]
	lw.opArena = lw.opArena[1:]
	*op = proto
	return op
}

// argSlots carves an n-element operand list from the arena.
func (lw *lowerer) argSlots(n int) []Operand {
	if len(lw.argArena) < n {
		lw.argArena = make([]Operand, max(lowerArenaChunk, n))
	}
	s := lw.argArena[:n:n]
	lw.argArena = lw.argArena[n:]
	return s
}

func (lw *lowerer) args1(a Operand) []Operand {
	s := lw.argSlots(1)
	s[0] = a
	return s
}

func (lw *lowerer) args2(a, b Operand) []Operand {
	s := lw.argSlots(2)
	s[0], s[1] = a, b
	return s
}

func (lw *lowerer) args3(a, b, c Operand) []Operand {
	s := lw.argSlots(3)
	s[0], s[1], s[2] = a, b, c
	return s
}

// copyGuard snapshots the current guard context from the arena.
func (lw *lowerer) copyGuard() []GuardTerm {
	n := len(lw.guard)
	if n == 0 {
		return []GuardTerm{}
	}
	if len(lw.guardArena) < n {
		lw.guardArena = make([]GuardTerm, max(lowerArenaChunk, n))
	}
	s := lw.guardArena[:n:n]
	lw.guardArena = lw.guardArena[n:]
	copy(s, lw.guard)
	return s
}

func (lw *lowerer) newBB() *BasicBlock {
	if len(lw.bbArena) == 0 {
		lw.bbArena = make([]BasicBlock, lowerArenaChunk)
	}
	bb := &lw.bbArena[0]
	lw.bbArena = lw.bbArena[1:]
	bb.ID = len(lw.g.Blocks)
	bb.Guard = lw.copyGuard()
	lw.g.Blocks = append(lw.g.Blocks, bb)
	return bb
}

// ensureBB returns the current basic block, opening one if needed.
func (lw *lowerer) ensureBB() *BasicBlock {
	if lw.cur == nil {
		lw.cur = lw.newBB()
		lw.seq.Nodes = append(lw.seq.Nodes, &BBNode{BB: lw.cur})
	}
	return lw.cur
}

func (lw *lowerer) emit(proto Op) *Op {
	op := lw.newOp(proto)
	bb := lw.ensureBB()
	op.ID = lw.g.nextOp
	lw.g.nextOp++
	op.BB = bb
	bb.Ops = append(bb.Ops, op)
	return op
}

func (lw *lowerer) temp(t *ir.Type) *ir.Var {
	v := lw.g.Fn.NewTemp("op", t)
	return v
}

// lowerBlock lowers a statement block into a fresh Seq under the given
// guard context.
func (lw *lowerer) lowerBlock(b *ir.Block, guard []GuardTerm) (*Seq, error) {
	savedSeq, savedCur, savedGuard := lw.seq, lw.cur, lw.guard
	lw.seq, lw.cur, lw.guard = &Seq{}, nil, guard
	defer func() { lw.seq, lw.cur, lw.guard = savedSeq, savedCur, savedGuard }()

	for i, s := range b.Stmts {
		if err := lw.lowerStmt(s, i == len(b.Stmts)-1); err != nil {
			return nil, err
		}
	}
	return lw.seq, nil
}

func (lw *lowerer) lowerStmt(s ir.Stmt, isLast bool) error {
	switch x := s.(type) {
	case *ir.AssignStmt:
		return lw.lowerAssign(x)
	case *ir.IfStmt:
		condOperand, err := lw.lowerExpr(x.Cond, nil)
		if err != nil {
			return err
		}
		condVar, err := lw.materialize(condOperand, ir.Bool)
		if err != nil {
			return err
		}
		thenSeq, err := lw.lowerBlock(x.Then, append(append([]GuardTerm{}, lw.guard...), GuardTerm{Cond: condVar, Value: true}))
		if err != nil {
			return err
		}
		var elseSeq *Seq
		if x.Else != nil {
			elseSeq, err = lw.lowerBlock(x.Else, append(append([]GuardTerm{}, lw.guard...), GuardTerm{Cond: condVar, Value: false}))
			if err != nil {
				return err
			}
		}
		lw.seq.Nodes = append(lw.seq.Nodes, &IfNode{Cond: condVar, Then: thenSeq, Else: elseSeq})
		lw.cur = nil // join: next ops start a fresh block
		return nil
	case *ir.ForStmt:
		return lw.lowerFor(x)
	case *ir.WhileStmt:
		return lw.lowerWhile(x)
	case *ir.ReturnStmt:
		if !isLast || len(lw.guard) != 0 {
			return fmt.Errorf("htg: non-tail return in %s (inline/restructure first)", lw.g.Fn.Name)
		}
		if x.Val != nil {
			if lw.g.RetVar == nil {
				return fmt.Errorf("htg: value return in void function %s", lw.g.Fn.Name)
			}
			return lw.assignTo(lw.g.RetVar, ir.Cast(x.Val, lw.g.RetVar.Type))
		}
		return nil
	case *ir.ExprStmt:
		return fmt.Errorf("htg: call %s survives lowering (run inline first)", x.Call.Name)
	case *ir.Block:
		for i, inner := range x.Stmts {
			if err := lw.lowerStmt(inner, isLast && i == len(x.Stmts)-1); err != nil {
				return err
			}
		}
		return nil
	}
	return fmt.Errorf("htg: unknown statement %T", s)
}

func (lw *lowerer) lowerAssign(a *ir.AssignStmt) error {
	if _, isCall := a.RHS.(*ir.CallExpr); isCall {
		return fmt.Errorf("htg: call survives lowering (run inline first)")
	}
	switch lhs := a.LHS.(type) {
	case *ir.VarExpr:
		return lw.assignTo(lhs.V, a.RHS)
	case *ir.IndexExpr:
		idx, err := lw.lowerExpr(lhs.Index, nil)
		if err != nil {
			return err
		}
		val, err := lw.lowerExpr(a.RHS, nil)
		if err != nil {
			return err
		}
		lw.emit(Op{Kind: OpStore, Arr: lhs.Arr, Args: lw.args2(idx, val)})
		return nil
	}
	return fmt.Errorf("htg: bad lvalue %T", a.LHS)
}

// assignTo lowers "dst = e", targeting dst directly when e is an operator.
func (lw *lowerer) assignTo(dst *ir.Var, e ir.Expr) error {
	op, err := lw.lowerExpr(e, dst)
	if err != nil {
		return err
	}
	// lowerExpr with a destination either targeted it (returns the dst
	// operand) or produced a value that still needs a copy.
	if !op.IsConst && op.Var == dst {
		return nil
	}
	lw.emit(Op{Kind: OpCopy, Dst: dst, Args: lw.args1(op)})
	return nil
}

// materialize forces an operand into a variable of the given type.
func (lw *lowerer) materialize(o Operand, t *ir.Type) (*ir.Var, error) {
	if !o.IsConst && o.Var.Type.Equal(t) {
		return o.Var, nil
	}
	v := lw.temp(t)
	lw.emit(Op{Kind: OpCopy, Dst: v, Args: lw.args1(o)})
	return v, nil
}

// lowerExpr lowers an expression, emitting ops as needed. If dst is
// non-nil and the expression's root is an operator whose result type
// matches dst's width semantics, the final op writes dst directly and the
// returned operand references dst.
func (lw *lowerer) lowerExpr(e ir.Expr, dst *ir.Var) (Operand, error) {
	switch x := e.(type) {
	case *ir.ConstExpr:
		return Operand{IsConst: true, Const: x.Val, Typ: x.Typ}, nil
	case *ir.VarExpr:
		if x.V.Type.IsArray() {
			return Operand{}, fmt.Errorf("htg: array %s used as value", x.V.Name)
		}
		return VarOperand(x.V), nil
	case *ir.IndexExpr:
		idx, err := lw.lowerExpr(x.Index, nil)
		if err != nil {
			return Operand{}, err
		}
		d := lw.target(dst, x.Type())
		lw.emit(Op{Kind: OpLoad, Dst: d, Arr: x.Arr, Args: lw.args1(idx)})
		return VarOperand(d), nil
	case *ir.BinExpr:
		l, err := lw.lowerExpr(x.L, nil)
		if err != nil {
			return Operand{}, err
		}
		r, err := lw.lowerExpr(x.R, nil)
		if err != nil {
			return Operand{}, err
		}
		d := lw.target(dst, x.Typ)
		lw.emit(Op{Kind: OpBin, Bin: x.Op, Dst: d, Args: lw.args2(l, r),
			UnsignedOps: interp.UnsignedOperands(x.L.Type(), x.R.Type())})
		return VarOperand(d), nil
	case *ir.UnExpr:
		in, err := lw.lowerExpr(x.X, nil)
		if err != nil {
			return Operand{}, err
		}
		d := lw.target(dst, x.Typ)
		lw.emit(Op{Kind: OpUn, Un: x.Op, Dst: d, Args: lw.args1(in)})
		return VarOperand(d), nil
	case *ir.SelExpr:
		c, err := lw.lowerExpr(x.Cond, nil)
		if err != nil {
			return Operand{}, err
		}
		tv, err := lw.lowerExpr(x.Then, nil)
		if err != nil {
			return Operand{}, err
		}
		ev, err := lw.lowerExpr(x.Else, nil)
		if err != nil {
			return Operand{}, err
		}
		d := lw.target(dst, x.Typ)
		lw.emit(Op{Kind: OpMux, Dst: d, Args: lw.args3(c, tv, ev)})
		return VarOperand(d), nil
	case *ir.CastExpr:
		in, err := lw.lowerExpr(x.X, nil)
		if err != nil {
			return Operand{}, err
		}
		d := lw.target(dst, x.Typ)
		lw.emit(Op{Kind: OpCopy, Dst: d, Args: lw.args1(in)})
		return VarOperand(d), nil
	case *ir.CallExpr:
		return Operand{}, fmt.Errorf("htg: call %s survives lowering", x.Name)
	}
	return Operand{}, fmt.Errorf("htg: unknown expression %T", e)
}

// target picks the destination for an operator result: dst when its type
// matches the operator's result exactly, else a fresh temp (the final Copy
// performs the width conversion).
func (lw *lowerer) target(dst *ir.Var, resultType *ir.Type) *ir.Var {
	if dst != nil && dst.Type.Equal(resultType) {
		return dst
	}
	return lw.temp(resultType)
}

func (lw *lowerer) lowerFor(f *ir.ForStmt) error {
	loop := &LoopNode{Label: f.Label}
	// Init block.
	lw.cur = nil
	if f.Init != nil {
		lw.cur = lw.newBB()
		if err := lw.lowerAssign(f.Init); err != nil {
			return err
		}
		loop.InitBB = lw.cur
	}
	// Cond block.
	lw.cur = lw.newBB()
	condOperand, err := lw.lowerExpr(f.Cond, nil)
	if err != nil {
		return err
	}
	condVar, err := lw.materialize(condOperand, ir.Bool)
	if err != nil {
		return err
	}
	loop.CondBB = lw.cur
	loop.Cond = condVar

	// Body (+ post) as a nested sequence.
	bodyStmts := append([]ir.Stmt{}, f.Body.Stmts...)
	if f.Post != nil {
		bodyStmts = append(bodyStmts, f.Post)
	}
	bodySeq, err := lw.lowerBlock(ir.NewBlock(bodyStmts...), lw.guard)
	if err != nil {
		return err
	}
	loop.Body = bodySeq
	lw.seq.Nodes = append(lw.seq.Nodes, loop)
	lw.cur = nil
	return nil
}

func (lw *lowerer) lowerWhile(w *ir.WhileStmt) error {
	loop := &LoopNode{Label: w.Label}
	lw.cur = lw.newBB()
	condOperand, err := lw.lowerExpr(w.Cond, nil)
	if err != nil {
		return err
	}
	condVar, err := lw.materialize(condOperand, ir.Bool)
	if err != nil {
		return err
	}
	loop.CondBB = lw.cur
	loop.Cond = condVar
	bodySeq, err := lw.lowerBlock(w.Body, lw.guard)
	if err != nil {
		return err
	}
	loop.Body = bodySeq
	lw.seq.Nodes = append(lw.seq.Nodes, loop)
	lw.cur = nil
	return nil
}
