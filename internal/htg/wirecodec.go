package htg

import (
	"fmt"

	"sparkgo/internal/ir"
	"sparkgo/internal/wire"
)

// The binary wire framing of the flattened graph form (see codec.go for
// the flattening): fixed field order, varint lengths, the node tree as
// a recursive tagged union that writes its kind first. Identical graphs
// encode to identical bytes.

// graphTag versions the HTG wire layout.
const graphTag = "htg/1"

func putOperand(e *wire.Encoder, c operandCode) {
	e.Bool(c.IsConst)
	e.Int64(c.Const)
	e.Int(c.Var)
	ir.PutType(e, c.Typ)
}

func getOperand(d *wire.Decoder) operandCode {
	return operandCode{
		IsConst: d.Bool(),
		Const:   d.Int64(),
		Var:     d.Int(),
		Typ:     ir.GetType(d),
	}
}

func putOp(e *wire.Encoder, c *opCode) {
	e.Int(c.ID)
	e.Int(c.Kind)
	e.Int(c.Bin)
	e.Int(c.Un)
	e.Int(c.Dst)
	e.Int(c.Arr)
	e.Bool(c.UnsignedOps)
	e.Uvarint(uint64(len(c.Args)))
	for _, a := range c.Args {
		putOperand(e, a)
	}
}

func getOp(d *wire.Decoder) opCode {
	c := opCode{
		ID:          d.Int(),
		Kind:        d.Int(),
		Bin:         d.Int(),
		Un:          d.Int(),
		Dst:         d.Int(),
		Arr:         d.Int(),
		UnsignedOps: d.Bool(),
	}
	if n := d.Len(4); n > 0 { // an operand is >= 4 bytes
		c.Args = make([]operandCode, 0, n)
		for i := 0; i < n && d.Err() == nil; i++ {
			c.Args = append(c.Args, getOperand(d))
		}
	}
	return c
}

func putNode(e *wire.Encoder, c *nodeCode) {
	e.Int(c.Kind)
	switch c.Kind {
	case nodeSeq:
		putNodes(e, c.Nodes)
	case nodeBB:
		e.Int(c.BB)
	case nodeIf:
		e.Int(c.Cond)
		putNodes(e, c.Then)
		e.Bool(c.HasElse)
		if c.HasElse {
			putNodes(e, c.Else)
		}
	case nodeLoop:
		e.String(c.Label)
		e.Int(c.Cond)
		e.Int(c.InitBB)
		e.Int(c.CondBB)
		putNodes(e, c.Body)
	}
}

func getNode(d *wire.Decoder) nodeCode {
	c := nodeCode{Kind: d.Int()}
	switch c.Kind {
	case nodeSeq:
		c.Nodes = getNodes(d)
	case nodeBB:
		c.BB = d.Int()
	case nodeIf:
		c.Cond = d.Int()
		c.Then = getNodes(d)
		c.HasElse = d.Bool()
		if c.HasElse {
			c.Else = getNodes(d)
		}
	case nodeLoop:
		c.Label = d.String()
		c.Cond = d.Int()
		c.InitBB = d.Int()
		c.CondBB = d.Int()
		c.Body = getNodes(d)
	}
	return c
}

func putNodes(e *wire.Encoder, cs []nodeCode) {
	e.Uvarint(uint64(len(cs)))
	for i := range cs {
		putNode(e, &cs[i])
	}
}

func getNodes(d *wire.Decoder) []nodeCode {
	n := d.Len(2) // a node is >= 2 bytes (kind + one field)
	if n == 0 {
		return nil
	}
	out := make([]nodeCode, 0, n)
	for i := 0; i < n && d.Err() == nil; i++ {
		out = append(out, getNode(d))
	}
	return out
}

// encodeGraphWire frames the flattened graph in the deterministic
// binary layout.
func encodeGraphWire(gc *graphCode) []byte {
	e := wire.NewEncoder(256 + len(gc.Program))
	e.Tag(graphTag)
	e.Bytes(gc.Program)
	e.Int(gc.Fn)
	e.Int(gc.RetVar)
	e.Int(gc.NextOp)
	e.Uvarint(uint64(len(gc.Blocks)))
	for i := range gc.Blocks {
		bc := &gc.Blocks[i]
		e.Int(bc.ID)
		e.Uvarint(uint64(len(bc.Guard)))
		for _, gt := range bc.Guard {
			e.Int(gt.Cond)
			e.Bool(gt.Value)
		}
		e.Uvarint(uint64(len(bc.Ops)))
		for j := range bc.Ops {
			putOp(e, &bc.Ops[j])
		}
	}
	putNodes(e, gc.Root)
	return e.Data()
}

// decodeGraphWire parses the binary layout back into the flattened
// form, rejecting truncation, trailing bytes, and inflated lengths.
func decodeGraphWire(data []byte) (*graphCode, error) {
	d := wire.NewDecoder(data)
	d.Tag(graphTag)
	gc := &graphCode{
		Program: d.Bytes(),
		Fn:      d.Int(),
		RetVar:  d.Int(),
		NextOp:  d.Int(),
	}
	if n := d.Len(3); n > 0 { // a block is >= 3 bytes (id + two counts)
		gc.Blocks = make([]blockCode, 0, n)
		for i := 0; i < n && d.Err() == nil; i++ {
			bc := blockCode{ID: d.Int()}
			if gn := d.Len(2); gn > 0 { // a guard term is >= 2 bytes
				bc.Guard = make([]guardCode, 0, gn)
				for j := 0; j < gn && d.Err() == nil; j++ {
					bc.Guard = append(bc.Guard, guardCode{Cond: d.Int(), Value: d.Bool()})
				}
			}
			if on := d.Len(8); on > 0 { // an op is >= 8 bytes
				bc.Ops = make([]opCode, 0, on)
				for j := 0; j < on && d.Err() == nil; j++ {
					bc.Ops = append(bc.Ops, getOp(d))
				}
			}
			gc.Blocks = append(gc.Blocks, bc)
		}
	}
	gc.Root = getNodes(d)
	if err := d.Finish(); err != nil {
		return nil, fmt.Errorf("graph: %w", err)
	}
	return gc, nil
}
