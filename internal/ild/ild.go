// Package ild is the paper's case study (§5–6): an instruction length
// decoder (ILD) for a synthetic variable-length instruction set with the
// same structure as the Pentium(R) decoder the paper describes —
// instructions of 1 to 11 bytes whose length is determined by examining up
// to 4 bytes, each contributing a length component and a "need the next
// byte" decision.
//
// The proprietary Pentium length tables are replaced by a synthetic
// encoding over the byte's high bits (DESIGN.md §2 records the
// substitution):
//
//	LengthContribution_1(b) = 1 + b[6]          ∈ {1,2}
//	LengthContribution_k(b) = 1 + b[6] + b[5]   ∈ {1,2,3}   (k = 2,3,4)
//	Need_2nd_Byte(b)  = b[7]   (checked on byte i)
//	Need_3rd_Byte(b)  = b[7]   (checked on byte i+1)
//	Need_4th_Byte(b)  = b[7]   (checked on byte i+2)
//
// Total instruction length ∈ [1, 2+3+3+3] = [1, 11] bytes, exactly the
// paper's range. The package provides the reference software decoder (the
// golden model), generators for the behavioral-C descriptions of Fig 10
// (guarded for-loop form) and Fig 16 (natural while form) for any buffer
// size n, and instruction-stream generators for verification.
package ild

import (
	"fmt"
	"math/rand"
	"strings"
)

// MaxInstrLen is the maximum instruction length in bytes.
const MaxInstrLen = 11

// LookAhead is how many bytes past the buffer the decoder may examine
// (an instruction starting at the last buffer byte reads up to 3 more).
const LookAhead = 3

// LC1 is the length contribution of the first instruction byte.
func LC1(b byte) int { return 1 + int((b>>6)&1) }

// LCk is the length contribution of bytes 2..4.
func LCk(b byte) int { return 1 + int((b>>6)&1) + int((b>>5)&1) }

// NeedNext reports whether the instruction extends past this byte
// (checked on bytes 1..3 of the instruction).
func NeedNext(b byte) bool { return (b>>7)&1 == 1 }

// CalcLen computes the length of the instruction starting at buf[i],
// examining up to 4 bytes. Bytes beyond the buffer read as zero (the
// paper's footnote 2: zero length contribution past the buffer).
func CalcLen(buf []byte, i int) int {
	at := func(k int) byte {
		if k < len(buf) {
			return buf[k]
		}
		return 0
	}
	length := LC1(at(i))
	if NeedNext(at(i)) {
		length += LCk(at(i + 1))
		if NeedNext(at(i + 1)) {
			length += LCk(at(i + 2))
			if NeedNext(at(i + 2)) {
				length += LCk(at(i + 3))
			}
		}
	}
	return length
}

// Decode is the reference software decoder: the golden model every
// behavioral and RTL implementation must match. It scans an n-byte buffer
// (buf must hold n+LookAhead bytes) and returns, per byte position, the
// instruction-start marks (the paper's Mark bit vector) and the length
// computed at each start.
func Decode(buf []byte, n int) (marks []bool, lens []int) {
	marks = make([]bool, n)
	lens = make([]int, n)
	nsb := 0
	for i := 0; i < n; i++ {
		if i == nsb {
			marks[i] = true
			l := CalcLen(buf, i)
			lens[i] = l
			nsb += l
		}
	}
	return marks, lens
}

// RandomBuffer returns a uniformly random byte buffer sized for an n-byte
// decode window (n + LookAhead bytes). Every byte pattern is a valid
// instruction stream: decoding is total.
func RandomBuffer(rng *rand.Rand, n int) []byte {
	buf := make([]byte, n+LookAhead)
	for i := range buf {
		buf[i] = byte(rng.Intn(256))
	}
	return buf
}

// RandomInstructions builds a buffer from whole random instructions, so
// the expected mark positions are known by construction. It returns the
// buffer and the start offsets of the instructions that begin inside the
// n-byte window.
func RandomInstructions(rng *rand.Rand, n int) (buf []byte, starts []int) {
	buf = make([]byte, 0, n+LookAhead+MaxInstrLen)
	for len(buf) < n+LookAhead {
		starts = append(starts, len(buf))
		buf = append(buf, encodeInstruction(rng)...)
	}
	buf = buf[:n+LookAhead]
	var inWindow []int
	for _, s := range starts {
		if s < n {
			inWindow = append(inWindow, s)
		}
	}
	return buf, inWindow
}

// encodeInstruction emits one instruction with random contribution bits.
func encodeInstruction(rng *rand.Rand) []byte {
	nBytes := 1 + rng.Intn(4) // how many bytes the decoder will examine
	out := make([]byte, nBytes)
	for k := range out {
		b := byte(rng.Intn(256))
		// Bit 7 controls "need next byte": force the chain shape.
		if k < nBytes-1 && k < 3 {
			b |= 0x80
		} else {
			b &^= 0x80
		}
		out[k] = b
	}
	// The encoded instruction occupies CalcLen bytes, which may exceed
	// nBytes; pad with don't-care bytes (never examined).
	l := CalcLen(out, 0)
	for len(out) < l {
		out = append(out, byte(rng.Intn(256)))
	}
	return out
}

// SourceFig10 renders the behavioral description of paper Fig 10 for an
// n-byte buffer: the guarded counted loop calling CalculateLength, which
// itself calls the LengthContribution/Need leaf functions. (One mechanical
// difference from the paper's listing: calls appear as statements rather
// than inside conditions — `need2 = Need_2nd_Byte(i); if (need2)` — which
// is the form the sparkgo frontend accepts; the structure is otherwise
// identical.)
func SourceFig10(n int) string {
	if n < 1 {
		panic("ild: n must be positive")
	}
	var b strings.Builder
	fmt.Fprintf(&b, "// ILD behavioral description (paper Fig 10), n = %d\n", n)
	fmt.Fprintf(&b, "uint8 B[%d];\n", n+LookAhead)
	fmt.Fprintf(&b, "uint1 Mark[%d];\n", n)
	fmt.Fprintf(&b, "uint4 Len[%d];\n\n", n)
	b.WriteString(leafFunctions())
	b.WriteString(calculateLength())
	fmt.Fprintf(&b, `void main() {
  uint16 i;
  uint16 NextStartByte;
  uint4 l;
  for (i = 0; i < %d; i++) {
    Mark[i] = 0;
    Len[i] = 0;
  }
  NextStartByte = 0;
  for (i = 0; i < %d; i++) {
    if (i == NextStartByte) {
      Mark[i] = 1;
      l = CalculateLength(i);
      Len[i] = l;
      NextStartByte = NextStartByte + l;
    }
  }
}
`, n, n)
	return b.String()
}

// SourceNatural renders the "succinct and natural" description of paper
// Fig 16: the data-dependent while loop over the next start byte, bounded
// by the buffer size (the designer's #bound assertion that at most n
// instructions fit in an n-byte window).
func SourceNatural(n int) string {
	if n < 1 {
		panic("ild: n must be positive")
	}
	var b strings.Builder
	fmt.Fprintf(&b, "// ILD natural description (paper Fig 16), n = %d\n", n)
	fmt.Fprintf(&b, "uint8 B[%d];\n", n+LookAhead)
	fmt.Fprintf(&b, "uint1 Mark[%d];\n", n)
	fmt.Fprintf(&b, "uint4 Len[%d];\n\n", n)
	b.WriteString(leafFunctions())
	b.WriteString(calculateLength())
	fmt.Fprintf(&b, `void main() {
  uint16 i;
  uint16 NextStartByte;
  uint4 l;
  for (i = 0; i < %d; i++) {
    Mark[i] = 0;
    Len[i] = 0;
  }
  NextStartByte = 0;
  #bound %d
  while (NextStartByte <= %d) {
    Mark[NextStartByte] = 1;
    l = CalculateLength(NextStartByte);
    Len[NextStartByte] = l;
    NextStartByte = NextStartByte + l;
  }
}
`, n, n, n-1)
	return b.String()
}

// leafFunctions renders the LengthContribution / Need_*_Byte leaves over
// the synthetic tables.
func leafFunctions() string {
	return `uint4 LengthContribution_1(uint16 i) {
  uint8 b;
  b = B[i];
  return 1 + ((b >> 6) & 1);
}
uint4 LengthContribution_2(uint16 i) {
  uint8 b;
  b = B[i];
  return 1 + ((b >> 6) & 1) + ((b >> 5) & 1);
}
uint4 LengthContribution_3(uint16 i) {
  uint8 b;
  b = B[i];
  return 1 + ((b >> 6) & 1) + ((b >> 5) & 1);
}
uint4 LengthContribution_4(uint16 i) {
  uint8 b;
  b = B[i];
  return 1 + ((b >> 6) & 1) + ((b >> 5) & 1);
}
bool Need_2nd_Byte(uint16 i) {
  uint8 b;
  b = B[i];
  return ((b >> 7) & 1) == 1;
}
bool Need_3rd_Byte(uint16 i) {
  uint8 b;
  b = B[i];
  return ((b >> 7) & 1) == 1;
}
bool Need_4th_Byte(uint16 i) {
  uint8 b;
  b = B[i];
  return ((b >> 7) & 1) == 1;
}
`
}

// calculateLength renders the CalculateLength function exactly in the
// paper's Fig 10 nested-if shape.
func calculateLength() string {
	return `uint4 CalculateLength(uint16 i) {
  uint4 lc1;
  uint4 lc2;
  uint4 lc3;
  uint4 lc4;
  uint4 Length;
  bool need2;
  bool need3;
  bool need4;
  lc1 = LengthContribution_1(i);
  need2 = Need_2nd_Byte(i);
  if (need2) {
    lc2 = LengthContribution_2(i + 1);
    need3 = Need_3rd_Byte(i + 1);
    if (need3) {
      lc3 = LengthContribution_3(i + 2);
      need4 = Need_4th_Byte(i + 2);
      if (need4) {
        lc4 = LengthContribution_4(i + 3);
        Length = lc1 + lc2 + lc3 + lc4;
      } else {
        Length = lc1 + lc2 + lc3;
      }
    } else {
      Length = lc1 + lc2;
    }
  } else {
    Length = lc1;
  }
  return Length;
}
`
}
