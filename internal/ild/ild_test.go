package ild_test

import (
	"math/rand"
	"testing"
	"testing/quick"

	"sparkgo/internal/core"
	"sparkgo/internal/ild"
	"sparkgo/internal/interp"
	"sparkgo/internal/rtlsim"
)

func TestCalcLenRange(t *testing.T) {
	f := func(b0, b1, b2, b3 byte) bool {
		buf := []byte{b0, b1, b2, b3}
		l := ild.CalcLen(buf, 0)
		return l >= 1 && l <= ild.MaxInstrLen
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Error(err)
	}
}

func TestCalcLenBoundaryCases(t *testing.T) {
	// All zero bytes: no continuation, minimal contribution.
	if l := ild.CalcLen([]byte{0, 0, 0, 0}, 0); l != 1 {
		t.Errorf("all-zero instruction length = %d, want 1", l)
	}
	// Maximal: every byte demands the next and contributes its maximum.
	if l := ild.CalcLen([]byte{0xC0 | 0x80, 0xE0 | 0x80, 0xE0 | 0x80, 0x60}, 0); l != ild.MaxInstrLen {
		t.Errorf("maximal instruction length = %d, want %d", l, ild.MaxInstrLen)
	}
	// Reading past the buffer contributes zero bits: bytes read as 0.
	if l := ild.CalcLen([]byte{0x80}, 0); l != 1+1 {
		t.Errorf("truncated read = %d, want 2 (lc1=1 + lc2(0)=1)", l)
	}
}

func TestDecodeMarksConsistency(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(48)
		buf := ild.RandomBuffer(rng, n)
		marks, lens := ild.Decode(buf, n)
		// Invariants: first byte is always a start; marks advance by
		// the recorded lengths; no mark inside an instruction.
		if !marks[0] {
			t.Fatal("byte 0 must start an instruction")
		}
		next := 0
		for i := 0; i < n; i++ {
			if i == next {
				if !marks[i] {
					t.Fatalf("expected mark at %d", i)
				}
				if lens[i] < 1 || lens[i] > ild.MaxInstrLen {
					t.Fatalf("length out of range at %d: %d", i, lens[i])
				}
				if lens[i] != ild.CalcLen(buf, i) {
					t.Fatalf("length mismatch at %d", i)
				}
				next += lens[i]
			} else if marks[i] {
				t.Fatalf("unexpected mark at %d", i)
			}
		}
	}
}

func TestDecodeMatchesConstructedInstructions(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 100; trial++ {
		n := 4 + rng.Intn(40)
		buf, starts := ild.RandomInstructions(rng, n)
		marks, _ := ild.Decode(buf, n)
		want := make([]bool, n)
		for _, s := range starts {
			want[s] = true
		}
		for i := 0; i < n; i++ {
			if marks[i] != want[i] {
				t.Fatalf("trial %d: mark[%d] = %v, want %v", trial, i, marks[i], want[i])
			}
		}
	}
}

// Fig 10 behavioral description interpreted == reference decoder (E7).
func TestFig10ProgramMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, n := range []int{1, 2, 4, 8, 16} {
		p := ild.Program(n)
		for trial := 0; trial < 30; trial++ {
			buf := ild.RandomBuffer(rng, n)
			env := interp.NewEnv(p)
			if err := ild.LoadBuffer(p, env, buf); err != nil {
				t.Fatal(err)
			}
			if _, err := interp.New(p).RunMain(env); err != nil {
				t.Fatal(err)
			}
			wantMarks, wantLens := ild.Decode(buf, n)
			gotMarks := ild.ReadMarks(p, env)
			if i, ok := ild.MarksEqual(gotMarks, wantMarks); !ok {
				t.Fatalf("n=%d trial=%d: mark mismatch at %d", n, trial, i)
			}
			gotLens := ild.ReadLens(p, env)
			for i := range wantLens {
				if wantMarks[i] && gotLens[i] != wantLens[i] {
					t.Fatalf("n=%d: len[%d] = %d, want %d", n, i, gotLens[i], wantLens[i])
				}
			}
		}
	}
}

// Fig 16 natural form interpreted == reference decoder.
func TestNaturalProgramMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for _, n := range []int{1, 4, 8} {
		p := ild.NaturalProgram(n)
		for trial := 0; trial < 20; trial++ {
			buf := ild.RandomBuffer(rng, n)
			env := interp.NewEnv(p)
			if err := ild.LoadBuffer(p, env, buf); err != nil {
				t.Fatal(err)
			}
			if _, err := interp.New(p).RunMain(env); err != nil {
				t.Fatal(err)
			}
			wantMarks, _ := ild.Decode(buf, n)
			gotMarks := ild.ReadMarks(p, env)
			if i, ok := ild.MarksEqual(gotMarks, wantMarks); !ok {
				t.Fatalf("n=%d trial=%d: mark mismatch at %d", n, trial, i)
			}
		}
	}
}

// The full paper pipeline: Fig 10 → single-cycle RTL whose simulation
// matches the reference decoder (E12, the headline result).
func TestSingleCycleILD(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	for _, n := range []int{4, 8, 16} {
		p := ild.Program(n)
		res, err := core.Synthesize(p, core.Options{Preset: core.MicroprocessorBlock})
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if res.Cycles != 1 {
			t.Errorf("n=%d: %d cycles, want 1 (the paper's single-cycle architecture)", n, res.Cycles)
		}
		for trial := 0; trial < 25; trial++ {
			buf := ild.RandomBuffer(rng, n)
			sim := rtlsim.New(res.Module)
			vals := make([]int64, n+ild.LookAhead)
			for i, b := range buf {
				vals[i] = int64(b)
			}
			if err := sim.SetArray("B", vals); err != nil {
				t.Fatal(err)
			}
			if _, err := sim.Run(4); err != nil {
				t.Fatal(err)
			}
			wantMarks, _ := ild.Decode(buf, n)
			gotMarks, err := sim.Array("Mark")
			if err != nil {
				t.Fatal(err)
			}
			for i := range wantMarks {
				want := int64(0)
				if wantMarks[i] {
					want = 1
				}
				if gotMarks[i] != want {
					t.Fatalf("n=%d trial=%d: RTL Mark[%d]=%d, want %d",
						n, trial, i, gotMarks[i], want)
				}
			}
		}
	}
}

// The natural (Fig 16) form must synthesize through the while→for
// normalization to the same single-cycle architecture (E14).
func TestNaturalFormSynthesizes(t *testing.T) {
	n := 8
	p := ild.NaturalProgram(n)
	res, err := core.Synthesize(p, core.Options{
		Preset:         core.MicroprocessorBlock,
		NormalizeWhile: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Cycles != 1 {
		t.Errorf("natural form: %d cycles, want 1", res.Cycles)
	}
	if err := core.Verify(res, 25, 21); err != nil {
		t.Fatal(err)
	}
}
