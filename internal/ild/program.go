package ild

import (
	"fmt"

	"sparkgo/internal/interp"
	"sparkgo/internal/ir"
	"sparkgo/internal/parser"
)

// Program parses the Fig 10 behavioral description for an n-byte buffer.
func Program(n int) *ir.Program {
	return parser.MustParse(fmt.Sprintf("ild%d", n), SourceFig10(n))
}

// NaturalProgram parses the Fig 16 natural description.
func NaturalProgram(n int) *ir.Program {
	return parser.MustParse(fmt.Sprintf("ild%d_natural", n), SourceNatural(n))
}

// LoadBuffer drives an interpreter environment's B array from a byte
// buffer (which must hold n+LookAhead bytes).
func LoadBuffer(p *ir.Program, env *interp.Env, buf []byte) error {
	bArr := p.Global("B")
	if bArr == nil {
		return fmt.Errorf("ild: program has no B array")
	}
	vals := make([]int64, bArr.Type.Len)
	for i := range vals {
		if i < len(buf) {
			vals[i] = int64(buf[i])
		}
	}
	env.SetArray(bArr, vals)
	return nil
}

// ReadMarks extracts the Mark bit vector from an environment.
func ReadMarks(p *ir.Program, env *interp.Env) []bool {
	arr := env.Array(p.Global("Mark"))
	out := make([]bool, len(arr))
	for i, v := range arr {
		out[i] = v != 0
	}
	return out
}

// ReadLens extracts the per-start length vector from an environment.
func ReadLens(p *ir.Program, env *interp.Env) []int {
	arr := env.Array(p.Global("Len"))
	out := make([]int, len(arr))
	for i, v := range arr {
		out[i] = int(v)
	}
	return out
}

// MarksEqual compares a mark vector with the reference decoder's.
func MarksEqual(got []bool, want []bool) (int, bool) {
	if len(got) != len(want) {
		return -1, false
	}
	for i := range got {
		if got[i] != want[i] {
			return i, false
		}
	}
	return 0, true
}
