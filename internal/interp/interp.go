// Package interp executes ir programs directly. It is the golden reference
// model for the whole synthesis flow: every transformation pass and the
// generated RTL are validated by comparing against interpretation of the
// original behavioral description on the same inputs.
//
// Semantics are bit-accurate: all values are canonicalized through
// ir.Type.Canon after every operation, so an 8-bit counter wraps at 256
// exactly as the synthesized datapath does. Out-of-range array reads yield
// zero and out-of-range writes are dropped, matching the paper's convention
// that bytes beyond the ILD buffer contribute zero length and matching
// package rtlsim.
package interp

import (
	"fmt"

	"sparkgo/internal/ir"
)

// Env holds the storage state of one interpretation: scalar values and
// array contents, keyed by variable identity.
type Env struct {
	Scalars map[*ir.Var]int64
	Arrays  map[*ir.Var][]int64
}

// NewEnv creates an empty environment with storage allocated for every
// global of p (zero-initialized).
func NewEnv(p *ir.Program) *Env {
	e := &Env{Scalars: map[*ir.Var]int64{}, Arrays: map[*ir.Var][]int64{}}
	for _, g := range p.Globals {
		e.alloc(g)
	}
	return e
}

func (e *Env) alloc(v *ir.Var) {
	if v.Type.IsArray() {
		e.Arrays[v] = make([]int64, v.Type.Len)
	} else {
		e.Scalars[v] = 0
	}
}

// SetScalar stores a scalar value (canonicalized to the variable's type).
func (e *Env) SetScalar(v *ir.Var, val int64) { e.Scalars[v] = v.Type.Canon(val) }

// Scalar reads a scalar value.
func (e *Env) Scalar(v *ir.Var) int64 { return e.Scalars[v] }

// SetArray replaces the contents of an array variable (canonicalizing each
// element; the slice is copied).
func (e *Env) SetArray(v *ir.Var, vals []int64) {
	a := make([]int64, v.Type.Len)
	for i := 0; i < len(a) && i < len(vals); i++ {
		a[i] = v.Type.Elem.Canon(vals[i])
	}
	e.Arrays[v] = a
}

// Array returns the contents of an array variable.
func (e *Env) Array(v *ir.Var) []int64 { return e.Arrays[v] }

// Clone deep-copies the environment.
func (e *Env) Clone() *Env {
	ne := &Env{Scalars: make(map[*ir.Var]int64, len(e.Scalars)),
		Arrays: make(map[*ir.Var][]int64, len(e.Arrays))}
	for k, v := range e.Scalars {
		ne.Scalars[k] = v
	}
	for k, v := range e.Arrays {
		ne.Arrays[k] = append([]int64(nil), v...)
	}
	return ne
}

// Interp is a configured interpreter instance.
type Interp struct {
	prog *ir.Program

	// MaxSteps bounds the number of statements executed, guarding against
	// non-terminating loops in malformed descriptions. Zero means the
	// default (10 million).
	MaxSteps int

	steps int
}

// New creates an interpreter for the program.
func New(p *ir.Program) *Interp { return &Interp{prog: p} }

// Run executes function fn (by name) with the given arguments in env.
// Globals live in env and persist across calls; locals are per-invocation.
// It returns the function's return value (0 for void).
func (in *Interp) Run(env *Env, fn string, args ...int64) (int64, error) {
	f := in.prog.Func(fn)
	if f == nil {
		return 0, fmt.Errorf("interp: no function %q", fn)
	}
	in.steps = 0
	return in.call(env, f, args)
}

// RunMain executes the program's top-level function with no arguments.
func (in *Interp) RunMain(env *Env) (int64, error) {
	m := in.prog.Main()
	if m == nil {
		return 0, fmt.Errorf("interp: program has no main function")
	}
	in.steps = 0
	return in.call(env, m, nil)
}

type returnSignal struct{ val int64 }

func (in *Interp) limit() int {
	if in.MaxSteps > 0 {
		return in.MaxSteps
	}
	return 10_000_000
}

func (in *Interp) call(env *Env, f *ir.Func, args []int64) (val int64, err error) {
	if len(args) != len(f.Params) {
		return 0, fmt.Errorf("interp: call %s: %d args, want %d", f.Name, len(args), len(f.Params))
	}
	frame := &frame{env: env, locals: map[*ir.Var]int64{}, arrays: map[*ir.Var][]int64{}}
	for _, v := range f.Locals {
		if v.IsGlobal {
			continue
		}
		if v.Type.IsArray() {
			frame.arrays[v] = make([]int64, v.Type.Len)
		} else {
			frame.locals[v] = 0
		}
	}
	for i, p := range f.Params {
		frame.locals[p] = p.Type.Canon(args[i])
	}
	defer func() {
		if r := recover(); r != nil {
			if rs, ok := r.(returnSignal); ok {
				val = rs.val
				return
			}
			panic(r)
		}
	}()
	if err := in.block(frame, f.Body); err != nil {
		return 0, err
	}
	return 0, nil
}

// frame is one function activation: locals shadow globals of the same Var
// identity never collide because sema keeps them distinct objects.
type frame struct {
	env    *Env
	locals map[*ir.Var]int64
	arrays map[*ir.Var][]int64
}

func (fr *frame) read(v *ir.Var) int64 {
	if v.IsGlobal {
		return fr.env.Scalars[v]
	}
	return fr.locals[v]
}

func (fr *frame) write(v *ir.Var, val int64) {
	val = v.Type.Canon(val)
	if v.IsGlobal {
		fr.env.Scalars[v] = val
	} else {
		fr.locals[v] = val
	}
}

func (fr *frame) array(v *ir.Var) []int64 {
	if v.IsGlobal {
		return fr.env.Arrays[v]
	}
	return fr.arrays[v]
}

func (in *Interp) block(fr *frame, b *ir.Block) error {
	for _, s := range b.Stmts {
		if err := in.stmt(fr, s); err != nil {
			return err
		}
	}
	return nil
}

func (in *Interp) stmt(fr *frame, s ir.Stmt) error {
	in.steps++
	if in.steps > in.limit() {
		return fmt.Errorf("interp: step limit exceeded (%d)", in.limit())
	}
	switch x := s.(type) {
	case *ir.AssignStmt:
		var rhs int64
		if call, ok := x.RHS.(*ir.CallExpr); ok {
			v, err := in.evalCall(fr, call)
			if err != nil {
				return err
			}
			rhs = v
		} else {
			v, err := in.eval(fr, x.RHS)
			if err != nil {
				return err
			}
			rhs = v
		}
		return in.store(fr, x.LHS, rhs)
	case *ir.IfStmt:
		c, err := in.eval(fr, x.Cond)
		if err != nil {
			return err
		}
		if c != 0 {
			return in.block(fr, x.Then)
		}
		if x.Else != nil {
			return in.block(fr, x.Else)
		}
		return nil
	case *ir.ForStmt:
		if x.Init != nil {
			if err := in.stmt(fr, x.Init); err != nil {
				return err
			}
		}
		for {
			c, err := in.eval(fr, x.Cond)
			if err != nil {
				return err
			}
			if c == 0 {
				return nil
			}
			if err := in.block(fr, x.Body); err != nil {
				return err
			}
			if x.Post != nil {
				if err := in.stmt(fr, x.Post); err != nil {
					return err
				}
			}
			in.steps++
			if in.steps > in.limit() {
				return fmt.Errorf("interp: step limit exceeded in loop")
			}
		}
	case *ir.WhileStmt:
		for {
			c, err := in.eval(fr, x.Cond)
			if err != nil {
				return err
			}
			if c == 0 {
				return nil
			}
			if err := in.block(fr, x.Body); err != nil {
				return err
			}
			in.steps++
			if in.steps > in.limit() {
				return fmt.Errorf("interp: step limit exceeded in loop")
			}
		}
	case *ir.ReturnStmt:
		var v int64
		if x.Val != nil {
			var err error
			v, err = in.eval(fr, x.Val)
			if err != nil {
				return err
			}
		}
		panic(returnSignal{val: v})
	case *ir.ExprStmt:
		_, err := in.evalCall(fr, x.Call)
		return err
	case *ir.Block:
		return in.block(fr, x)
	}
	return fmt.Errorf("interp: unknown statement %T", s)
}

func (in *Interp) store(fr *frame, lhs ir.LValue, val int64) error {
	switch l := lhs.(type) {
	case *ir.VarExpr:
		fr.write(l.V, val)
		return nil
	case *ir.IndexExpr:
		idx, err := in.eval(fr, l.Index)
		if err != nil {
			return err
		}
		arr := fr.array(l.Arr)
		if idx >= 0 && idx < int64(len(arr)) {
			arr[idx] = l.Arr.Type.Elem.Canon(val)
		}
		// Out-of-range stores are dropped (see package comment).
		return nil
	}
	return fmt.Errorf("interp: bad lvalue %T", lhs)
}

func (in *Interp) evalCall(fr *frame, c *ir.CallExpr) (int64, error) {
	if c.F == nil {
		return 0, fmt.Errorf("interp: unresolved call %s", c.Name)
	}
	args := make([]int64, len(c.Args))
	for i, a := range c.Args {
		v, err := in.eval(fr, a)
		if err != nil {
			return 0, err
		}
		args[i] = v
	}
	return in.call(fr.env, c.F, args)
}

func (in *Interp) eval(fr *frame, e ir.Expr) (int64, error) {
	switch x := e.(type) {
	case *ir.ConstExpr:
		return x.Val, nil
	case *ir.VarExpr:
		return fr.read(x.V), nil
	case *ir.IndexExpr:
		idx, err := in.eval(fr, x.Index)
		if err != nil {
			return 0, err
		}
		arr := fr.array(x.Arr)
		if idx < 0 || idx >= int64(len(arr)) {
			return 0, nil // out-of-range reads yield zero
		}
		return arr[idx], nil
	case *ir.BinExpr:
		// Short-circuit logical operators first.
		if x.Op == ir.OpLAnd || x.Op == ir.OpLOr {
			l, err := in.eval(fr, x.L)
			if err != nil {
				return 0, err
			}
			if x.Op == ir.OpLAnd && l == 0 {
				return 0, nil
			}
			if x.Op == ir.OpLOr && l != 0 {
				return 1, nil
			}
			r, err := in.eval(fr, x.R)
			if err != nil {
				return 0, err
			}
			if r != 0 {
				return 1, nil
			}
			return 0, nil
		}
		l, err := in.eval(fr, x.L)
		if err != nil {
			return 0, err
		}
		r, err := in.eval(fr, x.R)
		if err != nil {
			return 0, err
		}
		return EvalBinOp(x.Op, l, r, x.Typ, UnsignedOperands(x.L.Type(), x.R.Type()))
	case *ir.UnExpr:
		v, err := in.eval(fr, x.X)
		if err != nil {
			return 0, err
		}
		return EvalUnOp(x.Op, v, x.Typ), nil
	case *ir.SelExpr:
		c, err := in.eval(fr, x.Cond)
		if err != nil {
			return 0, err
		}
		if c != 0 {
			v, err := in.eval(fr, x.Then)
			if err != nil {
				return 0, err
			}
			return x.Typ.Canon(v), nil
		}
		v, err := in.eval(fr, x.Else)
		if err != nil {
			return 0, err
		}
		return x.Typ.Canon(v), nil
	case *ir.CastExpr:
		v, err := in.eval(fr, x.X)
		if err != nil {
			return 0, err
		}
		return x.Typ.Canon(v), nil
	case *ir.CallExpr:
		return 0, fmt.Errorf("interp: call %s in expression position", x.Name)
	}
	return 0, fmt.Errorf("interp: unknown expression %T", e)
}

// UnsignedOperands reports whether a binary operation on operands of the
// given types uses unsigned semantics for comparison, division, and
// right-shift. The rule (simplified from C's usual arithmetic conversions):
// unsigned unless both operands are signed integers. Booleans count as
// unsigned.
func UnsignedOperands(lt, rt *ir.Type) bool {
	signed := func(t *ir.Type) bool { return t.IsInt() && t.Signed }
	return !(signed(lt) && signed(rt))
}

// EvalBinOp applies a binary operator to canonical operand values,
// returning the canonical result of type t. unsignedOps selects unsigned
// semantics for order comparisons, division, remainder, and right shift
// (canonical values of unsigned types narrower than 64 bits are
// non-negative, so the flag only changes behaviour at full width).
// Shared with the RTL simulator so datapath functional units compute
// identically to the interpreter.
func EvalBinOp(op ir.BinOp, l, r int64, t *ir.Type, unsignedOps bool) (int64, error) {
	var v int64
	ul, ur := uint64(l), uint64(r)
	switch op {
	case ir.OpAdd:
		v = l + r
	case ir.OpSub:
		v = l - r
	case ir.OpMul:
		v = l * r
	case ir.OpDiv:
		if r == 0 {
			v = 0 // division by zero yields zero (hardware convention)
		} else if unsignedOps {
			v = int64(ul / ur)
		} else {
			v = l / r
		}
	case ir.OpRem:
		if r == 0 {
			v = 0
		} else if unsignedOps {
			v = int64(ul % ur)
		} else {
			v = l % r
		}
	case ir.OpAnd:
		v = l & r
	case ir.OpOr:
		v = l | r
	case ir.OpXor:
		v = l ^ r
	case ir.OpShl:
		s := ur
		if s >= 64 {
			v = 0
		} else {
			v = int64(ul << s)
		}
	case ir.OpShr:
		s := ur
		if s >= 64 {
			if !unsignedOps && l < 0 {
				v = -1
			} else {
				v = 0
			}
		} else if unsignedOps {
			// Canonical unsigned values are already masked to
			// width, so a logical shift of the raw bits is exact.
			v = int64(ul >> s)
		} else {
			v = l >> s
		}
	case ir.OpEq:
		v = b2i(l == r)
	case ir.OpNe:
		v = b2i(l != r)
	case ir.OpLt:
		if unsignedOps {
			v = b2i(ul < ur)
		} else {
			v = b2i(l < r)
		}
	case ir.OpLe:
		if unsignedOps {
			v = b2i(ul <= ur)
		} else {
			v = b2i(l <= r)
		}
	case ir.OpGt:
		if unsignedOps {
			v = b2i(ul > ur)
		} else {
			v = b2i(l > r)
		}
	case ir.OpGe:
		if unsignedOps {
			v = b2i(ul >= ur)
		} else {
			v = b2i(l >= r)
		}
	case ir.OpLAnd:
		v = b2i(l != 0 && r != 0)
	case ir.OpLOr:
		v = b2i(l != 0 || r != 0)
	default:
		return 0, fmt.Errorf("interp: unknown binary op %v", op)
	}
	return t.Canon(v), nil
}

// EvalUnOp applies a unary operator, returning the canonical result.
func EvalUnOp(op ir.UnOp, x int64, t *ir.Type) int64 {
	var v int64
	switch op {
	case ir.OpNeg:
		v = -x
	case ir.OpNot:
		v = ^x
	case ir.OpLNot:
		v = b2i(x == 0)
	}
	return t.Canon(v)
}

func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}
