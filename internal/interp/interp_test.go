package interp_test

import (
	"math/rand"
	"testing"
	"testing/quick"

	"sparkgo/internal/interp"
	"sparkgo/internal/ir"
	"sparkgo/internal/parser"
)

func run(t *testing.T, src string, setup func(*ir.Program, *interp.Env)) (*ir.Program, *interp.Env, int64) {
	t.Helper()
	p, err := parser.Parse("t", src)
	if err != nil {
		t.Fatal(err)
	}
	env := interp.NewEnv(p)
	if setup != nil {
		setup(p, env)
	}
	ret, err := interp.New(p).RunMain(env)
	if err != nil {
		t.Fatal(err)
	}
	return p, env, ret
}

func TestArithmeticWraps(t *testing.T) {
	p, env, _ := run(t, `
uint8 g;
void main() {
  uint8 x;
  x = 200;
  g = x + 100;
}
`, nil)
	if got := env.Scalar(p.Global("g")); got != 44 {
		t.Errorf("200+100 mod 256 = %d, want 44", got)
	}
}

func TestSignedWrap(t *testing.T) {
	p, env, _ := run(t, `
int8 g;
void main() {
  int8 x;
  x = 127;
  g = x + 1;
}
`, nil)
	if got := env.Scalar(p.Global("g")); got != -128 {
		t.Errorf("127+1 as int8 = %d, want -128", got)
	}
}

func TestDivisionByZeroYieldsZero(t *testing.T) {
	p, env, _ := run(t, `
uint8 g;
uint8 d;
void main() {
  g = 7 / d;
}
`, nil)
	if got := env.Scalar(p.Global("g")); got != 0 {
		t.Errorf("7/0 = %d, want 0 (hardware convention)", got)
	}
}

func TestOutOfRangeArrayAccess(t *testing.T) {
	p, env, _ := run(t, `
uint8 a[4];
uint8 g;
uint8 idx;
void main() {
  idx = 200;
  a[idx] = 9;
  g = a[idx] + 1;
}
`, nil)
	// Store dropped, load yields zero.
	if got := env.Scalar(p.Global("g")); got != 1 {
		t.Errorf("OOB read+1 = %d, want 1", got)
	}
}

func TestShortCircuitEvaluation(t *testing.T) {
	// g = (d != 0 && 10/d > 2): must not fault when d == 0 and, per our
	// semantics, 10/0 = 0 anyway; the test pins the result.
	p, env, _ := run(t, `
bool g;
uint8 d;
void main() {
  g = d != 0 && 10 / d > 2;
}
`, nil)
	if got := env.Scalar(p.Global("g")); got != 0 {
		t.Errorf("short-circuit and = %d, want 0", got)
	}
}

func TestUnsignedComparisonFullWidth(t *testing.T) {
	p, env, _ := run(t, `
bool g;
uint64 a;
uint64 b;
void main() {
  g = a > b;
}
`, func(p *ir.Program, env *interp.Env) {
		// a = 2^63 (negative as int64), b = 1: unsigned a > b.
		env.SetScalar(p.Global("a"), -9223372036854775808)
		env.SetScalar(p.Global("b"), 1)
	})
	if got := env.Scalar(p.Global("g")); got != 1 {
		t.Errorf("2^63 > 1 unsigned = %d, want 1", got)
	}
}

func TestSignedComparison(t *testing.T) {
	p, env, _ := run(t, `
bool g;
int8 a;
int8 b;
void main() {
  g = a < b;
}
`, func(p *ir.Program, env *interp.Env) {
		env.SetScalar(p.Global("a"), -5)
		env.SetScalar(p.Global("b"), 3)
	})
	if got := env.Scalar(p.Global("g")); got != 1 {
		t.Errorf("-5 < 3 signed = %d, want 1", got)
	}
}

func TestShiftSemantics(t *testing.T) {
	p, env, _ := run(t, `
uint8 a;
int8 b;
uint8 c;
void main() {
  uint8 x;
  int8 y;
  x = 0x80;
  a = x >> 3;
  y = -128;
  b = y >> 3;
  c = x << 200;
}
`, nil)
	if got := env.Scalar(p.Global("a")); got != 0x10 {
		t.Errorf("0x80 >> 3 logical = %#x, want 0x10", got)
	}
	if got := env.Scalar(p.Global("b")); got != -16 {
		t.Errorf("-128 >> 3 arithmetic = %d, want -16", got)
	}
	if got := env.Scalar(p.Global("c")); got != 0 {
		t.Errorf("oversized shift = %d, want 0", got)
	}
}

func TestFunctionCallsAndGlobals(t *testing.T) {
	p, env, _ := run(t, `
uint8 counter;
void bump() {
  counter += 1;
}
void main() {
  bump();
  bump();
  bump();
}
`, nil)
	if got := env.Scalar(p.Global("counter")); got != 3 {
		t.Errorf("counter = %d, want 3", got)
	}
}

func TestReturnValue(t *testing.T) {
	_, _, ret := run(t, `
uint8 main() {
  return 42;
}
`, nil)
	if ret != 42 {
		t.Errorf("main returned %d, want 42", ret)
	}
}

func TestEarlyReturn(t *testing.T) {
	p, env, _ := run(t, `
uint8 g;
uint8 f(uint8 x) {
  if (x > 10) {
    return 1;
  }
  return 0;
}
void main() {
  g = f(20);
}
`, nil)
	if got := env.Scalar(p.Global("g")); got != 1 {
		t.Errorf("g = %d, want 1", got)
	}
}

func TestLocalsZeroInitialized(t *testing.T) {
	p, env, _ := run(t, `
uint8 g;
void main() {
  uint8 never_assigned;
  g = never_assigned + 5;
}
`, nil)
	if got := env.Scalar(p.Global("g")); got != 5 {
		t.Errorf("locals not zero-initialized: g = %d, want 5", got)
	}
}

func TestStepLimitStopsInfiniteLoop(t *testing.T) {
	p, err := parser.Parse("inf", `
void main() {
  uint8 x;
  while (true) {
    x = x + 1;
  }
}
`)
	if err != nil {
		t.Fatal(err)
	}
	in := interp.New(p)
	in.MaxSteps = 1000
	if _, err := in.RunMain(interp.NewEnv(p)); err == nil {
		t.Error("expected step-limit error")
	}
}

// Property: EvalBinOp result is always canonical for its type.
func TestEvalBinOpCanonical(t *testing.T) {
	types := []*ir.Type{ir.UInt(1), ir.UInt(4), ir.UInt(8), ir.Int(8), ir.Int(16), ir.UInt(32)}
	ops := []ir.BinOp{ir.OpAdd, ir.OpSub, ir.OpMul, ir.OpDiv, ir.OpRem,
		ir.OpAnd, ir.OpOr, ir.OpXor, ir.OpShl, ir.OpShr}
	rng := rand.New(rand.NewSource(1))
	f := func(l, r int64, opIdx, tyIdx uint8) bool {
		op := ops[int(opIdx)%len(ops)]
		ty := types[int(tyIdx)%len(types)]
		l, r = ty.Canon(l), ty.Canon(r)
		v, err := interp.EvalBinOp(op, l, r, ty, !ty.Signed)
		if err != nil {
			return false
		}
		return ty.Canon(v) == v
	}
	cfg := &quick.Config{MaxCount: 2000, Rand: rng}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// Property: interpretation is deterministic (same env twice, same result).
func TestInterpreterDeterministic(t *testing.T) {
	p, err := parser.Parse("d", `
uint8 b[8];
uint8 out;
void main() {
  uint8 i;
  uint8 acc;
  acc = 0;
  for (i = 0; i < 8; i++) {
    if (b[i] > 128) {
      acc = acc * 3 + b[i];
    } else {
      acc = acc + b[i];
    }
  }
  out = acc;
}
`)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		vals := make([]int64, 8)
		for i := range vals {
			vals[i] = int64(rng.Intn(256))
		}
		run1 := interp.NewEnv(p)
		run1.SetArray(p.Global("b"), vals)
		run2 := interp.NewEnv(p)
		run2.SetArray(p.Global("b"), vals)
		if _, err := interp.New(p).RunMain(run1); err != nil {
			t.Fatal(err)
		}
		if _, err := interp.New(p).RunMain(run2); err != nil {
			t.Fatal(err)
		}
		if run1.Scalar(p.Global("out")) != run2.Scalar(p.Global("out")) {
			t.Fatal("non-deterministic interpretation")
		}
	}
}
