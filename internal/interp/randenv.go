package interp

import (
	"math/rand"

	"sparkgo/internal/ir"
)

// RandomEnv builds an environment for p with every global initialized
// from rng: scalars uniform over their type's range, arrays element-wise
// uniform. Both the test suites and the exploration engine use this for
// seeded random stimulus.
func RandomEnv(p *ir.Program, rng *rand.Rand) *Env {
	env := NewEnv(p)
	for _, g := range p.Globals {
		if g.Type.IsArray() {
			vals := make([]int64, g.Type.Len)
			for i := range vals {
				vals[i] = randScalar(g.Type.Elem, rng)
			}
			env.SetArray(g, vals)
		} else {
			env.SetScalar(g, randScalar(g.Type, rng))
		}
	}
	return env
}

func randScalar(t *ir.Type, rng *rand.Rand) int64 {
	if t.IsBool() {
		return int64(rng.Intn(2))
	}
	w := t.Width()
	raw := rng.Int63()
	if w < 63 {
		raw &= (1 << uint(w)) - 1
	}
	return t.Canon(raw)
}
