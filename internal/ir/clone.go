package ir

// CloneExpr deep-copies an expression, substituting variables through subst
// (identity for variables not in the map). Loop unrolling and inlining rely
// on this to replicate bodies with fresh or renamed storage.
func CloneExpr(e Expr, subst map[*Var]*Var) Expr {
	if e == nil {
		return nil
	}
	repl := func(v *Var) *Var {
		if subst != nil {
			if w, ok := subst[v]; ok {
				return w
			}
		}
		return v
	}
	switch x := e.(type) {
	case *ConstExpr:
		c := *x
		return &c
	case *VarExpr:
		return &VarExpr{V: repl(x.V)}
	case *IndexExpr:
		return &IndexExpr{Arr: repl(x.Arr), Index: CloneExpr(x.Index, subst)}
	case *BinExpr:
		return &BinExpr{Op: x.Op, L: CloneExpr(x.L, subst), R: CloneExpr(x.R, subst), Typ: x.Typ}
	case *UnExpr:
		return &UnExpr{Op: x.Op, X: CloneExpr(x.X, subst), Typ: x.Typ}
	case *SelExpr:
		return &SelExpr{Cond: CloneExpr(x.Cond, subst), Then: CloneExpr(x.Then, subst),
			Else: CloneExpr(x.Else, subst), Typ: x.Typ}
	case *CastExpr:
		return &CastExpr{X: CloneExpr(x.X, subst), Typ: x.Typ}
	case *CallExpr:
		args := make([]Expr, len(x.Args))
		for i, a := range x.Args {
			args[i] = CloneExpr(a, subst)
		}
		return &CallExpr{Name: x.Name, F: x.F, Args: args}
	}
	panic("ir.CloneExpr: unknown expression type")
}

// CloneStmt deep-copies a statement with variable substitution.
func CloneStmt(s Stmt, subst map[*Var]*Var) Stmt {
	if s == nil {
		return nil
	}
	switch x := s.(type) {
	case *AssignStmt:
		return &AssignStmt{LHS: CloneExpr(x.LHS, subst).(LValue), RHS: CloneExpr(x.RHS, subst)}
	case *IfStmt:
		return &IfStmt{Cond: CloneExpr(x.Cond, subst),
			Then: CloneBlock(x.Then, subst), Else: CloneBlock(x.Else, subst)}
	case *ForStmt:
		f := &ForStmt{Cond: CloneExpr(x.Cond, subst), Body: CloneBlock(x.Body, subst), Label: x.Label}
		if x.Init != nil {
			f.Init = CloneStmt(x.Init, subst).(*AssignStmt)
		}
		if x.Post != nil {
			f.Post = CloneStmt(x.Post, subst).(*AssignStmt)
		}
		return f
	case *WhileStmt:
		return &WhileStmt{Cond: CloneExpr(x.Cond, subst), Body: CloneBlock(x.Body, subst),
			Label: x.Label, Bound: x.Bound}
	case *ReturnStmt:
		return &ReturnStmt{Val: CloneExpr(x.Val, subst)}
	case *ExprStmt:
		return &ExprStmt{Call: CloneExpr(x.Call, subst).(*CallExpr)}
	case *Block:
		return CloneBlock(x, subst)
	}
	panic("ir.CloneStmt: unknown statement type")
}

// CloneBlock deep-copies a block with variable substitution.
func CloneBlock(b *Block, subst map[*Var]*Var) *Block {
	if b == nil {
		return nil
	}
	out := &Block{Stmts: make([]Stmt, len(b.Stmts))}
	for i, s := range b.Stmts {
		out.Stmts[i] = CloneStmt(s, subst)
	}
	return out
}

// CloneFunc deep-copies a function, giving it fresh Var objects so the copy
// can be transformed independently.
func CloneFunc(f *Func) *Func {
	subst := make(map[*Var]*Var, len(f.Locals))
	nf := &Func{Name: f.Name, Ret: f.Ret, tempCounter: f.tempCounter}
	for _, v := range f.Locals {
		c := *v
		subst[v] = &c
		nf.Locals = append(nf.Locals, &c)
		if v.IsParam {
			nf.Params = append(nf.Params, &c)
		}
	}
	nf.Body = CloneBlock(f.Body, subst)
	return nf
}

// CloneProgram deep-copies an entire program. Globals are cloned too, and
// call targets are re-resolved against the cloned function set, so the copy
// shares nothing with the original. Every synthesis run clones its input so
// per-stage snapshots stay intact.
func CloneProgram(p *Program) *Program {
	np := NewProgram(p.Name)
	gsubst := make(map[*Var]*Var, len(p.Globals))
	for _, g := range p.Globals {
		c := *g
		gsubst[g] = &c
		np.Globals = append(np.Globals, &c)
	}
	fmap := make(map[*Func]*Func, len(p.Funcs))
	for _, f := range p.Funcs {
		subst := make(map[*Var]*Var, len(f.Locals))
		for k, v := range gsubst {
			subst[k] = v
		}
		nf := &Func{Name: f.Name, Ret: f.Ret, tempCounter: f.tempCounter}
		for _, v := range f.Locals {
			c := *v
			subst[v] = &c
			nf.Locals = append(nf.Locals, &c)
			if v.IsParam {
				nf.Params = append(nf.Params, &c)
			}
		}
		nf.Body = CloneBlock(f.Body, subst)
		np.Funcs = append(np.Funcs, nf)
		fmap[f] = nf
	}
	// Re-resolve call targets to the cloned functions.
	for _, f := range np.Funcs {
		RewriteAllExprs(f.Body, func(e Expr) Expr {
			if c, ok := e.(*CallExpr); ok && c.F != nil {
				if nf, ok := fmap[c.F]; ok {
					c.F = nf
				}
			}
			return e
		})
	}
	return np
}
