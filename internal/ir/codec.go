package ir

import (
	"fmt"
	"sync/atomic"
)

// progDecodes counts DecodeProgram calls process-wide. The disk-revival
// fast path is contractually decode-free (verification is a streaming
// hash over the stored bytes); tests pin that contract by watching this
// counter stay flat across disk-warm sweeps.
var progDecodes atomic.Int64

// ProgramDecodeCount reports the number of DecodeProgram calls made by
// this process so far.
func ProgramDecodeCount() int64 { return progDecodes.Load() }

// This file is the lossless serialization of IR programs, used by the
// disk-backed artifact caches. The surface syntax (Print/Parse) is NOT
// a faithful codec: the parser re-infers expression result types and
// re-inserts width casts, so a transformed program — whose types were
// assigned by the passes, not the parser — does not round-trip through
// text. The encoded form below preserves expression types, variable
// flags, and temp-counter state exactly, so a decoded program is
// indistinguishable from the original to every downstream stage.
//
// Variables are encoded by reference into a per-program table (globals
// first, then each function's locals), mirroring how CloneProgram
// resolves identity; call targets are encoded as function indices.
//
// The program is flattened into the enc* intermediate structs below and
// framed by the deterministic binary codec of internal/wire (see
// wirecodec.go); the retired gob framing of the same structs survives
// as EncodeProgramGob/DecodeProgramGob (gobcodec.go), the benchmark
// baseline until the codec-speed ratchet lands.

// TypeCode is the flattened wire form of *Type, exported so the codecs
// of the downstream stage artifacts (internal/htg, internal/sched,
// internal/rtl) can carry types without re-inventing the flattening.
// Arrays are one-dimensional with scalar elements, so one level of
// element fields suffices. A nil type encodes as Kind -1.
type TypeCode struct {
	Kind       int
	Bits       int
	Signed     bool
	Len        int // KindArray
	ElemKind   int // KindArray
	ElemBits   int
	ElemSigned bool
}

// EncodeType flattens a type into its wire form (nil → Kind -1).
func EncodeType(t *Type) TypeCode {
	if t == nil {
		return TypeCode{Kind: -1}
	}
	e := TypeCode{Kind: int(t.Kind), Bits: t.Bits, Signed: t.Signed}
	if t.Kind == KindArray {
		e.Len = t.Len
		e.ElemKind = int(t.Elem.Kind)
		e.ElemBits = t.Elem.Bits
		e.ElemSigned = t.Elem.Signed
	}
	return e
}

type encType = TypeCode

func encodeType(t *Type) encType { return EncodeType(t) }

// DecodeType is the inverse of EncodeType; malformed codes error rather
// than aliasing onto a wrong type.
func DecodeType(e TypeCode) (*Type, error) { return decodeType(e) }

func decodeType(e encType) (*Type, error) {
	if e.Kind == -1 {
		return nil, nil
	}
	mk := func(kind, bits int, signed bool) (*Type, error) {
		switch TypeKind(kind) {
		case KindBool:
			return Bool, nil
		case KindVoid:
			return Void, nil
		case KindInt:
			if bits < 1 || bits > 64 {
				return nil, fmt.Errorf("ir: decode: bad width %d", bits)
			}
			if signed {
				return Int(bits), nil
			}
			return UInt(bits), nil
		}
		return nil, fmt.Errorf("ir: decode: bad type kind %d", kind)
	}
	if TypeKind(e.Kind) == KindArray {
		elem, err := mk(e.ElemKind, e.ElemBits, e.ElemSigned)
		if err != nil {
			return nil, err
		}
		if e.Len < 1 {
			return nil, fmt.Errorf("ir: decode: bad array length %d", e.Len)
		}
		return Array(elem, e.Len), nil
	}
	return mk(e.Kind, e.Bits, e.Signed)
}

type encVar struct {
	Name      string
	Type      encType
	IsParam   bool
	IsGlobal  bool
	Wire      bool
	Synthetic bool
}

// Expression node kinds.
const (
	encConst = iota
	encVarRef
	encIndex
	encBin
	encUn
	encSel
	encCast
	encCall
)

// encExpr is the tagged union of expression nodes. Args holds children
// in a fixed per-kind order (e.g. Sel: cond, then, else).
type encExpr struct {
	Kind int
	Val  int64 // encConst
	Var  int   // encVarRef, encIndex: variable table reference
	Op   int   // encBin, encUn
	Func int   // encCall: function index, -1 if unresolved
	Name string
	Typ  encType
	Args []encExpr
}

// Statement node kinds.
const (
	encAssign = iota
	encIf
	encFor
	encWhile
	encReturn
	encExprStmt
	encBlock
)

type encStmt struct {
	Kind    int
	LHS     *encExpr // encAssign
	RHS     *encExpr
	Cond    *encExpr // encIf, encFor, encWhile
	Init    *encStmt // encFor (assign)
	Post    *encStmt
	Val     *encExpr // encReturn (nil for void)
	Call    *encExpr // encExprStmt
	Label   string
	Bound   int
	HasElse bool
	Then    []encStmt // encIf then / loop body / block stmts
	Else    []encStmt
}

type encFunc struct {
	Name        string
	Ret         encType
	Locals      []encVar // params are the locals with IsParam set
	TempCounter int
	Body        []encStmt
}

type encProgram struct {
	Name    string
	Globals []encVar
	Funcs   []encFunc
}

// --- encoding ---

type encoder struct {
	// varIndex maps each variable to its table reference: globals are
	// 0..G-1, the current function's locals follow from G.
	varIndex  map[*Var]int
	funcIndex map[*Func]int
}

func (en *encoder) varRef(v *Var) (int, error) {
	i, ok := en.varIndex[v]
	if !ok {
		return 0, fmt.Errorf("ir: encode: reference to foreign variable %q", v.Name)
	}
	return i, nil
}

func (en *encoder) expr(e Expr) (*encExpr, error) {
	if e == nil {
		return nil, nil
	}
	switch x := e.(type) {
	case *ConstExpr:
		return &encExpr{Kind: encConst, Val: x.Val, Typ: encodeType(x.Typ)}, nil
	case *VarExpr:
		i, err := en.varRef(x.V)
		if err != nil {
			return nil, err
		}
		return &encExpr{Kind: encVarRef, Var: i}, nil
	case *IndexExpr:
		i, err := en.varRef(x.Arr)
		if err != nil {
			return nil, err
		}
		idx, err := en.expr(x.Index)
		if err != nil {
			return nil, err
		}
		return &encExpr{Kind: encIndex, Var: i, Args: []encExpr{*idx}}, nil
	case *BinExpr:
		l, err := en.expr(x.L)
		if err != nil {
			return nil, err
		}
		r, err := en.expr(x.R)
		if err != nil {
			return nil, err
		}
		return &encExpr{Kind: encBin, Op: int(x.Op), Typ: encodeType(x.Typ),
			Args: []encExpr{*l, *r}}, nil
	case *UnExpr:
		a, err := en.expr(x.X)
		if err != nil {
			return nil, err
		}
		return &encExpr{Kind: encUn, Op: int(x.Op), Typ: encodeType(x.Typ),
			Args: []encExpr{*a}}, nil
	case *SelExpr:
		c, err := en.expr(x.Cond)
		if err != nil {
			return nil, err
		}
		th, err := en.expr(x.Then)
		if err != nil {
			return nil, err
		}
		el, err := en.expr(x.Else)
		if err != nil {
			return nil, err
		}
		return &encExpr{Kind: encSel, Typ: encodeType(x.Typ),
			Args: []encExpr{*c, *th, *el}}, nil
	case *CastExpr:
		a, err := en.expr(x.X)
		if err != nil {
			return nil, err
		}
		return &encExpr{Kind: encCast, Typ: encodeType(x.Typ), Args: []encExpr{*a}}, nil
	case *CallExpr:
		out := &encExpr{Kind: encCall, Name: x.Name, Func: -1}
		if x.F != nil {
			i, ok := en.funcIndex[x.F]
			if !ok {
				return nil, fmt.Errorf("ir: encode: call to foreign function %q", x.Name)
			}
			out.Func = i
		}
		for _, a := range x.Args {
			ea, err := en.expr(a)
			if err != nil {
				return nil, err
			}
			out.Args = append(out.Args, *ea)
		}
		return out, nil
	}
	return nil, fmt.Errorf("ir: encode: unknown expression type %T", e)
}

func (en *encoder) stmt(s Stmt) (*encStmt, error) {
	if s == nil {
		return nil, nil
	}
	switch x := s.(type) {
	case *AssignStmt:
		lhs, err := en.expr(x.LHS)
		if err != nil {
			return nil, err
		}
		rhs, err := en.expr(x.RHS)
		if err != nil {
			return nil, err
		}
		return &encStmt{Kind: encAssign, LHS: lhs, RHS: rhs}, nil
	case *IfStmt:
		cond, err := en.expr(x.Cond)
		if err != nil {
			return nil, err
		}
		then, err := en.block(x.Then)
		if err != nil {
			return nil, err
		}
		out := &encStmt{Kind: encIf, Cond: cond, Then: then}
		if x.Else != nil {
			out.HasElse = true
			if out.Else, err = en.block(x.Else); err != nil {
				return nil, err
			}
		}
		return out, nil
	case *ForStmt:
		cond, err := en.expr(x.Cond)
		if err != nil {
			return nil, err
		}
		body, err := en.block(x.Body)
		if err != nil {
			return nil, err
		}
		out := &encStmt{Kind: encFor, Cond: cond, Then: body, Label: x.Label}
		if x.Init != nil {
			if out.Init, err = en.stmt(x.Init); err != nil {
				return nil, err
			}
		}
		if x.Post != nil {
			if out.Post, err = en.stmt(x.Post); err != nil {
				return nil, err
			}
		}
		return out, nil
	case *WhileStmt:
		cond, err := en.expr(x.Cond)
		if err != nil {
			return nil, err
		}
		body, err := en.block(x.Body)
		if err != nil {
			return nil, err
		}
		return &encStmt{Kind: encWhile, Cond: cond, Then: body,
			Label: x.Label, Bound: x.Bound}, nil
	case *ReturnStmt:
		val, err := en.expr(x.Val)
		if err != nil {
			return nil, err
		}
		return &encStmt{Kind: encReturn, Val: val}, nil
	case *ExprStmt:
		call, err := en.expr(x.Call)
		if err != nil {
			return nil, err
		}
		return &encStmt{Kind: encExprStmt, Call: call}, nil
	case *Block:
		stmts, err := en.block(x)
		if err != nil {
			return nil, err
		}
		return &encStmt{Kind: encBlock, Then: stmts}, nil
	}
	return nil, fmt.Errorf("ir: encode: unknown statement type %T", s)
}

func (en *encoder) block(b *Block) ([]encStmt, error) {
	if b == nil {
		return nil, nil
	}
	out := make([]encStmt, 0, len(b.Stmts))
	for _, s := range b.Stmts {
		es, err := en.stmt(s)
		if err != nil {
			return nil, err
		}
		out = append(out, *es)
	}
	return out, nil
}

func encodeVar(v *Var) encVar {
	return encVar{Name: v.Name, Type: encodeType(v.Type), IsParam: v.IsParam,
		IsGlobal: v.IsGlobal, Wire: v.Wire, Synthetic: v.Synthetic}
}

// EncodeProgram serializes p losslessly into a self-contained byte
// string (deterministic wire framing). The inverse is DecodeProgram.
func EncodeProgram(p *Program) ([]byte, error) {
	ep, err := flattenProgram(p)
	if err != nil {
		return nil, err
	}
	return encodeProgramWire(ep), nil
}

// flattenProgram lowers the pointer-webbed program onto the enc*
// intermediate structs: variables become table indices, call targets
// function indices. Both wire framings (binary and the gob baseline)
// serialize this form.
func flattenProgram(p *Program) (*encProgram, error) {
	ep := encProgram{Name: p.Name}
	en := &encoder{funcIndex: map[*Func]int{}}
	for i, f := range p.Funcs {
		en.funcIndex[f] = i
	}
	globals := map[*Var]int{}
	for i, g := range p.Globals {
		ep.Globals = append(ep.Globals, encodeVar(g))
		globals[g] = i
	}
	for _, f := range p.Funcs {
		ef := encFunc{Name: f.Name, Ret: encodeType(f.Ret), TempCounter: f.tempCounter}
		en.varIndex = make(map[*Var]int, len(globals)+len(f.Locals))
		for v, i := range globals {
			en.varIndex[v] = i
		}
		for i, v := range f.Locals {
			ef.Locals = append(ef.Locals, encodeVar(v))
			en.varIndex[v] = len(globals) + i
		}
		body, err := en.block(f.Body)
		if err != nil {
			return nil, fmt.Errorf("%s: func %s: %w", p.Name, f.Name, err)
		}
		ef.Body = body
		ep.Funcs = append(ep.Funcs, ef)
	}
	return &ep, nil
}

// --- decoding ---

type decoder struct {
	vars  []*Var // globals then current function's locals
	funcs []*Func
}

func (de *decoder) varAt(i int) (*Var, error) {
	if i < 0 || i >= len(de.vars) {
		return nil, fmt.Errorf("ir: decode: variable reference %d out of range", i)
	}
	return de.vars[i], nil
}

func (de *decoder) expr(e *encExpr) (Expr, error) {
	if e == nil {
		return nil, nil
	}
	// Only some kinds carry a type of their own (VarRef, Index, and Call
	// derive theirs from the referenced entity and leave Typ zero).
	typ := (*Type)(nil)
	switch e.Kind {
	case encConst, encBin, encUn, encSel, encCast:
		var err error
		if typ, err = decodeType(e.Typ); err != nil {
			return nil, err
		}
	}
	arg := func(i int) (Expr, error) {
		if i >= len(e.Args) {
			return nil, fmt.Errorf("ir: decode: expression kind %d missing arg %d", e.Kind, i)
		}
		return de.expr(&e.Args[i])
	}
	switch e.Kind {
	case encConst:
		return &ConstExpr{Val: e.Val, Typ: typ}, nil
	case encVarRef:
		v, err := de.varAt(e.Var)
		if err != nil {
			return nil, err
		}
		return &VarExpr{V: v}, nil
	case encIndex:
		v, err := de.varAt(e.Var)
		if err != nil {
			return nil, err
		}
		idx, err := arg(0)
		if err != nil {
			return nil, err
		}
		return &IndexExpr{Arr: v, Index: idx}, nil
	case encBin:
		l, err := arg(0)
		if err != nil {
			return nil, err
		}
		r, err := arg(1)
		if err != nil {
			return nil, err
		}
		return &BinExpr{Op: BinOp(e.Op), L: l, R: r, Typ: typ}, nil
	case encUn:
		x, err := arg(0)
		if err != nil {
			return nil, err
		}
		return &UnExpr{Op: UnOp(e.Op), X: x, Typ: typ}, nil
	case encSel:
		c, err := arg(0)
		if err != nil {
			return nil, err
		}
		th, err := arg(1)
		if err != nil {
			return nil, err
		}
		el, err := arg(2)
		if err != nil {
			return nil, err
		}
		return &SelExpr{Cond: c, Then: th, Else: el, Typ: typ}, nil
	case encCast:
		x, err := arg(0)
		if err != nil {
			return nil, err
		}
		return &CastExpr{X: x, Typ: typ}, nil
	case encCall:
		out := &CallExpr{Name: e.Name}
		if e.Func >= 0 {
			if e.Func >= len(de.funcs) {
				return nil, fmt.Errorf("ir: decode: function reference %d out of range", e.Func)
			}
			out.F = de.funcs[e.Func]
		}
		for i := range e.Args {
			a, err := de.expr(&e.Args[i])
			if err != nil {
				return nil, err
			}
			out.Args = append(out.Args, a)
		}
		return out, nil
	}
	return nil, fmt.Errorf("ir: decode: unknown expression kind %d", e.Kind)
}

func (de *decoder) stmt(s *encStmt) (Stmt, error) {
	if s == nil {
		return nil, nil
	}
	switch s.Kind {
	case encAssign:
		lhs, err := de.expr(s.LHS)
		if err != nil {
			return nil, err
		}
		lv, ok := lhs.(LValue)
		if !ok {
			return nil, fmt.Errorf("ir: decode: assignment LHS is %T", lhs)
		}
		rhs, err := de.expr(s.RHS)
		if err != nil {
			return nil, err
		}
		return &AssignStmt{LHS: lv, RHS: rhs}, nil
	case encIf:
		cond, err := de.expr(s.Cond)
		if err != nil {
			return nil, err
		}
		then, err := de.block(s.Then)
		if err != nil {
			return nil, err
		}
		out := &IfStmt{Cond: cond, Then: then}
		if s.HasElse {
			if out.Else, err = de.block(s.Else); err != nil {
				return nil, err
			}
		}
		return out, nil
	case encFor:
		cond, err := de.expr(s.Cond)
		if err != nil {
			return nil, err
		}
		body, err := de.block(s.Then)
		if err != nil {
			return nil, err
		}
		out := &ForStmt{Cond: cond, Body: body, Label: s.Label}
		if s.Init != nil {
			st, err := de.stmt(s.Init)
			if err != nil {
				return nil, err
			}
			a, ok := st.(*AssignStmt)
			if !ok {
				return nil, fmt.Errorf("ir: decode: for-init is %T", st)
			}
			out.Init = a
		}
		if s.Post != nil {
			st, err := de.stmt(s.Post)
			if err != nil {
				return nil, err
			}
			a, ok := st.(*AssignStmt)
			if !ok {
				return nil, fmt.Errorf("ir: decode: for-post is %T", st)
			}
			out.Post = a
		}
		return out, nil
	case encWhile:
		cond, err := de.expr(s.Cond)
		if err != nil {
			return nil, err
		}
		body, err := de.block(s.Then)
		if err != nil {
			return nil, err
		}
		return &WhileStmt{Cond: cond, Body: body, Label: s.Label, Bound: s.Bound}, nil
	case encReturn:
		val, err := de.expr(s.Val)
		if err != nil {
			return nil, err
		}
		return &ReturnStmt{Val: val}, nil
	case encExprStmt:
		call, err := de.expr(s.Call)
		if err != nil {
			return nil, err
		}
		c, ok := call.(*CallExpr)
		if !ok {
			return nil, fmt.Errorf("ir: decode: expression statement is %T", call)
		}
		return &ExprStmt{Call: c}, nil
	case encBlock:
		b, err := de.block(s.Then)
		if err != nil {
			return nil, err
		}
		return b, nil
	}
	return nil, fmt.Errorf("ir: decode: unknown statement kind %d", s.Kind)
}

func (de *decoder) block(stmts []encStmt) (*Block, error) {
	out := &Block{Stmts: make([]Stmt, 0, len(stmts))}
	for i := range stmts {
		s, err := de.stmt(&stmts[i])
		if err != nil {
			return nil, err
		}
		out.Stmts = append(out.Stmts, s)
	}
	return out, nil
}

func decodeVar(e encVar) (*Var, error) {
	t, err := decodeType(e.Type)
	if err != nil {
		return nil, err
	}
	return &Var{Name: e.Name, Type: t, IsParam: e.IsParam,
		IsGlobal: e.IsGlobal, Wire: e.Wire, Synthetic: e.Synthetic}, nil
}

// DecodeProgram reconstructs a program serialized by EncodeProgram. The
// result shares nothing with any other program; variable identity and
// call targets are rebuilt from the encoded reference tables.
func DecodeProgram(data []byte) (*Program, error) {
	progDecodes.Add(1)
	ep, err := decodeProgramWire(data)
	if err != nil {
		return nil, fmt.Errorf("ir: decode: %w", err)
	}
	return rebuildProgram(ep)
}

// rebuildProgram resolves the flattened intermediate form back into a
// pointer-webbed program, validating every table reference.
func rebuildProgram(ep *encProgram) (*Program, error) {
	p := NewProgram(ep.Name)
	de := &decoder{}
	globals := make([]*Var, 0, len(ep.Globals))
	for _, eg := range ep.Globals {
		g, err := decodeVar(eg)
		if err != nil {
			return nil, err
		}
		globals = append(globals, g)
		p.Globals = append(p.Globals, g)
	}
	// Materialize every function shell first so calls can resolve
	// forward references.
	for _, ef := range ep.Funcs {
		ret, err := decodeType(ef.Ret)
		if err != nil {
			return nil, err
		}
		f := &Func{Name: ef.Name, Ret: ret, tempCounter: ef.TempCounter}
		for _, ev := range ef.Locals {
			v, err := decodeVar(ev)
			if err != nil {
				return nil, err
			}
			f.Locals = append(f.Locals, v)
			if v.IsParam {
				f.Params = append(f.Params, v)
			}
		}
		p.Funcs = append(p.Funcs, f)
		de.funcs = append(de.funcs, f)
	}
	for i, ef := range ep.Funcs {
		f := p.Funcs[i]
		de.vars = de.vars[:0]
		de.vars = append(de.vars, globals...)
		de.vars = append(de.vars, f.Locals...)
		body, err := de.block(ef.Body)
		if err != nil {
			return nil, fmt.Errorf("%s: func %s: %w", ep.Name, ef.Name, err)
		}
		f.Body = body
	}
	return p, nil
}
