package ir_test

import (
	"testing"

	"sparkgo/internal/core"
	"sparkgo/internal/ild"
	"sparkgo/internal/ir"
)

// TestCodecRoundTripILD pins the lossless-codec contract on the programs
// that actually flow through the disk cache: both the raw generated ILD
// description and its transformed frontend artifact — whose expression
// types were assigned by the passes, not the parser, and which therefore
// does NOT survive a Print/Parse round trip.
func TestCodecRoundTripILD(t *testing.T) {
	transformed, err := core.Frontend(ild.Program(4),
		core.Options{Preset: core.MicroprocessorBlock}.FrontendOptions())
	if err != nil {
		t.Fatal(err)
	}
	for name, p := range map[string]*ir.Program{
		"generated":   ild.Program(4),
		"natural":     ild.NaturalProgram(4),
		"transformed": transformed.Program,
	} {
		data, err := ir.EncodeProgram(p)
		if err != nil {
			t.Fatalf("%s: encode: %v", name, err)
		}
		got, err := ir.DecodeProgram(data)
		if err != nil {
			t.Fatalf("%s: decode: %v", name, err)
		}
		if err := ir.Validate(got); err != nil {
			t.Fatalf("%s: decoded program invalid: %v", name, err)
		}
		if ir.Print(got) != ir.Print(p) {
			t.Fatalf("%s: decoded program prints differently", name)
		}
		if ir.Fingerprint(got) != ir.Fingerprint(p) {
			t.Fatalf("%s: fingerprint changed across codec round trip", name)
		}
	}
}

// TestCodecPreservesWhatPrintLoses builds a program whose expression
// types deliberately disagree with parser inference, and checks the
// codec keeps them where the text round trip would not.
func TestCodecPreservesWhatPrintLoses(t *testing.T) {
	p := ir.NewProgram("edge")
	a := p.NewGlobal("a", ir.U4)
	out := p.NewGlobal("out", ir.U16)
	f := ir.NewFunc("main", ir.Void)
	// 0 + a typed uint16 directly — the parser would type it uint4 and
	// wrap a cast around it.
	wide := &ir.BinExpr{Op: ir.OpAdd, L: ir.C(0, ir.U16), R: ir.V(a), Typ: ir.U16}
	f.Body.Add(ir.AssignRaw(ir.V(out), wide))
	tmp := f.NewTemp("t", ir.Bool)
	f.Body.Add(ir.Assign(ir.V(tmp), ir.Lt(ir.V(a), ir.C(3, ir.U4))))
	p.AddFunc(f)

	data, err := ir.EncodeProgram(p)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ir.DecodeProgram(data)
	if err != nil {
		t.Fatal(err)
	}
	bin := got.Funcs[0].Body.Stmts[0].(*ir.AssignStmt).RHS.(*ir.BinExpr)
	if !bin.Typ.Equal(ir.U16) {
		t.Fatalf("BinExpr type = %s, want uint16", bin.Typ)
	}
	v := got.Funcs[0].Lookup("t_1")
	if v == nil || !v.Synthetic {
		t.Fatalf("synthetic temp flag lost: %+v", v)
	}
	// tempCounter must carry over so revived programs keep generating
	// unique names.
	if w := got.Funcs[0].NewTemp("t", ir.Bool); w.Name == "t_1" {
		t.Fatalf("temp counter reset: new temp collides with %q", w.Name)
	}
}

// TestDecodeRejectsCorruptInput checks corrupt bytes fail loudly.
func TestDecodeRejectsCorruptInput(t *testing.T) {
	if _, err := ir.DecodeProgram([]byte("not a program")); err == nil {
		t.Fatal("decoded garbage without error")
	}
}
