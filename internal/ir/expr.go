package ir

import "fmt"

// Var is a named storage location: a function parameter, local, compiler
// temporary, or module-level global. Vars are compared by pointer identity;
// two distinct *Var values with the same name are different variables (the
// semantic analyzer guarantees unique names within a function after scope
// resolution).
type Var struct {
	Name string
	Type *Type

	// IsParam marks function parameters.
	IsParam bool
	// IsGlobal marks module-level storage (the block's architectural
	// inputs/outputs, e.g. the ILD instruction buffer and mark vector).
	IsGlobal bool
	// Wire marks a wire-variable in the sense of paper §3.1.2: the
	// variable is read in the same cycle it is written and must not be
	// bound to a register. Set by the scheduler's chaining pass.
	Wire bool
	// Synthetic marks compiler-generated temporaries (speculation temps,
	// inlining copies, wire variables).
	Synthetic bool
}

func (v *Var) String() string { return v.Name }

// BinOp enumerates binary operators. The set matches the C subset used by
// the paper's listings plus the usual logical/relational complement.
type BinOp int

const (
	OpAdd BinOp = iota
	OpSub
	OpMul
	OpDiv
	OpRem
	OpAnd // bitwise &
	OpOr  // bitwise |
	OpXor // bitwise ^
	OpShl
	OpShr
	OpEq
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe
	OpLAnd // logical &&
	OpLOr  // logical ||
)

var binOpNames = [...]string{
	OpAdd: "+", OpSub: "-", OpMul: "*", OpDiv: "/", OpRem: "%",
	OpAnd: "&", OpOr: "|", OpXor: "^", OpShl: "<<", OpShr: ">>",
	OpEq: "==", OpNe: "!=", OpLt: "<", OpLe: "<=", OpGt: ">", OpGe: ">=",
	OpLAnd: "&&", OpLOr: "||",
}

func (op BinOp) String() string {
	if int(op) < len(binOpNames) {
		return binOpNames[op]
	}
	return fmt.Sprintf("BinOp(%d)", int(op))
}

// IsComparison reports whether op yields a boolean from two integers.
func (op BinOp) IsComparison() bool {
	switch op {
	case OpEq, OpNe, OpLt, OpLe, OpGt, OpGe:
		return true
	}
	return false
}

// IsLogical reports whether op combines two booleans.
func (op BinOp) IsLogical() bool { return op == OpLAnd || op == OpLOr }

// IsCommutative reports whether op's operands may be exchanged.
func (op BinOp) IsCommutative() bool {
	switch op {
	case OpAdd, OpMul, OpAnd, OpOr, OpXor, OpEq, OpNe, OpLAnd, OpLOr:
		return true
	}
	return false
}

// UnOp enumerates unary operators.
type UnOp int

const (
	OpNeg  UnOp = iota // arithmetic negation
	OpNot              // bitwise complement ~
	OpLNot             // logical negation !
)

func (op UnOp) String() string {
	switch op {
	case OpNeg:
		return "-"
	case OpNot:
		return "~"
	case OpLNot:
		return "!"
	}
	return fmt.Sprintf("UnOp(%d)", int(op))
}

// Expr is an IR expression. Expressions are side-effect free except
// CallExpr, which the semantic analyzer restricts to top-level positions
// (the full RHS of an assignment, or an expression statement) so that every
// other expression may be freely duplicated, hoisted, and speculated.
type Expr interface {
	// Type returns the result type of the expression.
	Type() *Type
	isExpr()
}

// ConstExpr is an integer or boolean literal.
type ConstExpr struct {
	Val int64 // canonical (width-masked, sign-extended) value
	Typ *Type
}

func (e *ConstExpr) Type() *Type { return e.Typ }
func (e *ConstExpr) isExpr()     {}

// VarExpr reads a scalar variable.
type VarExpr struct {
	V *Var
}

func (e *VarExpr) Type() *Type { return e.V.Type }
func (e *VarExpr) isExpr()     {}

// IndexExpr reads one element of an array variable.
// Out-of-range indices read as zero (hardware returns an arbitrary value;
// fixing it to zero matches the paper's footnote that bytes past the buffer
// contribute zero length, and keeps behavioral and RTL simulation aligned).
type IndexExpr struct {
	Arr   *Var
	Index Expr
}

func (e *IndexExpr) Type() *Type { return e.Arr.Type.Elem }
func (e *IndexExpr) isExpr()     {}

// BinExpr applies a binary operator.
type BinExpr struct {
	Op   BinOp
	L, R Expr
	Typ  *Type
}

func (e *BinExpr) Type() *Type { return e.Typ }
func (e *BinExpr) isExpr()     {}

// UnExpr applies a unary operator.
type UnExpr struct {
	Op  UnOp
	X   Expr
	Typ *Type
}

func (e *UnExpr) Type() *Type { return e.Typ }
func (e *UnExpr) isExpr()     {}

// SelExpr is the C conditional operator cond ? then : else. It maps to a
// two-way multiplexer in hardware and is the expression form into which
// speculated conditionals may be folded.
type SelExpr struct {
	Cond       Expr
	Then, Else Expr
	Typ        *Type
}

func (e *SelExpr) Type() *Type { return e.Typ }
func (e *SelExpr) isExpr()     {}

// CastExpr converts between scalar types: zero/sign extension, truncation,
// and bool<->int. Casts are free in hardware (pure wiring) but are kept
// explicit so bit widths are always known.
type CastExpr struct {
	X   Expr
	Typ *Type
}

func (e *CastExpr) Type() *Type { return e.Typ }
func (e *CastExpr) isExpr()     {}

// CallExpr invokes a function. After semantic analysis Callee is resolved
// to the *Func; transformations (inlining) eliminate calls before lowering,
// and the HTG lowering rejects residual calls.
type CallExpr struct {
	Name string
	F    *Func // resolved target (set by sema)
	Args []Expr
}

func (e *CallExpr) Type() *Type {
	if e.F == nil {
		return Void
	}
	return e.F.Ret
}
func (e *CallExpr) isExpr() {}

// LValue is the destination of an assignment: a scalar variable or an array
// element.
type LValue interface {
	Expr
	isLValue()
}

func (e *VarExpr) isLValue()   {}
func (e *IndexExpr) isLValue() {}

// --- Convenience constructors used by builders, tests, and generators ---

// C returns a constant of the given type, canonicalized.
func C(val int64, t *Type) *ConstExpr { return &ConstExpr{Val: t.Canon(val), Typ: t} }

// CBool returns a boolean constant.
func CBool(b bool) *ConstExpr {
	if b {
		return &ConstExpr{Val: 1, Typ: Bool}
	}
	return &ConstExpr{Val: 0, Typ: Bool}
}

// V reads a variable.
func V(v *Var) *VarExpr { return &VarExpr{V: v} }

// Idx reads arr[index].
func Idx(arr *Var, index Expr) *IndexExpr { return &IndexExpr{Arr: arr, Index: index} }

// Bin builds a binary expression, computing the result type with the same
// rules the semantic analyzer applies (max operand width; comparisons and
// logical operators yield bool).
func Bin(op BinOp, l, r Expr) *BinExpr {
	return &BinExpr{Op: op, L: l, R: r, Typ: binResultType(op, l.Type(), r.Type())}
}

// binResultType computes the result type of op applied to lt and rt.
func binResultType(op BinOp, lt, rt *Type) *Type {
	if op.IsComparison() || op.IsLogical() {
		return Bool
	}
	if op == OpShl || op == OpShr {
		if lt.IsBool() {
			return U1
		}
		return lt
	}
	// Arithmetic/bitwise: result takes the wider operand's width; the
	// result is signed only when both operands are signed.
	lw, rw := scalarWidth(lt), scalarWidth(rt)
	w := lw
	if rw > w {
		w = rw
	}
	signed := isSignedScalar(lt) && isSignedScalar(rt)
	if signed {
		return Int(w)
	}
	return UInt(w)
}

func scalarWidth(t *Type) int {
	if t.IsBool() {
		return 1
	}
	return t.Bits
}

func isSignedScalar(t *Type) bool { return t.IsInt() && t.Signed }

// Un builds a unary expression with the analyzer's typing rules.
func Un(op UnOp, x Expr) *UnExpr {
	t := x.Type()
	if op == OpLNot {
		t = Bool
	} else if t.IsBool() {
		t = U1
	}
	return &UnExpr{Op: op, X: x, Typ: t}
}

// Sel builds a conditional (mux) expression.
func Sel(cond, then, els Expr) *SelExpr {
	return &SelExpr{Cond: cond, Then: then, Else: els,
		Typ: binResultType(OpAdd, then.Type(), els.Type())}
}

// Cast converts x to type t (no-op if already of type t).
func Cast(x Expr, t *Type) Expr {
	if x.Type().Equal(t) {
		return x
	}
	if c, ok := x.(*ConstExpr); ok {
		return C(c.Val, t)
	}
	return &CastExpr{X: x, Typ: t}
}

// Shorthand binary builders (used heavily by the ILD generator and tests).

// Add returns l + r.
func Add(l, r Expr) *BinExpr { return Bin(OpAdd, l, r) }

// Sub returns l - r.
func Sub(l, r Expr) *BinExpr { return Bin(OpSub, l, r) }

// And returns l & r.
func And(l, r Expr) *BinExpr { return Bin(OpAnd, l, r) }

// Or returns l | r.
func Or(l, r Expr) *BinExpr { return Bin(OpOr, l, r) }

// Shr returns l >> r.
func Shr(l, r Expr) *BinExpr { return Bin(OpShr, l, r) }

// Shl returns l << r.
func Shl(l, r Expr) *BinExpr { return Bin(OpShl, l, r) }

// Eq returns l == r.
func Eq(l, r Expr) *BinExpr { return Bin(OpEq, l, r) }

// Lt returns l < r.
func Lt(l, r Expr) *BinExpr { return Bin(OpLt, l, r) }

// Le returns l <= r.
func Le(l, r Expr) *BinExpr { return Bin(OpLe, l, r) }

// Call builds a call expression (unresolved; sema or the caller sets F).
func Call(f *Func, args ...Expr) *CallExpr {
	return &CallExpr{Name: f.Name, F: f, Args: args}
}
