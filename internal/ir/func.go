package ir

import (
	"fmt"
	"sort"
)

// Func is an IR function: the unit of behavioral description. The top-level
// function of a design (conventionally "main") describes the functional
// block itself; other functions are leaf computations that the inliner
// absorbs before scheduling.
type Func struct {
	Name   string
	Params []*Var
	Ret    *Type
	Locals []*Var // every local and temporary, including params' shadows
	Body   *Block

	tempCounter int
}

// NewFunc constructs an empty function.
func NewFunc(name string, ret *Type, params ...*Var) *Func {
	for _, p := range params {
		p.IsParam = true
	}
	return &Func{Name: name, Params: params, Ret: ret, Body: &Block{},
		Locals: append([]*Var(nil), params...)}
}

// NewLocal declares a new local variable in f with the exact given name.
func (f *Func) NewLocal(name string, t *Type) *Var {
	v := &Var{Name: name, Type: t}
	f.Locals = append(f.Locals, v)
	return v
}

// NewTemp declares a fresh synthetic temporary with a unique name derived
// from prefix. Transformation passes use this for speculation temps, wire
// variables, and inlining copies.
func (f *Func) NewTemp(prefix string, t *Type) *Var {
	for {
		f.tempCounter++
		name := fmt.Sprintf("%s_%d", prefix, f.tempCounter)
		if f.Lookup(name) == nil {
			v := &Var{Name: name, Type: t, Synthetic: true}
			f.Locals = append(f.Locals, v)
			return v
		}
	}
}

// Lookup finds a local (or parameter) by name, or nil.
func (f *Func) Lookup(name string) *Var {
	for _, v := range f.Locals {
		if v.Name == name {
			return v
		}
	}
	return nil
}

// RemoveLocal deletes v from the locals list (used by DCE once a variable
// becomes unreferenced).
func (f *Func) RemoveLocal(v *Var) {
	for i, w := range f.Locals {
		if w == v {
			f.Locals = append(f.Locals[:i], f.Locals[i+1:]...)
			return
		}
	}
}

// Program is a complete behavioral description: global storage plus
// functions. Globals model the block's architectural state: input buffers,
// output vectors, and any state carried between activations.
type Program struct {
	Name    string
	Globals []*Var
	Funcs   []*Func
}

// NewProgram constructs an empty program.
func NewProgram(name string) *Program { return &Program{Name: name} }

// NewGlobal declares a module-level variable.
func (p *Program) NewGlobal(name string, t *Type) *Var {
	v := &Var{Name: name, Type: t, IsGlobal: true}
	p.Globals = append(p.Globals, v)
	return v
}

// Global finds a global by name, or nil.
func (p *Program) Global(name string) *Var {
	for _, v := range p.Globals {
		if v.Name == name {
			return v
		}
	}
	return nil
}

// Func finds a function by name, or nil.
func (p *Program) Func(name string) *Func {
	for _, f := range p.Funcs {
		if f.Name == name {
			return f
		}
	}
	return nil
}

// AddFunc appends a function to the program and returns it.
func (p *Program) AddFunc(f *Func) *Func {
	p.Funcs = append(p.Funcs, f)
	return f
}

// Main returns the design's top-level function (named "main"), or the sole
// function if only one exists.
func (p *Program) Main() *Func {
	if f := p.Func("main"); f != nil {
		return f
	}
	if len(p.Funcs) == 1 {
		return p.Funcs[0]
	}
	return nil
}

// SortedGlobals returns the globals ordered by name (deterministic
// iteration for printing and RTL port ordering).
func (p *Program) SortedGlobals() []*Var {
	gs := append([]*Var(nil), p.Globals...)
	sort.Slice(gs, func(i, j int) bool { return gs[i].Name < gs[j].Name })
	return gs
}
