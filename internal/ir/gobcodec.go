package ir

import (
	"bytes"
	"encoding/gob"
	"fmt"
)

// The gob framing EncodeProgram used before the deterministic wire
// format (internal/wire) replaced it on the artifact hot path. It is
// retained as the benchmark baseline — BenchmarkWire*/codec-bench-json
// compare against it — and should be deleted once the codec-speed
// ratchet lands in CI.

// EncodeProgramGob serializes p with the retired gob framing over the
// same flattened intermediate form EncodeProgram uses.
func EncodeProgramGob(p *Program) ([]byte, error) {
	ep, err := flattenProgram(p)
	if err != nil {
		return nil, err
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(ep); err != nil {
		return nil, fmt.Errorf("ir: encode %s: %w", p.Name, err)
	}
	return buf.Bytes(), nil
}

// DecodeProgramGob reconstructs a program serialized by
// EncodeProgramGob.
func DecodeProgramGob(data []byte) (*Program, error) {
	var ep encProgram
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&ep); err != nil {
		return nil, fmt.Errorf("ir: decode: %w", err)
	}
	return rebuildProgram(&ep)
}
