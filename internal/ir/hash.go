package ir

import (
	"crypto/sha256"
	"encoding/hex"
)

// Fingerprint returns a content hash of the program: the SHA-256 of its
// lossless serialized form (EncodeProgram). The printed surface syntax
// would be the more human-readable pre-image, but it is NOT faithful —
// it omits the expression result types that transformation passes
// assign, so two programs that print identically can still synthesize
// differently. Hashing the encoding makes the fingerprint a safe
// artifact-identity key for the staged synthesis flow and the
// exploration caches: everything a downstream stage can observe is
// covered, while variable pointer identity and construction history are
// excluded. Programs too malformed to encode (dangling variable
// references) fall back to hashing the printed text.
func Fingerprint(p *Program) string {
	data, err := EncodeProgram(p)
	if err != nil {
		return HashText("unencodable|" + Print(p))
	}
	return FingerprintBytes(data)
}

// FingerprintBytes returns the fingerprint for a program already
// serialized by EncodeProgram, for callers that need both the encoding
// and its hash without encoding twice.
func FingerprintBytes(encoded []byte) string {
	sum := sha256.Sum256(encoded)
	return hex.EncodeToString(sum[:])
}

// HashText returns the SHA-256 hex digest of an arbitrary canonical
// string — the primitive stage-key composition builds on.
func HashText(s string) string {
	sum := sha256.Sum256([]byte(s))
	return hex.EncodeToString(sum[:])
}
