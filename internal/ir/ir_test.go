package ir

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestTypeString(t *testing.T) {
	cases := []struct {
		typ  *Type
		want string
	}{
		{UInt(8), "uint8"},
		{Int(32), "int32"},
		{UInt(1), "uint1"},
		{Bool, "bool"},
		{Void, "void"},
		{Array(UInt(8), 19), "uint8[19]"},
	}
	for _, c := range cases {
		if got := c.typ.String(); got != c.want {
			t.Errorf("String(%v) = %q, want %q", c.typ, got, c.want)
		}
	}
}

func TestTypeCanonUnsigned(t *testing.T) {
	u4 := UInt(4)
	cases := []struct{ in, want int64 }{
		{0, 0}, {15, 15}, {16, 0}, {17, 1}, {-1, 15}, {255, 15},
	}
	for _, c := range cases {
		if got := u4.Canon(c.in); got != c.want {
			t.Errorf("u4.Canon(%d) = %d, want %d", c.in, got, c.want)
		}
	}
}

func TestTypeCanonSigned(t *testing.T) {
	i4 := Int(4)
	cases := []struct{ in, want int64 }{
		{0, 0}, {7, 7}, {8, -8}, {15, -1}, {-1, -1}, {16, 0}, {-9, 7},
	}
	for _, c := range cases {
		if got := i4.Canon(c.in); got != c.want {
			t.Errorf("i4.Canon(%d) = %d, want %d", c.in, got, c.want)
		}
	}
}

func TestTypeCanonBool(t *testing.T) {
	if Bool.Canon(2) != 0 || Bool.Canon(3) != 1 || Bool.Canon(0) != 0 {
		t.Errorf("bool canon uses bit 0: got %d %d %d",
			Bool.Canon(2), Bool.Canon(3), Bool.Canon(0))
	}
}

func TestCanonIdempotent(t *testing.T) {
	for _, typ := range []*Type{UInt(1), UInt(4), UInt(8), UInt(16), UInt(63), UInt(64),
		Int(1), Int(4), Int(8), Int(32), Int(64), Bool} {
		typ := typ
		f := func(raw int64) bool {
			c := typ.Canon(raw)
			return typ.Canon(c) == c
		}
		if err := quick.Check(f, nil); err != nil {
			t.Errorf("Canon not idempotent for %s: %v", typ, err)
		}
	}
}

func TestCanonRange(t *testing.T) {
	for _, typ := range []*Type{UInt(4), UInt(8), Int(4), Int(8), Int(16)} {
		typ := typ
		f := func(raw int64) bool {
			c := typ.Canon(raw)
			return c >= typ.MinValue() && c <= typ.MaxValue()
		}
		if err := quick.Check(f, nil); err != nil {
			t.Errorf("Canon out of range for %s: %v", typ, err)
		}
	}
}

func TestTypeEqual(t *testing.T) {
	if !UInt(8).Equal(UInt(8)) {
		t.Error("uint8 != uint8")
	}
	if UInt(8).Equal(Int(8)) {
		t.Error("uint8 == int8")
	}
	if UInt(8).Equal(UInt(9)) {
		t.Error("uint8 == uint9")
	}
	if !Array(UInt(8), 4).Equal(Array(UInt(8), 4)) {
		t.Error("array types should be equal")
	}
	if Array(UInt(8), 4).Equal(Array(UInt(8), 5)) {
		t.Error("arrays of different length equal")
	}
}

func TestBinResultTypes(t *testing.T) {
	a := &Var{Name: "a", Type: UInt(8)}
	b := &Var{Name: "b", Type: UInt(4)}
	sum := Add(V(a), V(b))
	if !sum.Type().Equal(UInt(8)) {
		t.Errorf("u8+u4 = %s, want uint8", sum.Type())
	}
	cmp := Lt(V(a), V(b))
	if !cmp.Type().IsBool() {
		t.Errorf("comparison type = %s, want bool", cmp.Type())
	}
	s := &Var{Name: "s", Type: Int(16)}
	mixed := Add(V(a), V(s))
	if mixed.Type().Signed {
		t.Errorf("u8+i16 should be unsigned (mixed), got %s", mixed.Type())
	}
	both := Add(V(s), V(s))
	if !both.Type().Signed || both.Type().Bits != 16 {
		t.Errorf("i16+i16 = %s, want int16", both.Type())
	}
}

func buildSampleProgram(t *testing.T) *Program {
	t.Helper()
	p := NewProgram("sample")
	in := p.NewGlobal("in", Array(UInt(8), 4))
	out := p.NewGlobal("out", UInt(8))
	f := NewFunc("main", Void)
	x := f.NewLocal("x", UInt(8))
	f.Body.Add(
		Assign(V(x), Idx(in, C(0, U8))),
		If(Lt(V(x), C(10, U8)),
			NewBlock(Assign(V(out), Add(V(x), C(1, U8)))),
			NewBlock(Assign(V(out), V(x)))),
	)
	p.AddFunc(f)
	if err := Validate(p); err != nil {
		t.Fatalf("sample program invalid: %v", err)
	}
	return p
}

func TestValidateCatchesUnregisteredVar(t *testing.T) {
	p := buildSampleProgram(t)
	rogue := &Var{Name: "rogue", Type: U8}
	p.Funcs[0].Body.Add(Assign(V(rogue), C(1, U8)))
	if err := Validate(p); err == nil {
		t.Error("expected validation error for unregistered variable")
	}
}

func TestValidateCatchesDuplicateNames(t *testing.T) {
	p := buildSampleProgram(t)
	p.Funcs[0].Locals = append(p.Funcs[0].Locals, &Var{Name: "x", Type: U8})
	if err := Validate(p); err == nil {
		t.Error("expected validation error for duplicate local name")
	}
}

func TestValidateCatchesRecursion(t *testing.T) {
	p := NewProgram("rec")
	f := NewFunc("f", U8)
	p.AddFunc(f)
	r := f.NewLocal("r", U8)
	f.Body.Add(
		AssignRaw(V(r), Call(f)),
		&ReturnStmt{Val: V(r)},
	)
	if err := Validate(p); err == nil {
		t.Error("expected validation error for recursion")
	}
}

func TestCloneProgramIsDeep(t *testing.T) {
	p := buildSampleProgram(t)
	q := CloneProgram(p)
	// Mutating the clone must not affect the original.
	q.Funcs[0].Body.Stmts = nil
	if len(p.Funcs[0].Body.Stmts) == 0 {
		t.Fatal("clone shares body with original")
	}
	// Cloned vars are distinct objects with the same names.
	if q.Globals[0] == p.Globals[0] {
		t.Error("clone shares global Var objects")
	}
	if q.Globals[0].Name != p.Globals[0].Name {
		t.Error("clone changed global names")
	}
	if err := Validate(q); err != nil {
		t.Errorf("clone invalid: %v", err)
	}
}

func TestCloneResolvesCallTargets(t *testing.T) {
	p := NewProgram("calls")
	leaf := NewFunc("leaf", U8)
	leaf.Body.Add(&ReturnStmt{Val: C(7, U8)})
	p.AddFunc(leaf)
	m := NewFunc("main", Void)
	g := p.NewGlobal("g", U8)
	m.Body.Add(AssignRaw(V(g), Call(leaf)))
	p.AddFunc(m)
	if err := Validate(p); err != nil {
		t.Fatalf("invalid: %v", err)
	}
	q := CloneProgram(p)
	call := q.Func("main").Body.Stmts[0].(*AssignStmt).RHS.(*CallExpr)
	if call.F == q.Func("leaf") {
		return
	}
	t.Error("cloned call target not re-resolved to cloned function")
}

func TestPrintRendersCLike(t *testing.T) {
	p := buildSampleProgram(t)
	src := Print(p)
	for _, want := range []string{
		"uint8 in[4];", "uint8 out;", "void main()",
		"if (x < 10) {", "out = x + 1;", "} else {",
	} {
		if !strings.Contains(src, want) {
			t.Errorf("Print output missing %q:\n%s", want, src)
		}
	}
}

func TestPrintExprPrecedence(t *testing.T) {
	a := &Var{Name: "a", Type: U8}
	b := &Var{Name: "b", Type: U8}
	// (a + b) * a must print parens around the sum.
	e := Bin(OpMul, Add(V(a), V(b)), V(a))
	if got := PrintExpr(e); got != "(a + b) * a" {
		t.Errorf("PrintExpr = %q", got)
	}
	// a + b * a must not.
	e2 := Add(V(a), Bin(OpMul, V(b), V(a)))
	if got := PrintExpr(e2); got != "a + b * a" {
		t.Errorf("PrintExpr = %q", got)
	}
	// Shift binds looser than +: (a << (b + a)) needs parens on RHS.
	e3 := Shl(V(a), Add(V(b), V(a)))
	if got := PrintExpr(e3); got != "a << b + a" {
		// C precedence: << is lower than +, so a << b + a parses as
		// a << (b+a), which is what we built: no parens needed.
		t.Errorf("PrintExpr = %q", got)
	}
}

func TestWalkAndRewrite(t *testing.T) {
	p := buildSampleProgram(t)
	f := p.Funcs[0]
	nIf := 0
	WalkStmts(f.Body, func(s Stmt) bool {
		if _, ok := s.(*IfStmt); ok {
			nIf++
		}
		return true
	})
	if nIf != 1 {
		t.Errorf("found %d ifs, want 1", nIf)
	}
	// Rewrite every constant 1 to 2.
	RewriteAllExprs(f.Body, func(e Expr) Expr {
		if c, ok := e.(*ConstExpr); ok && c.Val == 1 {
			return C(2, c.Typ)
		}
		return e
	})
	src := Print(p)
	if !strings.Contains(src, "x + 2") {
		t.Errorf("rewrite failed:\n%s", src)
	}
}

func TestCountMetrics(t *testing.T) {
	p := buildSampleProgram(t)
	f := p.Funcs[0]
	if got := CountIfs(f); got != 1 {
		t.Errorf("CountIfs = %d, want 1", got)
	}
	if got := CountLoops(f); got != 0 {
		t.Errorf("CountLoops = %d, want 0", got)
	}
	if got := CountOps(f); got < 3 {
		t.Errorf("CountOps = %d, want >= 3", got)
	}
}

func TestNewTempUnique(t *testing.T) {
	f := NewFunc("f", Void)
	seen := map[string]bool{}
	for i := 0; i < 100; i++ {
		v := f.NewTemp("t", U8)
		if seen[v.Name] {
			t.Fatalf("duplicate temp name %s", v.Name)
		}
		seen[v.Name] = true
	}
}

func TestVarsReadCollectsArrays(t *testing.T) {
	arr := &Var{Name: "arr", Type: Array(U8, 4)}
	i := &Var{Name: "i", Type: U8}
	m := map[*Var]bool{}
	VarsRead(Idx(arr, V(i)), m)
	if !m[arr] || !m[i] {
		t.Errorf("VarsRead missed arr or i: %v", m)
	}
}

func TestStmtWrites(t *testing.T) {
	arr := &Var{Name: "arr", Type: Array(U8, 4)}
	x := &Var{Name: "x", Type: U8}
	if got := StmtWrites(Assign(V(x), C(1, U8))); got != x {
		t.Errorf("StmtWrites scalar = %v", got)
	}
	if got := StmtWrites(Assign(Idx(arr, C(0, U8)), C(1, U8))); got != arr {
		t.Errorf("StmtWrites array = %v", got)
	}
}
