package ir

import (
	"fmt"
	"strings"
)

// Print renders the program in the C-like surface syntax accepted by the
// parser, so Print/Parse round-trips. Used for golden tests, the paper's
// figure listings, and debug output.
func Print(p *Program) string {
	var b strings.Builder
	pr := &printer{w: &b}
	for _, g := range p.Globals {
		if g.Type.IsArray() {
			fmt.Fprintf(&b, "%s %s[%d];\n", g.Type.Elem, g.Name, g.Type.Len)
		} else {
			fmt.Fprintf(&b, "%s %s;\n", g.Type, g.Name)
		}
	}
	if len(p.Globals) > 0 {
		b.WriteString("\n")
	}
	for i, f := range p.Funcs {
		if i > 0 {
			b.WriteString("\n")
		}
		pr.function(f)
	}
	return b.String()
}

// PrintFunc renders a single function.
func PrintFunc(f *Func) string {
	var b strings.Builder
	(&printer{w: &b}).function(f)
	return b.String()
}

// PrintStmt renders a single statement at indent 0.
func PrintStmt(s Stmt) string {
	var b strings.Builder
	(&printer{w: &b}).stmt(s, 0)
	return b.String()
}

// PrintExpr renders an expression.
func PrintExpr(e Expr) string {
	var b strings.Builder
	(&printer{w: &b}).expr(e, 0)
	return b.String()
}

type printer struct {
	w *strings.Builder
}

func (p *printer) function(f *Func) {
	params := make([]string, len(f.Params))
	for i, v := range f.Params {
		params[i] = fmt.Sprintf("%s %s", v.Type, v.Name)
	}
	fmt.Fprintf(p.w, "%s %s(%s) {\n", f.Ret, f.Name, strings.Join(params, ", "))
	// Declare non-parameter locals first, C89 style.
	for _, v := range f.Locals {
		if v.IsParam {
			continue
		}
		if v.Type.IsArray() {
			fmt.Fprintf(p.w, "  %s %s[%d];\n", v.Type.Elem, v.Name, v.Type.Len)
		} else {
			fmt.Fprintf(p.w, "  %s %s;\n", v.Type, v.Name)
		}
	}
	for _, s := range f.Body.Stmts {
		p.stmt(s, 1)
	}
	p.w.WriteString("}\n")
}

func (p *printer) indent(depth int) {
	for i := 0; i < depth; i++ {
		p.w.WriteString("  ")
	}
}

func (p *printer) stmt(s Stmt, depth int) {
	switch x := s.(type) {
	case *AssignStmt:
		p.indent(depth)
		p.expr(x.LHS, 0)
		p.w.WriteString(" = ")
		p.expr(x.RHS, 0)
		p.w.WriteString(";\n")
	case *IfStmt:
		p.indent(depth)
		p.w.WriteString("if (")
		p.expr(x.Cond, 0)
		p.w.WriteString(") {\n")
		for _, t := range x.Then.Stmts {
			p.stmt(t, depth+1)
		}
		p.indent(depth)
		if x.Else != nil && len(x.Else.Stmts) > 0 {
			p.w.WriteString("} else {\n")
			for _, t := range x.Else.Stmts {
				p.stmt(t, depth+1)
			}
			p.indent(depth)
		}
		p.w.WriteString("}\n")
	case *ForStmt:
		p.indent(depth)
		p.w.WriteString("for (")
		if x.Init != nil {
			p.expr(x.Init.LHS, 0)
			p.w.WriteString(" = ")
			p.expr(x.Init.RHS, 0)
		}
		p.w.WriteString("; ")
		p.expr(x.Cond, 0)
		p.w.WriteString("; ")
		if x.Post != nil {
			p.expr(x.Post.LHS, 0)
			p.w.WriteString(" = ")
			p.expr(x.Post.RHS, 0)
		}
		p.w.WriteString(") {\n")
		for _, t := range x.Body.Stmts {
			p.stmt(t, depth+1)
		}
		p.indent(depth)
		p.w.WriteString("}\n")
	case *WhileStmt:
		p.indent(depth)
		if x.Bound > 0 {
			fmt.Fprintf(p.w, "#bound %d\n", x.Bound)
			p.indent(depth)
		}
		p.w.WriteString("while (")
		p.expr(x.Cond, 0)
		p.w.WriteString(") {\n")
		for _, t := range x.Body.Stmts {
			p.stmt(t, depth+1)
		}
		p.indent(depth)
		p.w.WriteString("}\n")
	case *ReturnStmt:
		p.indent(depth)
		p.w.WriteString("return")
		if x.Val != nil {
			p.w.WriteString(" ")
			p.expr(x.Val, 0)
		}
		p.w.WriteString(";\n")
	case *ExprStmt:
		p.indent(depth)
		p.expr(x.Call, 0)
		p.w.WriteString(";\n")
	case *Block:
		p.indent(depth)
		p.w.WriteString("{\n")
		for _, t := range x.Stmts {
			p.stmt(t, depth+1)
		}
		p.indent(depth)
		p.w.WriteString("}\n")
	default:
		p.indent(depth)
		fmt.Fprintf(p.w, "/* unknown stmt %T */\n", s)
	}
}

// Operator precedence for parenthesization, mirroring C.
func precOf(e Expr) int {
	switch x := e.(type) {
	case *ConstExpr, *VarExpr, *IndexExpr, *CallExpr:
		return 100
	case *CastExpr, *UnExpr:
		return 90
	case *BinExpr:
		switch x.Op {
		case OpMul, OpDiv, OpRem:
			return 80
		case OpAdd, OpSub:
			return 70
		case OpShl, OpShr:
			return 60
		case OpLt, OpLe, OpGt, OpGe:
			return 50
		case OpEq, OpNe:
			return 45
		case OpAnd:
			return 40
		case OpXor:
			return 35
		case OpOr:
			return 30
		case OpLAnd:
			return 25
		case OpLOr:
			return 20
		}
	case *SelExpr:
		return 10
	}
	return 0
}

func (p *printer) expr(e Expr, parentPrec int) {
	prec := precOf(e)
	paren := prec < parentPrec
	if paren {
		p.w.WriteString("(")
	}
	switch x := e.(type) {
	case *ConstExpr:
		if x.Typ.IsBool() {
			if x.Val != 0 {
				p.w.WriteString("true")
			} else {
				p.w.WriteString("false")
			}
		} else {
			fmt.Fprintf(p.w, "%d", x.Val)
		}
	case *VarExpr:
		p.w.WriteString(x.V.Name)
	case *IndexExpr:
		p.w.WriteString(x.Arr.Name)
		p.w.WriteString("[")
		p.expr(x.Index, 0)
		p.w.WriteString("]")
	case *BinExpr:
		p.expr(x.L, prec)
		fmt.Fprintf(p.w, " %s ", x.Op)
		p.expr(x.R, prec+1)
	case *UnExpr:
		p.w.WriteString(x.Op.String())
		p.expr(x.X, prec)
	case *SelExpr:
		p.expr(x.Cond, prec+1)
		p.w.WriteString(" ? ")
		p.expr(x.Then, prec+1)
		p.w.WriteString(" : ")
		p.expr(x.Else, prec)
	case *CastExpr:
		fmt.Fprintf(p.w, "(%s)", x.Typ)
		p.expr(x.X, 90)
	case *CallExpr:
		p.w.WriteString(x.Name)
		p.w.WriteString("(")
		for i, a := range x.Args {
			if i > 0 {
				p.w.WriteString(", ")
			}
			p.expr(a, 0)
		}
		p.w.WriteString(")")
	default:
		fmt.Fprintf(p.w, "/*?%T*/", e)
	}
	if paren {
		p.w.WriteString(")")
	}
}
