package ir

// Stmt is an IR statement.
type Stmt interface {
	isStmt()
}

// AssignStmt stores the value of RHS into LHS. The RHS may be a CallExpr
// only at this top level (sema enforces), so "x = f(a, b);" is
// representable but "x = f(a) + 1;" is not until the inliner runs.
type AssignStmt struct {
	LHS LValue
	RHS Expr
}

func (*AssignStmt) isStmt() {}

// IfStmt is a two-way conditional. Else may be nil.
type IfStmt struct {
	Cond Expr
	Then *Block
	Else *Block // may be nil
}

func (*IfStmt) isStmt() {}

// ForStmt is a counted loop: for (Init; Cond; Post) Body.
// Init and Post are assignments (or nil). Label optionally names the loop
// so synthesis scripts can reference it ("unroll main.0 full").
type ForStmt struct {
	Init  *AssignStmt // may be nil
	Cond  Expr
	Post  *AssignStmt // may be nil
	Body  *Block
	Label string
}

func (*ForStmt) isStmt() {}

// WhileStmt is a condition-controlled loop. Bound, when positive, is a
// designer-asserted maximum iteration count that enables full unrolling of
// data-dependent loops (the Fig 16 "natural description" needs this:
// the ILD while-loop iterates at most n times for an n-byte buffer).
type WhileStmt struct {
	Cond  Expr
	Body  *Block
	Label string
	Bound int
}

func (*WhileStmt) isStmt() {}

// ReturnStmt exits the enclosing function, yielding Val (nil for void).
type ReturnStmt struct {
	Val Expr // may be nil
}

func (*ReturnStmt) isStmt() {}

// ExprStmt evaluates a void call for its effects.
type ExprStmt struct {
	Call *CallExpr
}

func (*ExprStmt) isStmt() {}

// Block is a statement sequence.
type Block struct {
	Stmts []Stmt
}

func (*Block) isStmt() {}

// Add appends statements to the block and returns it (for chaining).
func (b *Block) Add(stmts ...Stmt) *Block {
	b.Stmts = append(b.Stmts, stmts...)
	return b
}

// Assign builds an assignment statement.
func Assign(lhs LValue, rhs Expr) *AssignStmt {
	return &AssignStmt{LHS: lhs, RHS: Cast(rhs, lhs.Type())}
}

// AssignRaw builds an assignment without inserting a width-adjusting cast.
// Used by passes that have already established type agreement.
func AssignRaw(lhs LValue, rhs Expr) *AssignStmt {
	return &AssignStmt{LHS: lhs, RHS: rhs}
}

// If builds a conditional statement.
func If(cond Expr, then, els *Block) *IfStmt {
	return &IfStmt{Cond: cond, Then: then, Else: els}
}

// NewBlock builds a block from statements.
func NewBlock(stmts ...Stmt) *Block { return &Block{Stmts: stmts} }
