// Package ir defines the behavioral intermediate representation used by the
// sparkgo high-level synthesis system.
//
// The IR models the ANSI-C subset that the Spark paper (Gupta et al., DAC
// 2002) uses in all of its code listings: bit-accurate integer scalars,
// booleans, one-dimensional arrays, structured control flow (if/for/while),
// and functions. Coarse-grain transformations (inlining, loop unrolling,
// speculation, constant propagation) operate directly on this representation;
// the scheduler operates on the three-address hierarchical task graph lowered
// from it (package htg).
//
// All integer values are width-masked two's-complement. A value of type
// uintN or intN always fits in N bits; package interp and package rtlsim
// apply identical masking so behavioral and RTL simulation agree exactly.
package ir

import (
	"fmt"
	"strconv"
)

// TypeKind discriminates the IR type universe.
type TypeKind int

const (
	// KindInt is a fixed-width two's-complement integer.
	KindInt TypeKind = iota
	// KindBool is a single-bit logical value (distinct from uint1 for
	// type-checking purposes, but identical in hardware).
	KindBool
	// KindArray is a one-dimensional array with static length.
	KindArray
	// KindVoid is the return type of value-less functions.
	KindVoid
)

func (k TypeKind) String() string {
	switch k {
	case KindInt:
		return "int"
	case KindBool:
		return "bool"
	case KindArray:
		return "array"
	case KindVoid:
		return "void"
	}
	return fmt.Sprintf("TypeKind(%d)", int(k))
}

// Type is an IR type. Types are immutable after construction and may be
// shared freely between expressions.
type Type struct {
	Kind   TypeKind
	Bits   int   // significant bits, 1..64 (KindInt only)
	Signed bool  // two's-complement interpretation (KindInt only)
	Elem   *Type // element type (KindArray only)
	Len    int   // number of elements (KindArray only)
}

// Pre-built singleton types for the common cases.
var (
	Bool   = &Type{Kind: KindBool, Bits: 1}
	Void   = &Type{Kind: KindVoid}
	U1     = UInt(1)
	U4     = UInt(4)
	U8     = UInt(8)
	U16    = UInt(16)
	U32    = UInt(32)
	I32    = Int(32)
	USizeT = UInt(16) // index arithmetic width used by generated code
)

// Int returns the signed integer type with the given bit width.
func Int(bits int) *Type {
	if bits < 1 || bits > 64 {
		panic(fmt.Sprintf("ir.Int: invalid width %d", bits))
	}
	return &Type{Kind: KindInt, Bits: bits, Signed: true}
}

// UInt returns the unsigned integer type with the given bit width.
func UInt(bits int) *Type {
	if bits < 1 || bits > 64 {
		panic(fmt.Sprintf("ir.UInt: invalid width %d", bits))
	}
	return &Type{Kind: KindInt, Bits: bits, Signed: false}
}

// Array returns the array type with the given element type and length.
func Array(elem *Type, n int) *Type {
	if elem == nil || elem.Kind == KindArray || elem.Kind == KindVoid {
		panic("ir.Array: invalid element type")
	}
	if n < 1 {
		panic(fmt.Sprintf("ir.Array: invalid length %d", n))
	}
	return &Type{Kind: KindArray, Elem: elem, Len: n}
}

// IsInt reports whether t is a fixed-width integer type.
func (t *Type) IsInt() bool { return t != nil && t.Kind == KindInt }

// IsBool reports whether t is the boolean type.
func (t *Type) IsBool() bool { return t != nil && t.Kind == KindBool }

// IsArray reports whether t is an array type.
func (t *Type) IsArray() bool { return t != nil && t.Kind == KindArray }

// IsVoid reports whether t is the void type.
func (t *Type) IsVoid() bool { return t != nil && t.Kind == KindVoid }

// IsScalar reports whether t is a value type storable in a register:
// an integer or a boolean.
func (t *Type) IsScalar() bool { return t.IsInt() || t.IsBool() }

// Width returns the number of hardware bits needed to store a value of t.
// Booleans occupy one bit. Panics for arrays and void.
func (t *Type) Width() int {
	switch t.Kind {
	case KindInt:
		return t.Bits
	case KindBool:
		return 1
	}
	panic("ir.Type.Width: not a scalar type: " + t.String())
}

// Equal reports structural type equality.
func (t *Type) Equal(u *Type) bool {
	if t == u {
		return true
	}
	if t == nil || u == nil || t.Kind != u.Kind {
		return false
	}
	switch t.Kind {
	case KindInt:
		return t.Bits == u.Bits && t.Signed == u.Signed
	case KindBool, KindVoid:
		return true
	case KindArray:
		return t.Len == u.Len && t.Elem.Equal(u.Elem)
	}
	return false
}

// String renders the type using the surface syntax accepted by the parser
// (e.g. "uint8", "int32", "bool", "uint8[19]").
func (t *Type) String() string {
	if t == nil {
		return "<nil-type>"
	}
	switch t.Kind {
	case KindBool:
		return "bool"
	case KindVoid:
		return "void"
	case KindInt:
		if t.Signed {
			return "int" + strconv.Itoa(t.Bits)
		}
		return "uint" + strconv.Itoa(t.Bits)
	case KindArray:
		return fmt.Sprintf("%s[%d]", t.Elem, t.Len)
	}
	return "<bad-type>"
}

// Mask returns the bit mask covering the significant bits of t.
func (t *Type) Mask() uint64 {
	w := t.Width()
	if w >= 64 {
		return ^uint64(0)
	}
	return (uint64(1) << uint(w)) - 1
}

// Canon masks (and for signed types sign-extends) raw into the value domain
// of t, returning the canonical int64 representation used throughout the
// interpreter and RTL simulator.
func (t *Type) Canon(raw int64) int64 {
	switch t.Kind {
	case KindBool:
		if raw&1 != 0 {
			return 1
		}
		return 0
	case KindInt:
		w := uint(t.Bits)
		if w >= 64 {
			return raw
		}
		v := uint64(raw) & t.Mask()
		if t.Signed && v&(uint64(1)<<(w-1)) != 0 {
			v |= ^t.Mask()
		}
		return int64(v)
	}
	panic("ir.Type.Canon: not a scalar type: " + t.String())
}

// MaxValue returns the largest canonical value representable in t.
func (t *Type) MaxValue() int64 {
	if t.IsBool() {
		return 1
	}
	if !t.IsInt() {
		panic("ir.Type.MaxValue: not scalar")
	}
	if t.Signed {
		return int64(t.Mask() >> 1)
	}
	return int64(t.Mask())
}

// MinValue returns the smallest canonical value representable in t.
func (t *Type) MinValue() int64 {
	if t.IsBool() {
		return 0
	}
	if !t.IsInt() {
		panic("ir.Type.MinValue: not scalar")
	}
	if t.Signed {
		return -int64(t.Mask()>>1) - 1
	}
	return 0
}
