package ir

import (
	"fmt"
)

// Validate checks structural invariants of a program and returns the first
// violation found, or nil. Passes call this in tests after every
// transformation; a program that validates can be interpreted, lowered, and
// synthesized without panics.
//
// Checked invariants:
//   - every variable referenced is registered (a global or a local of the
//     enclosing function)
//   - variable names are unique within their scope
//   - assignment RHS type widths match the LHS (after the implicit cast
//     discipline: Assign always inserts casts, so a mismatch means a pass
//     constructed a statement by hand incorrectly)
//   - calls appear only at statement level, have resolved targets with
//     matching arity, and are not recursive
//   - array variables are only used via indexing; scalars never indexed
func Validate(p *Program) error {
	globals := map[*Var]bool{}
	names := map[string]bool{}
	for _, g := range p.Globals {
		if !g.IsGlobal {
			return fmt.Errorf("global %s not marked IsGlobal", g.Name)
		}
		if names[g.Name] {
			return fmt.Errorf("duplicate global name %s", g.Name)
		}
		names[g.Name] = true
		globals[g] = true
	}
	fnames := map[string]bool{}
	for _, f := range p.Funcs {
		if fnames[f.Name] {
			return fmt.Errorf("duplicate function name %s", f.Name)
		}
		fnames[f.Name] = true
		if err := validateFunc(p, f, globals); err != nil {
			return fmt.Errorf("func %s: %w", f.Name, err)
		}
	}
	if err := checkNoRecursion(p); err != nil {
		return err
	}
	return nil
}

func validateFunc(p *Program, f *Func, globals map[*Var]bool) error {
	locals := map[*Var]bool{}
	names := map[string]bool{}
	for _, v := range f.Locals {
		if names[v.Name] {
			return fmt.Errorf("duplicate local name %s", v.Name)
		}
		names[v.Name] = true
		locals[v] = true
	}
	for _, prm := range f.Params {
		if !locals[prm] {
			return fmt.Errorf("param %s not in locals list", prm.Name)
		}
	}
	known := func(v *Var) bool { return locals[v] || globals[v] }

	var err error
	fail := func(format string, args ...any) {
		if err == nil {
			err = fmt.Errorf(format, args...)
		}
	}
	checkExpr := func(e Expr, stmtLevelCall bool) {
		WalkExpr(e, func(x Expr) bool {
			switch n := x.(type) {
			case *VarExpr:
				if !known(n.V) {
					fail("unregistered variable %s", n.V.Name)
				}
				if n.V.Type.IsArray() {
					fail("array %s used as scalar", n.V.Name)
				}
			case *IndexExpr:
				if !known(n.Arr) {
					fail("unregistered array %s", n.Arr.Name)
				}
				if !n.Arr.Type.IsArray() {
					fail("scalar %s indexed", n.Arr.Name)
				}
				if !n.Index.Type().IsInt() && !n.Index.Type().IsBool() {
					fail("non-integer index into %s", n.Arr.Name)
				}
			case *CallExpr:
				if x != e || !stmtLevelCall {
					fail("call to %s not at statement level", n.Name)
				}
				if n.F == nil {
					fail("unresolved call to %s", n.Name)
				} else if len(n.Args) != len(n.F.Params) {
					fail("call to %s: %d args, want %d", n.Name, len(n.Args), len(n.F.Params))
				}
			case *BinExpr:
				if n.Typ == nil {
					fail("binary %s missing type", n.Op)
				}
			}
			return true
		})
	}

	WalkStmts(f.Body, func(s Stmt) bool {
		switch x := s.(type) {
		case *AssignStmt:
			checkExpr(x.LHS, false)
			checkExpr(x.RHS, true)
			if _, isCall := x.RHS.(*CallExpr); !isCall {
				lt, rt := x.LHS.Type(), x.RHS.Type()
				if lt.IsScalar() && rt.IsScalar() && lt.Width() != rt.Width() && !lt.IsBool() && !rt.IsBool() {
					fail("assignment width mismatch: %s = %s (%s = %s)",
						PrintExpr(x.LHS), PrintExpr(x.RHS), lt, rt)
				}
			}
		case *IfStmt:
			checkExpr(x.Cond, false)
		case *ForStmt:
			checkExpr(x.Cond, false)
		case *WhileStmt:
			checkExpr(x.Cond, false)
		case *ReturnStmt:
			if x.Val != nil {
				checkExpr(x.Val, false)
				if f.Ret.IsVoid() {
					fail("value return from void function")
				}
			}
		case *ExprStmt:
			checkExpr(x.Call, true)
		}
		return true
	})
	return err
}

// checkNoRecursion verifies the static call graph is acyclic (the paper's
// domain: hardware blocks cannot recurse; the inliner requires this).
func checkNoRecursion(p *Program) error {
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := map[*Func]int{}
	var visit func(f *Func) error
	visit = func(f *Func) error {
		color[f] = gray
		var err error
		WalkStmts(f.Body, func(s Stmt) bool {
			WalkStmtExprs(s, func(e Expr) {
				WalkExpr(e, func(x Expr) bool {
					if c, ok := x.(*CallExpr); ok && c.F != nil && err == nil {
						switch color[c.F] {
						case gray:
							err = fmt.Errorf("recursive call cycle through %s", c.F.Name)
						case white:
							err = visit(c.F)
						}
					}
					return true
				})
			})
			return err == nil
		})
		color[f] = black
		return err
	}
	for _, f := range p.Funcs {
		if color[f] == white {
			if err := visit(f); err != nil {
				return err
			}
		}
	}
	return nil
}

// CountStmts returns the number of statements in a function body (all
// nesting levels), a coarse program-size metric used in stage reports.
func CountStmts(f *Func) int {
	n := 0
	WalkStmts(f.Body, func(Stmt) bool { n++; return true })
	return n
}

// CountOps returns the number of operator nodes (binary, unary, select,
// index) in the function: the paper's "operations" metric.
func CountOps(f *Func) int {
	n := 0
	WalkStmts(f.Body, func(s Stmt) bool {
		WalkStmtExprs(s, func(e Expr) {
			WalkExpr(e, func(x Expr) bool {
				switch x.(type) {
				case *BinExpr, *UnExpr, *SelExpr, *IndexExpr:
					n++
				}
				return true
			})
		})
		return true
	})
	return n
}

// CountLoops returns the number of loop statements in the function.
func CountLoops(f *Func) int {
	n := 0
	WalkStmts(f.Body, func(s Stmt) bool {
		switch s.(type) {
		case *ForStmt, *WhileStmt:
			n++
		}
		return true
	})
	return n
}

// CountCalls returns the number of call expressions in the function.
func CountCalls(f *Func) int {
	n := 0
	WalkStmts(f.Body, func(s Stmt) bool {
		WalkStmtExprs(s, func(e Expr) {
			WalkExpr(e, func(x Expr) bool {
				if _, ok := x.(*CallExpr); ok {
					n++
				}
				return true
			})
		})
		return true
	})
	return n
}

// CountIfs returns the number of conditional statements in the function.
func CountIfs(f *Func) int {
	n := 0
	WalkStmts(f.Body, func(s Stmt) bool {
		if _, ok := s.(*IfStmt); ok {
			n++
		}
		return true
	})
	return n
}
