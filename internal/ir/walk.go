package ir

// WalkExpr calls fn for e and each sub-expression, pre-order. If fn returns
// false the children of the current expression are skipped.
func WalkExpr(e Expr, fn func(Expr) bool) {
	if e == nil || !fn(e) {
		return
	}
	switch x := e.(type) {
	case *ConstExpr, *VarExpr:
	case *IndexExpr:
		WalkExpr(x.Index, fn)
	case *BinExpr:
		WalkExpr(x.L, fn)
		WalkExpr(x.R, fn)
	case *UnExpr:
		WalkExpr(x.X, fn)
	case *SelExpr:
		WalkExpr(x.Cond, fn)
		WalkExpr(x.Then, fn)
		WalkExpr(x.Else, fn)
	case *CastExpr:
		WalkExpr(x.X, fn)
	case *CallExpr:
		for _, a := range x.Args {
			WalkExpr(a, fn)
		}
	}
}

// WalkStmts calls fn for every statement in the block tree, pre-order,
// descending into if branches and loop bodies. If fn returns false the
// children of the current statement are skipped.
func WalkStmts(b *Block, fn func(Stmt) bool) {
	if b == nil {
		return
	}
	for _, s := range b.Stmts {
		walkStmt(s, fn)
	}
}

func walkStmt(s Stmt, fn func(Stmt) bool) {
	if s == nil || !fn(s) {
		return
	}
	switch x := s.(type) {
	case *IfStmt:
		WalkStmts(x.Then, fn)
		WalkStmts(x.Else, fn)
	case *ForStmt:
		if x.Init != nil {
			walkStmt(x.Init, fn)
		}
		WalkStmts(x.Body, fn)
		if x.Post != nil {
			walkStmt(x.Post, fn)
		}
	case *WhileStmt:
		WalkStmts(x.Body, fn)
	case *Block:
		WalkStmts(x, fn)
	}
}

// WalkStmtExprs calls fn on every expression appearing in the statement
// (not descending into sub-expressions; use WalkExpr inside fn for that).
func WalkStmtExprs(s Stmt, fn func(Expr)) {
	switch x := s.(type) {
	case *AssignStmt:
		fn(x.LHS)
		fn(x.RHS)
	case *IfStmt:
		fn(x.Cond)
	case *ForStmt:
		if x.Init != nil {
			fn(x.Init.LHS)
			fn(x.Init.RHS)
		}
		fn(x.Cond)
		if x.Post != nil {
			fn(x.Post.LHS)
			fn(x.Post.RHS)
		}
	case *WhileStmt:
		fn(x.Cond)
	case *ReturnStmt:
		if x.Val != nil {
			fn(x.Val)
		}
	case *ExprStmt:
		fn(x.Call)
	}
}

// RewriteExpr rebuilds e bottom-up, replacing each node with fn(node).
// fn receives a node whose children have already been rewritten and returns
// the node to use in its place (possibly the argument unchanged).
func RewriteExpr(e Expr, fn func(Expr) Expr) Expr {
	if e == nil {
		return nil
	}
	switch x := e.(type) {
	case *ConstExpr, *VarExpr:
		// leaves
	case *IndexExpr:
		x.Index = RewriteExpr(x.Index, fn)
	case *BinExpr:
		x.L = RewriteExpr(x.L, fn)
		x.R = RewriteExpr(x.R, fn)
	case *UnExpr:
		x.X = RewriteExpr(x.X, fn)
	case *SelExpr:
		x.Cond = RewriteExpr(x.Cond, fn)
		x.Then = RewriteExpr(x.Then, fn)
		x.Else = RewriteExpr(x.Else, fn)
	case *CastExpr:
		x.X = RewriteExpr(x.X, fn)
	case *CallExpr:
		for i, a := range x.Args {
			x.Args[i] = RewriteExpr(a, fn)
		}
	}
	return fn(e)
}

// RewriteStmtExprs applies RewriteExpr with fn to every expression slot of
// the statement (in place). The LHS of assignments is rewritten too, but fn
// must return an LValue for LValue slots (returning the input unchanged is
// always safe).
func RewriteStmtExprs(s Stmt, fn func(Expr) Expr) {
	switch x := s.(type) {
	case *AssignStmt:
		x.LHS = RewriteExpr(x.LHS, fn).(LValue)
		x.RHS = RewriteExpr(x.RHS, fn)
	case *IfStmt:
		x.Cond = RewriteExpr(x.Cond, fn)
	case *ForStmt:
		if x.Init != nil {
			RewriteStmtExprs(x.Init, fn)
		}
		x.Cond = RewriteExpr(x.Cond, fn)
		if x.Post != nil {
			RewriteStmtExprs(x.Post, fn)
		}
	case *WhileStmt:
		x.Cond = RewriteExpr(x.Cond, fn)
	case *ReturnStmt:
		if x.Val != nil {
			x.Val = RewriteExpr(x.Val, fn)
		}
	case *ExprStmt:
		x.Call = RewriteExpr(x.Call, fn).(*CallExpr)
	}
}

// RewriteAllExprs applies RewriteStmtExprs to every statement in the block
// tree, including nested blocks.
func RewriteAllExprs(b *Block, fn func(Expr) Expr) {
	WalkStmts(b, func(s Stmt) bool {
		RewriteStmtExprs(s, fn)
		return true
	})
}

// RewriteBlocks rebuilds every statement list in the tree: fn receives each
// block's statement slice and returns the replacement slice. fn is applied
// bottom-up (innermost blocks first).
func RewriteBlocks(b *Block, fn func([]Stmt) []Stmt) {
	if b == nil {
		return
	}
	for _, s := range b.Stmts {
		switch x := s.(type) {
		case *IfStmt:
			RewriteBlocks(x.Then, fn)
			RewriteBlocks(x.Else, fn)
		case *ForStmt:
			RewriteBlocks(x.Body, fn)
		case *WhileStmt:
			RewriteBlocks(x.Body, fn)
		case *Block:
			RewriteBlocks(x, fn)
		}
	}
	b.Stmts = fn(b.Stmts)
}

// VarsRead collects every variable read by expression e (array reads count
// as reads of the array variable).
func VarsRead(e Expr, into map[*Var]bool) {
	WalkExpr(e, func(x Expr) bool {
		switch v := x.(type) {
		case *VarExpr:
			into[v.V] = true
		case *IndexExpr:
			into[v.Arr] = true
		}
		return true
	})
}

// StmtReads collects every variable read by statement s (shallow: does not
// descend into nested statements).
func StmtReads(s Stmt) map[*Var]bool {
	m := map[*Var]bool{}
	switch x := s.(type) {
	case *AssignStmt:
		VarsRead(x.RHS, m)
		if ix, ok := x.LHS.(*IndexExpr); ok {
			VarsRead(ix.Index, m)
		}
	case *IfStmt:
		VarsRead(x.Cond, m)
	case *ForStmt:
		VarsRead(x.Cond, m)
	case *WhileStmt:
		VarsRead(x.Cond, m)
	case *ReturnStmt:
		if x.Val != nil {
			VarsRead(x.Val, m)
		}
	case *ExprStmt:
		VarsRead(x.Call, m)
	}
	return m
}

// StmtWrites returns the variable written by statement s (nil if none).
// Array-element stores report the array variable.
func StmtWrites(s Stmt) *Var {
	if a, ok := s.(*AssignStmt); ok {
		switch lhs := a.LHS.(type) {
		case *VarExpr:
			return lhs.V
		case *IndexExpr:
			return lhs.Arr
		}
	}
	return nil
}
