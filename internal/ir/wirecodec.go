package ir

import (
	"sparkgo/internal/wire"

	"fmt"
)

// This file is the binary wire framing of the flattened program form
// (see codec.go for the flattening itself): every field written in a
// fixed order through internal/wire, so identical programs encode to
// identical bytes and the content fingerprint is a plain hash of the
// encoding. Optional sub-nodes travel behind presence booleans; tagged
// unions (expressions, statements) write their kind first and only the
// fields that kind carries.

// progTag versions the IR wire layout; bump it when the layout changes
// so stale bytes fail the tag check instead of mis-decoding.
const progTag = "irprog/1"

// PutType writes a flattened type to a wire encoder — exported so the
// downstream artifact codecs (htg, rtl) carry types in the same layout.
// Non-array kinds never carry the element fields, keeping the common
// case at three values.
func PutType(e *wire.Encoder, t TypeCode) { putType(e, t) }

// GetType is the wire-decoder inverse of PutType.
func GetType(d *wire.Decoder) TypeCode { return getType(d) }

func putType(e *wire.Encoder, t TypeCode) {
	e.Int(t.Kind)
	if t.Kind == -1 {
		return
	}
	e.Int(t.Bits)
	e.Bool(t.Signed)
	if TypeKind(t.Kind) == KindArray {
		e.Int(t.Len)
		e.Int(t.ElemKind)
		e.Int(t.ElemBits)
		e.Bool(t.ElemSigned)
	}
}

func getType(d *wire.Decoder) TypeCode {
	t := TypeCode{Kind: d.Int()}
	if t.Kind == -1 {
		return t
	}
	t.Bits = d.Int()
	t.Signed = d.Bool()
	if TypeKind(t.Kind) == KindArray {
		t.Len = d.Int()
		t.ElemKind = d.Int()
		t.ElemBits = d.Int()
		t.ElemSigned = d.Bool()
	}
	return t
}

func putVar(e *wire.Encoder, v encVar) {
	e.String(v.Name)
	putType(e, v.Type)
	e.Bool(v.IsParam)
	e.Bool(v.IsGlobal)
	e.Bool(v.Wire)
	e.Bool(v.Synthetic)
}

func getVar(d *wire.Decoder) encVar {
	return encVar{
		Name:      d.String(),
		Type:      getType(d),
		IsParam:   d.Bool(),
		IsGlobal:  d.Bool(),
		Wire:      d.Bool(),
		Synthetic: d.Bool(),
	}
}

func putExpr(e *wire.Encoder, x *encExpr) {
	e.Int(x.Kind)
	switch x.Kind {
	case encConst:
		e.Int64(x.Val)
		putType(e, x.Typ)
	case encVarRef:
		e.Int(x.Var)
	case encIndex:
		e.Int(x.Var)
	case encBin:
		e.Int(x.Op)
		putType(e, x.Typ)
	case encUn:
		e.Int(x.Op)
		putType(e, x.Typ)
	case encSel, encCast:
		putType(e, x.Typ)
	case encCall:
		e.String(x.Name)
		e.Int(x.Func)
	}
	e.Uvarint(uint64(len(x.Args)))
	for i := range x.Args {
		putExpr(e, &x.Args[i])
	}
}

func getExpr(d *wire.Decoder) encExpr {
	x := encExpr{Kind: d.Int()}
	switch x.Kind {
	case encConst:
		x.Val = d.Int64()
		x.Typ = getType(d)
	case encVarRef:
		x.Var = d.Int()
	case encIndex:
		x.Var = d.Int()
	case encBin:
		x.Op = d.Int()
		x.Typ = getType(d)
	case encUn:
		x.Op = d.Int()
		x.Typ = getType(d)
	case encSel, encCast:
		x.Typ = getType(d)
	case encCall:
		x.Name = d.String()
		x.Func = d.Int()
	}
	if n := d.Len(2); n > 0 { // an expression node is >= 2 bytes (kind + arg count)
		x.Args = make([]encExpr, 0, n)
		for i := 0; i < n && d.Err() == nil; i++ {
			x.Args = append(x.Args, getExpr(d))
		}
	}
	return x
}

// putExprPtr writes an optional expression behind a presence flag.
func putExprPtr(e *wire.Encoder, x *encExpr) {
	e.Bool(x != nil)
	if x != nil {
		putExpr(e, x)
	}
}

func getExprPtr(d *wire.Decoder) *encExpr {
	if !d.Bool() {
		return nil
	}
	x := getExpr(d)
	return &x
}

func putStmt(e *wire.Encoder, s *encStmt) {
	e.Int(s.Kind)
	switch s.Kind {
	case encAssign:
		putExprPtr(e, s.LHS)
		putExprPtr(e, s.RHS)
	case encIf:
		putExprPtr(e, s.Cond)
		putStmts(e, s.Then)
		e.Bool(s.HasElse)
		if s.HasElse {
			putStmts(e, s.Else)
		}
	case encFor:
		putExprPtr(e, s.Cond)
		putStmts(e, s.Then)
		e.String(s.Label)
		putStmtPtr(e, s.Init)
		putStmtPtr(e, s.Post)
	case encWhile:
		putExprPtr(e, s.Cond)
		putStmts(e, s.Then)
		e.String(s.Label)
		e.Int(s.Bound)
	case encReturn:
		putExprPtr(e, s.Val)
	case encExprStmt:
		putExprPtr(e, s.Call)
	case encBlock:
		putStmts(e, s.Then)
	}
}

func getStmt(d *wire.Decoder) encStmt {
	s := encStmt{Kind: d.Int()}
	switch s.Kind {
	case encAssign:
		s.LHS = getExprPtr(d)
		s.RHS = getExprPtr(d)
	case encIf:
		s.Cond = getExprPtr(d)
		s.Then = getStmts(d)
		s.HasElse = d.Bool()
		if s.HasElse {
			s.Else = getStmts(d)
		}
	case encFor:
		s.Cond = getExprPtr(d)
		s.Then = getStmts(d)
		s.Label = d.String()
		s.Init = getStmtPtr(d)
		s.Post = getStmtPtr(d)
	case encWhile:
		s.Cond = getExprPtr(d)
		s.Then = getStmts(d)
		s.Label = d.String()
		s.Bound = d.Int()
	case encReturn:
		s.Val = getExprPtr(d)
	case encExprStmt:
		s.Call = getExprPtr(d)
	case encBlock:
		s.Then = getStmts(d)
	}
	return s
}

func putStmtPtr(e *wire.Encoder, s *encStmt) {
	e.Bool(s != nil)
	if s != nil {
		putStmt(e, s)
	}
}

func getStmtPtr(d *wire.Decoder) *encStmt {
	if !d.Bool() {
		return nil
	}
	s := getStmt(d)
	return &s
}

func putStmts(e *wire.Encoder, ss []encStmt) {
	e.Uvarint(uint64(len(ss)))
	for i := range ss {
		putStmt(e, &ss[i])
	}
}

func getStmts(d *wire.Decoder) []encStmt {
	n := d.Len(1)
	if n == 0 {
		return nil
	}
	out := make([]encStmt, 0, n)
	for i := 0; i < n && d.Err() == nil; i++ {
		out = append(out, getStmt(d))
	}
	return out
}

// encodeProgramWire frames the flattened program in the deterministic
// binary layout.
func encodeProgramWire(ep *encProgram) []byte {
	e := wire.NewEncoder(256)
	e.Tag(progTag)
	e.String(ep.Name)
	e.Uvarint(uint64(len(ep.Globals)))
	for _, g := range ep.Globals {
		putVar(e, g)
	}
	e.Uvarint(uint64(len(ep.Funcs)))
	for i := range ep.Funcs {
		f := &ep.Funcs[i]
		e.String(f.Name)
		putType(e, f.Ret)
		e.Uvarint(uint64(len(f.Locals)))
		for _, v := range f.Locals {
			putVar(e, v)
		}
		e.Int(f.TempCounter)
		putStmts(e, f.Body)
	}
	return e.Data()
}

// decodeProgramWire parses the binary layout back into the flattened
// form, rejecting truncation, trailing bytes, and inflated lengths.
func decodeProgramWire(data []byte) (*encProgram, error) {
	d := wire.NewDecoder(data)
	d.Tag(progTag)
	ep := &encProgram{Name: d.String()}
	if n := d.Len(2); n > 0 { // a variable is >= 2 bytes (name len + kind)
		ep.Globals = make([]encVar, 0, n)
		for i := 0; i < n && d.Err() == nil; i++ {
			ep.Globals = append(ep.Globals, getVar(d))
		}
	}
	if n := d.Len(4); n > 0 { // a function is >= 4 bytes
		ep.Funcs = make([]encFunc, 0, n)
		for i := 0; i < n && d.Err() == nil; i++ {
			f := encFunc{Name: d.String(), Ret: getType(d)}
			if ln := d.Len(2); ln > 0 {
				f.Locals = make([]encVar, 0, ln)
				for j := 0; j < ln && d.Err() == nil; j++ {
					f.Locals = append(f.Locals, getVar(d))
				}
			}
			f.TempCounter = d.Int()
			f.Body = getStmts(d)
			ep.Funcs = append(ep.Funcs, f)
		}
	}
	if err := d.Finish(); err != nil {
		return nil, fmt.Errorf("program: %w", err)
	}
	return ep, nil
}
