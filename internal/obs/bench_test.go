package obs

import "testing"

// The publish fast paths: a nil bus must cost ~nothing (the
// instrumented call sites guard on Active() before even building an
// event, so this bounds the worst case of a guard miss), and a bus
// with no subscribers must stay allocation-free.

func BenchmarkPublishNilBus(b *testing.B) {
	var bus *Bus
	ev := Event{Type: TypeStage, Stage: "point", Disposition: DispMem, DurationNs: 1000}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		bus.Publish(ev)
	}
}

func BenchmarkPublishNoSubscribers(b *testing.B) {
	bus := NewBus(nil)
	ev := Event{Type: TypeStage, Stage: "point", Disposition: DispMem, DurationNs: 1000}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bus.Publish(ev)
	}
}

func BenchmarkPublishMetricsFold(b *testing.B) {
	bus := NewBus(NewMetrics(NewRegistry()))
	ev := Event{Type: TypeStage, Stage: "point", Disposition: DispMem, DurationNs: 1000}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bus.Publish(ev)
	}
}

func BenchmarkPublishOneSubscriber(b *testing.B) {
	bus := NewBus(nil)
	s := bus.Subscribe(1024)
	done := make(chan struct{})
	go func() {
		for range s.C {
		}
		close(done)
	}()
	ev := Event{Type: TypeTier, Tier: "mem", Op: "hit"}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bus.Publish(ev)
	}
	b.StopTimer()
	bus.Unsubscribe(s)
	<-done
}
