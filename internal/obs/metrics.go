package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing metric. All methods are valid
// on a nil receiver (no-ops), so call sites need no registry guard.
type Counter struct {
	v atomic.Int64
}

// Inc adds 1.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a metric that can go up and down. Nil-receiver safe.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add adds d (CAS loop; safe for concurrent adders).
func (g *Gauge) Add(d float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + d)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram is a bounded-bucket histogram with cumulative Prometheus
// semantics. Bucket bounds are fixed at creation. Nil-receiver safe.
type Histogram struct {
	bounds  []float64 // upper bounds, ascending; +Inf implicit
	buckets []atomic.Int64
	count   atomic.Int64
	sumBits atomic.Uint64
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	// Buckets are non-cumulative internally; rendering accumulates.
	i := sort.SearchFloat64s(h.bounds, v)
	h.buckets[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sumBits.Load())
}

// DefaultLatencyBuckets spans 100µs..10s — stage lookups range from
// microsecond memory hits to multi-second cold syntheses.
var DefaultLatencyBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005,
	0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// DefaultCycleBuckets spans the simulated-latency range of the
// designs the engine synthesizes.
var DefaultCycleBuckets = []float64{
	8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096, 16384, 65536,
}

const (
	typeCounter   = "counter"
	typeGauge     = "gauge"
	typeHistogram = "histogram"
)

type series struct {
	labels string // canonical rendered label set, "" or `k="v",k2="v2"`
	c      *Counter
	g      *Gauge
	h      *Histogram
}

type family struct {
	name   string
	help   string
	typ    string
	bounds []float64
	series map[string]*series
}

// Registry holds metric families keyed by name. Lookup methods create
// on first use and return the existing instance thereafter, so
// callers may re-request a metric instead of caching the pointer.
// A nil *Registry is valid: lookups return nil metrics, which are
// themselves inert.
type Registry struct {
	mu   sync.Mutex
	fams map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{fams: make(map[string]*family)}
}

// labelKey renders alternating key/value pairs into the canonical
// (key-sorted, escaped) Prometheus label string.
func labelKey(labels []string) string {
	if len(labels) == 0 {
		return ""
	}
	if len(labels)%2 != 0 {
		panic("obs: labels must be alternating key/value pairs")
	}
	type kv struct{ k, v string }
	pairs := make([]kv, 0, len(labels)/2)
	for i := 0; i < len(labels); i += 2 {
		pairs = append(pairs, kv{labels[i], labels[i+1]})
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].k < pairs[j].k })
	var sb strings.Builder
	for i, p := range pairs {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(p.k)
		sb.WriteString(`="`)
		sb.WriteString(escapeLabel(p.v))
		sb.WriteByte('"')
	}
	return sb.String()
}

func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

func (r *Registry) lookup(name, help, typ string, bounds []float64, labels []string) *series {
	key := labelKey(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.fams[name]
	if f == nil {
		f = &family{name: name, help: help, typ: typ, bounds: bounds, series: make(map[string]*series)}
		r.fams[name] = f
	} else if f.typ != typ {
		panic(fmt.Sprintf("obs: metric %q registered as %s, requested as %s", name, f.typ, typ))
	}
	s := f.series[key]
	if s == nil {
		s = &series{labels: key}
		switch typ {
		case typeCounter:
			s.c = &Counter{}
		case typeGauge:
			s.g = &Gauge{}
		case typeHistogram:
			s.h = &Histogram{
				bounds:  f.bounds,
				buckets: make([]atomic.Int64, len(f.bounds)+1),
			}
		}
		f.series[key] = s
	}
	return s
}

// Counter returns the counter series for name and the given
// alternating label key/value pairs, creating it on first use.
func (r *Registry) Counter(name, help string, labels ...string) *Counter {
	if r == nil {
		return nil
	}
	return r.lookup(name, help, typeCounter, nil, labels).c
}

// Gauge returns the gauge series for name and labels.
func (r *Registry) Gauge(name, help string, labels ...string) *Gauge {
	if r == nil {
		return nil
	}
	return r.lookup(name, help, typeGauge, nil, labels).g
}

// Histogram returns the histogram series for name and labels. The
// bucket bounds are fixed by the first call for a given name.
func (r *Registry) Histogram(name, help string, buckets []float64, labels ...string) *Histogram {
	if r == nil {
		return nil
	}
	return r.lookup(name, help, typeHistogram, buckets, labels).h
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func seriesName(name, labels string) string {
	if labels == "" {
		return name
	}
	return name + "{" + labels + "}"
}

func bucketName(name, labels, le string) string {
	l := `le="` + le + `"`
	if labels != "" {
		l = labels + "," + l
	}
	return name + "_bucket{" + l + "}"
}

// WritePrometheus renders every family in text exposition format,
// families and series in stable sorted order.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	names := make([]string, 0, len(r.fams))
	for n := range r.fams {
		names = append(names, n)
	}
	sort.Strings(names)
	var sb strings.Builder
	for _, n := range names {
		f := r.fams[n]
		fmt.Fprintf(&sb, "# HELP %s %s\n", f.name, f.help)
		fmt.Fprintf(&sb, "# TYPE %s %s\n", f.name, f.typ)
		keys := make([]string, 0, len(f.series))
		for k := range f.series {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			s := f.series[k]
			switch f.typ {
			case typeCounter:
				fmt.Fprintf(&sb, "%s %d\n", seriesName(f.name, s.labels), s.c.Value())
			case typeGauge:
				fmt.Fprintf(&sb, "%s %s\n", seriesName(f.name, s.labels), formatFloat(s.g.Value()))
			case typeHistogram:
				var cum int64
				for i, b := range s.h.bounds {
					cum += s.h.buckets[i].Load()
					fmt.Fprintf(&sb, "%s %d\n", bucketName(f.name, s.labels, formatFloat(b)), cum)
				}
				cum += s.h.buckets[len(s.h.bounds)].Load()
				fmt.Fprintf(&sb, "%s %d\n", bucketName(f.name, s.labels, "+Inf"), cum)
				fmt.Fprintf(&sb, "%s %s\n", seriesName(f.name+"_sum", s.labels), formatFloat(s.h.Sum()))
				fmt.Fprintf(&sb, "%s %d\n", seriesName(f.name+"_count", s.labels), s.h.Count())
			}
		}
	}
	r.mu.Unlock()
	_, err := io.WriteString(w, sb.String())
	return err
}

// Snapshot flattens every series into a name{labels} -> value map for
// embedding in JSON reports. Histograms contribute _count and _sum.
func (r *Registry) Snapshot() map[string]float64 {
	if r == nil {
		return nil
	}
	out := make(map[string]float64)
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, f := range r.fams {
		for _, s := range f.series {
			switch f.typ {
			case typeCounter:
				out[seriesName(f.name, s.labels)] = float64(s.c.Value())
			case typeGauge:
				out[seriesName(f.name, s.labels)] = s.g.Value()
			case typeHistogram:
				out[seriesName(f.name+"_count", s.labels)] = float64(s.h.Count())
				out[seriesName(f.name+"_sum", s.labels)] = s.h.Sum()
			}
		}
	}
	return out
}

// Metric names exported for tests and for callers that assert on the
// rendered exposition.
const (
	MetricStageLatency = "sparkgo_stage_latency_seconds"
	MetricSimCycles    = "sparkgo_sim_cycles"
	MetricSimInsns     = "sparkgo_sim_insns_total"
	MetricTierOps      = "sparkgo_cache_tier_ops_total"
	MetricJobs         = "sparkgo_jobs_total"
	MetricEvents       = "sparkgo_events_published_total"
)

// Metrics folds bus events into a Registry. The known label space
// (stages × dispositions, tiers × ops) is pre-registered at
// construction so the per-event fold is map lookups over small
// immutable maps plus atomic adds — no allocation, no registry lock.
type Metrics struct {
	reg *Registry

	stageLatency map[string]map[string]*Histogram // stage -> disposition
	tierOps      map[string]map[string]*Counter   // tier -> op
	jobs         map[string]*Counter              // lifecycle op
	simCycles    *Histogram
	simInsns     [4]*Counter // packed, boundary, wide, lane
	events       *Counter
}

// foldInsnClasses orders the compiled-simulator opcode classes the way
// Metrics.simInsns indexes them. The strings match rtlsim's Mix*
// constants; obs stays a leaf package, so they are duplicated here.
var foldInsnClasses = [4]string{"packed", "boundary", "wide", "lane"}

var (
	foldStages       = []string{"frontend", "midend", "backend", "point"}
	foldDispositions = []string{DispMem, DispDisk, DispRemote, DispComputed, DispShared}
	foldTiers        = []string{"mem", "disk", "remote"}
	foldTierOps      = []string{"hit", "miss", "error", "backfill", "put", "put_error"}
	foldJobOps       = []string{"submitted", "coalesced", "started", "done", "failed", "canceled"}
)

// NewMetrics pre-registers the engine's metric families on r and
// returns the fold.
func NewMetrics(r *Registry) *Metrics {
	if r == nil {
		r = NewRegistry()
	}
	m := &Metrics{
		reg:          r,
		stageLatency: make(map[string]map[string]*Histogram, len(foldStages)),
		tierOps:      make(map[string]map[string]*Counter, len(foldTiers)),
		jobs:         make(map[string]*Counter, len(foldJobOps)),
	}
	const (
		helpStage = "Stage cache lookup latency by stage and disposition."
		helpTier  = "Blob store operations by tier and outcome."
		helpJobs  = "Queue job lifecycle transitions."
		helpSim   = "Measured netlist latency in cycles."
		helpInsns = "Compiled simulator instructions by opcode class, summed over runs."
		helpEv    = "Events published to the observability bus."
	)
	for _, st := range foldStages {
		byDisp := make(map[string]*Histogram, len(foldDispositions))
		for _, d := range foldDispositions {
			byDisp[d] = r.Histogram(MetricStageLatency, helpStage, DefaultLatencyBuckets,
				"stage", st, "disposition", d)
		}
		m.stageLatency[st] = byDisp
	}
	for _, t := range foldTiers {
		byOp := make(map[string]*Counter, len(foldTierOps))
		for _, op := range foldTierOps {
			byOp[op] = r.Counter(MetricTierOps, helpTier, "tier", t, "op", op)
		}
		m.tierOps[t] = byOp
	}
	for _, op := range foldJobOps {
		m.jobs[op] = r.Counter(MetricJobs, helpJobs, "event", op)
	}
	m.simCycles = r.Histogram(MetricSimCycles, helpSim, DefaultCycleBuckets)
	for i, class := range foldInsnClasses {
		m.simInsns[i] = r.Counter(MetricSimInsns, helpInsns, "class", class)
	}
	m.events = r.Counter(MetricEvents, helpEv)
	return m
}

// Registry returns the backing registry.
func (m *Metrics) Registry() *Registry {
	if m == nil {
		return nil
	}
	return m.reg
}

// fold updates metrics for one event. Called by Bus.Publish on the
// instrumented hot path: known label values resolve through the
// pre-built maps; unknown ones fall back to the locked registry.
func (m *Metrics) fold(ev Event) {
	m.events.Inc()
	switch ev.Type {
	case TypeStage:
		h := m.stageLatency[ev.Stage][ev.Disposition]
		if h == nil {
			h = m.reg.Histogram(MetricStageLatency, "", DefaultLatencyBuckets,
				"stage", ev.Stage, "disposition", ev.Disposition)
		}
		h.Observe(float64(ev.DurationNs) / 1e9)
	case TypeSim:
		m.simCycles.Observe(float64(ev.Cycles))
		m.simInsns[0].Add(ev.SimInsnsPacked)
		m.simInsns[1].Add(ev.SimInsnsBoundary)
		m.simInsns[2].Add(ev.SimInsnsWide)
		m.simInsns[3].Add(ev.SimInsnsLane)
	case TypeTier:
		c := m.tierOps[ev.Tier][ev.Op]
		if c == nil {
			c = m.reg.Counter(MetricTierOps, "", "tier", ev.Tier, "op", ev.Op)
		}
		c.Inc()
	case TypeJob:
		c := m.jobs[ev.Op]
		if c == nil {
			c = m.reg.Counter(MetricJobs, "", "event", ev.Op)
		}
		c.Inc()
	}
}
