// Package obs is the engine-wide observability plane: a typed event
// bus carrying structured span events from every layer of the system
// (stage cache lookups, blob tier traffic, queue lifecycle, search
// trajectories) plus a dependency-free metrics registry rendered in
// Prometheus text exposition format.
//
// The package is a leaf: it imports only the standard library, so the
// blob store, the exploration engine, and the service layer can all
// publish to one bus without import cycles.
//
// Cost model: a nil *Bus is a valid bus and every method on it is a
// no-op, so instrumentation sites guard with Active() before paying
// for time.Now() or event construction. With a bus attached but no
// subscribers, Publish folds the event into the attached Metrics
// (a handful of atomic ops) and returns without taking the subscriber
// lock — the hot path never blocks on a consumer.
package obs

import (
	"sync"
	"sync/atomic"
	"time"
)

// Event types. An Event is a flat union: which fields are meaningful
// depends on Type, and zero-valued fields are omitted from JSON.
const (
	// TypeStage is a completed stage-cache lookup (frontend, midend,
	// backend, point) with its duration and cache disposition.
	TypeStage = "stage"
	// TypeSim is a completed netlist simulation with its measured
	// cycle count.
	TypeSim = "sim"
	// TypeTier is a single blob-store tier operation
	// (hit/miss/error/backfill/put/put_error).
	TypeTier = "tier"
	// TypeJob is a queue lifecycle transition
	// (submitted/coalesced/started/done/failed/canceled).
	TypeJob = "job"
	// TypeProgress is a unit-of-work progress update for a running job.
	TypeProgress = "progress"
	// TypeTrajectory is a strict-improvement step found by an adaptive
	// search.
	TypeTrajectory = "trajectory"
	// TypeRound is an outer-loop boundary of an adaptive search
	// (hill-climb restart, genetic generation, annealing epoch).
	TypeRound = "round"
)

// Stage-cache dispositions carried by TypeStage events. The mem, disk,
// and remote dispositions name the tier that served the artifact;
// computed means the leader ran the stage; shared means a concurrent
// waiter received the leader's in-memory artifact.
const (
	DispMem      = "mem"
	DispDisk     = "disk"
	DispRemote   = "remote"
	DispComputed = "computed"
	DispShared   = "shared"
)

// Event is one structured observation. Events are small value types:
// they are copied onto subscriber channels, never shared.
type Event struct {
	Seq         uint64 `json:"seq"`
	TimeNs      int64  `json:"time_ns"`
	Type        string `json:"type"`
	Job         string `json:"job,omitempty"`
	Stage       string `json:"stage,omitempty"`
	Disposition string `json:"disposition,omitempty"`
	Tier        string `json:"tier,omitempty"`
	Op          string `json:"op,omitempty"`
	Kind        string `json:"kind,omitempty"`
	DurationNs  int64  `json:"duration_ns,omitempty"`
	Cycles      int    `json:"cycles,omitempty"`
	// Compiled-simulator instruction mix by opcode class, carried on
	// TypeSim events (the counts of the program that just ran).
	SimInsnsPacked   int64   `json:"sim_insns_packed,omitempty"`
	SimInsnsBoundary int64   `json:"sim_insns_boundary,omitempty"`
	SimInsnsWide     int64   `json:"sim_insns_wide,omitempty"`
	SimInsnsLane     int64   `json:"sim_insns_lane,omitempty"`
	Done             int     `json:"done,omitempty"`
	Total            int     `json:"total,omitempty"`
	Evaluation       int     `json:"evaluation,omitempty"`
	Round            int     `json:"round,omitempty"`
	Score            float64 `json:"score,omitempty"`
	Config           string  `json:"config,omitempty"`
	Detail           string  `json:"detail,omitempty"`
	Err              string  `json:"err,omitempty"`
}

// Sub is one bus subscription. Events are delivered on C; when the
// subscriber falls behind its buffer, events are dropped (counted per
// subscriber and bus-wide) rather than blocking the publisher.
type Sub struct {
	C       <-chan Event
	ch      chan Event
	dropped atomic.Int64
}

// Dropped reports how many events were discarded because this
// subscriber's buffer was full.
func (s *Sub) Dropped() int64 { return s.dropped.Load() }

// Bus is the engine-wide event bus. The zero value is not usable; use
// NewBus. A nil *Bus is valid and inert.
type Bus struct {
	metrics *Metrics

	seq       atomic.Uint64
	published atomic.Int64
	dropped   atomic.Int64
	nsubs     atomic.Int32

	mu   sync.Mutex
	subs map[*Sub]struct{}
}

// NewBus returns a bus that folds every published event into m
// (which may be nil for a pure pub/sub bus).
func NewBus(m *Metrics) *Bus {
	return &Bus{metrics: m, subs: make(map[*Sub]struct{})}
}

// Active reports whether events published to b go anywhere.
// Instrumentation sites use it to skip timing and event construction
// entirely when no bus is attached.
func (b *Bus) Active() bool { return b != nil }

// Metrics returns the metrics sink attached at construction, or nil.
func (b *Bus) Metrics() *Metrics {
	if b == nil {
		return nil
	}
	return b.metrics
}

// Registry returns the metrics registry behind the bus, or nil.
func (b *Bus) Registry() *Registry {
	if b == nil || b.metrics == nil {
		return nil
	}
	return b.metrics.Registry()
}

// Publish stamps ev with a sequence number and timestamp, folds it
// into the attached metrics, and fans it out to subscribers without
// blocking: a subscriber with a full buffer loses the event, not the
// publisher.
func (b *Bus) Publish(ev Event) {
	if b == nil {
		return
	}
	ev.Seq = b.seq.Add(1)
	if ev.TimeNs == 0 {
		ev.TimeNs = time.Now().UnixNano()
	}
	b.published.Add(1)
	if b.metrics != nil {
		b.metrics.fold(ev)
	}
	if b.nsubs.Load() == 0 {
		return
	}
	b.mu.Lock()
	for s := range b.subs {
		select {
		case s.ch <- ev:
		default:
			s.dropped.Add(1)
			b.dropped.Add(1)
		}
	}
	b.mu.Unlock()
}

// Subscribe registers a subscriber with the given channel buffer
// (minimum 1). The caller must eventually Unsubscribe.
func (b *Bus) Subscribe(buffer int) *Sub {
	if b == nil {
		return nil
	}
	if buffer < 1 {
		buffer = 1
	}
	s := &Sub{ch: make(chan Event, buffer)}
	s.C = s.ch
	b.mu.Lock()
	b.subs[s] = struct{}{}
	b.mu.Unlock()
	b.nsubs.Add(1)
	return s
}

// Unsubscribe removes s and closes its channel. Safe to call on a nil
// bus or nil sub, and idempotent.
func (b *Bus) Unsubscribe(s *Sub) {
	if b == nil || s == nil {
		return
	}
	b.mu.Lock()
	if _, ok := b.subs[s]; ok {
		delete(b.subs, s)
		b.nsubs.Add(-1)
		close(s.ch)
	}
	b.mu.Unlock()
}

// BusStats is a point-in-time snapshot of bus traffic.
type BusStats struct {
	Published   int64 `json:"published"`
	Dropped     int64 `json:"dropped"`
	Subscribers int   `json:"subscribers"`
}

// Stats snapshots bus counters. Valid on a nil bus.
func (b *Bus) Stats() BusStats {
	if b == nil {
		return BusStats{}
	}
	return BusStats{
		Published:   b.published.Load(),
		Dropped:     b.dropped.Load(),
		Subscribers: int(b.nsubs.Load()),
	}
}
