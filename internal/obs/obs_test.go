package obs

import (
	"strings"
	"sync"
	"testing"
)

func TestNilBusIsInert(t *testing.T) {
	var b *Bus
	if b.Active() {
		t.Fatal("nil bus reports active")
	}
	b.Publish(Event{Type: TypeStage})
	if s := b.Subscribe(4); s != nil {
		t.Fatal("nil bus returned a subscription")
	}
	b.Unsubscribe(nil)
	if got := b.Stats(); got != (BusStats{}) {
		t.Fatalf("nil bus stats = %+v", got)
	}
	if b.Metrics() != nil || b.Registry() != nil {
		t.Fatal("nil bus exposes metrics")
	}
}

func TestBusPublishSubscribe(t *testing.T) {
	b := NewBus(nil)
	s := b.Subscribe(8)
	b.Publish(Event{Type: TypeStage, Stage: "frontend"})
	b.Publish(Event{Type: TypeTier, Tier: "mem", Op: "hit"})
	ev1 := <-s.C
	ev2 := <-s.C
	if ev1.Type != TypeStage || ev2.Type != TypeTier {
		t.Fatalf("got %q then %q", ev1.Type, ev2.Type)
	}
	if ev1.Seq == 0 || ev2.Seq <= ev1.Seq {
		t.Fatalf("sequence not monotonic: %d then %d", ev1.Seq, ev2.Seq)
	}
	if ev1.TimeNs == 0 {
		t.Fatal("event not timestamped")
	}
	st := b.Stats()
	if st.Published != 2 || st.Subscribers != 1 || st.Dropped != 0 {
		t.Fatalf("stats = %+v", st)
	}
	b.Unsubscribe(s)
	if _, ok := <-s.C; ok {
		t.Fatal("channel not closed on unsubscribe")
	}
	b.Unsubscribe(s) // idempotent
	if got := b.Stats().Subscribers; got != 0 {
		t.Fatalf("subscribers after unsubscribe = %d", got)
	}
}

func TestBusSlowSubscriberDropsEvents(t *testing.T) {
	b := NewBus(nil)
	s := b.Subscribe(2)
	for i := 0; i < 5; i++ {
		b.Publish(Event{Type: TypeProgress, Done: i})
	}
	if got := s.Dropped(); got != 3 {
		t.Fatalf("subscriber dropped = %d, want 3", got)
	}
	if got := b.Stats().Dropped; got != 3 {
		t.Fatalf("bus dropped = %d, want 3", got)
	}
	// The two buffered events are still the oldest ones.
	if ev := <-s.C; ev.Done != 0 {
		t.Fatalf("first buffered event Done = %d", ev.Done)
	}
	b.Unsubscribe(s)
}

func TestBusConcurrentPublish(t *testing.T) {
	b := NewBus(NewMetrics(NewRegistry()))
	s := b.Subscribe(64)
	var wg sync.WaitGroup
	const goroutines, per = 8, 100
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				b.Publish(Event{Type: TypeTier, Tier: "mem", Op: "hit"})
			}
		}()
	}
	done := make(chan struct{})
	go func() {
		for range s.C {
		}
		close(done)
	}()
	wg.Wait()
	b.Unsubscribe(s)
	<-done
	st := b.Stats()
	if st.Published != goroutines*per {
		t.Fatalf("published = %d, want %d", st.Published, goroutines*per)
	}
	hits := b.Registry().Counter(MetricTierOps, "", "tier", "mem", "op", "hit").Value()
	if hits != goroutines*per {
		t.Fatalf("folded hits = %d, want %d", hits, goroutines*per)
	}
}

func TestRegistryPrometheusRendering(t *testing.T) {
	r := NewRegistry()
	r.Counter("test_total", "A counter.", "kind", "a").Add(3)
	r.Counter("test_total", "A counter.", "kind", "b").Inc()
	r.Gauge("test_gauge", "A gauge.").Set(2.5)
	h := r.Histogram("test_seconds", "A histogram.", []float64{0.1, 1})
	h.Observe(0.25)
	h.Observe(0.5)
	h.Observe(4)

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# HELP test_total A counter.",
		"# TYPE test_total counter",
		`test_total{kind="a"} 3`,
		`test_total{kind="b"} 1`,
		"# TYPE test_gauge gauge",
		"test_gauge 2.5",
		"# TYPE test_seconds histogram",
		`test_seconds_bucket{le="0.1"} 0`,
		`test_seconds_bucket{le="1"} 2`,
		`test_seconds_bucket{le="+Inf"} 3`,
		"test_seconds_sum 4.75",
		"test_seconds_count 3",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q\n%s", want, out)
		}
	}
	// Families render in sorted order.
	if strings.Index(out, "test_gauge") > strings.Index(out, "test_total") {
		t.Error("families not sorted by name")
	}
}

func TestRegistryLabelCanonicalization(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("c_total", "", "x", "1", "y", "2")
	b := r.Counter("c_total", "", "y", "2", "x", "1")
	if a != b {
		t.Fatal("label order changed series identity")
	}
	esc := r.Counter("c_total", "", "x", "a\"b\\c\nd")
	esc.Inc()
	var sb strings.Builder
	r.WritePrometheus(&sb)
	if !strings.Contains(sb.String(), `x="a\"b\\c\nd"`) {
		t.Fatalf("label not escaped:\n%s", sb.String())
	}
}

func TestRegistrySnapshot(t *testing.T) {
	r := NewRegistry()
	r.Counter("snap_total", "", "k", "v").Add(7)
	r.Histogram("snap_seconds", "", []float64{1}).Observe(0.25)
	snap := r.Snapshot()
	if got := snap[`snap_total{k="v"}`]; got != 7 {
		t.Fatalf("counter snapshot = %v", got)
	}
	if got := snap["snap_seconds_count"]; got != 1 {
		t.Fatalf("histogram count snapshot = %v", got)
	}
	if got := snap["snap_seconds_sum"]; got != 0.25 {
		t.Fatalf("histogram sum snapshot = %v", got)
	}
}

func TestNilMetricsAreInert(t *testing.T) {
	var c *Counter
	var g *Gauge
	var h *Histogram
	var r *Registry
	c.Inc()
	g.Set(1)
	g.Add(1)
	h.Observe(1)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("nil metrics accumulated values")
	}
	if r.Counter("x", "") != nil || r.Gauge("x", "") != nil || r.Histogram("x", "", nil) != nil {
		t.Fatal("nil registry returned metrics")
	}
	if r.Snapshot() != nil {
		t.Fatal("nil registry snapshot non-nil")
	}
	if err := r.WritePrometheus(&strings.Builder{}); err != nil {
		t.Fatal(err)
	}
}

func TestMetricsFold(t *testing.T) {
	r := NewRegistry()
	m := NewMetrics(r)
	b := NewBus(m)
	b.Publish(Event{Type: TypeStage, Stage: "frontend", Disposition: DispComputed, DurationNs: 2_000_000})
	b.Publish(Event{Type: TypeStage, Stage: "point", Disposition: DispMem, DurationNs: 1_000})
	b.Publish(Event{Type: TypeTier, Tier: "mem", Op: "hit"})
	b.Publish(Event{Type: TypeTier, Tier: "disk", Op: "backfill"})
	b.Publish(Event{Type: TypeJob, Op: "submitted"})
	b.Publish(Event{Type: TypeSim, Cycles: 100,
		SimInsnsPacked: 40, SimInsnsBoundary: 12, SimInsnsWide: 30, SimInsnsLane: 0})
	b.Publish(Event{Type: TypeSim, Cycles: 50, SimInsnsPacked: 2})
	// Unknown label values take the fallback path.
	b.Publish(Event{Type: TypeStage, Stage: "exotic", Disposition: "weird", DurationNs: 1})
	b.Publish(Event{Type: TypeTier, Tier: "l4", Op: "hit"})

	var sb strings.Builder
	r.WritePrometheus(&sb)
	out := sb.String()
	for _, want := range []string{
		`sparkgo_stage_latency_seconds_count{disposition="computed",stage="frontend"} 1`,
		`sparkgo_stage_latency_seconds_count{disposition="mem",stage="point"} 1`,
		`sparkgo_stage_latency_seconds_count{disposition="weird",stage="exotic"} 1`,
		`sparkgo_cache_tier_ops_total{op="hit",tier="mem"} 1`,
		`sparkgo_cache_tier_ops_total{op="backfill",tier="disk"} 1`,
		`sparkgo_cache_tier_ops_total{op="hit",tier="l4"} 1`,
		`sparkgo_jobs_total{event="submitted"} 1`,
		"sparkgo_sim_cycles_count 2",
		`sparkgo_sim_insns_total{class="packed"} 42`,
		`sparkgo_sim_insns_total{class="boundary"} 12`,
		`sparkgo_sim_insns_total{class="wide"} 30`,
		`sparkgo_sim_insns_total{class="lane"} 0`,
		"sparkgo_events_published_total 9",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
	if t.Failed() {
		t.Logf("full exposition:\n%s", out)
	}
}
