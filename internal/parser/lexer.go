// Package parser implements the frontend for the sparkgo behavioral
// description language: the ANSI-C subset that the Spark paper's listings
// use (fixed-width integer scalars, booleans, one-dimensional arrays,
// if/for/while, functions), extended with explicit bit-width type names
// (uint4, int12, ...) and a "#bound N" directive asserting the maximum trip
// count of a data-dependent while loop (needed to fully unroll the Fig 16
// natural form of the ILD).
package parser

import (
	"fmt"
	"strings"
)

// TokKind classifies tokens.
type TokKind int

const (
	TokEOF TokKind = iota
	TokIdent
	TokNumber
	TokPunct
	TokDirective // #word
	TokKeyword
)

var keywords = map[string]bool{
	"if": true, "else": true, "for": true, "while": true,
	"return": true, "true": true, "false": true,
}

// Token is one lexical token. For TokNumber, Val holds the parsed value.
// For TokDirective, Text holds the directive word (without '#').
type Token struct {
	Kind TokKind
	Text string
	Val  int64
	Line int
	Col  int
}

func (t Token) String() string {
	switch t.Kind {
	case TokEOF:
		return "end of input"
	case TokNumber:
		return fmt.Sprintf("number %d", t.Val)
	case TokDirective:
		return "#" + t.Text
	default:
		return fmt.Sprintf("%q", t.Text)
	}
}

// Lexer splits source text into tokens.
type Lexer struct {
	src  string
	pos  int
	line int
	col  int
}

// NewLexer creates a lexer over src.
func NewLexer(src string) *Lexer {
	return &Lexer{src: src, line: 1, col: 1}
}

// Error is a frontend error carrying source position.
type Error struct {
	Line, Col int
	Msg       string
}

func (e *Error) Error() string {
	return fmt.Sprintf("%d:%d: %s", e.Line, e.Col, e.Msg)
}

func (lx *Lexer) errf(format string, args ...any) error {
	return &Error{Line: lx.line, Col: lx.col, Msg: fmt.Sprintf(format, args...)}
}

func (lx *Lexer) peekByte() byte {
	if lx.pos >= len(lx.src) {
		return 0
	}
	return lx.src[lx.pos]
}

func (lx *Lexer) byteAt(off int) byte {
	if lx.pos+off >= len(lx.src) {
		return 0
	}
	return lx.src[lx.pos+off]
}

func (lx *Lexer) advance() byte {
	c := lx.src[lx.pos]
	lx.pos++
	if c == '\n' {
		lx.line++
		lx.col = 1
	} else {
		lx.col++
	}
	return c
}

func (lx *Lexer) skipSpaceAndComments() error {
	for lx.pos < len(lx.src) {
		c := lx.peekByte()
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			lx.advance()
		case c == '/' && lx.byteAt(1) == '/':
			for lx.pos < len(lx.src) && lx.peekByte() != '\n' {
				lx.advance()
			}
		case c == '/' && lx.byteAt(1) == '*':
			lx.advance()
			lx.advance()
			closed := false
			for lx.pos < len(lx.src) {
				if lx.peekByte() == '*' && lx.byteAt(1) == '/' {
					lx.advance()
					lx.advance()
					closed = true
					break
				}
				lx.advance()
			}
			if !closed {
				return lx.errf("unterminated block comment")
			}
		default:
			return nil
		}
	}
	return nil
}

func isIdentStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isIdentPart(c byte) bool { return isIdentStart(c) || (c >= '0' && c <= '9') }

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

func isHexDigit(c byte) bool {
	return isDigit(c) || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F')
}

// multi-byte punctuators, longest first so maximal munch works.
var puncts = []string{
	"<<=", ">>=",
	"==", "!=", "<=", ">=", "&&", "||", "<<", ">>",
	"+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "++", "--",
	"+", "-", "*", "/", "%", "&", "|", "^", "~", "!",
	"<", ">", "=", "(", ")", "{", "}", "[", "]", ";", ",", "?", ":",
}

// Next returns the next token.
func (lx *Lexer) Next() (Token, error) {
	if err := lx.skipSpaceAndComments(); err != nil {
		return Token{}, err
	}
	tok := Token{Line: lx.line, Col: lx.col}
	if lx.pos >= len(lx.src) {
		tok.Kind = TokEOF
		return tok, nil
	}
	c := lx.peekByte()
	switch {
	case c == '#':
		lx.advance()
		start := lx.pos
		for lx.pos < len(lx.src) && isIdentPart(lx.peekByte()) {
			lx.advance()
		}
		tok.Kind = TokDirective
		tok.Text = lx.src[start:lx.pos]
		if tok.Text == "" {
			return tok, lx.errf("empty directive")
		}
		return tok, nil
	case isIdentStart(c):
		start := lx.pos
		for lx.pos < len(lx.src) && isIdentPart(lx.peekByte()) {
			lx.advance()
		}
		tok.Text = lx.src[start:lx.pos]
		if keywords[tok.Text] {
			tok.Kind = TokKeyword
		} else {
			tok.Kind = TokIdent
		}
		return tok, nil
	case isDigit(c):
		return lx.number()
	case c == '\'':
		// character literal, e.g. 'a'
		lx.advance()
		if lx.pos >= len(lx.src) {
			return tok, lx.errf("unterminated character literal")
		}
		ch := lx.advance()
		if ch == '\\' {
			if lx.pos >= len(lx.src) {
				return tok, lx.errf("unterminated escape")
			}
			esc := lx.advance()
			switch esc {
			case 'n':
				ch = '\n'
			case 't':
				ch = '\t'
			case '0':
				ch = 0
			case '\\', '\'':
				ch = esc
			default:
				return tok, lx.errf("unknown escape \\%c", esc)
			}
		}
		if lx.peekByte() != '\'' {
			return tok, lx.errf("unterminated character literal")
		}
		lx.advance()
		tok.Kind = TokNumber
		tok.Val = int64(ch)
		tok.Text = fmt.Sprintf("%d", tok.Val)
		return tok, nil
	default:
		rest := lx.src[lx.pos:]
		for _, p := range puncts {
			if strings.HasPrefix(rest, p) {
				for range p {
					lx.advance()
				}
				tok.Kind = TokPunct
				tok.Text = p
				return tok, nil
			}
		}
		return tok, lx.errf("unexpected character %q", string(c))
	}
}

func (lx *Lexer) number() (Token, error) {
	tok := Token{Kind: TokNumber, Line: lx.line, Col: lx.col}
	start := lx.pos
	base := 10
	if lx.peekByte() == '0' && (lx.byteAt(1) == 'x' || lx.byteAt(1) == 'X') {
		base = 16
		lx.advance()
		lx.advance()
		for lx.pos < len(lx.src) && (isHexDigit(lx.peekByte()) || lx.peekByte() == '_') {
			lx.advance()
		}
	} else if lx.peekByte() == '0' && (lx.byteAt(1) == 'b' || lx.byteAt(1) == 'B') {
		base = 2
		lx.advance()
		lx.advance()
		for lx.pos < len(lx.src) && (lx.peekByte() == '0' || lx.peekByte() == '1' || lx.peekByte() == '_') {
			lx.advance()
		}
	} else {
		for lx.pos < len(lx.src) && (isDigit(lx.peekByte()) || lx.peekByte() == '_') {
			lx.advance()
		}
	}
	text := lx.src[start:lx.pos]
	tok.Text = text
	digits := strings.ReplaceAll(text, "_", "")
	if base == 16 {
		digits = digits[2:]
	} else if base == 2 {
		digits = digits[2:]
	}
	if digits == "" {
		return tok, lx.errf("malformed number %q", text)
	}
	var v uint64
	for i := 0; i < len(digits); i++ {
		d := digits[i]
		var dv uint64
		switch {
		case d >= '0' && d <= '9':
			dv = uint64(d - '0')
		case d >= 'a' && d <= 'f':
			dv = uint64(d-'a') + 10
		case d >= 'A' && d <= 'F':
			dv = uint64(d-'A') + 10
		default:
			return tok, lx.errf("bad digit %q in number", string(d))
		}
		if dv >= uint64(base) {
			return tok, lx.errf("digit %q out of range for base %d", string(d), base)
		}
		nv := v*uint64(base) + dv
		if nv < v {
			return tok, lx.errf("integer literal %q overflows", text)
		}
		v = nv
	}
	tok.Val = int64(v)
	if isIdentStart(lx.peekByte()) {
		return tok, lx.errf("identifier character immediately after number")
	}
	return tok, nil
}

// LexAll tokenizes the entire input (testing helper).
func LexAll(src string) ([]Token, error) {
	lx := NewLexer(src)
	var toks []Token
	for {
		t, err := lx.Next()
		if err != nil {
			return toks, err
		}
		toks = append(toks, t)
		if t.Kind == TokEOF {
			return toks, nil
		}
	}
}
