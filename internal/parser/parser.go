package parser

import (
	"fmt"
	"strconv"
	"strings"

	"sparkgo/internal/ir"
)

// Parse parses a behavioral description into an IR program. name becomes
// the program name (used for the RTL entity name).
//
// The accepted language is the C subset of the paper's listings:
//
//	uint8 B[19];                      // globals: the block's ports/state
//	uint4 CalculateLength(uint8 i) {  // functions
//	  uint4 lc1;                      // declarations (with optional init)
//	  lc1 = 1 + ((B[i] >> 6) & 1);    // assignments, full C expressions
//	  if (...) { ... } else { ... }   // conditionals
//	  for (i = 0; i < 4; i = i + 1)   // counted loops
//	  #bound 16
//	  while (...) { ... }             // bounded data-dependent loops
//	  return lc1;
//	}
//
// plus compound assignment (+=, -=, ...), ++/--, ternary ?:, hex/binary
// literals, and explicit-width types int1..int64 / uint1..uint64 with the
// aliases int=int32, uint=uint32, byte=uint8, and labels ("L1: for ...").
func Parse(name, src string) (*ir.Program, error) {
	toks, err := LexAll(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks, prog: ir.NewProgram(name)}
	if err := p.collectSignatures(); err != nil {
		return nil, err
	}
	if err := p.parseProgram(); err != nil {
		return nil, err
	}
	if err := ir.Validate(p.prog); err != nil {
		return nil, fmt.Errorf("parse: post-validate: %w", err)
	}
	return p.prog, nil
}

// MustParse is Parse that panics on error (tests and generators).
func MustParse(name, src string) *ir.Program {
	p, err := Parse(name, src)
	if err != nil {
		panic(err)
	}
	return p
}

type parser struct {
	toks []Token
	pos  int
	prog *ir.Program

	fn     *ir.Func // function being parsed
	scopes []map[string]*ir.Var
	labels int
}

func (p *parser) errf(t Token, format string, args ...any) error {
	return &Error{Line: t.Line, Col: t.Col, Msg: fmt.Sprintf(format, args...)}
}

func (p *parser) peek() Token { return p.toks[p.pos] }
func (p *parser) at(off int) Token {
	if p.pos+off >= len(p.toks) {
		return p.toks[len(p.toks)-1]
	}
	return p.toks[p.pos+off]
}
func (p *parser) next() Token {
	t := p.toks[p.pos]
	if t.Kind != TokEOF {
		p.pos++
	}
	return t
}

func (p *parser) accept(text string) bool {
	t := p.peek()
	if (t.Kind == TokPunct || t.Kind == TokKeyword) && t.Text == text {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expect(text string) (Token, error) {
	t := p.peek()
	if (t.Kind == TokPunct || t.Kind == TokKeyword) && t.Text == text {
		p.pos++
		return t, nil
	}
	return t, p.errf(t, "expected %q, found %s", text, t)
}

// typeFromName resolves a type name, or nil if the identifier is not a type.
func typeFromName(s string) *ir.Type {
	switch s {
	case "void":
		return ir.Void
	case "bool":
		return ir.Bool
	case "int":
		return ir.I32
	case "uint":
		return ir.U32
	case "byte", "char":
		return ir.U8
	}
	parseWidth := func(prefix string, signed bool) *ir.Type {
		if !strings.HasPrefix(s, prefix) {
			return nil
		}
		n, err := strconv.Atoi(s[len(prefix):])
		if err != nil || n < 1 || n > 64 {
			return nil
		}
		if signed {
			return ir.Int(n)
		}
		return ir.UInt(n)
	}
	if t := parseWidth("uint", false); t != nil {
		return t
	}
	if t := parseWidth("int", true); t != nil {
		return t
	}
	return nil
}

// peekType reports whether the token at offset off starts a type name.
func (p *parser) peekType(off int) *ir.Type {
	t := p.at(off)
	if t.Kind != TokIdent {
		return nil
	}
	return typeFromName(t.Text)
}

// --- Phase 1: collect function signatures so calls may forward-reference ---

func (p *parser) collectSignatures() error {
	save := p.pos
	defer func() { p.pos = save }()
	for p.peek().Kind != TokEOF {
		typ := p.peekType(0)
		if typ == nil {
			return p.errf(p.peek(), "expected type at top level, found %s", p.peek())
		}
		p.next()
		nameTok := p.next()
		if nameTok.Kind != TokIdent {
			return p.errf(nameTok, "expected name after type, found %s", nameTok)
		}
		if p.peek().Text == "(" && p.peek().Kind == TokPunct {
			// Function: parse parameter list, then skip body.
			p.next()
			f := ir.NewFunc(nameTok.Text, typ)
			for !p.accept(")") {
				pt := p.peekType(0)
				if pt == nil {
					return p.errf(p.peek(), "expected parameter type, found %s", p.peek())
				}
				p.next()
				pn := p.next()
				if pn.Kind != TokIdent {
					return p.errf(pn, "expected parameter name, found %s", pn)
				}
				prm := &ir.Var{Name: pn.Text, Type: pt, IsParam: true}
				f.Params = append(f.Params, prm)
				f.Locals = append(f.Locals, prm)
				if !p.accept(",") && p.peek().Text != ")" {
					return p.errf(p.peek(), "expected ',' or ')' in parameter list")
				}
			}
			if p.prog.Func(f.Name) != nil {
				return p.errf(nameTok, "function %s redefined", f.Name)
			}
			p.prog.AddFunc(f)
			if _, err := p.expect("{"); err != nil {
				return err
			}
			depth := 1
			for depth > 0 {
				t := p.next()
				if t.Kind == TokEOF {
					return p.errf(t, "unbalanced braces in function %s", f.Name)
				}
				if t.Kind == TokPunct {
					if t.Text == "{" {
						depth++
					} else if t.Text == "}" {
						depth--
					}
				}
			}
		} else {
			// Global declaration: skip to ';'.
			for {
				t := p.next()
				if t.Kind == TokEOF {
					return p.errf(t, "missing ';' after global %s", nameTok.Text)
				}
				if t.Kind == TokPunct && t.Text == ";" {
					break
				}
			}
		}
	}
	return nil
}

// --- Phase 2: full parse ---

func (p *parser) parseProgram() error {
	for p.peek().Kind != TokEOF {
		typ := p.peekType(0)
		if typ == nil {
			return p.errf(p.peek(), "expected type at top level, found %s", p.peek())
		}
		if p.at(2).Kind == TokPunct && p.at(2).Text == "(" {
			if err := p.parseFunc(); err != nil {
				return err
			}
		} else {
			if err := p.parseGlobal(typ); err != nil {
				return err
			}
		}
	}
	return nil
}

func (p *parser) parseGlobal(typ *ir.Type) error {
	p.next() // type
	nameTok := p.next()
	if nameTok.Kind != TokIdent {
		return p.errf(nameTok, "expected global name, found %s", nameTok)
	}
	if p.prog.Global(nameTok.Text) != nil {
		return p.errf(nameTok, "global %s redefined", nameTok.Text)
	}
	if p.accept("[") {
		szTok := p.next()
		if szTok.Kind != TokNumber {
			return p.errf(szTok, "expected array size, found %s", szTok)
		}
		if szTok.Val < 1 || szTok.Val > 1<<20 {
			return p.errf(szTok, "array size %d out of range", szTok.Val)
		}
		if _, err := p.expect("]"); err != nil {
			return err
		}
		typ = ir.Array(typ, int(szTok.Val))
	}
	if typ.IsVoid() {
		return p.errf(nameTok, "global %s cannot be void", nameTok.Text)
	}
	p.prog.NewGlobal(nameTok.Text, typ)
	_, err := p.expect(";")
	return err
}

func (p *parser) parseFunc() error {
	p.next() // return type (already recorded in phase 1)
	nameTok := p.next()
	f := p.prog.Func(nameTok.Text)
	if f == nil {
		return p.errf(nameTok, "internal: function %s missing prototype", nameTok.Text)
	}
	// Skip the parameter list (recorded in phase 1).
	if _, err := p.expect("("); err != nil {
		return err
	}
	depth := 1
	for depth > 0 {
		t := p.next()
		if t.Kind == TokEOF {
			return p.errf(t, "unbalanced parens")
		}
		if t.Kind == TokPunct {
			if t.Text == "(" {
				depth++
			} else if t.Text == ")" {
				depth--
			}
		}
	}
	p.fn = f
	p.scopes = []map[string]*ir.Var{{}}
	for _, prm := range f.Params {
		p.scopes[0][prm.Name] = prm
	}
	if _, err := p.expect("{"); err != nil {
		return err
	}
	body, err := p.parseBlockBody()
	if err != nil {
		return err
	}
	f.Body = body
	p.fn = nil
	p.scopes = nil
	return nil
}

// --- scopes ---

func (p *parser) pushScope() { p.scopes = append(p.scopes, map[string]*ir.Var{}) }
func (p *parser) popScope()  { p.scopes = p.scopes[:len(p.scopes)-1] }

func (p *parser) lookupVar(name string) *ir.Var {
	for i := len(p.scopes) - 1; i >= 0; i-- {
		if v, ok := p.scopes[i][name]; ok {
			return v
		}
	}
	return p.prog.Global(name)
}

// declareVar introduces a variable in the innermost scope, renaming it if
// the name is already taken elsewhere in the function (all locals live in
// one flat per-function namespace after parsing).
func (p *parser) declareVar(tok Token, name string, typ *ir.Type) (*ir.Var, error) {
	if _, ok := p.scopes[len(p.scopes)-1][name]; ok {
		return nil, p.errf(tok, "%s redeclared in this scope", name)
	}
	unique := name
	for i := 2; p.fn.Lookup(unique) != nil; i++ {
		unique = fmt.Sprintf("%s__%d", name, i)
	}
	v := p.fn.NewLocal(unique, typ)
	p.scopes[len(p.scopes)-1][name] = v
	return v, nil
}

// --- statements ---

func (p *parser) parseBlockBody() (*ir.Block, error) {
	b := &ir.Block{}
	p.pushScope()
	defer p.popScope()
	for {
		t := p.peek()
		if t.Kind == TokPunct && t.Text == "}" {
			p.next()
			return b, nil
		}
		if t.Kind == TokEOF {
			return nil, p.errf(t, "missing '}'")
		}
		s, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		if s != nil {
			b.Stmts = append(b.Stmts, s)
		}
	}
}

func (p *parser) parseStmt() (ir.Stmt, error) {
	t := p.peek()

	// #bound N directive: applies to the following while statement.
	if t.Kind == TokDirective {
		if t.Text != "bound" {
			return nil, p.errf(t, "unknown directive #%s", t.Text)
		}
		p.next()
		nTok := p.next()
		if nTok.Kind != TokNumber || nTok.Val < 1 {
			return nil, p.errf(nTok, "#bound requires a positive count")
		}
		s, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		w, ok := s.(*ir.WhileStmt)
		if !ok {
			return nil, p.errf(t, "#bound must precede a while loop")
		}
		w.Bound = int(nTok.Val)
		return w, nil
	}

	// Label: "ident : (for|while)".
	if t.Kind == TokIdent && p.at(1).Kind == TokPunct && p.at(1).Text == ":" &&
		p.at(2).Kind == TokKeyword && (p.at(2).Text == "for" || p.at(2).Text == "while") {
		label := p.next().Text
		p.next() // ':'
		s, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		switch l := s.(type) {
		case *ir.ForStmt:
			l.Label = label
		case *ir.WhileStmt:
			l.Label = label
		}
		return s, nil
	}

	switch {
	case t.Kind == TokKeyword && t.Text == "if":
		return p.parseIf()
	case t.Kind == TokKeyword && t.Text == "for":
		return p.parseFor()
	case t.Kind == TokKeyword && t.Text == "while":
		return p.parseWhile()
	case t.Kind == TokKeyword && t.Text == "return":
		return p.parseReturn()
	case t.Kind == TokPunct && t.Text == "{":
		p.next()
		return p.parseBlockBody()
	case t.Kind == TokPunct && t.Text == ";":
		p.next()
		return nil, nil
	}

	// Declaration?
	if typ := p.peekType(0); typ != nil && p.at(1).Kind == TokIdent {
		return p.parseDecl(typ)
	}

	// Assignment or call statement.
	return p.parseSimpleStmt()
}

func (p *parser) parseDecl(typ *ir.Type) (ir.Stmt, error) {
	p.next() // type
	nameTok := p.next()
	if typ.IsVoid() {
		return nil, p.errf(nameTok, "variable %s cannot be void", nameTok.Text)
	}
	declType := typ
	if p.peek().Text == "[" && p.peek().Kind == TokPunct {
		p.next()
		szTok := p.next()
		if szTok.Kind != TokNumber || szTok.Val < 1 {
			return nil, p.errf(szTok, "expected array size")
		}
		if _, err := p.expect("]"); err != nil {
			return nil, err
		}
		declType = ir.Array(typ, int(szTok.Val))
	}
	v, err := p.declareVar(nameTok, nameTok.Text, declType)
	if err != nil {
		return nil, err
	}
	var init ir.Stmt
	if p.accept("=") {
		if declType.IsArray() {
			return nil, p.errf(nameTok, "array initializers are not supported")
		}
		rhs, err := p.parseAssignRHS()
		if err != nil {
			return nil, err
		}
		init = p.mkAssign(ir.V(v), rhs)
	}
	if _, err := p.expect(";"); err != nil {
		return nil, err
	}
	return init, nil
}

// mkAssign builds an assignment, keeping call RHS uncast (the call result
// type must equal the LHS type; enforced here).
func (p *parser) mkAssign(lhs ir.LValue, rhs ir.Expr) ir.Stmt {
	if c, ok := rhs.(*ir.CallExpr); ok {
		return ir.AssignRaw(lhs, c)
	}
	return ir.Assign(lhs, rhs)
}

// parseAssignRHS parses an expression that may be a bare call (the only
// position where calls are allowed).
func (p *parser) parseAssignRHS() (ir.Expr, error) {
	return p.parseExpr()
}

func (p *parser) parseIf() (ir.Stmt, error) {
	p.next() // if
	if _, err := p.expect("("); err != nil {
		return nil, err
	}
	cond, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(")"); err != nil {
		return nil, err
	}
	thenBlk, err := p.parseStmtAsBlock()
	if err != nil {
		return nil, err
	}
	var elseBlk *ir.Block
	if p.accept("else") {
		elseBlk, err = p.parseStmtAsBlock()
		if err != nil {
			return nil, err
		}
	}
	return ir.If(p.truthy(cond), thenBlk, elseBlk), nil
}

func (p *parser) parseStmtAsBlock() (*ir.Block, error) {
	if p.accept("{") {
		return p.parseBlockBody()
	}
	s, err := p.parseStmt()
	if err != nil {
		return nil, err
	}
	if s == nil {
		return &ir.Block{}, nil
	}
	if b, ok := s.(*ir.Block); ok {
		return b, nil
	}
	return ir.NewBlock(s), nil
}

func (p *parser) parseFor() (ir.Stmt, error) {
	p.next() // for
	if _, err := p.expect("("); err != nil {
		return nil, err
	}
	p.pushScope()
	defer p.popScope()
	var init, post *ir.AssignStmt
	if !p.accept(";") {
		// Optional declaration in the init clause.
		var s ir.Stmt
		var err error
		if typ := p.peekType(0); typ != nil && p.at(1).Kind == TokIdent {
			s, err = p.parseDecl(typ) // consumes ';'
		} else {
			s, err = p.parseAssignOnly()
			if err == nil {
				_, err = p.expect(";")
			}
		}
		if err != nil {
			return nil, err
		}
		a, ok := s.(*ir.AssignStmt)
		if !ok && s != nil {
			return nil, p.errf(p.peek(), "for-init must be an assignment")
		}
		init = a
	}
	cond, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(";"); err != nil {
		return nil, err
	}
	if p.peek().Text != ")" {
		s, err := p.parseAssignOnly()
		if err != nil {
			return nil, err
		}
		a, ok := s.(*ir.AssignStmt)
		if !ok {
			return nil, p.errf(p.peek(), "for-post must be an assignment")
		}
		post = a
	}
	if _, err := p.expect(")"); err != nil {
		return nil, err
	}
	body, err := p.parseStmtAsBlock()
	if err != nil {
		return nil, err
	}
	p.labels++
	return &ir.ForStmt{Init: init, Cond: p.truthy(cond), Post: post, Body: body,
		Label: fmt.Sprintf("%s.%d", p.fn.Name, p.labels)}, nil
}

func (p *parser) parseWhile() (ir.Stmt, error) {
	p.next() // while
	if _, err := p.expect("("); err != nil {
		return nil, err
	}
	cond, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(")"); err != nil {
		return nil, err
	}
	body, err := p.parseStmtAsBlock()
	if err != nil {
		return nil, err
	}
	p.labels++
	return &ir.WhileStmt{Cond: p.truthy(cond), Body: body,
		Label: fmt.Sprintf("%s.%d", p.fn.Name, p.labels)}, nil
}

func (p *parser) parseReturn() (ir.Stmt, error) {
	t := p.next() // return
	if p.accept(";") {
		if !p.fn.Ret.IsVoid() {
			return nil, p.errf(t, "missing return value in %s", p.fn.Name)
		}
		return &ir.ReturnStmt{}, nil
	}
	e, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(";"); err != nil {
		return nil, err
	}
	if p.fn.Ret.IsVoid() {
		return nil, p.errf(t, "value return from void function %s", p.fn.Name)
	}
	return &ir.ReturnStmt{Val: ir.Cast(e, p.fn.Ret)}, nil
}

// parseSimpleStmt parses "lvalue op= expr ;", "lvalue++ ;", or "call(...) ;".
func (p *parser) parseSimpleStmt() (ir.Stmt, error) {
	s, err := p.parseAssignOnly()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(";"); err != nil {
		return nil, err
	}
	return s, nil
}

var compoundOps = map[string]ir.BinOp{
	"+=": ir.OpAdd, "-=": ir.OpSub, "*=": ir.OpMul, "/=": ir.OpDiv, "%=": ir.OpRem,
	"&=": ir.OpAnd, "|=": ir.OpOr, "^=": ir.OpXor, "<<=": ir.OpShl, ">>=": ir.OpShr,
}

// parseAssignOnly parses an assignment or call without the trailing ';'.
func (p *parser) parseAssignOnly() (ir.Stmt, error) {
	t := p.peek()
	if t.Kind != TokIdent {
		return nil, p.errf(t, "expected statement, found %s", t)
	}
	// Call statement?
	if p.at(1).Kind == TokPunct && p.at(1).Text == "(" && typeFromName(t.Text) == nil {
		if p.prog.Func(t.Text) != nil {
			call, err := p.parseCall()
			if err != nil {
				return nil, err
			}
			return &ir.ExprStmt{Call: call}, nil
		}
	}
	lhs, err := p.parseLValue()
	if err != nil {
		return nil, err
	}
	op := p.peek()
	_, isCompound := compoundOps[op.Text]
	switch {
	case op.Kind == TokPunct && op.Text == "=":
		p.next()
		rhs, err := p.parseAssignRHS()
		if err != nil {
			return nil, err
		}
		return p.mkAssign(lhs, rhs), nil
	case op.Kind == TokPunct && isCompound:
		p.next()
		rhs, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		read := ir.CloneExpr(lhs, nil)
		return ir.Assign(lhs, p.mkBin(compoundOps[op.Text], read, rhs)), nil
	case op.Kind == TokPunct && (op.Text == "++" || op.Text == "--"):
		p.next()
		bop := ir.OpAdd
		if op.Text == "--" {
			bop = ir.OpSub
		}
		read := ir.CloneExpr(lhs, nil)
		one := ir.C(1, lhs.Type())
		return ir.Assign(lhs, p.mkBin(bop, read, one)), nil
	}
	return nil, p.errf(op, "expected assignment operator, found %s", op)
}

func (p *parser) parseLValue() (ir.LValue, error) {
	t := p.next()
	v := p.lookupVar(t.Text)
	if v == nil {
		return nil, p.errf(t, "undeclared variable %s", t.Text)
	}
	if p.peek().Kind == TokPunct && p.peek().Text == "[" {
		if !v.Type.IsArray() {
			return nil, p.errf(t, "%s is not an array", t.Text)
		}
		p.next()
		idx, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect("]"); err != nil {
			return nil, err
		}
		return ir.Idx(v, idx), nil
	}
	if v.Type.IsArray() {
		return nil, p.errf(t, "array %s must be indexed", t.Text)
	}
	return ir.V(v), nil
}

// --- expressions (precedence climbing) ---

// truthy converts an integer expression to a boolean condition (C's
// "nonzero is true"); boolean expressions pass through.
func (p *parser) truthy(e ir.Expr) ir.Expr {
	if e.Type().IsBool() {
		return e
	}
	return ir.Bin(ir.OpNe, e, ir.C(0, e.Type()))
}

// mkBin builds a binary expression, narrowing constant operands into the
// other operand's type when the value fits (keeps hardware widths tight:
// "b & 0x3" on a uint8 stays 8 bits wide instead of widening to 32).
func (p *parser) mkBin(op ir.BinOp, l, r ir.Expr) ir.Expr {
	if op.IsLogical() {
		return ir.Bin(op, p.truthy(l), p.truthy(r))
	}
	lc, lIsC := l.(*ir.ConstExpr)
	rc, rIsC := r.(*ir.ConstExpr)
	if rIsC && !lIsC && l.Type().IsInt() && fitsIn(rc.Val, l.Type()) {
		r = ir.C(rc.Val, l.Type())
	} else if lIsC && !rIsC && r.Type().IsInt() && fitsIn(lc.Val, r.Type()) && op != ir.OpShl && op != ir.OpShr {
		l = ir.C(lc.Val, r.Type())
	}
	if l.Type().IsBool() && !op.IsLogical() && !op.IsComparison() {
		l = ir.Cast(l, ir.U1)
	}
	if r.Type().IsBool() && !op.IsLogical() && !op.IsComparison() {
		r = ir.Cast(r, ir.U1)
	}
	if op.IsComparison() {
		// Comparing bool against an int constant: normalize.
		if l.Type().IsBool() && !r.Type().IsBool() {
			l = ir.Cast(l, ir.U1)
		}
		if r.Type().IsBool() && !l.Type().IsBool() {
			r = ir.Cast(r, ir.U1)
		}
	}
	return ir.Bin(op, l, r)
}

func fitsIn(v int64, t *ir.Type) bool {
	return v >= t.MinValue() && v <= t.MaxValue()
}

func (p *parser) parseExpr() (ir.Expr, error) { return p.parseTernary() }

func (p *parser) parseTernary() (ir.Expr, error) {
	cond, err := p.parseBinary(0)
	if err != nil {
		return nil, err
	}
	if !p.accept("?") {
		return cond, nil
	}
	thenE, err := p.parseTernary()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(":"); err != nil {
		return nil, err
	}
	elseE, err := p.parseTernary()
	if err != nil {
		return nil, err
	}
	return ir.Sel(p.truthy(cond), thenE, elseE), nil
}

// binary operator precedence table (higher binds tighter).
var binPrec = map[string]int{
	"||": 1, "&&": 2,
	"|": 3, "^": 4, "&": 5,
	"==": 6, "!=": 6,
	"<": 7, "<=": 7, ">": 7, ">=": 7,
	"<<": 8, ">>": 8,
	"+": 9, "-": 9,
	"*": 10, "/": 10, "%": 10,
}

var binOpOf = map[string]ir.BinOp{
	"||": ir.OpLOr, "&&": ir.OpLAnd,
	"|": ir.OpOr, "^": ir.OpXor, "&": ir.OpAnd,
	"==": ir.OpEq, "!=": ir.OpNe,
	"<": ir.OpLt, "<=": ir.OpLe, ">": ir.OpGt, ">=": ir.OpGe,
	"<<": ir.OpShl, ">>": ir.OpShr,
	"+": ir.OpAdd, "-": ir.OpSub,
	"*": ir.OpMul, "/": ir.OpDiv, "%": ir.OpRem,
}

func (p *parser) parseBinary(minPrec int) (ir.Expr, error) {
	lhs, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		if t.Kind != TokPunct {
			return lhs, nil
		}
		prec, ok := binPrec[t.Text]
		if !ok || prec < minPrec {
			return lhs, nil
		}
		p.next()
		rhs, err := p.parseBinary(prec + 1)
		if err != nil {
			return nil, err
		}
		lhs = p.mkBin(binOpOf[t.Text], lhs, rhs)
	}
}

func (p *parser) parseUnary() (ir.Expr, error) {
	t := p.peek()
	if t.Kind == TokPunct {
		switch t.Text {
		case "-":
			p.next()
			x, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			if c, ok := x.(*ir.ConstExpr); ok {
				return ir.C(-c.Val, widenForNeg(c.Typ)), nil
			}
			return ir.Un(ir.OpNeg, x), nil
		case "~":
			p.next()
			x, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			return ir.Un(ir.OpNot, x), nil
		case "!":
			p.next()
			x, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			return ir.Un(ir.OpLNot, p.truthy(x)), nil
		case "(":
			// Cast "(type) expr" or grouping.
			if typ := p.peekType(1); typ != nil && p.at(2).Kind == TokPunct && p.at(2).Text == ")" {
				p.next()
				p.next()
				p.next()
				x, err := p.parseUnary()
				if err != nil {
					return nil, err
				}
				return ir.Cast(x, typ), nil
			}
			p.next()
			x, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(")"); err != nil {
				return nil, err
			}
			return x, nil
		case "+":
			p.next()
			return p.parseUnary()
		}
	}
	return p.parsePrimary()
}

// widenForNeg picks the type of a negated literal: negating an unsigned
// literal yields a signed type wide enough to hold the result.
func widenForNeg(t *ir.Type) *ir.Type {
	if t.IsBool() {
		return ir.Int(2)
	}
	if t.Signed {
		return t
	}
	w := t.Bits + 1
	if w > 64 {
		w = 64
	}
	return ir.Int(w)
}

// literalType picks the narrowest comfortable default type for a literal:
// int32 when it fits (C's default), otherwise the minimal unsigned width.
func literalType(v int64) *ir.Type {
	if v >= -(1<<31) && v < 1<<31 {
		return ir.I32
	}
	bits := 64
	for b := 32; b < 64; b++ {
		if v < 1<<uint(b) {
			bits = b + 1
			break
		}
	}
	return ir.UInt(bits)
}

func (p *parser) parsePrimary() (ir.Expr, error) {
	t := p.peek()
	switch {
	case t.Kind == TokNumber:
		p.next()
		return ir.C(t.Val, literalType(t.Val)), nil
	case t.Kind == TokKeyword && t.Text == "true":
		p.next()
		return ir.CBool(true), nil
	case t.Kind == TokKeyword && t.Text == "false":
		p.next()
		return ir.CBool(false), nil
	case t.Kind == TokIdent:
		// Call?
		if p.at(1).Kind == TokPunct && p.at(1).Text == "(" {
			return p.parseCall()
		}
		p.next()
		v := p.lookupVar(t.Text)
		if v == nil {
			return nil, p.errf(t, "undeclared variable %s", t.Text)
		}
		if p.peek().Kind == TokPunct && p.peek().Text == "[" {
			if !v.Type.IsArray() {
				return nil, p.errf(t, "%s is not an array", t.Text)
			}
			p.next()
			idx, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect("]"); err != nil {
				return nil, err
			}
			return ir.Idx(v, idx), nil
		}
		if v.Type.IsArray() {
			return nil, p.errf(t, "array %s must be indexed", t.Text)
		}
		return ir.V(v), nil
	}
	return nil, p.errf(t, "expected expression, found %s", t)
}

func (p *parser) parseCall() (*ir.CallExpr, error) {
	nameTok := p.next()
	f := p.prog.Func(nameTok.Text)
	if f == nil {
		return nil, p.errf(nameTok, "call to undefined function %s", nameTok.Text)
	}
	if _, err := p.expect("("); err != nil {
		return nil, err
	}
	var args []ir.Expr
	for !p.accept(")") {
		a, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		args = append(args, a)
		if !p.accept(",") && p.peek().Text != ")" {
			return nil, p.errf(p.peek(), "expected ',' or ')' in call to %s", nameTok.Text)
		}
	}
	if len(args) != len(f.Params) {
		return nil, p.errf(nameTok, "call to %s: %d args, want %d", nameTok.Text, len(args), len(f.Params))
	}
	for i, a := range args {
		args[i] = ir.Cast(a, f.Params[i].Type)
	}
	return &ir.CallExpr{Name: f.Name, F: f, Args: args}, nil
}
