package parser

import (
	"strings"
	"testing"

	"sparkgo/internal/interp"
	"sparkgo/internal/ir"
)

func TestLexBasics(t *testing.T) {
	toks, err := LexAll("x = 0x1F + 0b101 - 42; // comment\n/* block */ y")
	if err != nil {
		t.Fatal(err)
	}
	var kinds []TokKind
	var texts []string
	for _, tk := range toks {
		kinds = append(kinds, tk.Kind)
		texts = append(texts, tk.Text)
	}
	want := []string{"x", "=", "0x1F", "+", "0b101", "-", "42", ";", "y", ""}
	if len(toks) != len(want) {
		t.Fatalf("got %d tokens %v, want %d", len(toks), texts, len(want))
	}
	if toks[2].Val != 31 || toks[4].Val != 5 || toks[6].Val != 42 {
		t.Errorf("literal values: %d %d %d", toks[2].Val, toks[4].Val, toks[6].Val)
	}
	if toks[len(toks)-1].Kind != TokEOF {
		t.Error("missing EOF token")
	}
}

func TestLexDirective(t *testing.T) {
	toks, err := LexAll("#bound 16")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Kind != TokDirective || toks[0].Text != "bound" {
		t.Errorf("directive token = %+v", toks[0])
	}
	if toks[1].Kind != TokNumber || toks[1].Val != 16 {
		t.Errorf("bound value token = %+v", toks[1])
	}
}

func TestLexMaximalMunch(t *testing.T) {
	toks, err := LexAll("a <<= b >> c >= d == e")
	if err != nil {
		t.Fatal(err)
	}
	var ops []string
	for _, tk := range toks {
		if tk.Kind == TokPunct {
			ops = append(ops, tk.Text)
		}
	}
	want := []string{"<<=", ">>", ">=", "=="}
	if strings.Join(ops, " ") != strings.Join(want, " ") {
		t.Errorf("ops = %v, want %v", ops, want)
	}
}

func TestLexErrors(t *testing.T) {
	for _, src := range []string{"0x", "/* unterminated", "@", "1abc"} {
		if _, err := LexAll(src); err == nil {
			t.Errorf("LexAll(%q): expected error", src)
		}
	}
}

const miniSrc = `
uint8 out;
uint8 in;

void main() {
  uint8 x;
  x = in + 1;
  if (x > 10) {
    out = x - 10;
  } else {
    out = x;
  }
}
`

func TestParseMini(t *testing.T) {
	p, err := Parse("mini", miniSrc)
	if err != nil {
		t.Fatal(err)
	}
	if p.Global("out") == nil || p.Global("in") == nil {
		t.Fatal("globals missing")
	}
	m := p.Main()
	if m == nil {
		t.Fatal("main missing")
	}
	if ir.CountIfs(m) != 1 {
		t.Errorf("ifs = %d, want 1", ir.CountIfs(m))
	}
}

func TestParseTypes(t *testing.T) {
	p := MustParse("t", `
uint4 a;
int12 b;
bool c;
byte d;
uint e;
int f;
void main() { a = 1; }
`)
	checks := map[string]*ir.Type{
		"a": ir.UInt(4), "b": ir.Int(12), "c": ir.Bool,
		"d": ir.UInt(8), "e": ir.UInt(32), "f": ir.Int(32),
	}
	for name, want := range checks {
		g := p.Global(name)
		if g == nil || !g.Type.Equal(want) {
			t.Errorf("global %s: got %v, want %v", name, g, want)
		}
	}
}

func TestParseRejectsBadPrograms(t *testing.T) {
	bad := map[string]string{
		"undeclared var":    `void main() { x = 1; }`,
		"redeclared":        `void main() { uint8 x; uint8 x; }`,
		"undefined func":    `void main() { uint8 x; x = f(); }`,
		"arity mismatch":    `uint8 f(uint8 a) { return a; } void main() { uint8 x; x = f(); }`,
		"array as scalar":   `uint8 a[4]; void main() { a = 1; }`,
		"scalar indexed":    `uint8 a; void main() { a[0] = 1; }`,
		"void variable":     `void main() { void x; }`,
		"missing semicolon": `void main() { uint8 x; x = 1 }`,
		"bad directive":     `void main() { #frob 3 while (true) {} }`,
		"bound non-while":   `void main() { uint8 x; #bound 4 x = 1; }`,
		"global redefined":  "uint8 g; uint8 g;\nvoid main() {}",
	}
	for name, src := range bad {
		if _, err := Parse("bad", src); err == nil {
			t.Errorf("%s: expected parse error", name)
		}
	}
}

func TestParseCompoundAssignAndIncrement(t *testing.T) {
	p := MustParse("c", `
uint8 g;
void main() {
  g += 3;
  g++;
  g <<= 1;
}
`)
	env := interp.NewEnv(p)
	env.SetScalar(p.Global("g"), 1)
	if _, err := interp.New(p).RunMain(env); err != nil {
		t.Fatal(err)
	}
	// (1+3+1)<<1 = 10
	if got := env.Scalar(p.Global("g")); got != 10 {
		t.Errorf("g = %d, want 10", got)
	}
}

func TestParseForLoop(t *testing.T) {
	p := MustParse("loop", `
uint16 sum;
uint8 n;
void main() {
  uint8 i;
  sum = 0;
  for (i = 0; i < 10; i++) {
    sum += i;
  }
}
`)
	env := interp.NewEnv(p)
	if _, err := interp.New(p).RunMain(env); err != nil {
		t.Fatal(err)
	}
	if got := env.Scalar(p.Global("sum")); got != 45 {
		t.Errorf("sum = %d, want 45", got)
	}
}

func TestParseWhileWithBound(t *testing.T) {
	p := MustParse("w", `
uint8 g;
void main() {
  uint8 x;
  x = 0;
  #bound 8
  while (x < 5) {
    x += 1;
  }
  g = x;
}
`)
	var w *ir.WhileStmt
	ir.WalkStmts(p.Main().Body, func(s ir.Stmt) bool {
		if ws, ok := s.(*ir.WhileStmt); ok {
			w = ws
		}
		return true
	})
	if w == nil || w.Bound != 8 {
		t.Fatalf("while bound not recorded: %+v", w)
	}
}

func TestParseTernaryAndLogical(t *testing.T) {
	p := MustParse("t", `
uint8 g;
uint8 a;
uint8 b;
void main() {
  g = (a > b && a > 10) ? a : b;
}
`)
	env := interp.NewEnv(p)
	env.SetScalar(p.Global("a"), 20)
	env.SetScalar(p.Global("b"), 5)
	if _, err := interp.New(p).RunMain(env); err != nil {
		t.Fatal(err)
	}
	if got := env.Scalar(p.Global("g")); got != 20 {
		t.Errorf("g = %d, want 20", got)
	}
}

func TestParseCallsAndForwardReference(t *testing.T) {
	p := MustParse("fwd", `
uint8 g;
void main() {
  g = helper(3);
}
uint8 helper(uint8 x) {
  return x + 1;
}
`)
	env := interp.NewEnv(p)
	if _, err := interp.New(p).RunMain(env); err != nil {
		t.Fatal(err)
	}
	if got := env.Scalar(p.Global("g")); got != 4 {
		t.Errorf("g = %d, want 4", got)
	}
}

func TestParseScopeShadowing(t *testing.T) {
	p := MustParse("scope", `
uint8 g;
void main() {
  uint8 x;
  x = 1;
  if (x == 1) {
    uint8 x2;
    x2 = 40;
    {
      uint8 inner;
      inner = 2;
      g = x2 + inner;
    }
  }
}
`)
	env := interp.NewEnv(p)
	if _, err := interp.New(p).RunMain(env); err != nil {
		t.Fatal(err)
	}
	if got := env.Scalar(p.Global("g")); got != 42 {
		t.Errorf("g = %d, want 42", got)
	}
}

func TestParseConstNarrowing(t *testing.T) {
	// "b & 3" on a uint8 should stay 8 bits wide, not widen to 32.
	p := MustParse("narrow", `
uint8 b;
uint8 g;
void main() {
  g = b & 3;
}
`)
	a := p.Main().Body.Stmts[0].(*ir.AssignStmt)
	rhs := a.RHS
	if c, ok := rhs.(*ir.CastExpr); ok {
		rhs = c.X
	}
	if w := rhs.Type().Width(); w != 8 {
		t.Errorf("b & 3 width = %d, want 8 (type %s)", w, rhs.Type())
	}
}

func TestParseCastExpr(t *testing.T) {
	p := MustParse("cast", `
uint16 g;
uint8 b;
void main() {
  g = (uint16)b << 4;
}
`)
	env := interp.NewEnv(p)
	env.SetScalar(p.Global("b"), 0xAB)
	if _, err := interp.New(p).RunMain(env); err != nil {
		t.Fatal(err)
	}
	if got := env.Scalar(p.Global("g")); got != 0xAB0 {
		t.Errorf("g = %#x, want 0xab0", got)
	}
}

// Round trip: Print(Parse(src)) must parse again to a program that prints
// identically (fixed point after one round).
func TestPrintParseRoundTrip(t *testing.T) {
	srcs := []string{miniSrc, `
uint8 buf[8];
uint8 out;
uint8 f(uint8 i) {
  uint8 v;
  v = buf[i];
  return v + 1;
}
void main() {
  uint8 i;
  out = 0;
  for (i = 0; i < 8; i = i + 1) {
    out = f(i);
  }
}
`}
	for n, src := range srcs {
		p1, err := Parse("rt", src)
		if err != nil {
			t.Fatalf("case %d: %v", n, err)
		}
		printed1 := ir.Print(p1)
		p2, err := Parse("rt", printed1)
		if err != nil {
			t.Fatalf("case %d: reparse failed: %v\nsource:\n%s", n, err, printed1)
		}
		printed2 := ir.Print(p2)
		if printed1 != printed2 {
			t.Errorf("case %d: round trip not stable:\n--- first ---\n%s\n--- second ---\n%s",
				n, printed1, printed2)
		}
	}
}
