// Package pass turns the coordinated transformations of package transform
// into a named, composable pass pipeline — the substrate both the
// synthesizer (internal/core) and the design-space exploration engine
// (internal/explore) drive. It provides:
//
//   - a registry of named pass factories ("inline", "speculate", "unroll",
//     "constprop", ...) so pass lists can be expressed as plain strings in
//     options, synthesis scripts, and exploration configs;
//   - a Pipeline that iterates a pass list to a fixed point while
//     recording per-pass statistics (runs, changes, wall time);
//   - the preset plans of the paper's two regimes (microprocessor-block
//     and classical-ASIC) with toggles for the ablation axes A1–A4.
//
// The paper's thesis is that these transformations only pay off in
// coordination; making every pass individually nameable and toggleable is
// what lets the exploration engine sweep orderings and subsets instead of
// replaying one hard-wired script.
package pass

import (
	"fmt"
	"time"

	"sparkgo/internal/ir"
	"sparkgo/internal/transform"
)

// DefaultMaxRounds bounds fixed-point iteration when a Pipeline does not
// set its own limit (the synthesizer's historical default).
const DefaultMaxRounds = 6

// Stat records the cumulative behavior of one pass across a Pipeline run:
// how often it executed, how often it changed the program, and how much
// wall time it consumed. The exploration engine reports these to show
// where synthesis time goes.
type Stat struct {
	Name     string
	Runs     int
	Changes  int
	Duration time.Duration
}

// Pipeline applies a pass list in order, repeating the whole sequence
// until no pass reports a change or MaxRounds is exhausted.
type Pipeline struct {
	Passes []transform.Pass
	// MaxRounds bounds fixed-point iteration; 0 means DefaultMaxRounds.
	// 1 runs the sequence exactly once (no iteration).
	MaxRounds int
	// Observer, when non-nil, is called after every pass execution with
	// the pass name and whether it changed the program. The synthesizer
	// uses this to snapshot per-stage metrics.
	Observer func(pass string, changed bool, p *ir.Program)

	stats  []Stat
	index  map[string]int
	rounds int
	fixed  bool
}

// New builds a pipeline over already-constructed passes.
func New(passes ...transform.Pass) *Pipeline {
	return &Pipeline{Passes: passes}
}

// FromSpecs builds a pipeline from registry spec strings (see Build).
func FromSpecs(specs []string) (*Pipeline, error) {
	passes, err := BuildAll(specs)
	if err != nil {
		return nil, err
	}
	return &Pipeline{Passes: passes}, nil
}

// Run executes the pipeline on p to a fixed point. Statistics accumulate
// across calls; use a fresh Pipeline per program for per-run numbers.
func (pl *Pipeline) Run(p *ir.Program) error {
	rounds := pl.MaxRounds
	if rounds <= 0 {
		rounds = DefaultMaxRounds
	}
	pl.fixed = false
	pl.rounds = 0
	for round := 0; round < rounds; round++ {
		pl.rounds++
		any := false
		for _, pass := range pl.Passes {
			start := time.Now()
			changed, err := pass.Run(p)
			pl.record(pass.Name(), changed, time.Since(start))
			if err != nil {
				return fmt.Errorf("pass %s: %w", pass.Name(), err)
			}
			if pl.Observer != nil {
				pl.Observer(pass.Name(), changed, p)
			}
			any = any || changed
		}
		if !any {
			pl.fixed = true
			return nil
		}
	}
	return nil
}

func (pl *Pipeline) record(name string, changed bool, d time.Duration) {
	if pl.index == nil {
		pl.index = map[string]int{}
	}
	i, ok := pl.index[name]
	if !ok {
		i = len(pl.stats)
		pl.index[name] = i
		pl.stats = append(pl.stats, Stat{Name: name})
	}
	s := &pl.stats[i]
	s.Runs++
	if changed {
		s.Changes++
	}
	s.Duration += d
}

// Stats returns per-pass statistics in first-execution order.
func (pl *Pipeline) Stats() []Stat {
	out := make([]Stat, len(pl.stats))
	copy(out, pl.stats)
	return out
}

// Rounds reports how many rounds the last Run executed.
func (pl *Pipeline) Rounds() int { return pl.rounds }

// Fixed reports whether the last Run reached a fixed point (a full round
// in which no pass changed the program) before exhausting MaxRounds.
func (pl *Pipeline) Fixed() bool { return pl.fixed }
