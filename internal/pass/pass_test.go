package pass_test

import (
	"fmt"
	"reflect"
	"testing"

	"sparkgo/internal/ild"
	"sparkgo/internal/ir"
	"sparkgo/internal/parser"
	"sparkgo/internal/pass"
	"sparkgo/internal/testutil"
)

// fig2Source is the Op1/Op2 loop of paper Fig 2.
const fig2Source = `
uint8 in1[8];
uint8 r1[8];
uint8 r2[8];
void main() {
  uint8 i;
  for (i = 0; i < 8; i++) {
    r1[i] = in1[i] + 3;
    r2[i] = r1[i] ^ in1[i];
  }
}
`

// fig4Source is the conditional listing of paper Fig 4.
const fig4Source = `
uint8 a;
uint8 b;
uint8 c;
uint8 d;
uint8 e;
bool cond;
uint8 f;
void main() {
  uint8 t1;
  uint8 t2;
  uint8 t3;
  t1 = a + b;
  if (cond) {
    t2 = t1;
    t3 = c + d;
  } else {
    t2 = e;
    t3 = c - d;
  }
  f = t2 + t3;
}
`

// whileSource exercises normalize-while: a bounded monotone while loop.
const whileSource = `
uint8 acc[8];
uint8 out;
void main() {
  uint8 i;
  uint8 s;
  s = 0;
  i = 0;
  #bound 8
  while (i <= 7) {
    s = s + acc[i];
    i = i + 1;
  }
  out = s;
}
`

// testPrograms returns the example programs the pipeline tests run on:
// the Fig 2 loop, the Fig 4 conditional, the while-form reduction, and
// the full ILD case study (calls + nested conditionals + loops).
func testPrograms(t *testing.T) map[string]func() *ir.Program {
	t.Helper()
	return map[string]func() *ir.Program{
		"fig2":  func() *ir.Program { return parser.MustParse("fig2", fig2Source) },
		"fig4":  func() *ir.Program { return parser.MustParse("fig4", fig4Source) },
		"while": func() *ir.Program { return parser.MustParse("while", whileSource) },
		"ild4":  func() *ir.Program { return ild.Program(4) },
	}
}

// TestPassIdempotentAtFixpoint drives every registered pass alone to a
// fixpoint on every example program and asserts (a) the fixpoint is
// reached within the round bound (no oscillation), (b) one further run
// reports no change (idempotence), and (c) interpreter semantics are
// preserved relative to the untouched program.
func TestPassIdempotentAtFixpoint(t *testing.T) {
	specs := []string{
		"normalize-while", "inline", "drop-uncalled", "speculate",
		"unroll all full", "constprop", "constfold", "copyprop", "cse", "dce",
	}
	for progName, mk := range testPrograms(t) {
		for _, spec := range specs {
			t.Run(progName+"/"+spec, func(t *testing.T) {
				original := mk()
				work := mk()
				pl, err := pass.FromSpecs([]string{spec})
				if err != nil {
					t.Fatal(err)
				}
				pl.MaxRounds = 32
				if err := pl.Run(work); err != nil {
					t.Fatal(err)
				}
				if !pl.Fixed() {
					t.Fatalf("no fixpoint within %d rounds", pl.MaxRounds)
				}
				p, err := pass.Build(spec)
				if err != nil {
					t.Fatal(err)
				}
				changed, err := p.Run(work)
				if err != nil {
					t.Fatal(err)
				}
				if changed {
					t.Fatalf("pass %s changed the program again after fixpoint", spec)
				}
				if err := ir.Validate(work); err != nil {
					t.Fatalf("transformed program invalid: %v", err)
				}
				if err := testutil.Equivalent(original, work, 25, 11); err != nil {
					t.Fatalf("semantics changed: %v", err)
				}
			})
		}
	}
}

// permutations returns a deterministic set of orderings of specs:
// identity, reversal, and every rotation.
func permutations(specs []string) [][]string {
	var out [][]string
	out = append(out, append([]string(nil), specs...))
	rev := make([]string, len(specs))
	for i, s := range specs {
		rev[len(specs)-1-i] = s
	}
	out = append(out, rev)
	for k := 1; k < len(specs); k++ {
		rot := append(append([]string(nil), specs[k:]...), specs[:k]...)
		out = append(out, rot)
	}
	return out
}

// TestPassOrderPermutationsPreserveSemantics runs reorderings of the full
// microprocessor-block plan over the example programs and asserts every
// ordering preserves interpreter semantics — the property that makes the
// exploration engine's pass-order axis safe to sweep.
func TestPassOrderPermutationsPreserveSemantics(t *testing.T) {
	plan := pass.MicroprocessorPlan(pass.Toggles{})
	for progName, mk := range testPrograms(t) {
		if progName == "while" {
			continue // the plan without normalize-while keeps the loop; still covered below
		}
		for i, specs := range permutations(plan) {
			t.Run(fmt.Sprintf("%s/perm%d", progName, i), func(t *testing.T) {
				original := mk()
				work := mk()
				pl, err := pass.FromSpecs(specs)
				if err != nil {
					t.Fatal(err)
				}
				pl.MaxRounds = 8
				if err := pl.Run(work); err != nil {
					t.Fatal(err)
				}
				if err := ir.Validate(work); err != nil {
					t.Fatalf("transformed program invalid: %v", err)
				}
				if err := testutil.Equivalent(original, work, 20, 5); err != nil {
					t.Fatalf("order %v changed semantics: %v", specs, err)
				}
			})
		}
	}
	// The while program needs normalize-while in the mix; permute the
	// normalizing plan separately.
	norm := pass.MicroprocessorPlan(pass.Toggles{NormalizeWhile: true})
	for i, specs := range permutations(norm) {
		t.Run(fmt.Sprintf("while/perm%d", i), func(t *testing.T) {
			original := parser.MustParse("while", whileSource)
			work := parser.MustParse("while", whileSource)
			pl, err := pass.FromSpecs(specs)
			if err != nil {
				t.Fatal(err)
			}
			pl.MaxRounds = 8
			if err := pl.Run(work); err != nil {
				t.Fatal(err)
			}
			if err := testutil.Equivalent(original, work, 20, 5); err != nil {
				t.Fatalf("order %v changed semantics: %v", specs, err)
			}
		})
	}
}

// TestPipelineStats checks per-pass accounting: every pass in the plan is
// recorded, runs equal the executed rounds, and changes never exceed runs.
func TestPipelineStats(t *testing.T) {
	p := ild.Program(4)
	pl, err := pass.FromSpecs(pass.MicroprocessorPlan(pass.Toggles{}))
	if err != nil {
		t.Fatal(err)
	}
	if err := pl.Run(p); err != nil {
		t.Fatal(err)
	}
	stats := pl.Stats()
	if len(stats) != len(pl.Passes) {
		t.Fatalf("stats for %d passes, want %d", len(stats), len(pl.Passes))
	}
	if pl.Rounds() < 1 {
		t.Fatalf("rounds = %d", pl.Rounds())
	}
	changedAny := false
	for _, s := range stats {
		if s.Runs != pl.Rounds() {
			t.Errorf("pass %s: runs = %d, want %d", s.Name, s.Runs, pl.Rounds())
		}
		if s.Changes > s.Runs {
			t.Errorf("pass %s: changes %d > runs %d", s.Name, s.Changes, s.Runs)
		}
		changedAny = changedAny || s.Changes > 0
	}
	if !changedAny {
		t.Error("no pass reported a change on the ILD program")
	}
}

// TestPlansMatchLegacyPipelines pins the default plans to the pass
// sequences the synthesizer historically hard-wired.
func TestPlansMatchLegacyPipelines(t *testing.T) {
	got := pass.MicroprocessorPlan(pass.Toggles{})
	want := []string{"inline", "drop-uncalled", "speculate", "unroll all full",
		"constprop", "constfold", "copyprop", "cse", "dce"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("MicroprocessorPlan = %v, want %v", got, want)
	}
	got = pass.ClassicalPlan(pass.Toggles{})
	want = []string{"inline", "drop-uncalled", "constprop", "constfold", "copyprop", "dce"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("ClassicalPlan = %v, want %v", got, want)
	}
	got = pass.MicroprocessorPlan(pass.Toggles{
		NoSpeculation: true, NoCSE: true, NormalizeWhile: true, MaxUnroll: 8,
	})
	want = []string{"normalize-while", "inline", "drop-uncalled",
		"unroll all full 8", "constprop", "constfold", "copyprop", "dce"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("toggled plan = %v, want %v", got, want)
	}
}

// TestRegistryErrors checks spec parsing failures.
func TestRegistryErrors(t *testing.T) {
	bad := []string{
		"", "frobnicate", "unroll", "unroll all", "unroll all 0",
		"unroll all -3", "unroll all 2", "unroll L0 4 9", "cse extra",
	}
	for _, spec := range bad {
		if _, err := pass.Build(spec); err == nil {
			t.Errorf("Build(%q): expected error", spec)
		}
	}
	for _, good := range []string{"unroll all full", "unroll all full 16",
		"unroll L0 4", "normalize", "const-prop"} {
		if _, err := pass.Build(good); err != nil {
			t.Errorf("Build(%q): %v", good, err)
		}
	}
}
