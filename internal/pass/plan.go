package pass

import "fmt"

// Toggles disables individual coordinated transformations in a preset
// plan — the paper's ablation axes (A1–A4) and the knobs the exploration
// engine sweeps.
type Toggles struct {
	NoSpeculation  bool // A1: keep computation inside conditionals
	NoUnroll       bool // A2: keep loops (scheduler falls back to FSM states)
	NoConstProp    bool // A3: keep index variables after unrolling
	NoCSE          bool // keep redundant subexpressions
	NormalizeWhile bool // enable the Fig 16 while→for source transformation
	// MaxUnroll bounds the trip count full unrolling accepts
	// (0 = transform.DefaultMaxUnroll).
	MaxUnroll int
}

// MicroprocessorPlan returns the ordered pass specs of the paper's regime
// (§6): inline everything, speculate, unroll fully, then propagate and
// clean — minus whatever the toggles disable.
func MicroprocessorPlan(t Toggles) []string {
	var specs []string
	if t.NormalizeWhile {
		specs = append(specs, "normalize-while")
	}
	specs = append(specs, "inline", "drop-uncalled")
	if !t.NoSpeculation {
		specs = append(specs, "speculate")
	}
	if !t.NoUnroll {
		if t.MaxUnroll > 0 {
			specs = append(specs, fmt.Sprintf("unroll all full %d", t.MaxUnroll))
		} else {
			specs = append(specs, "unroll all full")
		}
	}
	if !t.NoConstProp {
		specs = append(specs, "constprop")
	}
	specs = append(specs, "constfold", "copyprop")
	if !t.NoCSE {
		specs = append(specs, "cse")
	}
	specs = append(specs, "dce")
	return specs
}

// ClassicalPlan returns the baseline regime's passes: inlining and the
// standard scalar cleanups, but none of the parallelizing code motions
// (no speculation, no unrolling, no CSE — matching the classical-HLS
// contrast the paper draws).
func ClassicalPlan(t Toggles) []string {
	var specs []string
	if t.NormalizeWhile {
		specs = append(specs, "normalize-while")
	}
	specs = append(specs, "inline", "drop-uncalled")
	if !t.NoConstProp {
		specs = append(specs, "constprop")
	}
	specs = append(specs, "constfold", "copyprop", "dce")
	return specs
}
