package pass

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"

	"sparkgo/internal/transform"
)

// Factory constructs a pass from space-separated spec arguments, e.g. the
// "unroll" factory receives ["all", "full"] for the spec "unroll all full".
type Factory func(args []string) (transform.Pass, error)

var (
	regMu    sync.RWMutex
	registry = map[string]Factory{}
)

// Register adds a named factory. Registering an existing name replaces it
// (aliases register the same factory under several names).
func Register(name string, f Factory) {
	regMu.Lock()
	defer regMu.Unlock()
	registry[name] = f
}

// Names returns every registered pass name, sorted.
func Names() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	out := make([]string, 0, len(registry))
	for n := range registry {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Build constructs one pass from a spec string: a pass name followed by
// space-separated arguments, exactly the synthesis-script grammar —
// "inline", "cse", "unroll all full", "unroll L0 4".
func Build(spec string) (transform.Pass, error) {
	fields := strings.Fields(spec)
	if len(fields) == 0 {
		return nil, fmt.Errorf("pass: empty spec")
	}
	regMu.RLock()
	f, ok := registry[fields[0]]
	regMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("pass: unknown pass %q", fields[0])
	}
	p, err := f(fields[1:])
	if err != nil {
		return nil, fmt.Errorf("pass %s: %w", fields[0], err)
	}
	return p, nil
}

// BuildAll resolves an ordered spec list into passes.
func BuildAll(specs []string) ([]transform.Pass, error) {
	out := make([]transform.Pass, 0, len(specs))
	for _, s := range specs {
		p, err := Build(s)
		if err != nil {
			return nil, err
		}
		out = append(out, p)
	}
	return out, nil
}

func noArgs(name string, mk func() transform.Pass) Factory {
	return func(args []string) (transform.Pass, error) {
		if len(args) != 0 {
			return nil, fmt.Errorf("takes no arguments, got %v", args)
		}
		return mk(), nil
	}
}

// buildUnroll parses the script grammar plus an optional trip-count bound:
//
//	unroll all full [maxIter]     fully unroll every loop
//	unroll <label> full           fully unroll one labeled loop
//	unroll <label> <factor>       partial unroll (loop kept)
func buildUnroll(args []string) (transform.Pass, error) {
	if len(args) < 2 || len(args) > 3 {
		return nil, fmt.Errorf("needs <label|all> <full|factor> [max]")
	}
	label, amount := args[0], args[1]
	if amount == "full" {
		maxIter := 0
		if len(args) == 3 {
			m, err := strconv.Atoi(args[2])
			if err != nil || m < 1 {
				return nil, fmt.Errorf("bad unroll bound %q", args[2])
			}
			maxIter = m
		}
		if label == "all" {
			return transform.UnrollFull(nil, maxIter), nil
		}
		return transform.UnrollFull([]string{label}, maxIter), nil
	}
	if len(args) == 3 {
		return nil, fmt.Errorf("bound only applies to full unrolling")
	}
	factor, err := strconv.Atoi(amount)
	if err != nil || factor < 2 {
		return nil, fmt.Errorf("bad unroll factor %q", amount)
	}
	if label == "all" {
		return nil, fmt.Errorf("partial unroll needs a loop label")
	}
	return transform.UnrollBy(label, factor), nil
}

func init() {
	Register("normalize-while", noArgs("normalize-while", transform.NormalizeWhile))
	Register("normalize", noArgs("normalize", transform.NormalizeWhile))
	Register("inline", func(args []string) (transform.Pass, error) {
		if len(args) == 0 {
			return transform.Inline(nil), nil
		}
		return transform.Inline(args), nil
	})
	Register("drop-uncalled", noArgs("drop-uncalled", transform.DropUncalledFuncs))
	Register("speculate", noArgs("speculate", transform.Speculate))
	Register("unroll", buildUnroll)
	for _, alias := range []string{"constprop", "const-prop"} {
		Register(alias, noArgs(alias, transform.ConstProp))
	}
	for _, alias := range []string{"constfold", "const-fold"} {
		Register(alias, noArgs(alias, transform.ConstFold))
	}
	for _, alias := range []string{"copyprop", "copy-prop"} {
		Register(alias, noArgs(alias, transform.CopyProp))
	}
	Register("cse", noArgs("cse", transform.CSE))
	Register("dce", noArgs("dce", transform.DCE))
}
