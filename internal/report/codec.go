package report

import (
	"fmt"

	"sparkgo/internal/wire"
)

// tableTag versions the table wire layout.
const tableTag = "table/1"

// EncodeTable serializes a table losslessly in the deterministic binary
// framing of internal/wire, completing the artifact codec family: every
// layer of the staged flow — program, graph, schedule, netlist, and the
// rendered report — has a byte-stable encoder for disk-backed
// persistence. Tables are plain value structs — title, headers, rows —
// so decode∘encode is the identity, the same contract the stage codecs
// carry. (JSON surfaces like BENCH_explore.json marshal Table directly;
// this codec is for binary stores such as internal/cache.)
func EncodeTable(t *Table) ([]byte, error) {
	e := wire.NewEncoder(256)
	e.Tag(tableTag)
	e.String(t.Title)
	e.Uvarint(uint64(len(t.Headers)))
	for _, h := range t.Headers {
		e.String(h)
	}
	e.Uvarint(uint64(len(t.Rows)))
	for _, row := range t.Rows {
		e.Uvarint(uint64(len(row)))
		for _, cell := range row {
			e.String(cell)
		}
	}
	return e.Data(), nil
}

// DecodeTable reconstructs a table serialized by EncodeTable.
func DecodeTable(data []byte) (*Table, error) {
	d := wire.NewDecoder(data)
	d.Tag(tableTag)
	t := &Table{Title: d.String()}
	if n := d.Len(1); n > 0 {
		t.Headers = make([]string, 0, n)
		for i := 0; i < n && d.Err() == nil; i++ {
			t.Headers = append(t.Headers, d.String())
		}
	}
	if n := d.Len(1); n > 0 {
		t.Rows = make([][]string, 0, n)
		for i := 0; i < n && d.Err() == nil; i++ {
			rn := d.Len(1)
			row := make([]string, 0, rn)
			for j := 0; j < rn && d.Err() == nil; j++ {
				row = append(row, d.String())
			}
			t.Rows = append(t.Rows, row)
		}
	}
	if err := d.Finish(); err != nil {
		return nil, fmt.Errorf("report: decode table: %w", err)
	}
	return t, nil
}
