package report

import (
	"bytes"
	"encoding/gob"
	"fmt"
)

// EncodeTable serializes a table losslessly (gob framing), completing
// the artifact codec family: every layer of the staged flow — program,
// graph, schedule, netlist, and the rendered report — has a gob-stable
// encoder for disk-backed persistence. Tables are plain value structs —
// title, headers, rows — so the encoding is deterministic byte-for-byte
// and decode∘encode is the identity, the same contract the stage
// codecs carry. (JSON surfaces like BENCH_explore.json marshal Table
// directly; this codec is for gob stores such as internal/cache.)
func EncodeTable(t *Table) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(t); err != nil {
		return nil, fmt.Errorf("report: encode table: %w", err)
	}
	return buf.Bytes(), nil
}

// DecodeTable reconstructs a table serialized by EncodeTable.
func DecodeTable(data []byte) (*Table, error) {
	var t Table
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&t); err != nil {
		return nil, fmt.Errorf("report: decode table: %w", err)
	}
	return &t, nil
}
