package report_test

import (
	"bytes"
	"reflect"
	"testing"

	"sparkgo/internal/report"
)

// TestTableCodecRoundTrip: the table codec is lossless and byte-stable,
// the same encode→decode→encode contract the stage-artifact codecs
// carry.
func TestTableCodecRoundTrip(t *testing.T) {
	tbl := report.New("cache statistics", "layer", "hits", "misses")
	tbl.Add("frontend", 12, 3)
	tbl.Add("midend", 7, 0)
	tbl.Add("backend", 0.5, "n/a")

	enc, err := report.EncodeTable(tbl)
	if err != nil {
		t.Fatal(err)
	}
	got, err := report.DecodeTable(enc)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, tbl) {
		t.Fatalf("decoded table differs:\n%v\nvs\n%v", got, tbl)
	}
	if got.String() != tbl.String() || got.CSV() != tbl.CSV() {
		t.Error("decoded table renders differently")
	}
	enc2, err := report.EncodeTable(got)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(enc, enc2) {
		t.Fatalf("table encoding is not a round-trip fixpoint (%d vs %d bytes)", len(enc), len(enc2))
	}
}

// TestTableDecodeGarbage: corrupt bytes error instead of yielding a
// half-decoded table.
func TestTableDecodeGarbage(t *testing.T) {
	if _, err := report.DecodeTable([]byte("not a gob stream")); err == nil {
		t.Fatal("garbage decoded without error")
	}
}
