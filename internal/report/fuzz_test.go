package report

import "testing"

// FuzzDecodeTable pins the table decoder's contract under arbitrary
// input: an error or a table, never a panic, with allocation bounded by
// the bytes actually present (wire.Len guards every row make).
func FuzzDecodeTable(f *testing.F) {
	t := New("seed", "col a", "col b")
	t.Add("x", 1)
	t.Add("y", 2.5)
	seed, err := EncodeTable(t)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(seed)
	if len(seed) > 4 {
		f.Add(seed[:len(seed)/2])
		flip := append([]byte(nil), seed...)
		flip[len(flip)/3] ^= 0x40
		f.Add(flip)
	}
	f.Add(append(append([]byte(nil), seed...), 0xde, 0xad))
	f.Add(append([]byte{0xff, 0xff, 0xff, 0xff, 0x7f}, seed...))
	f.Fuzz(func(t *testing.T, data []byte) {
		tab, err := DecodeTable(data)
		if err != nil {
			return
		}
		if _, err := EncodeTable(tab); err != nil {
			t.Fatalf("decoded table does not re-encode: %v", err)
		}
	})
}
