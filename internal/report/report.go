// Package report renders aligned text tables and CSV for the experiment
// harness (cmd/explore and the benchmarks), so every figure's data prints
// in a stable, diffable format.
package report

import (
	"fmt"
	"strings"
)

// Table is a simple column-aligned text table.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// New creates a table.
func New(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// Add appends a row; values are formatted with %v.
func (t *Table) Add(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.1f", v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.Rows = append(t.Rows, row)
}

// String renders the aligned table.
func (t *Table) String() string {
	width := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		width[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(width) && len(c) > width[i] {
				width[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "== %s ==\n", t.Title)
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", width[i], c)
		}
		b.WriteString("\n")
	}
	line(t.Headers)
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", width[i])
	}
	line(sep)
	for _, r := range t.Rows {
		line(r)
	}
	return b.String()
}

// CSV renders the table as comma-separated values.
func (t *Table) CSV() string {
	var b strings.Builder
	esc := func(s string) string {
		if strings.ContainsAny(s, ",\"\n") {
			return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
		}
		return s
	}
	cols := make([]string, len(t.Headers))
	for i, h := range t.Headers {
		cols[i] = esc(h)
	}
	b.WriteString(strings.Join(cols, ","))
	b.WriteString("\n")
	for _, r := range t.Rows {
		cells := make([]string, len(r))
		for i, c := range r {
			cells[i] = esc(c)
		}
		b.WriteString(strings.Join(cells, ","))
		b.WriteString("\n")
	}
	return b.String()
}
