package report_test

import (
	"strings"
	"testing"

	"sparkgo/internal/report"
)

func TestTableAlignment(t *testing.T) {
	tb := report.New("demo", "name", "value")
	tb.Add("x", 1)
	tb.Add("longer-name", 123456)
	out := tb.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 { // title, header, separator, 2 rows
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "== demo ==") {
		t.Errorf("missing title: %q", lines[0])
	}
	// All data lines align: the value column starts at the same offset.
	h := strings.Index(lines[1], "value")
	r := strings.Index(lines[3], "1")
	if h != r {
		t.Errorf("columns misaligned: header@%d row@%d\n%s", h, r, out)
	}
}

func TestFloatFormatting(t *testing.T) {
	tb := report.New("", "v")
	tb.Add(3.14159)
	if !strings.Contains(tb.String(), "3.1") {
		t.Errorf("float not formatted: %s", tb.String())
	}
}

func TestCSVEscaping(t *testing.T) {
	tb := report.New("t", "a", "b")
	tb.Add(`has,comma`, `has"quote`)
	csv := tb.CSV()
	if !strings.Contains(csv, `"has,comma"`) {
		t.Errorf("comma not escaped: %s", csv)
	}
	if !strings.Contains(csv, `"has""quote"`) {
		t.Errorf("quote not escaped: %s", csv)
	}
	if !strings.HasPrefix(csv, "a,b\n") {
		t.Errorf("missing header: %s", csv)
	}
}
