package rtl

import (
	"fmt"
	"sort"

	"sparkgo/internal/htg"
	"sparkgo/internal/ir"
	"sparkgo/internal/sched"
)

// sortedVars returns the map's variable keys in a stable order — the
// deterministic iteration every HDL-visible walk must use. Names are
// unique among locals and among globals, but a local may shadow a
// global's name, so globals order first on a name tie.
func sortedVars[T any](m map[*ir.Var]T) []*ir.Var {
	out := make([]*ir.Var, 0, len(m))
	for v := range m {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Name != out[j].Name {
			return out[i].Name < out[j].Name
		}
		return out[i].IsGlobal && !out[j].IsGlobal
	})
	return out
}

// Build constructs the RTL module realizing a schedule. The datapath is
// built with the value-tracking ("current value") method: walking each
// state's operations in order while tracking, per variable, the signal
// holding its current value; a conditionally-executed write becomes a
// multiplexer controlled by the block's guard network (the hardware of
// paper Figs 4, 6, 7); values that cross state boundaries become register
// writes. Wire-variables (§3.1.2) never touch a register.
func Build(res *sched.Result) (*Module, error) {
	g := res.G
	m := NewModule(g.Prog.Name)
	m.NumStates = res.NumStates
	b := &builder{m: m, res: res}

	// Architectural storage: globals the design writes are registers;
	// read-only globals are combinational inputs.
	written := map[*ir.Var]bool{}
	for _, op := range g.AllOps() {
		if w := op.Writes(); w != nil {
			written[w] = true
		}
	}
	for _, gv := range g.Prog.SortedGlobals() {
		if gv.Type.IsArray() {
			elems := make([]*Signal, gv.Type.Len)
			for i := range elems {
				name := fmt.Sprintf("%s_%d", gv.Name, i)
				if written[gv] {
					elems[i] = m.Reg(name, gv.Type.Elem, 0)
				} else {
					elems[i] = m.Input(name, gv.Type.Elem)
				}
			}
			m.ArrayPort[gv.Name] = elems
			b.arrSig(gv, elems)
		} else {
			var s *Signal
			if written[gv] {
				s = m.Reg(gv.Name, gv.Type, 0)
			} else {
				s = m.Input(gv.Name, gv.Type)
			}
			m.ScalarPort[gv.Name] = s
			b.homeSig(gv, s)
		}
	}
	// Local registers, in stable name order (VarClass is a map, and the
	// declaration order must not depend on map iteration: the emitted
	// HDL is golden-tested byte for byte).
	locals := make([]*ir.Var, 0, len(res.VarClass))
	for v, cls := range res.VarClass {
		if v.IsGlobal || cls != sched.Register {
			continue
		}
		locals = append(locals, v)
	}
	sort.Slice(locals, func(i, j int) bool { return locals[i].Name < locals[j].Name })
	for _, v := range locals {
		if v.Type.IsArray() {
			elems := make([]*Signal, v.Type.Len)
			for i := range elems {
				elems[i] = m.Reg(fmt.Sprintf("%s_%d", v.Name, i), v.Type.Elem, 0)
			}
			b.arrSig(v, elems)
		} else {
			b.homeSig(v, m.Reg(v.Name, v.Type, 0))
		}
	}
	// Local arrays that stayed wires are still storage: they must be
	// registers unless written and read within one state; for simplicity
	// and correctness, every local array is a register bank.
	for _, v := range g.Fn.Locals {
		if v.Type.IsArray() && b.arrays[v] == nil {
			elems := make([]*Signal, v.Type.Len)
			for i := range elems {
				elems[i] = m.Reg(fmt.Sprintf("%s_%d", v.Name, i), v.Type.Elem, 0)
			}
			b.arrSig(v, elems)
		}
	}
	if g.RetVar != nil {
		if s := b.homes[g.RetVar]; s != nil {
			m.RetSignal = s
		} else {
			// Wire-classified return: promote to register so the
			// environment can read it after done.
			s := m.Reg(g.RetVar.Name, g.RetVar.Type, 0)
			b.homeSig(g.RetVar, s)
			m.RetSignal = s
			b.forceReg[g.RetVar] = true
		}
	}

	for state := 0; state < res.NumStates; state++ {
		if err := b.buildState(state); err != nil {
			return nil, err
		}
	}

	// FSM edges (skip tombstones).
	for _, tr := range res.Transitions {
		if tr.From < 0 {
			continue
		}
		var cond *Signal
		if tr.Cond != nil {
			cond = b.condAtEnd[stateCond{tr.From, tr.Cond}]
			if cond == nil {
				// The condition was not recomputed in this state:
				// it lives in its home (register) signal.
				cond = b.homes[tr.Cond]
			}
			if cond == nil {
				return nil, fmt.Errorf("rtl: transition condition %s has no signal", tr.Cond.Name)
			}
		}
		m.Trans = append(m.Trans, Transition{From: tr.From, Cond: cond,
			CondValue: tr.CondValue, To: tr.To})
	}
	return m, nil
}

type stateCond struct {
	state int
	v     *ir.Var
}

type builder struct {
	m   *Module
	res *sched.Result

	homes    map[*ir.Var]*Signal   // scalar home (reg or input) signal
	arrays   map[*ir.Var][]*Signal // array element home signals
	forceReg map[*ir.Var]bool
	// condAtEnd records, per state, the end-of-state signal of each
	// variable used by a transition condition.
	condAtEnd map[stateCond]*Signal
}

func (b *builder) homeSig(v *ir.Var, s *Signal) {
	if b.homes == nil {
		b.homes = map[*ir.Var]*Signal{}
		b.arrays = map[*ir.Var][]*Signal{}
		b.forceReg = map[*ir.Var]bool{}
		b.condAtEnd = map[stateCond]*Signal{}
	}
	b.homes[v] = s
}

func (b *builder) arrSig(v *ir.Var, elems []*Signal) {
	if b.homes == nil {
		b.homes = map[*ir.Var]*Signal{}
		b.arrays = map[*ir.Var][]*Signal{}
		b.forceReg = map[*ir.Var]bool{}
		b.condAtEnd = map[stateCond]*Signal{}
	}
	b.arrays[v] = elems
}

// buildState wires one state's datapath and register commits.
func (b *builder) buildState(state int) error {
	m := b.m
	cur := map[*ir.Var]*Signal{}
	curArr := map[*ir.Var][]*Signal{}

	valueOf := func(v *ir.Var) *Signal {
		if s, ok := cur[v]; ok {
			return s
		}
		if s, ok := b.homes[v]; ok {
			return s
		}
		// Wire-classified local read before any write: constant zero.
		return m.ConstSignal(0, v.Type)
	}
	elemsOf := func(v *ir.Var) []*Signal {
		if es, ok := curArr[v]; ok {
			return es
		}
		es := b.arrays[v]
		if es == nil {
			return nil
		}
		cp := append([]*Signal{}, es...)
		curArr[v] = cp
		return cp
	}
	operand := func(o htg.Operand) *Signal {
		if o.IsConst {
			return m.ConstSignal(o.Const, o.Typ)
		}
		return valueOf(o.Var)
	}
	guardOf := func(bb *htg.BasicBlock) *Signal {
		var acc *Signal
		for _, gt := range bb.Guard {
			c := valueOf(gt.Cond)
			if !c.Type.IsBool() {
				c = m.Copy(ir.Bool, c)
			}
			if !gt.Value {
				c = m.Not(c)
			}
			if acc == nil {
				acc = c
			} else {
				acc = m.And(acc, c)
			}
		}
		return acc // nil = unguarded
	}

	sequentialMode := b.res.Mode == sched.ModeSequential

	for _, op := range b.res.OpOrder[state] {
		var guard *Signal
		if !sequentialMode {
			guard = guardOf(op.BB)
		}
		switch op.Kind {
		case htg.OpBin, htg.OpUn, htg.OpMux, htg.OpCopy, htg.OpLoad:
			var out *Signal
			t := op.Dst.Type
			switch op.Kind {
			case htg.OpBin:
				a := operand(op.Args[0])
				c := operand(op.Args[1])
				out = m.Bin(op.Bin, binType(op), op.UnsignedOps, a, c)
				out = m.Copy(t, out)
			case htg.OpUn:
				out = m.Copy(t, m.Un(op.Un, t, operand(op.Args[0])))
			case htg.OpMux:
				sel := operand(op.Args[0])
				if !sel.Type.IsBool() {
					sel = m.Copy(ir.Bool, sel)
				}
				out = m.Mux(t, sel, m.Copy(t, operand(op.Args[1])), m.Copy(t, operand(op.Args[2])))
			case htg.OpCopy:
				out = m.Copy(t, operand(op.Args[0]))
			case htg.OpLoad:
				elems := elemsOf(op.Arr)
				if elems == nil {
					return fmt.Errorf("rtl: array %s has no storage", op.Arr.Name)
				}
				if op.Args[0].IsConst {
					idx := op.Args[0].Const
					if idx >= 0 && idx < int64(len(elems)) {
						out = m.Copy(t, elems[idx])
					} else {
						out = m.ConstSignal(0, t)
					}
				} else {
					out = m.Copy(t, m.ArrayRead(op.Arr.Type.Elem, operand(op.Args[0]), elems))
				}
			}
			if guard != nil {
				out = m.Mux(t, guard, out, valueOf(op.Dst))
			}
			cur[op.Dst] = out
		case htg.OpStore:
			elems := elemsOf(op.Arr)
			if elems == nil {
				return fmt.Errorf("rtl: array %s has no storage", op.Arr.Name)
			}
			val := operand(op.Args[1])
			et := op.Arr.Type.Elem
			if op.Args[0].IsConst {
				idx := op.Args[0].Const
				if idx < 0 || idx >= int64(len(elems)) {
					continue // out-of-range store: dropped
				}
				nv := m.Copy(et, val)
				if guard != nil {
					nv = m.Mux(et, guard, nv, elems[idx])
				}
				elems[idx] = nv
			} else {
				idxSig := operand(op.Args[0])
				for k := range elems {
					hit := m.Bin(ir.OpEq, ir.Bool, true, idxSig,
						m.ConstSignal(int64(k), idxSig.Type))
					en := hit
					if guard != nil {
						en = m.And(guard, hit)
					}
					elems[k] = m.Mux(et, en, m.Copy(et, val), elems[k])
				}
			}
			curArr[op.Arr] = elems
		}
	}

	// Commit registers: any register whose current value changed. The
	// commit order is sorted by name so RegWrites — and therefore the
	// emitted HDL — never depend on map iteration.
	for _, v := range sortedVars(cur) {
		s := cur[v]
		home := b.homes[v]
		if home == nil || home.Kind != SigReg {
			continue
		}
		if s != home {
			b.m.RegWrites = append(b.m.RegWrites, RegWrite{Reg: home, State: state, Value: s})
		}
	}
	for _, v := range sortedVars(curArr) {
		elems := curArr[v]
		home := b.arrays[v]
		for i, s := range elems {
			if home[i].Kind == SigReg && s != home[i] {
				b.m.RegWrites = append(b.m.RegWrites,
					RegWrite{Reg: home[i], State: state, Value: s})
			}
		}
	}
	// Record end-of-state condition signals for FSM edges out of this
	// state.
	for _, tr := range b.res.Transitions {
		if tr.From == state && tr.Cond != nil {
			b.condAtEnd[stateCond{state, tr.Cond}] = valueOfEnd(cur, b.homes, tr.Cond, b.m)
		}
	}
	return nil
}

func valueOfEnd(cur map[*ir.Var]*Signal, homes map[*ir.Var]*Signal, v *ir.Var, m *Module) *Signal {
	if s, ok := cur[v]; ok {
		return s
	}
	if s, ok := homes[v]; ok {
		return s
	}
	return m.ConstSignal(0, v.Type)
}

// binType computes the natural result type of a binary op from its operand
// types (matching ir.Bin's typing), so the gate computes at the right
// width before the final Copy narrows or widens to the destination.
func binType(op *htg.Op) *ir.Type {
	lt, rt := op.Args[0].Typ, op.Args[1].Typ
	e := ir.Bin(op.Bin, typedZero(lt), typedZero(rt))
	return e.Type()
}

func typedZero(t *ir.Type) ir.Expr { return ir.C(0, t) }
