package rtl

import (
	"fmt"
	"sort"
	"sync/atomic"

	"sparkgo/internal/ir"
)

// This file is the lossless serialization of RTL modules — the payload
// of the backend artifact cache. Signals are the module's only pointer
// currency: gates, register writes, FSM edges, and the architectural
// port maps all reference them, and both the simulator (rtlsim) and the
// HDL emitters rely on signal pointer identity, so the wire form
// references signals by their position in the Signals slice and the
// decoder interns exactly one *Signal per position. The port maps are
// flattened to name-sorted slices (gob would serialize map iteration
// order, which is random); encode(decode(x)) is byte-identical to x.
// The binary wire framing lives in wirecodec.go; the retired gob
// framing in gobcodec.go is the benchmark baseline.

// moduleDecodes counts DecodeModule calls — the zero-decode revival
// tests assert disk-warm sweeps only pay a backend decode when the
// simulator actually needs the netlist.
var moduleDecodes atomic.Int64

// ModuleDecodeCount reports how many modules have been decoded since
// process start.
func ModuleDecodeCount() int64 { return moduleDecodes.Load() }

type signalCode struct {
	ID    int
	Name  string
	Typ   ir.TypeCode
	Kind  int
	Const int64
	Init  int64
}

type gateCode struct {
	Out         int
	Kind        int
	Bin         int
	Un          int
	UnsignedOps bool
	In          []int
}

type regWriteCode struct {
	Reg   int
	State int
	Value int
}

type rtlTransCode struct {
	From      int
	Cond      int // -1 when unconditional
	CondValue bool
	To        int
}

type scalarPortCode struct {
	Name string
	Sig  int
}

type arrayPortCode struct {
	Name string
	Sigs []int
}

type moduleCode struct {
	Name      string
	NumStates int
	Signals   []signalCode
	Gates     []gateCode
	RegWrites []regWriteCode
	Trans     []rtlTransCode
	// Port maps sorted by name for deterministic bytes.
	ScalarPorts []scalarPortCode
	ArrayPorts  []arrayPortCode
	RetSignal   int // -1 for void designs
	NextID      int
}

// EncodeModule serializes a module losslessly into a self-contained
// byte string, framed by the deterministic binary codec of
// internal/wire. The inverse is DecodeModule.
func EncodeModule(m *Module) ([]byte, error) {
	mc, err := flattenModule(m)
	if err != nil {
		return nil, err
	}
	return encodeModuleWire(mc), nil
}

// flattenModule lowers the module's signal pointer web onto the
// position-interned intermediate form; both framings serialize it.
func flattenModule(m *Module) (*moduleCode, error) {
	mc := moduleCode{Name: m.Name, NumStates: m.NumStates, NextID: m.nextID}
	mc.Signals = make([]signalCode, 0, len(m.Signals))
	sigIndex := make(map[*Signal]int, len(m.Signals))
	for i, s := range m.Signals {
		sigIndex[s] = i
		mc.Signals = append(mc.Signals, signalCode{
			ID: s.ID, Name: s.Name, Typ: ir.EncodeType(s.Type),
			Kind: int(s.Kind), Const: s.Const, Init: s.Init,
		})
	}
	sigRef := func(s *Signal) (int, error) {
		if s == nil {
			return -1, nil
		}
		i, ok := sigIndex[s]
		if !ok {
			return 0, fmt.Errorf("rtl: encode: reference to foreign signal %q", s.Name)
		}
		return i, nil
	}
	totalIn := 0
	for _, g := range m.Gates {
		totalIn += len(g.In)
	}
	inArena := make([]int, 0, totalIn) // one backing array for every gate's input list
	mc.Gates = make([]gateCode, 0, len(m.Gates))
	for _, g := range m.Gates {
		gc := gateCode{Kind: int(g.Kind), Bin: int(g.Bin), Un: int(g.Un),
			UnsignedOps: g.UnsignedOps}
		var err error
		if gc.Out, err = sigRef(g.Out); err != nil {
			return nil, err
		}
		start := len(inArena)
		for _, in := range g.In {
			i, err := sigRef(in)
			if err != nil {
				return nil, err
			}
			inArena = append(inArena, i)
		}
		gc.In = inArena[start:len(inArena):len(inArena)]
		mc.Gates = append(mc.Gates, gc)
	}
	mc.RegWrites = make([]regWriteCode, 0, len(m.RegWrites))
	for _, rw := range m.RegWrites {
		ri, err := sigRef(rw.Reg)
		if err != nil {
			return nil, err
		}
		vi, err := sigRef(rw.Value)
		if err != nil {
			return nil, err
		}
		mc.RegWrites = append(mc.RegWrites, regWriteCode{Reg: ri, State: rw.State, Value: vi})
	}
	mc.Trans = make([]rtlTransCode, 0, len(m.Trans))
	for _, tr := range m.Trans {
		ci, err := sigRef(tr.Cond)
		if err != nil {
			return nil, err
		}
		mc.Trans = append(mc.Trans, rtlTransCode{
			From: tr.From, Cond: ci, CondValue: tr.CondValue, To: tr.To})
	}
	for name, s := range m.ScalarPort {
		i, err := sigRef(s)
		if err != nil {
			return nil, err
		}
		mc.ScalarPorts = append(mc.ScalarPorts, scalarPortCode{Name: name, Sig: i})
	}
	sort.Slice(mc.ScalarPorts, func(i, j int) bool {
		return mc.ScalarPorts[i].Name < mc.ScalarPorts[j].Name
	})
	for name, sigs := range m.ArrayPort {
		pc := arrayPortCode{Name: name}
		for _, s := range sigs {
			i, err := sigRef(s)
			if err != nil {
				return nil, err
			}
			pc.Sigs = append(pc.Sigs, i)
		}
		mc.ArrayPorts = append(mc.ArrayPorts, pc)
	}
	sort.Slice(mc.ArrayPorts, func(i, j int) bool {
		return mc.ArrayPorts[i].Name < mc.ArrayPorts[j].Name
	})
	var err error
	if mc.RetSignal, err = sigRef(m.RetSignal); err != nil {
		return nil, err
	}
	return &mc, nil
}

// DecodeModule reconstructs a module serialized by EncodeModule. Signal
// identity is interned — every reference to one wire position resolves
// to the same *Signal — and the construction-time memo tables (constant
// dedup, gate structural sharing) are rebuilt, so a decoded module is
// indistinguishable from a freshly built one to the simulator, the
// emitters, and further construction alike.
func DecodeModule(data []byte) (*Module, error) {
	moduleDecodes.Add(1)
	mc, err := decodeModuleWire(data)
	if err != nil {
		return nil, fmt.Errorf("rtl: decode: %w", err)
	}
	return rebuildModule(mc)
}

// rebuildModule resolves the flattened form back into a signal-interned
// module, memo tables included.
func rebuildModule(mc *moduleCode) (*Module, error) {
	m := NewModule(mc.Name)
	m.NumStates = mc.NumStates
	m.nextID = mc.NextID
	// Signals and gates are allocated in blocks: one malloc per kind
	// instead of one per object, which matters because decode is the
	// disk-revival hot path and the GC scans what it allocates.
	sigBlock := make([]Signal, len(mc.Signals))
	sigs := make([]*Signal, len(mc.Signals))
	for i, sc := range mc.Signals {
		t, err := ir.DecodeType(sc.Typ)
		if err != nil {
			return nil, fmt.Errorf("rtl: decode: signal %q: %w", sc.Name, err)
		}
		sigBlock[i] = Signal{ID: sc.ID, Name: sc.Name, Type: t,
			Kind: SigKind(sc.Kind), Const: sc.Const, Init: sc.Init}
		sigs[i] = &sigBlock[i]
	}
	m.Signals = sigs
	sigAt := func(i int) (*Signal, error) {
		if i == -1 {
			return nil, nil
		}
		if i < 0 || i >= len(sigs) {
			return nil, fmt.Errorf("rtl: decode: signal reference %d out of range", i)
		}
		return sigs[i], nil
	}
	totalIn := 0
	for _, gc := range mc.Gates {
		totalIn += len(gc.In)
	}
	gateBlock := make([]Gate, len(mc.Gates))
	inArena := make([]*Signal, 0, totalIn)
	m.Gates = make([]*Gate, 0, len(mc.Gates))
	for gi, gc := range mc.Gates {
		g := &gateBlock[gi]
		*g = Gate{Kind: GateKind(gc.Kind), Bin: ir.BinOp(gc.Bin), Un: ir.UnOp(gc.Un),
			UnsignedOps: gc.UnsignedOps}
		var err error
		if g.Out, err = sigAt(gc.Out); err != nil {
			return nil, err
		}
		if g.Out == nil {
			return nil, fmt.Errorf("rtl: decode: gate without output signal")
		}
		start := len(inArena)
		for _, i := range gc.In {
			in, err := sigAt(i)
			if err != nil {
				return nil, err
			}
			if in == nil {
				return nil, fmt.Errorf("rtl: decode: gate with nil input signal")
			}
			inArena = append(inArena, in)
		}
		g.In = inArena[start:len(inArena):len(inArena)]
		m.Gates = append(m.Gates, g)
	}
	for _, rc := range mc.RegWrites {
		reg, err := sigAt(rc.Reg)
		if err != nil {
			return nil, err
		}
		val, err := sigAt(rc.Value)
		if err != nil {
			return nil, err
		}
		if reg == nil || val == nil {
			return nil, fmt.Errorf("rtl: decode: register write with nil signal")
		}
		m.RegWrites = append(m.RegWrites, RegWrite{Reg: reg, State: rc.State, Value: val})
	}
	for _, tc := range mc.Trans {
		cond, err := sigAt(tc.Cond)
		if err != nil {
			return nil, err
		}
		m.Trans = append(m.Trans, Transition{
			From: tc.From, Cond: cond, CondValue: tc.CondValue, To: tc.To})
	}
	for _, pc := range mc.ScalarPorts {
		s, err := sigAt(pc.Sig)
		if err != nil {
			return nil, err
		}
		m.ScalarPort[pc.Name] = s
	}
	for _, pc := range mc.ArrayPorts {
		var elems []*Signal
		for _, i := range pc.Sigs {
			s, err := sigAt(i)
			if err != nil {
				return nil, err
			}
			elems = append(elems, s)
		}
		m.ArrayPort[pc.Name] = elems
	}
	var err error
	if m.RetSignal, err = sigAt(mc.RetSignal); err != nil {
		return nil, err
	}
	// The construction memo tables (constant dedup, structural gate
	// sharing) rebuild lazily on the first ConstSignal/gate call: most
	// decoded modules are simulated or emitted, never extended, and
	// keying every gate eagerly used to dominate decode time.
	m.memoStale = true
	return m, nil
}
