package rtl

import (
	"bytes"
	"encoding/gob"
	"fmt"
)

// The gob framing EncodeModule used before the deterministic wire
// format (internal/wire) replaced it on the artifact hot path. Retained
// as the benchmark baseline; delete once the codec-speed ratchet lands
// in CI.

// EncodeModuleGob serializes m with the retired gob framing over the
// same flattened intermediate form EncodeModule uses.
func EncodeModuleGob(m *Module) ([]byte, error) {
	mc, err := flattenModule(m)
	if err != nil {
		return nil, err
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(mc); err != nil {
		return nil, fmt.Errorf("rtl: encode: %w", err)
	}
	return buf.Bytes(), nil
}

// DecodeModuleGob reconstructs a module serialized by EncodeModuleGob.
func DecodeModuleGob(data []byte) (*Module, error) {
	var mc moduleCode
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&mc); err != nil {
		return nil, fmt.Errorf("rtl: decode: %w", err)
	}
	return rebuildModule(&mc)
}
