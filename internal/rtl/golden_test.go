package rtl_test

import (
	"flag"
	"os"
	"path/filepath"
	"testing"

	"sparkgo/internal/core"
	"sparkgo/internal/parser"
	"sparkgo/internal/rtl"
)

// update regenerates the golden files:
//
//	go test ./internal/rtl -run TestGolden -update
var update = flag.Bool("update", false, "rewrite golden HDL files")

// goldenSource is a small fixed design exercising both emitter paths:
// conditional control (muxes), arithmetic, and a saturation compare.
// It is deliberately tiny so golden diffs stay reviewable.
const goldenSource = `
uint8 a;
uint8 b;
uint8 out;
void main() {
  uint8 diff;
  if (a > b) {
    diff = a - b;
  } else {
    diff = b - a;
  }
  if (diff > 100) {
    diff = 100;
  }
  out = diff;
}
`

// TestGoldenHDL pins the exact VHDL and Verilog emitted for the fixed
// design under both scheduling regimes, so backend refactors cannot
// silently change generated HDL. Run with -update after an intentional
// emitter change and review the diff.
func TestGoldenHDL(t *testing.T) {
	cases := []struct {
		name   string
		preset core.Preset
	}{
		{"absdiff_micro", core.MicroprocessorBlock},
		{"absdiff_classical", core.ClassicalASIC},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			prog, err := parser.Parse("absdiff", goldenSource)
			if err != nil {
				t.Fatal(err)
			}
			res, err := core.Synthesize(prog, core.Options{Preset: tc.preset})
			if err != nil {
				t.Fatal(err)
			}
			for suffix, emit := range map[string]func(*rtl.Module) string{
				".vhd": rtl.EmitVHDL,
				".v":   rtl.EmitVerilog,
			} {
				got := emit(res.Module)
				if again := emit(res.Module); again != got {
					t.Fatalf("%s: emitter is nondeterministic across calls", suffix)
				}
				path := filepath.Join("testdata", tc.name+suffix+".golden")
				if *update {
					if err := os.MkdirAll("testdata", 0o755); err != nil {
						t.Fatal(err)
					}
					if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
						t.Fatal(err)
					}
					continue
				}
				want, err := os.ReadFile(path)
				if err != nil {
					t.Fatalf("missing golden file (run with -update): %v", err)
				}
				if got != string(want) {
					t.Errorf("%s: emitted HDL diverges from %s\n"+
						"regenerate with -update if the change is intentional\ngot:\n%s",
						suffix, path, got)
				}
			}
		})
	}
}

// TestGoldenSynthesisDeterminism re-runs the full flow and checks the
// emitted HDL is bit-identical across syntheses — the property the
// golden files rely on.
func TestGoldenSynthesisDeterminism(t *testing.T) {
	emit := func() (string, string) {
		prog, err := parser.Parse("absdiff", goldenSource)
		if err != nil {
			t.Fatal(err)
		}
		res, err := core.Synthesize(prog, core.Options{Preset: core.MicroprocessorBlock})
		if err != nil {
			t.Fatal(err)
		}
		return rtl.EmitVHDL(res.Module), rtl.EmitVerilog(res.Module)
	}
	vhdl1, verilog1 := emit()
	vhdl2, verilog2 := emit()
	if vhdl1 != vhdl2 {
		t.Error("VHDL emission differs across syntheses")
	}
	if verilog1 != verilog2 {
		t.Error("Verilog emission differs across syntheses")
	}
}
