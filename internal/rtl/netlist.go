// Package rtl models the synthesized register-transfer-level design as a
// signal netlist: combinational gates (operators, multiplexers, array-read
// networks), registers, and a finite-state controller. The netlist is
// built from a schedule (package sched); it can be executed cycle-accurately
// (package rtlsim), measured (critical path and area under the delay
// model), and emitted as VHDL — the paper's output format — or Verilog.
package rtl

import (
	"fmt"
	"strconv"

	"sparkgo/internal/delay"
	"sparkgo/internal/ir"
)

// SigKind classifies signals.
type SigKind int

const (
	// SigInput is an architectural input (a global the design only
	// reads): combinationally available, externally driven.
	SigInput SigKind = iota
	// SigReg is a register output.
	SigReg
	// SigWire is a combinational gate output.
	SigWire
	// SigConst is a constant driver.
	SigConst
)

func (k SigKind) String() string {
	switch k {
	case SigInput:
		return "input"
	case SigReg:
		return "reg"
	case SigWire:
		return "wire"
	case SigConst:
		return "const"
	}
	return "?"
}

// Signal is one named net.
type Signal struct {
	ID   int
	Name string
	Type *ir.Type
	Kind SigKind
	// Const holds the value for SigConst.
	Const int64
	// Init is the reset value for SigReg (locals reset to 0; globals
	// are loaded externally before start).
	Init int64
}

func (s *Signal) String() string { return s.Name }

// GateKind classifies combinational gates.
type GateKind int

const (
	// GateBin: Out = In[0] <Bin> In[1].
	GateBin GateKind = iota
	// GateUn: Out = <Un> In[0].
	GateUn
	// GateMux: Out = In[0] ? In[1] : In[2].
	GateMux
	// GateCopy: Out = In[0] (width conversion; pure wiring).
	GateCopy
	// GateArrayRead: Out = elements[In[0]]; In[1..] are the elements.
	GateArrayRead
)

// Gate is one combinational node. Gates appear in the module in
// topological order (inputs constructed before outputs), so a single
// forward sweep evaluates the netlist.
type Gate struct {
	Out         *Signal
	Kind        GateKind
	Bin         ir.BinOp
	Un          ir.UnOp
	UnsignedOps bool
	In          []*Signal
}

// RegWrite commits Value into Reg at the end of every cycle spent in
// State. Conditional commits are already encoded in Value's mux network.
type RegWrite struct {
	Reg   *Signal
	State int
	Value *Signal
}

// Transition is an FSM edge evaluated at the end of each cycle in state
// From: taken when Cond is nil or Cond's value equals CondValue. Edges are
// tried in order; To == -1 means the design is done.
type Transition struct {
	From      int
	Cond      *Signal
	CondValue bool
	To        int
}

// Module is a complete RTL design.
type Module struct {
	Name      string
	Signals   []*Signal
	Gates     []*Gate
	RegWrites []RegWrite
	Trans     []Transition
	NumStates int

	// Architectural interface: globals by name.
	ScalarPort map[string]*Signal
	ArrayPort  map[string][]*Signal
	// RetSignal is the register holding main's return value (nil for
	// void designs).
	RetSignal *Signal

	nextID int
	consts map[string]*Signal
	memo   map[string]*Signal
	// memoStale marks a decoded module whose consts/memo tables have not
	// been rebuilt yet; ensureMemo fills them on the first construction
	// call, so decode never pays for tables a module may never use.
	memoStale bool

	// Construction arenas: signals and gates are carved from fixed-size
	// chunks instead of allocated one heap object per call — the same
	// block-allocation the codec's rebuildModule uses on decode, applied
	// to the build path the midend re-runs per explored design point.
	// Chunks are never resliced once handed out, so the pointers stay
	// stable for the life of the module.
	sigArena  []Signal
	gateArena []Gate
}

// buildArenaChunk sizes the construction arenas: large enough that a
// typical design carves from a handful of chunks, small enough that an
// abandoned module wastes little.
const buildArenaChunk = 64

// NewModule creates an empty module.
func NewModule(name string) *Module {
	return &Module{
		Name:       name,
		ScalarPort: map[string]*Signal{},
		ArrayPort:  map[string][]*Signal{},
		consts:     map[string]*Signal{},
		memo:       map[string]*Signal{},
	}
}

func (m *Module) newSignal(name string, t *ir.Type, kind SigKind) *Signal {
	if len(m.sigArena) == 0 {
		m.sigArena = make([]Signal, buildArenaChunk)
	}
	s := &m.sigArena[0]
	m.sigArena = m.sigArena[1:]
	s.ID = m.nextID
	s.Name = name
	s.Type = t
	s.Kind = kind
	m.nextID++
	m.Signals = append(m.Signals, s)
	return s
}

// ensureMemo rebuilds the construction memo tables of a decoded module
// so it dedups constants and shares structurally identical gates
// exactly like the original would if it were extended further. Deferred
// to the first construction call because most decoded modules are only
// simulated or emitted.
func (m *Module) ensureMemo() {
	if !m.memoStale {
		return
	}
	m.memoStale = false
	for _, s := range m.Signals {
		if s.Kind == SigConst {
			m.consts[constKey(s.Const, s.Type)] = s
		}
	}
	for _, g := range m.Gates {
		m.memo[gateKey(g.Kind, g.Bin, g.Un, g.UnsignedOps, g.Out.Type, g.In)] = g.Out
	}
}

// ConstSignal returns (deduplicated) a constant driver.
func (m *Module) ConstSignal(val int64, t *ir.Type) *Signal {
	m.ensureMemo()
	val = t.Canon(val)
	key := constKey(val, t)
	if s, ok := m.consts[key]; ok {
		return s
	}
	s := m.newSignal(fmt.Sprintf("const_%d_%s", m.nextID, t), t, SigConst)
	s.Const = val
	m.consts[key] = s
	return s
}

// Input declares an architectural input signal.
func (m *Module) Input(name string, t *ir.Type) *Signal {
	return m.newSignal(name, t, SigInput)
}

// Reg declares a register with the given reset value.
func (m *Module) Reg(name string, t *ir.Type, init int64) *Signal {
	s := m.newSignal(name, t, SigReg)
	s.Init = t.Canon(init)
	return s
}

// gate adds a combinational gate with memoization: structurally identical
// gates share one output signal, which keeps the conditional-commit mux
// networks from exploding (the same guard conjunction is reused by every
// op in a basic block).
func (m *Module) gate(kind GateKind, bin ir.BinOp, un ir.UnOp, unsignedOps bool,
	t *ir.Type, name string, in ...*Signal) *Signal {
	m.ensureMemo()
	key := gateKey(kind, bin, un, unsignedOps, t, in)
	if s, ok := m.memo[key]; ok {
		return s
	}
	out := m.newSignal(fmt.Sprintf("%s_%d", name, m.nextID), t, SigWire)
	if len(m.gateArena) == 0 {
		m.gateArena = make([]Gate, buildArenaChunk)
	}
	g := &m.gateArena[0]
	m.gateArena = m.gateArena[1:]
	*g = Gate{Out: out, Kind: kind, Bin: bin, Un: un, UnsignedOps: unsignedOps, In: in}
	m.Gates = append(m.Gates, g)
	m.memo[key] = out
	return out
}

// appendTypeKey appends a structural rendering of t — kind, width,
// signedness, array shape — distinguishing exactly the types Equal
// distinguishes. The memo keys below are minted once per gate/const on
// the build AND decode hot paths, so they are built with strconv
// appends on a stack buffer; fmt rendering here was the single largest
// cost of reviving a module.
func appendTypeKey(b []byte, t *ir.Type) []byte {
	if t == nil {
		return append(b, '?')
	}
	b = strconv.AppendInt(b, int64(t.Kind), 10)
	switch t.Kind {
	case ir.KindInt:
		b = append(b, ':')
		b = strconv.AppendInt(b, int64(t.Bits), 10)
		if t.Signed {
			b = append(b, 's')
		}
	case ir.KindArray:
		b = append(b, ':')
		b = strconv.AppendInt(b, int64(t.Len), 10)
		b = append(b, ':')
		b = appendTypeKey(b, t.Elem)
	}
	return b
}

// constKey renders the dedup key of a constant driver; the codec
// rebuilds the const table for decoded modules with the same recipe.
func constKey(val int64, t *ir.Type) string {
	b := make([]byte, 0, 32)
	b = strconv.AppendInt(b, val, 10)
	b = append(b, '|')
	b = appendTypeKey(b, t)
	return string(b)
}

// gateKey renders the structural-sharing memo key of a gate; the codec
// rebuilds the memo table for decoded modules with the same recipe.
func gateKey(kind GateKind, bin ir.BinOp, un ir.UnOp, unsignedOps bool,
	t *ir.Type, in []*Signal) string {
	b := make([]byte, 0, 64)
	b = strconv.AppendInt(b, int64(kind), 10)
	b = append(b, '|')
	b = strconv.AppendInt(b, int64(bin), 10)
	b = append(b, '|')
	b = strconv.AppendInt(b, int64(un), 10)
	b = append(b, '|')
	b = strconv.AppendBool(b, unsignedOps)
	b = append(b, '|')
	b = appendTypeKey(b, t)
	for _, s := range in {
		b = append(b, '|')
		b = strconv.AppendInt(b, int64(s.ID), 10)
	}
	return string(b)
}

// Bin adds a binary-operator gate.
func (m *Module) Bin(op ir.BinOp, t *ir.Type, unsignedOps bool, a, b *Signal) *Signal {
	return m.gate(GateBin, op, 0, unsignedOps, t, "b"+opName(op), a, b)
}

// Un adds a unary-operator gate.
func (m *Module) Un(op ir.UnOp, t *ir.Type, x *Signal) *Signal {
	return m.gate(GateUn, 0, op, false, t, "u", x)
}

// Mux adds a 2:1 multiplexer.
func (m *Module) Mux(t *ir.Type, sel, a, b *Signal) *Signal {
	if a == b {
		return a
	}
	return m.gate(GateMux, 0, 0, false, t, "mux", sel, a, b)
}

// Copy adds a width-converting copy (free wiring).
func (m *Module) Copy(t *ir.Type, x *Signal) *Signal {
	if x.Type.Equal(t) {
		return x
	}
	return m.gate(GateCopy, 0, 0, false, t, "cast", x)
}

// ArrayRead adds an element-select network.
func (m *Module) ArrayRead(t *ir.Type, index *Signal, elems []*Signal) *Signal {
	in := append([]*Signal{index}, elems...)
	return m.gate(GateArrayRead, 0, 0, false, t, "aread", in...)
}

// And builds a boolean conjunction (for guard networks).
func (m *Module) And(a, b *Signal) *Signal {
	return m.Bin(ir.OpLAnd, ir.Bool, true, a, b)
}

// Not builds a boolean negation.
func (m *Module) Not(a *Signal) *Signal {
	return m.Un(ir.OpLNot, ir.Bool, a)
}

func opName(op ir.BinOp) string {
	names := map[ir.BinOp]string{
		ir.OpAdd: "add", ir.OpSub: "sub", ir.OpMul: "mul", ir.OpDiv: "div",
		ir.OpRem: "rem", ir.OpAnd: "and", ir.OpOr: "or", ir.OpXor: "xor",
		ir.OpShl: "shl", ir.OpShr: "shr", ir.OpEq: "eq", ir.OpNe: "ne",
		ir.OpLt: "lt", ir.OpLe: "le", ir.OpGt: "gt", ir.OpGe: "ge",
		ir.OpLAnd: "land", ir.OpLOr: "lor",
	}
	return names[op]
}

// Stats summarizes the module under a delay model.
func (m *Module) Stats(dm *delay.Model) delay.Report {
	depth := map[*Signal]float64{}
	for _, g := range m.Gates {
		in := 0.0
		for _, s := range g.In {
			if d := depth[s]; d > in {
				in = d
			}
		}
		depth[g.Out] = in + m.gateDelay(dm, g)
	}
	crit := 0.0
	consider := func(s *Signal) {
		if s == nil {
			return
		}
		if d := depth[s]; d > crit {
			crit = d
		}
	}
	for _, rw := range m.RegWrites {
		consider(rw.Value)
	}
	for _, tr := range m.Trans {
		consider(tr.Cond)
	}
	rep := delay.Report{CriticalPath: crit + dm.RegisterSetup()}
	for _, g := range m.Gates {
		rep.Area += m.gateArea(dm, g)
		switch g.Kind {
		case GateMux, GateArrayRead:
			rep.Muxes++
		case GateBin, GateUn:
			rep.FUs++
		}
	}
	for _, s := range m.Signals {
		if s.Kind == SigReg {
			rep.Registers++
			rep.Area += dm.RegArea(s.Type.Width())
		}
	}
	return rep
}

func (m *Module) gateDelay(dm *delay.Model, g *Gate) float64 {
	switch g.Kind {
	case GateBin:
		return dm.BinOpDelay(g.Bin, g.Out.Type)
	case GateUn:
		return dm.UnOpDelay(g.Un, g.Out.Type)
	case GateMux:
		return dm.MuxDelay(2)
	case GateCopy:
		return dm.CastDelay()
	case GateArrayRead:
		return dm.ArrayReadDelay(len(g.In) - 1)
	}
	return 0
}

func (m *Module) gateArea(dm *delay.Model, g *Gate) float64 {
	switch g.Kind {
	case GateBin:
		return dm.BinOpArea(g.Bin, g.Out.Type)
	case GateUn:
		return dm.UnOpArea(g.Un, g.Out.Type)
	case GateMux:
		return dm.MuxArea(2, g.Out.Type.Width())
	case GateCopy:
		return 0
	case GateArrayRead:
		return dm.MuxArea(len(g.In)-1, g.Out.Type.Width())
	}
	return 0
}
