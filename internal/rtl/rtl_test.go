package rtl_test

import (
	"strings"
	"testing"

	"sparkgo/internal/core"
	"sparkgo/internal/delay"
	"sparkgo/internal/ir"
	"sparkgo/internal/parser"
	"sparkgo/internal/rtl"
)

func synth(t *testing.T, src string, opt core.Options) *core.Result {
	t.Helper()
	p := parser.MustParse("design", src)
	res, err := core.Synthesize(p, opt)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

const condSrc = `
uint8 a;
uint8 b;
uint8 out;
void main() {
  if (a > b) {
    out = a - b;
  } else {
    out = b - a;
  }
}
`

func TestBuildProducesTopologicalGates(t *testing.T) {
	res := synth(t, condSrc, core.Options{})
	defined := map[*rtl.Signal]bool{}
	for _, s := range res.Module.Signals {
		if s.Kind != rtl.SigWire {
			defined[s] = true
		}
	}
	for _, g := range res.Module.Gates {
		for _, in := range g.In {
			if !defined[in] {
				t.Fatalf("gate %s reads undefined signal %s", g.Out.Name, in.Name)
			}
		}
		defined[g.Out] = true
	}
}

func TestBuildPortMapping(t *testing.T) {
	res := synth(t, condSrc, core.Options{})
	m := res.Module
	// a, b are read-only: inputs. out is written: a register port.
	for _, name := range []string{"a", "b"} {
		s, ok := m.ScalarPort[name]
		if !ok || s.Kind != rtl.SigInput {
			t.Errorf("%s should be an input port, got %v", name, s)
		}
	}
	s, ok := m.ScalarPort["out"]
	if !ok || s.Kind != rtl.SigReg {
		t.Errorf("out should be a register port, got %v", s)
	}
}

func TestStatsReasonable(t *testing.T) {
	res := synth(t, condSrc, core.Options{})
	st := res.Module.Stats(delay.Default())
	if st.CriticalPath <= 0 {
		t.Error("critical path must be positive")
	}
	if st.Area <= 0 {
		t.Error("area must be positive")
	}
	if st.Muxes < 1 {
		t.Error("conditional design needs at least one mux")
	}
	if st.Registers < 1 {
		t.Error("output register missing")
	}
}

func TestVHDLStructure(t *testing.T) {
	res := synth(t, condSrc, core.Options{})
	v := rtl.EmitVHDL(res.Module)
	for _, want := range []string{
		"library ieee;",
		"use ieee.numeric_std.all;",
		"entity design_sig is",
		"clk   : in  std_logic;",
		"start : in  std_logic;",
		"done  : out std_logic",
		"a : in  unsigned(7 downto 0)",
		"out_sig_out : out unsigned(7 downto 0)",
		"architecture rtl of design_sig is",
		"process(clk)",
		"rising_edge(clk)",
		"end rtl;",
	} {
		if !strings.Contains(v, want) {
			t.Errorf("VHDL missing %q", want)
		}
	}
	// Balanced structural keywords.
	if strings.Count(v, "case state is") != 1 {
		t.Error("expected exactly one FSM case statement")
	}
	if strings.Count(v, "end case;") != 1 {
		t.Error("unbalanced case/end case")
	}
}

func TestVerilogStructure(t *testing.T) {
	res := synth(t, condSrc, core.Options{})
	v := rtl.EmitVerilog(res.Module)
	for _, want := range []string{
		"module design_sig(",
		"input wire clk,",
		"input wire [7:0] a",
		"output wire [7:0] out_sig_out",
		"always @(posedge clk)",
		"endmodule",
	} {
		if !strings.Contains(v, want) {
			t.Errorf("Verilog missing %q", want)
		}
	}
	if strings.Count(v, "module ") != 1 {
		t.Error("expected exactly one module")
	}
	// Every wire declared must be assigned exactly once.
	for _, line := range strings.Split(v, "\n") {
		line = strings.TrimSpace(line)
		if strings.HasPrefix(line, "wire ") && strings.Contains(line, "]") {
			name := line[strings.LastIndex(line, " ")+1:]
			name = strings.TrimSuffix(name, ";")
			if strings.Count(v, "assign "+name+" =") != 1 {
				t.Errorf("wire %s not assigned exactly once", name)
			}
		}
	}
}

func TestEmittersDeterministic(t *testing.T) {
	res := synth(t, condSrc, core.Options{})
	v1 := rtl.EmitVHDL(res.Module)
	v2 := rtl.EmitVHDL(res.Module)
	if v1 != v2 {
		t.Error("VHDL emission not deterministic")
	}
	g1 := rtl.EmitVerilog(res.Module)
	g2 := rtl.EmitVerilog(res.Module)
	if g1 != g2 {
		t.Error("Verilog emission not deterministic")
	}
}

func TestGateMemoizationDeduplicates(t *testing.T) {
	m := rtl.NewModule("memo")
	a := m.Input("a", ir.U8)
	b := m.Input("b", ir.U8)
	s1 := m.Bin(ir.OpAdd, ir.U8, true, a, b)
	s2 := m.Bin(ir.OpAdd, ir.U8, true, a, b)
	if s1 != s2 {
		t.Error("identical gates should share one output signal")
	}
	if len(m.Gates) != 1 {
		t.Errorf("gates = %d, want 1", len(m.Gates))
	}
}

func TestMuxCollapseOnEqualInputs(t *testing.T) {
	m := rtl.NewModule("mux")
	sel := m.Input("sel", ir.Bool)
	a := m.Input("a", ir.U8)
	if got := m.Mux(ir.U8, sel, a, a); got != a {
		t.Error("mux with equal inputs must collapse")
	}
}

func TestConstSignalDeduplicates(t *testing.T) {
	m := rtl.NewModule("c")
	c1 := m.ConstSignal(5, ir.U8)
	c2 := m.ConstSignal(5, ir.U8)
	if c1 != c2 {
		t.Error("identical constants should share one signal")
	}
	c3 := m.ConstSignal(5, ir.U4)
	if c1 == c3 {
		t.Error("constants of different widths must not share")
	}
}
