package rtl

import (
	"fmt"

	"sparkgo/internal/ir"
	"sparkgo/internal/wire"
)

// The binary wire framing of the flattened module form (see codec.go
// for the flattening): fixed field order, varint lengths, signals
// referenced by position. Identical modules encode to identical bytes.

// moduleTag versions the RTL wire layout.
const moduleTag = "rtlmod/1"

// encodeModuleWire frames the flattened module in the deterministic
// binary layout.
func encodeModuleWire(mc *moduleCode) []byte {
	e := wire.NewEncoder(1024)
	e.Tag(moduleTag)
	e.String(mc.Name)
	e.Int(mc.NumStates)
	e.Int(mc.RetSignal)
	e.Int(mc.NextID)
	e.Uvarint(uint64(len(mc.Signals)))
	for _, sc := range mc.Signals {
		e.Int(sc.ID)
		e.String(sc.Name)
		ir.PutType(e, sc.Typ)
		e.Int(sc.Kind)
		e.Int64(sc.Const)
		e.Int64(sc.Init)
	}
	e.Uvarint(uint64(len(mc.Gates)))
	for i := range mc.Gates {
		gc := &mc.Gates[i]
		e.Int(gc.Out)
		e.Int(gc.Kind)
		e.Int(gc.Bin)
		e.Int(gc.Un)
		e.Bool(gc.UnsignedOps)
		e.Ints(gc.In)
	}
	e.Uvarint(uint64(len(mc.RegWrites)))
	for _, rw := range mc.RegWrites {
		e.Int(rw.Reg)
		e.Int(rw.State)
		e.Int(rw.Value)
	}
	e.Uvarint(uint64(len(mc.Trans)))
	for _, tc := range mc.Trans {
		e.Int(tc.From)
		e.Int(tc.Cond)
		e.Bool(tc.CondValue)
		e.Int(tc.To)
	}
	e.Uvarint(uint64(len(mc.ScalarPorts)))
	for _, pc := range mc.ScalarPorts {
		e.String(pc.Name)
		e.Int(pc.Sig)
	}
	e.Uvarint(uint64(len(mc.ArrayPorts)))
	for _, pc := range mc.ArrayPorts {
		e.String(pc.Name)
		e.Ints(pc.Sigs)
	}
	return e.Data()
}

// decodeModuleWire parses the binary layout back into the flattened
// form, rejecting truncation, trailing bytes, and inflated lengths.
func decodeModuleWire(data []byte) (*moduleCode, error) {
	d := wire.NewDecoder(data)
	d.Tag(moduleTag)
	mc := &moduleCode{
		Name:      d.String(),
		NumStates: d.Int(),
		RetSignal: d.Int(),
		NextID:    d.Int(),
	}
	if n := d.Len(7); n > 0 { // a signal is >= 7 bytes
		mc.Signals = make([]signalCode, 0, n)
		for i := 0; i < n && d.Err() == nil; i++ {
			mc.Signals = append(mc.Signals, signalCode{
				ID: d.Int(), Name: d.String(), Typ: ir.GetType(d),
				Kind: d.Int(), Const: d.Int64(), Init: d.Int64()})
		}
	}
	if n := d.Len(6); n > 0 { // a gate is >= 6 bytes
		mc.Gates = make([]gateCode, 0, n)
		for i := 0; i < n && d.Err() == nil; i++ {
			mc.Gates = append(mc.Gates, gateCode{
				Out: d.Int(), Kind: d.Int(), Bin: d.Int(), Un: d.Int(),
				UnsignedOps: d.Bool(), In: d.Ints()})
		}
	}
	if n := d.Len(3); n > 0 { // a register write is >= 3 bytes
		mc.RegWrites = make([]regWriteCode, 0, n)
		for i := 0; i < n && d.Err() == nil; i++ {
			mc.RegWrites = append(mc.RegWrites, regWriteCode{
				Reg: d.Int(), State: d.Int(), Value: d.Int()})
		}
	}
	if n := d.Len(4); n > 0 { // a transition is >= 4 bytes
		mc.Trans = make([]rtlTransCode, 0, n)
		for i := 0; i < n && d.Err() == nil; i++ {
			mc.Trans = append(mc.Trans, rtlTransCode{
				From: d.Int(), Cond: d.Int(), CondValue: d.Bool(), To: d.Int()})
		}
	}
	if n := d.Len(2); n > 0 { // a scalar port is >= 2 bytes
		mc.ScalarPorts = make([]scalarPortCode, 0, n)
		for i := 0; i < n && d.Err() == nil; i++ {
			mc.ScalarPorts = append(mc.ScalarPorts, scalarPortCode{
				Name: d.String(), Sig: d.Int()})
		}
	}
	if n := d.Len(2); n > 0 { // an array port is >= 2 bytes
		mc.ArrayPorts = make([]arrayPortCode, 0, n)
		for i := 0; i < n && d.Err() == nil; i++ {
			mc.ArrayPorts = append(mc.ArrayPorts, arrayPortCode{
				Name: d.String(), Sigs: d.Ints()})
		}
	}
	if err := d.Finish(); err != nil {
		return nil, fmt.Errorf("module: %w", err)
	}
	return mc, nil
}
