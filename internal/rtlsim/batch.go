// Batched execution of a compiled Program. One Batch steps up to
// MaxLanes independent stimulus lanes in lockstep; bit-sliced signals
// evaluate all lanes in single bitwise word operations, wide signals in
// struct-of-arrays lane loops, and all control flow — the active set,
// retirement, FSM edge selection, register-commit enables — is packed
// lane masks, one bit per lane.

package rtlsim

import (
	"fmt"
	"math/bits"

	"sparkgo/internal/interp"
	"sparkgo/internal/ir"
	"sparkgo/internal/rtl"
)

// Batch is one batched simulation: lanes independent stimulus vectors
// stepped in lockstep through the compiled program. Wide state is one
// flat slot-major array (vals[slot*lanes+lane]) so each wide
// instruction's inner lane loop walks contiguous memory; bit-sliced
// state is one uint64 word per signal, bit ln = lane ln. Lanes finish
// independently — a lane that reaches done (or fails) drops out of the
// packed active mask while the rest keep stepping, and nothing written
// after its retirement can touch its packed bits (commits are masked by
// the lanes actually advancing this cycle).
type Batch struct {
	p     *Program
	lanes int
	full  uint64 // mask with one bit set per lane in this batch

	vals  []int64  // wide struct-of-arrays state
	bw    []uint64 // packed bit-sliced state, one word per bit slot
	state []int32
	cycle []int32
	errs  []error

	activeMask uint64 // lanes still stepping
	doneMask   uint64 // lanes whose FSM finished cleanly

	scratchW []int64  // two-phase wide commit staging, maxWrites rows
	scratchB []uint64 // two-phase packed commit staging, maxWrites words
	edgeFire []uint64 // per-edge fired-lane masks for the group in flight

	needMask []uint64 // per-cycle union of active states' need bitmaps
	stList   []int32  // distinct active FSM states this cycle
	stMask   []uint64 // lane mask per distinct state (same index as stList)
	stIdx    []int32  // state -> index into stList, -1 outside a cycle
}

func fullMask(lanes int) uint64 {
	if lanes >= 64 {
		return ^uint64(0)
	}
	return uint64(1)<<uint(lanes) - 1
}

// NewBatch creates a batch of the given width (1..MaxLanes) with
// registers at their reset values in every lane.
func (p *Program) NewBatch(lanes int) *Batch {
	if lanes < 1 || lanes > MaxLanes {
		panic(fmt.Sprintf("rtlsim: batch width %d out of range [1,%d]", lanes, MaxLanes))
	}
	b := &Batch{
		p: p, lanes: lanes, full: fullMask(lanes),
		vals:     make([]int64, p.wideSlots*lanes),
		bw:       make([]uint64, p.bitSlots),
		state:    make([]int32, lanes),
		cycle:    make([]int32, lanes),
		errs:     make([]error, lanes),
		scratchW: make([]int64, p.maxWrites*lanes),
		scratchB: make([]uint64, p.maxWrites),
		edgeFire: make([]uint64, p.maxEdges),
		needMask: make([]uint64, p.needWords),
		stList:   make([]int32, lanes),
		stMask:   make([]uint64, lanes),
		stIdx:    make([]int32, p.numStates),
	}
	for i := range b.stIdx {
		b.stIdx[i] = -1
	}
	for _, in := range p.wideInits {
		row := b.vals[int(in.slot)*lanes : int(in.slot)*lanes+lanes]
		for ln := range row {
			row[ln] = in.val
		}
	}
	for _, in := range p.bitInits {
		b.bw[in.slot] = in.word
	}
	b.Reset()
	return b
}

// Lanes returns the batch width.
func (b *Batch) Lanes() int { return b.lanes }

// Reset returns every lane to reset state: registers at their reset
// values, the FSM at state 0, cycle counters and errors cleared. Inputs
// keep their values, matching Sim.Reset. Reset does not allocate.
func (b *Batch) Reset() {
	L := b.lanes
	for _, in := range b.p.wideRegs {
		row := b.vals[int(in.slot)*L : int(in.slot)*L+L]
		for ln := range row {
			row[ln] = in.val
		}
	}
	for _, in := range b.p.bitRegs {
		b.bw[in.slot] = in.word
	}
	b.activeMask = 0
	b.doneMask = 0
	for ln := 0; ln < L; ln++ {
		b.state[ln] = 0
		b.cycle[ln] = 0
		b.errs[ln] = nil
		if b.p.err != nil {
			b.errs[ln] = b.p.err
			b.doneMask |= 1 << uint(ln)
			continue
		}
	}
	if b.p.err == nil {
		if b.p.numStates == 0 {
			// An empty FSM is done before the first cycle, like Sim.Step.
			b.doneMask = b.full
		} else {
			b.activeMask = b.full
		}
	}
}

// fail records a lane-level error and drops the lane from the active set.
func (b *Batch) fail(lane int, err error) {
	if b.errs[lane] != nil {
		return
	}
	b.errs[lane] = err
	b.activeMask &^= 1 << uint(lane)
}

// setBit drives one lane's bit in a packed word from a canonical value.
func (b *Batch) setBit(slot int32, lane int, v int64) {
	bit := uint64(1) << uint(lane)
	if v&1 != 0 {
		b.bw[slot] |= bit
	} else {
		b.bw[slot] &^= bit
	}
}

func (b *Batch) getBit(slot int32, lane int) int64 {
	return int64(b.bw[slot] >> uint(lane) & 1)
}

// laneRead reads one lane of a slot in either domain.
func (b *Batch) laneRead(sr slotRef, lane int) int64 {
	if sr.bit {
		return b.getBit(sr.idx, lane)
	}
	return b.vals[int(sr.idx)*b.lanes+lane]
}

// laneWrite writes one lane of a slot in either domain, canonicalizing
// to the output type (a bit slot's canonical form is the low bit).
func (b *Batch) laneWrite(sr slotRef, lane int, v int64, cn canonDesc) {
	if sr.bit {
		b.setBit(sr.idx, lane, v)
		return
	}
	b.vals[int(sr.idx)*b.lanes+lane] = cn.canon(v)
}

// SetScalar drives a scalar architectural port in one lane.
func (b *Batch) SetScalar(lane int, name string, v int64) error {
	ps, ok := b.p.scalarPort[name]
	if !ok {
		return fmt.Errorf("rtlsim: no scalar port %q", name)
	}
	b.laneWrite(ps.slot, lane, ps.cn.canon(v), ps.cn)
	return nil
}

// SetArray drives an array port element-wise in one lane (elements past
// the end of vals are driven to zero, matching Sim.SetArray).
func (b *Batch) SetArray(lane int, name string, vals []int64) error {
	elems, ok := b.p.arrayPort[name]
	if !ok {
		return fmt.Errorf("rtlsim: no array port %q", name)
	}
	for i, ps := range elems {
		var v int64
		if i < len(vals) {
			v = vals[i]
		}
		b.laneWrite(ps.slot, lane, ps.cn.canon(v), ps.cn)
	}
	return nil
}

// Scalar reads a scalar port's current value in one lane.
func (b *Batch) Scalar(lane int, name string) (int64, error) {
	ps, ok := b.p.scalarPort[name]
	if !ok {
		return 0, fmt.Errorf("rtlsim: no scalar port %q", name)
	}
	return b.laneRead(ps.slot, lane), nil
}

// Array reads an array port's current contents in one lane.
func (b *Batch) Array(lane int, name string) ([]int64, error) {
	elems, ok := b.p.arrayPort[name]
	if !ok {
		return nil, fmt.Errorf("rtlsim: no array port %q", name)
	}
	out := make([]int64, len(elems))
	for i, ps := range elems {
		out[i] = b.laneRead(ps.slot, lane)
	}
	return out, nil
}

// Ret reads the design's return-value register in one lane (0 when void).
func (b *Batch) Ret(lane int) int64 {
	if b.p.retSlot.idx < 0 {
		return 0
	}
	return b.laneRead(b.p.retSlot, lane)
}

// Done reports whether a lane's FSM has finished.
func (b *Batch) Done(lane int) bool { return b.doneMask>>uint(lane)&1 != 0 }

// Cycles returns a lane's clock cycle count since reset.
func (b *Batch) Cycles(lane int) int { return int(b.cycle[lane]) }

// Err returns a lane's simulation error (nil while healthy).
func (b *Batch) Err(lane int) error { return b.errs[lane] }

// LoadEnv drives one lane's architectural ports from an interpreter
// environment, matching globals by name (see Sim.LoadEnv). A failed load
// poisons the lane: it stops stepping and reports the error.
func (b *Batch) LoadEnv(lane int, p *ir.Program, env *interp.Env) error {
	for _, g := range p.Globals {
		var err error
		if g.Type.IsArray() {
			err = b.SetArray(lane, g.Name, env.Array(g))
		} else {
			err = b.SetScalar(lane, g.Name, env.Scalar(g))
		}
		if err != nil {
			b.fail(lane, err)
			return err
		}
	}
	return nil
}

// StoreEnv writes one lane's final architectural port values back into an
// interpreter environment (the inverse of LoadEnv), so batched results
// can be compared env-to-env.
func (b *Batch) StoreEnv(lane int, p *ir.Program, env *interp.Env) error {
	for _, g := range p.Globals {
		if g.Type.IsArray() {
			vals, err := b.Array(lane, g.Name)
			if err != nil {
				return err
			}
			env.SetArray(g, vals)
		} else {
			v, err := b.Scalar(lane, g.Name)
			if err != nil {
				return err
			}
			env.SetScalar(g, v)
		}
	}
	return nil
}

// CompareEnv checks one lane's architectural ports against an interpreter
// environment, returning the first mismatch description or "" when
// identical. Array-length divergence between the module's port and the
// program's type is reported as a mismatch, never indexed past.
func (b *Batch) CompareEnv(lane int, p *ir.Program, env *interp.Env) string {
	for _, g := range p.Globals {
		if g.Type.IsArray() {
			got, err := b.Array(lane, g.Name)
			if err != nil {
				return err.Error()
			}
			if diff := compareArray(g.Name, got, env.Array(g)); diff != "" {
				return diff
			}
		} else {
			got, err := b.Scalar(lane, g.Name)
			if err != nil {
				return err.Error()
			}
			if want := env.Scalar(g); got != want {
				return fmt.Sprintf("%s: rtl=%d behavioral=%d", g.Name, got, want)
			}
		}
	}
	return ""
}

// compareArray diffs one array port against its behavioral contents,
// guarding the length first: a port-width/array-length divergence is a
// reportable mismatch, not an index panic.
func compareArray(name string, got, want []int64) string {
	if len(got) != len(want) {
		return fmt.Sprintf("%s: length mismatch: rtl has %d elements, behavioral has %d",
			name, len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			return fmt.Sprintf("%s[%d]: rtl=%d behavioral=%d", name, i, got[i], want[i])
		}
	}
	return ""
}

// CompareEnvs diffs two interpreter environments over p's globals — the
// env-to-env form of CompareEnv, for callers that StoreEnv batched
// results and compare against a behavioral reference.
func CompareEnvs(p *ir.Program, got, want *interp.Env) string {
	for _, g := range p.Globals {
		if g.Type.IsArray() {
			if diff := compareArray(g.Name, got.Array(g), want.Array(g)); diff != "" {
				return diff
			}
		} else if gv, wv := got.Scalar(g), want.Scalar(g); gv != wv {
			return fmt.Sprintf("%s: rtl=%d behavioral=%d", g.Name, gv, wv)
		}
	}
	return ""
}

// Run steps all active lanes until each is done, failed, or at maxCycles
// (which marks the lane with a watchdog error, mirroring Sim.Run). It
// returns the first lane error, if any; per-lane errors remain readable
// via Err. Run does not allocate on the per-cycle path.
func (b *Batch) Run(maxCycles int) error {
	for b.activeMask != 0 {
		// Active lanes step in lockstep, so they share one cycle count.
		first := bits.TrailingZeros64(b.activeMask)
		if int(b.cycle[first]) >= maxCycles {
			for r := b.activeMask; r != 0; r &= r - 1 {
				ln := bits.TrailingZeros64(r)
				b.errs[ln] = fmt.Errorf("rtlsim: exceeded %d cycles (state %d)",
					maxCycles, b.state[ln])
			}
			b.activeMask = 0
			break
		}
		b.step()
	}
	for _, err := range b.errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// step executes one clock cycle across every active lane: combinational
// evaluation (all instructions — packed words for bit-sliced signals,
// struct-of-arrays loops for wide ones), then FSM transition decisions
// and two-phase register commits per group of lanes sharing an FSM
// state, all masked by the lanes actually advancing. A lane whose state
// has no matching transition fails with its registers, cycle counter,
// and FSM state untouched (the pre-commit picture, matching the scalar
// Sim); a retired or failed lane's packed bits are frozen — every later
// commit word is masked to the surviving lanes.
func (b *Batch) step() {
	// Group active lanes by FSM state first: the state set decides
	// which instructions this cycle can observe. Group masks are
	// snapshots taken before any transition applies, so a lane that
	// moves into a later group's state this cycle is not stepped twice.
	ns := 0
	for r := b.activeMask; r != 0; r &= r - 1 {
		ln := bits.TrailingZeros64(r)
		st := b.state[ln]
		gi := b.stIdx[st]
		if gi < 0 {
			gi = int32(ns)
			b.stIdx[st] = gi
			b.stList[ns] = st
			b.stMask[ns] = 0
			ns++
		}
		b.stMask[gi] |= 1 << uint(ln)
	}
	if b.p.need != nil {
		// Evaluate only the union of the active states' need sets, in
		// instruction (= topological) order.
		nm := b.needMask
		for w := range nm {
			nm[w] = 0
		}
		for i := 0; i < ns; i++ {
			sb := b.p.need[b.stList[i]]
			for w := range nm {
				nm[w] |= sb[w]
			}
		}
		for w := range nm {
			for r := nm[w]; r != 0; r &= r - 1 {
				b.evalInsn(&b.p.insns[w<<6|bits.TrailingZeros64(r)])
			}
		}
	} else {
		for ii := range b.p.insns {
			b.evalInsn(&b.p.insns[ii])
		}
	}
	for i := 0; i < ns; i++ {
		st := b.stList[i]
		b.stIdx[st] = -1
		b.stepState(int(st), b.stMask[i])
	}
}

// evalInsn evaluates one combinational instruction across all lanes.
func (b *Batch) evalInsn(ins *insn) {
	L := b.lanes
	vals := b.vals
	bw := b.bw
	switch ins.op {
	case opBitAnd:
		bw[ins.out.idx] = bw[ins.a.idx] & bw[ins.b.idx]
	case opBitOr:
		bw[ins.out.idx] = bw[ins.a.idx] | bw[ins.b.idx]
	case opBitXor:
		bw[ins.out.idx] = bw[ins.a.idx] ^ bw[ins.b.idx]
	case opBitXnor:
		bw[ins.out.idx] = ^(bw[ins.a.idx] ^ bw[ins.b.idx])
	case opBitAndNot:
		bw[ins.out.idx] = bw[ins.a.idx] &^ bw[ins.b.idx]
	case opBitOrNot:
		bw[ins.out.idx] = bw[ins.a.idx] | ^bw[ins.b.idx]
	case opBitNot:
		bw[ins.out.idx] = ^bw[ins.a.idx]
	case opBitCopy:
		bw[ins.out.idx] = bw[ins.a.idx]
	case opBitMux:
		sel := bw[ins.a.idx]
		bw[ins.out.idx] = sel&bw[ins.b.idx] | ^sel&bw[ins.c.idx]
	case opCmpPack:
		b.evalCmpPack(ins)
	case opMuxWideSel:
		sel := bw[ins.a.idx]
		av := vals[int(ins.b.idx)*L : int(ins.b.idx)*L+L]
		bv := vals[int(ins.c.idx)*L : int(ins.c.idx)*L+L]
		out := vals[int(ins.out.idx)*L : int(ins.out.idx)*L+L : int(ins.out.idx)*L+L]
		cn := ins.cn
		for ln := 0; ln < L; ln++ {
			// Branchless steer: av when the lane's select bit is
			// set, bv otherwise.
			m := -(sel >> uint(ln) & 1)
			out[ln] = cn.canon(bv[ln] ^ (av[ln]^bv[ln])&int64(m))
		}
	case opWidenBit:
		w := bw[ins.a.idx]
		out := vals[int(ins.out.idx)*L : int(ins.out.idx)*L+L : int(ins.out.idx)*L+L]
		cn := ins.cn
		for ln := 0; ln < L; ln++ {
			out[ln] = cn.canon(int64(w >> uint(ln) & 1))
		}
	case opNarrowBit:
		av := vals[int(ins.a.idx)*L : int(ins.a.idx)*L+L]
		var w uint64
		for ln := 0; ln < L; ln++ {
			w |= uint64(av[ln]&1) << uint(ln)
		}
		bw[ins.out.idx] = w
	case opWideBin:
		out := vals[int(ins.out.idx)*L : int(ins.out.idx)*L+L : int(ins.out.idx)*L+L]
		b.evalBin(ins, out)
	case opWideUn:
		out := vals[int(ins.out.idx)*L : int(ins.out.idx)*L+L : int(ins.out.idx)*L+L]
		av := vals[int(ins.a.idx)*L : int(ins.a.idx)*L+L]
		switch ins.un {
		case ir.OpNeg:
			for ln := 0; ln < L; ln++ {
				out[ln] = ins.cn.canon(-av[ln])
			}
		case ir.OpNot:
			for ln := 0; ln < L; ln++ {
				out[ln] = ins.cn.canon(^av[ln])
			}
		case ir.OpLNot:
			for ln := 0; ln < L; ln++ {
				out[ln] = ins.cn.canon(b2i(av[ln] == 0))
			}
		}
	case opWideMux:
		out := vals[int(ins.out.idx)*L : int(ins.out.idx)*L+L : int(ins.out.idx)*L+L]
		sel := vals[int(ins.a.idx)*L : int(ins.a.idx)*L+L]
		av := vals[int(ins.b.idx)*L : int(ins.b.idx)*L+L]
		bv := vals[int(ins.c.idx)*L : int(ins.c.idx)*L+L]
		for ln := 0; ln < L; ln++ {
			if sel[ln] != 0 {
				out[ln] = ins.cn.canon(av[ln])
			} else {
				out[ln] = ins.cn.canon(bv[ln])
			}
		}
	case opWideCopy:
		out := vals[int(ins.out.idx)*L : int(ins.out.idx)*L+L : int(ins.out.idx)*L+L]
		av := vals[int(ins.a.idx)*L : int(ins.a.idx)*L+L]
		for ln := 0; ln < L; ln++ {
			out[ln] = ins.cn.canon(av[ln])
		}
	case opWideArrayRead:
		out := vals[int(ins.out.idx)*L : int(ins.out.idx)*L+L : int(ins.out.idx)*L+L]
		idxv := vals[int(ins.a.idx)*L : int(ins.a.idx)*L+L]
		for ln := 0; ln < L; ln++ {
			idx := idxv[ln]
			if idx >= 0 && idx < int64(len(ins.elems)) {
				out[ln] = ins.cn.canon(vals[int(ins.elems[idx].idx)*L+ln])
			} else {
				out[ln] = 0
			}
		}
	default:
		b.evalLane(ins)
	}
}

// evalBin evaluates one wide binary-operator instruction across all
// lanes, bit-identical to interp.EvalBinOp (whose semantics are inlined
// here so the per-lane cost is one arithmetic op plus the canon shift).
func (b *Batch) evalBin(ins *insn, out []int64) {
	L := b.lanes
	av := b.vals[int(ins.a.idx)*L : int(ins.a.idx)*L+L]
	bv := b.vals[int(ins.b.idx)*L : int(ins.b.idx)*L+L]
	cn := ins.cn
	switch ins.bin {
	case ir.OpAdd:
		for ln := 0; ln < L; ln++ {
			out[ln] = cn.canon(av[ln] + bv[ln])
		}
	case ir.OpSub:
		for ln := 0; ln < L; ln++ {
			out[ln] = cn.canon(av[ln] - bv[ln])
		}
	case ir.OpMul:
		for ln := 0; ln < L; ln++ {
			out[ln] = cn.canon(av[ln] * bv[ln])
		}
	case ir.OpDiv:
		for ln := 0; ln < L; ln++ {
			var v int64
			switch {
			case bv[ln] == 0:
				// Division by zero yields zero (hardware convention).
			case ins.uns:
				v = int64(uint64(av[ln]) / uint64(bv[ln]))
			default:
				v = av[ln] / bv[ln]
			}
			out[ln] = cn.canon(v)
		}
	case ir.OpRem:
		for ln := 0; ln < L; ln++ {
			var v int64
			switch {
			case bv[ln] == 0:
			case ins.uns:
				v = int64(uint64(av[ln]) % uint64(bv[ln]))
			default:
				v = av[ln] % bv[ln]
			}
			out[ln] = cn.canon(v)
		}
	case ir.OpAnd:
		for ln := 0; ln < L; ln++ {
			out[ln] = cn.canon(av[ln] & bv[ln])
		}
	case ir.OpOr:
		for ln := 0; ln < L; ln++ {
			out[ln] = cn.canon(av[ln] | bv[ln])
		}
	case ir.OpXor:
		for ln := 0; ln < L; ln++ {
			out[ln] = cn.canon(av[ln] ^ bv[ln])
		}
	case ir.OpShl:
		for ln := 0; ln < L; ln++ {
			var v int64
			if s := uint64(bv[ln]); s < 64 {
				v = int64(uint64(av[ln]) << s)
			}
			out[ln] = cn.canon(v)
		}
	case ir.OpShr:
		for ln := 0; ln < L; ln++ {
			var v int64
			s := uint64(bv[ln])
			switch {
			case s >= 64:
				if !ins.uns && av[ln] < 0 {
					v = -1
				}
			case ins.uns:
				v = int64(uint64(av[ln]) >> s)
			default:
				v = av[ln] >> s
			}
			out[ln] = cn.canon(v)
		}
	case ir.OpEq:
		for ln := 0; ln < L; ln++ {
			out[ln] = cn.canon(b2i(av[ln] == bv[ln]))
		}
	case ir.OpNe:
		for ln := 0; ln < L; ln++ {
			out[ln] = cn.canon(b2i(av[ln] != bv[ln]))
		}
	case ir.OpLt:
		if ins.uns {
			for ln := 0; ln < L; ln++ {
				out[ln] = cn.canon(b2i(uint64(av[ln]) < uint64(bv[ln])))
			}
		} else {
			for ln := 0; ln < L; ln++ {
				out[ln] = cn.canon(b2i(av[ln] < bv[ln]))
			}
		}
	case ir.OpLe:
		if ins.uns {
			for ln := 0; ln < L; ln++ {
				out[ln] = cn.canon(b2i(uint64(av[ln]) <= uint64(bv[ln])))
			}
		} else {
			for ln := 0; ln < L; ln++ {
				out[ln] = cn.canon(b2i(av[ln] <= bv[ln]))
			}
		}
	case ir.OpGt:
		if ins.uns {
			for ln := 0; ln < L; ln++ {
				out[ln] = cn.canon(b2i(uint64(av[ln]) > uint64(bv[ln])))
			}
		} else {
			for ln := 0; ln < L; ln++ {
				out[ln] = cn.canon(b2i(av[ln] > bv[ln]))
			}
		}
	case ir.OpGe:
		if ins.uns {
			for ln := 0; ln < L; ln++ {
				out[ln] = cn.canon(b2i(uint64(av[ln]) >= uint64(bv[ln])))
			}
		} else {
			for ln := 0; ln < L; ln++ {
				out[ln] = cn.canon(b2i(av[ln] >= bv[ln]))
			}
		}
	case ir.OpLAnd:
		for ln := 0; ln < L; ln++ {
			out[ln] = cn.canon(b2i(av[ln] != 0 && bv[ln] != 0))
		}
	case ir.OpLOr:
		for ln := 0; ln < L; ln++ {
			out[ln] = cn.canon(b2i(av[ln] != 0 || bv[ln] != 0))
		}
	}
}

// evalCmpPack evaluates one wide comparison (or logical combine) across
// all lanes and packs the 1-bit predicates into the output word.
func (b *Batch) evalCmpPack(ins *insn) {
	L := b.lanes
	av := b.vals[int(ins.a.idx)*L : int(ins.a.idx)*L+L]
	bv := b.vals[int(ins.b.idx)*L : int(ins.b.idx)*L+L]
	var w uint64
	switch ins.bin {
	case ir.OpEq:
		for ln := 0; ln < L; ln++ {
			if av[ln] == bv[ln] {
				w |= 1 << uint(ln)
			}
		}
	case ir.OpNe:
		for ln := 0; ln < L; ln++ {
			if av[ln] != bv[ln] {
				w |= 1 << uint(ln)
			}
		}
	case ir.OpLt:
		if ins.uns {
			for ln := 0; ln < L; ln++ {
				if uint64(av[ln]) < uint64(bv[ln]) {
					w |= 1 << uint(ln)
				}
			}
		} else {
			for ln := 0; ln < L; ln++ {
				if av[ln] < bv[ln] {
					w |= 1 << uint(ln)
				}
			}
		}
	case ir.OpLe:
		if ins.uns {
			for ln := 0; ln < L; ln++ {
				if uint64(av[ln]) <= uint64(bv[ln]) {
					w |= 1 << uint(ln)
				}
			}
		} else {
			for ln := 0; ln < L; ln++ {
				if av[ln] <= bv[ln] {
					w |= 1 << uint(ln)
				}
			}
		}
	case ir.OpGt:
		if ins.uns {
			for ln := 0; ln < L; ln++ {
				if uint64(av[ln]) > uint64(bv[ln]) {
					w |= 1 << uint(ln)
				}
			}
		} else {
			for ln := 0; ln < L; ln++ {
				if av[ln] > bv[ln] {
					w |= 1 << uint(ln)
				}
			}
		}
	case ir.OpGe:
		if ins.uns {
			for ln := 0; ln < L; ln++ {
				if uint64(av[ln]) >= uint64(bv[ln]) {
					w |= 1 << uint(ln)
				}
			}
		} else {
			for ln := 0; ln < L; ln++ {
				if av[ln] >= bv[ln] {
					w |= 1 << uint(ln)
				}
			}
		}
	case ir.OpLAnd:
		for ln := 0; ln < L; ln++ {
			if av[ln] != 0 && bv[ln] != 0 {
				w |= 1 << uint(ln)
			}
		}
	case ir.OpLOr:
		for ln := 0; ln < L; ln++ {
			if av[ln] != 0 || bv[ln] != 0 {
				w |= 1 << uint(ln)
			}
		}
	}
	b.bw[ins.out.idx] = w
}

// evalLane is the generic per-lane fallback covering any mix of packed
// and wide operands, bit-identical to the specialized forms.
func (b *Batch) evalLane(ins *insn) {
	L := b.lanes
	for ln := 0; ln < L; ln++ {
		var v int64
		switch ins.kind {
		case rtl.GateBin:
			v = scalarBin(ins.bin, ins.uns, b.laneRead(ins.a, ln), b.laneRead(ins.b, ln))
		case rtl.GateUn:
			a := b.laneRead(ins.a, ln)
			switch ins.un {
			case ir.OpNeg:
				v = -a
			case ir.OpNot:
				v = ^a
			case ir.OpLNot:
				v = b2i(a == 0)
			}
		case rtl.GateMux:
			if b.laneRead(ins.a, ln) != 0 {
				v = b.laneRead(ins.b, ln)
			} else {
				v = b.laneRead(ins.c, ln)
			}
		case rtl.GateCopy:
			v = b.laneRead(ins.a, ln)
		case rtl.GateArrayRead:
			idx := b.laneRead(ins.a, ln)
			if idx >= 0 && idx < int64(len(ins.elems)) {
				v = b.laneRead(ins.elems[idx], ln)
			}
		}
		b.laneWrite(ins.out, ln, v, ins.cn)
	}
}

// scalarBin evaluates one binary op on one lane's values, bit-identical
// to interp.EvalBinOp before canonicalization (division by zero yields
// zero; shifts saturate past the word width).
func scalarBin(op ir.BinOp, uns bool, a, bv int64) int64 {
	switch op {
	case ir.OpAdd:
		return a + bv
	case ir.OpSub:
		return a - bv
	case ir.OpMul:
		return a * bv
	case ir.OpDiv:
		switch {
		case bv == 0:
			return 0
		case uns:
			return int64(uint64(a) / uint64(bv))
		}
		return a / bv
	case ir.OpRem:
		switch {
		case bv == 0:
			return 0
		case uns:
			return int64(uint64(a) % uint64(bv))
		}
		return a % bv
	case ir.OpAnd:
		return a & bv
	case ir.OpOr:
		return a | bv
	case ir.OpXor:
		return a ^ bv
	case ir.OpShl:
		if s := uint64(bv); s < 64 {
			return int64(uint64(a) << s)
		}
		return 0
	case ir.OpShr:
		s := uint64(bv)
		switch {
		case s >= 64:
			if !uns && a < 0 {
				return -1
			}
			return 0
		case uns:
			return int64(uint64(a) >> s)
		}
		return a >> s
	case ir.OpEq:
		return b2i(a == bv)
	case ir.OpNe:
		return b2i(a != bv)
	case ir.OpLt:
		if uns {
			return b2i(uint64(a) < uint64(bv))
		}
		return b2i(a < bv)
	case ir.OpLe:
		if uns {
			return b2i(uint64(a) <= uint64(bv))
		}
		return b2i(a <= bv)
	case ir.OpGt:
		if uns {
			return b2i(uint64(a) > uint64(bv))
		}
		return b2i(a > bv)
	case ir.OpGe:
		if uns {
			return b2i(uint64(a) >= uint64(bv))
		}
		return b2i(a >= bv)
	case ir.OpLAnd:
		return b2i(a != 0 && bv != 0)
	case ir.OpLOr:
		return b2i(a != 0 || bv != 0)
	}
	return 0
}

// condWord packs "this lane's condition net is nonzero" for the lanes
// in need into one word (bit-sliced conditions are already packed; wide
// ones test per lane).
func (b *Batch) condWord(sr slotRef, need uint64) uint64 {
	if sr.bit {
		return b.bw[sr.idx]
	}
	L := b.lanes
	row := b.vals[int(sr.idx)*L : int(sr.idx)*L+L]
	var w uint64
	for r := need; r != 0; r &= r - 1 {
		ln := bits.TrailingZeros64(r)
		if row[ln] != 0 {
			w |= 1 << uint(ln)
		}
	}
	return w
}

// stepState resolves one FSM state's group of lanes (mask m): edge
// selection, no-transition errors, two-phase register commit, cycle
// accounting, and retirement — all on packed masks. Commits are masked
// to the lanes that actually advance, so a lane that errored (or
// retired in an earlier cycle) keeps its packed register bits frozen.
func (b *Batch) stepState(st int, m uint64) {
	p := b.p
	edges := p.trans[st]
	rem := m
	for ei := range edges {
		e := &edges[ei]
		var fm uint64
		if e.cond.idx < 0 {
			fm = rem
		} else {
			cw := b.condWord(e.cond, rem)
			if e.condVal != 0 {
				fm = rem & cw
			} else {
				fm = rem &^ cw
			}
		}
		b.edgeFire[ei] = fm
		rem &^= fm
	}
	if rem != 0 {
		// No matching transition: report before committing anything,
		// leaving those lanes' pre-transition state intact.
		for r := rem; r != 0; r &= r - 1 {
			ln := bits.TrailingZeros64(r)
			if b.errs[ln] == nil {
				b.errs[ln] = fmt.Errorf("rtlsim: state %d has no matching transition", st)
			}
		}
		b.activeMask &^= rem
	}
	ok := m &^ rem
	if ok == 0 {
		return
	}
	// Two-phase commit: read every source into scratch first, then
	// write, so swap-style write sets see consistent pre-cycle values.
	ws := p.writes[st]
	L := b.lanes
	for i := range ws {
		w := &ws[i]
		if w.val.bit {
			b.scratchB[i] = b.bw[w.val.idx]
		} else {
			copy(b.scratchW[i*L:i*L+L], b.vals[int(w.val.idx)*L:int(w.val.idx)*L+L])
		}
	}
	for i := range ws {
		w := &ws[i]
		switch {
		case w.reg.bit && w.val.bit:
			b.bw[w.reg.idx] = b.bw[w.reg.idx]&^ok | b.scratchB[i]&ok
		case w.reg.bit:
			var word uint64
			sr := b.scratchW[i*L : i*L+L]
			for r := ok; r != 0; r &= r - 1 {
				ln := bits.TrailingZeros64(r)
				word |= uint64(sr[ln]&1) << uint(ln)
			}
			b.bw[w.reg.idx] = b.bw[w.reg.idx]&^ok | word
		case w.val.bit:
			word := b.scratchB[i]
			row := b.vals[int(w.reg.idx)*L : int(w.reg.idx)*L+L]
			for r := ok; r != 0; r &= r - 1 {
				ln := bits.TrailingZeros64(r)
				row[ln] = w.cn.canon(int64(word >> uint(ln) & 1))
			}
		default:
			row := b.vals[int(w.reg.idx)*L : int(w.reg.idx)*L+L]
			sr := b.scratchW[i*L : i*L+L]
			for r := ok; r != 0; r &= r - 1 {
				ln := bits.TrailingZeros64(r)
				row[ln] = w.cn.canon(sr[ln])
			}
		}
	}
	for r := ok; r != 0; r &= r - 1 {
		b.cycle[bits.TrailingZeros64(r)]++
	}
	for ei := range edges {
		fm := b.edgeFire[ei] & ok
		if fm == 0 {
			continue
		}
		e := &edges[ei]
		if e.to == -1 {
			b.doneMask |= fm
			b.activeMask &^= fm
		} else if int(e.to) != st {
			for r := fm; r != 0; r &= r - 1 {
				b.state[bits.TrailingZeros64(r)] = e.to
			}
		}
	}
}

func b2i(v bool) int64 {
	if v {
		return 1
	}
	return 0
}

// LaneResult is one lane's outcome from RunBatch.
type LaneResult struct {
	Cycles int
	Err    error
}

// RunBatch simulates one lane per environment: each env's globals drive
// one lane's ports, every lane steps to completion (bounded by
// maxCycles), and each lane's final port values are stored back into its
// env for comparison against a behavioral reference. Environments beyond
// MaxLanes are chunked into successive batches, so callers simply pass
// their whole trial set.
func (p *Program) RunBatch(prog *ir.Program, envs []*interp.Env, maxCycles int) []LaneResult {
	out := make([]LaneResult, len(envs))
	for start := 0; start < len(envs); start += MaxLanes {
		end := min(start+MaxLanes, len(envs))
		b := p.NewBatch(end - start)
		for i := start; i < end; i++ {
			// A failed load marks the lane; Run skips it.
			_ = b.LoadEnv(i-start, prog, envs[i])
		}
		b.Run(maxCycles)
		for i := start; i < end; i++ {
			ln := i - start
			out[i] = LaneResult{Cycles: b.Cycles(ln), Err: b.Err(ln)}
			if out[i].Err == nil {
				out[i].Err = b.StoreEnv(ln, prog, envs[i])
			}
		}
	}
	return out
}
