// Compiled, batched execution. Compile lowers a netlist once into a
// dense instruction slice — signals keyed by Signal.ID into flat []int64
// state, no maps, no pointer chasing — and a Batch steps up to MaxLanes
// independent stimulus lanes through each instruction in
// struct-of-arrays layout, so gate dispatch, FSM transition lookup, and
// register-commit bookkeeping are paid once per instruction per cycle
// instead of once per trial. The scalar Sim remains the reference
// implementation; the differential suite pins the compiled path against
// it (and against package interp) bit-for-bit.

package rtlsim

import (
	"fmt"

	"sparkgo/internal/interp"
	"sparkgo/internal/ir"
	"sparkgo/internal/rtl"
)

// MaxLanes is the widest stimulus batch one Batch steps in lockstep.
const MaxLanes = 64

// WatchdogCycles derives the simulation cycle bound from the FSM size:
// generous headroom for loop trip counts (the sequential baselines need
// roughly numStates × trips cycles), but small enough that a
// non-terminating design errors after thousands of cycles, not millions.
// Every trial loop in the system — core.Verify, the exploration engine's
// latency measurement, the differential harness — derives its bound here,
// so a hung FSM costs the same bounded work everywhere.
func WatchdogCycles(numStates int) int {
	if numStates < 1 {
		numStates = 1
	}
	return numStates*1024 + 16
}

// canonDesc is the precomputed canonicalization of one signal type:
// Type.Canon reduced to a shift pair (mask to width, then sign- or
// zero-extend), so the hot loop never touches *ir.Type.
type canonDesc struct {
	shift  uint8 // 64 - width; 0 for full-width values (canon = identity)
	signed bool
	isBool bool
}

func canonOf(t *ir.Type) canonDesc {
	if t.IsBool() {
		return canonDesc{isBool: true}
	}
	w := t.Width()
	if w >= 64 {
		return canonDesc{}
	}
	return canonDesc{shift: uint8(64 - w), signed: t.Signed}
}

func (c canonDesc) canon(v int64) int64 {
	if c.isBool {
		return v & 1
	}
	if c.shift == 0 {
		return v
	}
	if c.signed {
		return v << c.shift >> c.shift
	}
	return int64(uint64(v) << c.shift >> c.shift)
}

// insn is one compiled gate: input and output signals resolved to slots
// in the flat state array, output canonicalization resolved to a shift
// pair. Instructions retain the module's topological gate order.
type insn struct {
	kind  rtl.GateKind
	bin   ir.BinOp
	un    ir.UnOp
	uns   bool    // unsigned semantics for cmp/div/rem/shr
	cn    canonDesc
	out   int32
	a     int32
	b     int32
	c     int32
	elems []int32 // GateArrayRead element slots
}

// slotInit seeds one slot of the flat state (constants, register resets).
type slotInit struct {
	slot int32
	val  int64
}

// regCommit is one compiled register write: commit state[val] into
// state[reg] at the end of every cycle spent in its state.
type regCommit struct {
	reg int32
	val int32
}

// transEdge is one compiled FSM edge. cond < 0 means unconditional.
type transEdge struct {
	cond    int32
	condVal int64 // 1 when the edge fires on true, 0 on false
	to      int32 // -1: done
}

// portSlot locates one architectural port in the flat state.
type portSlot struct {
	slot int32
	cn   canonDesc
}

// Program is a netlist compiled for batched execution. Compile once,
// then run any number of Batches (a Program is immutable and safe for
// concurrent Batches).
type Program struct {
	M *rtl.Module

	slots     int
	numStates int
	insns     []insn
	inits     []slotInit  // constant drivers + register resets
	regs      []slotInit  // register resets only (for Reset)
	writes    [][]regCommit
	trans     [][]transEdge
	maxWrites int

	scalarPort map[string]portSlot
	arrayPort  map[string][]portSlot
	retSlot    int32 // -1 when the design is void

	err error // compile-time validation failure, surfaced per lane
}

// Compile lowers a module into a Program. An op the simulator does not
// implement is reported at run time (every lane errors), mirroring the
// scalar Sim's behaviour; the gate network itself is validated here.
func Compile(m *rtl.Module) *Program {
	p := &Program{
		M:          m,
		numStates:  m.NumStates,
		scalarPort: map[string]portSlot{},
		arrayPort:  map[string][]portSlot{},
		retSlot:    -1,
	}
	for _, s := range m.Signals {
		if s.ID >= p.slots {
			p.slots = s.ID + 1
		}
	}
	for _, s := range m.Signals {
		switch s.Kind {
		case rtl.SigConst:
			p.inits = append(p.inits, slotInit{int32(s.ID), s.Const})
		case rtl.SigReg:
			p.inits = append(p.inits, slotInit{int32(s.ID), s.Init})
			p.regs = append(p.regs, slotInit{int32(s.ID), s.Init})
		}
	}
	for _, g := range m.Gates {
		in := insn{
			kind: g.Kind, bin: g.Bin, un: g.Un, uns: g.UnsignedOps,
			cn: canonOf(g.Out.Type), out: int32(g.Out.ID),
			a: -1, b: -1, c: -1,
		}
		switch g.Kind {
		case rtl.GateBin:
			in.a, in.b = int32(g.In[0].ID), int32(g.In[1].ID)
			if !binOpKnown(g.Bin) {
				p.err = fmt.Errorf("rtlsim: gate %s: unknown binary op %v", g.Out.Name, g.Bin)
			}
		case rtl.GateUn:
			in.a = int32(g.In[0].ID)
		case rtl.GateMux:
			in.a, in.b, in.c = int32(g.In[0].ID), int32(g.In[1].ID), int32(g.In[2].ID)
		case rtl.GateCopy:
			in.a = int32(g.In[0].ID)
		case rtl.GateArrayRead:
			in.a = int32(g.In[0].ID)
			in.elems = make([]int32, len(g.In)-1)
			for i, e := range g.In[1:] {
				in.elems[i] = int32(e.ID)
			}
		default:
			p.err = fmt.Errorf("rtlsim: gate %s: unknown gate kind %v", g.Out.Name, g.Kind)
		}
		p.insns = append(p.insns, in)
	}
	p.writes = make([][]regCommit, m.NumStates)
	for _, rw := range m.RegWrites {
		if rw.State >= 0 && rw.State < m.NumStates {
			p.writes[rw.State] = append(p.writes[rw.State],
				regCommit{int32(rw.Reg.ID), int32(rw.Value.ID)})
		}
	}
	for _, ws := range p.writes {
		if len(ws) > p.maxWrites {
			p.maxWrites = len(ws)
		}
	}
	p.trans = make([][]transEdge, m.NumStates)
	for _, tr := range m.Trans {
		if tr.From < 0 || tr.From >= m.NumStates {
			continue
		}
		e := transEdge{cond: -1, to: int32(tr.To)}
		if tr.Cond != nil {
			e.cond = int32(tr.Cond.ID)
			if tr.CondValue {
				e.condVal = 1
			}
		}
		p.trans[tr.From] = append(p.trans[tr.From], e)
	}
	for name, sig := range m.ScalarPort {
		p.scalarPort[name] = portSlot{int32(sig.ID), canonOf(sig.Type)}
	}
	for name, elems := range m.ArrayPort {
		ps := make([]portSlot, len(elems))
		for i, sig := range elems {
			ps[i] = portSlot{int32(sig.ID), canonOf(sig.Type)}
		}
		p.arrayPort[name] = ps
	}
	if m.RetSignal != nil {
		p.retSlot = int32(m.RetSignal.ID)
	}
	return p
}

func binOpKnown(op ir.BinOp) bool {
	switch op {
	case ir.OpAdd, ir.OpSub, ir.OpMul, ir.OpDiv, ir.OpRem,
		ir.OpAnd, ir.OpOr, ir.OpXor, ir.OpShl, ir.OpShr,
		ir.OpEq, ir.OpNe, ir.OpLt, ir.OpLe, ir.OpGt, ir.OpGe,
		ir.OpLAnd, ir.OpLOr:
		return true
	}
	return false
}

// Batch is one batched simulation: lanes independent stimulus vectors
// stepped in lockstep through the compiled program. State is one flat
// slot-major array (vals[slot*lanes+lane]), so each instruction's inner
// lane loop walks contiguous memory. Lanes finish independently — a lane
// that reaches done (or fails) drops out of the active set while the
// rest keep stepping.
type Batch struct {
	p     *Program
	lanes int

	vals    []int64
	state   []int32
	cycle   []int32
	done    []bool
	errs    []error
	active  []int32
	scratch []int64 // two-phase commit staging, sized maxWrites
}

// NewBatch creates a batch of the given width (1..MaxLanes) with
// registers at their reset values in every lane.
func (p *Program) NewBatch(lanes int) *Batch {
	if lanes < 1 || lanes > MaxLanes {
		panic(fmt.Sprintf("rtlsim: batch width %d out of range [1,%d]", lanes, MaxLanes))
	}
	b := &Batch{
		p: p, lanes: lanes,
		vals:    make([]int64, p.slots*lanes),
		state:   make([]int32, lanes),
		cycle:   make([]int32, lanes),
		done:    make([]bool, lanes),
		errs:    make([]error, lanes),
		active:  make([]int32, 0, lanes),
		scratch: make([]int64, p.maxWrites),
	}
	for _, in := range p.inits {
		row := b.vals[int(in.slot)*lanes : int(in.slot)*lanes+lanes]
		for ln := range row {
			row[ln] = in.val
		}
	}
	b.Reset()
	return b
}

// Lanes returns the batch width.
func (b *Batch) Lanes() int { return b.lanes }

// Reset returns every lane to reset state: registers at their reset
// values, the FSM at state 0, cycle counters and errors cleared. Inputs
// keep their values, matching Sim.Reset. Reset does not allocate.
func (b *Batch) Reset() {
	L := b.lanes
	for _, in := range b.p.regs {
		row := b.vals[int(in.slot)*L : int(in.slot)*L+L]
		for ln := range row {
			row[ln] = in.val
		}
	}
	b.active = b.active[:0]
	for ln := 0; ln < L; ln++ {
		b.state[ln] = 0
		b.cycle[ln] = 0
		b.errs[ln] = nil
		if b.p.err != nil {
			b.errs[ln] = b.p.err
			b.done[ln] = true
			continue
		}
		// An empty FSM is done before the first cycle, like Sim.Step.
		b.done[ln] = b.p.numStates == 0
		if !b.done[ln] {
			b.active = append(b.active, int32(ln))
		}
	}
}

// fail records a lane-level error and drops the lane from the active set.
func (b *Batch) fail(lane int, err error) {
	if b.errs[lane] != nil {
		return
	}
	b.errs[lane] = err
	for i, ln := range b.active {
		if int(ln) == lane {
			b.active = append(b.active[:i], b.active[i+1:]...)
			break
		}
	}
}

// SetScalar drives a scalar architectural port in one lane.
func (b *Batch) SetScalar(lane int, name string, v int64) error {
	ps, ok := b.p.scalarPort[name]
	if !ok {
		return fmt.Errorf("rtlsim: no scalar port %q", name)
	}
	b.vals[int(ps.slot)*b.lanes+lane] = ps.cn.canon(v)
	return nil
}

// SetArray drives an array port element-wise in one lane (elements past
// the end of vals are driven to zero, matching Sim.SetArray).
func (b *Batch) SetArray(lane int, name string, vals []int64) error {
	elems, ok := b.p.arrayPort[name]
	if !ok {
		return fmt.Errorf("rtlsim: no array port %q", name)
	}
	for i, ps := range elems {
		var v int64
		if i < len(vals) {
			v = vals[i]
		}
		b.vals[int(ps.slot)*b.lanes+lane] = ps.cn.canon(v)
	}
	return nil
}

// Scalar reads a scalar port's current value in one lane.
func (b *Batch) Scalar(lane int, name string) (int64, error) {
	ps, ok := b.p.scalarPort[name]
	if !ok {
		return 0, fmt.Errorf("rtlsim: no scalar port %q", name)
	}
	return b.vals[int(ps.slot)*b.lanes+lane], nil
}

// Array reads an array port's current contents in one lane.
func (b *Batch) Array(lane int, name string) ([]int64, error) {
	elems, ok := b.p.arrayPort[name]
	if !ok {
		return nil, fmt.Errorf("rtlsim: no array port %q", name)
	}
	out := make([]int64, len(elems))
	for i, ps := range elems {
		out[i] = b.vals[int(ps.slot)*b.lanes+lane]
	}
	return out, nil
}

// Ret reads the design's return-value register in one lane (0 when void).
func (b *Batch) Ret(lane int) int64 {
	if b.p.retSlot < 0 {
		return 0
	}
	return b.vals[int(b.p.retSlot)*b.lanes+lane]
}

// Done reports whether a lane's FSM has finished.
func (b *Batch) Done(lane int) bool { return b.done[lane] }

// Cycles returns a lane's clock cycle count since reset.
func (b *Batch) Cycles(lane int) int { return int(b.cycle[lane]) }

// Err returns a lane's simulation error (nil while healthy).
func (b *Batch) Err(lane int) error { return b.errs[lane] }

// LoadEnv drives one lane's architectural ports from an interpreter
// environment, matching globals by name (see Sim.LoadEnv). A failed load
// poisons the lane: it stops stepping and reports the error.
func (b *Batch) LoadEnv(lane int, p *ir.Program, env *interp.Env) error {
	for _, g := range p.Globals {
		var err error
		if g.Type.IsArray() {
			err = b.SetArray(lane, g.Name, env.Array(g))
		} else {
			err = b.SetScalar(lane, g.Name, env.Scalar(g))
		}
		if err != nil {
			b.fail(lane, err)
			return err
		}
	}
	return nil
}

// StoreEnv writes one lane's final architectural port values back into an
// interpreter environment (the inverse of LoadEnv), so batched results
// can be compared env-to-env.
func (b *Batch) StoreEnv(lane int, p *ir.Program, env *interp.Env) error {
	for _, g := range p.Globals {
		if g.Type.IsArray() {
			vals, err := b.Array(lane, g.Name)
			if err != nil {
				return err
			}
			env.SetArray(g, vals)
		} else {
			v, err := b.Scalar(lane, g.Name)
			if err != nil {
				return err
			}
			env.SetScalar(g, v)
		}
	}
	return nil
}

// CompareEnv checks one lane's architectural ports against an interpreter
// environment, returning the first mismatch description or "" when
// identical. Array-length divergence between the module's port and the
// program's type is reported as a mismatch, never indexed past.
func (b *Batch) CompareEnv(lane int, p *ir.Program, env *interp.Env) string {
	for _, g := range p.Globals {
		if g.Type.IsArray() {
			got, err := b.Array(lane, g.Name)
			if err != nil {
				return err.Error()
			}
			if diff := compareArray(g.Name, got, env.Array(g)); diff != "" {
				return diff
			}
		} else {
			got, err := b.Scalar(lane, g.Name)
			if err != nil {
				return err.Error()
			}
			if want := env.Scalar(g); got != want {
				return fmt.Sprintf("%s: rtl=%d behavioral=%d", g.Name, got, want)
			}
		}
	}
	return ""
}

// compareArray diffs one array port against its behavioral contents,
// guarding the length first: a port-width/array-length divergence is a
// reportable mismatch, not an index panic.
func compareArray(name string, got, want []int64) string {
	if len(got) != len(want) {
		return fmt.Sprintf("%s: length mismatch: rtl has %d elements, behavioral has %d",
			name, len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			return fmt.Sprintf("%s[%d]: rtl=%d behavioral=%d", name, i, got[i], want[i])
		}
	}
	return ""
}

// CompareEnvs diffs two interpreter environments over p's globals — the
// env-to-env form of CompareEnv, for callers that StoreEnv batched
// results and compare against a behavioral reference.
func CompareEnvs(p *ir.Program, got, want *interp.Env) string {
	for _, g := range p.Globals {
		if g.Type.IsArray() {
			if diff := compareArray(g.Name, got.Array(g), want.Array(g)); diff != "" {
				return diff
			}
		} else if gv, wv := got.Scalar(g), want.Scalar(g); gv != wv {
			return fmt.Sprintf("%s: rtl=%d behavioral=%d", g.Name, gv, wv)
		}
	}
	return ""
}

// Run steps all active lanes until each is done, failed, or at maxCycles
// (which marks the lane with a watchdog error, mirroring Sim.Run). It
// returns the first lane error, if any; per-lane errors remain readable
// via Err. Run does not allocate on the per-cycle path.
func (b *Batch) Run(maxCycles int) error {
	for len(b.active) > 0 {
		// Active lanes step in lockstep, so they share one cycle count.
		if int(b.cycle[b.active[0]]) >= maxCycles {
			for _, ln := range b.active {
				b.errs[ln] = fmt.Errorf("rtlsim: exceeded %d cycles (state %d)",
					maxCycles, b.state[ln])
			}
			b.active = b.active[:0]
			break
		}
		b.step()
	}
	for _, err := range b.errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// step executes one clock cycle across every active lane: combinational
// evaluation (all instructions, all lanes — struct-of-arrays), then the
// per-lane FSM transition decision and two-phase register commit. A lane
// whose state has no matching transition fails with its registers, cycle
// counter, and FSM state untouched (the pre-commit picture, matching the
// fixed scalar Sim).
func (b *Batch) step() {
	L := b.lanes
	vals := b.vals
	for ii := range b.p.insns {
		ins := &b.p.insns[ii]
		out := vals[int(ins.out)*L : int(ins.out)*L+L : int(ins.out)*L+L]
		switch ins.kind {
		case rtl.GateBin:
			b.evalBin(ins, out)
		case rtl.GateUn:
			av := vals[int(ins.a)*L : int(ins.a)*L+L]
			switch ins.un {
			case ir.OpNeg:
				for ln := 0; ln < L; ln++ {
					out[ln] = ins.cn.canon(-av[ln])
				}
			case ir.OpNot:
				for ln := 0; ln < L; ln++ {
					out[ln] = ins.cn.canon(^av[ln])
				}
			case ir.OpLNot:
				for ln := 0; ln < L; ln++ {
					out[ln] = ins.cn.canon(b2i(av[ln] == 0))
				}
			}
		case rtl.GateMux:
			sel := vals[int(ins.a)*L : int(ins.a)*L+L]
			av := vals[int(ins.b)*L : int(ins.b)*L+L]
			bv := vals[int(ins.c)*L : int(ins.c)*L+L]
			for ln := 0; ln < L; ln++ {
				if sel[ln] != 0 {
					out[ln] = ins.cn.canon(av[ln])
				} else {
					out[ln] = ins.cn.canon(bv[ln])
				}
			}
		case rtl.GateCopy:
			av := vals[int(ins.a)*L : int(ins.a)*L+L]
			for ln := 0; ln < L; ln++ {
				out[ln] = ins.cn.canon(av[ln])
			}
		case rtl.GateArrayRead:
			idxv := vals[int(ins.a)*L : int(ins.a)*L+L]
			for ln := 0; ln < L; ln++ {
				idx := idxv[ln]
				if idx >= 0 && idx < int64(len(ins.elems)) {
					out[ln] = ins.cn.canon(vals[int(ins.elems[idx])*L+ln])
				} else {
					out[ln] = 0
				}
			}
		}
	}
	// FSM transition + two-phase register commit, per active lane. The
	// active set is compacted in place: finished and failed lanes drop out.
	n := 0
	for _, ln := range b.active {
		st := int(b.state[ln])
		next := -2
		for _, tr := range b.p.trans[st] {
			if tr.cond < 0 {
				next = int(tr.to)
				break
			}
			cv := b2i(vals[int(tr.cond)*L+int(ln)] != 0)
			if cv == tr.condVal {
				next = int(tr.to)
				break
			}
		}
		if next == -2 {
			// No matching transition: report before committing anything,
			// leaving the lane's pre-transition state intact.
			b.errs[ln] = fmt.Errorf("rtlsim: state %d has no matching transition", st)
			continue
		}
		ws := b.p.writes[st]
		for i := range ws {
			b.scratch[i] = vals[int(ws[i].val)*L+int(ln)]
		}
		for i := range ws {
			vals[int(ws[i].reg)*L+int(ln)] = b.scratch[i]
		}
		b.cycle[ln]++
		if next == -1 {
			b.done[ln] = true
			continue
		}
		b.state[ln] = int32(next)
		b.active[n] = ln
		n++
	}
	b.active = b.active[:n]
}

// evalBin evaluates one binary-operator instruction across all lanes,
// bit-identical to interp.EvalBinOp (whose semantics are inlined here so
// the per-lane cost is one arithmetic op plus the canon shift).
func (b *Batch) evalBin(ins *insn, out []int64) {
	L := b.lanes
	av := b.vals[int(ins.a)*L : int(ins.a)*L+L]
	bv := b.vals[int(ins.b)*L : int(ins.b)*L+L]
	cn := ins.cn
	switch ins.bin {
	case ir.OpAdd:
		for ln := 0; ln < L; ln++ {
			out[ln] = cn.canon(av[ln] + bv[ln])
		}
	case ir.OpSub:
		for ln := 0; ln < L; ln++ {
			out[ln] = cn.canon(av[ln] - bv[ln])
		}
	case ir.OpMul:
		for ln := 0; ln < L; ln++ {
			out[ln] = cn.canon(av[ln] * bv[ln])
		}
	case ir.OpDiv:
		for ln := 0; ln < L; ln++ {
			var v int64
			switch {
			case bv[ln] == 0:
				// Division by zero yields zero (hardware convention).
			case ins.uns:
				v = int64(uint64(av[ln]) / uint64(bv[ln]))
			default:
				v = av[ln] / bv[ln]
			}
			out[ln] = cn.canon(v)
		}
	case ir.OpRem:
		for ln := 0; ln < L; ln++ {
			var v int64
			switch {
			case bv[ln] == 0:
			case ins.uns:
				v = int64(uint64(av[ln]) % uint64(bv[ln]))
			default:
				v = av[ln] % bv[ln]
			}
			out[ln] = cn.canon(v)
		}
	case ir.OpAnd:
		for ln := 0; ln < L; ln++ {
			out[ln] = cn.canon(av[ln] & bv[ln])
		}
	case ir.OpOr:
		for ln := 0; ln < L; ln++ {
			out[ln] = cn.canon(av[ln] | bv[ln])
		}
	case ir.OpXor:
		for ln := 0; ln < L; ln++ {
			out[ln] = cn.canon(av[ln] ^ bv[ln])
		}
	case ir.OpShl:
		for ln := 0; ln < L; ln++ {
			var v int64
			if s := uint64(bv[ln]); s < 64 {
				v = int64(uint64(av[ln]) << s)
			}
			out[ln] = cn.canon(v)
		}
	case ir.OpShr:
		for ln := 0; ln < L; ln++ {
			var v int64
			s := uint64(bv[ln])
			switch {
			case s >= 64:
				if !ins.uns && av[ln] < 0 {
					v = -1
				}
			case ins.uns:
				v = int64(uint64(av[ln]) >> s)
			default:
				v = av[ln] >> s
			}
			out[ln] = cn.canon(v)
		}
	case ir.OpEq:
		for ln := 0; ln < L; ln++ {
			out[ln] = cn.canon(b2i(av[ln] == bv[ln]))
		}
	case ir.OpNe:
		for ln := 0; ln < L; ln++ {
			out[ln] = cn.canon(b2i(av[ln] != bv[ln]))
		}
	case ir.OpLt:
		if ins.uns {
			for ln := 0; ln < L; ln++ {
				out[ln] = cn.canon(b2i(uint64(av[ln]) < uint64(bv[ln])))
			}
		} else {
			for ln := 0; ln < L; ln++ {
				out[ln] = cn.canon(b2i(av[ln] < bv[ln]))
			}
		}
	case ir.OpLe:
		if ins.uns {
			for ln := 0; ln < L; ln++ {
				out[ln] = cn.canon(b2i(uint64(av[ln]) <= uint64(bv[ln])))
			}
		} else {
			for ln := 0; ln < L; ln++ {
				out[ln] = cn.canon(b2i(av[ln] <= bv[ln]))
			}
		}
	case ir.OpGt:
		if ins.uns {
			for ln := 0; ln < L; ln++ {
				out[ln] = cn.canon(b2i(uint64(av[ln]) > uint64(bv[ln])))
			}
		} else {
			for ln := 0; ln < L; ln++ {
				out[ln] = cn.canon(b2i(av[ln] > bv[ln]))
			}
		}
	case ir.OpGe:
		if ins.uns {
			for ln := 0; ln < L; ln++ {
				out[ln] = cn.canon(b2i(uint64(av[ln]) >= uint64(bv[ln])))
			}
		} else {
			for ln := 0; ln < L; ln++ {
				out[ln] = cn.canon(b2i(av[ln] >= bv[ln]))
			}
		}
	case ir.OpLAnd:
		for ln := 0; ln < L; ln++ {
			out[ln] = cn.canon(b2i(av[ln] != 0 && bv[ln] != 0))
		}
	case ir.OpLOr:
		for ln := 0; ln < L; ln++ {
			out[ln] = cn.canon(b2i(av[ln] != 0 || bv[ln] != 0))
		}
	}
}

func b2i(v bool) int64 {
	if v {
		return 1
	}
	return 0
}

// LaneResult is one lane's outcome from RunBatch.
type LaneResult struct {
	Cycles int
	Err    error
}

// RunBatch simulates one lane per environment: each env's globals drive
// one lane's ports, every lane steps to completion (bounded by
// maxCycles), and each lane's final port values are stored back into its
// env for comparison against a behavioral reference. Environments beyond
// MaxLanes are chunked into successive batches, so callers simply pass
// their whole trial set.
func (p *Program) RunBatch(prog *ir.Program, envs []*interp.Env, maxCycles int) []LaneResult {
	out := make([]LaneResult, len(envs))
	for start := 0; start < len(envs); start += MaxLanes {
		end := min(start+MaxLanes, len(envs))
		b := p.NewBatch(end - start)
		for i := start; i < end; i++ {
			// A failed load marks the lane; Run skips it.
			_ = b.LoadEnv(i-start, prog, envs[i])
		}
		b.Run(maxCycles)
		for i := start; i < end; i++ {
			ln := i - start
			out[i] = LaneResult{Cycles: b.Cycles(ln), Err: b.Err(ln)}
			if out[i].Err == nil {
				out[i].Err = b.StoreEnv(ln, prog, envs[i])
			}
		}
	}
	return out
}
