// Compiled, batched execution. Compile lowers a netlist once into a
// dense instruction slice — signals keyed by Signal.ID into flat state
// arrays, no maps, no pointer chasing — and a Batch steps up to MaxLanes
// independent stimulus lanes through each instruction, so gate dispatch,
// FSM transition lookup, and register-commit bookkeeping are paid once
// per instruction per cycle instead of once per trial.
//
// The compiler classifies every signal by width into one of two
// execution domains:
//
//   - 1-bit signals (booleans and unsigned 1-bit integers: guards, FSM
//     condition nets, comparison outputs, mux selects — the majority of
//     nets in control-dominated blocks) are BIT-SLICED: all lanes of
//     one signal pack into a single uint64 word, one bit per lane, so
//     AND/OR/NOT/XOR/select over them evaluate the whole batch in one
//     bitwise instruction instead of a per-lane loop.
//   - multi-bit datapath signals keep the struct-of-arrays layout
//     (vals[slot*lanes+lane]), one int64 per lane.
//
// Explicit boundary instructions bridge the domains: a wide comparison
// packs its predicate (opCmpPack), a packed select steers wide words
// (opMuxWideSel), and width-converting copies pack or unpack
// (opNarrowBit / opWidenBit). CompileSoA disables the classification —
// every signal stays struct-of-arrays — and serves as the reference
// batch oracle the bit-sliced path is differentially pinned against,
// alongside the scalar Sim and package interp.
package rtlsim

import (
	"fmt"

	"sparkgo/internal/ir"
	"sparkgo/internal/rtl"
)

// MaxLanes is the widest stimulus batch one Batch steps in lockstep.
const MaxLanes = 64

// WatchdogCycles derives the simulation cycle bound from the FSM size:
// generous headroom for loop trip counts (the sequential baselines need
// roughly numStates × trips cycles), but small enough that a
// non-terminating design errors after thousands of cycles, not millions.
// Every trial loop in the system — core.Verify, the exploration engine's
// latency measurement, the differential harness — derives its bound here,
// so a hung FSM costs the same bounded work everywhere.
func WatchdogCycles(numStates int) int {
	if numStates < 1 {
		numStates = 1
	}
	return numStates*1024 + 16
}

// canonDesc is the precomputed canonicalization of one signal type:
// Type.Canon reduced to a shift pair (mask to width, then sign- or
// zero-extend), so the hot loop never touches *ir.Type.
type canonDesc struct {
	shift  uint8 // 64 - width; 0 for full-width values (canon = identity)
	signed bool
	isBool bool
}

func canonOf(t *ir.Type) canonDesc {
	if t.IsBool() {
		return canonDesc{isBool: true}
	}
	w := t.Width()
	if w >= 64 {
		return canonDesc{}
	}
	return canonDesc{shift: uint8(64 - w), signed: t.Signed}
}

func (c canonDesc) canon(v int64) int64 {
	if c.isBool {
		return v & 1
	}
	if c.shift == 0 {
		return v
	}
	if c.signed {
		return v << c.shift >> c.shift
	}
	return int64(uint64(v) << c.shift >> c.shift)
}

// isBitType reports whether a signal of this type can be bit-sliced:
// its canonical values are exactly {0, 1}. Booleans and unsigned 1-bit
// integers qualify; a signed 1-bit integer does not (its canonical
// values are {0, -1}) and stays in the wide domain.
func isBitType(t *ir.Type) bool {
	if t == nil {
		return false
	}
	if t.IsBool() {
		return true
	}
	return t.Kind == ir.KindInt && !t.Signed && t.Bits == 1
}

// slotRef locates one signal's storage: a word index into the packed
// bit array when bit is set, else a row index into the wide
// struct-of-arrays state. idx < 0 means "absent" (unused operand,
// unconditional FSM edge, void return).
type slotRef struct {
	idx int32
	bit bool
}

var noSlot = slotRef{idx: -1}

// opcode selects one compiled instruction form. The packed group
// evaluates all lanes in a single bitwise word operation; the wide
// group is the struct-of-arrays lane loop; the boundary group converts
// between the domains; the lane group is the fully generic per-lane
// fallback for rare mixed-domain shapes.
type opcode uint8

const (
	// Wide struct-of-arrays ops (all operands and the output are wide).
	opWideBin opcode = iota
	opWideUn
	opWideMux
	opWideCopy
	opWideArrayRead

	// Packed bit-sliced ops (single uint64 word per operand).
	opBitAnd    // out = a & b
	opBitOr     // out = a | b
	opBitXor    // out = a ^ b (also Ne over bits)
	opBitXnor   // out = ^(a ^ b) (Eq over bits)
	opBitAndNot // out = a &^ b (Gt over bits; Lt with swapped operands)
	opBitOrNot  // out = a | ^b (Ge over bits; Le with swapped operands)
	opBitNot    // out = ^a
	opBitCopy   // out = a
	opBitMux    // out = sel&a | ^sel&b

	// Boundary ops bridging the domains.
	opCmpPack    // wide comparison/logical test -> packed predicate
	opMuxWideSel // packed select steering wide words -> wide
	opWidenBit   // packed bit -> wide word (canonicalized to out type)
	opNarrowBit  // wide word -> packed bit

	// Generic per-lane fallback (any operand/output domain mix).
	opLaneBin
	opLaneUn
	opLaneMux
	opLaneCopy
	opLaneArrayRead
)

// class buckets opcodes for the instruction-mix counters surfaced in
// /metrics.
func (op opcode) class() string {
	switch {
	case op >= opBitAnd && op <= opBitMux:
		return MixPacked
	case op >= opCmpPack && op <= opNarrowBit:
		return MixBoundary
	case op >= opLaneBin:
		return MixLane
	}
	return MixWide
}

// Instruction-mix class names (label values of the
// sparkgo_sim_insns_total metric).
const (
	MixPacked   = "packed"
	MixBoundary = "boundary"
	MixWide     = "wide"
	MixLane     = "lane"
)

// InsnMix counts a compiled program's instructions per execution class.
type InsnMix struct {
	// Packed instructions evaluate all lanes in one bitwise word op.
	Packed int `json:"packed"`
	// Boundary instructions pack or unpack between the domains
	// (wide comparison -> predicate, packed select over wide words,
	// widening/narrowing copies).
	Boundary int `json:"boundary"`
	// Wide instructions are struct-of-arrays lane loops over
	// multi-bit values.
	Wide int `json:"wide"`
	// Lane instructions are the generic per-lane fallback for rare
	// mixed-domain shapes.
	Lane int `json:"lane"`
}

// Total returns the instruction count across all classes.
func (m InsnMix) Total() int { return m.Packed + m.Boundary + m.Wide + m.Lane }

// insn is one compiled gate: operands resolved to slots in their
// domains, output canonicalization resolved to a shift pair.
// Instructions retain the module's topological gate order.
type insn struct {
	op    opcode
	kind  rtl.GateKind // generic-fallback dispatch
	bin   ir.BinOp
	un    ir.UnOp
	uns   bool // unsigned semantics for cmp/div/rem/shr
	cn    canonDesc
	out   slotRef
	a     slotRef
	b     slotRef
	c     slotRef
	elems []slotRef // GateArrayRead element slots
}

// slotInit seeds one wide slot (constants, register resets).
type slotInit struct {
	slot int32
	val  int64
}

// bitInit seeds one packed word: all lanes of a 1-bit constant or
// register reset at once (word is 0 or all-ones).
type bitInit struct {
	slot int32
	word uint64
}

// regCommit is one compiled register write: commit val into reg at the
// end of every cycle spent in its state. cn is the register type's
// canonicalization, applied on cross-domain commits.
type regCommit struct {
	reg slotRef
	val slotRef
	cn  canonDesc
}

// transEdge is one compiled FSM edge. cond.idx < 0 means unconditional.
type transEdge struct {
	cond    slotRef
	condVal int64 // 1 when the edge fires on true, 0 on false
	to      int32 // -1: done
}

// portSlot locates one architectural port in the state arrays.
type portSlot struct {
	slot slotRef
	cn   canonDesc
}

// Program is a netlist compiled for batched execution. Compile once,
// then run any number of Batches (a Program is immutable and safe for
// concurrent Batches).
type Program struct {
	M *rtl.Module

	wideSlots int
	bitSlots  int
	numStates int
	insns     []insn
	wideInits []slotInit // wide constant drivers + register resets
	bitInits  []bitInit  // packed constant drivers + register resets
	wideRegs  []slotInit // wide register resets only (for Reset)
	bitRegs   []bitInit  // packed register resets only (for Reset)
	writes    [][]regCommit
	trans     [][]transEdge
	maxWrites int
	maxEdges  int
	mix       InsnMix

	// need[st] is a bitmap over insns: the transitive producer closure
	// of state st's register-write sources and transition conditions.
	// Each cycle only the union over active states evaluates (nil on
	// the SoA reference path, which keeps the full combinational
	// sweep of the original batch model).
	need      [][]uint64
	needWords int

	scalarPort map[string]portSlot
	arrayPort  map[string][]portSlot
	retSlot    slotRef // idx < 0 when the design is void

	err error // compile-time validation failure, surfaced per lane
}

// Compile lowers a module into a bit-sliced Program: 1-bit signals pack
// all lanes into single words, multi-bit signals stay struct-of-arrays.
// An op the simulator does not implement is reported at run time (every
// lane errors), mirroring the scalar Sim's behaviour; the gate network
// itself is validated here.
func Compile(m *rtl.Module) *Program { return compileProgram(m, true) }

// CompileSoA lowers a module with bit-slicing disabled: every signal
// keeps the struct-of-arrays layout. This is the reference batch
// execution model the bit-sliced path is differentially tested against,
// and the baseline the BENCH_sim bit-parallel ratchet measures.
func CompileSoA(m *rtl.Module) *Program { return compileProgram(m, false) }

// Mix returns the compiled instruction counts per execution class.
func (p *Program) Mix() InsnMix { return p.mix }

// BitSlots returns how many signals were packed into bit-sliced words.
func (p *Program) BitSlots() int { return p.bitSlots }

// WideSlots returns how many signals use the struct-of-arrays layout.
func (p *Program) WideSlots() int { return p.wideSlots }

func compileProgram(m *rtl.Module, bitSliced bool) *Program {
	p := &Program{
		M:          m,
		numStates:  m.NumStates,
		scalarPort: map[string]portSlot{},
		arrayPort:  map[string][]portSlot{},
		retSlot:    noSlot,
	}
	maxID := -1
	for _, s := range m.Signals {
		if s.ID > maxID {
			maxID = s.ID
		}
	}
	slot := make([]slotRef, maxID+1)
	for _, s := range m.Signals {
		if bitSliced && isBitType(s.Type) {
			slot[s.ID] = slotRef{idx: int32(p.bitSlots), bit: true}
			p.bitSlots++
		} else {
			slot[s.ID] = slotRef{idx: int32(p.wideSlots)}
			p.wideSlots++
		}
	}
	at := func(s *rtl.Signal) slotRef {
		if s == nil {
			return noSlot
		}
		return slot[s.ID]
	}
	for _, s := range m.Signals {
		sr := slot[s.ID]
		switch s.Kind {
		case rtl.SigConst:
			if sr.bit {
				p.bitInits = append(p.bitInits, bitInit{sr.idx, bitWord(s.Const)})
			} else {
				p.wideInits = append(p.wideInits, slotInit{sr.idx, s.Const})
			}
		case rtl.SigReg:
			if sr.bit {
				in := bitInit{sr.idx, bitWord(s.Init)}
				p.bitInits = append(p.bitInits, in)
				p.bitRegs = append(p.bitRegs, in)
			} else {
				in := slotInit{sr.idx, s.Init}
				p.wideInits = append(p.wideInits, in)
				p.wideRegs = append(p.wideRegs, in)
			}
		}
	}
	for _, g := range m.Gates {
		p.insns = append(p.insns, p.lowerGate(g, at))
	}
	for i := range p.insns {
		switch p.insns[i].op.class() {
		case MixPacked:
			p.mix.Packed++
		case MixBoundary:
			p.mix.Boundary++
		case MixLane:
			p.mix.Lane++
		default:
			p.mix.Wide++
		}
	}
	p.writes = make([][]regCommit, m.NumStates)
	for _, rw := range m.RegWrites {
		if rw.State >= 0 && rw.State < m.NumStates {
			p.writes[rw.State] = append(p.writes[rw.State],
				regCommit{reg: at(rw.Reg), val: at(rw.Value), cn: canonOf(rw.Reg.Type)})
		}
	}
	for _, ws := range p.writes {
		if len(ws) > p.maxWrites {
			p.maxWrites = len(ws)
		}
	}
	p.trans = make([][]transEdge, m.NumStates)
	for _, tr := range m.Trans {
		if tr.From < 0 || tr.From >= m.NumStates {
			continue
		}
		e := transEdge{cond: noSlot, to: int32(tr.To)}
		if tr.Cond != nil {
			e.cond = at(tr.Cond)
			if tr.CondValue {
				e.condVal = 1
			}
		}
		p.trans[tr.From] = append(p.trans[tr.From], e)
	}
	for _, es := range p.trans {
		if len(es) > p.maxEdges {
			p.maxEdges = len(es)
		}
	}
	for name, sig := range m.ScalarPort {
		p.scalarPort[name] = portSlot{at(sig), canonOf(sig.Type)}
	}
	for name, elems := range m.ArrayPort {
		ps := make([]portSlot, len(elems))
		for i, sig := range elems {
			ps[i] = portSlot{at(sig), canonOf(sig.Type)}
		}
		p.arrayPort[name] = ps
	}
	if m.RetSignal != nil {
		p.retSlot = at(m.RetSignal)
	}
	// A single-state FSM observes its whole netlist every cycle, so
	// per-state need sets would only add iteration overhead there.
	if bitSliced && m.NumStates > 1 && len(m.Gates) > 0 {
		p.buildNeedSets(m, maxID)
	}
	return p
}

// buildNeedSets computes, per FSM state, the bitmap of instructions
// whose outputs that state can observe: the transitive producer closure
// of its register-write sources and its outgoing transition conditions.
// A cycle then evaluates only the union over active states — in a
// many-state sequential design most of the netlist is dead on any given
// cycle, and the bit-sliced stepper skips it entirely.
func (p *Program) buildNeedSets(m *rtl.Module, maxID int) {
	producer := make([]int32, maxID+1)
	for i := range producer {
		producer[i] = -1
	}
	for i, g := range m.Gates {
		producer[g.Out.ID] = int32(i)
	}
	words := (len(m.Gates) + 63) / 64
	p.needWords = words
	p.need = make([][]uint64, m.NumStates)
	flat := make([]uint64, words*m.NumStates)
	stack := make([]int32, 0, len(m.Gates))
	var bm []uint64
	mark := func(s *rtl.Signal) {
		if s == nil {
			return
		}
		pi := producer[s.ID]
		if pi < 0 || bm[pi>>6]&(1<<uint(pi&63)) != 0 {
			return
		}
		bm[pi>>6] |= 1 << uint(pi&63)
		stack = append(stack, pi)
	}
	for st := 0; st < m.NumStates; st++ {
		bm = flat[st*words : (st+1)*words]
		stack = stack[:0]
		for _, rw := range m.RegWrites {
			if rw.State == st {
				mark(rw.Value)
			}
		}
		for _, tr := range m.Trans {
			if tr.From == st {
				mark(tr.Cond)
			}
		}
		for len(stack) > 0 {
			pi := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, in := range m.Gates[pi].In {
				mark(in)
			}
		}
		p.need[st] = bm
	}
}

// bitWord expands a canonical 1-bit value to its packed word: every
// lane of a constant (or register reset) holds the same bit.
func bitWord(v int64) uint64 {
	if v&1 != 0 {
		return ^uint64(0)
	}
	return 0
}

// lowerGate classifies one gate by the domains of its operands and
// output and picks the strongest instruction form that covers it:
// packed single-word ops when everything is bit-sliced, the
// struct-of-arrays loop when everything is wide, a specialized boundary
// op on the common crossings, and the generic per-lane fallback for the
// rest.
func (p *Program) lowerGate(g *rtl.Gate, at func(*rtl.Signal) slotRef) insn {
	in := insn{
		kind: g.Kind, bin: g.Bin, un: g.Un, uns: g.UnsignedOps,
		cn: canonOf(g.Out.Type), out: at(g.Out),
		a: noSlot, b: noSlot, c: noSlot,
	}
	switch g.Kind {
	case rtl.GateBin:
		in.a, in.b = at(g.In[0]), at(g.In[1])
		if !binOpKnown(g.Bin) {
			p.err = fmt.Errorf("rtlsim: gate %s: unknown binary op %v", g.Out.Name, g.Bin)
		}
		in.op = classifyBin(&in)
	case rtl.GateUn:
		in.a = at(g.In[0])
		in.op = classifyUn(&in)
	case rtl.GateMux:
		in.a, in.b, in.c = at(g.In[0]), at(g.In[1]), at(g.In[2])
		in.op = classifyMux(&in)
	case rtl.GateCopy:
		in.a = at(g.In[0])
		in.op = classifyCopy(&in)
	case rtl.GateArrayRead:
		in.a = at(g.In[0])
		in.elems = make([]slotRef, len(g.In)-1)
		allWide := !in.a.bit && !in.out.bit
		for i, e := range g.In[1:] {
			in.elems[i] = at(e)
			if in.elems[i].bit {
				allWide = false
			}
		}
		if allWide {
			in.op = opWideArrayRead
		} else {
			in.op = opLaneArrayRead
		}
	default:
		p.err = fmt.Errorf("rtlsim: gate %s: unknown gate kind %v", g.Out.Name, g.Kind)
		in.op = opLaneCopy
	}
	return in
}

// classifyBin maps a binary gate onto an opcode. Over packed 1-bit
// operands every comparison and logical op reduces to one or two
// bitwise word instructions (values are exactly {0,1}, so signed and
// unsigned comparison agree); a wide comparison producing a 1-bit
// predicate packs at the boundary; pure-wide ops keep the SoA loop.
func classifyBin(in *insn) opcode {
	if in.out.bit && in.a.bit && in.b.bit {
		switch in.bin {
		case ir.OpAnd, ir.OpLAnd, ir.OpMul:
			return opBitAnd
		case ir.OpOr, ir.OpLOr:
			return opBitOr
		case ir.OpXor, ir.OpNe:
			return opBitXor
		case ir.OpEq:
			return opBitXnor
		case ir.OpGt:
			return opBitAndNot // a > b over bits: a &^ b
		case ir.OpLt:
			in.a, in.b = in.b, in.a
			return opBitAndNot // a < b == b &^ a
		case ir.OpGe:
			return opBitOrNot // a >= b over bits: a | ^b
		case ir.OpLe:
			in.a, in.b = in.b, in.a
			return opBitOrNot // a <= b == b | ^a
		}
		return opLaneBin
	}
	if in.out.bit && !in.a.bit && !in.b.bit {
		switch in.bin {
		case ir.OpEq, ir.OpNe, ir.OpLt, ir.OpLe, ir.OpGt, ir.OpGe, ir.OpLAnd, ir.OpLOr:
			return opCmpPack
		}
		return opLaneBin
	}
	if !in.out.bit && !in.a.bit && !in.b.bit {
		return opWideBin
	}
	return opLaneBin
}

func classifyUn(in *insn) opcode {
	if in.out.bit && in.a.bit {
		switch in.un {
		case ir.OpNot, ir.OpLNot:
			return opBitNot
		case ir.OpNeg:
			// -v canonicalized to 1 bit is v itself.
			return opBitCopy
		}
		return opLaneUn
	}
	if !in.out.bit && !in.a.bit {
		return opWideUn
	}
	return opLaneUn
}

func classifyMux(in *insn) opcode {
	if in.a.bit {
		if in.out.bit && in.b.bit && in.c.bit {
			return opBitMux
		}
		if !in.out.bit && !in.b.bit && !in.c.bit {
			return opMuxWideSel
		}
		return opLaneMux
	}
	if !in.out.bit && !in.b.bit && !in.c.bit {
		return opWideMux
	}
	return opLaneMux
}

func classifyCopy(in *insn) opcode {
	switch {
	case in.out.bit && in.a.bit:
		return opBitCopy
	case in.out.bit:
		return opNarrowBit
	case in.a.bit:
		return opWidenBit
	}
	return opWideCopy
}

func binOpKnown(op ir.BinOp) bool {
	switch op {
	case ir.OpAdd, ir.OpSub, ir.OpMul, ir.OpDiv, ir.OpRem,
		ir.OpAnd, ir.OpOr, ir.OpXor, ir.OpShl, ir.OpShr,
		ir.OpEq, ir.OpNe, ir.OpLt, ir.OpLe, ir.OpGt, ir.OpGe,
		ir.OpLAnd, ir.OpLOr:
		return true
	}
	return false
}
