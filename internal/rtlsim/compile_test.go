package rtlsim_test

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"sparkgo/internal/core"
	"sparkgo/internal/ild"
	"sparkgo/internal/interp"
	"sparkgo/internal/ir"
	"sparkgo/internal/rtl"
	"sparkgo/internal/rtlsim"
	"sparkgo/internal/testutil"
)

// differentialDesigns enumerates the DifferentialILD design matrix: every
// buffer size in both synthesis regimes plus the natural (while-form)
// description — the corpus the compiled path is pinned against.
func differentialDesigns(t *testing.T) map[string]*core.Result {
	t.Helper()
	designs := map[string]*core.Result{}
	for _, n := range []int{4, 8, 16, 32} {
		micro, err := core.Synthesize(ild.Program(n), core.Options{Preset: core.MicroprocessorBlock})
		if err != nil {
			t.Fatalf("n=%d micro: %v", n, err)
		}
		designs[fmt.Sprintf("micro/n=%d", n)] = micro
		classical, err := core.Synthesize(ild.Program(n), core.Options{Preset: core.ClassicalASIC})
		if err != nil {
			t.Fatalf("n=%d classical: %v", n, err)
		}
		designs[fmt.Sprintf("classical/n=%d", n)] = classical
		natural, err := core.Synthesize(ild.NaturalProgram(n), core.Options{
			Preset: core.MicroprocessorBlock, NormalizeWhile: true,
		})
		if err != nil {
			t.Fatalf("n=%d natural: %v", n, err)
		}
		designs[fmt.Sprintf("natural/n=%d", n)] = natural
	}
	return designs
}

// compileModes enumerates both compiled execution models: the
// bit-sliced default and the struct-of-arrays reference it is pinned
// against.
var compileModes = []struct {
	name    string
	compile func(*rtl.Module) *rtlsim.Program
}{
	{"bitsliced", rtlsim.Compile},
	{"soa", rtlsim.CompileSoA},
}

// TestCompiledDifferentialSuite pins both compiled batch paths — the
// bit-sliced model and the struct-of-arrays reference — bit-for-bit
// against the scalar Sim (the reference implementation) and the
// behavioral interpreter on every DifferentialILD design: for each
// seeded stimulus vector, all four executions must agree on every
// architectural port and on the per-trial cycle count.
func TestCompiledDifferentialSuite(t *testing.T) {
	for name, res := range differentialDesigns(t) {
		name, res := name, res
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			const trials = 24
			rng := rand.New(rand.NewSource(77))
			input := res.Input
			maxCycles := rtlsim.WatchdogCycles(res.Module.NumStates)

			envs := make([]*interp.Env, trials)
			refs := make([]*interp.Env, trials)
			scalarCycles := make([]int, trials)
			for i := range envs {
				envs[i] = testutil.RandomEnv(input, rng)
				refs[i] = envs[i].Clone()
				if _, err := interp.New(input).RunMain(refs[i]); err != nil {
					t.Fatalf("trial %d: interp: %v", i, err)
				}
				sim := rtlsim.New(res.Module)
				if err := sim.LoadEnv(input, envs[i].Clone()); err != nil {
					t.Fatalf("trial %d: scalar load: %v", i, err)
				}
				cycles, err := sim.Run(maxCycles)
				if err != nil {
					t.Fatalf("trial %d: scalar run: %v", i, err)
				}
				scalarCycles[i] = cycles
				if diff := sim.CompareEnv(input, refs[i]); diff != "" {
					t.Fatalf("trial %d: scalar vs interp: %s", i, diff)
				}
			}

			for _, mode := range compileModes {
				prog := mode.compile(res.Module)
				batchEnvs := make([]*interp.Env, trials)
				for i := range envs {
					batchEnvs[i] = envs[i].Clone()
				}
				for i, lr := range prog.RunBatch(input, batchEnvs, maxCycles) {
					if lr.Err != nil {
						t.Fatalf("trial %d: %s batch: %v", i, mode.name, lr.Err)
					}
					if lr.Cycles != scalarCycles[i] {
						t.Fatalf("trial %d: %s batch ran %d cycles, scalar %d",
							i, mode.name, lr.Cycles, scalarCycles[i])
					}
					// RunBatch stored the lane's final ports back into
					// batchEnvs[i]; it must match the behavioral reference
					// exactly.
					if diff := rtlsim.CompareEnvs(input, batchEnvs[i], refs[i]); diff != "" {
						t.Fatalf("trial %d: %s batch vs interp: %s", i, mode.name, diff)
					}
				}
			}
		})
	}
}

// TestInstructionMix pins the width classification itself: a sequential
// control-dominated design must compile to a stream with genuine packed
// single-word instructions and boundary crossings under the bit-sliced
// model, while the SoA reference must contain none; both models cover
// every gate exactly once.
func TestInstructionMix(t *testing.T) {
	res := dataDependentDesign(t)
	gates := len(res.Module.Gates)

	bit := rtlsim.Compile(res.Module).Mix()
	if bit.Total() != gates {
		t.Fatalf("bit-sliced mix %+v covers %d insns, module has %d gates", bit, bit.Total(), gates)
	}
	if bit.Packed == 0 {
		t.Fatalf("bit-sliced mix %+v has no packed instructions on a control-dominated design", bit)
	}
	if bit.Boundary == 0 {
		t.Fatalf("bit-sliced mix %+v has no pack/unpack boundary instructions", bit)
	}

	soa := rtlsim.CompileSoA(res.Module).Mix()
	if soa.Total() != gates {
		t.Fatalf("SoA mix %+v covers %d insns, module has %d gates", soa, soa.Total(), gates)
	}
	if soa.Packed != 0 || soa.Boundary != 0 {
		t.Fatalf("SoA reference mix %+v contains bit-sliced instructions", soa)
	}
}

// dataDependentDesign synthesizes a classical-FSM design whose cycle
// count depends on the stimulus, so batched lanes genuinely finish at
// different times (exercising active-set compaction).
func dataDependentDesign(t *testing.T) *core.Result {
	t.Helper()
	p := ild.Program(8)
	res, err := core.Synthesize(p, core.Options{Preset: core.ClassicalASIC})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestLaneIndependencePermutation is the seeded lane-independence
// property: permuting the stimulus order across lanes never changes any
// trial's result. Each trial's (cycles, final ports) must depend only on
// its own stimulus, not on which lane it occupies or who its batch
// neighbours are.
func TestLaneIndependencePermutation(t *testing.T) {
	res := dataDependentDesign(t)
	input := res.Input
	prog := rtlsim.Compile(res.Module)
	maxCycles := rtlsim.WatchdogCycles(res.Module.NumStates)

	const trials = rtlsim.MaxLanes
	rng := rand.New(rand.NewSource(99))
	base := make([]*interp.Env, trials)
	for i := range base {
		base[i] = testutil.RandomEnv(input, rng)
	}
	run := func(order []int) ([]int, []*interp.Env) {
		envs := make([]*interp.Env, trials)
		for pos, idx := range order {
			envs[pos] = base[idx].Clone()
		}
		cycles := make([]int, trials)
		for pos, lr := range prog.RunBatch(input, envs, maxCycles) {
			if lr.Err != nil {
				t.Fatalf("lane %d (trial %d): %v", pos, order[pos], lr.Err)
			}
			cycles[pos] = lr.Cycles
		}
		return cycles, envs
	}

	identity := make([]int, trials)
	for i := range identity {
		identity[i] = i
	}
	wantCycles, wantEnvs := run(identity)

	// The workload must actually spread finish times across lanes, or the
	// property is vacuous for the compaction path.
	spread := map[int]bool{}
	for _, c := range wantCycles {
		spread[c] = true
	}
	if len(spread) < 2 {
		t.Fatalf("workload finished every lane in the same %d cycles; want data-dependent spread", wantCycles[0])
	}

	perm := rand.New(rand.NewSource(7))
	for round := 0; round < 5; round++ {
		order := perm.Perm(trials)
		gotCycles, gotEnvs := run(order)
		for pos, idx := range order {
			if gotCycles[pos] != wantCycles[idx] {
				t.Fatalf("round %d: trial %d ran %d cycles in lane %d, %d in lane %d",
					round, idx, gotCycles[pos], pos, wantCycles[idx], idx)
			}
			if diff := rtlsim.CompareEnvs(input, gotEnvs[pos], wantEnvs[idx]); diff != "" {
				t.Fatalf("round %d: trial %d diverged in lane %d: %s", round, idx, pos, diff)
			}
		}
	}
}

// hungModule builds a minimal non-terminating design: a one-state FSM
// whose only transition loops back to itself, with an input port so
// environments load cleanly.
func hungModule() *rtl.Module {
	m := rtl.NewModule("hung")
	a := m.Input("a", ir.U8)
	m.ScalarPort["a"] = a
	m.NumStates = 1
	m.Trans = []rtl.Transition{{From: 0, To: 0}}
	return m
}

// TestWatchdogHungFSM is the watchdog regression: a non-terminating
// design must error after the schedule-derived bound — thousands of
// cycles — on both the scalar and the batched path, not after the old
// hardcoded 1<<22-cycle budget.
func TestWatchdogHungFSM(t *testing.T) {
	m := hungModule()
	bound := rtlsim.WatchdogCycles(m.NumStates)
	if bound >= 1<<22 {
		t.Fatalf("derived bound %d is no better than the old hardcoded 1<<22", bound)
	}

	sim := rtlsim.New(m)
	cycles, err := sim.Run(bound)
	if err == nil {
		t.Fatal("scalar: expected watchdog error for hung FSM")
	}
	if cycles != bound {
		t.Fatalf("scalar: stopped at %d cycles, want the derived bound %d", cycles, bound)
	}

	prog := rtlsim.Compile(m)
	batch := prog.NewBatch(4)
	batch.Run(bound)
	for ln := 0; ln < 4; ln++ {
		err := batch.Err(ln)
		if err == nil {
			t.Fatalf("batch lane %d: expected watchdog error for hung FSM", ln)
		}
		if !strings.Contains(err.Error(), fmt.Sprint(bound)) {
			t.Fatalf("batch lane %d: error %q does not mention the bound %d", ln, err, bound)
		}
		if batch.Cycles(ln) != bound {
			t.Fatalf("batch lane %d: stopped at %d cycles, want %d", ln, batch.Cycles(ln), bound)
		}
	}
}

// stuckModule builds a design whose single state has no matching
// transition (its only edge requires a condition that is constant-false)
// and a register write that would fire in that state — the setup for the
// commit-before-transition-check corruption bug.
func stuckModule() *rtl.Module {
	m := rtl.NewModule("stuck")
	r := m.Reg("r", ir.U8, 5)
	m.ScalarPort["r"] = r
	nine := m.ConstSignal(9, ir.U8)
	never := m.ConstSignal(0, ir.Bool)
	m.NumStates = 1
	m.RegWrites = []rtl.RegWrite{{Reg: r, State: 0, Value: nine}}
	m.Trans = []rtl.Transition{{From: 0, Cond: never, CondValue: true, To: -1}}
	return m
}

// TestNoTransitionLeavesStateUntouched is the corruption regression: when
// no FSM transition matches, the simulator must report the error with the
// pre-commit picture intact — registers unwritten, cycle counter and FSM
// state unchanged — on both the scalar and the batched path.
func TestNoTransitionLeavesStateUntouched(t *testing.T) {
	sim := rtlsim.New(stuckModule())
	if err := sim.Step(); err == nil {
		t.Fatal("scalar: expected no-matching-transition error")
	}
	if v, _ := sim.Scalar("r"); v != 5 {
		t.Errorf("scalar: register committed on failed transition: r=%d, want 5", v)
	}
	if sim.Cycles() != 0 {
		t.Errorf("scalar: cycle counter advanced on failed transition: %d, want 0", sim.Cycles())
	}
	if sim.State() != 0 {
		t.Errorf("scalar: state moved on failed transition: %d, want 0", sim.State())
	}

	prog := rtlsim.Compile(stuckModule())
	batch := prog.NewBatch(3)
	batch.Run(16)
	for ln := 0; ln < 3; ln++ {
		if err := batch.Err(ln); err == nil {
			t.Fatalf("batch lane %d: expected no-matching-transition error", ln)
		}
		if v, _ := batch.Scalar(ln, "r"); v != 5 {
			t.Errorf("batch lane %d: register committed on failed transition: r=%d, want 5", ln, v)
		}
		if batch.Cycles(ln) != 0 {
			t.Errorf("batch lane %d: cycle counter advanced: %d, want 0", ln, batch.Cycles(ln))
		}
	}
}

// TestCompareEnvLengthGuard is the differential-harness panic regression:
// a module whose array port disagrees in length with the program's array
// type must produce a mismatch diagnostic, not an index panic.
func TestCompareEnvLengthGuard(t *testing.T) {
	// Module with a 2-element "A" port against a program with A: uint8[4].
	m := rtl.NewModule("short")
	m.ArrayPort["A"] = []*rtl.Signal{m.Input("A0", ir.U8), m.Input("A1", ir.U8)}
	m.NumStates = 0

	prog := ir.NewProgram("p")
	prog.Globals = append(prog.Globals, &ir.Var{Name: "A", Type: ir.Array(ir.U8, 4)})
	env := interp.NewEnv(prog)

	sim := rtlsim.New(m)
	diff := sim.CompareEnv(prog, env)
	if diff == "" {
		t.Fatal("scalar: expected a length-mismatch diagnostic, got equality")
	}
	if !strings.Contains(diff, "length") {
		t.Fatalf("scalar: diagnostic %q does not report the length divergence", diff)
	}

	batch := rtlsim.Compile(m).NewBatch(1)
	diff = batch.CompareEnv(0, prog, env)
	if diff == "" || !strings.Contains(diff, "length") {
		t.Fatalf("batch: diagnostic %q does not report the length divergence", diff)
	}
}

// TestBatchZeroAllocPerCycle asserts the compiled hot path is
// allocation-free: stepping a full batch through a multi-cycle design
// allocates nothing after setup — the property that removed the
// per-cycle map of the scalar Sim.
func TestBatchZeroAllocPerCycle(t *testing.T) {
	res := dataDependentDesign(t)
	prog := rtlsim.Compile(res.Module)
	batch := prog.NewBatch(rtlsim.MaxLanes)
	rng := rand.New(rand.NewSource(5))
	for ln := 0; ln < rtlsim.MaxLanes; ln++ {
		if err := batch.LoadEnv(ln, res.Input, testutil.RandomEnv(res.Input, rng)); err != nil {
			t.Fatal(err)
		}
	}
	maxCycles := rtlsim.WatchdogCycles(res.Module.NumStates)
	allocs := testing.AllocsPerRun(10, func() {
		batch.Reset()
		if err := batch.Run(maxCycles); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("batch Run allocated %.1f objects per run, want 0", allocs)
	}
}

// TestStaggeredWatchdogRetirement is the packed-retirement isolation
// regression: when a shared watchdog bound lets some lanes finish and
// times the rest out, every retired lane's result — including its
// packed 1-bit registers — must be exactly what a solo run produces.
// The cycles the survivors keep stepping after a lane retires must
// never touch the retired lane's packed bits, and each timed-out lane
// must report the watchdog error at exactly the bound.
func TestStaggeredWatchdogRetirement(t *testing.T) {
	res := dataDependentDesign(t)
	input := res.Input
	fullBound := rtlsim.WatchdogCycles(res.Module.NumStates)

	const trials = rtlsim.MaxLanes
	rng := rand.New(rand.NewSource(31))
	envs := make([]*interp.Env, trials)
	for i := range envs {
		envs[i] = testutil.RandomEnv(input, rng)
	}

	for _, mode := range compileModes {
		mode := mode
		t.Run(mode.name, func(t *testing.T) {
			prog := mode.compile(res.Module)

			// Solo reference: each trial alone in a single-lane batch,
			// full watchdog headroom.
			refCycles := make([]int, trials)
			refEnvs := make([]*interp.Env, trials)
			for i := range envs {
				solo := prog.NewBatch(1)
				if err := solo.LoadEnv(0, input, envs[i].Clone()); err != nil {
					t.Fatal(err)
				}
				if err := solo.Run(fullBound); err != nil {
					t.Fatalf("trial %d solo: %v", i, err)
				}
				refCycles[i] = solo.Cycles(0)
				refEnvs[i] = envs[i].Clone()
				if err := solo.StoreEnv(0, input, refEnvs[i]); err != nil {
					t.Fatal(err)
				}
			}

			// Pick a bound strictly inside the finish-time spread, so the
			// co-batched run genuinely staggers: some lanes retire, some
			// hit the watchdog mid-batch.
			minC, maxC := refCycles[0], refCycles[0]
			for _, c := range refCycles {
				minC, maxC = min(minC, c), max(maxC, c)
			}
			if minC == maxC {
				t.Fatalf("workload finished every trial in %d cycles; want data-dependent spread", minC)
			}
			bound := (minC + maxC) / 2

			batch := prog.NewBatch(trials)
			for i := range envs {
				if err := batch.LoadEnv(i, input, envs[i].Clone()); err != nil {
					t.Fatal(err)
				}
			}
			batch.Run(bound)

			retired, timedOut := 0, 0
			for i := range envs {
				if refCycles[i] <= bound {
					retired++
					if err := batch.Err(i); err != nil {
						t.Fatalf("lane %d (finishes in %d <= bound %d): unexpected error %v",
							i, refCycles[i], bound, err)
					}
					if !batch.Done(i) {
						t.Fatalf("lane %d: finished solo in %d cycles but not done at bound %d",
							i, refCycles[i], bound)
					}
					if got := batch.Cycles(i); got != refCycles[i] {
						t.Fatalf("lane %d: %d cycles co-batched, %d solo", i, got, refCycles[i])
					}
					got := envs[i].Clone()
					if err := batch.StoreEnv(i, input, got); err != nil {
						t.Fatal(err)
					}
					if diff := rtlsim.CompareEnvs(input, got, refEnvs[i]); diff != "" {
						t.Fatalf("lane %d: retired state corrupted by later cycles: %s", i, diff)
					}
				} else {
					timedOut++
					err := batch.Err(i)
					if err == nil {
						t.Fatalf("lane %d (needs %d > bound %d): expected watchdog error",
							i, refCycles[i], bound)
					}
					if !strings.Contains(err.Error(), fmt.Sprint(bound)) {
						t.Fatalf("lane %d: error %q does not mention the bound %d", i, err, bound)
					}
					if got := batch.Cycles(i); got != bound {
						t.Fatalf("lane %d: watchdog fired at %d cycles, want exactly %d", i, got, bound)
					}
				}
			}
			if retired == 0 || timedOut == 0 {
				t.Fatalf("bound %d did not stagger the batch: %d retired, %d timed out",
					bound, retired, timedOut)
			}
		})
	}
}

// TestBatchComposition is the co-batching property: a trial's result is
// independent of which other trials share its batch. Random subsets of
// the stimulus set, co-batched in random order, must reproduce each
// member's solo (cycles, final ports) exactly.
func TestBatchComposition(t *testing.T) {
	res := dataDependentDesign(t)
	input := res.Input
	prog := rtlsim.Compile(res.Module)
	maxCycles := rtlsim.WatchdogCycles(res.Module.NumStates)

	const trials = 48
	rng := rand.New(rand.NewSource(23))
	base := make([]*interp.Env, trials)
	refCycles := make([]int, trials)
	refEnvs := make([]*interp.Env, trials)
	for i := range base {
		base[i] = testutil.RandomEnv(input, rng)
		refEnvs[i] = base[i].Clone()
		lr := prog.RunBatch(input, []*interp.Env{refEnvs[i]}, maxCycles)[0]
		if lr.Err != nil {
			t.Fatalf("trial %d solo: %v", i, lr.Err)
		}
		refCycles[i] = lr.Cycles
	}

	pick := rand.New(rand.NewSource(67))
	for round := 0; round < 8; round++ {
		k := 1 + pick.Intn(trials)
		members := pick.Perm(trials)[:k]
		envs := make([]*interp.Env, k)
		for pos, idx := range members {
			envs[pos] = base[idx].Clone()
		}
		for pos, lr := range prog.RunBatch(input, envs, maxCycles) {
			idx := members[pos]
			if lr.Err != nil {
				t.Fatalf("round %d: trial %d: %v", round, idx, lr.Err)
			}
			if lr.Cycles != refCycles[idx] {
				t.Fatalf("round %d: trial %d ran %d cycles co-batched with %d trials, %d solo",
					round, idx, lr.Cycles, k, refCycles[idx])
			}
			if diff := rtlsim.CompareEnvs(input, envs[pos], refEnvs[idx]); diff != "" {
				t.Fatalf("round %d: trial %d diverged co-batched: %s", round, idx, diff)
			}
		}
	}
}

// TestRunBatchChunksBeyondMaxLanes covers the chunking path: more trials
// than MaxLanes must still come back one result per env, in order.
func TestRunBatchChunksBeyondMaxLanes(t *testing.T) {
	res := dataDependentDesign(t)
	input := res.Input
	prog := rtlsim.Compile(res.Module)
	maxCycles := rtlsim.WatchdogCycles(res.Module.NumStates)

	const trials = rtlsim.MaxLanes + 17
	rng := rand.New(rand.NewSource(11))
	envs := make([]*interp.Env, trials)
	refs := make([]*interp.Env, trials)
	for i := range envs {
		envs[i] = testutil.RandomEnv(input, rng)
		refs[i] = envs[i].Clone()
		if _, err := interp.New(input).RunMain(refs[i]); err != nil {
			t.Fatal(err)
		}
	}
	results := prog.RunBatch(input, envs, maxCycles)
	if len(results) != trials {
		t.Fatalf("got %d results for %d envs", len(results), trials)
	}
	for i, lr := range results {
		if lr.Err != nil {
			t.Fatalf("trial %d: %v", i, lr.Err)
		}
		if diff := rtlsim.CompareEnvs(input, envs[i], refs[i]); diff != "" {
			t.Fatalf("trial %d: %s", i, diff)
		}
	}
}
