package rtlsim_test

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"sparkgo/internal/core"
	"sparkgo/internal/ild"
	"sparkgo/internal/interp"
	"sparkgo/internal/ir"
	"sparkgo/internal/rtl"
	"sparkgo/internal/rtlsim"
	"sparkgo/internal/testutil"
)

// differentialDesigns enumerates the DifferentialILD design matrix: every
// buffer size in both synthesis regimes plus the natural (while-form)
// description — the corpus the compiled path is pinned against.
func differentialDesigns(t *testing.T) map[string]*core.Result {
	t.Helper()
	designs := map[string]*core.Result{}
	for _, n := range []int{4, 8, 16, 32} {
		micro, err := core.Synthesize(ild.Program(n), core.Options{Preset: core.MicroprocessorBlock})
		if err != nil {
			t.Fatalf("n=%d micro: %v", n, err)
		}
		designs[fmt.Sprintf("micro/n=%d", n)] = micro
		classical, err := core.Synthesize(ild.Program(n), core.Options{Preset: core.ClassicalASIC})
		if err != nil {
			t.Fatalf("n=%d classical: %v", n, err)
		}
		designs[fmt.Sprintf("classical/n=%d", n)] = classical
		natural, err := core.Synthesize(ild.NaturalProgram(n), core.Options{
			Preset: core.MicroprocessorBlock, NormalizeWhile: true,
		})
		if err != nil {
			t.Fatalf("n=%d natural: %v", n, err)
		}
		designs[fmt.Sprintf("natural/n=%d", n)] = natural
	}
	return designs
}

// TestCompiledDifferentialSuite pins the compiled batch path bit-for-bit
// against the scalar Sim (the reference implementation) and the
// behavioral interpreter on every DifferentialILD design: for each seeded
// stimulus vector, all three executions must agree on every architectural
// port and on the cycle count.
func TestCompiledDifferentialSuite(t *testing.T) {
	for name, res := range differentialDesigns(t) {
		name, res := name, res
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			const trials = 24
			rng := rand.New(rand.NewSource(77))
			input := res.Input
			maxCycles := rtlsim.WatchdogCycles(res.Module.NumStates)

			envs := make([]*interp.Env, trials)
			refs := make([]*interp.Env, trials)
			scalars := make([]*rtlsim.Sim, trials)
			scalarCycles := make([]int, trials)
			for i := range envs {
				envs[i] = testutil.RandomEnv(input, rng)
				refs[i] = envs[i].Clone()
				if _, err := interp.New(input).RunMain(refs[i]); err != nil {
					t.Fatalf("trial %d: interp: %v", i, err)
				}
				sim := rtlsim.New(res.Module)
				if err := sim.LoadEnv(input, envs[i].Clone()); err != nil {
					t.Fatalf("trial %d: scalar load: %v", i, err)
				}
				cycles, err := sim.Run(maxCycles)
				if err != nil {
					t.Fatalf("trial %d: scalar run: %v", i, err)
				}
				scalars[i] = sim
				scalarCycles[i] = cycles
				if diff := sim.CompareEnv(input, refs[i]); diff != "" {
					t.Fatalf("trial %d: scalar vs interp: %s", i, diff)
				}
			}

			prog := rtlsim.Compile(res.Module)
			for i, lr := range prog.RunBatch(input, envs, maxCycles) {
				if lr.Err != nil {
					t.Fatalf("trial %d: batch: %v", i, lr.Err)
				}
				if lr.Cycles != scalarCycles[i] {
					t.Fatalf("trial %d: batch ran %d cycles, scalar %d", i, lr.Cycles, scalarCycles[i])
				}
				// RunBatch stored the lane's final ports back into envs[i];
				// it must match the behavioral reference exactly.
				if diff := rtlsim.CompareEnvs(input, envs[i], refs[i]); diff != "" {
					t.Fatalf("trial %d: batch vs interp: %s", i, diff)
				}
			}
		})
	}
}

// dataDependentDesign synthesizes a classical-FSM design whose cycle
// count depends on the stimulus, so batched lanes genuinely finish at
// different times (exercising active-set compaction).
func dataDependentDesign(t *testing.T) *core.Result {
	t.Helper()
	p := ild.Program(8)
	res, err := core.Synthesize(p, core.Options{Preset: core.ClassicalASIC})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestLaneIndependencePermutation is the seeded lane-independence
// property: permuting the stimulus order across lanes never changes any
// trial's result. Each trial's (cycles, final ports) must depend only on
// its own stimulus, not on which lane it occupies or who its batch
// neighbours are.
func TestLaneIndependencePermutation(t *testing.T) {
	res := dataDependentDesign(t)
	input := res.Input
	prog := rtlsim.Compile(res.Module)
	maxCycles := rtlsim.WatchdogCycles(res.Module.NumStates)

	const trials = rtlsim.MaxLanes
	rng := rand.New(rand.NewSource(99))
	base := make([]*interp.Env, trials)
	for i := range base {
		base[i] = testutil.RandomEnv(input, rng)
	}
	run := func(order []int) ([]int, []*interp.Env) {
		envs := make([]*interp.Env, trials)
		for pos, idx := range order {
			envs[pos] = base[idx].Clone()
		}
		cycles := make([]int, trials)
		for pos, lr := range prog.RunBatch(input, envs, maxCycles) {
			if lr.Err != nil {
				t.Fatalf("lane %d (trial %d): %v", pos, order[pos], lr.Err)
			}
			cycles[pos] = lr.Cycles
		}
		return cycles, envs
	}

	identity := make([]int, trials)
	for i := range identity {
		identity[i] = i
	}
	wantCycles, wantEnvs := run(identity)

	// The workload must actually spread finish times across lanes, or the
	// property is vacuous for the compaction path.
	spread := map[int]bool{}
	for _, c := range wantCycles {
		spread[c] = true
	}
	if len(spread) < 2 {
		t.Fatalf("workload finished every lane in the same %d cycles; want data-dependent spread", wantCycles[0])
	}

	perm := rand.New(rand.NewSource(7))
	for round := 0; round < 5; round++ {
		order := perm.Perm(trials)
		gotCycles, gotEnvs := run(order)
		for pos, idx := range order {
			if gotCycles[pos] != wantCycles[idx] {
				t.Fatalf("round %d: trial %d ran %d cycles in lane %d, %d in lane %d",
					round, idx, gotCycles[pos], pos, wantCycles[idx], idx)
			}
			if diff := rtlsim.CompareEnvs(input, gotEnvs[pos], wantEnvs[idx]); diff != "" {
				t.Fatalf("round %d: trial %d diverged in lane %d: %s", round, idx, pos, diff)
			}
		}
	}
}

// hungModule builds a minimal non-terminating design: a one-state FSM
// whose only transition loops back to itself, with an input port so
// environments load cleanly.
func hungModule() *rtl.Module {
	m := rtl.NewModule("hung")
	a := m.Input("a", ir.U8)
	m.ScalarPort["a"] = a
	m.NumStates = 1
	m.Trans = []rtl.Transition{{From: 0, To: 0}}
	return m
}

// TestWatchdogHungFSM is the watchdog regression: a non-terminating
// design must error after the schedule-derived bound — thousands of
// cycles — on both the scalar and the batched path, not after the old
// hardcoded 1<<22-cycle budget.
func TestWatchdogHungFSM(t *testing.T) {
	m := hungModule()
	bound := rtlsim.WatchdogCycles(m.NumStates)
	if bound >= 1<<22 {
		t.Fatalf("derived bound %d is no better than the old hardcoded 1<<22", bound)
	}

	sim := rtlsim.New(m)
	cycles, err := sim.Run(bound)
	if err == nil {
		t.Fatal("scalar: expected watchdog error for hung FSM")
	}
	if cycles != bound {
		t.Fatalf("scalar: stopped at %d cycles, want the derived bound %d", cycles, bound)
	}

	prog := rtlsim.Compile(m)
	batch := prog.NewBatch(4)
	batch.Run(bound)
	for ln := 0; ln < 4; ln++ {
		err := batch.Err(ln)
		if err == nil {
			t.Fatalf("batch lane %d: expected watchdog error for hung FSM", ln)
		}
		if !strings.Contains(err.Error(), fmt.Sprint(bound)) {
			t.Fatalf("batch lane %d: error %q does not mention the bound %d", ln, err, bound)
		}
		if batch.Cycles(ln) != bound {
			t.Fatalf("batch lane %d: stopped at %d cycles, want %d", ln, batch.Cycles(ln), bound)
		}
	}
}

// stuckModule builds a design whose single state has no matching
// transition (its only edge requires a condition that is constant-false)
// and a register write that would fire in that state — the setup for the
// commit-before-transition-check corruption bug.
func stuckModule() *rtl.Module {
	m := rtl.NewModule("stuck")
	r := m.Reg("r", ir.U8, 5)
	m.ScalarPort["r"] = r
	nine := m.ConstSignal(9, ir.U8)
	never := m.ConstSignal(0, ir.Bool)
	m.NumStates = 1
	m.RegWrites = []rtl.RegWrite{{Reg: r, State: 0, Value: nine}}
	m.Trans = []rtl.Transition{{From: 0, Cond: never, CondValue: true, To: -1}}
	return m
}

// TestNoTransitionLeavesStateUntouched is the corruption regression: when
// no FSM transition matches, the simulator must report the error with the
// pre-commit picture intact — registers unwritten, cycle counter and FSM
// state unchanged — on both the scalar and the batched path.
func TestNoTransitionLeavesStateUntouched(t *testing.T) {
	sim := rtlsim.New(stuckModule())
	if err := sim.Step(); err == nil {
		t.Fatal("scalar: expected no-matching-transition error")
	}
	if v, _ := sim.Scalar("r"); v != 5 {
		t.Errorf("scalar: register committed on failed transition: r=%d, want 5", v)
	}
	if sim.Cycles() != 0 {
		t.Errorf("scalar: cycle counter advanced on failed transition: %d, want 0", sim.Cycles())
	}
	if sim.State() != 0 {
		t.Errorf("scalar: state moved on failed transition: %d, want 0", sim.State())
	}

	prog := rtlsim.Compile(stuckModule())
	batch := prog.NewBatch(3)
	batch.Run(16)
	for ln := 0; ln < 3; ln++ {
		if err := batch.Err(ln); err == nil {
			t.Fatalf("batch lane %d: expected no-matching-transition error", ln)
		}
		if v, _ := batch.Scalar(ln, "r"); v != 5 {
			t.Errorf("batch lane %d: register committed on failed transition: r=%d, want 5", ln, v)
		}
		if batch.Cycles(ln) != 0 {
			t.Errorf("batch lane %d: cycle counter advanced: %d, want 0", ln, batch.Cycles(ln))
		}
	}
}

// TestCompareEnvLengthGuard is the differential-harness panic regression:
// a module whose array port disagrees in length with the program's array
// type must produce a mismatch diagnostic, not an index panic.
func TestCompareEnvLengthGuard(t *testing.T) {
	// Module with a 2-element "A" port against a program with A: uint8[4].
	m := rtl.NewModule("short")
	m.ArrayPort["A"] = []*rtl.Signal{m.Input("A0", ir.U8), m.Input("A1", ir.U8)}
	m.NumStates = 0

	prog := ir.NewProgram("p")
	prog.Globals = append(prog.Globals, &ir.Var{Name: "A", Type: ir.Array(ir.U8, 4)})
	env := interp.NewEnv(prog)

	sim := rtlsim.New(m)
	diff := sim.CompareEnv(prog, env)
	if diff == "" {
		t.Fatal("scalar: expected a length-mismatch diagnostic, got equality")
	}
	if !strings.Contains(diff, "length") {
		t.Fatalf("scalar: diagnostic %q does not report the length divergence", diff)
	}

	batch := rtlsim.Compile(m).NewBatch(1)
	diff = batch.CompareEnv(0, prog, env)
	if diff == "" || !strings.Contains(diff, "length") {
		t.Fatalf("batch: diagnostic %q does not report the length divergence", diff)
	}
}

// TestBatchZeroAllocPerCycle asserts the compiled hot path is
// allocation-free: stepping a full batch through a multi-cycle design
// allocates nothing after setup — the property that removed the
// per-cycle map of the scalar Sim.
func TestBatchZeroAllocPerCycle(t *testing.T) {
	res := dataDependentDesign(t)
	prog := rtlsim.Compile(res.Module)
	batch := prog.NewBatch(rtlsim.MaxLanes)
	rng := rand.New(rand.NewSource(5))
	for ln := 0; ln < rtlsim.MaxLanes; ln++ {
		if err := batch.LoadEnv(ln, res.Input, testutil.RandomEnv(res.Input, rng)); err != nil {
			t.Fatal(err)
		}
	}
	maxCycles := rtlsim.WatchdogCycles(res.Module.NumStates)
	allocs := testing.AllocsPerRun(10, func() {
		batch.Reset()
		if err := batch.Run(maxCycles); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("batch Run allocated %.1f objects per run, want 0", allocs)
	}
}

// TestRunBatchChunksBeyondMaxLanes covers the chunking path: more trials
// than MaxLanes must still come back one result per env, in order.
func TestRunBatchChunksBeyondMaxLanes(t *testing.T) {
	res := dataDependentDesign(t)
	input := res.Input
	prog := rtlsim.Compile(res.Module)
	maxCycles := rtlsim.WatchdogCycles(res.Module.NumStates)

	const trials = rtlsim.MaxLanes + 17
	rng := rand.New(rand.NewSource(11))
	envs := make([]*interp.Env, trials)
	refs := make([]*interp.Env, trials)
	for i := range envs {
		envs[i] = testutil.RandomEnv(input, rng)
		refs[i] = envs[i].Clone()
		if _, err := interp.New(input).RunMain(refs[i]); err != nil {
			t.Fatal(err)
		}
	}
	results := prog.RunBatch(input, envs, maxCycles)
	if len(results) != trials {
		t.Fatalf("got %d results for %d envs", len(results), trials)
	}
	for i, lr := range results {
		if lr.Err != nil {
			t.Fatalf("trial %d: %v", i, lr.Err)
		}
		if diff := rtlsim.CompareEnvs(input, envs[i], refs[i]); diff != "" {
			t.Fatalf("trial %d: %s", i, diff)
		}
	}
}
