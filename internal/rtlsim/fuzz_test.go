package rtlsim_test

import (
	"testing"

	"sparkgo/internal/ir"
	"sparkgo/internal/rtl"
	"sparkgo/internal/rtlsim"
)

// mixedBoundaryModule hand-builds a small design whose netlist crosses
// the bit-sliced/wide boundary in every direction the compiler handles:
// wide comparisons packing predicates (opCmpPack), packed AND/OR/NOT
// logic, a packed select steering wide words (opMuxWideSel), a packed
// bit widening into a wide adder (opWidenBit), a wide value narrowing
// to a bit (opNarrowBit), a packed mux (opBitMux), and a two-state FSM
// looping on a packed condition — the shapes the fuzzer drives with
// arbitrary stimulus.
func mixedBoundaryModule() *rtl.Module {
	m := rtl.NewModule("mixed")
	a := m.Input("a", ir.U8)
	m.ScalarPort["a"] = a
	b := m.Input("b", ir.U8)
	m.ScalarPort["b"] = b
	f := m.Input("f", ir.Bool)
	m.ScalarPort["f"] = f
	acc := m.Reg("acc", ir.U8, 0)
	m.ScalarPort["acc"] = acc
	flag := m.Reg("flag", ir.Bool, 0)
	m.ScalarPort["flag"] = flag
	cnt := m.Reg("cnt", ir.U8, 0)
	m.ScalarPort["cnt"] = cnt

	lt := m.Bin(ir.OpLt, ir.Bool, true, a, b)    // wide cmp -> packed
	eq := m.Bin(ir.OpEq, ir.Bool, false, acc, b) // wide cmp -> packed
	and := m.And(lt, f)                          // packed AND
	orr := m.Bin(ir.OpLOr, ir.Bool, false, and, eq)
	ninv := m.Not(orr) // packed NOT

	sum := m.Bin(ir.OpAdd, ir.U8, true, acc, a)
	dif := m.Bin(ir.OpSub, ir.U8, true, acc, b)
	sel := m.Mux(ir.U8, orr, sum, dif) // packed select over wide words

	wideFlag := m.Copy(ir.U8, ninv)       // bit -> wide
	lowBit := m.Copy(ir.Bool, sel)        // wide -> bit
	nf := m.Mux(ir.Bool, f, lowBit, ninv) // packed mux

	cntNext := m.Bin(ir.OpAdd, ir.U8, true, cnt, wideFlag)
	three := m.ConstSignal(3, ir.U8)
	again := m.Bin(ir.OpLt, ir.Bool, true, cntNext, three)

	m.NumStates = 2
	m.RegWrites = []rtl.RegWrite{
		{Reg: acc, State: 0, Value: sel},
		{Reg: flag, State: 0, Value: nf},
		{Reg: cnt, State: 0, Value: cntNext},
		{Reg: acc, State: 1, Value: sum},
	}
	m.Trans = []rtl.Transition{
		{From: 0, Cond: again, CondValue: true, To: 1},
		{From: 0, To: -1},
		{From: 1, To: 0},
	}
	return m
}

// FuzzBitSlicedDifferential drives the mixed-domain design with
// arbitrary stimulus across a full batch and requires the bit-sliced
// program, the SoA reference program, and the scalar Sim to agree on
// every lane's registers, done flag, error state, and cycle count. Any
// divergence in a pack/unpack boundary op, a packed retirement mask, or
// the packed commit path surfaces here as a three-way mismatch.
func FuzzBitSlicedDifferential(f *testing.F) {
	f.Add([]byte{0x00})
	f.Add([]byte{0x01, 0x02, 0x03})
	f.Add([]byte{0xff, 0xfe, 0x01, 0x10, 0x20, 0x00})
	// A full batch of staggered lanes: enough bytes for many lanes with
	// both flag polarities and equal/unequal operand pairs.
	seed := make([]byte, 3*rtlsim.MaxLanes)
	for i := range seed {
		seed[i] = byte(i * 37)
	}
	f.Add(seed)

	m := mixedBoundaryModule()
	maxCycles := rtlsim.WatchdogCycles(m.NumStates)
	bit := rtlsim.Compile(m)
	soa := rtlsim.CompileSoA(m)
	ports := []string{"acc", "flag", "cnt"}

	f.Fuzz(func(t *testing.T, data []byte) {
		lanes := len(data) / 3
		if lanes < 1 {
			return
		}
		if lanes > rtlsim.MaxLanes {
			lanes = rtlsim.MaxLanes
		}
		load := func(set func(name string, v int64) error, ln int) {
			if err := set("a", int64(data[3*ln])); err != nil {
				t.Fatal(err)
			}
			if err := set("b", int64(data[3*ln+1])); err != nil {
				t.Fatal(err)
			}
			if err := set("f", int64(data[3*ln+2]&1)); err != nil {
				t.Fatal(err)
			}
		}

		bb := bit.NewBatch(lanes)
		sb := soa.NewBatch(lanes)
		for ln := 0; ln < lanes; ln++ {
			ln := ln
			load(func(n string, v int64) error { return bb.SetScalar(ln, n, v) }, ln)
			load(func(n string, v int64) error { return sb.SetScalar(ln, n, v) }, ln)
		}
		bb.Run(maxCycles)
		sb.Run(maxCycles)

		for ln := 0; ln < lanes; ln++ {
			sim := rtlsim.New(m)
			load(sim.SetScalar, ln)
			wantCycles, wantErr := sim.Run(maxCycles)

			for _, batch := range []struct {
				name string
				b    *rtlsim.Batch
			}{{"bitsliced", bb}, {"soa", sb}} {
				if (batch.b.Err(ln) != nil) != (wantErr != nil) {
					t.Fatalf("lane %d: %s err=%v, scalar err=%v", ln, batch.name, batch.b.Err(ln), wantErr)
				}
				if batch.b.Cycles(ln) != wantCycles {
					t.Fatalf("lane %d: %s ran %d cycles, scalar %d",
						ln, batch.name, batch.b.Cycles(ln), wantCycles)
				}
				if batch.b.Done(ln) != sim.Done() {
					t.Fatalf("lane %d: %s done=%v, scalar done=%v",
						ln, batch.name, batch.b.Done(ln), sim.Done())
				}
				for _, port := range ports {
					got, err := batch.b.Scalar(ln, port)
					if err != nil {
						t.Fatal(err)
					}
					want, err := sim.Scalar(port)
					if err != nil {
						t.Fatal(err)
					}
					if got != want {
						t.Fatalf("lane %d: %s %s=%d, scalar %s=%d",
							ln, batch.name, port, got, port, want)
					}
				}
			}
		}
	})
}
