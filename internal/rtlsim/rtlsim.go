// Package rtlsim executes rtl modules cycle-accurately: each cycle it
// evaluates the combinational gate network in topological order, commits
// the current state's register writes on the clock edge, and advances the
// FSM. Values are canonicalized exactly as in package interp, so a correct
// synthesis flow makes RTL simulation agree bit-for-bit with behavioral
// interpretation — the equivalence the test suite enforces on every
// workload.
package rtlsim

import (
	"fmt"

	"sparkgo/internal/interp"
	"sparkgo/internal/ir"
	"sparkgo/internal/rtl"
)

// Sim is one simulation instance.
type Sim struct {
	M *rtl.Module

	vals  map[*rtl.Signal]int64 // register and input values (persistent)
	state int
	done  bool
	cycle int
}

// New creates a simulator with registers at their reset values.
func New(m *rtl.Module) *Sim {
	s := &Sim{M: m, vals: map[*rtl.Signal]int64{}}
	s.Reset()
	return s
}

// Reset returns registers to reset values, the FSM to state 0, and clears
// done. Inputs keep their values.
func (s *Sim) Reset() {
	for _, sig := range s.M.Signals {
		if sig.Kind == rtl.SigReg {
			s.vals[sig] = sig.Init
		}
	}
	s.state = 0
	s.done = false
	s.cycle = 0
}

// SetScalar drives a scalar architectural port (input or state register).
func (s *Sim) SetScalar(name string, v int64) error {
	sig, ok := s.M.ScalarPort[name]
	if !ok {
		return fmt.Errorf("rtlsim: no scalar port %q", name)
	}
	s.vals[sig] = sig.Type.Canon(v)
	return nil
}

// SetArray drives an array port element-wise.
func (s *Sim) SetArray(name string, vals []int64) error {
	elems, ok := s.M.ArrayPort[name]
	if !ok {
		return fmt.Errorf("rtlsim: no array port %q", name)
	}
	for i, sig := range elems {
		var v int64
		if i < len(vals) {
			v = vals[i]
		}
		s.vals[sig] = sig.Type.Canon(v)
	}
	return nil
}

// Scalar reads a scalar port's current value.
func (s *Sim) Scalar(name string) (int64, error) {
	sig, ok := s.M.ScalarPort[name]
	if !ok {
		return 0, fmt.Errorf("rtlsim: no scalar port %q", name)
	}
	return s.vals[sig], nil
}

// Array reads an array port's current contents.
func (s *Sim) Array(name string) ([]int64, error) {
	elems, ok := s.M.ArrayPort[name]
	if !ok {
		return nil, fmt.Errorf("rtlsim: no array port %q", name)
	}
	out := make([]int64, len(elems))
	for i, sig := range elems {
		out[i] = s.vals[sig]
	}
	return out, nil
}

// Ret reads the design's return-value register (0 if the design is void).
func (s *Sim) Ret() int64 {
	if s.M.RetSignal == nil {
		return 0
	}
	return s.vals[s.M.RetSignal]
}

// Done reports whether the FSM has finished.
func (s *Sim) Done() bool { return s.done }

// Cycles returns the number of clock cycles executed since reset.
func (s *Sim) Cycles() int { return s.cycle }

// State returns the current FSM state.
func (s *Sim) State() int { return s.state }

// Step executes one clock cycle: combinational evaluation, register
// commit, FSM transition. Calling Step after done is a no-op.
func (s *Sim) Step() error {
	if s.done {
		return nil
	}
	if s.M.NumStates == 0 {
		s.done = true
		return nil
	}
	// 1. Combinational evaluation (module gates are topological).
	net := make(map[*rtl.Signal]int64, len(s.M.Signals))
	read := func(sig *rtl.Signal) int64 {
		switch sig.Kind {
		case rtl.SigConst:
			return sig.Const
		case rtl.SigReg, rtl.SigInput:
			return s.vals[sig]
		default:
			return net[sig]
		}
	}
	for _, g := range s.M.Gates {
		var v int64
		switch g.Kind {
		case rtl.GateBin:
			a, b := read(g.In[0]), read(g.In[1])
			out, err := interp.EvalBinOp(g.Bin, a, b, g.Out.Type, g.UnsignedOps)
			if err != nil {
				return fmt.Errorf("rtlsim: gate %s: %w", g.Out.Name, err)
			}
			v = out
		case rtl.GateUn:
			v = interp.EvalUnOp(g.Un, read(g.In[0]), g.Out.Type)
		case rtl.GateMux:
			if read(g.In[0]) != 0 {
				v = g.Out.Type.Canon(read(g.In[1]))
			} else {
				v = g.Out.Type.Canon(read(g.In[2]))
			}
		case rtl.GateCopy:
			v = g.Out.Type.Canon(read(g.In[0]))
		case rtl.GateArrayRead:
			idx := read(g.In[0])
			if idx >= 0 && idx < int64(len(g.In)-1) {
				v = g.Out.Type.Canon(read(g.In[1+int(idx)]))
			} else {
				v = 0
			}
		}
		net[g.Out] = v
	}
	// 2. FSM transition decision (using pre-clock values).
	next := -2
	for _, tr := range s.M.Trans {
		if tr.From != s.state {
			continue
		}
		if tr.Cond == nil {
			next = tr.To
			break
		}
		cv := read(tr.Cond) != 0
		if cv == tr.CondValue {
			next = tr.To
			break
		}
	}
	// A state with no matching transition is a controller bug. Report it
	// before committing anything: registers, the cycle counter, and the
	// FSM state keep their pre-transition values, so the error describes
	// the state the failure actually occurred in.
	if next == -2 {
		return fmt.Errorf("rtlsim: state %d has no matching transition", s.state)
	}
	// 3. Register commit for the current state — two-phase, like real
	// flip-flops: every write value is sampled from pre-clock state
	// before any register updates (a write's Value may itself be a
	// register signal when a copy gate collapsed to its source).
	type commit struct {
		reg *rtl.Signal
		val int64
	}
	var commits []commit
	for _, rw := range s.M.RegWrites {
		if rw.State == s.state {
			commits = append(commits, commit{rw.Reg, rw.Reg.Type.Canon(read(rw.Value))})
		}
	}
	for _, c := range commits {
		s.vals[c.reg] = c.val
	}
	s.cycle++
	if next == -1 {
		s.done = true
	} else {
		s.state = next
	}
	return nil
}

// Run steps until done or maxCycles, returning the cycle count.
func (s *Sim) Run(maxCycles int) (int, error) {
	for !s.done {
		if s.cycle >= maxCycles {
			return s.cycle, fmt.Errorf("rtlsim: exceeded %d cycles (state %d)", maxCycles, s.state)
		}
		if err := s.Step(); err != nil {
			return s.cycle, err
		}
	}
	return s.cycle, nil
}

// LoadEnv drives every architectural port from an interpreter environment
// (matching globals by name), so behavioral and RTL runs start identically.
func (s *Sim) LoadEnv(p *ir.Program, env *interp.Env) error {
	for _, g := range p.Globals {
		if g.Type.IsArray() {
			if err := s.SetArray(g.Name, env.Array(g)); err != nil {
				return err
			}
		} else {
			if err := s.SetScalar(g.Name, env.Scalar(g)); err != nil {
				return err
			}
		}
	}
	return nil
}

// CompareEnv checks every architectural port against an interpreter
// environment after execution, returning a description of the first
// mismatch or "" when identical.
func (s *Sim) CompareEnv(p *ir.Program, env *interp.Env) string {
	for _, g := range p.Globals {
		if g.Type.IsArray() {
			got, err := s.Array(g.Name)
			if err != nil {
				return err.Error()
			}
			if diff := compareArray(g.Name, got, env.Array(g)); diff != "" {
				return diff
			}
		} else {
			got, err := s.Scalar(g.Name)
			if err != nil {
				return err.Error()
			}
			if want := env.Scalar(g); got != want {
				return fmt.Sprintf("%s: rtl=%d behavioral=%d", g.Name, got, want)
			}
		}
	}
	return ""
}
