package rtlsim_test

import (
	"math/rand"
	"testing"

	"sparkgo/internal/core"
	"sparkgo/internal/interp"
	"sparkgo/internal/parser"
	"sparkgo/internal/rtlsim"
	"sparkgo/internal/testutil"
)

func synth(t *testing.T, src string, opt core.Options) *core.Result {
	t.Helper()
	p := parser.MustParse("d", src)
	res, err := core.Synthesize(p, opt)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestSingleCycleRun(t *testing.T) {
	res := synth(t, `
uint8 a;
uint8 out;
void main() {
  out = a + 1;
}
`, core.Options{})
	sim := rtlsim.New(res.Module)
	if err := sim.SetScalar("a", 41); err != nil {
		t.Fatal(err)
	}
	cycles, err := sim.Run(8)
	if err != nil {
		t.Fatal(err)
	}
	if cycles != 1 {
		t.Errorf("cycles = %d, want 1", cycles)
	}
	v, err := sim.Scalar("out")
	if err != nil {
		t.Fatal(err)
	}
	if v != 42 {
		t.Errorf("out = %d, want 42", v)
	}
	if !sim.Done() {
		t.Error("not done after run")
	}
}

func TestResetRestoresState(t *testing.T) {
	res := synth(t, `
uint8 a;
uint8 out;
void main() {
  out = a * 2;
}
`, core.Options{})
	sim := rtlsim.New(res.Module)
	sim.SetScalar("a", 10)
	sim.Run(8)
	v1, _ := sim.Scalar("out")
	sim.Reset()
	sim.SetScalar("a", 3)
	if _, err := sim.Run(8); err != nil {
		t.Fatal(err)
	}
	v2, _ := sim.Scalar("out")
	if v1 != 20 || v2 != 6 {
		t.Errorf("out1=%d out2=%d, want 20 and 6", v1, v2)
	}
}

func TestMultiCycleFSM(t *testing.T) {
	// Classical preset with a loop: a real FSM with a back edge.
	res := synth(t, `
uint8 data[4];
uint16 sum;
void main() {
  uint8 i;
  sum = 0;
  for (i = 0; i < 4; i++) {
    sum += data[i];
  }
}
`, core.Options{Preset: core.ClassicalASIC})
	sim := rtlsim.New(res.Module)
	if err := sim.SetArray("data", []int64{1, 2, 3, 4}); err != nil {
		t.Fatal(err)
	}
	cycles, err := sim.Run(1 << 16)
	if err != nil {
		t.Fatal(err)
	}
	if cycles <= 4 {
		t.Errorf("cycles = %d, want > 4 (loop FSM)", cycles)
	}
	v, _ := sim.Scalar("sum")
	if v != 10 {
		t.Errorf("sum = %d, want 10", v)
	}
}

func TestMaxCyclesGuard(t *testing.T) {
	res := synth(t, `
uint8 data[8];
uint16 sum;
void main() {
  uint8 i;
  for (i = 0; i < 8; i++) {
    sum += data[i];
  }
}
`, core.Options{Preset: core.ClassicalASIC})
	sim := rtlsim.New(res.Module)
	if _, err := sim.Run(2); err == nil {
		t.Error("expected max-cycles error")
	}
}

func TestUnknownPortErrors(t *testing.T) {
	res := synth(t, "uint8 g;\nvoid main() { g = 1; }", core.Options{})
	sim := rtlsim.New(res.Module)
	if err := sim.SetScalar("nope", 1); err == nil {
		t.Error("expected error for unknown scalar port")
	}
	if err := sim.SetArray("nope", nil); err == nil {
		t.Error("expected error for unknown array port")
	}
	if _, err := sim.Scalar("nope"); err == nil {
		t.Error("expected error reading unknown port")
	}
}

// Property: same-state register writes are two-phase (a reg-to-reg swap
// commits pre-clock values regardless of write order).
func TestRegisterSwapTwoPhase(t *testing.T) {
	// x and y swap in a loop body: both commits happen in one state in
	// the sequential schedule. Two-phase commit makes the swap exact.
	res := synth(t, `
uint8 x;
uint8 y;
uint8 rounds;
void main() {
  uint8 i;
  uint8 t;
  for (i = 0; i < 3; i++) {
    t = x;
    x = y;
    y = t;
  }
  rounds = i;
}
`, core.Options{Preset: core.ClassicalASIC})
	sim := rtlsim.New(res.Module)
	sim.SetScalar("x", 7)
	sim.SetScalar("y", 9)
	if _, err := sim.Run(1 << 16); err != nil {
		t.Fatal(err)
	}
	x, _ := sim.Scalar("x")
	y, _ := sim.Scalar("y")
	// 3 swaps: x=9, y=7.
	if x != 9 || y != 7 {
		t.Errorf("after 3 swaps x=%d y=%d, want 9 7", x, y)
	}
}

// Property: for random programs from the corpus, the RTL agrees with the
// interpreter under both presets on fresh random stimuli (beyond what
// core.Verify already ran during synthesis tests).
func TestCrossValidationRandomStimuli(t *testing.T) {
	src := `
uint8 a;
uint8 b;
uint8 c;
uint8 out;
void main() {
  uint8 t;
  t = (a ^ b) + (c & 15);
  if (t > 100) {
    t = t - 100;
  }
  if (t > a) {
    out = t;
  } else {
    out = a;
  }
}
`
	for _, preset := range []core.Preset{core.MicroprocessorBlock, core.ClassicalASIC} {
		res := synth(t, src, core.Options{Preset: preset})
		p := res.Input
		rng := rand.New(rand.NewSource(123))
		for trial := 0; trial < 100; trial++ {
			env := testutil.RandomEnv(p, rng)
			ref := env.Clone()
			if _, err := interp.New(p).RunMain(ref); err != nil {
				t.Fatal(err)
			}
			sim := rtlsim.New(res.Module)
			if err := sim.LoadEnv(p, env); err != nil {
				t.Fatal(err)
			}
			if _, err := sim.Run(1 << 16); err != nil {
				t.Fatal(err)
			}
			if diff := sim.CompareEnv(p, ref); diff != "" {
				t.Fatalf("preset %v trial %d: %s", preset, trial, diff)
			}
		}
	}
}
