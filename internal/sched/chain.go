package sched

import (
	"fmt"
	"sort"

	"sparkgo/internal/dfa"
	"sparkgo/internal/htg"
	"sparkgo/internal/ir"
)

// scheduleChain implements the flattened, chaining-across-conditionals
// regime (§3.1). It list-schedules the global dependence graph: an op may
// join cycle c when every dependence predecessor is scheduled at or before
// c and, for same-cycle predecessors, the accumulated combinational path —
// including the multiplexers that merge conditionally-written values along
// the chaining trails — still fits the clock period.
func scheduleChain(g *htg.Graph, cfg Config) (*Result, error) {
	if g.HasLoops() {
		return nil, fmt.Errorf("sched: chain mode requires a loop-free graph " +
			"(unroll loops first, or use sequential mode)")
	}
	ops := g.AllOps()
	deps := dfa.Build(ops, cfg.DepOpts)
	m := cfg.Model

	res := &Result{
		G: g, Mode: ModeChain, Model: m,
		OpState: map[*htg.Op]int{}, VarClass: map[*ir.Var]VarClass{},
		Arrival: map[*htg.Op]float64{}, Finish: map[*htg.Op]float64{},
		ReentrantStates: map[int]bool{},
		Deps:            deps,
	}

	// Priority: delay-weighted longest path to any sink (computed over
	// the reversed program order — program order is topological).
	prio := map[*htg.Op]float64{}
	for i := len(ops) - 1; i >= 0; i-- {
		op := ops[i]
		best := 0.0
		for _, e := range deps.Succs[op] {
			if p := prio[e.To]; p > best {
				best = p
			}
		}
		prio[op] = best + opDelay(m, op)
	}

	// defsOf: all defs of a variable (for mux-merge delay estimation).
	defsOf := map[*ir.Var][]*htg.Op{}
	for _, op := range ops {
		if w := op.Writes(); w != nil {
			defsOf[w] = append(defsOf[w], op)
		}
	}

	unscheduled := map[*htg.Op]bool{}
	for _, op := range ops {
		unscheduled[op] = true
	}

	// arrivalAt computes the op's input arrival time if placed in cycle c
	// now: same-cycle predecessor finishes, plus a mux penalty when an
	// operand has several conditional writers in this cycle (the §3.1.2
	// wire-variable merge hardware), plus the guard-conjunction network
	// when the op itself commits conditionally (the select chains the
	// netlist really builds).
	andDelay := m.BinOpDelay(ir.OpLAnd, ir.Bool)
	arrivalAt := func(op *htg.Op, c int) float64 {
		arr := 0.0
		seen := map[*ir.Var]bool{}
		for _, e := range deps.Preds[op] {
			if e.Kind == dfa.Anti || e.Kind == dfa.Output {
				continue // ordering only: no value flows
			}
			if res.OpState[e.From] != c || unscheduled[e.From] {
				continue
			}
			f := res.Finish[e.From]
			v := e.Var
			if v != nil && !seen[v] {
				seen[v] = true
				guarded := 0
				for _, d := range defsOf[v] {
					if !unscheduled[d] && res.OpState[d] == c && len(d.BB.Guard) > 0 {
						guarded++
					}
				}
				if guarded > 0 {
					f += m.MuxDelay(guarded + 1)
				}
			}
			if e.Kind == dfa.Guard {
				// Condition values pass through the guard AND
				// chain before selecting.
				f += andDelay * float64(len(op.BB.Guard))
			}
			if f > arr {
				arr = f
			}
		}
		return arr
	}
	// commitCost is the extra combinational delay of a conditional
	// commit: the 2:1 select the netlist inserts for a guarded write.
	commitCost := func(op *htg.Op) float64 {
		if len(op.BB.Guard) == 0 {
			return 0
		}
		return m.MuxDelay(2)
	}

	// Resource usage, exclusivity-aware: the maximum number of
	// same-class ops active in cycle c over any control scenario,
	// computed by recursion over the HTG tree (max across exclusive
	// branches, sum across sequential regions).
	usage := func(class Class, c int, extra *htg.Op) int {
		var walk func(n htg.Node) int
		countBB := func(bb *htg.BasicBlock) int {
			k := 0
			for _, op := range bb.Ops {
				if (op == extra || (!unscheduled[op] && res.OpState[op] == c)) &&
					ClassOf(op) == class {
					k++
				}
			}
			return k
		}
		walk = func(n htg.Node) int {
			switch x := n.(type) {
			case *htg.BBNode:
				return countBB(x.BB)
			case *htg.Seq:
				t := 0
				for _, ch := range x.Nodes {
					t += walk(ch)
				}
				return t
			case *htg.IfNode:
				t := walk(x.Then)
				e := 0
				if x.Else != nil {
					e = walk(x.Else)
				}
				if e > t {
					return e
				}
				return t
			}
			return 0
		}
		return walk(g.Root)
	}

	nPreds := map[*htg.Op]int{}
	for _, op := range ops {
		nPreds[op] = len(deps.Preds[op])
	}

	remaining := len(ops)
	for cycle := 0; remaining > 0; cycle++ {
		if cycle > 100000 {
			return nil, fmt.Errorf("sched: runaway scheduling (%d ops left)", remaining)
		}
		res.StateCritPath = append(res.StateCritPath, 0)
		// Candidates whose predecessors are all scheduled (<= cycle).
		progress := true
		for progress {
			progress = false
			var ready []*htg.Op
			for op := range unscheduled {
				ok := true
				for _, e := range deps.Preds[op] {
					if unscheduled[e.From] {
						ok = false
						break
					}
					// Ordering edges must strictly precede unless
					// the writer chains first in the same cycle —
					// we keep it simple and allow same-cycle
					// anti/output: netlist construction orders the
					// value network correctly.
					_ = e
				}
				if ok {
					ready = append(ready, op)
				}
			}
			sort.Slice(ready, func(i, j int) bool {
				if prio[ready[i]] != prio[ready[j]] {
					return prio[ready[i]] > prio[ready[j]]
				}
				return ready[i].ID < ready[j].ID
			})
			for _, op := range ready {
				arr := arrivalAt(op, cycle)
				fin := arr + opDelay(m, op) + commitCost(op)
				if cfg.DisableChaining && arr > 0 {
					continue // must wait for the next cycle
				}
				if m.ClockPeriod > 0 && fin+m.RegisterSetup() > m.ClockPeriod {
					if arr == 0 {
						// Cannot fit even at cycle start: schedule
						// anyway and record the violation.
						res.ClockViolations++
					} else {
						continue // retry next cycle
					}
				}
				if !cfg.Resources.Unlimited {
					cl := ClassOf(op)
					if cl != ClassFree && usage(cl, cycle, op) > cfg.Resources.available(cl) {
						continue
					}
				}
				res.OpState[op] = cycle
				res.Arrival[op] = arr
				res.Finish[op] = fin
				delete(unscheduled, op)
				remaining--
				progress = true
				if fin > res.StateCritPath[cycle] {
					res.StateCritPath[cycle] = fin
				}
			}
		}
		if remaining > 0 && len(res.StateCritPath) > len(ops)+1 {
			return nil, fmt.Errorf("sched: no progress at cycle %d", cycle)
		}
	}
	res.NumStates = len(res.StateCritPath)
	for i := range res.StateCritPath {
		res.StateCritPath[i] += m.RegisterSetup()
	}

	// Per-state op order: program order (topological).
	res.OpOrder = make([][]*htg.Op, res.NumStates)
	for _, op := range ops {
		s := res.OpState[op]
		res.OpOrder[s] = append(res.OpOrder[s], op)
	}
	for _, list := range res.OpOrder {
		sort.Slice(list, func(i, j int) bool { return list[i].ID < list[j].ID })
	}

	// Linear FSM: S0 → S1 → ... → done.
	for s := 0; s < res.NumStates-1; s++ {
		res.Transitions = append(res.Transitions, Transition{From: s, To: s + 1})
	}
	if res.NumStates > 0 {
		res.Transitions = append(res.Transitions, Transition{From: res.NumStates - 1, To: -1})
	}

	classifyVars(res)
	return res, nil
}

// classifyVars assigns Register/Wire per the rules worked out in DESIGN.md:
// a variable is a wire-variable iff it is local, written in exactly one
// state, never read in another state, never read (in op order) before its
// first write in that state, and — for re-entrant states — its first write
// is unguarded. Everything else is a register. Globals and the return
// variable are always registers (architectural state).
func classifyVars(res *Result) {
	type varInfo struct {
		defStates map[int]bool
		useStates map[int]bool
		firstDef  map[int]int // state -> op order index of first def
		firstUse  map[int]int
		guarded   bool // some def is guarded
	}
	info := map[*ir.Var]*varInfo{}
	get := func(v *ir.Var) *varInfo {
		vi := info[v]
		if vi == nil {
			vi = &varInfo{defStates: map[int]bool{}, useStates: map[int]bool{},
				firstDef: map[int]int{}, firstUse: map[int]int{}}
			info[v] = vi
		}
		return vi
	}
	for s, list := range res.OpOrder {
		for idx, op := range list {
			for _, v := range op.Reads() {
				vi := get(v)
				vi.useStates[s] = true
				if _, ok := vi.firstUse[s]; !ok {
					vi.firstUse[s] = idx
				}
			}
			// Guard conditions are reads too.
			for _, gt := range op.BB.Guard {
				vi := get(gt.Cond)
				vi.useStates[s] = true
				if _, ok := vi.firstUse[s]; !ok {
					vi.firstUse[s] = idx
				}
			}
			if w := op.Writes(); w != nil {
				vi := get(w)
				vi.defStates[s] = true
				if _, ok := vi.firstDef[s]; !ok {
					vi.firstDef[s] = idx
				}
				if len(op.BB.Guard) > 0 {
					vi.guarded = true
				}
			}
		}
	}
	// Transition conditions are cross-checked as uses at their From
	// state.
	for _, tr := range res.Transitions {
		if tr.Cond != nil {
			vi := get(tr.Cond)
			vi.useStates[tr.From] = true
		}
	}
	for v, vi := range info {
		cls := Wire
		switch {
		case v.IsGlobal || (res.G.RetVar != nil && v == res.G.RetVar):
			cls = Register
		case len(vi.defStates) == 0:
			// Never written: reads see the initial value; a local
			// reads as constant zero — keep as wire (netlist feeds
			// zero), unless global (handled above).
			cls = Wire
		case len(vi.defStates) > 1:
			cls = Register
		default:
			var ds int
			for s := range vi.defStates {
				ds = s
			}
			for us := range vi.useStates {
				if us != ds {
					cls = Register
				}
			}
			if fu, ok := vi.firstUse[ds]; ok && fu < vi.firstDef[ds] {
				cls = Register
			}
			if res.ReentrantStates[ds] && vi.guarded {
				cls = Register
			}
		}
		res.VarClass[v] = cls
	}
}
