package sched

import (
	"fmt"
	"sort"
	"sync/atomic"

	"sparkgo/internal/delay"
	"sparkgo/internal/dfa"
	"sparkgo/internal/htg"
	"sparkgo/internal/ir"
)

// This file is the lossless serialization of schedules — the payload of
// the midend artifact cache. A Result is layered over a graph: ops are
// referenced by their position in the graph's construction order
// (htg.Graph.AllOps), variables by the graph's VarTable, and the graph
// itself travels embedded in its own lossless encoding, so a decoded
// schedule is a self-contained design ready for the backend. Every map
// in Result (OpState, Arrival, Finish, VarClass, ReentrantStates, the
// dependence adjacency) is flattened to an index-ordered slice on the
// wire: gob would otherwise serialize map iteration order, which is
// random, and the codec's contract is that encode(decode(x)) is
// byte-identical to x. The binary wire framing lives in wirecodec.go;
// the retired gob framing in gobcodec.go is the benchmark baseline.

// resultDecodes counts DecodeResult calls — the zero-decode revival
// tests assert disk-warm sweeps never pay a midend decode.
var resultDecodes atomic.Int64

// ResultDecodeCount reports how many schedules have been decoded since
// process start.
func ResultDecodeCount() int64 { return resultDecodes.Load() }

type schedTransCode struct {
	From      int
	Cond      int // VarTable reference, -1 when unconditional
	CondValue bool
	To        int
}

type varClassCode struct {
	Var   int
	Class int
}

type depEdgeCode struct {
	From int // op index
	To   int
	Kind int
	Var  int // VarTable reference, -1 when none
}

type resultCode struct {
	Graph []byte // htg.EncodeGraph of G
	Mode  int

	HasModel    bool
	NandDelay   float64
	ClockPeriod float64

	NumStates int
	// OpState/Arrival/Finish are indexed by op position (AllOps order).
	OpState []int
	Arrival []float64
	Finish  []float64
	// OpOrder holds op indices per state.
	OpOrder     [][]int
	Transitions []schedTransCode
	// VarClass is sorted by VarTable index.
	VarClass      []varClassCode
	StateCritPath []float64
	// ReentrantStates lists the marked states in ascending order.
	ReentrantStates []int
	ClockViolations int

	HasDeps bool
	// DepOps is the dependence graph's op list (almost always the
	// identity order over AllOps, but encoded explicitly); DepEdges is
	// the successor adjacency flattened in (op, insertion) order —
	// predecessor lists are rebuilt by replaying the edges.
	DepOps   []int
	DepEdges []depEdgeCode
}

// EncodeResult serializes a schedule losslessly into a self-contained
// byte string (graph and program included), framed by the deterministic
// binary codec of internal/wire. The inverse is DecodeResult.
func EncodeResult(r *Result) ([]byte, error) {
	rc, err := flattenResult(r, htg.EncodeGraph)
	if err != nil {
		return nil, err
	}
	return encodeResultWire(rc), nil
}

// flattenResult lowers the schedule's maps and pointers onto the
// index-ordered intermediate form; both framings serialize it.
// encodeGraph serializes the embedded graph — the framing's own graph
// codec, so an encoding never mixes framings.
func flattenResult(r *Result, encodeGraph func(*htg.Graph) ([]byte, error)) (*resultCode, error) {
	graph, err := encodeGraph(r.G)
	if err != nil {
		return nil, fmt.Errorf("sched: encode: %w", err)
	}
	rc := resultCode{
		Graph: graph, Mode: int(r.Mode), NumStates: r.NumStates,
		StateCritPath:   append([]float64(nil), r.StateCritPath...),
		ClockViolations: r.ClockViolations,
	}
	if r.Model != nil {
		rc.HasModel = true
		rc.NandDelay = r.Model.NandDelay
		rc.ClockPeriod = r.Model.ClockPeriod
	}

	ops := r.G.AllOps()
	opIndex := make(map[*htg.Op]int, len(ops))
	for i, op := range ops {
		opIndex[op] = i
	}
	opRef := func(op *htg.Op) (int, error) {
		i, ok := opIndex[op]
		if !ok {
			return 0, fmt.Errorf("sched: encode: op %d not in graph", op.ID)
		}
		return i, nil
	}
	varIndex := map[*ir.Var]int{}
	for i, v := range r.G.VarTable() {
		varIndex[v] = i
	}
	varRef := func(v *ir.Var) (int, error) {
		if v == nil {
			return -1, nil
		}
		i, ok := varIndex[v]
		if !ok {
			return 0, fmt.Errorf("sched: encode: reference to foreign variable %q", v.Name)
		}
		return i, nil
	}

	rc.OpState = make([]int, len(ops))
	rc.Arrival = make([]float64, len(ops))
	rc.Finish = make([]float64, len(ops))
	for i, op := range ops {
		rc.OpState[i] = r.OpState[op]
		rc.Arrival[i] = r.Arrival[op]
		rc.Finish[i] = r.Finish[op]
	}
	for _, list := range r.OpOrder {
		idx := make([]int, 0, len(list))
		for _, op := range list {
			i, err := opRef(op)
			if err != nil {
				return nil, err
			}
			idx = append(idx, i)
		}
		rc.OpOrder = append(rc.OpOrder, idx)
	}
	for _, tr := range r.Transitions {
		ci, err := varRef(tr.Cond)
		if err != nil {
			return nil, err
		}
		rc.Transitions = append(rc.Transitions, schedTransCode{
			From: tr.From, Cond: ci, CondValue: tr.CondValue, To: tr.To})
	}
	for v, cls := range r.VarClass {
		i, err := varRef(v)
		if err != nil {
			return nil, err
		}
		rc.VarClass = append(rc.VarClass, varClassCode{Var: i, Class: int(cls)})
	}
	sort.Slice(rc.VarClass, func(i, j int) bool { return rc.VarClass[i].Var < rc.VarClass[j].Var })
	for s, on := range r.ReentrantStates {
		if on {
			rc.ReentrantStates = append(rc.ReentrantStates, s)
		}
	}
	sort.Ints(rc.ReentrantStates)

	if r.Deps != nil {
		rc.HasDeps = true
		for _, op := range r.Deps.Ops {
			i, err := opRef(op)
			if err != nil {
				return nil, err
			}
			rc.DepOps = append(rc.DepOps, i)
		}
		for _, op := range r.Deps.Ops {
			for _, e := range r.Deps.Succs[op] {
				fi, err := opRef(e.From)
				if err != nil {
					return nil, err
				}
				ti, err := opRef(e.To)
				if err != nil {
					return nil, err
				}
				vi, err := varRef(e.Var)
				if err != nil {
					return nil, err
				}
				rc.DepEdges = append(rc.DepEdges, depEdgeCode{
					From: fi, To: ti, Kind: int(e.Kind), Var: vi})
			}
		}
	}

	return &rc, nil
}

// DecodeResult reconstructs a schedule serialized by EncodeResult,
// graph and program included. The result shares nothing with any other
// schedule; op and variable identity is rebuilt from the embedded
// graph's tables.
func DecodeResult(data []byte) (*Result, error) {
	resultDecodes.Add(1)
	rc, err := decodeResultWire(data)
	if err != nil {
		return nil, fmt.Errorf("sched: decode: %w", err)
	}
	return rebuildResult(rc, htg.DecodeGraph)
}

// rebuildResult resolves the flattened form back into a schedule over a
// freshly decoded graph; decodeGraph matches the framing's graph codec.
func rebuildResult(rc *resultCode, decodeGraph func([]byte) (*htg.Graph, error)) (*Result, error) {
	g, err := decodeGraph(rc.Graph)
	if err != nil {
		return nil, fmt.Errorf("sched: decode: %w", err)
	}
	ops := g.AllOps()
	opAt := func(i int) (*htg.Op, error) {
		if i < 0 || i >= len(ops) {
			return nil, fmt.Errorf("sched: decode: op reference %d out of range", i)
		}
		return ops[i], nil
	}
	vars := g.VarTable()
	varAt := func(i int) (*ir.Var, error) {
		if i == -1 {
			return nil, nil
		}
		if i < 0 || i >= len(vars) {
			return nil, fmt.Errorf("sched: decode: variable reference %d out of range", i)
		}
		return vars[i], nil
	}
	if len(rc.OpState) != len(ops) || len(rc.Arrival) != len(ops) || len(rc.Finish) != len(ops) {
		return nil, fmt.Errorf("sched: decode: op table size mismatch (%d ops, %d states)",
			len(ops), len(rc.OpState))
	}

	r := &Result{
		G: g, Mode: Mode(rc.Mode), NumStates: rc.NumStates,
		OpState:         make(map[*htg.Op]int, len(ops)),
		Arrival:         make(map[*htg.Op]float64, len(ops)),
		Finish:          make(map[*htg.Op]float64, len(ops)),
		VarClass:        map[*ir.Var]VarClass{},
		ReentrantStates: map[int]bool{},
		StateCritPath:   append([]float64(nil), rc.StateCritPath...),
		ClockViolations: rc.ClockViolations,
	}
	if rc.HasModel {
		r.Model = &delay.Model{NandDelay: rc.NandDelay, ClockPeriod: rc.ClockPeriod}
	}
	for i, op := range ops {
		r.OpState[op] = rc.OpState[i]
		r.Arrival[op] = rc.Arrival[i]
		r.Finish[op] = rc.Finish[i]
	}
	for _, list := range rc.OpOrder {
		var state []*htg.Op
		for _, i := range list {
			op, err := opAt(i)
			if err != nil {
				return nil, err
			}
			state = append(state, op)
		}
		r.OpOrder = append(r.OpOrder, state)
	}
	for _, tc := range rc.Transitions {
		cv, err := varAt(tc.Cond)
		if err != nil {
			return nil, err
		}
		r.Transitions = append(r.Transitions, Transition{
			From: tc.From, Cond: cv, CondValue: tc.CondValue, To: tc.To})
	}
	for _, vc := range rc.VarClass {
		v, err := varAt(vc.Var)
		if err != nil {
			return nil, err
		}
		if v == nil {
			return nil, fmt.Errorf("sched: decode: var-class entry without variable")
		}
		r.VarClass[v] = VarClass(vc.Class)
	}
	for _, s := range rc.ReentrantStates {
		r.ReentrantStates[s] = true
	}

	if rc.HasDeps {
		deps := &dfa.Graph{Succs: map[*htg.Op][]dfa.Edge{}, Preds: map[*htg.Op][]dfa.Edge{}}
		for _, i := range rc.DepOps {
			op, err := opAt(i)
			if err != nil {
				return nil, err
			}
			deps.Ops = append(deps.Ops, op)
		}
		for _, ec := range rc.DepEdges {
			from, err := opAt(ec.From)
			if err != nil {
				return nil, err
			}
			to, err := opAt(ec.To)
			if err != nil {
				return nil, err
			}
			v, err := varAt(ec.Var)
			if err != nil {
				return nil, err
			}
			e := dfa.Edge{From: from, To: to, Kind: dfa.EdgeKind(ec.Kind), Var: v}
			deps.Succs[from] = append(deps.Succs[from], e)
			deps.Preds[to] = append(deps.Preds[to], e)
		}
		r.Deps = deps
	}
	return r, nil
}
