package sched

import (
	"bytes"
	"encoding/gob"
	"fmt"

	"sparkgo/internal/htg"
)

// The gob framing EncodeResult used before the deterministic wire
// format (internal/wire) replaced it on the artifact hot path. Retained
// as the benchmark baseline; delete once the codec-speed ratchet lands
// in CI.

// EncodeResultGob serializes r with the retired gob framing — the
// embedded graph travels gob-framed too, so the framings never mix.
func EncodeResultGob(r *Result) ([]byte, error) {
	rc, err := flattenResult(r, htg.EncodeGraphGob)
	if err != nil {
		return nil, err
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(rc); err != nil {
		return nil, fmt.Errorf("sched: encode: %w", err)
	}
	return buf.Bytes(), nil
}

// DecodeResultGob reconstructs a schedule serialized by EncodeResultGob.
func DecodeResultGob(data []byte) (*Result, error) {
	var rc resultCode
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&rc); err != nil {
		return nil, fmt.Errorf("sched: decode: %w", err)
	}
	return rebuildResult(&rc, htg.DecodeGraphGob)
}
