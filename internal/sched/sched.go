// Package sched assigns HTG operations to control steps (FSM states) under
// a resource allocation and a clock-period constraint, implementing the two
// scheduling regimes the paper contrasts:
//
//   - ModeChain ("microprocessor block", §3/§6): the whole loop-free HTG is
//     flattened; operations from many basic blocks pack into the same cycle
//     with chaining across conditional boundaries (§3.1), validated along
//     every chaining trail; conditional commits become multiplexer logic.
//     With unlimited resources and no clock bound this yields the paper's
//     single-cycle architecture (Fig 15).
//
//   - ModeSequential ("classical HLS baseline", Fig 1a): one basic block at
//     a time; conditionals become FSM branches, loops become FSM cycles; no
//     code motion across conditional boundaries. This is the architecture
//     the paper argues is inadequate for microprocessor blocks.
//
// The scheduler also classifies every variable as a register (value
// crosses a cycle boundary or is architectural state) or a wire-variable
// (produced and consumed within one cycle, §3.1.2) — the classification
// package rtl uses to build the datapath.
package sched

import (
	"fmt"

	"sparkgo/internal/delay"
	"sparkgo/internal/dfa"
	"sparkgo/internal/htg"
	"sparkgo/internal/ir"
)

// Mode selects the scheduling regime.
type Mode int

const (
	// ModeChain flattens the HTG and chains across conditionals.
	ModeChain Mode = iota
	// ModeSequential schedules one basic block at a time with FSM
	// control flow (the classical baseline).
	ModeSequential
)

func (m Mode) String() string {
	if m == ModeChain {
		return "chain"
	}
	return "sequential"
}

// Class is the resource class of an operation.
type Class int

const (
	ClassALU Class = iota // add, sub, neg
	ClassMul
	ClassDiv
	ClassLogic // and, or, xor, not, logical ops
	ClassShift
	ClassCmp
	ClassMem  // array port
	ClassFree // copies, muxes: steering logic, not a shared resource
)

var classNames = [...]string{"alu", "mul", "div", "logic", "shift", "cmp", "mem", "free"}

func (c Class) String() string { return classNames[c] }

// ClassOf returns the resource class of an operation.
func ClassOf(op *htg.Op) Class {
	switch op.Kind {
	case htg.OpBin:
		switch op.Bin {
		case ir.OpAdd, ir.OpSub:
			return ClassALU
		case ir.OpMul:
			return ClassMul
		case ir.OpDiv, ir.OpRem:
			return ClassDiv
		case ir.OpAnd, ir.OpOr, ir.OpXor, ir.OpLAnd, ir.OpLOr:
			return ClassLogic
		case ir.OpShl, ir.OpShr:
			return ClassShift
		default: // comparisons
			return ClassCmp
		}
	case htg.OpUn:
		if op.Un == ir.OpNeg {
			return ClassALU
		}
		return ClassLogic
	case htg.OpLoad, htg.OpStore:
		return ClassMem
	}
	return ClassFree
}

// Resources is a per-cycle resource allocation.
type Resources struct {
	Unlimited bool
	Counts    map[Class]int
}

// Unlimited resources: the paper's premise for microprocessor blocks.
func Unlimited() Resources { return Resources{Unlimited: true} }

// Classical returns a small fixed allocation representative of classical
// resource-constrained HLS: one of each expensive unit, two logic units,
// and two memory ports.
func Classical() Resources {
	return Resources{Counts: map[Class]int{
		ClassALU: 1, ClassMul: 1, ClassDiv: 1,
		ClassLogic: 2, ClassShift: 1, ClassCmp: 1, ClassMem: 2,
	}}
}

// available returns the per-cycle budget of a class.
func (r Resources) available(c Class) int {
	if r.Unlimited || c == ClassFree {
		return 1 << 30
	}
	n, ok := r.Counts[c]
	if !ok {
		return 0
	}
	return n
}

// Transition is one FSM edge, evaluated at the end of state From:
// if Cond is nil the edge is unconditional; otherwise taken when Cond's
// value equals CondValue. Transitions are tried in order; the first match
// wins. A To of -1 means "done".
type Transition struct {
	From      int
	Cond      *ir.Var
	CondValue bool
	To        int
}

// VarClass distinguishes registers from wire-variables.
type VarClass int

const (
	// Register: holds its value across cycle boundaries.
	Register VarClass = iota
	// Wire: produced and consumed combinationally within one cycle
	// (paper §3.1.2's wire-variable).
	Wire
)

// Result is a complete schedule.
type Result struct {
	G     *htg.Graph
	Mode  Mode
	Model *delay.Model

	NumStates int
	OpState   map[*htg.Op]int
	// OpOrder lists each state's ops in dependence-topological order
	// (program order restricted to the state), ready for netlist
	// construction.
	OpOrder     [][]*htg.Op
	Transitions []Transition
	VarClass    map[*ir.Var]VarClass

	// Arrival is each op's within-cycle arrival time (gu); Finish adds
	// the op's own delay.
	Arrival map[*htg.Op]float64
	Finish  map[*htg.Op]float64
	// StateCritPath is the longest combinational path per state
	// including register setup.
	StateCritPath []float64
	// ClockViolations counts ops that could not fit the clock period
	// even alone in a cycle.
	ClockViolations int
	// ReentrantStates marks states inside loop regions (visited more
	// than once per activation).
	ReentrantStates map[int]bool

	Deps *dfa.Graph
}

// CritPath returns the overall critical path (max over states).
func (r *Result) CritPath() float64 {
	max := 0.0
	for _, c := range r.StateCritPath {
		if c > max {
			max = c
		}
	}
	return max
}

// Config bundles scheduling parameters.
type Config struct {
	Mode      Mode
	Resources Resources
	Model     *delay.Model
	DepOpts   dfa.Options
	// DisableChaining forces every dependence to cross a register (the
	// A4 ablation: one dataflow level per cycle).
	DisableChaining bool
}

// DefaultConfig is the paper's microprocessor-block configuration.
func DefaultConfig() Config {
	return Config{
		Mode:      ModeChain,
		Resources: Unlimited(),
		Model:     delay.Default(),
		DepOpts:   dfa.DefaultOptions(),
	}
}

// Schedule schedules the graph.
func Schedule(g *htg.Graph, cfg Config) (*Result, error) {
	if cfg.Model == nil {
		cfg.Model = delay.Default()
	}
	switch cfg.Mode {
	case ModeChain:
		return scheduleChain(g, cfg)
	case ModeSequential:
		return scheduleSequential(g, cfg)
	}
	return nil, fmt.Errorf("sched: unknown mode %d", cfg.Mode)
}

// opDelay returns the propagation delay of one op.
func opDelay(m *delay.Model, op *htg.Op) float64 {
	t := resultType(op)
	switch op.Kind {
	case htg.OpBin:
		return m.BinOpDelay(op.Bin, t)
	case htg.OpUn:
		return m.UnOpDelay(op.Un, t)
	case htg.OpMux:
		return m.MuxDelay(2)
	case htg.OpCopy:
		return m.CastDelay()
	case htg.OpLoad:
		if op.Args[0].IsConst {
			return 0 // static element select: wiring
		}
		return m.ArrayReadDelay(op.Arr.Type.Len)
	case htg.OpStore:
		if op.Args[0].IsConst {
			return 0
		}
		// Dynamic store: index decoder ahead of the element registers.
		return m.MuxDelay(op.Arr.Type.Len)
	}
	return 0
}

func resultType(op *htg.Op) *ir.Type {
	if op.Dst != nil {
		return op.Dst.Type
	}
	if op.Kind == htg.OpStore {
		return op.Arr.Type.Elem
	}
	return ir.U1
}
