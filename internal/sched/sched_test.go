package sched_test

import (
	"testing"

	"sparkgo/internal/delay"
	"sparkgo/internal/htg"
	"sparkgo/internal/ir"
	"sparkgo/internal/parser"
	"sparkgo/internal/pass"
	"sparkgo/internal/sched"
	"sparkgo/internal/transform"
)

func prepare(t *testing.T, src string) *htg.Graph {
	t.Helper()
	p := parser.MustParse("t", src)
	pl := &pass.Pipeline{Passes: []transform.Pass{
		transform.Inline(nil), transform.DropUncalledFuncs(),
	}, MaxRounds: 1}
	if err := pl.Run(p); err != nil {
		t.Fatal(err)
	}
	g, err := htg.Lower(p, p.Main())
	if err != nil {
		t.Fatal(err)
	}
	return g
}

const diamondSrc = `
uint8 a;
uint8 b;
uint8 c;
uint8 out;
void main() {
  uint8 t1;
  uint8 t2;
  t1 = a + b;
  t2 = a - c;
  out = t1 * t2;
}
`

func TestChainUnlimitedSingleCycle(t *testing.T) {
	g := prepare(t, diamondSrc)
	res, err := sched.Schedule(g, sched.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.NumStates != 1 {
		t.Errorf("states = %d, want 1", res.NumStates)
	}
	// Dependences must hold: within the single cycle, arrival of the
	// multiply must be after the adds' finishes.
	for _, op := range g.AllOps() {
		if op.Kind == htg.OpBin && op.Bin == ir.OpMul {
			if res.Arrival[op] <= 0 {
				t.Error("multiply should chain after its operands")
			}
		}
	}
}

func TestChainRespectsClockPeriod(t *testing.T) {
	g := prepare(t, diamondSrc)
	cfg := sched.DefaultConfig()
	// Just enough for one 8-bit add (2*3+4 = 10) + setup (2): the chain
	// add→mul cannot fit, forcing multiple cycles.
	cfg.Model = delay.Default().WithClock(13)
	res, err := sched.Schedule(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.NumStates < 2 {
		t.Errorf("states = %d, want >= 2 under a tight clock", res.NumStates)
	}
	if res.ClockViolations != 0 {
		// The multiply alone (6*3+8 = 26) exceeds 13gu: it must be
		// reported as a violation.
		t.Logf("clock violations reported: %d", res.ClockViolations)
	}
	// Every flow dependence must cross states or chain within one.
	for _, e := range flowEdges(res) {
		if res.OpState[e.from] > res.OpState[e.to] {
			t.Errorf("dependence violated: %s (state %d) before %s (state %d)",
				e.from, res.OpState[e.from], e.to, res.OpState[e.to])
		}
	}
}

type edge struct{ from, to *htg.Op }

func flowEdges(res *sched.Result) []edge {
	var out []edge
	for _, op := range res.Deps.Ops {
		for _, e := range res.Deps.Succs[op] {
			out = append(out, edge{e.From, e.To})
		}
	}
	return out
}

func TestDisableChainingOneLevelPerCycle(t *testing.T) {
	g := prepare(t, diamondSrc)
	cfg := sched.DefaultConfig()
	cfg.DisableChaining = true
	res, err := sched.Schedule(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.NumStates < 2 {
		t.Errorf("states = %d, want >= 2 without chaining", res.NumStates)
	}
	// No op may have a same-cycle value predecessor.
	for _, op := range g.AllOps() {
		if res.Arrival[op] != 0 {
			t.Errorf("op %s has nonzero arrival with chaining disabled", op)
		}
	}
}

func TestResourceConstrainedALU(t *testing.T) {
	// Four independent adds, one ALU: at least 4 cycles in sequential
	// mode... in chain mode with 1 ALU they serialize too (one add per
	// cycle), since chained ALU reuse within a cycle is not modeled.
	g := prepare(t, `
uint8 a;
uint8 b;
uint8 o1;
uint8 o2;
uint8 o3;
uint8 o4;
void main() {
  o1 = a + b;
  o2 = a + 1;
  o3 = b + 2;
  o4 = a + 3;
}
`)
	cfg := sched.DefaultConfig()
	cfg.Resources = sched.Resources{Counts: map[sched.Class]int{sched.ClassALU: 1}}
	res, err := sched.Schedule(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.NumStates < 4 {
		t.Errorf("states = %d, want >= 4 with one ALU", res.NumStates)
	}
	// Per cycle, at most one ALU op.
	for s := 0; s < res.NumStates; s++ {
		n := 0
		for _, op := range res.OpOrder[s] {
			if sched.ClassOf(op) == sched.ClassALU {
				n++
			}
		}
		if n > 1 {
			t.Errorf("state %d uses %d ALUs, budget 1", s, n)
		}
	}
}

func TestExclusiveBranchesShareResource(t *testing.T) {
	// Paper §2: mutually exclusive operations can share a resource in
	// the same cycle. Two adds in opposite branches + one ALU must still
	// allow a compact schedule (chain mode packs them in one cycle).
	g := prepare(t, `
uint8 a;
uint8 b;
bool c;
uint8 out;
void main() {
  if (c) {
    out = a + b;
  } else {
    out = a + 1;
  }
}
`)
	cfg := sched.DefaultConfig()
	cfg.Resources = sched.Resources{Counts: map[sched.Class]int{
		sched.ClassALU: 1, sched.ClassCmp: 1, sched.ClassLogic: 1}}
	res, err := sched.Schedule(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.NumStates != 1 {
		t.Errorf("states = %d, want 1 (exclusive adds share the ALU)", res.NumStates)
	}
}

func TestSequentialModeLoopFSM(t *testing.T) {
	g := prepare(t, `
uint8 data[4];
uint16 sum;
void main() {
  uint8 i;
  for (i = 0; i < 4; i++) {
    sum += data[i];
  }
}
`)
	cfg := sched.DefaultConfig()
	cfg.Mode = sched.ModeSequential
	cfg.Resources = sched.Classical()
	res, err := sched.Schedule(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.NumStates < 2 {
		t.Fatalf("states = %d, want >= 2 for a loop FSM", res.NumStates)
	}
	// There must be a backward transition (the loop edge).
	hasBack := false
	for _, tr := range res.Transitions {
		if tr.From >= 0 && tr.To >= 0 && tr.To <= tr.From {
			hasBack = true
		}
	}
	if !hasBack {
		t.Error("no back edge in loop FSM")
	}
	// Loop states must be marked re-entrant.
	if len(res.ReentrantStates) == 0 {
		t.Error("no re-entrant states recorded")
	}
}

func TestChainModeRejectsLoops(t *testing.T) {
	g := prepare(t, `
uint8 x;
void main() {
  uint8 i;
  for (i = 0; i < 4; i++) {
    x += 1;
  }
}
`)
	_, err := sched.Schedule(g, sched.DefaultConfig())
	if err == nil {
		t.Error("chain mode must reject loops")
	}
}

func TestWireRegisterClassification(t *testing.T) {
	g := prepare(t, diamondSrc)
	res, err := sched.Schedule(g, sched.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Single cycle: every local intermediate is a wire; globals are
	// registers.
	for v, cls := range res.VarClass {
		if v.IsGlobal && cls != sched.Register {
			t.Errorf("global %s classified as wire", v.Name)
		}
		if !v.IsGlobal && cls != sched.Wire {
			t.Errorf("local %s classified as register in a single-cycle design", v.Name)
		}
	}
}

func TestMultiCycleRegisters(t *testing.T) {
	g := prepare(t, diamondSrc)
	cfg := sched.DefaultConfig()
	cfg.DisableChaining = true
	res, err := sched.Schedule(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// t1/t2 cross the cycle boundary into the multiply: registers.
	regs := 0
	for v, cls := range res.VarClass {
		if !v.IsGlobal && cls == sched.Register {
			regs++
		}
	}
	if regs == 0 {
		t.Error("no local registers in a multi-cycle schedule")
	}
}

func TestClassOfCoverage(t *testing.T) {
	mk := func(op ir.BinOp) *htg.Op {
		return &htg.Op{Kind: htg.OpBin, Bin: op}
	}
	cases := map[ir.BinOp]sched.Class{
		ir.OpAdd: sched.ClassALU, ir.OpMul: sched.ClassMul,
		ir.OpDiv: sched.ClassDiv, ir.OpAnd: sched.ClassLogic,
		ir.OpShl: sched.ClassShift, ir.OpLt: sched.ClassCmp,
	}
	for op, want := range cases {
		if got := sched.ClassOf(mk(op)); got != want {
			t.Errorf("ClassOf(%v) = %v, want %v", op, got, want)
		}
	}
	if sched.ClassOf(&htg.Op{Kind: htg.OpCopy}) != sched.ClassFree {
		t.Error("copies must be free")
	}
	if sched.ClassOf(&htg.Op{Kind: htg.OpLoad}) != sched.ClassMem {
		t.Error("loads use memory ports")
	}
}
