package sched

import (
	"fmt"
	"sort"

	"sparkgo/internal/dfa"
	"sparkgo/internal/htg"
	"sparkgo/internal/ir"
)

// scheduleSequential implements the classical-HLS baseline (Fig 1a): one
// basic block at a time, list-scheduled under the resource allocation with
// chaining only inside the block; conditionals branch the FSM (the
// not-taken side is skipped at run time); loops close FSM cycles. No
// operation moves across a conditional boundary — exactly the regime the
// paper argues is inadequate for single-cycle microprocessor blocks.
func scheduleSequential(g *htg.Graph, cfg Config) (*Result, error) {
	m := cfg.Model
	res := &Result{
		G: g, Mode: ModeSequential, Model: m,
		OpState: map[*htg.Op]int{}, VarClass: map[*ir.Var]VarClass{},
		Arrival: map[*htg.Op]float64{}, Finish: map[*htg.Op]float64{},
		ReentrantStates: map[int]bool{},
	}
	s := &seqScheduler{cfg: cfg, res: res}
	// Build the full dependence graph once for priorities (intra-BB
	// slices are consistent with it).
	s.deps = dfa.Build(g.AllOps(), cfg.DepOpts)
	res.Deps = s.deps

	entry, exits, err := s.region(g.Root, false)
	if err != nil {
		return nil, err
	}
	_ = entry
	// All dangling exits flow to "done" (-1).
	for _, e := range exits {
		s.patch(e, -1)
	}
	res.NumStates = len(res.OpOrder)
	// Finalize per-state critical paths.
	res.StateCritPath = make([]float64, res.NumStates)
	for st, list := range res.OpOrder {
		for _, op := range list {
			if res.Finish[op] > res.StateCritPath[st] {
				res.StateCritPath[st] = res.Finish[op]
			}
		}
		res.StateCritPath[st] += m.RegisterSetup()
	}
	classifyVars(res)
	return res, nil
}

type seqScheduler struct {
	cfg  Config
	res  *Result
	deps *dfa.Graph
}

// pendingExit identifies an unresolved FSM edge (index into Transitions).
type pendingExit int

func (s *seqScheduler) patch(e pendingExit, target int) {
	s.res.Transitions[int(e)].To = target
}

// newState opens a fresh, empty state and returns its index.
func (s *seqScheduler) newState(reentrant bool) int {
	idx := len(s.res.OpOrder)
	s.res.OpOrder = append(s.res.OpOrder, nil)
	if reentrant {
		s.res.ReentrantStates[idx] = true
	}
	return idx
}

// emitTransition appends an FSM edge with unknown target, returning its
// handle for later patching.
func (s *seqScheduler) emitTransition(from int, cond *ir.Var, val bool) pendingExit {
	s.res.Transitions = append(s.res.Transitions,
		Transition{From: from, Cond: cond, CondValue: val, To: -2})
	return pendingExit(len(s.res.Transitions) - 1)
}

// region schedules an HTG node into a chain of states. It returns the
// entry state index and the list of dangling exits to patch to whatever
// follows. A region with no ops returns entry == -2 meaning "transparent"
// (caller connects around it).
func (s *seqScheduler) region(n htg.Node, reentrant bool) (int, []pendingExit, error) {
	switch x := n.(type) {
	case *htg.Seq:
		entry := -2
		var exits []pendingExit
		for _, child := range x.Nodes {
			ce, cx, err := s.region(child, reentrant)
			if err != nil {
				return 0, nil, err
			}
			if ce == -2 {
				continue // empty child
			}
			for _, e := range exits {
				s.patch(e, ce)
			}
			if entry == -2 {
				entry = ce
			}
			exits = cx
		}
		return entry, exits, nil
	case *htg.BBNode:
		return s.scheduleBB(x.BB, reentrant)
	case *htg.IfNode:
		// The condition was computed by a preceding BB (ops already
		// scheduled); branch from the last state of that BB — but we
		// model it simply: the conditional transition leaves the
		// current region boundary. We need a state to branch from:
		// the caller guarantees the cond BB precedes this node, so we
		// attach conditional transitions from a dedicated (empty)
		// decision state for clarity and generality.
		dec := s.newState(reentrant)
		tTrue := s.emitTransition(dec, x.Cond, true)
		tFalse := s.emitTransition(dec, x.Cond, false)
		var exits []pendingExit
		te, tx, err := s.region(x.Then, reentrant)
		if err != nil {
			return 0, nil, err
		}
		if te == -2 {
			exits = append(exits, tTrue)
		} else {
			s.patch(tTrue, te)
			exits = append(exits, tx...)
		}
		if x.Else != nil {
			ee, ex, err := s.region(x.Else, reentrant)
			if err != nil {
				return 0, nil, err
			}
			if ee == -2 {
				exits = append(exits, tFalse)
			} else {
				s.patch(tFalse, ee)
				exits = append(exits, ex...)
			}
		} else {
			exits = append(exits, tFalse)
		}
		return dec, exits, nil
	case *htg.LoopNode:
		entry := -2
		var preExits []pendingExit
		if x.InitBB != nil && len(x.InitBB.Ops) > 0 {
			ie, ix, err := s.scheduleBB(x.InitBB, reentrant)
			if err != nil {
				return 0, nil, err
			}
			entry = ie
			preExits = ix
		}
		ce, cx, err := s.scheduleBB(x.CondBB, true)
		if err != nil {
			return 0, nil, err
		}
		for _, e := range preExits {
			s.patch(e, ce)
		}
		if entry == -2 {
			entry = ce
		}
		// From the cond state: true → body, false → exit.
		condState := len(s.res.OpOrder) - 1 // last state of cond BB
		for _, e := range cx {
			// The cond BB's fall-through exit becomes the branch
			// decision: retarget it as the "true" edge later; simpler
			// to patch it into the decision below.
			s.patch(e, condState) // placeholder, replaced next
		}
		// Remove the placeholder fall-through edges and replace with
		// conditional edges.
		s.dropTransitionsTo(condState, cx)
		tBody := s.emitTransition(condState, x.Cond, true)
		tExit := s.emitTransition(condState, x.Cond, false)
		be, bx, err := s.region(x.Body, true)
		if err != nil {
			return 0, nil, err
		}
		if be == -2 {
			// Empty body: true edge loops straight back to cond.
			s.patch(tBody, ce)
		} else {
			s.patch(tBody, be)
			for _, e := range bx {
				s.patch(e, ce) // back edge
			}
		}
		return entry, []pendingExit{tExit}, nil
	}
	return 0, nil, fmt.Errorf("sched: unknown node %T", n)
}

// dropTransitionsTo neutralizes placeholder fall-through edges created by
// scheduleBB for a block whose exit is replaced by conditional edges.
func (s *seqScheduler) dropTransitionsTo(state int, exits []pendingExit) {
	for _, e := range exits {
		s.res.Transitions[int(e)].To = -3 // tombstone; filtered by rtl
		s.res.Transitions[int(e)].From = -3
	}
}

// scheduleBB list-schedules one basic block's ops into one or more fresh
// consecutive states, returning the entry state and one dangling
// fall-through exit.
func (s *seqScheduler) scheduleBB(bb *htg.BasicBlock, reentrant bool) (int, []pendingExit, error) {
	m := s.cfg.Model
	if len(bb.Ops) == 0 {
		st := s.newState(reentrant)
		e := s.emitTransition(st, nil, false)
		return st, []pendingExit{e}, nil
	}
	// Intra-BB dependences: restrict the global graph.
	inBB := map[*htg.Op]bool{}
	for _, op := range bb.Ops {
		inBB[op] = true
	}
	prio := map[*htg.Op]float64{}
	for i := len(bb.Ops) - 1; i >= 0; i-- {
		op := bb.Ops[i]
		best := 0.0
		for _, e := range s.deps.Succs[op] {
			if inBB[e.To] {
				if p := prio[e.To]; p > best {
					best = p
				}
			}
		}
		prio[op] = best + opDelay(m, op)
	}
	unscheduled := map[*htg.Op]bool{}
	for _, op := range bb.Ops {
		unscheduled[op] = true
	}
	entry := -1
	cur := -1
	remaining := len(bb.Ops)
	for remaining > 0 {
		cur = s.newState(reentrant)
		if entry == -1 {
			entry = cur
		}
		progress := true
		for progress {
			progress = false
			var ready []*htg.Op
			for op := range unscheduled {
				ok := true
				for _, e := range s.deps.Preds[op] {
					if inBB[e.From] && unscheduled[e.From] {
						ok = false
						break
					}
				}
				if ok {
					ready = append(ready, op)
				}
			}
			sort.Slice(ready, func(i, j int) bool {
				if prio[ready[i]] != prio[ready[j]] {
					return prio[ready[i]] > prio[ready[j]]
				}
				return ready[i].ID < ready[j].ID
			})
			for _, op := range ready {
				arr := 0.0
				for _, e := range s.deps.Preds[op] {
					if !inBB[e.From] || unscheduled[e.From] {
						continue
					}
					if e.Kind == dfa.Anti || e.Kind == dfa.Output {
						continue
					}
					if s.res.OpState[e.From] == cur && s.res.Finish[e.From] > arr {
						arr = s.res.Finish[e.From]
					}
				}
				fin := arr + opDelay(m, op)
				if s.cfg.DisableChaining && arr > 0 {
					continue
				}
				if m.ClockPeriod > 0 && fin+m.RegisterSetup() > m.ClockPeriod {
					if arr == 0 {
						s.res.ClockViolations++
					} else {
						continue
					}
				}
				if !s.cfg.Resources.Unlimited {
					cl := ClassOf(op)
					if cl != ClassFree {
						used := 0
						for _, q := range s.res.OpOrder[cur] {
							if ClassOf(q) == cl {
								used++
							}
						}
						if used+1 > s.cfg.Resources.available(cl) {
							continue
						}
					}
				}
				s.res.OpState[op] = cur
				s.res.Arrival[op] = arr
				s.res.Finish[op] = fin
				s.res.OpOrder[cur] = append(s.res.OpOrder[cur], op)
				delete(unscheduled, op)
				remaining--
				progress = true
			}
		}
		if remaining > 0 && len(s.res.OpOrder) > 100000 {
			return 0, nil, fmt.Errorf("sched: runaway sequential scheduling in BB%d", bb.ID)
		}
		if remaining > 0 {
			// Chain to the next state (created on the next pass).
			e := s.emitTransition(cur, nil, false)
			s.patch(e, len(s.res.OpOrder))
		}
	}
	// Keep each state's ops in program order for netlist construction.
	for st := entry; st <= cur; st++ {
		list := s.res.OpOrder[st]
		sort.Slice(list, func(i, j int) bool { return list[i].ID < list[j].ID })
	}
	exit := s.emitTransition(cur, nil, false)
	return entry, []pendingExit{exit}, nil
}
